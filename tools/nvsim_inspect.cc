/**
 * @file
 * nvsim_inspect: offline inspection of nvsim telemetry artifacts.
 *
 *   nvsim_inspect diff A.json B.json [--threshold=R] [--top=N]
 *                                    [--json[=PATH]] [--force]
 *   nvsim_inspect anomalies RUN.json [--z=Z] [--json[=PATH]]
 *   nvsim_inspect manifest  RUN.json
 *
 * Exit codes (scripted by bench_report.py and ci.sh):
 *   0  empty diff / no anomalies / manifest printed
 *   1  differences or anomalies found
 *   2  artifacts incomparable (schema or window geometry mismatch)
 *
 * Everything runs the same deterministic code the in-process engine
 * uses (teldoc reload + obs/diff), so a diff of two identical-seed
 * runs is empty by construction and `anomalies` over a file exactly
 * reproduces the run's own --anomaly-report output.
 */

#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "core/logging.hh"
#include "obs/diff/anomaly.hh"
#include "obs/diff/diff.hh"
#include "obs/diff/teldoc.hh"
#include "obs/json.hh"

using namespace nvsim;
using namespace nvsim::obs;

namespace
{

constexpr int kExitEmpty = 0;
constexpr int kExitDifferent = 1;
constexpr int kExitIncomparable = 2;

[[noreturn]] void
usage()
{
    std::fputs(
        "usage: nvsim_inspect <subcommand> [args]\n"
        "\n"
        "  diff A.json B.json   window-aligned telemetry diff\n"
        "      --threshold=R    relative noise floor for derived "
        "rates (default 0.01)\n"
        "      --top=N          changed series shown per run "
        "(default 10)\n"
        "      --json[=PATH]    emit nvsim-telemetry-diff-v1 JSON "
        "(default stdout)\n"
        "      --force          diff window-incomparable artifacts "
        "anyway\n"
        "  anomalies RUN.json   rerun the online anomaly detectors\n"
        "      --z=Z            robust z-score threshold (default "
        "6.0)\n"
        "      --json[=PATH]    emit nvsim-anomaly-v1 JSON\n"
        "  manifest RUN.json    print the embedded provenance "
        "manifest\n"
        "\n"
        "exit codes: 0 identical/clean, 1 differences/anomalies, "
        "2 incomparable\n",
        stderr);
    std::exit(kExitIncomparable);
}

/** --flag=value parse; empty value allowed for --json. */
bool
flagArg(const char *arg, const char *flag, std::string *out)
{
    std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0)
        return false;
    if (arg[n] == '\0') {
        out->clear();
        return true;
    }
    if (arg[n] != '=')
        return false;
    *out = arg + n + 1;
    return true;
}

double
numberArg(const std::string &v, const char *flag)
{
    try {
        std::size_t used = 0;
        double x = std::stod(v, &used);
        if (used == v.size())
            return x;
    } catch (...) {
    }
    fatal("nvsim_inspect: bad number '%s' for %s", v.c_str(), flag);
}

void
writeOut(const std::string &path, const std::string &payload)
{
    if (path.empty()) {
        std::fputs(payload.c_str(), stdout);
        return;
    }
    std::ofstream ofs(path, std::ios::out | std::ios::trunc);
    if (!ofs)
        fatal("nvsim_inspect: could not open '%s' for writing",
              path.c_str());
    ofs << payload;
}

int
cmdDiff(const std::vector<std::string> &args)
{
    DiffOptions opts;
    bool wantJson = false;
    std::string jsonPath, value;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (flagArg(a.c_str(), "--threshold", &value))
            opts.threshold = numberArg(value, "--threshold");
        else if (flagArg(a.c_str(), "--top", &value))
            opts.top = static_cast<std::size_t>(
                numberArg(value, "--top"));
        else if (flagArg(a.c_str(), "--json", &value)) {
            wantJson = true;
            jsonPath = value;
        } else if (a == "--force")
            opts.force = true;
        else if (!a.empty() && a[0] == '-')
            fatal("nvsim_inspect diff: unknown flag '%s'", a.c_str());
        else
            paths.push_back(a);
    }
    if (paths.size() != 2)
        usage();

    TelDoc a = loadTelemetryDoc(paths[0]);
    TelDoc b = loadTelemetryDoc(paths[1]);
    DiffReport report = diffTelemetry(a, b, opts);

    if (wantJson)
        writeOut(jsonPath, report.json(opts));
    if (!wantJson || !jsonPath.empty()) {
        std::printf("diff: A=%s B=%s\n", a.path.c_str(),
                    b.path.c_str());
        std::fputs(report.text(opts).c_str(), stdout);
    }
    if (report.comparability == Comparability::Incomparable &&
        !opts.force)
        return kExitIncomparable;
    return report.empty() ? kExitEmpty : kExitDifferent;
}

int
cmdAnomalies(const std::vector<std::string> &args)
{
    AnomalyOptions opts;
    bool wantJson = false;
    std::string jsonPath, value;
    std::vector<std::string> paths;
    for (const std::string &a : args) {
        if (flagArg(a.c_str(), "--z", &value))
            opts.z = numberArg(value, "--z");
        else if (flagArg(a.c_str(), "--json", &value)) {
            wantJson = true;
            jsonPath = value;
        } else if (!a.empty() && a[0] == '-')
            fatal("nvsim_inspect anomalies: unknown flag '%s'",
                  a.c_str());
        else
            paths.push_back(a);
    }
    if (paths.size() != 1)
        usage();

    TelDoc doc = loadTelemetryDoc(paths[0]);
    std::size_t total = 0;
    std::string json = "{\"schema\":\"nvsim-anomaly-v1\",\"z\":" +
                       strprintf("%.9g", opts.z) + ",\"runs\":[";
    for (std::size_t i = 0; i < doc.runs.size(); ++i) {
        const TelRun &run = doc.runs[i];
        std::vector<const TelemetryWindow *> windows;
        for (const TelemetryWindow &w : run.windows)
            windows.push_back(&w);
        AnomalyReport report = detectAnomalies(windows, opts);
        total += report.anomalies.size();
        json += std::string(i ? "," : "") + "\n{\"label\":\"" +
                jsonEscape(run.label) +
                "\",\"anomalies\":" + report.json() + '}';
        if (!wantJson || !jsonPath.empty()) {
            std::printf("run '%s': %zu anomal%s\n", run.label.c_str(),
                        report.anomalies.size(),
                        report.anomalies.size() == 1 ? "y" : "ies");
            for (const Anomaly &an : report.anomalies) {
                std::printf(
                    "  window %lld %s: %s (expected %s, z=%s)\n",
                    static_cast<long long>(an.window),
                    an.metric.c_str(),
                    strprintf("%.9g", an.value).c_str(),
                    strprintf("%.9g", an.expected).c_str(),
                    strprintf("%.3g", an.z).c_str());
            }
        }
    }
    json += "\n]}\n";
    if (wantJson)
        writeOut(jsonPath, json);
    return total == 0 ? kExitEmpty : kExitDifferent;
}

int
cmdManifest(const std::vector<std::string> &args)
{
    if (args.size() != 1 ||
        (!args[0].empty() && args[0][0] == '-'))
        usage();
    TelDoc doc = loadTelemetryDoc(args[0]);
    std::printf("%s: schema %s, window_s %s\n", doc.path.c_str(),
                doc.schema.c_str(),
                strprintf("%.9g", doc.windowS).c_str());
    if (!doc.hasManifest) {
        std::printf("no provenance manifest (pre-manifest artifact)\n");
    } else {
        const RunManifest &m = doc.manifest;
        std::printf("manifest: %s\n", doc.manifestSchema.c_str());
        std::printf("  bench: %s\n",
                    m.bench.empty() ? "<unset>" : m.bench.c_str());
        std::string flags;
        for (const std::string &f : m.flags)
            flags += (flags.empty() ? "" : " ") + f;
        std::printf("  flags: %s\n",
                    flags.empty() ? "<none>" : flags.c_str());
        std::printf("  causal_seed: %llu\n",
                    static_cast<unsigned long long>(m.causalSeed));
        std::printf("  host_calibration: %s\n",
                    strprintf("%.9g", m.hostCalibration).c_str());
    }
    for (const TelRun &run : doc.runs) {
        std::printf("run '%s': %u channel(s), %zu window(s)",
                    run.label.c_str(), run.channels,
                    run.windows.size());
        if (!run.config.empty())
            std::printf(", config %s (%s, scale %llu)",
                        run.config.hash.c_str(),
                        run.config.mode.c_str(),
                        static_cast<unsigned long long>(
                            run.config.scale));
        std::printf("\n");
    }
    return kExitEmpty;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        usage();
    std::string sub = argv[1];
    std::vector<std::string> args(argv + 2, argv + argc);
    if (sub == "diff")
        return cmdDiff(args);
    if (sub == "anomalies")
        return cmdAnomalies(args);
    if (sub == "manifest")
        return cmdManifest(args);
    usage();
}
