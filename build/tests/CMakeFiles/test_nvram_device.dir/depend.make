# Empty dependencies file for test_nvram_device.
# This may be replaced when dependencies are built.
