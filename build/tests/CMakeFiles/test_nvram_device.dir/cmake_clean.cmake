file(REMOVE_RECURSE
  "CMakeFiles/test_nvram_device.dir/test_nvram_device.cc.o"
  "CMakeFiles/test_nvram_device.dir/test_nvram_device.cc.o.d"
  "test_nvram_device"
  "test_nvram_device.pdb"
  "test_nvram_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nvram_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
