# Empty compiler generated dependencies file for test_dnn_graph.
# This may be replaced when dependencies are built.
