file(REMOVE_RECURSE
  "CMakeFiles/test_dnn_graph.dir/test_dnn_graph.cc.o"
  "CMakeFiles/test_dnn_graph.dir/test_dnn_graph.cc.o.d"
  "test_dnn_graph"
  "test_dnn_graph.pdb"
  "test_dnn_graph[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
