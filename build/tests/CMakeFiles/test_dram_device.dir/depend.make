# Empty dependencies file for test_dram_device.
# This may be replaced when dependencies are built.
