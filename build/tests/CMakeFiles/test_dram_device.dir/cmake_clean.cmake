file(REMOVE_RECURSE
  "CMakeFiles/test_dram_device.dir/test_dram_device.cc.o"
  "CMakeFiles/test_dram_device.dir/test_dram_device.cc.o.d"
  "test_dram_device"
  "test_dram_device.pdb"
  "test_dram_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
