file(REMOVE_RECURSE
  "CMakeFiles/test_memsys_fuzz.dir/test_memsys_fuzz.cc.o"
  "CMakeFiles/test_memsys_fuzz.dir/test_memsys_fuzz.cc.o.d"
  "test_memsys_fuzz"
  "test_memsys_fuzz.pdb"
  "test_memsys_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsys_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
