# Empty dependencies file for test_memsys_fuzz.
# This may be replaced when dependencies are built.
