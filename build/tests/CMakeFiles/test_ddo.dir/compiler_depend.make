# Empty compiler generated dependencies file for test_ddo.
# This may be replaced when dependencies are built.
