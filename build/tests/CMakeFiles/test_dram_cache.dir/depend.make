# Empty dependencies file for test_dram_cache.
# This may be replaced when dependencies are built.
