file(REMOVE_RECURSE
  "CMakeFiles/test_dram_cache.dir/test_dram_cache.cc.o"
  "CMakeFiles/test_dram_cache.dir/test_dram_cache.cc.o.d"
  "test_dram_cache"
  "test_dram_cache.pdb"
  "test_dram_cache[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dram_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
