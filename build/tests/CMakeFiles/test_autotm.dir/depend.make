# Empty dependencies file for test_autotm.
# This may be replaced when dependencies are built.
