file(REMOVE_RECURSE
  "CMakeFiles/test_autotm.dir/test_autotm.cc.o"
  "CMakeFiles/test_autotm.dir/test_autotm.cc.o.d"
  "test_autotm"
  "test_autotm.pdb"
  "test_autotm[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_autotm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
