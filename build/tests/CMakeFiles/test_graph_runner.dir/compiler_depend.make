# Empty compiler generated dependencies file for test_graph_runner.
# This may be replaced when dependencies are built.
