file(REMOVE_RECURSE
  "CMakeFiles/test_graph_runner.dir/test_graph_runner.cc.o"
  "CMakeFiles/test_graph_runner.dir/test_graph_runner.cc.o.d"
  "test_graph_runner"
  "test_graph_runner.pdb"
  "test_graph_runner[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
