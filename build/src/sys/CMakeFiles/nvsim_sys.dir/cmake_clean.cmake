file(REMOVE_RECURSE
  "CMakeFiles/nvsim_sys.dir/config.cc.o"
  "CMakeFiles/nvsim_sys.dir/config.cc.o.d"
  "CMakeFiles/nvsim_sys.dir/llc.cc.o"
  "CMakeFiles/nvsim_sys.dir/llc.cc.o.d"
  "CMakeFiles/nvsim_sys.dir/memsys.cc.o"
  "CMakeFiles/nvsim_sys.dir/memsys.cc.o.d"
  "libnvsim_sys.a"
  "libnvsim_sys.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_sys.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
