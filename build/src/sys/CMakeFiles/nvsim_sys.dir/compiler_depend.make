# Empty compiler generated dependencies file for nvsim_sys.
# This may be replaced when dependencies are built.
