file(REMOVE_RECURSE
  "libnvsim_sys.a"
)
