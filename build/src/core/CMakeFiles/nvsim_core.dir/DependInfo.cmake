
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/csv.cc" "src/core/CMakeFiles/nvsim_core.dir/csv.cc.o" "gcc" "src/core/CMakeFiles/nvsim_core.dir/csv.cc.o.d"
  "/root/repo/src/core/lfsr.cc" "src/core/CMakeFiles/nvsim_core.dir/lfsr.cc.o" "gcc" "src/core/CMakeFiles/nvsim_core.dir/lfsr.cc.o.d"
  "/root/repo/src/core/logging.cc" "src/core/CMakeFiles/nvsim_core.dir/logging.cc.o" "gcc" "src/core/CMakeFiles/nvsim_core.dir/logging.cc.o.d"
  "/root/repo/src/core/stats.cc" "src/core/CMakeFiles/nvsim_core.dir/stats.cc.o" "gcc" "src/core/CMakeFiles/nvsim_core.dir/stats.cc.o.d"
  "/root/repo/src/core/timeseries.cc" "src/core/CMakeFiles/nvsim_core.dir/timeseries.cc.o" "gcc" "src/core/CMakeFiles/nvsim_core.dir/timeseries.cc.o.d"
  "/root/repo/src/core/units.cc" "src/core/CMakeFiles/nvsim_core.dir/units.cc.o" "gcc" "src/core/CMakeFiles/nvsim_core.dir/units.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
