file(REMOVE_RECURSE
  "libnvsim_core.a"
)
