# Empty compiler generated dependencies file for nvsim_core.
# This may be replaced when dependencies are built.
