file(REMOVE_RECURSE
  "CMakeFiles/nvsim_core.dir/csv.cc.o"
  "CMakeFiles/nvsim_core.dir/csv.cc.o.d"
  "CMakeFiles/nvsim_core.dir/lfsr.cc.o"
  "CMakeFiles/nvsim_core.dir/lfsr.cc.o.d"
  "CMakeFiles/nvsim_core.dir/logging.cc.o"
  "CMakeFiles/nvsim_core.dir/logging.cc.o.d"
  "CMakeFiles/nvsim_core.dir/stats.cc.o"
  "CMakeFiles/nvsim_core.dir/stats.cc.o.d"
  "CMakeFiles/nvsim_core.dir/timeseries.cc.o"
  "CMakeFiles/nvsim_core.dir/timeseries.cc.o.d"
  "CMakeFiles/nvsim_core.dir/units.cc.o"
  "CMakeFiles/nvsim_core.dir/units.cc.o.d"
  "libnvsim_core.a"
  "libnvsim_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
