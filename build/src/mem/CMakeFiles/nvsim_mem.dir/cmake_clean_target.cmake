file(REMOVE_RECURSE
  "libnvsim_mem.a"
)
