file(REMOVE_RECURSE
  "CMakeFiles/nvsim_mem.dir/dram.cc.o"
  "CMakeFiles/nvsim_mem.dir/dram.cc.o.d"
  "CMakeFiles/nvsim_mem.dir/nvram.cc.o"
  "CMakeFiles/nvsim_mem.dir/nvram.cc.o.d"
  "libnvsim_mem.a"
  "libnvsim_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
