# Empty dependencies file for nvsim_mem.
# This may be replaced when dependencies are built.
