file(REMOVE_RECURSE
  "libnvsim_kernels.a"
)
