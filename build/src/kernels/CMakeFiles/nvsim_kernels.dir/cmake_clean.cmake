file(REMOVE_RECURSE
  "CMakeFiles/nvsim_kernels.dir/kernels.cc.o"
  "CMakeFiles/nvsim_kernels.dir/kernels.cc.o.d"
  "CMakeFiles/nvsim_kernels.dir/pattern.cc.o"
  "CMakeFiles/nvsim_kernels.dir/pattern.cc.o.d"
  "libnvsim_kernels.a"
  "libnvsim_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
