# Empty dependencies file for nvsim_kernels.
# This may be replaced when dependencies are built.
