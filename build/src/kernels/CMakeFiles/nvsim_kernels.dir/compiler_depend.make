# Empty compiler generated dependencies file for nvsim_kernels.
# This may be replaced when dependencies are built.
