file(REMOVE_RECURSE
  "libnvsim_graphs.a"
)
