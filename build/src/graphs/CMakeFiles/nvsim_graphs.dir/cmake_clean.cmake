file(REMOVE_RECURSE
  "CMakeFiles/nvsim_graphs.dir/algorithms.cc.o"
  "CMakeFiles/nvsim_graphs.dir/algorithms.cc.o.d"
  "CMakeFiles/nvsim_graphs.dir/csr.cc.o"
  "CMakeFiles/nvsim_graphs.dir/csr.cc.o.d"
  "CMakeFiles/nvsim_graphs.dir/generators.cc.o"
  "CMakeFiles/nvsim_graphs.dir/generators.cc.o.d"
  "CMakeFiles/nvsim_graphs.dir/runner.cc.o"
  "CMakeFiles/nvsim_graphs.dir/runner.cc.o.d"
  "libnvsim_graphs.a"
  "libnvsim_graphs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_graphs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
