# Empty dependencies file for nvsim_graphs.
# This may be replaced when dependencies are built.
