file(REMOVE_RECURSE
  "libnvsim_profile.a"
)
