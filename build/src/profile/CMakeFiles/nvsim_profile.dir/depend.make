# Empty dependencies file for nvsim_profile.
# This may be replaced when dependencies are built.
