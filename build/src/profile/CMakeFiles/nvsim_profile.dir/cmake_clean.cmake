file(REMOVE_RECURSE
  "CMakeFiles/nvsim_profile.dir/characterize.cc.o"
  "CMakeFiles/nvsim_profile.dir/characterize.cc.o.d"
  "libnvsim_profile.a"
  "libnvsim_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
