# Empty compiler generated dependencies file for nvsim_imc.
# This may be replaced when dependencies are built.
