file(REMOVE_RECURSE
  "libnvsim_imc.a"
)
