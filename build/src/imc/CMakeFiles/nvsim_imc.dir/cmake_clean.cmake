file(REMOVE_RECURSE
  "CMakeFiles/nvsim_imc.dir/channel.cc.o"
  "CMakeFiles/nvsim_imc.dir/channel.cc.o.d"
  "CMakeFiles/nvsim_imc.dir/counters.cc.o"
  "CMakeFiles/nvsim_imc.dir/counters.cc.o.d"
  "CMakeFiles/nvsim_imc.dir/ddo.cc.o"
  "CMakeFiles/nvsim_imc.dir/ddo.cc.o.d"
  "CMakeFiles/nvsim_imc.dir/dram_cache.cc.o"
  "CMakeFiles/nvsim_imc.dir/dram_cache.cc.o.d"
  "libnvsim_imc.a"
  "libnvsim_imc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_imc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
