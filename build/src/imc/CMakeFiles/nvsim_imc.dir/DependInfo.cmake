
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/imc/channel.cc" "src/imc/CMakeFiles/nvsim_imc.dir/channel.cc.o" "gcc" "src/imc/CMakeFiles/nvsim_imc.dir/channel.cc.o.d"
  "/root/repo/src/imc/counters.cc" "src/imc/CMakeFiles/nvsim_imc.dir/counters.cc.o" "gcc" "src/imc/CMakeFiles/nvsim_imc.dir/counters.cc.o.d"
  "/root/repo/src/imc/ddo.cc" "src/imc/CMakeFiles/nvsim_imc.dir/ddo.cc.o" "gcc" "src/imc/CMakeFiles/nvsim_imc.dir/ddo.cc.o.d"
  "/root/repo/src/imc/dram_cache.cc" "src/imc/CMakeFiles/nvsim_imc.dir/dram_cache.cc.o" "gcc" "src/imc/CMakeFiles/nvsim_imc.dir/dram_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mem/CMakeFiles/nvsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nvsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
