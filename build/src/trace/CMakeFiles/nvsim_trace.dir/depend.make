# Empty dependencies file for nvsim_trace.
# This may be replaced when dependencies are built.
