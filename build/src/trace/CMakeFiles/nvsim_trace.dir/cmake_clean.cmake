file(REMOVE_RECURSE
  "CMakeFiles/nvsim_trace.dir/trace.cc.o"
  "CMakeFiles/nvsim_trace.dir/trace.cc.o.d"
  "libnvsim_trace.a"
  "libnvsim_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
