file(REMOVE_RECURSE
  "libnvsim_trace.a"
)
