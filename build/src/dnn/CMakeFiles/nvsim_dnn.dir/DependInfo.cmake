
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dnn/arena.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/arena.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/arena.cc.o.d"
  "/root/repo/src/dnn/autotm.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/autotm.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/autotm.cc.o.d"
  "/root/repo/src/dnn/densenet.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/densenet.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/densenet.cc.o.d"
  "/root/repo/src/dnn/embedding.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/embedding.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/embedding.cc.o.d"
  "/root/repo/src/dnn/executor.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/executor.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/executor.cc.o.d"
  "/root/repo/src/dnn/graph.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/graph.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/graph.cc.o.d"
  "/root/repo/src/dnn/inception.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/inception.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/inception.cc.o.d"
  "/root/repo/src/dnn/liveness.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/liveness.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/liveness.cc.o.d"
  "/root/repo/src/dnn/networks.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/networks.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/networks.cc.o.d"
  "/root/repo/src/dnn/planner.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/planner.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/planner.cc.o.d"
  "/root/repo/src/dnn/resnet.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/resnet.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/resnet.cc.o.d"
  "/root/repo/src/dnn/vgg.cc" "src/dnn/CMakeFiles/nvsim_dnn.dir/vgg.cc.o" "gcc" "src/dnn/CMakeFiles/nvsim_dnn.dir/vgg.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sys/CMakeFiles/nvsim_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/imc/CMakeFiles/nvsim_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nvsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
