# Empty dependencies file for nvsim_dnn.
# This may be replaced when dependencies are built.
