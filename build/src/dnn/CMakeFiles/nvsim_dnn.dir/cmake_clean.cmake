file(REMOVE_RECURSE
  "CMakeFiles/nvsim_dnn.dir/arena.cc.o"
  "CMakeFiles/nvsim_dnn.dir/arena.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/autotm.cc.o"
  "CMakeFiles/nvsim_dnn.dir/autotm.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/densenet.cc.o"
  "CMakeFiles/nvsim_dnn.dir/densenet.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/embedding.cc.o"
  "CMakeFiles/nvsim_dnn.dir/embedding.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/executor.cc.o"
  "CMakeFiles/nvsim_dnn.dir/executor.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/graph.cc.o"
  "CMakeFiles/nvsim_dnn.dir/graph.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/inception.cc.o"
  "CMakeFiles/nvsim_dnn.dir/inception.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/liveness.cc.o"
  "CMakeFiles/nvsim_dnn.dir/liveness.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/networks.cc.o"
  "CMakeFiles/nvsim_dnn.dir/networks.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/planner.cc.o"
  "CMakeFiles/nvsim_dnn.dir/planner.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/resnet.cc.o"
  "CMakeFiles/nvsim_dnn.dir/resnet.cc.o.d"
  "CMakeFiles/nvsim_dnn.dir/vgg.cc.o"
  "CMakeFiles/nvsim_dnn.dir/vgg.cc.o.d"
  "libnvsim_dnn.a"
  "libnvsim_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
