file(REMOVE_RECURSE
  "libnvsim_dnn.a"
)
