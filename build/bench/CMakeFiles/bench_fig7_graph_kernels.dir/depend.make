# Empty dependencies file for bench_fig7_graph_kernels.
# This may be replaced when dependencies are built.
