# Empty dependencies file for bench_table1_amplification.
# This may be replaced when dependencies are built.
