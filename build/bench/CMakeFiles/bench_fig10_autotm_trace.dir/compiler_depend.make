# Empty compiler generated dependencies file for bench_fig10_autotm_trace.
# This may be replaced when dependencies are built.
