file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_data_moved.dir/bench_fig8_data_moved.cc.o"
  "CMakeFiles/bench_fig8_data_moved.dir/bench_fig8_data_moved.cc.o.d"
  "bench_fig8_data_moved"
  "bench_fig8_data_moved.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_data_moved.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
