file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_2lm_microbench.dir/bench_fig4_2lm_microbench.cc.o"
  "CMakeFiles/bench_fig4_2lm_microbench.dir/bench_fig4_2lm_microbench.cc.o.d"
  "bench_fig4_2lm_microbench"
  "bench_fig4_2lm_microbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_2lm_microbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
