# Empty compiler generated dependencies file for bench_fig4_2lm_microbench.
# This may be replaced when dependencies are built.
