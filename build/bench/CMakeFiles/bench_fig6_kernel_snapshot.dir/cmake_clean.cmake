file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_kernel_snapshot.dir/bench_fig6_kernel_snapshot.cc.o"
  "CMakeFiles/bench_fig6_kernel_snapshot.dir/bench_fig6_kernel_snapshot.cc.o.d"
  "bench_fig6_kernel_snapshot"
  "bench_fig6_kernel_snapshot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_kernel_snapshot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
