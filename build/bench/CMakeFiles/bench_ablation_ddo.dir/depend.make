# Empty dependencies file for bench_ablation_ddo.
# This may be replaced when dependencies are built.
