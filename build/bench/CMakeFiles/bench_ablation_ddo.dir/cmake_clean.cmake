file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_ddo.dir/bench_ablation_ddo.cc.o"
  "CMakeFiles/bench_ablation_ddo.dir/bench_ablation_ddo.cc.o.d"
  "bench_ablation_ddo"
  "bench_ablation_ddo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_ddo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
