# Empty compiler generated dependencies file for bench_fig2_nvram_bw.
# This may be replaced when dependencies are built.
