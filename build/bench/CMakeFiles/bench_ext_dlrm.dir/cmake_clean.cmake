file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dlrm.dir/bench_ext_dlrm.cc.o"
  "CMakeFiles/bench_ext_dlrm.dir/bench_ext_dlrm.cc.o.d"
  "bench_ext_dlrm"
  "bench_ext_dlrm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dlrm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
