# Empty dependencies file for bench_ext_dlrm.
# This may be replaced when dependencies are built.
