# Empty dependencies file for bench_ext_dma_mover.
# This may be replaced when dependencies are built.
