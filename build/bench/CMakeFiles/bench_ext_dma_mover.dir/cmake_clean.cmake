file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_dma_mover.dir/bench_ext_dma_mover.cc.o"
  "CMakeFiles/bench_ext_dma_mover.dir/bench_ext_dma_mover.cc.o.d"
  "bench_ext_dma_mover"
  "bench_ext_dma_mover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_dma_mover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
