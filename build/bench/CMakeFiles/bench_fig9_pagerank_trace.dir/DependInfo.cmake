
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig9_pagerank_trace.cc" "bench/CMakeFiles/bench_fig9_pagerank_trace.dir/bench_fig9_pagerank_trace.cc.o" "gcc" "bench/CMakeFiles/bench_fig9_pagerank_trace.dir/bench_fig9_pagerank_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graphs/CMakeFiles/nvsim_graphs.dir/DependInfo.cmake"
  "/root/repo/build/src/sys/CMakeFiles/nvsim_sys.dir/DependInfo.cmake"
  "/root/repo/build/src/imc/CMakeFiles/nvsim_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/nvsim_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/nvsim_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
