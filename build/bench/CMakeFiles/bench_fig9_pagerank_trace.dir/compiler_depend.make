# Empty compiler generated dependencies file for bench_fig9_pagerank_trace.
# This may be replaced when dependencies are built.
