# Empty dependencies file for bench_ablation_sage.
# This may be replaced when dependencies are built.
