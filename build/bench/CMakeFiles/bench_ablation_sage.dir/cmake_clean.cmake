file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_sage.dir/bench_ablation_sage.cc.o"
  "CMakeFiles/bench_ablation_sage.dir/bench_ablation_sage.cc.o.d"
  "bench_ablation_sage"
  "bench_ablation_sage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_sage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
