file(REMOVE_RECURSE
  "CMakeFiles/nvsim_cli.dir/nvsim_cli.cpp.o"
  "CMakeFiles/nvsim_cli.dir/nvsim_cli.cpp.o.d"
  "nvsim_cli"
  "nvsim_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvsim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
