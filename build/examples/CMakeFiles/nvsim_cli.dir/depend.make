# Empty dependencies file for nvsim_cli.
# This may be replaced when dependencies are built.
