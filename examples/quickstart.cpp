/**
 * @file
 * Quickstart: build a simulated Cascade Lake + Optane socket, run a
 * microbenchmark against it in both memory modes, and read the uncore
 * counters — the 60-second tour of the nvsim public API.
 */

#include <cstdio>

#include "core/units.hh"
#include "kernels/kernels.hh"
#include "sys/memsys.hh"

using namespace nvsim;

int
main()
{
    // 1. Describe the machine. Defaults model the paper's testbed:
    //    one socket, 6 channels, each with a 32 GiB DDR4 DIMM and a
    //    512 GiB Optane DIMM. `scale` shrinks every capacity by the
    //    same factor so experiments run in seconds while preserving
    //    all the capacity ratios that drive 2LM behavior.
    SystemConfig cfg;
    cfg.scale = 4096;              // 192 GiB DRAM -> 48 MiB, etc.
    cfg.mode = MemoryMode::TwoLm;  // DRAM is a hardware-managed cache

    MemorySystem sys(cfg);
    std::printf("machine: %u channels, DRAM cache %s, NVRAM %s, LLC %s\n",
                sys.numChannels(),
                formatBytes(cfg.dramTotal()).c_str(),
                formatBytes(cfg.nvramTotal()).c_str(),
                formatBytes(sys.llc().capacity()).c_str());

    // 2. Allocate an array 2.2x the DRAM cache, as the paper does to
    //    force a ~100% miss rate, and prime it.
    Region arr = sys.allocate(cfg.dramTotal() * 22 / 10, "big_array");
    primeClean(sys, arr);
    sys.resetCounters();

    // 3. Run the paper's read-only kernel on 24 threads.
    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.pattern = AccessPattern::Sequential;
    k.threads = 24;
    KernelResult r2lm = runKernel(sys, arr, k);

    std::printf("\n2LM, 100%% miss: %s\n", r2lm.summary().c_str());
    std::printf("  -> every demand read cost ~3 device accesses "
                "(tag check + NVRAM fetch + insert)\n");

    // 4. Same kernel with NVRAM as explicit (app-direct / 1LM) memory.
    SystemConfig cfg1 = cfg;
    cfg1.mode = MemoryMode::OneLm;
    MemorySystem direct(cfg1);
    Region nv = direct.allocateIn(MemPool::Nvram, arr.size, "array");
    KernelResult r1lm = runKernel(direct, nv, k);

    std::printf("\n1LM (app direct): %s\n", r1lm.summary().c_str());
    std::printf("\n2LM reaches %.0f%% of the 1LM bandwidth "
                "(the paper's core observation)\n",
                100.0 * r2lm.effectiveBandwidth /
                    r1lm.effectiveBandwidth);
    return 0;
}
