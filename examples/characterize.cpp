/**
 * @file
 * Example: characterize a configured machine the way the paper's
 * Section III does before any experiment — sweep bandwidths, find the
 * knees, measure amplifications — and print the profile report. Try
 * editing the SystemConfig fields to model different DIMMs.
 */

#include <cstdio>

#include "profile/characterize.hh"
#include "sys/memsys.hh"

using namespace nvsim;

int
main()
{
    SystemConfig cfg;      // the paper's testbed
    cfg.scale = 8192;

    std::printf("characterizing the default (paper-testbed) machine "
                "...\n\n");
    profile::SystemProfile p = profile::characterize(cfg, 8 * kMiB);
    std::printf("%s", profile::report(p).c_str());

    // What would the smaller (faster) 128 GiB DIMMs change? The paper
    // notes they reach 6.8 GB/s read per DIMM instead of 5.3.
    SystemConfig fast = cfg;
    fast.nvram.readBandwidth = 6.8e9;
    std::printf("\nwith 128 GiB-class DIMMs (6.8 GB/s media read):\n\n");
    profile::SystemProfile pf = profile::characterize(fast, 8 * kMiB);
    std::printf("%s", profile::report(pf).c_str());

    // An aging machine: seeded media faults and ECC-corrupted 2LM
    // tags (DESIGN.md §5). The same characterization shows how much
    // bandwidth the fault handling costs; the FaultLog records what
    // was injected.
    SystemConfig aging = cfg;
    aging.fault.seed = 7;
    aging.fault.nvramReadCorrectable = 1e-3;
    aging.fault.nvramReadUncorrectable = 1e-5;
    aging.fault.tagEccUncorrectable = 1e-4;
    std::printf("\nsame machine with aging DIMMs (media error rate "
                "1e-3, tag-ECC fault rate 1e-4):\n\n");
    profile::SystemProfile pa = profile::characterize(aging, 8 * kMiB);
    std::printf("%s", profile::report(pa).c_str());

    MemorySystem sys(aging);
    Region arr = sys.allocate(4 * kMiB, "probe");
    for (Addr a = arr.base; a < arr.base + arr.size; a += kLineSize)
        sys.touchLine(0, CpuOp::Load, a);
    sys.quiesce();
    std::printf("\nfault log after a 4 MiB read sweep:\n%s",
                sys.faultLog().summary().c_str());
    return 0;
}
