/**
 * @file
 * Example: characterize a configured machine the way the paper's
 * Section III does before any experiment — sweep bandwidths, find the
 * knees, measure amplifications — and print the profile report. Try
 * editing the SystemConfig fields to model different DIMMs.
 */

#include <cstdio>

#include "profile/characterize.hh"

using namespace nvsim;

int
main()
{
    SystemConfig cfg;      // the paper's testbed
    cfg.scale = 8192;

    std::printf("characterizing the default (paper-testbed) machine "
                "...\n\n");
    profile::SystemProfile p = profile::characterize(cfg, 8 * kMiB);
    std::printf("%s", profile::report(p).c_str());

    // What would the smaller (faster) 128 GiB DIMMs change? The paper
    // notes they reach 6.8 GB/s read per DIMM instead of 5.3.
    SystemConfig fast = cfg;
    fast.nvram.readBandwidth = 6.8e9;
    std::printf("\nwith 128 GiB-class DIMMs (6.8 GB/s media read):\n\n");
    profile::SystemProfile pf = profile::characterize(fast, 8 * kMiB);
    std::printf("%s", profile::report(pf).c_str());
    return 0;
}
