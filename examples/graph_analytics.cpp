/**
 * @file
 * Example: large-scale graph analytics on the heterogeneous memory
 * system — pagerank on a web-scale graph that exceeds the DRAM cache,
 * run three ways: hardware-managed 2LM, naive NUMA-preferred 1LM, and
 * Sage-style semi-asymmetric placement (read-only graph in NVRAM,
 * mutable state in DRAM). Section VI + VII-A.2 of the paper.
 */

#include <cstdio>

#include "core/units.hh"
#include "graphs/generators.hh"
#include "graphs/runner.hh"

using namespace nvsim;
using namespace nvsim::graphs;

int
main()
{
    constexpr std::uint64_t kScale = 8192;

    // A web-like power-law graph (wdc12 stand-in) that exceeds the
    // scaled two-socket DRAM cache.
    WebGraphParams wp;
    wp.numNodes = 300 * 1024;
    wp.avgDegree = 32;
    CsrGraph graph = webGraph(wp);

    SystemConfig probe;
    probe.sockets = 2;
    probe.scale = kScale;
    std::printf("graph: %u nodes, %llu edges, %s binary "
                "(DRAM cache: %s)\n",
                graph.numNodes(),
                static_cast<unsigned long long>(graph.numEdges()),
                formatBytes(graph.bytes()).c_str(),
                formatBytes(probe.dramTotal()).c_str());

    struct Setup
    {
        const char *name;
        MemoryMode mode;
        Placement placement;
        const char *note;
    };
    const Setup setups[] = {
        {"2LM (memory mode)", MemoryMode::TwoLm, Placement::TwoLm,
         "hardware cache amplifies misses, dirty graph data writes "
         "back to NVRAM"},
        {"1LM NUMA-preferred", MemoryMode::OneLm,
         Placement::NumaPreferred,
         "no amplification, but hot data can land in slow NVRAM"},
        {"1LM Sage-style", MemoryMode::OneLm, Placement::Sage,
         "read-only graph in NVRAM, mutable state in DRAM: zero NVRAM "
         "writes"},
    };

    double baseline = 0;
    for (const Setup &s : setups) {
        SystemConfig cfg;
        cfg.sockets = 2;
        cfg.scale = kScale;
        cfg.mode = s.mode;
        MemorySystem sys(cfg);

        GraphRunConfig rc;
        rc.placement = s.placement;
        rc.threads = 96;
        rc.prRounds = 6;
        GraphWorkload workload(sys, graph, rc);
        sys.resetCounters();

        GraphRunResult r = workload.run(GraphKernel::PageRank);
        if (baseline == 0)
            baseline = r.seconds;
        std::printf("\n%-20s %.4f s (%.2fx) | moved %s | NVRAM wr %s\n",
                    s.name, r.seconds, baseline / r.seconds,
                    formatBytes(r.dataMoved()).c_str(),
                    formatBytes(r.counters.nvramWrite * kLineSize)
                        .c_str());
        std::printf("    %s\n", s.note);
    }
    return 0;
}
