/**
 * @file
 * nvsim command-line driver: run the paper's experiments with custom
 * parameters without writing C++. Subcommands:
 *
 *   nvsim_cli kernel  [--mode 2lm|1lm] [--op read|write|rmw]
 *                     [--pattern seq|rand] [--threads N] [--gran B]
 *                     [--array-x100 PCT] [--scale N] [--ddo MODE]
 *                     [--ways N] [--prime clean|dirty|none]
 *   nvsim_cli profile [--scale N]
 *   nvsim_cli graph   [--kernel bfs|cc|kcore|pr|sssp]
 *                     [--placement 2lm|numa|sage] [--threads N]
 *                     [--nodes N] [--degree D] [--scale N]
 *
 * Everything prints the uncore counters and bandwidths the paper's
 * methodology reports.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>

#include "core/units.hh"
#include "graphs/generators.hh"
#include "graphs/runner.hh"
#include "kernels/kernels.hh"
#include "profile/characterize.hh"

using namespace nvsim;

namespace
{

/** Minimal --flag value parser. */
class Args
{
  public:
    Args(int argc, char **argv, int first)
    {
        for (int i = first; i + 1 < argc; i += 2) {
            if (std::strncmp(argv[i], "--", 2) != 0) {
                std::fprintf(stderr, "expected --flag, got '%s'\n",
                             argv[i]);
                std::exit(2);
            }
            values_[argv[i] + 2] = argv[i + 1];
        }
    }

    std::string
    get(const std::string &key, const std::string &fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end() ? fallback : it->second;
    }

    std::uint64_t
    getInt(const std::string &key, std::uint64_t fallback) const
    {
        auto it = values_.find(key);
        return it == values_.end()
                   ? fallback
                   : std::strtoull(it->second.c_str(), nullptr, 10);
    }

  private:
    std::map<std::string, std::string> values_;
};

void
printCounters(const PerfCounters &c, double seconds)
{
    auto bw = [&](std::uint64_t lines) {
        return formatBandwidth(
            seconds > 0
                ? static_cast<double>(lines) * kLineSize / seconds
                : 0);
    };
    std::printf("  time %s | DRAM rd %s wr %s | NVRAM rd %s wr %s\n",
                formatSeconds(seconds).c_str(),
                bw(c.dramRead).c_str(), bw(c.dramWrite).c_str(),
                bw(c.nvramRead).c_str(), bw(c.nvramWrite).c_str());
    double demand = static_cast<double>(
        std::max<std::uint64_t>(c.demand(), 1));
    std::printf("  amplification %.2f | tag hit %.3f clean %.3f dirty "
                "%.3f ddo %.3f\n",
                c.amplification(), c.tagHit / demand,
                c.tagMissClean / demand, c.tagMissDirty / demand,
                c.ddoHit / demand);
}

int
cmdKernel(const Args &args)
{
    SystemConfig cfg;
    cfg.scale = args.getInt("scale", 4096);
    bool two_lm = args.get("mode", "2lm") == "2lm";
    cfg.mode = two_lm ? MemoryMode::TwoLm : MemoryMode::OneLm;
    std::string ddo = args.get("ddo", "tracker");
    cfg.ddo.mode = ddo == "none" ? DdoMode::None
                   : ddo == "oracle" ? DdoMode::Oracle
                                     : DdoMode::RecentTracker;
    cfg.cacheWays = static_cast<unsigned>(args.getInt("ways", 1));

    MemorySystem sys(cfg);
    Bytes size =
        cfg.dramTotal() * args.getInt("array-x100", 220) / 100;
    Region arr = two_lm
                     ? sys.allocate(size, "array")
                     : sys.allocateIn(MemPool::Nvram, size, "array");

    std::string prime = args.get("prime", two_lm ? "clean" : "none");
    if (prime == "clean")
        primeClean(sys, arr);
    else if (prime == "dirty")
        primeDirty(sys, arr);
    sys.resetCounters();

    KernelConfig k;
    std::string op = args.get("op", "read");
    k.op = op == "write"  ? KernelOp::WriteOnly
           : op == "rmw"  ? KernelOp::ReadModifyWrite
                          : KernelOp::ReadOnly;
    k.pattern = args.get("pattern", "seq") == "rand"
                    ? AccessPattern::Random
                    : AccessPattern::Sequential;
    k.threads = static_cast<unsigned>(args.getInt("threads", 24));
    k.granularity = args.getInt("gran", 64);
    k.nontemporal = args.get("stores", "nt") == "nt";

    std::printf("%s %s %s, %u threads, %s array, %s mode\n",
                kernelOpName(k.op), accessPatternName(k.pattern),
                formatBytes(k.granularity).c_str(), k.threads,
                formatBytes(arr.size).c_str(),
                memoryModeName(cfg.mode));
    KernelResult r = runKernel(sys, arr, k);
    std::printf("  effective %s\n",
                formatBandwidth(r.effectiveBandwidth).c_str());
    printCounters(r.counters, r.seconds);
    return 0;
}

int
cmdProfile(const Args &args)
{
    SystemConfig cfg;
    cfg.scale = args.getInt("scale", 8192);
    profile::SystemProfile p = profile::characterize(cfg);
    std::printf("%s", profile::report(p).c_str());
    return 0;
}

int
cmdGraph(const Args &args)
{
    using namespace nvsim::graphs;
    std::string placement_s = args.get("placement", "2lm");
    Placement placement = placement_s == "numa"
                              ? Placement::NumaPreferred
                          : placement_s == "sage" ? Placement::Sage
                                                  : Placement::TwoLm;
    SystemConfig cfg;
    cfg.sockets = 2;
    cfg.scale = args.getInt("scale", 8192);
    cfg.mode = placement == Placement::TwoLm ? MemoryMode::TwoLm
                                             : MemoryMode::OneLm;
    MemorySystem sys(cfg);

    WebGraphParams wp;
    wp.numNodes =
        static_cast<Node>(args.getInt("nodes", 200 * 1024));
    wp.avgDegree = static_cast<double>(args.getInt("degree", 24));
    CsrGraph g = webGraph(wp);
    std::printf("graph: %u nodes, %llu edges, %s (DRAM %s)\n",
                g.numNodes(),
                static_cast<unsigned long long>(g.numEdges()),
                formatBytes(g.bytes()).c_str(),
                formatBytes(cfg.dramTotal()).c_str());

    GraphRunConfig rc;
    rc.placement = placement;
    rc.threads = static_cast<unsigned>(args.getInt("threads", 96));
    rc.prRounds = static_cast<unsigned>(args.getInt("rounds", 5));
    GraphWorkload w(sys, g, rc);
    sys.resetCounters();

    std::string kernel_s = args.get("kernel", "pr");
    GraphKernel kernel = kernel_s == "bfs"     ? GraphKernel::Bfs
                         : kernel_s == "cc"    ? GraphKernel::Cc
                         : kernel_s == "kcore" ? GraphKernel::KCore
                         : kernel_s == "sssp"  ? GraphKernel::Sssp
                                               : GraphKernel::PageRank;
    GraphRunResult r = w.run(kernel);
    std::printf("%s on %s: %llu rounds, answer %llu\n",
                graphKernelName(kernel), placementName(placement),
                static_cast<unsigned long long>(r.rounds),
                static_cast<unsigned long long>(r.answer));
    printCounters(r.counters, r.seconds);
    return 0;
}

void
usage()
{
    std::fprintf(
        stderr,
        "usage: nvsim_cli <kernel|profile|graph> [--flag value ...]\n"
        "see the file header of examples/nvsim_cli.cpp for flags\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    Args args(argc, argv, 2);
    std::string cmd = argv[1];
    if (cmd == "kernel")
        return cmdKernel(args);
    if (cmd == "profile")
        return cmdProfile(args);
    if (cmd == "graph")
        return cmdGraph(args);
    usage();
    return 2;
}
