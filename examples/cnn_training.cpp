/**
 * @file
 * Example: train DenseNet 264 with a memory footprint ~3.5x the DRAM
 * cache, first under the hardware-managed 2LM cache, then under
 * AutoTM-style software management in app-direct mode — the paper's
 * Section V / VII-A.1 story end to end.
 */

#include <cstdio>

#include "core/units.hh"
#include "dnn/autotm.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::dnn;

int
main()
{
    constexpr std::uint64_t kScale = 1u << 14;
    constexpr std::uint64_t kBatch = 2304;

    ComputeGraph net = buildDenseNet264(kBatch);
    std::printf("DenseNet 264, batch %llu: %zu kernels (%zu forward), "
                "%zu tensors\n",
                static_cast<unsigned long long>(kBatch),
                net.schedule().size(), net.forwardOps(),
                net.tensors().size());

    ExecutorConfig ecfg;
    ecfg.threads = 24;

    // --- Hardware-managed: 2LM memory mode -----------------------------
    SystemConfig cfg2;
    cfg2.mode = MemoryMode::TwoLm;
    cfg2.scale = kScale;
    MemorySystem sys2(cfg2);
    Executor hw(sys2, net, ecfg);
    std::printf("\narena %s vs DRAM cache %s (ratio %.2f, paper: "
                "688 GB vs 192 GB)\n",
                formatBytes(hw.plan().arenaBytes).c_str(),
                formatBytes(cfg2.dramTotal()).c_str(),
                static_cast<double>(hw.plan().arenaBytes) /
                    static_cast<double>(cfg2.dramTotal()));

    hw.runIteration();  // warm up the cache
    sys2.resetCounters();
    IterationResult r2 = hw.runIteration();
    double demand = static_cast<double>(r2.counters.demand());
    std::printf("\n[2LM]    iteration %.4f s | tag hits %.0f%%, dirty "
                "misses %.0f%% | NVRAM wr %s\n",
                r2.seconds, 100.0 * r2.counters.tagHit / demand,
                100.0 * r2.counters.tagMissDirty / demand,
                formatBytes(r2.counters.nvramWrite * kLineSize).c_str());
    std::printf("         (the dirty writebacks include dead data the "
                "cache cannot know is free)\n");

    // --- Software-managed: AutoTM over 1LM ------------------------------
    SystemConfig cfg1 = cfg2;
    cfg1.mode = MemoryMode::OneLm;
    MemorySystem sys1(cfg1);
    AutoTmConfig acfg;
    acfg.exec = ecfg;
    AutoTmExecutor sw(sys1, net, acfg);
    sw.runIteration();
    sys1.resetCounters();
    IterationResult r1 = sw.runIteration();
    std::printf("\n[AutoTM] iteration %.4f s | %llu spills, %llu "
                "fetches, %llu dead tensors dropped for free\n",
                r1.seconds,
                static_cast<unsigned long long>(sw.stats().movesToNvram),
                static_cast<unsigned long long>(sw.stats().movesToDram),
                static_cast<unsigned long long>(
                    sw.stats().deadTensorsDropped));
    std::printf("         NVRAM wr %s (vs %s under 2LM)\n",
                formatBytes(r1.counters.nvramWrite * kLineSize).c_str(),
                formatBytes(r2.counters.nvramWrite * kLineSize).c_str());

    std::printf("\nsoftware management speedup: %.2fx (paper: 3.1x for "
                "DenseNet 264)\n",
                r2.seconds / r1.seconds);
    return 0;
}
