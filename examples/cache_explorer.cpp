/**
 * @file
 * Example: interactive-style exploration of the 2LM DRAM cache's
 * behavioral cliffs. Sweeps the working-set size across the cache
 * capacity boundary and reports hit rate, access amplification and
 * effective bandwidth — the transition the paper's Figure 7 observes
 * between kron30 (fits) and wdc12 (does not fit) and the
 * microbenchmark cliffs of Figure 4.
 */

#include <cstdio>

#include "core/units.hh"
#include "kernels/kernels.hh"
#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

void
sweepOp(KernelOp op, const char *title, bool prime_dirty)
{
    std::printf("\n--- %s ---\n", title);
    std::printf("%-12s %-10s %-10s %-14s %-10s\n", "workingset/$",
                "hit rate", "amp", "effective", "NVRAM wr");
    for (int pct : {25, 50, 90, 110, 150, 220, 400}) {
        SystemConfig cfg;
        cfg.mode = MemoryMode::TwoLm;
        cfg.scale = 8192;
        MemorySystem sys(cfg);
        Bytes size = cfg.dramTotal() * static_cast<Bytes>(pct) / 100;
        Region arr = sys.allocate(size, "ws");
        if (prime_dirty)
            primeDirty(sys, arr);
        else
            primeClean(sys, arr);
        sys.resetCounters();

        KernelConfig k;
        k.op = op;
        k.threads = 16;
        KernelResult r = runKernel(sys, arr, k);
        double demand = static_cast<double>(
            std::max<std::uint64_t>(r.counters.demand(), 1));
        double hits = static_cast<double>(r.counters.tagHit +
                                          r.counters.ddoHit);
        std::printf("%-12s %-10.3f %-10.2f %-14s %-10s\n",
                    (std::to_string(pct) + "%").c_str(), hits / demand,
                    r.counters.amplification(),
                    formatBandwidth(r.effectiveBandwidth).c_str(),
                    formatBytes(r.counters.nvramWrite * kLineSize)
                        .c_str());
    }
}

} // namespace

int
main()
{
    std::printf("2LM behavior vs working-set size (as %% of the DRAM "
                "cache)\n");
    std::printf("the cache is direct mapped with insert-on-miss: "
                "crossing 100%% of capacity turns hits into 3-5x "
                "amplified misses\n");

    sweepOp(KernelOp::ReadOnly, "read-only loop (clean data)", false);
    sweepOp(KernelOp::WriteOnly,
            "nontemporal write loop (dirty data: adds NVRAM "
            "writebacks)", true);

    std::printf("\nNote the sharpness of the cliff: a direct-mapped "
                "cache offers no graceful degradation, which is the "
                "paper's first key limitation.\n");
    return 0;
}
