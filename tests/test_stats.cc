/** @file Tests for counters, stat groups and snapshot deltas. */

#include <gtest/gtest.h>

#include "core/stats.hh"

using namespace nvsim;

TEST(Counter, StartsAtZeroAndAccumulates)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

TEST(StatGroup, RegistersAndLooksUp)
{
    StatGroup g("imc0");
    g.counter("dram_read").add(7);
    g.counter("dram_write").add(3);
    EXPECT_EQ(g.value("dram_read"), 7u);
    EXPECT_EQ(g.value("dram_write"), 3u);
    EXPECT_EQ(g.value("missing"), 0u);
    EXPECT_EQ(g.name(), "imc0");
}

TEST(StatGroup, SameNameReturnsSameCounter)
{
    StatGroup g("g");
    g.counter("x").add(1);
    g.counter("x").add(1);
    EXPECT_EQ(g.value("x"), 2u);
    EXPECT_EQ(g.names().size(), 1u);
}

TEST(StatGroup, NamesPreserveRegistrationOrder)
{
    StatGroup g("g");
    g.counter("zeta");
    g.counter("alpha");
    g.counter("mid");
    auto names = g.names();
    ASSERT_EQ(names.size(), 3u);
    EXPECT_EQ(names[0], "zeta");
    EXPECT_EQ(names[1], "alpha");
    EXPECT_EQ(names[2], "mid");
}

TEST(StatGroup, SnapshotAndReset)
{
    StatGroup g("g");
    g.counter("a").add(5);
    auto snap = g.snapshot();
    EXPECT_EQ(snap.at("a"), 5u);
    g.resetAll();
    EXPECT_EQ(g.value("a"), 0u);
    // Snapshot is a copy, unaffected by the reset.
    EXPECT_EQ(snap.at("a"), 5u);
}

TEST(SnapshotDelta, SubtractsAndHandlesNewCounters)
{
    std::map<std::string, std::uint64_t> a{{"x", 10}};
    std::map<std::string, std::uint64_t> b{{"x", 25}, {"y", 4}};
    auto d = snapshotDelta(a, b);
    EXPECT_EQ(d.at("x"), 15u);
    EXPECT_EQ(d.at("y"), 4u);
}
