/**
 * @file
 * Tests for the graph workload runner: placement policies, graph
 * loading, traffic shapes in 2LM vs NUMA vs Sage.
 */

#include <gtest/gtest.h>

#include "graphs/algorithms.hh"
#include "graphs/generators.hh"

using namespace nvsim;
using namespace nvsim::graphs;

namespace
{

SystemConfig
sysCfg(MemoryMode mode, std::uint64_t scale = 1u << 16)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = scale;
    cfg.epochBytes = 32 * kKiB;
    return cfg;
}

GraphRunConfig
runCfg(Placement p)
{
    GraphRunConfig c;
    c.placement = p;
    c.threads = 8;
    c.prRounds = 3;
    c.kcoreK = 4;
    return c;
}

CsrGraph
mediumGraph()
{
    // ~560 KB binary: exceeds the 192 KiB cache at scale 2^20, fits
    // the 3 MiB cache at scale 2^16.
    KroneckerParams kp;
    kp.scale = 12;
    kp.edgeFactor = 16;
    return kronecker(kp);
}

} // namespace

TEST(GraphRunner, PlacementNames)
{
    EXPECT_STREQ(placementName(Placement::TwoLm), "2LM");
    EXPECT_STREQ(placementName(Placement::NumaPreferred),
                 "numa_preferred");
    EXPECT_STREQ(placementName(Placement::Sage), "sage");
    EXPECT_STREQ(graphKernelName(GraphKernel::Bfs), "bfs");
    EXPECT_STREQ(graphKernelName(GraphKernel::PageRank), "pr");
}

TEST(GraphRunner, PlacementModeMismatchIsFatal)
{
    CsrGraph g = CsrGraph::fromEdges(4, {{0, 1}}, true);
    MemorySystem sys(sysCfg(MemoryMode::TwoLm));
    EXPECT_DEATH(GraphWorkload(sys, g, runCfg(Placement::Sage)),
                 "incompatible");
}

TEST(GraphRunner, GraphLoadPrimesTheCache)
{
    CsrGraph g = mediumGraph();
    MemorySystem sys(sysCfg(MemoryMode::TwoLm));
    GraphWorkload w(sys, g, runCfg(Placement::TwoLm));
    // The constructor streamed the whole binary through the cache.
    EXPECT_GT(sys.counters().llcWrites,
              g.bytes() / kLineSize / 2);
}

TEST(GraphRunner, SageWritesOnlyReachDram)
{
    CsrGraph g = mediumGraph();
    SystemConfig scfg = sysCfg(MemoryMode::OneLm);
    MemorySystem sys(scfg);
    GraphWorkload w(sys, g, runCfg(Placement::Sage));
    sys.resetCounters();

    w.run(GraphKernel::PageRank);
    PerfCounters c = sys.counters();
    // Mutation only touches the DRAM-resident property arrays: no
    // NVRAM writes during the kernel (the paper's Sage property).
    EXPECT_EQ(c.nvramWrite, 0u);
    EXPECT_GT(c.nvramRead, 0u);   // edges still stream from NVRAM
    EXPECT_GT(c.dramWrite, 0u);
}

TEST(GraphRunner, NumaPreferredSpillsWhenGraphExceedsDram)
{
    CsrGraph g = mediumGraph();
    SystemConfig scfg = sysCfg(MemoryMode::OneLm, 1u << 20);
    MemorySystem sys(scfg);
    ASSERT_LT(scfg.dramTotal(), g.bytes());
    GraphWorkload w(sys, g, runCfg(Placement::NumaPreferred));
    sys.resetCounters();
    w.run(GraphKernel::Bfs);
    PerfCounters c = sys.counters();
    // Both pools see traffic: the graph spilled.
    EXPECT_GT(c.nvramRead, 0u);
    EXPECT_GT(c.dramRead, 0u);
    // And no cache-induced amplification in app-direct mode.
    EXPECT_DOUBLE_EQ(c.amplification(), 1.0);
}

TEST(GraphRunner, TwoLmAmplifiesWhenGraphExceedsCache)
{
    CsrGraph g = mediumGraph();

    // Case A: graph fits in the DRAM cache.
    SystemConfig small = sysCfg(MemoryMode::TwoLm, 1u << 14);
    MemorySystem sys_fit(small);
    ASSERT_GT(small.dramTotal(), g.bytes());
    GraphWorkload wf(sys_fit, g, runCfg(Placement::TwoLm));
    sys_fit.resetCounters();
    GraphRunResult fit = wf.run(GraphKernel::PageRank);

    // Case B: graph exceeds the DRAM cache.
    SystemConfig big = sysCfg(MemoryMode::TwoLm, 1u << 20);
    MemorySystem sys_over(big);
    ASSERT_LT(big.dramTotal(), g.bytes());
    GraphWorkload wo(sys_over, g, runCfg(Placement::TwoLm));
    sys_over.resetCounters();
    GraphRunResult over = wo.run(GraphKernel::PageRank);

    // Figure 7/8: the oversubscribed cache amplifies accesses and
    // loses bandwidth.
    EXPECT_GT(over.counters.amplification(),
              fit.counters.amplification() + 0.2);
    EXPECT_GT(over.counters.nvramRead + over.counters.nvramWrite,
              fit.counters.nvramRead + fit.counters.nvramWrite);
    EXPECT_GT(over.seconds, fit.seconds);
}

TEST(GraphRunner, ThreadPartitionCoversAllThreads)
{
    CsrGraph g = mediumGraph();
    MemorySystem sys(sysCfg(MemoryMode::TwoLm));
    GraphRunConfig cfg = runCfg(Placement::TwoLm);
    cfg.threads = 8;
    GraphWorkload w(sys, g, cfg);
    EXPECT_EQ(w.threadOf(0), 0u);
    EXPECT_EQ(w.threadOf(g.numNodes() - 1), 7u);
    // Monotone partition.
    unsigned prev = 0;
    for (Node v = 0; v < g.numNodes(); v += g.numNodes() / 64) {
        unsigned t = w.threadOf(v);
        EXPECT_GE(t, prev);
        prev = t;
    }
}

TEST(GraphRunResult, BandwidthAccessors)
{
    GraphRunResult r;
    r.seconds = 2.0;
    r.counters.dramRead = 1000;
    r.counters.nvramWrite = 500;
    EXPECT_DOUBLE_EQ(r.dramReadBandwidth(), 1000 * 64 / 2.0);
    EXPECT_DOUBLE_EQ(r.nvramWriteBandwidth(), 500 * 64 / 2.0);
    EXPECT_EQ(r.dataMoved(), (1000u + 500u) * 64u);
}
