/**
 * @file
 * Tests for the write-no-allocate ablation knob: the alternative to
 * the hardware's insert-on-miss behavior that the paper's critique of
 * wasted fill traffic implies.
 */

#include <gtest/gtest.h>

#include "imc/dram_cache.hh"
#include "kernels/kernels.hh"

using namespace nvsim;

namespace
{

DramCache
cacheWith(bool insert_on_write_miss)
{
    DramCacheParams p;
    p.capacity = 64 * kLineSize;
    p.ddo.mode = DdoMode::None;
    p.insertOnWriteMiss = insert_on_write_miss;
    return DramCache(p);
}

} // namespace

TEST(WriteNoAllocate, MissBypassesToNvram)
{
    DramCache c = cacheWith(false);
    CacheResult r = c.write(0);
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
    EXPECT_EQ(r.actions.dramReads, 1u);   // tag check still happens
    EXPECT_EQ(r.actions.dramWrites, 0u);  // no fill, no data write
    EXPECT_EQ(r.actions.nvramReads, 0u);
    EXPECT_EQ(r.actions.nvramWrites, 1u);
    EXPECT_EQ(r.actions.total(), 2u);     // amplification 2, not 4
    EXPECT_TRUE(r.wroteBack);
    EXPECT_EQ(r.victim, 0u);  // the write targets the demand address
    // The cache was not polluted.
    EXPECT_FALSE(c.resident(0));
}

TEST(WriteNoAllocate, OccupantSurvivesWriteMiss)
{
    DramCache c = cacheWith(false);
    c.read(0);  // occupant
    Addr alias = c.numSets() * kLineSize;
    c.write(alias);
    EXPECT_TRUE(c.resident(0));
    EXPECT_FALSE(c.resident(alias));
    // And the occupant is still a read hit.
    EXPECT_EQ(c.read(0).outcome, CacheOutcome::Hit);
}

TEST(WriteNoAllocate, WriteHitsStillUpdateInPlace)
{
    DramCache c = cacheWith(false);
    c.read(0);
    CacheResult r = c.write(0);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
    EXPECT_EQ(r.actions.total(), 2u);
    EXPECT_TRUE(c.residentDirty(0));
}

TEST(WriteNoAllocate, ReadMissesStillAllocate)
{
    DramCache c = cacheWith(false);
    CacheResult r = c.read(0);
    EXPECT_EQ(r.actions.total(), 3u);
    EXPECT_TRUE(c.resident(0));
}

TEST(WriteNoAllocate, EndToEndMissStreamCheaper)
{
    auto run = [&](bool insert) {
        SystemConfig cfg;
        cfg.mode = MemoryMode::TwoLm;
        cfg.scale = 8192;
        cfg.insertOnWriteMiss = insert;
        MemorySystem sys(cfg);
        Region arr = sys.allocate(cfg.dramTotal() * 22 / 10, "arr");
        primeDirty(sys, arr, 8);
        sys.resetCounters();
        KernelConfig k;
        k.op = KernelOp::WriteOnly;
        k.nontemporal = true;
        k.threads = 24;
        return runKernel(sys, arr, k);
    };
    KernelResult with_insert = run(true);
    KernelResult no_alloc = run(false);
    // No-allocate cuts the amplification roughly in half...
    EXPECT_LT(no_alloc.counters.amplification(),
              with_insert.counters.amplification() - 1.5);
    // ...and raises effective write bandwidth.
    EXPECT_GT(no_alloc.effectiveBandwidth,
              with_insert.effectiveBandwidth);
}
