/**
 * @file
 * Directed tests for the fault-injection and graceful-degradation
 * subsystem: FaultPlan determinism, ThrottleState hysteresis, tag-ECC
 * invalidation in 2LM, poison lifecycle, channel offlining, and the
 * zero-rate neutrality guarantee.
 */

#include <gtest/gtest.h>

#include "fault/fault.hh"
#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

SystemConfig
smallConfig(MemoryMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = 4096;  // 32 GiB DRAM DIMM -> 8 MiB, NVRAM -> 128 MiB
    cfg.epochBytes = 64 * kKiB;
    return cfg;
}

/** Stream a buffer of loads through the system. */
void
streamLoads(MemorySystem &sys, const Region &r, Bytes bytes)
{
    for (Addr a = r.base; a < r.base + bytes; a += kLineSize)
        sys.touchLine(0, CpuOp::Load, a);
}

} // namespace

// --- FaultPlan ---

TEST(FaultPlan, DisabledByDefault)
{
    FaultPlan plan;
    EXPECT_FALSE(plan.enabled());
    MediaFault f = plan.nvramRead();
    EXPECT_FALSE(f.any());
    EXPECT_EQ(f.retries, 0u);
}

TEST(FaultPlan, ZeroRateConfigIsDisabled)
{
    FaultConfig cfg;  // all rates zero
    EXPECT_FALSE(cfg.enabled());
    FaultPlan plan(cfg, 0);
    EXPECT_FALSE(plan.enabled());
    for (int i = 0; i < 1000; ++i) {
        EXPECT_FALSE(plan.nvramRead().any());
        EXPECT_FALSE(plan.nvramWrite().any());
        EXPECT_FALSE(plan.dramRead().any());
    }
}

TEST(FaultPlan, SameSeedSameChannelIsDeterministic)
{
    FaultConfig cfg;
    cfg.seed = 42;
    cfg.nvramReadCorrectable = 0.3;
    cfg.nvramReadUncorrectable = 0.05;
    FaultPlan a(cfg, 2);
    FaultPlan b(cfg, 2);
    for (int i = 0; i < 4096; ++i) {
        MediaFault fa = a.nvramRead();
        MediaFault fb = b.nvramRead();
        EXPECT_EQ(fa.correctable, fb.correctable);
        EXPECT_EQ(fa.uncorrectable, fb.uncorrectable);
        EXPECT_EQ(fa.retries, fb.retries);
    }
}

TEST(FaultPlan, ChannelsGetIndependentStreams)
{
    FaultConfig cfg;
    cfg.seed = 42;
    cfg.nvramReadCorrectable = 0.5;
    FaultPlan a(cfg, 0);
    FaultPlan b(cfg, 1);
    int differ = 0;
    for (int i = 0; i < 512; ++i) {
        if (a.nvramRead().any() != b.nvramRead().any())
            ++differ;
    }
    EXPECT_GT(differ, 0);
}

TEST(FaultPlan, RatesRoughlyRespected)
{
    FaultConfig cfg;
    cfg.seed = 7;
    cfg.nvramReadCorrectable = 0.2;
    cfg.nvramReadUncorrectable = 0.1;
    FaultPlan plan(cfg, 0);
    int corr = 0, uncorr = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        MediaFault f = plan.nvramRead();
        corr += f.correctable;
        uncorr += f.uncorrectable;
        if (f.uncorrectable) {
            EXPECT_EQ(f.retries, cfg.maxRetries);  // escalation
        }
        if (f.correctable) {
            EXPECT_GE(f.retries, 1u);
            EXPECT_LE(f.retries, cfg.maxRetries);
        }
    }
    EXPECT_NEAR(corr / double(n), 0.2, 0.02);
    EXPECT_NEAR(uncorr / double(n), 0.1, 0.02);
}

// --- ThrottleState ---

TEST(ThrottleState, DisabledNeverEngages)
{
    ThrottleState t{ThrottleConfig{}};
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(t.observe(1e12), ThrottleState::Transition::None);
    EXPECT_FALSE(t.engaged());
    EXPECT_DOUBLE_EQ(t.factor(), 1.0);
}

TEST(ThrottleState, EngagesAfterConsecutiveHotEpochs)
{
    ThrottleConfig cfg;
    cfg.engageBandwidth = 10e9;
    cfg.releaseBandwidth = 5e9;
    cfg.engageEpochs = 3;
    cfg.releaseEpochs = 2;
    cfg.factor = 0.4;
    ThrottleState t{cfg};

    EXPECT_EQ(t.observe(11e9), ThrottleState::Transition::None);
    EXPECT_EQ(t.observe(11e9), ThrottleState::Transition::None);
    EXPECT_FALSE(t.engaged());
    EXPECT_EQ(t.observe(11e9), ThrottleState::Transition::Engaged);
    EXPECT_TRUE(t.engaged());
    EXPECT_DOUBLE_EQ(t.factor(), 0.4);
}

TEST(ThrottleState, InterruptedHotRunDoesNotEngage)
{
    ThrottleConfig cfg;
    cfg.engageBandwidth = 10e9;
    cfg.engageEpochs = 3;
    ThrottleState t{cfg};

    t.observe(11e9);
    t.observe(11e9);
    t.observe(1e9);  // cool epoch resets the counter
    t.observe(11e9);
    t.observe(11e9);
    EXPECT_FALSE(t.engaged());
    EXPECT_EQ(t.observe(11e9), ThrottleState::Transition::Engaged);
}

TEST(ThrottleState, ReleasesWithHysteresis)
{
    ThrottleConfig cfg;
    cfg.engageBandwidth = 10e9;
    cfg.releaseBandwidth = 5e9;
    cfg.engageEpochs = 1;
    cfg.releaseEpochs = 2;
    ThrottleState t{cfg};

    EXPECT_EQ(t.observe(11e9), ThrottleState::Transition::Engaged);
    // Between release and engage thresholds: stays throttled forever.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(t.observe(7e9), ThrottleState::Transition::None);
    EXPECT_TRUE(t.engaged());
    // Two genuinely cool epochs release it.
    EXPECT_EQ(t.observe(1e9), ThrottleState::Transition::None);
    EXPECT_EQ(t.observe(1e9), ThrottleState::Transition::Released);
    EXPECT_FALSE(t.engaged());
    EXPECT_DOUBLE_EQ(t.factor(), 1.0);
}

// --- FaultLog ---

TEST(FaultLog, CountsStayExactPastEventCap)
{
    FaultLog log;
    EXPECT_TRUE(log.empty());
    const std::uint64_t n = FaultLog::kMaxEvents + 100;
    for (std::uint64_t i = 0; i < n; ++i)
        log.record(0.0, 0, FaultEventKind::CorrectableMedia);
    EXPECT_EQ(log.correctable(), n);
    EXPECT_EQ(log.events().size(), FaultLog::kMaxEvents);
    EXPECT_FALSE(log.empty());
    EXPECT_NE(log.summary().find("correctable_media"), std::string::npos);
}

// --- MemorySystem integration ---

TEST(MemorySystemFault, ZeroRatePlanLeavesNoTrace)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(4 * kMiB, "a");
    streamLoads(sys, r, 4 * kMiB);
    sys.quiesce();
    EXPECT_TRUE(sys.faultLog().empty());
    EXPECT_EQ(sys.poisonedLines(), 0u);
    PerfCounters c = sys.counters();
    EXPECT_EQ(c.correctableErrors, 0u);
    EXPECT_EQ(c.uncorrectableErrors, 0u);
    EXPECT_EQ(c.tagEccInvalidates, 0u);
    EXPECT_EQ(c.retries, 0u);
    EXPECT_EQ(c.throttledEpochs, 0u);
}

TEST(MemorySystemFault, RunsAreDeterministicForAFixedSeed)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    cfg.fault.seed = 99;
    cfg.fault.nvramReadCorrectable = 0.01;
    cfg.fault.nvramReadUncorrectable = 0.001;
    cfg.fault.tagEccUncorrectable = 0.001;

    auto run = [&cfg]() {
        MemorySystem sys(cfg);
        Region r = sys.allocate(4 * kMiB, "a");
        streamLoads(sys, r, 4 * kMiB);
        sys.quiesce();
        return std::tuple(sys.counters().correctableErrors,
                          sys.counters().uncorrectableErrors,
                          sys.counters().tagEccInvalidates,
                          sys.counters().retries, sys.now());
    };
    EXPECT_EQ(run(), run());
}

TEST(MemorySystemFault, CorrectableErrorsCostRetriesAndTime)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem clean(cfg);
    cfg.fault.nvramReadCorrectable = 0.05;
    cfg.fault.retryLatency = 10e-6;
    MemorySystem faulty(cfg);

    for (MemorySystem *sys : {&clean, &faulty}) {
        Region r = sys->allocate(4 * kMiB, "a");
        streamLoads(*sys, r, 4 * kMiB);
        sys->quiesce();
    }
    EXPECT_EQ(clean.counters().retries, 0u);
    EXPECT_GT(faulty.counters().retries, 0u);
    EXPECT_GT(faulty.counters().correctableErrors, 0u);
    EXPECT_EQ(faulty.counters().uncorrectableErrors, 0u);
    EXPECT_GT(faulty.now(), clean.now());
}

TEST(MemorySystemFault, TagEccInvalidatesForceNvramRefetches)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem clean(cfg);
    cfg.fault.tagEccUncorrectable = 0.02;
    MemorySystem faulty(cfg);

    // Cache-resident working set: re-reads hit DRAM in the clean run,
    // but tag corruption forces NVRAM refetches in the faulty run.
    for (MemorySystem *sys : {&clean, &faulty}) {
        Region r = sys->allocate(2 * kMiB, "a");
        for (int pass = 0; pass < 4; ++pass)
            streamLoads(*sys, r, 2 * kMiB);
        sys->quiesce();
    }
    EXPECT_GT(faulty.counters().tagEccInvalidates, 0u);
    EXPECT_EQ(faulty.faultLog().tagEccInvalidates(),
              faulty.counters().tagEccInvalidates);
    EXPECT_GT(faulty.counters().nvramRead, clean.counters().nvramRead);
}

TEST(MemorySystemFault, UncorrectableReadsPoisonAndMachineCheck)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    cfg.fault.nvramReadUncorrectable = 0.05;
    MemorySystem sys(cfg);
    Region r = sys.allocate(4 * kMiB, "a");
    streamLoads(sys, r, 4 * kMiB);
    sys.quiesce();

    const FaultLog &log = sys.faultLog();
    EXPECT_GT(log.uncorrectable(), 0u);
    EXPECT_GT(log.machineChecks(), 0u);
    // Poison never outnumbers uncorrectable injections.
    EXPECT_LE(log.poisonCreated(),
              log.uncorrectable() + log.tagEccInvalidates() +
                  log.count(FaultEventKind::DramUncorrectable));
    // Conservation: every poisoned line was created or propagated, and
    // is either cleared or still poisoned.
    EXPECT_EQ(log.poisonCreated() + log.poisonPropagated(),
              log.poisonCleared() + sys.poisonedLines());
}

// Poison a region through write-path uncorrectable errors (an NT
// store whose media write fails loses the only copy of the line).
static Region
poisonByWrites(MemorySystem &sys, Bytes bytes, const char *name)
{
    Region r = sys.allocateIn(MemPool::Nvram, bytes, name);
    for (Addr a = r.base; a < r.base + bytes; a += kLineSize)
        sys.touchLine(0, CpuOp::NtStore, a);
    sys.quiesce();
    return r;
}

TEST(MemorySystemFault, FullLineWriteClearsPoison)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    cfg.fault.nvramWriteUncorrectable = 0.05;
    MemorySystem sys(cfg);
    Region r = poisonByWrites(sys, 2 * kMiB, "a");
    ASSERT_GT(sys.poisonedLines(), 0u);

    Addr bad = ~0ull;
    for (Addr a = r.base; a < r.base + r.size; a += kLineSize) {
        if (sys.isPoisoned(a)) {
            bad = a;
            break;
        }
    }
    ASSERT_NE(bad, ~0ull);

    // A full-line write replaces the lost data. The rewrite itself can
    // draw a fresh write fault, so retry a bounded number of times —
    // exactly what recovery software does.
    for (int tries = 0; sys.isPoisoned(bad) && tries < 64; ++tries)
        sys.touchLine(0, CpuOp::NtStore, bad);
    EXPECT_FALSE(sys.isPoisoned(bad));
    EXPECT_GT(sys.faultLog().poisonCleared(), 0u);
}

TEST(MemorySystemFault, ReadsConsumePoisonGracefully)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    cfg.fault.nvramWriteUncorrectable = 0.05;
    MemorySystem sys(cfg);
    Region r = poisonByWrites(sys, 2 * kMiB, "a");
    ASSERT_GT(sys.poisonedLines(), 0u);
    std::uint64_t created = sys.faultLog().poisonCreated();

    // A demand read of every line raises one machine check per
    // poisoned line; the OS retires the pages, so nothing stays
    // poisoned. Read rates are zero, so no new poison appears.
    streamLoads(sys, r, 2 * kMiB);
    sys.quiesce();
    EXPECT_EQ(sys.poisonedLines(), 0u);
    EXPECT_GT(sys.faultLog().machineChecks(), 0u);
    EXPECT_EQ(sys.faultLog().poisonCleared(), created);
}

TEST(MemorySystemFault, DmaCopyPropagatesPoison)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    cfg.fault.nvramWriteUncorrectable = 0.1;
    cfg.fault.seed = 3;
    MemorySystem sys(cfg);
    Region src = poisonByWrites(sys, 1 * kMiB, "src");
    Region dst = sys.allocateIn(MemPool::Nvram, 1 * kMiB, "dst");
    ASSERT_GT(sys.poisonedLines(), 0u);

    sys.dmaCopy(dst.base, src.base, 1 * kMiB);
    sys.quiesce();
    EXPECT_GT(sys.faultLog().poisonPropagated(), 0u);

    // A line that is still poisoned at the source has a poisoned twin
    // at the destination (the engine moved the bad payload verbatim).
    for (Addr a = src.base; a < src.base + src.size; a += kLineSize) {
        if (sys.isPoisoned(a)) {
            EXPECT_TRUE(sys.isPoisoned(dst.base + (a - src.base)));
            break;
        }
    }
}

TEST(MemorySystemFault, ThrottleEngagesAndShowsInCounters)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    // Engage threshold far below what a write stream sustains.
    cfg.fault.throttle.engageBandwidth = 0.2e9;
    cfg.fault.throttle.releaseBandwidth = 0.1e9;
    cfg.fault.throttle.engageEpochs = 1;
    cfg.fault.throttle.factor = 0.25;
    MemorySystem sys(cfg);
    sys.setActiveThreads(8);
    Region r = sys.allocateIn(MemPool::Nvram, 8 * kMiB, "w");
    for (int pass = 0; pass < 4; ++pass) {
        for (Addr a = r.base; a < r.base + 8 * kMiB; a += kLineSize)
            sys.touchLine(0, CpuOp::NtStore, a);
    }
    sys.quiesce();
    EXPECT_GT(sys.counters().throttledEpochs, 0u);
    EXPECT_GT(sys.faultLog().count(FaultEventKind::ThrottleEngaged), 0u);
}

TEST(MemorySystemFault, OfflineChannelReinterleavesTraffic)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    unsigned n = sys.numChannels();
    ASSERT_GT(n, 1u);

    Region r = sys.allocate(4 * kMiB, "a");
    streamLoads(sys, r, 1 * kMiB);
    sys.offlineChannel(2);
    EXPECT_EQ(sys.onlineChannels().size(), n - 1);
    EXPECT_EQ(sys.faultLog().count(FaultEventKind::ChannelOfflined), 1u);

    // Traffic continues on the survivors; channel 2 sees none of it.
    PerfCounters before = sys.channel(2).counters();
    streamLoads(sys, r, 4 * kMiB);
    sys.quiesce();
    EXPECT_EQ(sys.channel(2).counters().demand(), before.demand());
    EXPECT_GT(sys.counters().nvramRead, 0u);
}

TEST(MemorySystemFaultDeathTest, CannotOfflineLastChannel)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    cfg.channelsPerSocket = 1;
    MemorySystem sys(cfg);
    EXPECT_EXIT(sys.offlineChannel(0), ::testing::ExitedWithCode(1),
                "last online channel");
}

TEST(MemorySystemFaultDeathTest, OfflineValidatesIndex)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    EXPECT_EXIT(sys.offlineChannel(99), ::testing::ExitedWithCode(1),
                "channel");
}
