/**
 * @file
 * Tests for the Optane DIMM model: media-block amplification, the
 * read-combine buffer, the write-pending queue merge behavior and the
 * write-stream contention curve.
 */

#include <gtest/gtest.h>

#include "mem/nvram.hh"

using namespace nvsim;

namespace
{

NvramParams
smallParams()
{
    NvramParams p;
    p.readBufferEntries = 4;
    p.wpqEntries = 4;
    return p;
}

} // namespace

TEST(NvramDevice, SequentialReadsCoalescePerMediaBlock)
{
    NvramDevice dev(smallParams());
    // 16 sequential 64 B reads span 4 media blocks.
    for (Addr a = 0; a < 16 * kLineSize; a += kLineSize)
        dev.read(a, 0);
    auto e = dev.drainEpoch();
    EXPECT_EQ(e.demandReads, 16u);
    EXPECT_EQ(e.mediaReadBlocks, 4u);
    // Demand bytes equal media bytes: amplification 1.
    EXPECT_EQ(e.demandBytes(), e.mediaReadBytes());
}

TEST(NvramDevice, RandomSmallReadsAmplifyFourTimes)
{
    NvramDevice dev(smallParams());
    // Strided reads, one line per distinct media block, far apart so
    // the 4-entry buffer cannot help.
    for (int i = 0; i < 64; ++i)
        dev.read(static_cast<Addr>(i) * 8 * kMediaBlockSize, 0);
    auto e = dev.drainEpoch();
    EXPECT_EQ(e.demandReads, 64u);
    EXPECT_EQ(e.mediaReadBlocks, 64u);
    EXPECT_EQ(e.mediaReadBytes(), 4 * e.demandBytes());
}

TEST(NvramDevice, RepeatedReadHitsBuffer)
{
    NvramDevice dev(smallParams());
    dev.read(0, 0);
    dev.read(64, 0);   // same media block
    dev.read(128, 0);  // same media block
    auto e = dev.drainEpoch();
    EXPECT_EQ(e.mediaReadBlocks, 1u);
}

TEST(NvramDevice, SequentialWritesMergeIntoMediaBlocks)
{
    NvramDevice dev(smallParams());
    // One full pass of 64 sequential lines = 16 media blocks, each
    // fully merged: write amplification 1.
    for (Addr a = 0; a < 64 * kLineSize; a += kLineSize)
        dev.write(a, 0);
    dev.flushWpq();
    auto e = dev.drainEpoch();
    EXPECT_EQ(e.demandWrites, 64u);
    EXPECT_EQ(e.mediaWriteBlocks, 16u);
    EXPECT_EQ(e.mediaWriteBytes(), e.demandBytes());
}

TEST(NvramDevice, RandomSmallWritesAmplifyFourTimes)
{
    NvramDevice dev(smallParams());
    for (int i = 0; i < 64; ++i)
        dev.write(static_cast<Addr>(i) * 8 * kMediaBlockSize, 0);
    dev.flushWpq();
    auto e = dev.drainEpoch();
    EXPECT_EQ(e.demandWrites, 64u);
    // Each write lands in its own block which is flushed partially
    // filled: 4x write amplification.
    EXPECT_EQ(e.mediaWriteBlocks, 64u);
    EXPECT_EQ(e.mediaWriteBytes(), 4 * e.demandBytes());
}

TEST(NvramDevice, ManyInterleavedStreamsDefeatMerging)
{
    // 8 interleaved sequential writers vs a 4-entry WPQ: streams evict
    // each other's partial blocks, so media writes exceed demand/4.
    NvramDevice dev(smallParams());
    constexpr int kStreams = 8;
    constexpr int kLines = 64;
    Addr bases[kStreams];
    for (int s = 0; s < kStreams; ++s)
        bases[s] = static_cast<Addr>(s) * kMiB;
    for (int i = 0; i < kLines; ++i) {
        for (int s = 0; s < kStreams; ++s) {
            dev.write(bases[s] + static_cast<Addr>(i) * kLineSize,
                      static_cast<std::uint16_t>(s));
        }
    }
    dev.flushWpq();
    auto e = dev.drainEpoch();
    std::uint64_t fully_merged = e.demandWrites / 4;
    EXPECT_GT(e.mediaWriteBlocks, fully_merged);
    EXPECT_EQ(e.writerStreams, 8u);
}

TEST(NvramDevice, SingleStreamIsImmuneToSmallWpq)
{
    NvramDevice dev(smallParams());
    for (Addr a = 0; a < 256 * kLineSize; a += kLineSize)
        dev.write(a, 0);
    dev.flushWpq();
    auto e = dev.drainEpoch();
    EXPECT_EQ(e.mediaWriteBytes(), e.demandBytes());
}

TEST(NvramDevice, WriteEfficiencyCurve)
{
    NvramDevice dev(NvramParams{});
    EXPECT_DOUBLE_EQ(dev.writeEfficiency(1), 1.0);
    EXPECT_DOUBLE_EQ(dev.writeEfficiency(4), 1.0);
    EXPECT_LT(dev.writeEfficiency(8), 1.0);
    EXPECT_LT(dev.writeEfficiency(24), dev.writeEfficiency(8));
    // 24 threads: 1 / (1 + 0.01 * 20).
    EXPECT_NEAR(dev.writeEfficiency(24), 1.0 / 1.2, 1e-12);
}

TEST(NvramDevice, TotalsAccumulateAcrossEpochs)
{
    NvramDevice dev(smallParams());
    dev.read(0, 0);
    dev.drainEpoch();
    dev.read(4096, 0);
    dev.drainEpoch();
    EXPECT_EQ(dev.total().demandReads, 2u);
    EXPECT_EQ(dev.total().mediaReadBlocks, 2u);
    EXPECT_EQ(dev.epoch().demandReads, 0u);
}

TEST(NvramDevice, AmplificationAccessors)
{
    NvramDevice dev(smallParams());
    for (int i = 0; i < 16; ++i)
        dev.write(static_cast<Addr>(i) * 8 * kMediaBlockSize, 0);
    dev.flushWpq();
    dev.drainEpoch();
    EXPECT_DOUBLE_EQ(dev.writeAmplification(), 4.0);
    EXPECT_DOUBLE_EQ(dev.readAmplification(), 0.0);
}
