/**
 * @file
 * Observability-layer tests: histogram bucket boundaries/overflow/
 * merge, Prometheus name/label handling, registry dump round-trips,
 * the set-conflict profiler, and the end-to-end property the layer
 * exists for — a dirty-miss 2LM workload showing its 4-5 device
 * accesses per store as histogram mass (Table I as a distribution).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>

#include "kernels/kernels.hh"
#include "obs/heatmap.hh"
#include "obs/histogram.hh"
#include "obs/json.hh"
#include "obs/observer.hh"
#include "obs/perfetto.hh"
#include "obs/prometheus.hh"
#include "obs/session.hh"
#include "obs/stats.hh"

using namespace nvsim;

// --------------------------------------------------------------------
// Log2Histogram

TEST(Histogram, PlainLog2Boundaries)
{
    obs::Log2Histogram h(8, 2);
    // Buckets: 0, 1, [2,4), [4,8), [8,16), [16,32), [32,64), overflow.
    EXPECT_EQ(h.bucketFor(0), 0u);
    EXPECT_EQ(h.bucketFor(1), 1u);
    EXPECT_EQ(h.bucketFor(2), 2u);
    EXPECT_EQ(h.bucketFor(3), 2u);
    EXPECT_EQ(h.bucketFor(4), 3u);
    EXPECT_EQ(h.bucketFor(7), 3u);
    EXPECT_EQ(h.bucketFor(8), 4u);
    EXPECT_EQ(h.bucketFor(63), 6u);
    EXPECT_EQ(h.bucketFor(64), 7u);  // overflow bucket

    EXPECT_EQ(h.bucketLow(2), 2u);
    EXPECT_EQ(h.bucketHigh(2), 4u);
    EXPECT_EQ(h.bucketLow(6), 32u);
    EXPECT_EQ(h.bucketHigh(6), 64u);
    EXPECT_EQ(h.bucketHigh(7), UINT64_MAX);
}

TEST(Histogram, LinearRegionKeepsSmallValuesExact)
{
    // linear=16: values 0..15 land in their own bucket — the layout
    // used for device-access counts, where 4 vs 5 matters (Table I).
    obs::Log2Histogram h(20, 16);
    for (std::uint64_t v = 0; v < 16; ++v)
        EXPECT_EQ(h.bucketFor(v), v) << v;
    EXPECT_EQ(h.bucketFor(16), 16u);
    EXPECT_EQ(h.bucketFor(31), 16u);  // [16,32)
    EXPECT_EQ(h.bucketFor(32), 17u);  // [32,64)
    EXPECT_EQ(h.bucketLow(16), 16u);
    EXPECT_EQ(h.bucketHigh(16), 32u);
}

TEST(Histogram, OverflowBucketIsClamped)
{
    obs::Log2Histogram h(6, 2);
    h.sample(UINT64_MAX);
    h.sample(1u << 30);
    EXPECT_EQ(h.bucketCount(5), 2u);
    EXPECT_EQ(h.bucketHigh(5), UINT64_MAX);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), UINT64_MAX);
}

TEST(Histogram, SampleTracksMoments)
{
    obs::Log2Histogram h(16, 2);
    h.sample(3);
    h.sample(5, 2);  // weighted sample
    EXPECT_EQ(h.count(), 3u);
    EXPECT_EQ(h.sum(), 13u);
    EXPECT_EQ(h.min(), 3u);
    EXPECT_EQ(h.max(), 5u);
    EXPECT_DOUBLE_EQ(h.mean(), 13.0 / 3.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, MergeAddsBucketwise)
{
    obs::Log2Histogram a(8, 2), b(8, 2);
    a.sample(1);
    a.sample(100);
    b.sample(1, 3);
    b.sample(2);
    a.merge(b);
    EXPECT_EQ(a.count(), 6u);
    EXPECT_EQ(a.bucketCount(1), 4u);
    EXPECT_EQ(a.bucketCount(2), 1u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 100u);
}

TEST(Histogram, MergeRejectsLayoutMismatch)
{
    obs::Log2Histogram a(8, 2), b(8, 4);
    EXPECT_DEATH(a.merge(b), "layout");
}

TEST(Histogram, RejectsBadLinearRegion)
{
    EXPECT_DEATH(obs::Log2Histogram(8, 3), "power of two");
    EXPECT_DEATH(obs::Log2Histogram(4, 8), "buckets for a linear");
}

// --------------------------------------------------------------------
// Prometheus formatting

TEST(Prometheus, SanitizesMetricNames)
{
    EXPECT_EQ(obs::promSanitizeName("dram_read"), "dram_read");
    EXPECT_EQ(obs::promSanitizeName("imc0.cache"), "imc0_cache");
    EXPECT_EQ(obs::promSanitizeName("a-b c%d"), "a_b_c_d");
    EXPECT_EQ(obs::promSanitizeName("2lm_hits"), "_2lm_hits");
    EXPECT_EQ(obs::promSanitizeName("ok:colon"), "ok:colon");
}

TEST(Prometheus, EscapesLabelValues)
{
    EXPECT_EQ(obs::promEscapeLabel("plain"), "plain");
    EXPECT_EQ(obs::promEscapeLabel("a\"b"), "a\\\"b");
    EXPECT_EQ(obs::promEscapeLabel("a\\b"), "a\\\\b");
    EXPECT_EQ(obs::promEscapeLabel("a\nb"), "a\\nb");
}

TEST(Prometheus, WritesScalarsFormulasAndHistograms)
{
    obs::Registry reg;
    obs::Group &g = reg.root().child("imc0");
    g.label("channel", "0");
    g.scalar("reads", "read count").add(7);
    g.formula("rate", "a live value", [] { return 2.5; });
    obs::Log2Histogram &h = g.histogram("lat", "latency", 8, 2);
    h.sample(1, 2);
    h.sample(5);

    std::ostringstream os;
    obs::writePrometheus(reg, os, "nvsim", "run=\"r1\"");
    std::string text = os.str();

    // Scalars are counters and carry the conventional _total suffix.
    EXPECT_NE(text.find("# TYPE nvsim_imc0_reads_total counter"),
              std::string::npos);
    // Extra (session-level) labels render first, then group labels.
    EXPECT_NE(
        text.find("nvsim_imc0_reads_total{run=\"r1\",channel=\"0\"} 7"),
        std::string::npos);
    EXPECT_NE(text.find("# TYPE nvsim_imc0_rate gauge"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE nvsim_imc0_lat histogram"),
              std::string::npos);
    // Cumulative buckets: le="1" covers values <= 1 (2 samples); the
    // +Inf bucket equals the total count.
    EXPECT_NE(text.find("le=\"1\"} 2"), std::string::npos);
    EXPECT_NE(text.find("le=\"+Inf\"} 3"), std::string::npos);
    EXPECT_NE(text.find("nvsim_imc0_lat_sum"), std::string::npos);
    EXPECT_NE(text.find("nvsim_imc0_lat_count"), std::string::npos);
}

// --------------------------------------------------------------------
// Registry / JSON

TEST(StatsRegistry, DuplicateRegistrationPanics)
{
    obs::Registry reg;
    reg.root().scalar("x", "a");
    EXPECT_DEATH(reg.root().scalar("x", "again"), "registered twice");
}

TEST(StatsRegistry, DumpJsonIsWellFormedAndNested)
{
    obs::Registry reg;
    obs::Group &sys = reg.root().child("sys");
    sys.scalar("events", "event count").add(3);
    sys.formula("ratio", "live", [] { return 0.5; });
    obs::Log2Histogram &h = sys.histogram("acc", "accesses", 20, 16);
    h.sample(5, 10);

    std::ostringstream os;
    reg.dumpJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"sys\""), std::string::npos);
    EXPECT_NE(json.find("\"events\":3"), std::string::npos);
    EXPECT_NE(json.find("\"ratio\":0.5"), std::string::npos);
    // Histogram serialization keeps exact bucket bounds.
    EXPECT_NE(json.find("\"lo\":5"), std::string::npos);
    EXPECT_NE(json.find("\"count\":10"), std::string::npos);
}

TEST(Json, EscapesControlAndQuoteCharacters)
{
    EXPECT_EQ(obs::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(obs::jsonEscape(std::string(1, '\x01')), "\\u0001");
}

// --------------------------------------------------------------------
// Set profiler

TEST(SetProfiler, CountsAndRanksHotSets)
{
    obs::SetProfiler p(64);
    for (int i = 0; i < 10; ++i)
        p.noteMiss(7);
    for (int i = 0; i < 6; ++i)
        p.noteEviction(7);
    p.noteHit(3);
    p.noteMiss(3);
    p.noteMiss(12);

    auto top = p.topSets(2);
    ASSERT_EQ(top.size(), 2u);
    EXPECT_EQ(top[0].set, 7u);
    EXPECT_EQ(top[0].heat(), 16u);
    EXPECT_EQ(top[1].heat(), 1u);

    std::vector<std::string> rows;
    p.appendCsvRows("run1", rows);
    ASSERT_EQ(rows.size(), 3u);  // only touched sets
    EXPECT_EQ(rows[0], "run1,3,1,1,0");
    EXPECT_EQ(rows[1], "run1,7,0,10,6");
}

TEST(SetProfiler, QuotesAwkwardRunLabels)
{
    obs::SetProfiler p(4);
    p.noteHit(0);
    std::vector<std::string> rows;
    p.appendCsvRows("4b NT, dirty", rows);
    ASSERT_EQ(rows.size(), 1u);
    EXPECT_EQ(rows[0], "\"4b NT, dirty\",0,1,0,0");
}

// --------------------------------------------------------------------
// Perfetto export

TEST(Perfetto, EmitsSpansInstantsAndCounters)
{
    obs::PerfettoTracer t;
    t.nameTrack(obs::Track::Kernels, "kernels");
    t.span(obs::Track::Kernels, "k0", 1e-6, 3e-6,
           {{"bytes", 128.0}});
    t.instant(obs::channelTrack(2), "throttle engaged", 2e-6);
    t.counter("bw", 3e-6, 42.0);
    EXPECT_DOUBLE_EQ(t.horizon(), 3e-6);

    std::ostringstream os;
    t.writeJson(os);
    std::string json = os.str();
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
    EXPECT_NE(json.find("\"dur\":2"), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(json.find("\"s\":\"t\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
    EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
}

TEST(Perfetto, TimeBaseShiftsEvents)
{
    obs::PerfettoTracer t;
    t.setTimeBase(1.0);
    t.span(obs::Track::Epochs, "e", 0.0, 0.5);
    EXPECT_DOUBLE_EQ(t.horizon(), 1.5);
    std::ostringstream os;
    t.writeJson(os);
    // 1.0 s base + 0.0 s start = 1e6 us.
    EXPECT_NE(os.str().find("\"ts\":1000000"), std::string::npos);
}

// --------------------------------------------------------------------
// End to end: the 2LM dirty-miss workload of Figure 4b

namespace
{

SystemConfig
smallCfg()
{
    SystemConfig c;
    c.mode = MemoryMode::TwoLm;
    c.scale = 8192;
    c.epochBytes = 64 * kKiB;
    return c;
}

} // namespace

TEST(ObserverEndToEnd, DirtyMissWorkloadShowsTableOneAccessCounts)
{
    MemorySystem sys(smallCfg());
    Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
    primeDirty(sys, arr, 4);
    sys.resetCounters();

    obs::Observer obs("4b");
    obs.enableHeatmap();
    sys.attachObserver(&obs);

    KernelConfig k;
    k.op = KernelOp::WriteOnly;
    k.nontemporal = true;
    k.threads = 4;
    KernelResult r = runKernel(sys, arr, k);
    EXPECT_GT(r.counters.tagMissDirty, 0u);

    // Table I: a dirty NT-store miss costs 5 device accesses (tag
    // read, NVRAM victim writeback, NVRAM fetch, DRAM insert, demand
    // DRAM write). The miss_dirty access histogram must put all its
    // mass exactly there — the acceptance criterion of this layer.
    const obs::Stat *st = obs.root()
                              .child("requests")
                              .child("miss_dirty")
                              .find("device_accesses");
    ASSERT_NE(st, nullptr);
    ASSERT_NE(st->histogram, nullptr);
    const obs::Log2Histogram &h = *st->histogram;
    EXPECT_GT(h.count(), 0u);
    EXPECT_GT(h.bucketCount(5), 0u);  // exact bucket: 5 accesses
    EXPECT_EQ(h.bucketCount(5), h.count());
    EXPECT_EQ(h.min(), 5u);
    EXPECT_EQ(h.max(), 5u);

    // The latency histogram saw every demand store too.
    const obs::Stat *lat = obs.root()
                               .child("requests")
                               .child("miss_dirty")
                               .find("latency_ns");
    ASSERT_NE(lat, nullptr);
    EXPECT_EQ(lat->histogram->count(), h.count());

    // The shared set profiler saw the conflict traffic.
    ASSERT_NE(obs.setProfiler(), nullptr);
    auto top = obs.setProfiler()->topSets(1);
    ASSERT_EQ(top.size(), 1u);
    EXPECT_GT(top[0].heat(), 0u);

    // Registered channel stats agree with the uncore counters.
    sys.detachObserver();
    std::string json = obs.statsJson();
    EXPECT_NE(json.find("\"imc0\""), std::string::npos);
    EXPECT_NE(json.find("\"tag_miss_dirty\""), std::string::npos);
    std::string prom = obs.statsProm();
    EXPECT_NE(prom.find("run=\"4b\""), std::string::npos);
    EXPECT_NE(prom.find("nvsim_requests_miss_dirty_device_accesses"),
              std::string::npos);
}

TEST(ObserverEndToEnd, CleanReadMissesCostThreeAccesses)
{
    MemorySystem sys(smallCfg());
    Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
    primeClean(sys, arr, 4);
    sys.resetCounters();

    obs::Observer obs;
    sys.attachObserver(&obs);

    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.threads = 4;
    runKernel(sys, arr, k);

    // Table I row 2: clean read miss = tag read + NVRAM fetch + DRAM
    // insert = 3 device accesses.
    const obs::Stat *st = obs.root()
                              .child("requests")
                              .child("miss_clean")
                              .find("device_accesses");
    ASSERT_NE(st, nullptr);
    const obs::Log2Histogram &h = *st->histogram;
    EXPECT_GT(h.count(), 0u);
    EXPECT_EQ(h.bucketCount(3), h.count());
}

TEST(ObserverEndToEnd, ResetCountersDropsWarmupSamples)
{
    MemorySystem sys(smallCfg());
    Region arr = sys.allocate(1 * kMiB, "arr");

    obs::Observer obs;
    sys.attachObserver(&obs);

    sys.submit({0, CpuOp::Load, arr.base, 64 * kLineSize});
    sys.quiesce();
    const obs::Stat *st = obs.root()
                              .child("requests")
                              .child("miss_clean")
                              .find("device_accesses");
    ASSERT_NE(st, nullptr);
    EXPECT_GT(st->histogram->count(), 0u);

    sys.resetCounters();
    EXPECT_EQ(st->histogram->count(), 0u);
}

TEST(ObserverEndToEnd, SessionWritesValidatableFiles)
{
    std::string dir = ::testing::TempDir();
    obs::SessionOptions opts;
    opts.statsJsonPath = dir + "obs_stats.json";
    opts.statsPromPath = dir + "obs_stats.prom";
    opts.perfettoPath = dir + "obs_trace.json";
    opts.heatmapPath = dir + "obs_heat.csv";
    opts.topSets = 0;  // silence the console report in tests
    {
        obs::Session session(opts);
        for (const char *label : {"run_a", "run_b"}) {
            MemorySystem sys(smallCfg());
            Region arr =
                sys.allocate(sys.config().dramTotal() * 2, "arr");
            if (obs::Observer *o = session.beginRun(label))
                sys.attachObserver(o);
            KernelConfig k;
            k.op = KernelOp::WriteOnly;
            k.nontemporal = true;
            k.threads = 2;
            runKernel(sys, arr, k);
            session.endRun();
        }
        session.write();
    }

    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    std::string stats = slurp(opts.statsJsonPath);
    EXPECT_NE(stats.find("\"label\":\"run_a\""), std::string::npos);
    EXPECT_NE(stats.find("\"label\":\"run_b\""), std::string::npos);
    std::string prom = slurp(opts.statsPromPath);
    EXPECT_NE(prom.find("run=\"run_a\""), std::string::npos);
    std::string trace = slurp(opts.perfettoPath);
    EXPECT_NE(trace.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(trace.find("run_a"), std::string::npos);
    std::string heat = slurp(opts.heatmapPath);
    EXPECT_EQ(heat.rfind("run,set,hits,misses,evictions\n", 0), 0u);
    EXPECT_NE(heat.find("run_b,"), std::string::npos);
}
