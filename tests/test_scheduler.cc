/**
 * @file
 * Tests for the queued channel controller: the scheduler registry,
 * FCFS arrival-order preservation, FR-FCFS starvation capping,
 * write-drain watermark hysteresis, backpressure-as-queue-wait, and
 * the MemorySystem-level contracts — queue-off byte identity with the
 * analytic model, queued-mode determinism across shard threads, and
 * the p99 > p50 tail that queueing exists to produce.
 */

#include <gtest/gtest.h>

#include <vector>

#include "imc/scheduler.hh"
#include "obs/telemetry/telemetry.hh"
#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

ControllerConfig
qcfg(const std::string &sched)
{
    ControllerConfig c;
    c.scheduler = sched;
    c.readQueueEntries = 8;
    c.writeQueueEntries = 8;
    c.banks = 4;
    c.rowBytes = 4 * kLineSize;
    c.drainHighWatermark = 6;
    c.drainLowWatermark = 2;
    c.starvationCap = 2;
    c.bankConflictPenalty = 30e-9;
    return c;
}

/** A queue with completions captured in issue order. */
struct Harness
{
    ChannelTxQueue q;
    std::vector<Transaction> done;
    std::vector<CompletionInfo> info;

    explicit Harness(const ControllerConfig &cfg,
                     const RefreshConfig &refresh = RefreshConfig{})
        : q(cfg, /*busBandwidth=*/1e12, refresh)
    {
        q.setCompletionHandler(
            [this](const Transaction &tx, const CompletionInfo &ci) {
                done.push_back(tx);
                info.push_back(ci);
            });
    }
};

Transaction
readTx(Addr addr, double arrival, double service = 100e-9)
{
    Transaction tx;
    tx.addr = addr;
    tx.arrival = arrival;
    tx.service = service;
    tx.kind = TransactionKind::Read;
    return tx;
}

Transaction
writeTx(Addr addr, double arrival, double service = 100e-9)
{
    Transaction tx = readTx(addr, arrival, service);
    tx.kind = TransactionKind::Write;
    return tx;
}

SystemConfig
queuedConfig(const std::string &sched)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 4096;
    cfg.epochBytes = 64 * kKiB;
    cfg.controller = qcfg(sched);
    cfg.controller.readQueueEntries = 32;
    cfg.controller.writeQueueEntries = 64;
    cfg.controller.drainHighWatermark = 48;
    cfg.controller.drainLowWatermark = 16;
    return cfg;
}

/** One pass of loads plus a stripe of stores over @p r. */
void
drive(MemorySystem &sys, const Region &r)
{
    for (Addr a = r.base; a < r.base + r.size; a += kLineSize)
        sys.submit({0, CpuOp::Load, a, kLineSize});
    for (Addr a = r.base; a < r.base + r.size; a += 4 * kLineSize)
        sys.submit({1, CpuOp::Store, a, kLineSize});
    for (Addr a = r.base; a < r.base + r.size / 4; a += kLineSize)
        sys.submit({2, CpuOp::NtStore, a, kLineSize});
}

} // namespace

TEST(SchedulerRegistry, BuiltinsAreRegistered)
{
    auto &reg = ChannelSchedulerRegistry::instance();
    for (const char *name :
         {"analytic", "fcfs", "read_priority", "frfcfs"}) {
        EXPECT_TRUE(reg.known(name)) << name;
        EXPECT_FALSE(reg.description(name).empty()) << name;
    }
    EXPECT_FALSE(reg.known("rrobin"));
}

TEST(SchedulerRegistry, AnalyticIsTheDegenerateScheduler)
{
    // The queue-off mode is not a special case around the registry;
    // it IS a registry entry, whose factory builds no queue engine.
    ControllerConfig c;  // defaults: scheduler = "analytic"
    EXPECT_FALSE(c.queued());
    EXPECT_EQ(ChannelSchedulerRegistry::instance().create(c), nullptr);
    c.validate();  // must not fatal, whatever the geometry knobs say
}

TEST(SchedulerRegistry, QueuedSchedulersConstruct)
{
    for (const char *name : {"fcfs", "read_priority", "frfcfs"}) {
        ControllerConfig c = qcfg(name);
        c.validate();
        auto s = ChannelSchedulerRegistry::instance().create(c);
        ASSERT_NE(s, nullptr) << name;
        EXPECT_STREQ(s->kindName(), name);
    }
}

TEST(Fcfs, PreservesArrivalOrderAcrossBanks)
{
    Harness h(qcfg("fcfs"));
    // Round-robin over all four banks, arrivals strictly ordered.
    for (int i = 0; i < 8; ++i) {
        h.q.enqueue(readTx(static_cast<Addr>(i) * 4 * kLineSize,
                           static_cast<double>(i) * 1e-9));
    }
    h.q.drainAll();
    ASSERT_EQ(h.done.size(), 8u);
    for (int i = 0; i < 8; ++i) {
        EXPECT_EQ(h.done[i].addr,
                  static_cast<Addr>(i) * 4 * kLineSize);
        if (i > 0)
            EXPECT_GE(h.info[i].issueTime, h.info[i - 1].issueTime);
    }
}

TEST(Fcfs, OldestIssuesFirstAcrossReadAndWriteQueues)
{
    Harness h(qcfg("fcfs"));
    h.q.enqueue(writeTx(0, 0));
    h.q.enqueue(readTx(kLineSize, 1e-9));
    h.q.drainAll();
    ASSERT_EQ(h.done.size(), 2u);
    EXPECT_EQ(h.done[0].kind, TransactionKind::Write);
    EXPECT_EQ(h.done[1].kind, TransactionKind::Read);
}

TEST(ReadPriority, WritesWaitWhileReadsArePending)
{
    Harness h(qcfg("read_priority"));
    h.q.enqueue(writeTx(0, 0));
    h.q.enqueue(readTx(kLineSize, 1e-9));
    h.q.enqueue(readTx(2 * kLineSize, 2e-9));
    h.q.drainAll();
    ASSERT_EQ(h.done.size(), 3u);
    EXPECT_EQ(h.done[0].kind, TransactionKind::Read);
    EXPECT_EQ(h.done[1].kind, TransactionKind::Read);
    EXPECT_EQ(h.done[2].kind, TransactionKind::Write);
}

TEST(ReadPriority, DrainHysteresisBetweenWatermarks)
{
    // high = 6, low = 2. Six writes arm the burst; it must run the WPQ
    // down to the low watermark before reads go again, and the reads
    // that waited behind it are marked drainStalled.
    ControllerConfig cfg = qcfg("read_priority");
    Harness h(cfg);
    for (int i = 0; i < 6; ++i)
        h.q.enqueue(writeTx(static_cast<Addr>(i) * kLineSize,
                            static_cast<double>(i) * 1e-9));
    EXPECT_TRUE(h.q.draining());
    for (int i = 0; i < 3; ++i)
        h.q.enqueue(readTx(kMiB + static_cast<Addr>(i) * kLineSize,
                           6e-9 + static_cast<double>(i) * 1e-9));
    h.q.drainAll();
    ASSERT_EQ(h.done.size(), 9u);
    // Burst: 6 -> 2 writes (4 issues), then the reads, then the rest.
    std::vector<TransactionKind> kinds;
    for (const Transaction &tx : h.done)
        kinds.push_back(tx.kind);
    std::vector<TransactionKind> expect{
        TransactionKind::Write, TransactionKind::Write,
        TransactionKind::Write, TransactionKind::Write,
        TransactionKind::Read,  TransactionKind::Read,
        TransactionKind::Read,  TransactionKind::Write,
        TransactionKind::Write};
    EXPECT_EQ(kinds, expect);
    for (int i = 4; i < 7; ++i)
        EXPECT_TRUE(h.info[i].drainStalled) << i;
    TxQueueStats s = h.q.takeStats();
    EXPECT_EQ(s.writeDrains, 1u);
    EXPECT_EQ(s.completedReads, 3u);
    EXPECT_EQ(s.completedWrites, 6u);
}

TEST(Frfcfs, RowHitsBypassUpToTheStarvationCap)
{
    // One bank so every request contends for the same row buffer.
    ControllerConfig cfg = qcfg("frfcfs");
    cfg.banks = 1;
    Harness h(cfg);
    const Addr row_stride = cfg.rowBytes;  // one bank: row = addr/rowBytes
    // r0 opens row 0; r1 wants row 1; r2..r5 are row-0 hits that keep
    // bypassing r1 — but only starvationCap (2) times.
    h.q.enqueue(readTx(0, 0));
    h.q.enqueue(readTx(row_stride, 1e-9));
    for (int i = 2; i <= 5; ++i)
        h.q.enqueue(readTx(static_cast<Addr>(i) * kLineSize,
                           static_cast<double>(i) * 1e-9));
    h.q.drainAll();
    ASSERT_EQ(h.done.size(), 6u);
    EXPECT_EQ(h.done[0].addr, 0u);
    EXPECT_EQ(h.done[1].addr, 2u * kLineSize);
    EXPECT_EQ(h.done[2].addr, 3u * kLineSize);
    // Bypassed twice; the cap forces it ahead of the remaining hits.
    EXPECT_EQ(h.done[3].addr, row_stride);
    TxQueueStats s = h.q.takeStats();
    // r1 is the only conflict (it closes row 0); r4/r5 sit in row 1,
    // so once r1 opens it they issue as hits behind it.
    EXPECT_EQ(s.bankConflicts, 1u);
    EXPECT_EQ(s.rowBufferHits, 4u);
}

TEST(TxQueue, BackpressureSurfacesAsQueueWait)
{
    ControllerConfig cfg = qcfg("fcfs");
    cfg.readQueueEntries = 2;
    Harness h(cfg);
    for (int i = 0; i < 4; ++i)
        h.q.enqueue(readTx(static_cast<Addr>(i) * 4 * kLineSize, 0));
    h.q.drainAll();
    ASSERT_EQ(h.done.size(), 4u);
    // Same arrival, serialized issue: everyone after the first waited.
    EXPECT_DOUBLE_EQ(h.info[0].latency.queueWait, 0);
    EXPECT_GT(h.info[3].latency.queueWait, 0);
    TxQueueStats s = h.q.takeStats();
    EXPECT_GT(s.readQueueWait, 0);
    EXPECT_EQ(s.maxReadDepth, 2u);
}

TEST(TxQueue, CompletionLatencyDecomposes)
{
    Harness h(qcfg("fcfs"));
    h.q.enqueue(readTx(0, 0, 80e-9));
    h.q.enqueue(readTx(kLineSize, 0, 80e-9));  // row hit, same bank
    h.q.drainAll();
    ASSERT_EQ(h.done.size(), 2u);
    for (std::size_t i = 0; i < 2; ++i) {
        const CompletionInfo &ci = h.info[i];
        EXPECT_NEAR(ci.latency.total(),
                    ci.latency.service + ci.latency.queueWait +
                        ci.latency.bankPenalty,
                    1e-15);
        EXPECT_NEAR(ci.completeTime,
                    ci.issueTime + ci.latency.bankPenalty +
                        ci.latency.service,
                    1e-15);
    }
    EXPECT_TRUE(h.info[1].rowBufferHit);
    EXPECT_DOUBLE_EQ(h.info[1].latency.bankPenalty, 0);
}

TEST(TxQueue, PerBankRefreshBlocksBanks)
{
    RefreshConfig refresh;
    refresh.trefi = 100e-9;  // refresh storm: one REF per 25 ns
    ControllerConfig cfg = qcfg("fcfs");
    Harness with(cfg, refresh);
    Harness without(cfg);
    for (int i = 0; i < 16; ++i) {
        Transaction tx = readTx(static_cast<Addr>(i) * 4 * kLineSize,
                                static_cast<double>(i) * 25e-9);
        with.q.enqueue(tx);
        without.q.enqueue(tx);
    }
    with.q.drainAll();
    without.q.drainAll();
    EXPECT_GT(with.info.back().completeTime,
              without.info.back().completeTime);
}

TEST(QueuedMemsys, QueueOffIsByteIdenticalToDefault)
{
    // The "analytic" registry entry with exotic geometry knobs must be
    // indistinguishable from a config that never mentions the
    // controller block: no queues are built, so nothing can drift.
    SystemConfig plain = queuedConfig("frfcfs");
    plain.controller = ControllerConfig{};
    SystemConfig off = queuedConfig("frfcfs");
    off.controller.scheduler = "analytic";

    MemorySystem a(plain), b(off);
    Region ra = a.allocate(2 * kMiB, "x");
    Region rb = b.allocate(2 * kMiB, "x");
    a.setActiveThreads(4);
    b.setActiveThreads(4);
    drive(a, ra);
    drive(b, rb);
    a.quiesce();
    b.quiesce();
    EXPECT_EQ(a.now(), b.now());  // exact, not NEAR: byte identity
    EXPECT_EQ(a.counters().named(), b.counters().named());
    EXPECT_EQ(a.counters().queueWaitNs, 0u);
}

TEST(QueuedMemsys, DeterministicAcrossShardThreads)
{
    // The queued drain is the single accumulation point, so queued
    // output must not depend on the shard worker count.
    MemorySystem a(queuedConfig("frfcfs"));
    MemorySystem b(queuedConfig("frfcfs"));
    a.setShardThreads(1);
    b.setShardThreads(4);
    Region ra = a.allocate(2 * kMiB, "x");
    Region rb = b.allocate(2 * kMiB, "x");
    a.setActiveThreads(8);
    b.setActiveThreads(8);
    drive(a, ra);
    drive(b, rb);
    a.quiesce();
    b.quiesce();
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.counters().named(), b.counters().named());
}

TEST(QueuedMemsys, QueueWaitStretchesTheRunUnderLoad)
{
    // Saturate: arrivals spaced at 200 GB/s against channels that
    // cannot keep up. Queue wait joins the latency work, so the queued
    // run must take at least as long as the analytic one, and the
    // queue counters must light up.
    SystemConfig off = queuedConfig("frfcfs");
    off.controller.scheduler = "analytic";
    SystemConfig on = queuedConfig("frfcfs");
    on.controller.offeredGBs = 200;

    MemorySystem a(off), b(on);
    Region ra = a.allocate(2 * kMiB, "x");
    Region rb = b.allocate(2 * kMiB, "x");
    a.setActiveThreads(4);
    b.setActiveThreads(4);
    drive(a, ra);
    drive(b, rb);
    a.quiesce();
    b.quiesce();
    EXPECT_GE(b.now(), a.now());
    PerfCounters c = b.counters();
    EXPECT_GT(c.queueWaitNs, 0u);
    EXPECT_GT(c.rowBufferHits, 0u);
}

TEST(QueuedMemsys, SaturatedTailExceedsTheMedian)
{
    // The acceptance shape: under offered load beyond the channel's
    // service rate, queue depth grows along the epoch, so late reads
    // wait far longer than early ones — p99 must pull away from p50.
    SystemConfig cfg = queuedConfig("frfcfs");
    cfg.controller.offeredGBs = 400;
    MemorySystem sys(cfg);
    obs::TelemetryOptions topts;
    topts.csvPath = "unused.csv";
    topts.windowSeconds = 1e-4;
    obs::TelemetryRun tel("queued", topts);
    sys.attachTelemetry(&tel);
    Region r = sys.allocate(2 * kMiB, "x");
    sys.setActiveThreads(4);
    for (Addr a = r.base; a < r.base + r.size; a += kLineSize)
        sys.submit({0, CpuOp::Load, a, kLineSize});
    sys.quiesce();
    sys.detachTelemetry();
    tel.finish();
    EXPECT_GT(tel.quantileNs(0.99), tel.quantileNs(0.50));
}

TEST(QueuedMemsys, DeprecatedWrappersRouteThroughSubmit)
{
    MemorySystem a(queuedConfig("fcfs"));
    MemorySystem b(queuedConfig("fcfs"));
    Region ra = a.allocate(kMiB, "x");
    Region rb = b.allocate(kMiB, "x");
    for (Addr off = 0; off < kMiB; off += 8 * kLineSize) {
        a.submit({0, CpuOp::Load, ra.base + off, 2 * kLineSize});
        b.accessRange(0, CpuOp::Load, rb.base + off, 2 * kLineSize);
    }
    a.quiesce();
    b.quiesce();
    EXPECT_EQ(a.now(), b.now());
    EXPECT_EQ(a.counters().named(), b.counters().named());
}
