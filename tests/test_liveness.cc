/** @file Tests for tensor liveness analysis. */

#include <gtest/gtest.h>

#include "dnn/liveness.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::dnn;

namespace
{

/** x -> op0 -> a -> op1 -> b -> op2 -> c ; a also read by op2. */
ComputeGraph
chainGraph()
{
    ComputeGraph g("chain");
    TensorId x = g.addTensor("x", 64);
    TensorId a = g.addTensor("a", 128);
    TensorId b = g.addTensor("b", 256);
    TensorId c = g.addTensor("c", 512);
    g.addOp("op0", OpKind::BatchNorm, {x}, {a}, 1);
    g.addOp("op1", OpKind::BatchNorm, {a}, {b}, 1);
    g.addOp("op2", OpKind::Add, {b, a}, {c}, 1);
    return g;
}

} // namespace

TEST(Liveness, IntervalsMatchDefsAndUses)
{
    ComputeGraph g = chainGraph();
    auto live = computeLiveness(g);
    // x: live-in, last used by op0.
    EXPECT_EQ(live[0].def, -1);
    EXPECT_EQ(live[0].lastUse, 0);
    // a: defined by op0, last used by op2.
    EXPECT_EQ(live[1].def, 0);
    EXPECT_EQ(live[1].lastUse, 2);
    // b: defined op1, used op2.
    EXPECT_EQ(live[2].def, 1);
    EXPECT_EQ(live[2].lastUse, 2);
    // c: defined op2, never read.
    EXPECT_EQ(live[3].def, 2);
    EXPECT_EQ(live[3].lastUse, 2);
}

TEST(Liveness, LiveAtSemantics)
{
    LiveInterval li{1, 3};
    EXPECT_FALSE(li.liveAt(0));
    EXPECT_TRUE(li.liveAt(1));
    EXPECT_TRUE(li.liveAt(3));
    EXPECT_FALSE(li.liveAt(4));
}

TEST(Liveness, LiveBytesCurve)
{
    ComputeGraph g = chainGraph();
    auto live = computeLiveness(g);
    auto steps = liveBytesPerStep(g, live);
    ASSERT_EQ(steps.size(), 3u);
    // After op0: a live (x dies at op0 but counts during it).
    // Step counts include tensors live at that step.
    EXPECT_EQ(steps[0], 64u + 128u);
    EXPECT_EQ(steps[1], 128u + 256u);
    EXPECT_EQ(steps[2], 128u + 256u + 512u);
    EXPECT_EQ(peakLiveBytes(g, live), 128u + 256u + 512u);
}

TEST(Liveness, WeightsArePersistent)
{
    ComputeGraph g("w");
    TensorId x = g.addTensor("x", 64);
    TensorId w = g.addTensor("w", 64, TensorKind::Weight);
    TensorId y = g.addTensor("y", 64);
    g.addOp("conv", OpKind::Conv, {x, w}, {y}, 1);
    g.addOp("bn", OpKind::BatchNorm, {y}, {g.addTensor("z", 64)}, 1);
    auto live = computeLiveness(g);
    EXPECT_EQ(live[w].def, -1);
    EXPECT_EQ(live[w].lastUse, 1);  // whole schedule
    // Weights are excluded from the arena curve.
    auto steps = liveBytesPerStep(g, live);
    EXPECT_EQ(steps[1], 64u + 64u);  // y + z only
}

TEST(Liveness, ForwardAccumulationShape)
{
    // In a training graph, live memory rises through the forward pass
    // and peaks near the forward/backward boundary — the Figure 5d
    // triangle.
    ComputeGraph g = buildDenseNet264(4);
    auto live = computeLiveness(g);
    auto steps = liveBytesPerStep(g, live);
    std::size_t boundary = g.forwardOps();
    Bytes early = steps[steps.size() / 20];
    Bytes at_boundary = steps[boundary - 1];
    Bytes late = steps[steps.size() - steps.size() / 20];
    EXPECT_GT(at_boundary, 2 * early);
    EXPECT_GT(at_boundary, 2 * late);
}
