/**
 * @file
 * Calibration gate: the characterization profile of the default
 * (paper-testbed) configuration must land on the paper's headline
 * numbers. If a model change drifts the calibration, this is the test
 * that catches it.
 */

#include <gtest/gtest.h>

#include "profile/characterize.hh"

using namespace nvsim;
using namespace nvsim::profile;

namespace
{

const SystemProfile &
defaultProfile()
{
    static SystemProfile p = [] {
        SystemConfig cfg;
        cfg.scale = 8192;
        return characterize(cfg, 8 * kMiB);
    }();
    return p;
}

} // namespace

TEST(Calibration, PeakReadNear30GBs)
{
    // Paper Section III-C: "just over 30 GB/s read".
    EXPECT_GT(defaultProfile().peakReadBandwidth, 27e9);
    EXPECT_LT(defaultProfile().peakReadBandwidth, 35e9);
}

TEST(Calibration, ReadSaturatesAroundEightThreads)
{
    EXPECT_GE(defaultProfile().readSaturationThreads, 4u);
    EXPECT_LE(defaultProfile().readSaturationThreads, 16u);
}

TEST(Calibration, PeakWriteNear11GBs)
{
    // Paper: "11 GB/s write", peaking at four threads.
    EXPECT_GT(defaultProfile().peakWriteBandwidth, 9e9);
    EXPECT_LT(defaultProfile().peakWriteBandwidth, 13e9);
    EXPECT_GE(defaultProfile().writePeakThreads, 2u);
    EXPECT_LE(defaultProfile().writePeakThreads, 8u);
}

TEST(Calibration, MediaAmplificationNearFour)
{
    EXPECT_GT(defaultProfile().randomRead64Amplification, 3.0);
    EXPECT_LT(defaultProfile().randomRead64Amplification, 5.0);
    EXPECT_GT(defaultProfile().randomWrite64Amplification, 3.0);
    EXPECT_LE(defaultProfile().randomWrite64Amplification, 4.01);
}

TEST(Calibration, TwoLmEfficienciesMatchPaper)
{
    // Paper Section IV-D: 2LM reaches 60% (hmm, 76% with their exact
    // numbers: 23/30) of read and 72% (8/11) of write bandwidth; allow
    // the surrounding band.
    EXPECT_GT(defaultProfile().readEfficiency(), 0.55);
    EXPECT_LT(defaultProfile().readEfficiency(), 0.95);
    EXPECT_GT(defaultProfile().writeEfficiency(), 0.55);
    EXPECT_LT(defaultProfile().writeEfficiency(), 0.85);
}

TEST(Calibration, TwoLmAmplificationsNearTableI)
{
    EXPECT_NEAR(defaultProfile().twoLmReadMissAmplification, 3.0, 0.5);
    EXPECT_NEAR(defaultProfile().twoLmWriteMissAmplification, 5.0, 0.6);
}

TEST(Characterize, ReportMentionsHeadlines)
{
    std::string r = report(defaultProfile());
    EXPECT_NE(r.find("peak"), std::string::npos);
    EXPECT_NE(r.find("2LM clean read-miss"), std::string::npos);
    EXPECT_NE(r.find("amplification"), std::string::npos);
}

TEST(Characterize, SlowerNvramLowersProfile)
{
    SystemConfig cfg;
    cfg.scale = 8192;
    cfg.nvram.readBandwidth = 2.65e9;  // half-speed media
    SystemProfile slow = characterize(cfg, 4 * kMiB);
    EXPECT_LT(slow.peakReadBandwidth,
              defaultProfile().peakReadBandwidth * 0.7);
}
