/** @file Tests for the first-fit arena allocator. */

#include <gtest/gtest.h>

#include "dnn/arena.hh"

using namespace nvsim;
using namespace nvsim::dnn;

TEST(ArenaAllocator, GrowsLinearlyWithoutFrees)
{
    ArenaAllocator a;
    EXPECT_EQ(*a.alloc(100), 0u);
    EXPECT_EQ(*a.alloc(50), 100u);
    EXPECT_EQ(a.highWater(), 150u);
    EXPECT_EQ(a.inUse(), 150u);
}

TEST(ArenaAllocator, ReusesFreedSpaceFirstFit)
{
    ArenaAllocator a;
    Addr x = *a.alloc(100);
    Addr y = *a.alloc(100);
    (void)y;
    Addr z = *a.alloc(100);
    (void)z;
    a.free(x, 100);
    // A smaller block lands in the first gap.
    EXPECT_EQ(*a.alloc(60), 0u);
    // The rest of the gap remains usable.
    EXPECT_EQ(*a.alloc(40), 60u);
    EXPECT_EQ(a.highWater(), 300u);
}

TEST(ArenaAllocator, CoalescesNeighbors)
{
    ArenaAllocator a;
    Addr x = *a.alloc(100);
    Addr y = *a.alloc(100);
    Addr z = *a.alloc(100);
    Addr w = *a.alloc(100);
    (void)w;
    a.free(y, 100);
    a.free(x, 100);  // coalesce with y's gap (successor)
    a.free(z, 100);  // coalesce both sides
    // One 300-byte gap exists now.
    EXPECT_EQ(*a.alloc(300), 0u);
}

TEST(ArenaAllocator, BrkShrinksWhenTailFreed)
{
    ArenaAllocator a;
    Addr x = *a.alloc(100);
    (void)x;
    Addr y = *a.alloc(100);
    a.free(y, 100);
    // Fresh allocation reuses the shrunk tail, not offset 200.
    EXPECT_EQ(*a.alloc(150), 100u);
    EXPECT_EQ(a.highWater(), 250u);
}

TEST(ArenaAllocator, RespectsLimit)
{
    ArenaAllocator a(256);
    EXPECT_TRUE(a.alloc(200).has_value());
    EXPECT_FALSE(a.alloc(100).has_value());
    EXPECT_TRUE(a.alloc(56).has_value());
    EXPECT_FALSE(a.alloc(1).has_value());
}

TEST(ArenaAllocator, LimitWithReuse)
{
    ArenaAllocator a(256);
    Addr x = *a.alloc(128);
    Addr y = *a.alloc(128);
    (void)y;
    EXPECT_FALSE(a.alloc(64).has_value());
    a.free(x, 128);
    EXPECT_EQ(a.inUse(), 128u);
    EXPECT_TRUE(a.alloc(64).has_value());
    EXPECT_TRUE(a.alloc(64).has_value());
    EXPECT_FALSE(a.alloc(64).has_value());
}

TEST(ArenaAllocator, ZeroSizedAllocationsAreDistinct)
{
    ArenaAllocator a;
    Addr x = *a.alloc(0);
    Addr y = *a.alloc(0);
    EXPECT_NE(x, y);
    a.free(x, 0);
    a.free(y, 0);
    EXPECT_EQ(a.inUse(), 0u);
}

/** Property: a random alloc/free workload never double-assigns space. */
TEST(ArenaAllocator, RandomWorkloadNoOverlap)
{
    ArenaAllocator a;
    struct Block
    {
        Addr off;
        Bytes size;
    };
    std::vector<Block> live;
    std::uint64_t rng = 12345;
    auto rnd = [&](std::uint64_t m) {
        rng = rng * 6364136223846793005ull + 1442695040888963407ull;
        return (rng >> 33) % m;
    };
    for (int i = 0; i < 2000; ++i) {
        if (live.empty() || rnd(2)) {
            Bytes size = 1 + rnd(500);
            auto off = a.alloc(size);
            ASSERT_TRUE(off.has_value());
            // Check no overlap with any live block.
            for (const Block &b : live) {
                bool disjoint =
                    *off + size <= b.off || b.off + b.size <= *off;
                ASSERT_TRUE(disjoint)
                    << "overlap at iteration " << i;
            }
            live.push_back({*off, size});
        } else {
            std::size_t k = rnd(live.size());
            a.free(live[k].off, live[k].size);
            live.erase(live.begin() + static_cast<long>(k));
        }
    }
}
