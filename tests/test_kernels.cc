/**
 * @file
 * Integration tests for the microbenchmark kernels against the
 * simulated memory system: these check the *calibrated shapes* the
 * paper reports (Section III-C and Section IV) at small scale.
 */

#include <gtest/gtest.h>

#include "kernels/kernels.hh"

using namespace nvsim;

namespace
{

SystemConfig
config(MemoryMode mode, std::uint64_t scale = 4096)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = scale;
    cfg.epochBytes = 128 * kKiB;
    return cfg;
}

KernelResult
run1lmNvram(KernelConfig kcfg, Bytes bytes = 16 * kMiB)
{
    MemorySystem sys(config(MemoryMode::OneLm));
    Region r = sys.allocateIn(MemPool::Nvram, bytes, "arr");
    return runKernel(sys, r, kcfg);
}

} // namespace

TEST(Kernels, OpNames)
{
    EXPECT_STREQ(kernelOpName(KernelOp::ReadOnly), "read_only");
    EXPECT_STREQ(kernelOpName(KernelOp::WriteOnly), "write_only");
    EXPECT_STREQ(kernelOpName(KernelOp::ReadModifyWrite),
                 "read_modify_write");
}

TEST(Kernels, ReadOnlyTouchesWholeArrayOnce)
{
    MemorySystem sys(config(MemoryMode::OneLm));
    Region r = sys.allocateIn(MemPool::Nvram, 4 * kMiB, "arr");
    KernelConfig cfg;
    cfg.op = KernelOp::ReadOnly;
    cfg.threads = 4;
    KernelResult res = runKernel(sys, r, cfg);
    EXPECT_EQ(res.demandBytes, r.size);
    EXPECT_EQ(res.counters.nvramRead, r.size / kLineSize);
    EXPECT_EQ(res.counters.nvramWrite, 0u);
}

TEST(Kernels, WriteOnlyNtGeneratesOnlyWrites)
{
    MemorySystem sys(config(MemoryMode::OneLm));
    Region r = sys.allocateIn(MemPool::Nvram, 4 * kMiB, "arr");
    KernelConfig cfg;
    cfg.op = KernelOp::WriteOnly;
    cfg.threads = 4;
    cfg.nontemporal = true;
    KernelResult res = runKernel(sys, r, cfg);
    EXPECT_EQ(res.counters.nvramWrite, r.size / kLineSize);
    EXPECT_EQ(res.counters.nvramRead, 0u);
}

// --- Figure 2a shapes: 1LM NVRAM read bandwidth ---------------------------

TEST(Fig2Shapes, SequentialReadSaturatesNear30GBs)
{
    KernelConfig cfg;
    cfg.op = KernelOp::ReadOnly;
    cfg.pattern = AccessPattern::Sequential;
    cfg.threads = 8;
    KernelResult res = run1lmNvram(cfg);
    EXPECT_GT(res.effectiveBandwidth, 25e9);
    EXPECT_LT(res.effectiveBandwidth, 35e9);
}

TEST(Fig2Shapes, ReadBandwidthScalesThenSaturates)
{
    auto bw = [&](unsigned threads) {
        KernelConfig cfg;
        cfg.op = KernelOp::ReadOnly;
        cfg.threads = threads;
        return run1lmNvram(cfg).effectiveBandwidth;
    };
    double bw1 = bw(1), bw4 = bw(4), bw8 = bw(8), bw24 = bw(24);
    EXPECT_GT(bw4, 2.5 * bw1);
    EXPECT_GT(bw8, 1.5 * bw4);
    // Saturation: 24 threads gain little over 8.
    EXPECT_LT(bw24, 1.15 * bw8);
}

TEST(Fig2Shapes, Random64BReadsLoseToSequential)
{
    KernelConfig seq;
    seq.op = KernelOp::ReadOnly;
    seq.threads = 24;
    KernelConfig rnd = seq;
    rnd.pattern = AccessPattern::Random;
    rnd.granularity = 64;
    double bw_seq = run1lmNvram(seq).effectiveBandwidth;
    double bw_rnd = run1lmNvram(rnd).effectiveBandwidth;
    // 256 B media blocks: 64 B random reads see ~4x amplification.
    EXPECT_LT(bw_rnd, 0.45 * bw_seq);
}

TEST(Fig2Shapes, Random256BReadsMatchSequential)
{
    KernelConfig seq;
    seq.op = KernelOp::ReadOnly;
    seq.threads = 24;
    KernelConfig rnd = seq;
    rnd.pattern = AccessPattern::Random;
    rnd.granularity = 256;
    double bw_seq = run1lmNvram(seq).effectiveBandwidth;
    double bw_rnd = run1lmNvram(rnd).effectiveBandwidth;
    EXPECT_GT(bw_rnd, 0.85 * bw_seq);
}

// --- Figure 2b shapes: 1LM NVRAM write bandwidth --------------------------

TEST(Fig2Shapes, NtWritePeaksNearFourThreads)
{
    auto bw = [&](unsigned threads) {
        KernelConfig cfg;
        cfg.op = KernelOp::WriteOnly;
        cfg.nontemporal = true;
        cfg.threads = threads;
        return run1lmNvram(cfg).effectiveBandwidth;
    };
    double bw1 = bw(1), bw4 = bw(4), bw24 = bw(24);
    EXPECT_GT(bw4, bw1);
    // Peak ~11 GB/s at 4 threads; droop beyond.
    EXPECT_GT(bw4, 9e9);
    EXPECT_LT(bw4, 13e9);
    EXPECT_LT(bw24, bw4);
}

TEST(Fig2Shapes, Random64BWritesAmplify)
{
    KernelConfig cfg;
    cfg.op = KernelOp::WriteOnly;
    cfg.nontemporal = true;
    cfg.threads = 4;
    cfg.pattern = AccessPattern::Random;
    cfg.granularity = 64;
    MemorySystem sys(config(MemoryMode::OneLm));
    Region r = sys.allocateIn(MemPool::Nvram, 16 * kMiB, "arr");
    KernelResult res = runKernel(sys, r, cfg);
    EXPECT_GT(sys.nvramWriteAmplification(), 3.0);
    EXPECT_LT(res.effectiveBandwidth, 5e9);
}

// --- 2LM behaviors (Figure 4 shapes) --------------------------------------

TEST(TwoLmShapes, CacheFittingArrayIsAllHitsAfterPriming)
{
    SystemConfig cfg = config(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    // 51 GiB vs 192 GiB cache in the paper; keep the same ratio.
    Region r = sys.allocate(cfg.dramTotal() / 4, "arr");
    primeClean(sys, r);
    sys.resetCounters();

    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.threads = 8;
    KernelResult res = runKernel(sys, r, k);
    EXPECT_EQ(res.counters.tagMissClean + res.counters.tagMissDirty, 0u);
    EXPECT_GT(res.counters.tagHit, 0u);
    EXPECT_DOUBLE_EQ(res.counters.amplification(), 1.0);
}

TEST(TwoLmShapes, OversizedArrayMissesEverywhere)
{
    SystemConfig cfg = config(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    // 420 GB vs 192 GB in the paper: array = 2.2x the cache.
    Region r = sys.allocate(cfg.dramTotal() * 22 / 10, "arr");
    primeClean(sys, r);
    sys.resetCounters();

    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.threads = 24;
    KernelResult res = runKernel(sys, r, k);
    // Miss-dominated: lockstep thread interleaving lets a small
    // fraction of lines survive between passes, but amplification
    // approaches the Table I value of 3.
    double hit_rate =
        static_cast<double>(res.counters.tagHit) /
        static_cast<double>(res.counters.demand());
    EXPECT_LT(hit_rate, 0.25);
    EXPECT_NEAR(res.counters.amplification(), 3.0, 0.5);
}

TEST(TwoLmShapes, CleanMissReadBandwidthIsBelowOneLm)
{
    SystemConfig cfg = config(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(cfg.dramTotal() * 22 / 10, "arr");
    primeClean(sys, r);
    sys.resetCounters();

    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.threads = 24;
    KernelResult res = runKernel(sys, r, k);
    // Paper: 23 GB/s in 2LM vs 30 GB/s in 1LM (~60-80%).
    EXPECT_GT(res.effectiveBandwidth, 15e9);
    EXPECT_LT(res.effectiveBandwidth, 27e9);
}

TEST(TwoLmShapes, DirtyWriteMissesReachAmplificationFive)
{
    SystemConfig cfg = config(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(cfg.dramTotal() * 22 / 10, "arr");
    primeDirty(sys, r);  // make the whole cache dirty
    sys.resetCounters();

    KernelConfig k;
    k.op = KernelOp::WriteOnly;
    k.nontemporal = true;
    k.threads = 24;
    KernelResult res = runKernel(sys, r, k);
    EXPECT_GT(res.counters.tagMissDirty,
              res.counters.demand() * 8 / 10);
    EXPECT_NEAR(res.counters.amplification(), 5.0, 0.5);
    // Two DRAM writes per demand store (Figure 4b).
    EXPECT_NEAR(static_cast<double>(res.counters.dramWrite),
                2.0 * static_cast<double>(res.counters.demand()),
                0.2 * static_cast<double>(res.counters.demand()));
}

TEST(TwoLmShapes, RmwStandardStoresTriggerDdo)
{
    SystemConfig cfg = config(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(cfg.dramTotal() * 22 / 10, "arr");
    primeDirty(sys, r);
    sys.resetCounters();

    KernelConfig k;
    k.op = KernelOp::ReadModifyWrite;
    k.nontemporal = false;  // standard stores, as in Figure 4c
    k.threads = 4;
    KernelResult res = runKernel(sys, r, k);
    // The delayed LLC writebacks hit the recently inserted lines: a
    // large fraction of LLC writes are DDO (no tag-check DRAM read).
    EXPECT_GT(res.counters.ddoHit, res.counters.llcWrites / 2);
}

TEST(TwoLmShapes, PureNtWriteHitsDoNotGetDdo)
{
    SystemConfig cfg = config(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(cfg.dramTotal() / 4, "arr");  // fits
    primeClean(sys, r);
    // Age the priming inserts out of the DDO tracker with unrelated
    // traffic elsewhere.
    Region filler = sys.allocate(cfg.dramTotal() / 4, "filler");
    primeClean(sys, filler);
    sys.resetCounters();

    KernelConfig k;
    k.op = KernelOp::WriteOnly;
    k.nontemporal = true;
    k.threads = 8;
    KernelResult res = runKernel(sys, r, k);
    // Write hits pay the tag check: amplification ~2 (Table I).
    double ddo_frac = static_cast<double>(res.counters.ddoHit) /
                      static_cast<double>(res.counters.demand());
    EXPECT_LT(ddo_frac, 0.2);
    EXPECT_GT(res.counters.amplification(), 1.7);
}

TEST(Kernels, GranularityMustBeLineMultiple)
{
    MemorySystem sys(config(MemoryMode::OneLm));
    Region r = sys.allocateIn(MemPool::Nvram, kMiB, "arr");
    KernelConfig k;
    k.granularity = 96;
    EXPECT_DEATH(runKernel(sys, r, k), "multiple");
}
