/**
 * @file
 * CsvWriter I/O failure reporting: a writer must never succeed
 * silently over a truncated or unwritable file.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <unistd.h>

#include "core/csv.hh"

using namespace nvsim;

namespace
{

std::string
tempCsvPath(const char *tag)
{
    return "test_csv_" + std::string(tag) + "_" +
           std::to_string(::getpid()) + ".csv";
}

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    return std::string(std::istreambuf_iterator<char>(in),
                       std::istreambuf_iterator<char>());
}

} // namespace

TEST(CsvWriter, WritesRowsAndCloses)
{
    std::string path = tempCsvPath("ok");
    {
        CsvWriter csv(path);
        csv.row(std::vector<std::string>{"a", "b,comma", "c\"quote"});
        csv.row(std::vector<double>{1.5, 2});
        EXPECT_TRUE(csv.ok());
        csv.close();
    }
    EXPECT_EQ(slurp(path), "a,\"b,comma\",\"c\"\"quote\"\n1.5,2\n");
    std::remove(path.c_str());
}

TEST(CsvWriter, CloseIsIdempotent)
{
    std::string path = tempCsvPath("idem");
    CsvWriter csv(path);
    csv.row(std::vector<double>{1});
    csv.close();
    csv.close();  // must not fail
    std::remove(path.c_str());
}

TEST(CsvWriterDeathTest, UnopenablePathIsFatal)
{
    EXPECT_EXIT(CsvWriter csv("/nonexistent-dir/out.csv"),
                ::testing::ExitedWithCode(1), "cannot open CSV");
}

TEST(CsvWriterDeathTest, WriteFailureIsFatal)
{
    // /dev/full accepts open() but fails every flush with ENOSPC,
    // simulating a disk filling up mid-run.
    if (!std::ifstream("/dev/full").good())
        GTEST_SKIP() << "/dev/full not available";
    EXPECT_EXIT(
        {
            CsvWriter csv("/dev/full");
            // ofstream buffers; keep writing until the buffer spills
            // to the device and the stream goes bad.
            std::vector<std::string> row(8, std::string(64, 'x'));
            for (int i = 0; i < 100000; ++i)
                csv.row(row);
            csv.close();
        },
        ::testing::ExitedWithCode(1), "failed");
}
