/** @file Tests for the compute-graph IR and backward-pass builder. */

#include <gtest/gtest.h>

#include "dnn/graph.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::dnn;

TEST(ComputeGraph, TensorAndOpRegistration)
{
    ComputeGraph g("t");
    TensorId a = g.addTensor("a", 1024);
    TensorId w = g.addTensor("w", 64, TensorKind::Weight);
    TensorId b = g.addTensor("b", 1024);
    OpId op = g.addOp("conv", OpKind::Conv, {a, w}, {b}, 100.0);
    EXPECT_EQ(g.tensor(b).producer, op);
    ASSERT_EQ(g.tensor(a).consumers.size(), 1u);
    EXPECT_EQ(g.tensor(a).consumers[0], op);
    EXPECT_EQ(g.schedule().size(), 1u);
    EXPECT_DOUBLE_EQ(g.totalFlops(), 100.0);
    g.validate();
}

TEST(ComputeGraph, BackwardDoublesSchedule)
{
    ComputeGraph g = buildTinyCnn(4, /*training=*/false);
    std::size_t fwd = g.schedule().size();
    ComputeGraph t = buildTinyCnn(4, /*training=*/true);
    EXPECT_EQ(t.schedule().size(), 2 * fwd);
    EXPECT_EQ(t.forwardOps(), fwd);
    t.validate();
}

TEST(ComputeGraph, BackwardOpsAreReversedAndTyped)
{
    ComputeGraph g = buildTinyCnn(4);
    const auto &ops = g.schedule();
    std::size_t n = g.forwardOps();
    for (std::size_t i = 0; i < n; ++i) {
        const Op &fwd = ops[i];
        const Op &bwd = ops[2 * n - 1 - i];
        EXPECT_EQ(bwd.kind, backwardOf(fwd.kind))
            << fwd.name << " / " << bwd.name;
        EXPECT_TRUE(isBackwardOp(bwd.kind));
        EXPECT_FALSE(isBackwardOp(fwd.kind));
    }
}

TEST(ComputeGraph, WeightsGetGradients)
{
    ComputeGraph g = buildTinyCnn(4);
    unsigned weights = 0, wgrads = 0;
    for (const auto &t : g.tensors()) {
        weights += t.kind == TensorKind::Weight;
        wgrads += t.kind == TensorKind::WeightGrad;
    }
    EXPECT_GT(weights, 0u);
    EXPECT_EQ(weights, wgrads);
    EXPECT_EQ(g.weightBytes() % 4, 0u);
}

TEST(ComputeGraph, SavedActivationsFeedBackwardOps)
{
    // Conv backward must consume the conv's forward input activation.
    ComputeGraph g = buildTinyCnn(4);
    const auto &ops = g.schedule();
    bool found = false;
    for (const auto &op : ops) {
        if (op.kind != OpKind::ConvBack)
            continue;
        for (TensorId in : op.inputs) {
            if (g.tensor(in).kind == TensorKind::Activation)
                found = true;
        }
    }
    EXPECT_TRUE(found);
}

TEST(ComputeGraph, GradientAccumulationReadsExistingGrad)
{
    // Residual add in a small resnet-like graph: the shared input's
    // gradient is produced twice; the second producer must also read
    // it (accumulate), not blindly overwrite.
    ComputeGraph g("fanout");
    TensorId in = g.addTensor("in", 4096);
    TensorId x = g.addTensor("x", 4096);
    TensorId a = g.addTensor("a", 4096);
    TensorId b = g.addTensor("b", 4096);
    TensorId c = g.addTensor("c", 4096);
    g.addOp("bn0", OpKind::BatchNorm, {in}, {x}, 10);
    g.addOp("bn1", OpKind::BatchNorm, {x}, {a}, 10);
    g.addOp("bn2", OpKind::BatchNorm, {x}, {b}, 10);
    g.addOp("add", OpKind::Add, {a, b}, {c}, 1);
    g.buildBackward();
    g.validate();

    // Find the gradient of x and its producing ops.
    TensorId dx = kNoTensor;
    for (const auto &t : g.tensors()) {
        if (t.name == "d_x")
            dx = t.id;
    }
    ASSERT_NE(dx, kNoTensor);
    unsigned producers = 0, accumulating_consumers = 0;
    for (const auto &op : g.schedule()) {
        bool produces = false, consumes = false;
        for (TensorId o : op.outputs)
            produces |= o == dx;
        for (TensorId in : op.inputs)
            consumes |= in == dx;
        if (produces) {
            ++producers;
            if (consumes)
                ++accumulating_consumers;
        }
    }
    EXPECT_EQ(producers, 2u);
    EXPECT_EQ(accumulating_consumers, 1u);
}

TEST(OpKinds, NamesAndBackwardMapping)
{
    EXPECT_STREQ(opKindName(OpKind::Concat), "Concat");
    EXPECT_STREQ(opKindName(OpKind::BatchNormBack), "BatchNormBackprop");
    EXPECT_EQ(backwardOf(OpKind::Concat), OpKind::ConcatBack);
    EXPECT_TRUE(backwardNeedsInputs(OpKind::Conv));
    EXPECT_FALSE(backwardNeedsInputs(OpKind::Concat));
}

TEST(OpKinds, BackwardOfBackwardPanics)
{
    EXPECT_DEATH(backwardOf(OpKind::ConvBack), "backward");
}
