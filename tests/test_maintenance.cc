/**
 * @file
 * Directed tests for the DRAM maintenance subsystem: the Graphene-style
 * RowHammer tracker (Misra-Gries + spillover), the seeded patrol-scrub
 * engine with its repeat-CE retirement ladder, the refresh duty/slot
 * epoch math, and frame retirement inside the DRAM cache (a retired way
 * must never serve a hit again).
 */

#include <gtest/gtest.h>

#include <vector>

#include "imc/dram_cache.hh"
#include "mem/maintenance/maintenance.hh"

using namespace nvsim;

namespace
{

RowHammerConfig
hammerConfig(std::uint64_t threshold, std::uint32_t entries = 64)
{
    RowHammerConfig rh;
    rh.threshold = threshold;
    rh.trackerEntries = entries;
    return rh;
}

/** Flat fingerprint of one scrub outcome for sequence comparison. */
std::uint64_t
fingerprint(const ScrubOutcome &o)
{
    return (o.read ? 1u : 0u) | (o.correctableError ? 2u : 0u) |
           (o.uncorrectableError ? 4u : 0u) | (o.retire ? 8u : 0u) |
           (o.frame << 4);
}

} // namespace

// --- RowTracker ----------------------------------------------------------

TEST(RowTracker, ThresholdCrossingKeepsRemainder)
{
    RowTracker t(hammerConfig(10));
    // 25 activations: two mitigations fire, the counter keeps 5.
    EXPECT_EQ(t.activate(5, 25), 2u);
    EXPECT_EQ(t.activate(5, 4), 0u);  // 9 < 10
    EXPECT_EQ(t.activate(5, 1), 1u);  // 10: fires, resets to 0
    EXPECT_EQ(t.activate(5, 9), 0u);
}

TEST(RowTracker, ZeroActivationsAreFree)
{
    RowTracker t(hammerConfig(10));
    EXPECT_EQ(t.activate(5, 0), 0u);
    EXPECT_EQ(t.tracked(), 0u);
}

TEST(RowTracker, SpilloverAdoptionNeverUnderestimates)
{
    // Two-entry table: evicted rows donate to the spillover, newcomers
    // adopt it — the no-false-negative property Graphene needs.
    RowTracker t(hammerConfig(100, 2));
    EXPECT_EQ(t.activate(1, 10), 0u);
    EXPECT_EQ(t.activate(2, 20), 0u);
    EXPECT_EQ(t.tracked(), 2u);

    // Spillover (5) still below the smallest count (10): row 3 stays
    // untracked, its activations land in the spillover.
    EXPECT_EQ(t.activate(3, 5), 0u);
    EXPECT_EQ(t.tracked(), 2u);
    EXPECT_EQ(t.spillover(), 5u);

    // Spillover (11) overtakes the minimum: row 3 adopts it.
    EXPECT_EQ(t.activate(3, 6), 0u);
    EXPECT_EQ(t.tracked(), 2u);
    EXPECT_EQ(t.spillover(), 11u);

    // 11 adopted + 89 = 100: exactly one mitigation, no undercount even
    // though most of row 3's "activations" were other rows' spillover.
    EXPECT_EQ(t.activate(3, 89), 1u);
}

TEST(RowTracker, EvictionIsDeterministic)
{
    // Identical activation streams on two trackers must agree exactly,
    // including which rows the full table evicts (ties break by row id,
    // never by unordered_map iteration order).
    auto run = [] {
        RowTracker t(hammerConfig(50, 4));
        std::uint64_t triggers = 0;
        std::uint64_t x = 12345;
        for (int i = 0; i < 2000; ++i) {
            splitmix64(x);
            triggers += t.activate(x % 16, 1 + x % 7);
        }
        return std::make_tuple(triggers, t.spillover(), t.tracked());
    };
    EXPECT_EQ(run(), run());
}

TEST(RowTracker, WindowResetClearsEverything)
{
    RowTracker t(hammerConfig(4, 2));
    t.activate(1, 3);
    t.activate(2, 3);
    t.activate(3, 3);  // spills
    t.resetWindow();
    EXPECT_EQ(t.tracked(), 0u);
    EXPECT_EQ(t.spillover(), 0u);
    // The old remainders are gone: 3 more activations don't fire.
    EXPECT_EQ(t.activate(1, 3), 0u);
}

// --- ScrubEngine ---------------------------------------------------------

TEST(ScrubEngine, CadenceAndWalkOrder)
{
    ScrubConfig sc;
    sc.interval = 4;
    ScrubEngine eng(sc, 2 * kLineSize, 1, 0);

    std::vector<Addr> frames;
    for (int i = 0; i < 16; ++i) {
        ScrubOutcome o = eng.tick();
        EXPECT_EQ(o.read, (i + 1) % 4 == 0) << "tick " << i;
        if (o.read)
            frames.push_back(o.frame);
    }
    // One read every 4 requests, walking the two frames round-robin.
    EXPECT_EQ(frames,
              (std::vector<Addr>{0, kLineSize, 0, kLineSize}));
}

TEST(ScrubEngine, SubUnityIntervalSaturatesAtOneReadPerRequest)
{
    ScrubConfig sc;
    sc.interval = 0.25;  // would want 4 reads per request
    ScrubEngine eng(sc, 8 * kLineSize, 1, 0);
    for (int i = 0; i < 32; ++i)
        EXPECT_TRUE(eng.tick().read) << "tick " << i;
}

TEST(ScrubEngine, RepeatCeLadderRetiresAtThreshold)
{
    ScrubConfig sc;
    sc.interval = 1;
    sc.correctable = 1.0;  // every patrol read takes a CE
    sc.retireThreshold = 2;
    sc.retireCapacity = 1;
    // One frame: the ladder hits the same frame every read.
    ScrubEngine eng(sc, kLineSize, 1, 0);

    ScrubOutcome o1 = eng.tick();
    EXPECT_TRUE(o1.correctableError);
    EXPECT_FALSE(o1.retire);  // first CE: logged, scrubbed in place
    ScrubOutcome o2 = eng.tick();
    EXPECT_TRUE(o2.correctableError);
    EXPECT_TRUE(o2.retire);  // second CE: the ladder retires the frame
    EXPECT_EQ(eng.retiredFrames(), 1u);

    // Spare budget exhausted: further CEs can no longer retire.
    eng.tick();
    ScrubOutcome o4 = eng.tick();
    EXPECT_TRUE(o4.correctableError);
    EXPECT_FALSE(o4.retire);
    EXPECT_EQ(eng.retiredFrames(), 1u);
}

TEST(ScrubEngine, UncorrectableRetiresImmediately)
{
    ScrubConfig sc;
    sc.interval = 1;
    sc.uncorrectable = 1.0;
    sc.retireCapacity = 2;
    ScrubEngine eng(sc, 4 * kLineSize, 1, 0);

    ScrubOutcome o = eng.tick();
    EXPECT_TRUE(o.uncorrectableError);
    EXPECT_TRUE(o.retire);
    eng.tick();
    EXPECT_EQ(eng.retiredFrames(), 2u);
    // Budget gone: UEs still escalate but stop retiring.
    ScrubOutcome o3 = eng.tick();
    EXPECT_TRUE(o3.uncorrectableError);
    EXPECT_FALSE(o3.retire);
}

TEST(ScrubEngine, SeededReplayIsExactAndPerChannelStreamsDiffer)
{
    ScrubConfig sc;
    sc.interval = 1;
    sc.correctable = 0.5;
    sc.uncorrectable = 0.05;
    sc.retireCapacity = 1u << 20;

    auto sequence = [&sc](unsigned channel) {
        ScrubEngine eng(sc, 64 * kLineSize, 42, channel);
        std::vector<std::uint64_t> seq;
        for (int i = 0; i < 200; ++i)
            seq.push_back(fingerprint(eng.tick()));
        return seq;
    };
    // Same (seed, channel): bit-identical replay.
    EXPECT_EQ(sequence(0), sequence(0));
    // Different channels: independent streams.
    EXPECT_NE(sequence(0), sequence(1));
}

TEST(ScrubEngine, DisabledEngineNeverReads)
{
    ScrubConfig sc;  // interval = 0: off
    ScrubEngine eng(sc, 64 * kLineSize, 1, 0);
    for (int i = 0; i < 100; ++i)
        EXPECT_FALSE(eng.tick().read);
}

// --- MaintenanceEngine ---------------------------------------------------

TEST(MaintenanceEngine, AllOffDefaultsAreInert)
{
    MaintenanceConfig mc;
    MaintenanceEngine eng(mc, 64 * kLineSize, 0);
    EXPECT_FALSE(eng.enabled());
    EXPECT_FALSE(eng.demandTick().read);
    EXPECT_EQ(eng.noteActivation(0, 10), 0u);
    EXPECT_DOUBLE_EQ(eng.refreshDuty(), 0.0);
    EXPECT_DOUBLE_EQ(eng.refreshDemandStall(), 0.0);
    EXPECT_EQ(eng.closeEpoch(1.0), 0u);
    EXPECT_DOUBLE_EQ(eng.drainTargetedTime(), 0.0);
    EXPECT_DOUBLE_EQ(eng.drainScrubTime(), 0.0);
}

TEST(MaintenanceEngine, RefreshDutyAndStallMath)
{
    MaintenanceConfig mc;
    mc.refresh.trefi = 7.8e-6;
    mc.refresh.trfc = 350e-9;
    MaintenanceEngine eng(mc, 64 * kLineSize, 0);
    EXPECT_TRUE(eng.enabled());
    double duty = 350e-9 / 7.8e-6;
    EXPECT_DOUBLE_EQ(eng.refreshDuty(), duty);
    // Random arrival during a REF waits half the blocking time.
    EXPECT_DOUBLE_EQ(eng.refreshDemandStall(), duty * 350e-9 * 0.5);
}

TEST(MaintenanceEngine, RefreshSlotsExactOverAnyEpochPartition)
{
    MaintenanceConfig mc;
    mc.refresh.trefi = 7.8e-6;
    MaintenanceEngine whole(mc, 64 * kLineSize, 0);
    MaintenanceEngine split(mc, 64 * kLineSize, 0);

    std::uint64_t one = whole.closeEpoch(1e-3);
    std::uint64_t sum = 0;
    for (int i = 0; i < 10; ++i)
        sum += split.closeEpoch(1e-4);
    // Fractional REF commands carry over, so the partition can differ
    // from the whole by at most the final fractional command.
    EXPECT_EQ(one, static_cast<std::uint64_t>(1e-3 / 7.8e-6));
    EXPECT_LE(one > sum ? one - sum : sum - one, 1u);
}

TEST(MaintenanceEngine, WindowRolloverResetsTheTracker)
{
    MaintenanceConfig mc;
    mc.rowhammer = hammerConfig(4);
    mc.rowhammer.window = 1e-3;
    MaintenanceEngine eng(mc, 64 * kLineSize, 0);

    EXPECT_EQ(eng.noteActivation(0, 3), 0u);
    EXPECT_EQ(eng.trackedRows(), 1u);
    eng.closeEpoch(2e-3);  // tREFW passed: every row refreshed
    EXPECT_EQ(eng.trackedRows(), 0u);
    // Without the reset this would be activation 6 >= 4 and fire.
    EXPECT_EQ(eng.noteActivation(0, 3), 0u);
}

TEST(MaintenanceEngine, TargetedRefreshTimeAccrues)
{
    MaintenanceConfig mc;
    mc.rowhammer = hammerConfig(2);
    mc.rowhammer.blastRadius = 2;
    mc.rowhammer.refreshLatency = 60e-9;
    MaintenanceEngine eng(mc, 64 * kLineSize, 0);

    EXPECT_EQ(eng.noteActivation(0, 4), 2u);  // two crossings
    EXPECT_DOUBLE_EQ(eng.drainTargetedTime(), 2 * 2 * 60e-9);
    EXPECT_DOUBLE_EQ(eng.drainTargetedTime(), 0.0);  // drained
}

TEST(MaintenanceEngine, ActivationsAggregateByRowAndFoldOnCapacity)
{
    MaintenanceConfig mc;
    mc.rowhammer = hammerConfig(3);
    mc.rowhammer.rowBytes = 8 * kKiB;
    Bytes capacity = 64 * kKiB;
    MaintenanceEngine eng(mc, capacity, 0);

    // Two addresses in the same 8 KiB row plus one that wraps the
    // DIMM's capacity back onto row 0: together they cross threshold 3.
    EXPECT_EQ(eng.noteActivation(0, 1), 0u);
    EXPECT_EQ(eng.noteActivation(4 * kKiB, 1), 0u);
    EXPECT_EQ(eng.noteActivation(capacity + 64, 1), 1u);
    EXPECT_EQ(eng.trackedRows(), 1u);
}

TEST(MaintenanceEngine, ResetReplaysTheScrubStream)
{
    MaintenanceConfig mc;
    mc.scrub.interval = 1;
    mc.scrub.correctable = 0.5;
    MaintenanceEngine eng(mc, 64 * kLineSize, 3);

    std::vector<std::uint64_t> first, second;
    for (int i = 0; i < 100; ++i)
        first.push_back(fingerprint(eng.demandTick()));
    eng.reset();
    for (int i = 0; i < 100; ++i)
        second.push_back(fingerprint(eng.demandTick()));
    EXPECT_EQ(first, second);
}

// --- DramCache frame retirement ------------------------------------------

namespace
{

DramCacheParams
cacheParams(unsigned ways)
{
    DramCacheParams p;
    p.capacity = 64 * kLineSize;
    p.ways = ways;
    return p;
}

} // namespace

TEST(DramCacheRetire, RetiredLineNeverServesHitsAgain)
{
    DramCache cache(cacheParams(1));
    cache.write(0);  // resident and dirty

    TagCorruption tc = cache.retireFrame(0);
    EXPECT_TRUE(tc.dropped);
    EXPECT_TRUE(tc.wasDirty);
    EXPECT_EQ(tc.line, 0u);
    EXPECT_EQ(cache.retiredWays(), 1u);
    EXPECT_FALSE(cache.resident(0));

    // The direct-mapped set is fully retired: demand bypasses to NVRAM
    // and never re-fills the frame.
    CacheResult r = cache.read(0);
    EXPECT_TRUE(r.bypassed);
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
    EXPECT_EQ(r.actions.nvramReads, 1u);
    EXPECT_FALSE(cache.resident(0));

    CacheResult w = cache.write(0);
    EXPECT_EQ(w.actions.nvramWrites, 1u);
    EXPECT_FALSE(cache.resident(0));
}

TEST(DramCacheRetire, RetireIsIdempotent)
{
    DramCache cache(cacheParams(1));
    cache.read(0);
    TagCorruption first = cache.retireFrame(0);
    EXPECT_TRUE(first.dropped);
    TagCorruption again = cache.retireFrame(0);
    EXPECT_FALSE(again.dropped);
    EXPECT_EQ(cache.retiredWays(), 1u);
}

TEST(DramCacheRetire, SurvivingWaysKeepServingTheSet)
{
    DramCache cache(cacheParams(2));  // 32 sets x 2 ways
    // Frame 0 is set 0 way 0; retire it while the set stays usable.
    cache.retireFrame(0);
    EXPECT_EQ(cache.retiredWays(), 1u);

    CacheResult miss = cache.read(0);
    EXPECT_FALSE(miss.bypassed);  // filled into the surviving way
    EXPECT_EQ(cache.read(0).outcome, CacheOutcome::Hit);

    // Retire the second way (frame 1 = set 0 way 1): the resident line
    // is dropped and the whole set turns into a bypass set.
    TagCorruption tc = cache.retireFrame(kLineSize);
    EXPECT_TRUE(tc.dropped);
    EXPECT_EQ(tc.line, 0u);
    EXPECT_EQ(cache.retiredWays(), 2u);
    EXPECT_TRUE(cache.read(0).bypassed);
}

TEST(DramCacheRetire, InvalidateAllRemapsSpares)
{
    DramCache cache(cacheParams(1));
    cache.retireFrame(0);
    EXPECT_EQ(cache.retiredWays(), 1u);
    // A reboot remaps retired rows onto spares: the frame serves again.
    cache.invalidateAll();
    EXPECT_EQ(cache.retiredWays(), 0u);
    EXPECT_FALSE(cache.read(0).bypassed);
    EXPECT_EQ(cache.read(0).outcome, CacheOutcome::Hit);
}
