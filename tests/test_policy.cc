/**
 * @file
 * Tests for the pluggable cache-policy framework: the registry
 * resolves names (and refuses typos loudly), the stock controller
 * behaves identically when driven through the CachePolicy interface,
 * the SRAM-tag policy really does eliminate tag-check device reads,
 * the bypass policy honors its insertion threshold, and SystemConfig
 * survives a JSON round trip.
 */

#include <gtest/gtest.h>

#include "imc/bypass_policy.hh"
#include "imc/cache_policy.hh"
#include "imc/dram_cache.hh"
#include "imc/sram_tag_policy.hh"
#include "sys/config.hh"

using namespace nvsim;

namespace
{

/** A tiny cache: 64 sets x 1 way, DDO disabled unless stated. */
DramCacheParams
tinyParams(DdoMode mode = DdoMode::None)
{
    DramCacheParams p;
    p.capacity = 64 * kLineSize;
    p.ddo.mode = mode;
    p.ddo.trackerEntries = 64;
    p.ways = 1;
    return p;
}

CachePolicyConfig
configFor(const std::string &kind)
{
    CachePolicyConfig c;
    c.kind = kind;
    return c;
}

/** Address that maps to the same set as @p addr but a different tag. */
Addr
aliasOf(const CachePolicy &cache, Addr addr)
{
    return addr + cache.numSets() * kLineSize;
}

} // namespace

// --- Registry ------------------------------------------------------------

TEST(PolicyRegistry, KnowsTheBuiltIns)
{
    const CachePolicyRegistry &reg = CachePolicyRegistry::instance();
    EXPECT_TRUE(reg.known("direct_mapped_tag_ecc"));
    EXPECT_TRUE(reg.known("sram_tag_set_assoc"));
    EXPECT_TRUE(reg.known("bypass_selective_insert"));
    EXPECT_FALSE(reg.known("no_such_policy"));

    std::vector<std::string> names = reg.names();
    ASSERT_GE(names.size(), 3u);
    // The stock policy registers first so it is the natural default.
    EXPECT_EQ(names[0], "direct_mapped_tag_ecc");
    for (const std::string &n : names)
        EXPECT_FALSE(reg.description(n).empty()) << n;
}

TEST(PolicyRegistry, CreateResolvesKindName)
{
    for (const std::string &name :
         CachePolicyRegistry::instance().names()) {
        auto policy = makeCachePolicy(tinyParams(), configFor(name));
        ASSERT_NE(policy, nullptr) << name;
        EXPECT_EQ(policy->kindName(), name);
    }
}

TEST(PolicyRegistryDeath, UnknownKindIsFatal)
{
    EXPECT_EXIT(makeCachePolicy(tinyParams(), configFor("bansheee")),
                ::testing::ExitedWithCode(1), "bansheee");
}

TEST(PolicyRegistryDeath, ValidateRejectsUnknownKind)
{
    CachePolicyConfig c = configFor("typo_policy");
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1),
                "typo_policy");
}

TEST(PolicyRegistryDeath, ValidateRejectsUnknownReplacement)
{
    CachePolicyConfig c = configFor("sram_tag_set_assoc");
    c.replacement = "plru";
    EXPECT_EXIT(c.validate(), ::testing::ExitedWithCode(1), "plru");
}

// --- Stock policy through the interface ----------------------------------

/**
 * The refactor's core guarantee: a registry-created
 * "direct_mapped_tag_ecc" policy is the DramCache. Drive both with the
 * same mixed access sequence and demand identical results per access.
 */
TEST(PolicyEquivalence, DirectMappedMatchesDramCache)
{
    DramCacheParams params = tinyParams(DdoMode::RecentTracker);
    DramCache direct(params);
    auto viaRegistry =
        makeCachePolicy(params, configFor("direct_mapped_tag_ecc"));

    // Reads/writes over aliasing lines: hits, clean misses, dirty
    // misses, DDO writes.
    for (int pass = 0; pass < 3; ++pass) {
        for (Addr line = 0; line < 96; ++line) {
            Addr addr = line * kLineSize;
            CacheResult a = (line % 3 == 0) ? direct.write(addr)
                                            : direct.read(addr);
            CacheResult b = (line % 3 == 0) ? viaRegistry->write(addr)
                                            : viaRegistry->read(addr);
            EXPECT_EQ(a.outcome, b.outcome) << "line " << line;
            EXPECT_EQ(a.actions.dramReads, b.actions.dramReads);
            EXPECT_EQ(a.actions.dramWrites, b.actions.dramWrites);
            EXPECT_EQ(a.actions.nvramReads, b.actions.nvramReads);
            EXPECT_EQ(a.actions.nvramWrites, b.actions.nvramWrites);
            EXPECT_EQ(a.wroteBack, b.wroteBack);
            EXPECT_EQ(a.victim, b.victim);
            EXPECT_EQ(a.filled, b.filled);
            EXPECT_EQ(a.fill, b.fill);
            EXPECT_EQ(a.bypassed, b.bypassed);
        }
    }
    for (Addr line = 0; line < 96; ++line) {
        Addr addr = line * kLineSize;
        EXPECT_EQ(direct.resident(addr), viaRegistry->resident(addr));
        EXPECT_EQ(direct.residentDirty(addr),
                  viaRegistry->residentDirty(addr));
    }
}

// --- SRAM-tag set-associative policy -------------------------------------

TEST(SramTagPolicy, HitCostsOneDeviceAccess)
{
    auto policy =
        makeCachePolicy(tinyParams(), configFor("sram_tag_set_assoc"));
    policy->read(0);  // fill
    CacheResult r = policy->read(0);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
    EXPECT_TRUE(r.tagsInSram);
    EXPECT_EQ(r.actions.dramReads, 1u);  // the data itself
    EXPECT_EQ(r.actions.total(), 1u);

    CacheResult w = policy->write(0);
    EXPECT_EQ(w.outcome, CacheOutcome::Hit);
    EXPECT_TRUE(w.tagsInSram);
    EXPECT_EQ(w.actions.dramWrites, 1u);  // no tag-check read first
    EXPECT_EQ(w.actions.total(), 1u);
}

TEST(SramTagPolicy, MissSpendsNoTagProbeRead)
{
    DramCacheParams params = tinyParams();
    auto policy = makeCachePolicy(params, configFor("sram_tag_set_assoc"));
    DramCache stock(params);

    // Clean read miss: stock pays DRAM tag probe + NVRAM fetch + DRAM
    // insert (amplification 3); SRAM tags shed the probe (2).
    CacheResult s = stock.read(0);
    CacheResult r = policy->read(0);
    EXPECT_EQ(s.actions.total(), 3u);
    EXPECT_EQ(r.actions.total(), 2u);
    EXPECT_EQ(r.actions.dramReads, 0u);
    EXPECT_EQ(r.actions.nvramReads, 1u);
    EXPECT_EQ(r.actions.dramWrites, 1u);
    EXPECT_TRUE(r.filled);
}

TEST(SramTagPolicy, AssociativityAbsorbsAliases)
{
    DramCacheParams params = tinyParams();
    params.ways = 2;
    params.capacity = 128 * kLineSize;  // 64 sets x 2 ways
    auto policy = makeCachePolicy(params, configFor("sram_tag_set_assoc"));
    Addr a = 0;
    Addr b = aliasOf(*policy, a);
    policy->read(a);
    policy->read(b);
    // Both aliases coexist; the direct-mapped cache would have evicted.
    EXPECT_TRUE(policy->resident(a));
    EXPECT_TRUE(policy->resident(b));
    EXPECT_EQ(policy->read(a).outcome, CacheOutcome::Hit);
    EXPECT_EQ(policy->read(b).outcome, CacheOutcome::Hit);
}

TEST(SramTagPolicy, FifoSkipsLruTouch)
{
    DramCacheParams params = tinyParams();
    params.ways = 2;
    params.capacity = 128 * kLineSize;
    CachePolicyConfig lru = configFor("sram_tag_set_assoc");
    CachePolicyConfig fifo = lru;
    fifo.replacement = "fifo";

    // Fill both ways, re-touch the oldest, then force an eviction. LRU
    // keeps the re-touched line; FIFO evicts it anyway.
    for (const auto &[cfg, survives] :
         {std::pair<const CachePolicyConfig &, bool>{lru, true},
          {fifo, false}}) {
        auto policy = makeCachePolicy(params, cfg);
        Addr a = 0;
        Addr b = aliasOf(*policy, a);
        Addr c = b + policy->numSets() * kLineSize;
        policy->read(a);
        policy->read(b);
        policy->read(a);  // touch: protects a under LRU only
        policy->read(c);  // evicts
        EXPECT_EQ(policy->resident(a), survives)
            << cfg.replacement;
    }
}

TEST(SramTagPolicy, CorruptionOnlyDropsResidentData)
{
    auto policy =
        makeCachePolicy(tinyParams(), configFor("sram_tag_set_assoc"));
    // Non-resident probe: the SRAM tags are fine, nothing is lost.
    TagCorruption none = policy->corruptTag(0);
    EXPECT_FALSE(none.dropped);

    policy->write(0);
    ASSERT_TRUE(policy->residentDirty(0));
    TagCorruption hit = policy->corruptTag(0);
    EXPECT_TRUE(hit.dropped);
    EXPECT_TRUE(hit.wasDirty);
    EXPECT_EQ(hit.line, 0u);
    EXPECT_FALSE(policy->resident(0));
}

// --- Bypass / selective-insert policy ------------------------------------

TEST(BypassPolicy, InsertsOnlyAtThreshold)
{
    CachePolicyConfig cfg = configFor("bypass_selective_insert");
    cfg.insertThreshold = 3;
    auto base = makeCachePolicy(tinyParams(), cfg);
    auto *policy = static_cast<BypassSelectiveInsertPolicy *>(base.get());
    ASSERT_EQ(policy->insertThreshold(), 3u);

    // Misses 1 and 2 bypass: tag probe + NVRAM demand read, no insert.
    for (int i = 0; i < 2; ++i) {
        CacheResult r = policy->read(0);
        EXPECT_EQ(r.outcome, CacheOutcome::MissClean) << i;
        EXPECT_TRUE(r.bypassed) << i;
        EXPECT_EQ(r.actions.dramWrites, 0u) << i;
        EXPECT_EQ(r.actions.nvramReads, 1u) << i;
        EXPECT_FALSE(policy->resident(0)) << i;
    }
    EXPECT_EQ(policy->missCount(0), 2u);

    // Miss 3 earns the insert; the line is resident afterwards.
    CacheResult r = policy->read(0);
    EXPECT_FALSE(r.bypassed);
    EXPECT_EQ(r.actions.dramWrites, 1u);
    EXPECT_TRUE(policy->resident(0));
    EXPECT_EQ(policy->read(0).outcome, CacheOutcome::Hit);
}

TEST(BypassPolicy, BypassedWriteGoesStraightToNvram)
{
    CachePolicyConfig cfg = configFor("bypass_selective_insert");
    cfg.insertThreshold = 2;
    auto policy = makeCachePolicy(tinyParams(), cfg);
    CacheResult r = policy->write(0);
    EXPECT_TRUE(r.bypassed);
    EXPECT_TRUE(r.wroteBack);  // demand store landed in NVRAM
    EXPECT_EQ(r.actions.nvramWrites, 1u);
    EXPECT_EQ(r.actions.dramReads, 1u);  // tags-in-ECC probe remains
    EXPECT_EQ(r.actions.total(), 2u);
    EXPECT_FALSE(policy->resident(0));
}

/** threshold 1 = insert on every miss = the stock policy, exactly. */
TEST(BypassPolicy, ThresholdOneMatchesStock)
{
    DramCacheParams params = tinyParams();
    CachePolicyConfig cfg = configFor("bypass_selective_insert");
    cfg.insertThreshold = 1;
    auto policy = makeCachePolicy(params, cfg);
    DramCache stock(params);
    for (Addr line = 0; line < 96; ++line) {
        Addr addr = line * kLineSize;
        CacheResult a = (line % 3 == 0) ? stock.write(addr)
                                        : stock.read(addr);
        CacheResult b = (line % 3 == 0) ? policy->write(addr)
                                        : policy->read(addr);
        EXPECT_EQ(a.outcome, b.outcome) << "line " << line;
        EXPECT_EQ(a.actions.total(), b.actions.total());
        EXPECT_EQ(a.filled, b.filled);
        EXPECT_FALSE(b.bypassed);
    }
}

TEST(BypassPolicy, InvalidateAllForgetsFrequencies)
{
    CachePolicyConfig cfg = configFor("bypass_selective_insert");
    cfg.insertThreshold = 2;
    auto base = makeCachePolicy(tinyParams(), cfg);
    auto *policy = static_cast<BypassSelectiveInsertPolicy *>(base.get());
    policy->read(0);
    EXPECT_EQ(policy->missCount(0), 1u);
    policy->invalidateAll();
    EXPECT_EQ(policy->missCount(0), 0u);
}

// --- SystemConfig JSON round trip ----------------------------------------

TEST(ConfigJson, RoundTripPreservesEveryField)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.sockets = 2;
    cfg.scale = 4096;
    cfg.cacheWays = 2;
    cfg.insertOnWriteMiss = false;
    cfg.policy.kind = "bypass_selective_insert";
    cfg.policy.insertThreshold = 5;
    cfg.policy.replacement = "fifo";
    cfg.ddo.mode = DdoMode::Oracle;

    SystemConfig back = SystemConfig::fromJson(cfg.toJson());
    EXPECT_EQ(back.mode, cfg.mode);
    EXPECT_EQ(back.sockets, cfg.sockets);
    EXPECT_EQ(back.scale, cfg.scale);
    EXPECT_EQ(back.cacheWays, cfg.cacheWays);
    EXPECT_EQ(back.insertOnWriteMiss, cfg.insertOnWriteMiss);
    EXPECT_EQ(back.policy.kind, cfg.policy.kind);
    EXPECT_EQ(back.policy.insertThreshold, cfg.policy.insertThreshold);
    EXPECT_EQ(back.policy.replacement, cfg.policy.replacement);
    EXPECT_EQ(back.policy.counterEntries, cfg.policy.counterEntries);
    EXPECT_EQ(back.ddo.mode, cfg.ddo.mode);
    EXPECT_EQ(back.dram.capacity, cfg.dram.capacity);
    EXPECT_EQ(back.nvram.readBandwidth, cfg.nvram.readBandwidth);
    EXPECT_EQ(back.llcCapacity, cfg.llcCapacity);
    EXPECT_EQ(back.mlp, cfg.mlp);

    // The round trip is a fixed point: serializing again is identical.
    EXPECT_EQ(back.toJson(), cfg.toJson());
}

TEST(ConfigJson, DefaultsSurviveRoundTrip)
{
    SystemConfig def;
    SystemConfig back = SystemConfig::fromJson(def.toJson());
    EXPECT_EQ(back.toJson(), def.toJson());
    EXPECT_EQ(back.policy.kind, "direct_mapped_tag_ecc");
}

TEST(ConfigJsonDeath, UnknownTopLevelKeyIsFatal)
{
    EXPECT_EXIT(SystemConfig::fromJson("{\"sokets\": 2}"),
                ::testing::ExitedWithCode(1), "sokets");
}

TEST(ConfigJsonDeath, UnknownNestedKeyIsFatal)
{
    EXPECT_EXIT(
        SystemConfig::fromJson("{\"policy\": {\"knd\": \"x\"}}"),
        ::testing::ExitedWithCode(1), "knd");
}

TEST(ConfigJsonDeath, MalformedJsonIsFatalWithPosition)
{
    EXPECT_EXIT(SystemConfig::fromJson("{\"sockets\": }"),
                ::testing::ExitedWithCode(1), "config");
}
