/** @file Tests for the CSR graph container. */

#include <gtest/gtest.h>

#include "graphs/csr.hh"

using namespace nvsim;
using namespace nvsim::graphs;

TEST(CsrGraph, FromEdgesBasic)
{
    // 0->1, 0->2, 1->2, 3 isolated.
    CsrGraph g = CsrGraph::fromEdges(4, {{0, 1}, {0, 2}, {1, 2}});
    EXPECT_EQ(g.numNodes(), 4u);
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
    EXPECT_EQ(g.degree(3), 0u);
    auto n0 = g.neighbors(0);
    ASSERT_EQ(n0.size(), 2u);
    EXPECT_EQ(g.edgeDest(g.edgeBegin(1)), 2u);
}

TEST(CsrGraph, Symmetrize)
{
    CsrGraph g = CsrGraph::fromEdges(3, {{0, 1}, {1, 2}}, true);
    EXPECT_EQ(g.numEdges(), 4u);
    EXPECT_EQ(g.degree(1), 2u);  // 1->0, 1->2
    EXPECT_EQ(g.degree(2), 1u);
}

TEST(CsrGraph, KeepsDuplicatesAndSelfLoops)
{
    CsrGraph g = CsrGraph::fromEdges(2, {{0, 1}, {0, 1}, {1, 1}});
    EXPECT_EQ(g.numEdges(), 3u);
    EXPECT_EQ(g.degree(0), 2u);
    EXPECT_EQ(g.degree(1), 1u);
}

TEST(CsrGraph, MaxDegreeNode)
{
    CsrGraph g =
        CsrGraph::fromEdges(4, {{2, 0}, {2, 1}, {2, 3}, {0, 1}});
    EXPECT_EQ(g.maxDegreeNode(), 2u);
}

TEST(CsrGraph, BinarySize)
{
    CsrGraph g = CsrGraph::fromEdges(4, {{0, 1}, {1, 2}});
    // 5 offsets x 8 B + 2 edges x 4 B.
    EXPECT_EQ(g.bytes(), 5 * 8 + 2 * 4u);
    EXPECT_EQ(g.offsetsBytes(), 40u);
    EXPECT_EQ(g.edgesBytes(), 8u);
}

TEST(CsrGraph, EmptyGraph)
{
    CsrGraph g = CsrGraph::fromEdges(3, {});
    EXPECT_EQ(g.numEdges(), 0u);
    EXPECT_EQ(g.degree(0), 0u);
    EXPECT_EQ(g.maxDegreeNode(), 0u);
}
