/** @file Tests for unit formatting and the type helpers. */

#include <gtest/gtest.h>

#include "core/types.hh"
#include "core/units.hh"

using namespace nvsim;

TEST(Units, FormatBytes)
{
    EXPECT_EQ(formatBytes(512), "512 B");
    EXPECT_EQ(formatBytes(2 * kKiB), "2 KiB");
    EXPECT_EQ(formatBytes(3 * kMiB), "3 MiB");
    EXPECT_EQ(formatBytes(192 * kGiB), "192 GiB");
    EXPECT_EQ(formatBytes(3 * kTiB), "3 TiB");
}

TEST(Units, FormatBandwidth)
{
    EXPECT_EQ(formatBandwidth(30e9), "30.00 GB/s");
    EXPECT_EQ(formatBandwidth(5.3e9), "5.30 GB/s");
}

TEST(Units, FormatSeconds)
{
    EXPECT_EQ(formatSeconds(2.5), "2.5 s");
    EXPECT_EQ(formatSeconds(3e-3), "3 ms");
    EXPECT_EQ(formatSeconds(4e-6), "4 us");
    EXPECT_EQ(formatSeconds(5e-9), "5 ns");
}

TEST(Types, LineHelpers)
{
    EXPECT_EQ(lineIndex(0), 0u);
    EXPECT_EQ(lineIndex(63), 0u);
    EXPECT_EQ(lineIndex(64), 1u);
    EXPECT_EQ(lineBase(130), 128u);
    EXPECT_EQ(mediaBlockBase(300), 256u);
    EXPECT_EQ(mediaBlockBase(255), 0u);
}

TEST(Types, TickConversion)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(secondsToTicks(1.5)), 1.5);
    EXPECT_EQ(secondsToTicks(1e-12), 1u);
}
