/** @file Tests for the trace time-series container. */

#include <gtest/gtest.h>

#include <vector>

#include "core/timeseries.hh"

using namespace nvsim;

TEST(TimeSeries, RecordsPerChannel)
{
    TimeSeries ts;
    EXPECT_TRUE(ts.empty());
    ts.record("bw", 0.0, 10.0);
    ts.record("bw", 1.0, 20.0);
    ts.record("hits", 0.5, 1.0);
    EXPECT_FALSE(ts.empty());
    ASSERT_EQ(ts.channel("bw").size(), 2u);
    EXPECT_DOUBLE_EQ(ts.channel("bw")[1].value, 20.0);
    EXPECT_EQ(ts.channel("nope").size(), 0u);
    ASSERT_EQ(ts.names().size(), 2u);
    EXPECT_EQ(ts.names()[0], "bw");
}

TEST(TimeSeries, MeanAndMax)
{
    TimeSeries ts;
    for (int i = 0; i < 5; ++i)
        ts.record("v", i, i * 1.0);
    EXPECT_DOUBLE_EQ(ts.mean("v"), 2.0);
    EXPECT_DOUBLE_EQ(ts.max("v"), 4.0);
    EXPECT_DOUBLE_EQ(ts.mean("absent"), 0.0);
}

TEST(TimeSeries, WindowAverageSmoothsSpike)
{
    TimeSeries ts;
    // Constant 1.0 except a spike of 11.0 in the middle.
    for (int i = 0; i < 11; ++i)
        ts.record("v", i * 0.1, i == 5 ? 11.0 : 1.0);
    auto smooth = ts.windowAverage("v", 0.45);
    ASSERT_EQ(smooth.size(), 11u);
    // The spike is averaged with its neighbors: strictly below 11.
    EXPECT_LT(smooth[5].value, 11.0);
    EXPECT_GT(smooth[5].value, 1.0);
    // Edges untouched by the spike remain 1.0.
    EXPECT_DOUBLE_EQ(smooth[0].value, 1.0);
    EXPECT_DOUBLE_EQ(smooth[10].value, 1.0);
}

TEST(TimeSeries, WindowAverageDegenerate)
{
    TimeSeries ts;
    ts.record("v", 0.0, 3.0);
    auto smooth = ts.windowAverage("v", 100.0);
    ASSERT_EQ(smooth.size(), 1u);
    EXPECT_DOUBLE_EQ(smooth[0].value, 3.0);
    EXPECT_TRUE(ts.windowAverage("missing", 1.0).empty());
}

// --------------------------------------------------------------------
// Ring: the storage behind both TimeSeries and telemetry windows

TEST(Ring, UnboundedNeverEvicts)
{
    Ring<int> r;
    for (int i = 0; i < 100; ++i)
        r.push(i);
    EXPECT_EQ(r.size(), 100u);
    EXPECT_EQ(r.dropped(), 0u);
    EXPECT_EQ(r.capacity(), 0u);
    EXPECT_EQ(r[0], 0);
    EXPECT_EQ(r.back(), 99);
}

TEST(Ring, BoundedEvictsOldestAndCountsDrops)
{
    Ring<int> r(3);
    for (int i = 0; i < 8; ++i)
        r.push(i);
    EXPECT_EQ(r.size(), 3u);
    EXPECT_EQ(r.dropped(), 5u);
    // Logical indexing: [0] is the oldest retained element.
    EXPECT_EQ(r[0], 5);
    EXPECT_EQ(r[1], 6);
    EXPECT_EQ(r[2], 7);
    EXPECT_EQ(r.back(), 7);

    // Oldest-to-newest range-for.
    std::vector<int> seen;
    for (int v : r)
        seen.push_back(v);
    EXPECT_EQ(seen, (std::vector<int>{5, 6, 7}));
}

TEST(Ring, ClearResetsDropAccounting)
{
    Ring<int> r(2);
    for (int i = 0; i < 5; ++i)
        r.push(i);
    EXPECT_EQ(r.dropped(), 3u);
    r.clear();
    EXPECT_TRUE(r.empty());
    EXPECT_EQ(r.dropped(), 0u);
    r.push(42);
    EXPECT_EQ(r.size(), 1u);
    EXPECT_EQ(r[0], 42);
    EXPECT_EQ(r.dropped(), 0u);
}

TEST(Ring, BackIsMutable)
{
    Ring<int> r(2);
    r.push(1);
    r.push(2);
    r.push(3);  // evicts 1
    r.back() = 7;
    EXPECT_EQ(r[1], 7);
    EXPECT_EQ(r[0], 2);
}
