/** @file Tests for the last-level cache model. */

#include <gtest/gtest.h>

#include <vector>

#include "sys/llc.hh"

using namespace nvsim;

namespace
{

LlcParams
tinyLlc(unsigned ways = 2, Bytes capacity = 16 * kLineSize)
{
    return LlcParams{capacity, ways};
}

} // namespace

TEST(Llc, MissThenHit)
{
    Llc llc(tinyLlc());
    LlcResult r1 = llc.access(0, false);
    EXPECT_TRUE(r1.missed);
    EXPECT_FALSE(r1.hit);
    LlcResult r2 = llc.access(0, false);
    EXPECT_TRUE(r2.hit);
    EXPECT_TRUE(llc.resident(0));
}

TEST(Llc, StoreMarksDirtyAndEvictionReportsIt)
{
    Llc llc(tinyLlc(1, 4 * kLineSize));  // 4 sets, direct mapped
    llc.access(0, true);                  // dirty line 0
    // Alias of line 0 in a 4-set direct-mapped cache.
    Addr alias = 4 * kLineSize;
    LlcResult r = llc.access(alias, false);
    EXPECT_TRUE(r.missed);
    EXPECT_TRUE(r.evictedDirty);
    EXPECT_EQ(r.victim, 0u);
}

TEST(Llc, CleanEvictionIsSilent)
{
    Llc llc(tinyLlc(1, 4 * kLineSize));
    llc.access(0, false);
    LlcResult r = llc.access(4 * kLineSize, false);
    EXPECT_TRUE(r.missed);
    EXPECT_FALSE(r.evictedDirty);
}

TEST(Llc, LruReplacementWithinSet)
{
    Llc llc(tinyLlc(2, 8 * kLineSize));  // 4 sets x 2 ways
    Addr a = 0;
    Addr b = 4 * kLineSize;   // same set, different tag
    Addr c = 8 * kLineSize;   // same set again
    llc.access(a, false);
    llc.access(b, false);
    llc.access(a, false);  // refresh a
    llc.access(c, false);  // evicts b
    EXPECT_TRUE(llc.resident(a));
    EXPECT_FALSE(llc.resident(b));
    EXPECT_TRUE(llc.resident(c));
}

TEST(Llc, NontemporalInvalidateDropsWithoutWriteback)
{
    Llc llc(tinyLlc());
    llc.access(0, true);  // dirty
    llc.invalidateLine(0);
    EXPECT_FALSE(llc.resident(0));
    // Refill misses but reports no dirty eviction (the line vanished).
    LlcResult r = llc.access(0, false);
    EXPECT_TRUE(r.missed);
    EXPECT_FALSE(r.evictedDirty);
}

TEST(Llc, FlushWritesBackExactlyDirtyLines)
{
    Llc llc(tinyLlc(2, 16 * kLineSize));
    llc.access(0, true);
    llc.access(kLineSize, false);
    llc.access(2 * kLineSize, true);
    std::vector<Addr> written;
    llc.flush([&](Addr a) { written.push_back(a); });
    EXPECT_EQ(written.size(), 2u);
    EXPECT_FALSE(llc.resident(0));
    EXPECT_FALSE(llc.resident(kLineSize));
}

TEST(Llc, InvalidateAll)
{
    Llc llc(tinyLlc());
    llc.access(0, true);
    llc.access(64, false);
    llc.invalidateAll();
    EXPECT_FALSE(llc.resident(0));
    EXPECT_FALSE(llc.resident(64));
}

TEST(Llc, CapacityIsRespected)
{
    Llc llc(tinyLlc(2, 16 * kLineSize));
    EXPECT_EQ(llc.capacity(), 16 * kLineSize);
    // Fill with 32 distinct lines: only 16 can survive.
    unsigned resident = 0;
    for (Addr a = 0; a < 32 * kLineSize; a += kLineSize)
        llc.access(a, false);
    for (Addr a = 0; a < 32 * kLineSize; a += kLineSize)
        resident += llc.resident(a) ? 1 : 0;
    EXPECT_EQ(resident, 16u);
}
