/**
 * @file
 * Tests for the three paper networks: structure, scale and footprint
 * shapes (Section V scales batch sizes until footprints exceed
 * 650 GB).
 */

#include <gtest/gtest.h>

#include "dnn/liveness.hh"
#include "dnn/networks.hh"
#include "dnn/planner.hh"

using namespace nvsim;
using namespace nvsim::dnn;

TEST(Networks, BuilderLookup)
{
    EXPECT_EQ(buildNetwork("tiny", 2).name(), "tiny_cnn");
    EXPECT_DEATH(buildNetwork("alexnet", 2), "unknown network");
}

TEST(Networks, DenseNetStructure)
{
    ComputeGraph g = buildDenseNet264(8);
    // 6+12+64+48 = 130 dense layers, each Concat+BN+Conv+BN+Conv (+2
    // ReLU), plus stem/transitions/head: > 900 forward kernels.
    EXPECT_GT(g.forwardOps(), 900u);
    unsigned concats = 0, convs = 0;
    for (const auto &op : g.schedule()) {
        concats += op.kind == OpKind::Concat;
        convs += op.kind == OpKind::Conv;
    }
    // One concat per dense layer plus one per block end.
    EXPECT_GE(concats, 130u);
    // Two convs per dense layer (1x1 + 3x3).
    EXPECT_GE(convs, 260u);
}

TEST(Networks, FootprintsScaleWithBatch)
{
    ComputeGraph g1 = buildDenseNet264(8);
    ComputeGraph g2 = buildDenseNet264(16);
    auto peak = [](const ComputeGraph &g) {
        auto live = computeLiveness(g);
        return peakLiveBytes(g, live);
    };
    Bytes p1 = peak(g1), p2 = peak(g2);
    // Activations dominate: near-linear scaling in batch.
    EXPECT_GT(p2, p1 * 19 / 10);
    EXPECT_LT(p2, p1 * 21 / 10);
}

/**
 * Paper-scale footprints: each network's training arena exceeds the
 * 192 GB DRAM cache by a wide margin at the batch sizes the benches
 * use (the paper scales footprints beyond 650 GB).
 */
struct NetCase
{
    const char *name;
    std::uint64_t batch;
    double min_gb, max_gb;
};

class NetworkFootprint : public ::testing::TestWithParam<NetCase>
{
};

TEST_P(NetworkFootprint, PaperScaleArena)
{
    const NetCase &c = GetParam();
    ComputeGraph g = buildNetwork(c.name, c.batch);
    ArenaPlan plan = planArena(g, 1);
    double gb = static_cast<double>(plan.arenaBytes) / 1e9;
    EXPECT_GE(gb, c.min_gb) << c.name;
    EXPECT_LE(gb, c.max_gb) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    PaperNetworks, NetworkFootprint,
    ::testing::Values(NetCase{"densenet264", 2304, 600, 800},
                      NetCase{"resnet200", 2560, 550, 750},
                      NetCase{"inceptionv4", 4096, 550, 800}));

TEST(Networks, ResNetHasResidualAdds)
{
    ComputeGraph g = buildResNet200(4);
    unsigned adds = 0;
    for (const auto &op : g.schedule())
        adds += op.kind == OpKind::Add;
    EXPECT_EQ(adds, 3u + 24u + 36u + 3u);
}

TEST(Networks, InceptionHasParallelBranches)
{
    ComputeGraph g = buildInceptionV4(4);
    unsigned concats = 0;
    for (const auto &op : g.schedule())
        concats += op.kind == OpKind::Concat;
    // Stem (3) + 4 A + 1 RA + 7 B + 1 RB + 3 C = at least 19 concats.
    EXPECT_GE(concats, 19u);
    EXPECT_GT(g.totalFlops(), 0.0);
}

TEST(Networks, ShapesArePlausible)
{
    NetBuilder b("shapes");
    TensorId x = b.input(Shape{2, 3, 32, 32});
    EXPECT_EQ(b.shape(x).bytes(), 2u * 3 * 32 * 32 * 4);
    TensorId c = b.conv(x, 8, 3, 2);
    EXPECT_EQ(b.shape(c).c, 8u);
    EXPECT_EQ(b.shape(c).h, 16u);
    TensorId p = b.pool(c, 2, 2);
    EXPECT_EQ(b.shape(p).h, 8u);
    TensorId g = b.globalPool(p);
    EXPECT_EQ(b.shape(g).h, 1u);
    TensorId cc = b.concat({c, c});
    EXPECT_EQ(b.shape(cc).c, 16u);
}

TEST(Networks, Vgg19Structure)
{
    ComputeGraph g = buildVgg19(8);
    unsigned convs = 0, gemms = 0, pools = 0, concats = 0, bns = 0;
    for (const auto &op : g.schedule()) {
        if (isBackwardOp(op.kind))
            continue;
        convs += op.kind == OpKind::Conv;
        gemms += op.kind == OpKind::Gemm;
        pools += op.kind == OpKind::Pool;
        concats += op.kind == OpKind::Concat;
        bns += op.kind == OpKind::BatchNorm;
    }
    EXPECT_EQ(convs, 16u);
    EXPECT_EQ(gemms, 3u);
    EXPECT_EQ(pools, 5u);
    EXPECT_EQ(concats, 0u);  // no dense blocks, no inception branches
    EXPECT_EQ(bns, 0u);      // classic VGG has no batch norm
    g.validate();
}

TEST(Networks, Vgg19IsComputeDominatedVsDenseNet)
{
    // Per byte of activation traffic, VGG does far more FLOPs than
    // DenseNet — the reason the 2LM penalty hits DenseNet harder.
    ComputeGraph vgg = buildVgg19(8);
    ComputeGraph dense = buildDenseNet264(8);
    auto intensity = [](const ComputeGraph &g) {
        return g.totalFlops() /
               static_cast<double>(g.activationBytes());
    };
    EXPECT_GT(intensity(vgg), 2.0 * intensity(dense));
}
