/**
 * @file
 * Equivalence tests for the batched access engine: for every mode, op,
 * pattern and granularity, MemorySystem::accessRange must leave the
 * machine in a state bit-identical to the reference per-line loop —
 * every uncore counter, LLC statistic, device buffer effect (via write
 * amplification) and the accumulated simulated time (an exact
 * floating-point comparison, since the batched path is required to add
 * per-line latencies in the reference order).
 */

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "kernels/kernels.hh"

using namespace nvsim;

namespace
{

SystemConfig
config(MemoryMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = 4096;
    cfg.epochBytes = 128 * kKiB;
    return cfg;
}

/** Assert two systems are observably identical, field by field. */
void
expectIdentical(MemorySystem &batched, MemorySystem &per_line)
{
    PerfCounters cb = batched.counters();
    PerfCounters cp = per_line.counters();
    std::vector<std::uint64_t> vb, vp;
    std::vector<const char *> names;
    cb.forEachField([&](const char *name, const char *,
                        std::uint64_t v) {
        names.push_back(name);
        vb.push_back(v);
    });
    cp.forEachField(
        [&](const char *, const char *, std::uint64_t v) {
            vp.push_back(v);
        });
    for (std::size_t i = 0; i < names.size(); ++i)
        EXPECT_EQ(vb[i], vp[i]) << "counter " << names[i];

    EXPECT_EQ(batched.llc().hitCount(), per_line.llc().hitCount());
    EXPECT_EQ(batched.llc().missCount(), per_line.llc().missCount());
    EXPECT_EQ(batched.llc().dirtyEvictionCount(),
              per_line.llc().dirtyEvictionCount());
    EXPECT_EQ(batched.llc().ntInvalidateCount(),
              per_line.llc().ntInvalidateCount());

    // Exact: the engines must accumulate latency work in the same
    // floating-point order, not merely to a tolerance.
    EXPECT_EQ(batched.now(), per_line.now());
    EXPECT_EQ(batched.nvramWriteAmplification(),
              per_line.nvramWriteAmplification());
}

struct KernelCase
{
    KernelOp op;
    bool nontemporal;
    const char *name;
};

const KernelCase kKernelCases[] = {
    {KernelOp::ReadOnly, false, "read_only"},
    {KernelOp::WriteOnly, true, "write_nt"},
    {KernelOp::WriteOnly, false, "write_std"},
    {KernelOp::ReadModifyWrite, false, "rmw_std"},
    {KernelOp::ReadModifyWrite, true, "rmw_nt"},
};

void
runGrid(MemoryMode mode)
{
    for (const KernelCase &kc : kKernelCases) {
        for (AccessPattern pattern :
             {AccessPattern::Sequential, AccessPattern::Random}) {
            for (Bytes gran : {Bytes{64}, Bytes{256}}) {
                KernelConfig k;
                k.op = kc.op;
                k.nontemporal = kc.nontemporal;
                k.pattern = pattern;
                k.granularity = gran;
                k.threads = 6;

                SCOPED_TRACE(std::string(kc.name) + " " +
                             accessPatternName(pattern) + " gran " +
                             std::to_string(gran));

                MemorySystem batched(config(mode));
                MemorySystem per_line(config(mode));
                ASSERT_TRUE(batched.batchedAccess());
                per_line.setBatchedAccess(false);
                for (MemorySystem *sys : {&batched, &per_line}) {
                    Region r = sys->allocateIn(MemPool::Nvram, 4 * kMiB,
                                               "arr");
                    runKernel(*sys, r, k);
                }
                expectIdentical(batched, per_line);
            }
        }
    }
}

} // namespace

TEST(AccessRangeEquivalence, OneLmKernelGrid)
{
    runGrid(MemoryMode::OneLm);
}

TEST(AccessRangeEquivalence, TwoLmKernelGrid)
{
    runGrid(MemoryMode::TwoLm);
}

TEST(AccessRangeEquivalence, OneLmDramPool)
{
    KernelConfig k;
    k.op = KernelOp::ReadModifyWrite;
    k.threads = 4;
    MemorySystem batched(config(MemoryMode::OneLm));
    MemorySystem per_line(config(MemoryMode::OneLm));
    per_line.setBatchedAccess(false);
    for (MemorySystem *sys : {&batched, &per_line}) {
        Region r = sys->allocateIn(MemPool::Dram, 4 * kMiB, "arr");
        runKernel(*sys, r, k);
    }
    expectIdentical(batched, per_line);
}

TEST(AccessRangeEquivalence, OneLmRangeSpanningPoolBoundary)
{
    // A NUMA-spill allocation crosses from the DRAM pool into NVRAM;
    // the batched engine must split its segments at the boundary.
    KernelConfig k;
    k.op = KernelOp::WriteOnly;
    k.nontemporal = true;
    k.threads = 4;
    MemorySystem batched(config(MemoryMode::OneLm));
    MemorySystem per_line(config(MemoryMode::OneLm));
    per_line.setBatchedAccess(false);
    for (MemorySystem *sys : {&batched, &per_line}) {
        Bytes dram_free = sys->poolFree(MemPool::Dram);
        Region r = sys->allocate(dram_free + 4 * kMiB, "spill");
        ASSERT_EQ(r.pool, MemPool::Dram);
        runKernel(*sys, r, k);
    }
    expectIdentical(batched, per_line);
}

TEST(AccessRangeEquivalence, UnalignedAndOddSizes)
{
    for (MemoryMode mode : {MemoryMode::OneLm, MemoryMode::TwoLm}) {
        SCOPED_TRACE(memoryModeName(mode));
        MemorySystem batched(config(mode));
        MemorySystem per_line(config(mode));
        per_line.setBatchedAccess(false);
        for (MemorySystem *sys : {&batched, &per_line}) {
            Region r = sys->allocateIn(MemPool::Nvram, 8 * kMiB, "arr");
            // Unaligned bases, odd sizes, zero size (one line), ranges
            // spanning many interleave chunks, and a mid-run epoch
            // boundary (the region is larger than epochBytes).
            sys->submit({0, CpuOp::Load, r.base + 3, 1});
            sys->submit({1, CpuOp::Store, r.base + 130, 517});
            sys->submit({2, CpuOp::NtStore, r.base + 5 * kLineSize + 7,
                        200});
            sys->submit({0, CpuOp::Load, r.base + 4096 - 32, 64});
            sys->submit({3, CpuOp::Load, r.base + 1000, 0});
            sys->submit({1, CpuOp::Load, r.base, 6 * kMiB});
            sys->submit({2, CpuOp::NtStore, r.base + 123, 3 * kMiB});
            sys->quiesce();
        }
        expectIdentical(batched, per_line);
    }
}

TEST(AccessRangeEquivalence, EngineToggleMidRun)
{
    // Switching engines between phases must not disturb state: run a
    // phase batched, a phase per-line, and compare against all-batched.
    MemorySystem toggled(config(MemoryMode::TwoLm));
    MemorySystem batched(config(MemoryMode::TwoLm));
    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.threads = 4;
    for (MemorySystem *sys : {&toggled, &batched}) {
        Region r = sys->allocateIn(MemPool::Nvram, 4 * kMiB, "arr");
        runKernel(*sys, r, k);
        if (sys == &toggled)
            sys->setBatchedAccess(false);
        runKernel(*sys, r, k);
    }
    expectIdentical(batched, toggled);
}

TEST(AccessRangeEquivalence, NonPowerOfTwoChannelGrid)
{
    // The cached interleave mapping has a fast shift/mask path for
    // power-of-two granules and a general division path; both engines
    // route through the same map. A 5-channel socket with a non-pow2
    // granule after offlining exercises the general path end to end:
    // batched and per-line engines must still agree exactly.
    for (MemoryMode mode : {MemoryMode::OneLm, MemoryMode::TwoLm}) {
        SCOPED_TRACE(memoryModeName(mode));
        SystemConfig cfg = config(mode);
        cfg.channelsPerSocket = 5;
        MemorySystem batched(cfg);
        MemorySystem per_line(cfg);
        per_line.setBatchedAccess(false);
        KernelConfig k;
        k.op = KernelOp::ReadModifyWrite;
        k.threads = 3;
        for (MemorySystem *sys : {&batched, &per_line}) {
            Region r = sys->allocateIn(MemPool::Nvram, 6 * kMiB, "arr");
            runKernel(*sys, r, k);
            // Offline a channel mid-run: the map is rebuilt with 4
            // online channels but chunk positions keyed off the
            // original granule, then traffic resumes on both engines.
            sys->offlineChannel(2);
            sys->submit({0, CpuOp::Load, r.base + 777, 2 * kMiB});
            sys->submit({1, CpuOp::NtStore, r.base + 64, 1 * kMiB});
            sys->quiesce();
        }
        expectIdentical(batched, per_line);
    }
}
