/**
 * @file
 * Differential-telemetry and anomaly-detector tests: a self-diff of
 * identical artifacts is empty; an injected counter perturbation is
 * detected, localized to its window/channel, and blamed on the right
 * counter family; manifest mismatches are diagnostics rather than
 * crashes; the EWMA/robust-z detector fires on a seeded step and
 * never on a flat series; and rank diffs over reconstructed sketches
 * are exact at bucket resolution.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "kernels/kernels.hh"
#include "obs/diff/anomaly.hh"
#include "obs/diff/diff.hh"
#include "obs/diff/teldoc.hh"
#include "obs/session.hh"
#include "obs/telemetry/slo.hh"
#include "sys/memsys.hh"

using namespace nvsim;
using namespace nvsim::obs;

namespace
{

constexpr std::size_t kF = kNumPerfFields;

std::size_t
fidx(PerfField f)
{
    return static_cast<std::size_t>(f);
}

/** A synthetic window with steady demand and maintenance activity. */
TelemetryWindow
steadyWindow(std::int64_t index)
{
    TelemetryWindow w;
    w.index = index;
    w.activeS = 1e-3;
    w.epochs = 1;
    w.demandBytes = 1e6;
    w.all[fidx(PerfField::llcReads)] = 1000;
    w.all[fidx(PerfField::dramRead)] = 900;
    w.all[fidx(PerfField::nvramRead)] = 100;
    w.all[fidx(PerfField::targetedRefreshes)] = 4;
    w.all[fidx(PerfField::maintenanceStallNs)] = 2000;
    w.perChannel.assign(kF, 0.0);
    for (std::size_t f = 0; f < kF; ++f)
        w.perChannel[f] = w.all[f];
    w.sketch.add(500, 100);
    w.sketch.add(2000, 1);
    return w;
}

/** A synthetic single-channel run of @p n steady windows. */
TelRun
steadyRun(const std::string &label, int n)
{
    TelRun r;
    r.label = label;
    r.channels = 1;
    r.windowS = 1e-3;
    r.config = {"0xdeadbeefdeadbeef", "2lm", 8192};
    for (int i = 0; i < n; ++i) {
        TelemetryWindow w = steadyWindow(i);
        for (std::size_t f = 0; f < kF; ++f)
            r.totals[f] += w.all[f];
        r.latency.merge(w.sketch);
        r.windows.push_back(std::move(w));
    }
    return r;
}

TelDoc
docOf(TelRun run)
{
    TelDoc d;
    d.schema = "nvsim-telemetry-v1";
    d.windowS = run.windowS;
    d.hasManifest = true;
    d.manifest.bench = "synthetic";
    d.runs.push_back(std::move(run));
    return d;
}

} // namespace

// --------------------------------------------------------------------
// diffTelemetry

TEST(Diff, SelfDiffIsEmpty)
{
    TelDoc a = docOf(steadyRun("r", 6));
    TelDoc b = docOf(steadyRun("r", 6));
    DiffReport report = diffTelemetry(a, b, {});
    EXPECT_TRUE(report.empty());
    EXPECT_EQ(report.comparability, Comparability::Comparable);
    EXPECT_TRUE(report.diagnostics.empty());
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_TRUE(report.runs[0].entries.empty());
    EXPECT_TRUE(report.runs[0].rankDiffs.empty());
    EXPECT_TRUE(report.runs[0].families.empty());
    EXPECT_NE(report.text({}).find("identical"), std::string::npos);
}

TEST(Diff, PerturbationIsLocalizedAndBlamed)
{
    TelDoc a = docOf(steadyRun("r", 6));
    TelDoc b = docOf(steadyRun("r", 6));
    // A maintenance storm in window 3: targeted refreshes spike and
    // drag bank-stall time with them.
    TelemetryWindow &w = b.runs[0].windows[3];
    std::size_t tr = fidx(PerfField::targetedRefreshes);
    std::size_t st = fidx(PerfField::maintenanceStallNs);
    w.all[tr] += 200;
    w.all[st] += 90000;
    w.perChannel[tr] += 200;
    w.perChannel[st] += 90000;
    b.runs[0].totals[tr] += 200;
    b.runs[0].totals[st] += 90000;

    DiffReport report = diffTelemetry(a, b, {});
    EXPECT_FALSE(report.empty());
    ASSERT_EQ(report.runs.size(), 1u);
    const RunDiff &rd = report.runs[0];

    // Both changed counters appear, on the aggregate and the channel
    // (plus the derived maint_duty they move) — all pinned to window
    // 3, and nothing else changed.
    ASSERT_GE(rd.entries.size(), 4u);
    bool sawAll = false, sawCh0 = false;
    for (const DiffEntry &e : rd.entries) {
        EXPECT_EQ(e.window, 3);
        EXPECT_TRUE(e.metric == "targeted_refreshes" ||
                    e.metric == "maintenance_stall_ns" ||
                    e.metric == "maint_duty")
            << e.metric;
        EXPECT_GT(e.delta, 0.0);
        sawAll = sawAll || e.channel == "all";
        sawCh0 = sawCh0 || e.channel == "ch0";
    }
    EXPECT_TRUE(sawAll);
    EXPECT_TRUE(sawCh0);

    // The family summary blames maintenance, led by the counter whose
    // run total moved the most in relative terms (the refresh storm
    // explains the stall delta, per the cause taxonomy).
    ASSERT_FALSE(rd.families.empty());
    EXPECT_EQ(rd.families[0].family, "maintenance");
    EXPECT_EQ(rd.families[0].dominant, "targeted_refreshes");
    EXPECT_NE(rd.families[0].cause.find("TargetedRefresh"),
              std::string::npos);

    std::string text = report.text({});
    EXPECT_NE(text.find("blame maintenance"), std::string::npos);
    EXPECT_NE(text.find("maintenance_stall_ns"), std::string::npos);
    EXPECT_NE(text.find("window 3"), std::string::npos);

    std::string json = report.json({});
    EXPECT_NE(json.find("\"nvsim-telemetry-diff-v1\""),
              std::string::npos);
    EXPECT_NE(json.find("\"family\":\"maintenance\""),
              std::string::npos);
}

TEST(Diff, ManifestMismatchIsDiagnosticNotFatal)
{
    TelDoc a = docOf(steadyRun("r", 4));
    TelDoc b = docOf(steadyRun("r", 4));
    b.manifest.causalSeed = 7;
    b.manifest.flags = {"--per-line"};
    b.runs[0].config.hash = "0x0123456789abcdef";

    DiffReport report = diffTelemetry(a, b, {});
    // Metrics identical, but the provenance differences are reported
    // and make the comparison non-empty.
    EXPECT_EQ(report.comparability, Comparability::Diagnostics);
    EXPECT_FALSE(report.empty());
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_TRUE(report.runs[0].configMismatch);
    EXPECT_TRUE(report.runs[0].entries.empty());
    std::string all;
    for (const std::string &d : report.diagnostics)
        all += d + "\n";
    EXPECT_NE(all.find("seed"), std::string::npos);
    EXPECT_NE(all.find("flags"), std::string::npos);
    EXPECT_NE(all.find("config hash"), std::string::npos);
}

TEST(Diff, WindowGeometryMismatchIsIncomparable)
{
    TelDoc a = docOf(steadyRun("r", 4));
    TelDoc b = docOf(steadyRun("r", 4));
    b.windowS = 2e-3;
    DiffReport report = diffTelemetry(a, b, {});
    EXPECT_EQ(report.comparability, Comparability::Incomparable);
    EXPECT_TRUE(report.runs.empty());
    EXPECT_FALSE(report.empty());

    DiffOptions force;
    force.force = true;
    DiffReport forced = diffTelemetry(a, b, force);
    EXPECT_EQ(forced.comparability, Comparability::Incomparable);
    EXPECT_EQ(forced.runs.size(), 1u);  // --force diffs anyway
}

TEST(Diff, UnmatchedRunLabelsAreReported)
{
    TelDoc a = docOf(steadyRun("left", 3));
    TelDoc b = docOf(steadyRun("right", 3));
    DiffReport report = diffTelemetry(a, b, {});
    EXPECT_FALSE(report.empty());
    ASSERT_EQ(report.onlyInA.size(), 1u);
    ASSERT_EQ(report.onlyInB.size(), 1u);
    EXPECT_EQ(report.onlyInA[0], "left");
    EXPECT_EQ(report.onlyInB[0], "right");
}

TEST(Diff, MissingWindowCountsAsDifference)
{
    TelDoc a = docOf(steadyRun("r", 5));
    TelDoc b = docOf(steadyRun("r", 4));  // window 4 never produced
    // Equalize the run-level aggregates so only the window absence
    // itself differs.
    a.runs[0].totals = b.runs[0].totals;
    a.runs[0].latency = b.runs[0].latency;
    DiffReport report = diffTelemetry(a, b, {});
    ASSERT_EQ(report.runs.size(), 1u);
    EXPECT_FALSE(report.runs[0].entries.empty());
    for (const DiffEntry &e : report.runs[0].entries)
        EXPECT_EQ(e.window, 4);
}

// --------------------------------------------------------------------
// Rank diffs: exact to bucket resolution

TEST(Diff, RankDiffExactAtBucketBoundaries)
{
    // The [128, 256) octave has 2-wide sub-buckets: 129 and 130 land
    // in adjacent buckets, so the p50/p90 ranks must differ; 128 and
    // 129 share a bucket, so the rank diff must be exactly empty even
    // though the raw samples differ. The 100/1000 padding pins min
    // and max so the sketch's [min, max] clamp cannot leak the raw
    // values back into the percentile representatives.
    auto runWith = [](std::uint64_t x) {
        TelRun r = steadyRun("r", 1);
        r.latency.clear();
        r.latency.add(100, 90);
        r.latency.add(x, 100);
        r.latency.add(1000, 10);
        r.windows[0].sketch = r.latency;
        return r;
    };
    ASSERT_NE(LatencySketch::bucketOf(129), LatencySketch::bucketOf(130));
    ASSERT_EQ(LatencySketch::bucketOf(128), LatencySketch::bucketOf(129));

    DiffReport differs = diffTelemetry(docOf(runWith(129)),
                                       docOf(runWith(130)), {});
    ASSERT_EQ(differs.runs.size(), 1u);
    ASSERT_FALSE(differs.runs[0].rankDiffs.empty());
    for (const RankDiff &rk : differs.runs[0].rankDiffs) {
        EXPECT_TRUE(rk.rank == "p50_ns" || rk.rank == "p90_ns")
            << rk.rank;
        EXPECT_NE(rk.a, rk.b);
    }

    DiffReport same = diffTelemetry(docOf(runWith(128)),
                                    docOf(runWith(129)), {});
    ASSERT_EQ(same.runs.size(), 1u);
    EXPECT_TRUE(same.runs[0].rankDiffs.empty());
    EXPECT_TRUE(same.empty())
        << "values within one bucket must diff empty";
}

TEST(Sketch, FromSparseRoundTripsExactly)
{
    LatencySketch s;
    std::uint64_t state = 99;
    for (int i = 0; i < 5000; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        s.add(state % 3000000, 1 + state % 3);
    }
    LatencySketch back = LatencySketch::fromSparse(
        s.sparse(), s.min(), s.max(), s.sum());
    EXPECT_EQ(back, s);
    EXPECT_EQ(back.quantile(0.999), s.quantile(0.999));
    EXPECT_EQ(back.min(), s.min());
    EXPECT_EQ(back.max(), s.max());
}

// --------------------------------------------------------------------
// Anomaly detection

namespace
{

std::vector<const TelemetryWindow *>
pointersTo(const std::vector<TelemetryWindow> &windows)
{
    std::vector<const TelemetryWindow *> ptrs;
    for (const TelemetryWindow &w : windows)
        ptrs.push_back(&w);
    return ptrs;
}

} // namespace

TEST(Anomaly, FlatSeriesNeverFires)
{
    std::vector<TelemetryWindow> windows;
    for (int i = 0; i < 50; ++i)
        windows.push_back(steadyWindow(i));
    AnomalyReport report = detectAnomalies(pointersTo(windows), {});
    EXPECT_TRUE(report.empty());
}

TEST(Anomaly, SeededStepFiresAtTheStepWindow)
{
    // Steady maintenance background, then a targeted-refresh storm
    // from window 30 on (the RowHammer-mitigation failure mode).
    std::vector<TelemetryWindow> windows;
    for (int i = 0; i < 40; ++i) {
        TelemetryWindow w = steadyWindow(i);
        if (i >= 30) {
            w.all[fidx(PerfField::targetedRefreshes)] += 400;
            w.all[fidx(PerfField::maintenanceStallNs)] += 150000;
        }
        windows.push_back(std::move(w));
    }
    AnomalyReport report = detectAnomalies(pointersTo(windows), {});
    ASSERT_FALSE(report.empty());
    bool storm = false;
    std::size_t at30 = 0;
    for (const Anomaly &a : report.anomalies) {
        EXPECT_GE(a.window, 30);
        EXPECT_GE(a.z, 6.0);
        if (a.window == 30)
            ++at30;
        if (a.window == 30 && a.metric == "targeted_refreshes_rate")
            storm = true;
    }
    EXPECT_TRUE(storm) << "storm onset not flagged at window 30";
    EXPECT_EQ(report.countAt(30), at30);
    EXPECT_EQ(report.countAt(0), 0u);
    EXPECT_NE(report.json().find("targeted_refreshes_rate"),
              std::string::npos);
}

TEST(Anomaly, SloAnomaliesPredicateCountsFirings)
{
    SloSpec spec = SloSpec::parse("anomalies<1");
    ASSERT_EQ(spec.objectives.size(), 1u);
    EXPECT_EQ(spec.objectives[0].metric, "anomalies");

    // A live run with quiet windows: no firings, objective holds.
    TelemetryOptions topts;
    topts.csvPath = "unused.csv";
    topts.windowSeconds = 1e-3;
    TelemetryRun run("r", topts);
    PerfCounters zero;
    run.prime(&zero, 1);
    std::uint64_t cum = 0;
    for (int e = 0; e < 6; ++e) {
        run.noteLatency(1e-6, 8);
        cum += 100;
        PerfCounters c;
        c.dramRead = cum;
        run.onEpoch(e * 1e-3, (e + 1) * 1e-3 - 1e-7, 512, &c, 1);
    }
    run.finish();

    AnomalyReport quiet = detectAnomalies(run, {});
    EXPECT_TRUE(quiet.empty());
    EXPECT_TRUE(evaluateSlo(spec, run, &quiet).pass);
    EXPECT_TRUE(evaluateSlo(spec, run, nullptr).pass);

    // One fabricated firing makes the objective fail in that window.
    AnomalyReport noisy = quiet;
    noisy.anomalies.push_back({2, "eff_gbs", 0.0, 10.0, 9.0});
    SloResult bad = evaluateSlo(spec, run, &noisy);
    EXPECT_FALSE(bad.pass);
    ASSERT_EQ(bad.objectives.size(), 1u);
    EXPECT_EQ(bad.objectives[0].worstWindow, 2);
}

// --------------------------------------------------------------------
// End to end: session JSON -> teldoc -> self-diff

namespace
{

SystemConfig
smallCfg()
{
    SystemConfig c;
    c.mode = MemoryMode::TwoLm;
    c.scale = 8192;
    c.epochBytes = 64 * kKiB;
    return c;
}

void
writeSession(const std::string &json)
{
    SessionOptions opts;
    opts.telemetry.jsonPath = json;
    opts.telemetry.windowSeconds = 1e-4;
    opts.telemetry.manifest.bench = "test_diff";
    Session session(opts);
    for (const char *label : {"alpha", "beta"}) {
        MemorySystem sys(smallCfg());
        Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
        primeDirty(sys, arr, 4);
        sys.resetCounters();
        if (Observer *o = session.beginRun(label))
            sys.attachObserver(o);
        if (TelemetryRun *tel = session.beginTelemetryRun(label))
            sys.attachTelemetry(tel);
        KernelConfig k;
        k.op = KernelOp::ReadModifyWrite;
        k.threads = 4;
        runKernel(sys, arr, k);
        session.endRun();
    }
    session.write();
}

} // namespace

TEST(DiffEndToEnd, ExportedArtifactSelfDiffsEmpty)
{
    std::string dir = ::testing::TempDir();
    writeSession(dir + "diff_tel_a.json");
    writeSession(dir + "diff_tel_b.json");

    TelDoc a = loadTelemetryDoc(dir + "diff_tel_a.json");
    TelDoc b = loadTelemetryDoc(dir + "diff_tel_b.json");
    EXPECT_TRUE(a.hasManifest);
    EXPECT_EQ(a.manifest.bench, "test_diff");
    ASSERT_EQ(a.runs.size(), 2u);
    EXPECT_FALSE(a.runs[0].config.empty());
    EXPECT_FALSE(a.runs[0].latency.empty());
    EXPECT_FALSE(a.runs[0].windows.empty());

    DiffReport report = diffTelemetry(a, b, {});
    EXPECT_TRUE(report.empty()) << report.text({});

    // The reloaded windows drive the detectors identically to the
    // in-process run: at minimum, cleanly and deterministically.
    AnomalyReport r1 = detectAnomalies(pointersTo(a.runs[0].windows), {});
    AnomalyReport r2 = detectAnomalies(pointersTo(a.runs[0].windows), {});
    EXPECT_EQ(r1.json(), r2.json());
}
