/**
 * @file
 * Telemetry-engine tests: the latency sketch's documented error bound
 * and exact merge algebra, window rollover with fractional-epoch
 * carry (counter conservation), ring eviction accounting, SLO
 * parsing/evaluation, batched-vs-per-line collection equivalence, and
 * the byte-identity of the exported files under any run registration
 * order (the --jobs=N guarantee).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <vector>

#include "kernels/kernels.hh"
#include "obs/session.hh"
#include "obs/telemetry/sketch.hh"
#include "obs/telemetry/slo.hh"
#include "obs/telemetry/telemetry.hh"
#include "sys/memsys.hh"

using namespace nvsim;
using obs::LatencySketch;

namespace
{

/** Deterministic 64-bit LCG (MMIX constants). */
std::uint64_t
lcg(std::uint64_t &state)
{
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state;
}

/** Exact nearest-rank percentile, mirroring LatencySketch::quantile. */
std::uint64_t
exactQuantile(std::vector<std::uint64_t> sorted, double q)
{
    std::sort(sorted.begin(), sorted.end());
    std::uint64_t n = sorted.size();
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(n) - 1e-9));
    rank = std::max<std::uint64_t>(1, std::min(rank, n));
    return sorted[rank - 1];
}

} // namespace

// --------------------------------------------------------------------
// LatencySketch

TEST(Sketch, SmallValuesAreExact)
{
    // Values below 64 each get their own bucket: quantiles are exact.
    LatencySketch s;
    for (std::uint64_t v = 0; v < 64; ++v)
        s.add(v);
    EXPECT_EQ(s.count(), 64u);
    EXPECT_EQ(s.min(), 0u);
    EXPECT_EQ(s.max(), 63u);
    for (std::uint64_t v = 0; v < 64; ++v) {
        double q = static_cast<double>(v + 1) / 64.0;
        EXPECT_EQ(s.quantile(q), v) << "q=" << q;
    }
}

TEST(Sketch, BucketGeometry)
{
    // One exact bucket per value up to 63...
    EXPECT_EQ(LatencySketch::bucketOf(0), 0u);
    EXPECT_EQ(LatencySketch::bucketOf(63), 63u);
    // ...then 64 linear sub-buckets per octave: [64,128) maps to
    // buckets 64..127, each 1 wide; [128,256) to 128..191, 2 wide.
    EXPECT_EQ(LatencySketch::bucketOf(64), 64u);
    EXPECT_EQ(LatencySketch::bucketOf(127), 127u);
    EXPECT_EQ(LatencySketch::bucketOf(128), 128u);
    EXPECT_EQ(LatencySketch::bucketOf(129), 128u);
    EXPECT_EQ(LatencySketch::bucketOf(130), 129u);
    for (unsigned b = 0; b < 300; ++b) {
        std::uint64_t lo = LatencySketch::bucketLow(b);
        std::uint64_t hi = LatencySketch::bucketHigh(b);
        ASSERT_LT(lo, hi);
        EXPECT_EQ(LatencySketch::bucketOf(lo), b);
        EXPECT_EQ(LatencySketch::bucketOf(hi - 1), b);
        // Bucket width <= lo/64 above the exact region: the <= 2%
        // error bound's geometric origin.
        if (lo >= 64) {
            EXPECT_LE(hi - lo, lo / 64) << b;
        }
    }
}

TEST(Sketch, QuantileErrorWithinDocumentedBound)
{
    // Latency-shaped values spanning 5 orders of magnitude.
    std::uint64_t state = 42;
    std::vector<std::uint64_t> values;
    LatencySketch s;
    for (int i = 0; i < 20000; ++i) {
        // Log-uniform in [64, ~2^24): exercise many octaves.
        double u = static_cast<double>(lcg(state) >> 11) /
                   9007199254740992.0;  // [0,1)
        std::uint64_t v = static_cast<std::uint64_t>(
            std::pow(2.0, 6.0 + 18.0 * u));
        values.push_back(v);
        s.add(v);
    }
    for (double q : {0.0, 0.25, 0.5, 0.9, 0.99, 0.999, 1.0}) {
        double exact =
            static_cast<double>(exactQuantile(values, q));
        double got = static_cast<double>(s.quantile(q));
        EXPECT_LE(std::abs(got - exact),
                  LatencySketch::kRelativeErrorBound * exact)
            << "q=" << q << " exact=" << exact << " got=" << got;
    }
    // Extremes are tracked exactly.
    EXPECT_EQ(s.quantile(0),
              *std::min_element(values.begin(), values.end()));
    EXPECT_EQ(s.quantile(1),
              *std::max_element(values.begin(), values.end()));
}

TEST(Sketch, MergeIsExactAndAssociative)
{
    std::uint64_t state = 7;
    LatencySketch whole, a, b, c;
    for (int i = 0; i < 3000; ++i) {
        std::uint64_t v = lcg(state) % 1000000;
        whole.add(v);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(v);
    }
    // (a + b) + c
    LatencySketch ab = a;
    ab.merge(b);
    LatencySketch abc = ab;
    abc.merge(c);
    // a + (b + c)
    LatencySketch bc = b;
    bc.merge(c);
    LatencySketch acb = a;
    acb.merge(bc);
    EXPECT_EQ(abc, acb);
    EXPECT_EQ(abc, whole);
    EXPECT_EQ(abc.count(), whole.count());
    EXPECT_EQ(abc.sum(), whole.sum());
    EXPECT_EQ(abc.min(), whole.min());
    EXPECT_EQ(abc.max(), whole.max());
}

TEST(Sketch, BulkAddEqualsRepeatedAdd)
{
    // The batched engine's noteLatency(lat, n) must be
    // bucket-identical to n per-line calls.
    LatencySketch bulk, repeated;
    bulk.add(100, 1000);
    bulk.add(77777, 3);
    for (int i = 0; i < 1000; ++i)
        repeated.add(100);
    for (int i = 0; i < 3; ++i)
        repeated.add(77777);
    EXPECT_EQ(bulk, repeated);
}

// --------------------------------------------------------------------
// TelemetryRun: windows, fractional carry, conservation

namespace
{

obs::TelemetryOptions
telOpts(double window_s = 1e-3, std::size_t ring = 0)
{
    obs::TelemetryOptions o;
    o.csvPath = "unused.csv";  // any() must hold for a live run
    o.windowSeconds = window_s;
    o.ringWindows = ring;
    return o;
}

PerfCounters
countersAt(std::uint64_t dram_read, std::uint64_t nvram_write)
{
    PerfCounters c;
    c.dramRead = dram_read;
    c.nvramWrite = nvram_write;
    return c;
}

} // namespace

TEST(TelemetryRun, FractionalEpochCarryConservesCounters)
{
    // 1 ms windows; one epoch spanning [0.4 ms, 2.2 ms) — 1/3 of it in
    // window 0, 5/9 in window 1, 1/9 in window 2.
    obs::TelemetryRun run("r", telOpts(1e-3));
    PerfCounters zero;
    run.prime(&zero, 1);
    PerfCounters after = countersAt(900, 90);
    run.onEpoch(0.4e-3, 2.2e-3, 1800, &after, 1);

    ASSERT_EQ(run.windows().size(), 3u);
    const auto &w = run.windows();
    std::size_t ridx =
        static_cast<std::size_t>(PerfField::dramRead);
    std::size_t widx =
        static_cast<std::size_t>(PerfField::nvramWrite);
    // Window shares of the 1.8 ms epoch: 0.6, 1.0, 0.2 ms.
    EXPECT_NEAR(w[0].all[ridx], 900.0 / 3.0, 1e-6);
    EXPECT_NEAR(w[1].all[ridx], 900.0 * 5.0 / 9.0, 1e-6);
    EXPECT_NEAR(w[2].all[ridx], 900.0 / 9.0, 1e-6);
    EXPECT_NEAR(w[0].activeS, 0.6e-3, 1e-12);
    EXPECT_NEAR(w[1].activeS, 1.0e-3, 1e-12);
    EXPECT_NEAR(w[2].activeS, 0.2e-3, 1e-12);
    // Conservation: windowed fractions sum to the exact delta.
    double rsum = 0, wsum = 0, asum = 0, esum = 0, bsum = 0;
    for (const auto &win : w) {
        rsum += win.all[ridx];
        wsum += win.all[widx];
        asum += win.activeS;
        esum += win.epochs;
        bsum += win.demandBytes;
    }
    EXPECT_NEAR(rsum, 900.0, 1e-6);
    EXPECT_NEAR(wsum, 90.0, 1e-6);
    EXPECT_NEAR(asum, 1.8e-3, 1e-12);
    EXPECT_NEAR(esum, 1.0, 1e-9);
    EXPECT_NEAR(bsum, 1800.0, 1e-6);
    // Exact totals stay integral.
    EXPECT_EQ(run.totals()[ridx], 900u);
    EXPECT_EQ(run.totals()[widx], 90u);
}

TEST(TelemetryRun, LatenciesCreditToEpochEndWindow)
{
    obs::TelemetryRun run("r", telOpts(1e-3));
    PerfCounters zero;
    run.prime(&zero, 1);
    run.noteLatency(500e-9, 4);
    PerfCounters after = countersAt(4, 0);
    // Epoch straddles windows 0 and 1; ends in window 1.
    run.onEpoch(0.9e-3, 1.1e-3, 256, &after, 1);
    run.finish();
    ASSERT_EQ(run.windows().size(), 2u);
    EXPECT_TRUE(run.windows()[0].sketch.empty());
    EXPECT_EQ(run.windows()[1].sketch.count(), 4u);
    EXPECT_EQ(run.windows()[1].sketch.min(), 500u);
    EXPECT_EQ(run.runSketch().count(), 4u);
}

TEST(TelemetryRun, RingEvictsOldestAndCountsDrops)
{
    obs::TelemetryRun run("r", telOpts(1e-3, 2));
    PerfCounters zero;
    run.prime(&zero, 1);
    for (int e = 0; e < 5; ++e) {
        PerfCounters c = countersAt((e + 1) * 10, 0);
        run.onEpoch(e * 1e-3, (e + 1) * 1e-3 - 1e-7, 64, &c, 1);
    }
    EXPECT_EQ(run.windows().size(), 2u);
    EXPECT_EQ(run.windowsDropped(), 3u);
    EXPECT_EQ(run.windows()[0].index, 3);
    EXPECT_EQ(run.windows()[1].index, 4);
    // Totals are exact even though windows were evicted.
    EXPECT_EQ(
        run.totals()[static_cast<std::size_t>(PerfField::dramRead)],
        50u);
}

TEST(TelemetryRun, CountersResetDropsWarmupWindows)
{
    obs::TelemetryRun run("r", telOpts(1e-3));
    PerfCounters zero;
    run.prime(&zero, 1);
    run.noteLatency(1e-6);
    PerfCounters warm = countersAt(100, 0);
    run.onEpoch(0, 0.5e-3, 64, &warm, 1);
    run.onCountersReset();
    EXPECT_EQ(run.windows().size(), 0u);
    PerfCounters after = countersAt(30, 0);
    run.onEpoch(0, 0.5e-3, 64, &after, 1);
    run.finish();
    ASSERT_EQ(run.windows().size(), 1u);
    // The post-reset delta is 30, not 30 - 100 underflowed.
    EXPECT_EQ(
        run.totals()[static_cast<std::size_t>(PerfField::dramRead)],
        30u);
    EXPECT_TRUE(run.runSketch().empty());
}

TEST(TelemetryRun, WindowMetricNamesAreValidated)
{
    EXPECT_TRUE(obs::TelemetryRun::knownMetric("p99_ns"));
    EXPECT_TRUE(obs::TelemetryRun::knownMetric("eff_gbs"));
    EXPECT_TRUE(obs::TelemetryRun::knownMetric("amplification"));
    EXPECT_TRUE(obs::TelemetryRun::knownMetric("maint_duty"));
    EXPECT_FALSE(obs::TelemetryRun::knownMetric("p42_ns"));
    EXPECT_FALSE(obs::TelemetryRun::knownMetric(""));

    // A percentile does not apply to a request-free window.
    obs::TelemetryWindow w;
    double v = 0;
    EXPECT_FALSE(obs::TelemetryRun::windowMetric(w, "p99_ns", &v));
    w.sketch.add(1000, 10);
    EXPECT_TRUE(obs::TelemetryRun::windowMetric(w, "p99_ns", &v));
    EXPECT_EQ(v, 1000.0);
}

// --------------------------------------------------------------------
// SLO spec

TEST(Slo, ParsesObjectivesAndBudgets)
{
    obs::SloSpec spec =
        obs::SloSpec::parse("p99_ns<1500@95%; amplification <= 3.2");
    ASSERT_EQ(spec.objectives.size(), 2u);
    EXPECT_EQ(spec.objectives[0].metric, "p99_ns");
    EXPECT_EQ(spec.objectives[0].op, obs::SloObjective::Op::Lt);
    EXPECT_EQ(spec.objectives[0].value, 1500.0);
    EXPECT_EQ(spec.objectives[0].budgetPct, 95.0);
    EXPECT_EQ(spec.objectives[1].metric, "amplification");
    EXPECT_EQ(spec.objectives[1].op, obs::SloObjective::Op::Le);
    EXPECT_EQ(spec.objectives[1].budgetPct, 100.0);

    EXPECT_TRUE(spec.objectives[0].holds(1499.0));
    EXPECT_FALSE(spec.objectives[0].holds(1500.0));
    EXPECT_TRUE(spec.objectives[1].holds(3.2));
}

TEST(SloDeathTest, RejectsBadSpecs)
{
    EXPECT_DEATH(obs::SloSpec::parse("p99_ns=1500"), "objective");
    EXPECT_DEATH(obs::SloSpec::parse("bogus_metric<1"), "metric");
    EXPECT_DEATH(obs::SloSpec::parse("p99_ns<abc"), "");
    EXPECT_DEATH(obs::SloSpec::parse("p99_ns<1@250%"), "");
}

TEST(Slo, EvaluatesComplianceBudget)
{
    // 10 windows, one violating: p99 < 1500 @ 90% passes, @ 95% fails.
    obs::TelemetryRun run("r", telOpts(1e-3));
    PerfCounters zero;
    run.prime(&zero, 1);
    std::uint64_t cum = 0;
    for (int e = 0; e < 10; ++e) {
        run.noteLatency(e == 4 ? 2e-6 : 1e-6, 8);
        cum += 8;
        PerfCounters c = countersAt(cum, 0);
        run.onEpoch(e * 1e-3, (e + 1) * 1e-3 - 1e-7, 512, &c, 1);
    }
    run.finish();
    ASSERT_EQ(run.windows().size(), 10u);

    obs::SloResult ok = obs::evaluateSlo(
        obs::SloSpec::parse("p99_ns<1500@90%"), run);
    EXPECT_TRUE(ok.pass);
    ASSERT_EQ(ok.objectives.size(), 1u);
    EXPECT_EQ(ok.objectives[0].eligible, 10u);
    EXPECT_EQ(ok.objectives[0].compliant, 9u);

    obs::SloResult bad = obs::evaluateSlo(
        obs::SloSpec::parse("p99_ns<1500@95%"), run);
    EXPECT_FALSE(bad.pass);
    EXPECT_EQ(bad.objectives[0].worstWindow, 4);
    EXPECT_EQ(bad.objectives[0].worstValue, 2000.0);

    std::string report = obs::sloReport("r", bad);
    EXPECT_NE(report.find("SLO report: r"), std::string::npos);
    EXPECT_NE(report.find("FAIL"), std::string::npos);
}

// --------------------------------------------------------------------
// End to end against a MemorySystem

namespace
{

SystemConfig
smallCfg()
{
    SystemConfig c;
    c.mode = MemoryMode::TwoLm;
    c.scale = 8192;
    c.epochBytes = 64 * kKiB;
    return c;
}

KernelResult
runWorkload(MemorySystem &sys, const Region &arr)
{
    KernelConfig k;
    k.op = KernelOp::ReadModifyWrite;
    k.threads = 4;
    return runKernel(sys, arr, k);
}

} // namespace

TEST(TelemetryEndToEnd, TotalsMatchUncoreCountersExactly)
{
    MemorySystem sys(smallCfg());
    Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
    primeDirty(sys, arr, 4);
    sys.resetCounters();

    obs::TelemetryRun run("e2e", telOpts(1e-4));
    sys.attachTelemetry(&run);
    runWorkload(sys, arr);
    sys.detachTelemetry();
    run.finish();

    // The run's exact totals equal the per-channel uncore counters
    // summed — nothing lost to windowing.
    std::array<std::uint64_t, obs::TelemetryRun::kFields> expect{};
    for (unsigned c = 0; c < sys.numChannels(); ++c) {
        auto arr64 = sys.channel(c).counters().asArray();
        for (std::size_t f = 0; f < expect.size(); ++f)
            expect[f] += arr64[f];
    }
    EXPECT_EQ(run.totals(), expect);
    EXPECT_GT(run.totals()[static_cast<std::size_t>(
                  PerfField::tagMissDirty)],
              0u);

    // Windowed fractions conserve the totals too.
    std::size_t ridx =
        static_cast<std::size_t>(PerfField::dramRead);
    double windowed = 0;
    for (const auto &w : run.windows())
        windowed += w.all[ridx];
    EXPECT_NEAR(windowed, static_cast<double>(run.totals()[ridx]),
                1e-6 * static_cast<double>(run.totals()[ridx]) + 1e-6);

    // Every demand request fed the latency sketch.
    EXPECT_GT(run.runSketch().count(), 0u);
    EXPECT_GT(run.quantileNs(0.99), run.quantileNs(0.0));
}

TEST(TelemetryEndToEnd, CollectionDoesNotPerturbTheSimulation)
{
    // Same workload with and without telemetry: identical counters
    // and identical simulated time (flags-off neutrality's stronger
    // sibling — even flags-ON changes nothing simulated).
    auto counters = [](bool with_tel) {
        MemorySystem sys(smallCfg());
        Region arr =
            sys.allocate(sys.config().dramTotal() * 2, "arr");
        primeDirty(sys, arr, 4);
        sys.resetCounters();
        obs::TelemetryRun run("n", telOpts(1e-4));
        if (with_tel)
            sys.attachTelemetry(&run);
        runWorkload(sys, arr);
        sys.quiesce();
        std::ostringstream os;
        for (unsigned c = 0; c < sys.numChannels(); ++c) {
            sys.channel(c).counters().forEachField(
                [&](const char *n, const char *, std::uint64_t v) {
                    os << n << "=" << v << "\n";
                });
        }
        os << "now=" << sys.now();
        return os.str();
    };
    EXPECT_EQ(counters(false), counters(true));
}

TEST(TelemetryEndToEnd, BatchedAndPerLineEnginesAgree)
{
    // Telemetry keeps the batched engine (unlike an Observer); the
    // bulk noteLatency path must land every latency in the same
    // buckets the per-line engine produces.
    auto collect = [](bool batched) {
        auto run = std::make_unique<obs::TelemetryRun>(
            "eng", telOpts(1e-4));
        MemorySystem sys(smallCfg());
        sys.setBatchedAccess(batched);
        Region arr =
            sys.allocate(sys.config().dramTotal() * 2, "arr");
        primeDirty(sys, arr, 4);
        sys.resetCounters();
        sys.attachTelemetry(run.get());
        runWorkload(sys, arr);
        sys.detachTelemetry();
        run->finish();
        return run;
    };
    auto batched = collect(true);
    auto per_line = collect(false);
    EXPECT_EQ(batched->totals(), per_line->totals());
    EXPECT_EQ(batched->runSketch(), per_line->runSketch());
    ASSERT_EQ(batched->windows().size(), per_line->windows().size());
    for (std::size_t i = 0; i < batched->windows().size(); ++i) {
        EXPECT_EQ(batched->windows()[i].sketch,
                  per_line->windows()[i].sketch)
            << "window " << i;
    }
}

// --------------------------------------------------------------------
// Session export: byte identity under registration order

namespace
{

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Run three labelled workloads, registering in @p order. */
void
writeSession(const std::vector<std::string> &order,
             const std::string &csv, const std::string &json)
{
    obs::SessionOptions opts;
    opts.telemetry.csvPath = csv;
    opts.telemetry.jsonPath = json;
    opts.telemetry.windowSeconds = 1e-4;
    obs::Session session(opts);
    // Telemetry-only flags must not force the sweep serial.
    EXPECT_FALSE(session.serialRequired());
    EXPECT_TRUE(session.enabled());
    for (const std::string &label : order) {
        MemorySystem sys(smallCfg());
        Region arr =
            sys.allocate(sys.config().dramTotal() * 2, "arr");
        primeDirty(sys, arr, 4);
        sys.resetCounters();
        if (obs::Observer *o = session.beginRun(label))
            sys.attachObserver(o);
        if (obs::TelemetryRun *tel =
                session.beginTelemetryRun(label))
            sys.attachTelemetry(tel);
        runWorkload(sys, arr);
        session.endRun();
    }
    session.write();
}

} // namespace

TEST(TelemetrySession, ExportIsByteIdenticalForAnyRunOrder)
{
    std::string dir = ::testing::TempDir();
    writeSession({"alpha", "beta", "gamma"}, dir + "tel_fwd.csv",
                 dir + "tel_fwd.json");
    writeSession({"gamma", "beta", "alpha"}, dir + "tel_rev.csv",
                 dir + "tel_rev.json");

    std::string fwd_csv = slurp(dir + "tel_fwd.csv");
    EXPECT_EQ(fwd_csv, slurp(dir + "tel_rev.csv"));
    EXPECT_EQ(slurp(dir + "tel_fwd.json"),
              slurp(dir + "tel_rev.json"));

    // Format spot checks.
    EXPECT_EQ(
        fwd_csv.rfind("run,window,t0,t1,channel,metric,value\n", 0),
        0u);
    EXPECT_NE(fwd_csv.find("alpha"), std::string::npos);
    EXPECT_NE(fwd_csv.find("eff_gbs"), std::string::npos);
    std::string json = slurp(dir + "tel_fwd.json");
    EXPECT_NE(json.find("\"nvsim-telemetry-v1\""), std::string::npos);
    EXPECT_NE(json.find("\"p99_ns\""), std::string::npos);
}
