/** @file Tests for the Dirty Data Optimization policy models. */

#include <gtest/gtest.h>

#include "imc/ddo.hh"

using namespace nvsim;

TEST(DdoNone, NeverElides)
{
    NoneDdo ddo;
    ddo.noteInsert(0);
    EXPECT_FALSE(ddo.check(0, true));
}

TEST(DdoOracle, ElidesExactlyWhenResident)
{
    OracleDdo ddo;
    EXPECT_TRUE(ddo.check(128, true));
    EXPECT_FALSE(ddo.check(128, false));
}

TEST(DdoRecentTracker, RemembersInsertions)
{
    RecentTrackerDdo ddo(16);
    EXPECT_FALSE(ddo.check(0, true));
    ddo.noteInsert(0);
    EXPECT_TRUE(ddo.check(0, true));
}

TEST(DdoRecentTracker, EvictionInvalidates)
{
    RecentTrackerDdo ddo(16);
    ddo.noteInsert(64);
    ddo.noteEvict(64);
    EXPECT_FALSE(ddo.check(64, false));
}

TEST(DdoRecentTracker, EvictOfDifferentLineLeavesEntry)
{
    RecentTrackerDdo ddo(1u << 12);
    ddo.noteInsert(64);
    ddo.noteEvict(128);  // different line: must not clobber 64
    EXPECT_TRUE(ddo.check(64, true));
}

TEST(DdoRecentTracker, CapacityBoundsMemory)
{
    // With a 4-entry tracker, inserting many lines forgets old ones.
    RecentTrackerDdo ddo(4);
    EXPECT_EQ(ddo.entries(), 4u);
    for (Addr a = 0; a < 64 * kLineSize; a += kLineSize)
        ddo.noteInsert(a);
    unsigned remembered = 0;
    for (Addr a = 0; a < 64 * kLineSize; a += kLineSize) {
        if (ddo.check(a, true))
            ++remembered;
    }
    EXPECT_LE(remembered, 4u);
    EXPECT_GE(remembered, 1u);
}

TEST(DdoRecentTracker, RoundsCapacityToPowerOfTwo)
{
    RecentTrackerDdo ddo(5);
    EXPECT_EQ(ddo.entries(), 8u);
}

TEST(DdoFactory, CreatesConfiguredPolicy)
{
    DdoConfig cfg;
    cfg.mode = DdoMode::None;
    EXPECT_NE(dynamic_cast<NoneDdo *>(DdoPolicy::create(cfg).get()),
              nullptr);
    cfg.mode = DdoMode::Oracle;
    EXPECT_NE(dynamic_cast<OracleDdo *>(DdoPolicy::create(cfg).get()),
              nullptr);
    cfg.mode = DdoMode::RecentTracker;
    EXPECT_NE(
        dynamic_cast<RecentTrackerDdo *>(DdoPolicy::create(cfg).get()),
        nullptr);
}

TEST(DdoFactory, ModeNames)
{
    EXPECT_STREQ(ddoModeName(DdoMode::None), "none");
    EXPECT_STREQ(ddoModeName(DdoMode::RecentTracker), "recent_tracker");
    EXPECT_STREQ(ddoModeName(DdoMode::Oracle), "oracle");
}
