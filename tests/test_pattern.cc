/**
 * @file
 * Tests for the access-pattern generators: the paper's requirement
 * that pseudo-random iteration touch each address exactly once is a
 * hard property here.
 */

#include <gtest/gtest.h>

#include <vector>

#include "kernels/pattern.hh"

using namespace nvsim;

TEST(OffsetSequence, SequentialEmitsInOrder)
{
    OffsetSequence seq(AccessPattern::Sequential, 8);
    for (std::uint64_t i = 0; i < 8; ++i) {
        auto v = seq.next();
        ASSERT_TRUE(v.has_value());
        EXPECT_EQ(*v, i);
    }
    EXPECT_FALSE(seq.next().has_value());
}

TEST(OffsetSequence, ResetRestartsThePass)
{
    OffsetSequence seq(AccessPattern::Random, 16, 7);
    std::vector<std::uint64_t> first, second;
    while (auto v = seq.next())
        first.push_back(*v);
    seq.reset();
    while (auto v = seq.next())
        second.push_back(*v);
    EXPECT_EQ(first, second);
}

TEST(OffsetSequence, RandomIsNotSequential)
{
    OffsetSequence seq(AccessPattern::Random, 64, 3);
    bool any_out_of_order = false;
    std::uint64_t prev = 0;
    bool first = true;
    while (auto v = seq.next()) {
        if (!first && *v < prev)
            any_out_of_order = true;
        prev = *v;
        first = false;
    }
    EXPECT_TRUE(any_out_of_order);
}

TEST(OffsetSequence, SingleGranule)
{
    OffsetSequence seq(AccessPattern::Random, 1);
    auto v = seq.next();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, 0u);
    EXPECT_FALSE(seq.next().has_value());
}

TEST(OffsetSequence, ZeroCountIsFatal)
{
    EXPECT_DEATH(OffsetSequence(AccessPattern::Sequential, 0), "granule");
}

/**
 * Property: every granule index in [0, count) appears exactly once per
 * pass, for both patterns and for counts that are powers of two,
 * power-of-two minus/plus one, and odd.
 */
class OffsetCoverage
    : public ::testing::TestWithParam<std::tuple<AccessPattern,
                                                 std::uint64_t>>
{
};

TEST_P(OffsetCoverage, EachIndexExactlyOnce)
{
    auto [pattern, count] = GetParam();
    OffsetSequence seq(pattern, count, 11);
    std::vector<unsigned> hits(count, 0);
    std::uint64_t emitted = 0;
    while (auto v = seq.next()) {
        ASSERT_LT(*v, count);
        ++hits[*v];
        ++emitted;
    }
    EXPECT_EQ(emitted, count);
    for (std::uint64_t i = 0; i < count; ++i)
        EXPECT_EQ(hits[i], 1u) << "index " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, OffsetCoverage,
    ::testing::Combine(::testing::Values(AccessPattern::Sequential,
                                         AccessPattern::Random),
                       ::testing::Values<std::uint64_t>(1, 2, 3, 7, 8, 9,
                                                        63, 64, 65, 1000,
                                                        1024, 4095)));

TEST(AccessPattern, Names)
{
    EXPECT_STREQ(accessPatternName(AccessPattern::Sequential),
                 "sequential");
    EXPECT_STREQ(accessPatternName(AccessPattern::Random), "random");
}
