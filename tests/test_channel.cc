/**
 * @file
 * Tests for the channel controller: request routing in 1LM and 2LM,
 * counter accounting, device traffic application and epoch timing.
 */

#include <gtest/gtest.h>

#include "imc/channel.hh"

using namespace nvsim;

namespace
{

ChannelParams
tinyParams(DdoMode ddo = DdoMode::None)
{
    ChannelParams p;
    p.dram.capacity = 64 * kLineSize;
    p.nvram.capacity = 1 * kMiB;
    p.ddo.mode = ddo;
    return p;
}

MemRequest
readReq(Addr a, std::uint16_t t = 0)
{
    return MemRequest{MemRequestKind::LlcRead, a, t};
}

MemRequest
writeReq(Addr a, std::uint16_t t = 0)
{
    return MemRequest{MemRequestKind::LlcWrite, a, t};
}

} // namespace

TEST(Channel2lm, ReadMissTouchesBothDevices)
{
    ChannelController ch(tinyParams(), MemoryMode::TwoLm);
    AccessResult r = ch.handle(readReq(0), MemPool::Nvram);
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
    EXPECT_EQ(ch.dram().epoch().casReads, 1u);
    EXPECT_EQ(ch.dram().epoch().casWrites, 1u);
    EXPECT_EQ(ch.nvram().epoch().demandReads, 1u);
    EXPECT_EQ(ch.counters().tagMissClean, 1u);
    EXPECT_EQ(ch.counters().llcReads, 1u);
    // Miss latency: DRAM tag check plus NVRAM fetch.
    EXPECT_NEAR(r.latency,
                ch.params().dram.latency + ch.params().nvram.readLatency,
                1e-12);
}

TEST(Channel2lm, ReadHitLatencyIsDramOnly)
{
    ChannelController ch(tinyParams(), MemoryMode::TwoLm);
    ch.handle(readReq(0), MemPool::Nvram);
    AccessResult r = ch.handle(readReq(0), MemPool::Nvram);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
    EXPECT_NEAR(r.latency, ch.params().dram.latency, 1e-12);
    EXPECT_EQ(ch.counters().tagHit, 1u);
}

TEST(Channel2lm, DirtyWritebackReachesNvram)
{
    ChannelController ch(tinyParams(), MemoryMode::TwoLm);
    ch.handle(writeReq(0), MemPool::Nvram);  // dirty occupant
    Addr alias = ch.cache().numSets() * kLineSize;
    ch.handle(readReq(alias), MemPool::Nvram);
    EXPECT_EQ(ch.nvram().epoch().demandWrites, 1u);
    EXPECT_EQ(ch.counters().tagMissDirty, 1u);
    EXPECT_EQ(ch.counters().nvramWrite, 1u);
}

TEST(Channel2lm, CountersMatchTableIAmplification)
{
    ChannelController ch(tinyParams(), MemoryMode::TwoLm);
    // One clean write miss: amplification 4.
    ch.handle(writeReq(0), MemPool::Nvram);
    EXPECT_EQ(ch.counters().demand(), 1u);
    EXPECT_EQ(ch.counters().deviceAccesses(), 4u);
    EXPECT_DOUBLE_EQ(ch.counters().amplification(), 4.0);
}

TEST(Channel2lm, MissCountFeedsEpoch)
{
    ChannelController ch(tinyParams(), MemoryMode::TwoLm);
    ch.handle(readReq(0), MemPool::Nvram);        // miss
    ch.handle(readReq(0), MemPool::Nvram);        // hit
    ch.handle(readReq(kLineSize), MemPool::Nvram);  // miss
    ChannelEpoch e = ch.drainEpoch();
    EXPECT_EQ(e.misses, 2u);
}

TEST(Channel1lm, RoutesByPool)
{
    ChannelController ch(tinyParams(), MemoryMode::OneLm);
    ch.handle(readReq(0), MemPool::Dram);
    ch.handle(readReq(64), MemPool::Nvram);
    ch.handle(writeReq(128), MemPool::Dram);
    ch.handle(writeReq(192), MemPool::Nvram);
    EXPECT_EQ(ch.counters().dramRead, 1u);
    EXPECT_EQ(ch.counters().nvramRead, 1u);
    EXPECT_EQ(ch.counters().dramWrite, 1u);
    EXPECT_EQ(ch.counters().nvramWrite, 1u);
    // No tag events in app-direct mode.
    EXPECT_EQ(ch.counters().tagHit + ch.counters().tagMissClean +
                  ch.counters().tagMissDirty,
              0u);
}

TEST(Channel1lm, NoAmplification)
{
    ChannelController ch(tinyParams(), MemoryMode::OneLm);
    for (Addr a = 0; a < 64 * kLineSize; a += kLineSize)
        ch.handle(readReq(a), MemPool::Nvram);
    EXPECT_DOUBLE_EQ(ch.counters().amplification(), 1.0);
}

TEST(ChannelEpochTime, BusBoundDramTraffic)
{
    ChannelParams p = tinyParams();
    ChannelController ch(p, MemoryMode::OneLm);
    // 1024 DRAM reads = 64 KiB over the shared bus.
    for (int i = 0; i < 1024; ++i)
        ch.handle(readReq(static_cast<Addr>(i) * kLineSize), MemPool::Dram);
    ChannelEpoch e = ch.drainEpoch();
    double expect =
        1024.0 * kLineSize / std::min(p.busBandwidth, p.dram.bandwidth);
    EXPECT_NEAR(ch.epochTime(e), expect, expect * 1e-9);
}

TEST(ChannelEpochTime, NvramMediaBoundRandomReads)
{
    ChannelParams p = tinyParams();
    ChannelController ch(p, MemoryMode::OneLm);
    // Random (stride > buffer reach) reads: 4x media amplification, so
    // media time dominates the bus time.
    for (int i = 0; i < 1024; ++i) {
        ch.handle(readReq(static_cast<Addr>(i) * 8 * kMediaBlockSize),
                  MemPool::Nvram);
    }
    ChannelEpoch e = ch.drainEpoch();
    double media_bytes = 1024.0 * kMediaBlockSize;
    EXPECT_NEAR(ch.epochTime(e), media_bytes / p.nvram.readBandwidth,
                1e-9);
}

TEST(ChannelEpochTime, MissHandlerBoundsTwoLmMissStreams)
{
    ChannelParams p = tinyParams();
    p.busBandwidth = 1e15;  // remove other limits
    p.dram.bandwidth = 1e15;
    p.nvram.readBandwidth = 1e15;
    p.nvram.writeBandwidth = 1e15;
    ChannelController ch(p, MemoryMode::TwoLm);
    for (int i = 0; i < 512; ++i)
        ch.handle(readReq(static_cast<Addr>(i) * kLineSize),
                  MemPool::Nvram);
    ChannelEpoch e = ch.drainEpoch();
    // 512 lines > 64 cache lines: every access after the first pass is
    // a miss; in fact all 512 are compulsory misses here.
    EXPECT_EQ(e.misses, 512u);
    double expect = 512.0 *
                    ch.cache().missServiceTime(deviceLatencies(p)) /
                    p.missHandlerEntries;
    EXPECT_NEAR(ch.epochTime(e), expect, expect * 1e-9);
}

TEST(Channel, ResetClearsStateAndCounters)
{
    ChannelController ch(tinyParams(), MemoryMode::TwoLm);
    ch.handle(writeReq(0), MemPool::Nvram);
    ch.reset();
    EXPECT_EQ(ch.counters().demand(), 0u);
    EXPECT_FALSE(ch.cache().resident(0));
    // A re-read is a compulsory miss again.
    AccessResult r = ch.handle(readReq(0), MemPool::Nvram);
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
}

TEST(Channel, ModeNames)
{
    EXPECT_STREQ(memoryModeName(MemoryMode::OneLm), "1LM");
    EXPECT_STREQ(memoryModeName(MemoryMode::TwoLm), "2LM");
}
