/**
 * @file
 * Tests for trace capture/replay: binary round-trip fidelity and the
 * key property that a replay reproduces the recorded run's counters
 * and timing exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>

#include "kernels/kernels.hh"
#include "trace/trace.hh"

using namespace nvsim;
using namespace nvsim::trace;

namespace
{

SystemConfig
cfg(MemoryMode mode = MemoryMode::TwoLm)
{
    SystemConfig c;
    c.mode = mode;
    c.scale = 8192;
    c.epochBytes = 64 * kKiB;
    return c;
}

struct TempFile
{
    TempFile() : path("/tmp/nvsim_trace_test_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(counter++) + ".bin")
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
    static int counter;
};

int TempFile::counter = 0;

} // namespace

TEST(Trace, RoundTripRecords)
{
    TempFile f;
    {
        TraceWriter w(f.path);
        w.access(3, CpuOp::Load, 0x1000, 64);
        w.access(7, CpuOp::NtStore, 0xABCDE40, 256);
        w.epochMarker();
        w.computeTime(1.5e-3);
        EXPECT_EQ(w.records(), 4u);
        w.close();
    }
    TraceReader r(f.path);
    EXPECT_EQ(r.records(), 4u);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.kind, TraceRecord::Kind::Access);
    EXPECT_EQ(rec.op, CpuOp::Load);
    EXPECT_EQ(rec.thread, 3u);
    EXPECT_EQ(rec.addr, 0x1000u);
    EXPECT_EQ(rec.size, 64u);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.op, CpuOp::NtStore);
    EXPECT_EQ(rec.addr, 0xABCDE40u);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.kind, TraceRecord::Kind::EpochMarker);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.kind, TraceRecord::Kind::ComputeTime);
    EXPECT_DOUBLE_EQ(rec.compute, 1.5e-3);
    EXPECT_FALSE(r.next(rec));
}

TEST(Trace, DestructorFinalizesHeader)
{
    TempFile f;
    {
        TraceWriter w(f.path);
        w.access(0, CpuOp::Load, 0, 64);
        // no explicit close()
    }
    TraceReader r(f.path);
    EXPECT_EQ(r.records(), 1u);
}

TEST(Trace, RejectsGarbageFiles)
{
    TempFile f;
    {
        std::ofstream out(f.path);
        out << "definitely not a trace";
    }
    EXPECT_DEATH(TraceReader r(f.path), "not an nvsim trace");
}

TEST(Trace, ReplayReproducesCountersExactly)
{
    TempFile f;
    PerfCounters live;
    double live_time = 0;
    {
        MemorySystem sys(cfg());
        Region arr = sys.allocate(2 * kMiB, "arr");
        RecordingSystem rec(sys, f.path);
        sys.setActiveThreads(4);
        // A mixed workload touching the recording facade.
        for (Addr a = 0; a < arr.size; a += kLineSize)
            rec.touchLine((a / kLineSize) % 4, CpuOp::Load, arr.base + a);
        rec.advanceEpoch();
        for (Addr a = 0; a < arr.size / 2; a += kLineSize) {
            rec.touchLine((a / kLineSize) % 4, CpuOp::NtStore,
                          arr.base + a);
        }
        rec.addComputeTime(1e-4);
        rec.writer().close();
        sys.quiesce();
        live = sys.counters();
        live_time = sys.now();
    }
    {
        MemorySystem sys(cfg());
        Region arr = sys.allocate(2 * kMiB, "arr");
        (void)arr;  // identical layout as the recorded run
        sys.setActiveThreads(4);
        replay(sys, f.path);
        sys.quiesce();
        PerfCounters replayed = sys.counters();
        EXPECT_EQ(replayed.demand(), live.demand());
        EXPECT_EQ(replayed.deviceAccesses(), live.deviceAccesses());
        EXPECT_EQ(replayed.tagHit, live.tagHit);
        EXPECT_EQ(replayed.tagMissDirty, live.tagMissDirty);
        EXPECT_DOUBLE_EQ(sys.now(), live_time);
    }
}

TEST(Trace, ReplayAcrossConfigurations)
{
    // The point of traces: record once, replay against a different
    // machine. A kernel recorded on the 2LM machine replays on a
    // write-no-allocate machine with lower amplification.
    TempFile f;
    {
        MemorySystem sys(cfg());
        Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
        RecordingSystem rec(sys, f.path);
        sys.setActiveThreads(8);
        for (Addr a = 0; a < arr.size; a += kLineSize) {
            rec.touchLine((a / kLineSize) % 8, CpuOp::NtStore,
                          arr.base + a);
        }
        rec.writer().close();
    }
    auto amp_on = [&](bool insert_on_miss) {
        SystemConfig c = cfg();
        c.insertOnWriteMiss = insert_on_miss;
        MemorySystem sys(c);
        sys.allocate(sys.config().dramTotal() * 2, "arr");
        sys.setActiveThreads(8);
        replay(sys, f.path);
        sys.quiesce();
        return sys.counters().amplification();
    };
    EXPECT_GT(amp_on(true), amp_on(false));
}
