/**
 * @file
 * Tests for trace capture/replay: binary round-trip fidelity and the
 * key property that a replay reproduces the recorded run's counters
 * and timing exactly.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "kernels/kernels.hh"
#include "trace/trace.hh"

using namespace nvsim;
using namespace nvsim::trace;

namespace
{

SystemConfig
cfg(MemoryMode mode = MemoryMode::TwoLm)
{
    SystemConfig c;
    c.mode = mode;
    c.scale = 8192;
    c.epochBytes = 64 * kKiB;
    return c;
}

struct TempFile
{
    TempFile() : path("/tmp/nvsim_trace_test_" +
                      std::to_string(::getpid()) + "_" +
                      std::to_string(counter++) + ".bin")
    {
    }
    ~TempFile() { std::remove(path.c_str()); }
    std::string path;
    static int counter;
};

int TempFile::counter = 0;

} // namespace

TEST(Trace, RoundTripRecords)
{
    TempFile f;
    {
        TraceWriter w(f.path);
        w.access(3, CpuOp::Load, 0x1000, 64);
        w.access(7, CpuOp::NtStore, 0xABCDE40, 256);
        w.epochMarker();
        w.computeTime(1.5e-3);
        EXPECT_EQ(w.records(), 4u);
        w.close();
    }
    TraceReader r(f.path);
    EXPECT_EQ(r.records(), 4u);
    TraceRecord rec;
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.kind, TraceRecord::Kind::Access);
    EXPECT_EQ(rec.op, CpuOp::Load);
    EXPECT_EQ(rec.thread, 3u);
    EXPECT_EQ(rec.addr, 0x1000u);
    EXPECT_EQ(rec.size, 64u);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.op, CpuOp::NtStore);
    EXPECT_EQ(rec.addr, 0xABCDE40u);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.kind, TraceRecord::Kind::EpochMarker);
    ASSERT_TRUE(r.next(rec));
    EXPECT_EQ(rec.kind, TraceRecord::Kind::ComputeTime);
    EXPECT_DOUBLE_EQ(rec.compute, 1.5e-3);
    EXPECT_FALSE(r.next(rec));
}

TEST(Trace, DestructorFinalizesHeader)
{
    TempFile f;
    {
        TraceWriter w(f.path);
        w.access(0, CpuOp::Load, 0, 64);
        // no explicit close()
    }
    TraceReader r(f.path);
    EXPECT_EQ(r.records(), 1u);
}

TEST(Trace, RejectsGarbageFiles)
{
    TempFile f;
    {
        std::ofstream out(f.path);
        out << "definitely not a trace";
    }
    EXPECT_DEATH(TraceReader r(f.path), "not an nvsim trace");
}

TEST(Trace, RejectsHeaderOnlyFile)
{
    // Magic present but the record-count field is cut off.
    TempFile f;
    {
        std::ofstream out(f.path, std::ios::binary);
        out << "nvsimtr1" << "abc";
    }
    EXPECT_DEATH(TraceReader r(f.path), "truncated inside the header");
}

TEST(Trace, RejectsTruncatedPayload)
{
    // A valid trace cut off mid-record (half a download, say) must be
    // rejected at open, before any record is consumed.
    TempFile f;
    {
        TraceWriter w(f.path);
        for (int i = 0; i < 8; ++i)
            w.access(0, CpuOp::Load, 0x40u * i, 64);
        w.close();
    }
    std::error_code ec;
    std::uintmax_t full = std::filesystem::file_size(f.path, ec);
    ASSERT_FALSE(ec);
    std::filesystem::resize_file(f.path, full - 10, ec);
    ASSERT_FALSE(ec);
    EXPECT_DEATH(TraceReader r(f.path),
                 "promises 8 records but holds 7");
}

TEST(Trace, RejectsUnclosedWriterOutput)
{
    // A writer that never close()d leaves the placeholder count 0 with
    // records behind it; reading "no records" silently would hide the
    // bug, so the size check must trip.
    TempFile f;
    {
        std::ofstream out(f.path, std::ios::binary);
        out << "nvsimtr1";
        std::uint64_t zero = 0;
        out.write(reinterpret_cast<const char *>(&zero), 8);
        char rec[22] = {};
        out.write(rec, sizeof(rec));
    }
    EXPECT_DEATH(TraceReader r(f.path), "truncated or not close");
}

TEST(Trace, RejectsCorruptRecordKind)
{
    TempFile f;
    {
        TraceWriter w(f.path);
        w.access(0, CpuOp::Load, 0x1000, 64);
        w.close();
    }
    {
        // Flip the first record's kind byte to an undefined value.
        std::fstream io(f.path,
                        std::ios::in | std::ios::out | std::ios::binary);
        io.seekp(16);
        char bad = 0x7f;
        io.write(&bad, 1);
    }
    TraceReader r(f.path);
    TraceRecord rec;
    EXPECT_DEATH(r.next(rec), "unknown kind 127");
}

TEST(Trace, RejectsCorruptAccessOp)
{
    TempFile f;
    {
        TraceWriter w(f.path);
        w.access(0, CpuOp::Load, 0x1000, 64);
        w.close();
    }
    {
        std::fstream io(f.path,
                        std::ios::in | std::ios::out | std::ios::binary);
        io.seekp(17);  // op byte of record 0
        char bad = 9;
        io.write(&bad, 1);
    }
    TraceReader r(f.path);
    TraceRecord rec;
    EXPECT_DEATH(r.next(rec), "unknown op 9");
}

TEST(Trace, CleanEofIsNotAnError)
{
    // The reader must distinguish a clean end of trace (next() returns
    // false, no diagnostics) from the truncation cases above.
    TempFile f;
    {
        TraceWriter w(f.path);
        w.access(0, CpuOp::Load, 0, 64);
        w.epochMarker();
        w.close();
    }
    TraceReader r(f.path);
    TraceRecord rec;
    EXPECT_TRUE(r.next(rec));
    EXPECT_TRUE(r.next(rec));
    EXPECT_FALSE(r.next(rec));
    EXPECT_FALSE(r.next(rec));  // repeated calls stay false
}

TEST(Trace, ReplayReproducesCountersExactly)
{
    TempFile f;
    PerfCounters live;
    double live_time = 0;
    {
        MemorySystem sys(cfg());
        Region arr = sys.allocate(2 * kMiB, "arr");
        RecordingSystem rec(sys, f.path);
        sys.setActiveThreads(4);
        // A mixed workload touching the recording facade.
        for (Addr a = 0; a < arr.size; a += kLineSize)
            rec.touchLine((a / kLineSize) % 4, CpuOp::Load, arr.base + a);
        rec.advanceEpoch();
        for (Addr a = 0; a < arr.size / 2; a += kLineSize) {
            rec.touchLine((a / kLineSize) % 4, CpuOp::NtStore,
                          arr.base + a);
        }
        rec.addComputeTime(1e-4);
        rec.writer().close();
        sys.quiesce();
        live = sys.counters();
        live_time = sys.now();
    }
    {
        MemorySystem sys(cfg());
        Region arr = sys.allocate(2 * kMiB, "arr");
        (void)arr;  // identical layout as the recorded run
        sys.setActiveThreads(4);
        replay(sys, f.path);
        sys.quiesce();
        PerfCounters replayed = sys.counters();
        EXPECT_EQ(replayed.demand(), live.demand());
        EXPECT_EQ(replayed.deviceAccesses(), live.deviceAccesses());
        EXPECT_EQ(replayed.tagHit, live.tagHit);
        EXPECT_EQ(replayed.tagMissDirty, live.tagMissDirty);
        EXPECT_DOUBLE_EQ(sys.now(), live_time);
    }
}

TEST(Trace, ReplayAcrossConfigurations)
{
    // The point of traces: record once, replay against a different
    // machine. A kernel recorded on the 2LM machine replays on a
    // write-no-allocate machine with lower amplification.
    TempFile f;
    {
        MemorySystem sys(cfg());
        Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
        RecordingSystem rec(sys, f.path);
        sys.setActiveThreads(8);
        for (Addr a = 0; a < arr.size; a += kLineSize) {
            rec.touchLine((a / kLineSize) % 8, CpuOp::NtStore,
                          arr.base + a);
        }
        rec.writer().close();
    }
    auto amp_on = [&](bool insert_on_miss) {
        SystemConfig c = cfg();
        c.insertOnWriteMiss = insert_on_miss;
        MemorySystem sys(c);
        sys.allocate(sys.config().dramTotal() * 2, "arr");
        sys.setActiveThreads(8);
        replay(sys, f.path);
        sys.quiesce();
        return sys.counters().amplification();
    };
    EXPECT_GT(amp_on(true), amp_on(false));
}
