/** @file Tests for the DRAM DIMM traffic accounting. */

#include <gtest/gtest.h>

#include "mem/dram.hh"
#include "mem/request.hh"

using namespace nvsim;

TEST(DramDevice, CountsCasTransactions)
{
    DramDevice dev(DramParams{});
    dev.read(3);
    dev.write(2);
    dev.read();
    EXPECT_EQ(dev.epoch().casReads, 4u);
    EXPECT_EQ(dev.epoch().casWrites, 2u);
    EXPECT_EQ(dev.epoch().bytes(), 6 * kLineSize);
}

TEST(DramDevice, DrainMovesEpochIntoTotals)
{
    DramDevice dev(DramParams{});
    dev.read(10);
    auto e = dev.drainEpoch();
    EXPECT_EQ(e.casReads, 10u);
    EXPECT_EQ(dev.epoch().casReads, 0u);
    dev.write(5);
    dev.drainEpoch();
    EXPECT_EQ(dev.total().casReads, 10u);
    EXPECT_EQ(dev.total().casWrites, 5u);
}

TEST(DeviceActions, TotalsAndAccumulation)
{
    DeviceActions a;
    a.dramReads = 1;
    a.nvramReads = 1;
    a.dramWrites = 1;
    EXPECT_EQ(a.total(), 3u);

    DeviceActions b;
    b.nvramWrites = 1;
    b.dramWrites = 1;
    a += b;
    EXPECT_EQ(a.total(), 5u);
    EXPECT_EQ(a.dramWrites, 2u);
}

TEST(CacheOutcome, Names)
{
    EXPECT_STREQ(cacheOutcomeName(CacheOutcome::Hit), "hit");
    EXPECT_STREQ(cacheOutcomeName(CacheOutcome::MissClean), "miss_clean");
    EXPECT_STREQ(cacheOutcomeName(CacheOutcome::MissDirty), "miss_dirty");
    EXPECT_STREQ(cacheOutcomeName(CacheOutcome::DdoHit), "ddo_hit");
    EXPECT_STREQ(cacheOutcomeName(CacheOutcome::Uncached), "uncached");
}
