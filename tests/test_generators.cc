/** @file Tests for the Kronecker and web-like graph generators. */

#include <gtest/gtest.h>

#include <algorithm>

#include "graphs/generators.hh"

using namespace nvsim;
using namespace nvsim::graphs;

TEST(Kronecker, ProducesRequestedScale)
{
    KroneckerParams p;
    p.scale = 10;
    p.edgeFactor = 8;
    CsrGraph g = kronecker(p);
    EXPECT_EQ(g.numNodes(), 1u << 10);
    // Symmetrized: twice the generated edges.
    EXPECT_EQ(g.numEdges(), 2u * 8 * (1u << 10));
}

TEST(Kronecker, DeterministicUnderSeed)
{
    KroneckerParams p;
    p.scale = 8;
    CsrGraph a = kronecker(p);
    CsrGraph b = kronecker(p);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (Node v = 0; v < a.numNodes(); ++v)
        ASSERT_EQ(a.degree(v), b.degree(v));
    p.seed = 99;
    CsrGraph c = kronecker(p);
    bool differs = false;
    for (Node v = 0; v < a.numNodes() && !differs; ++v)
        differs = a.degree(v) != c.degree(v);
    EXPECT_TRUE(differs);
}

TEST(Kronecker, PowerLawSkew)
{
    KroneckerParams p;
    p.scale = 12;
    p.edgeFactor = 16;
    CsrGraph g = kronecker(p);
    std::uint64_t maxdeg = 0, isolated = 0;
    for (Node v = 0; v < g.numNodes(); ++v) {
        maxdeg = std::max<std::uint64_t>(maxdeg, g.degree(v));
        isolated += g.degree(v) == 0;
    }
    double avg = static_cast<double>(g.numEdges()) /
                 static_cast<double>(g.numNodes());
    // Kronecker graphs are heavily skewed with many isolated nodes.
    EXPECT_GT(static_cast<double>(maxdeg), 20 * avg);
    EXPECT_GT(isolated, g.numNodes() / 20);
}

TEST(WebGraph, HitsTargetAverageDegree)
{
    WebGraphParams p;
    p.numNodes = 1u << 14;
    p.avgDegree = 12;
    CsrGraph g = webGraph(p);
    double avg = static_cast<double>(g.numEdges()) /
                 static_cast<double>(g.numNodes());
    EXPECT_GT(avg, 8.0);
    EXPECT_LT(avg, 16.0);
}

TEST(WebGraph, Deterministic)
{
    WebGraphParams p;
    p.numNodes = 1u << 12;
    CsrGraph a = webGraph(p);
    CsrGraph b = webGraph(p);
    ASSERT_EQ(a.numEdges(), b.numEdges());
    for (Node v = 0; v < a.numNodes(); ++v)
        ASSERT_EQ(a.degree(v), b.degree(v));
}

TEST(WebGraph, MostLinksAreLocal)
{
    WebGraphParams p;
    p.numNodes = 1u << 14;
    p.localFraction = 0.8;
    p.localWindow = 256;
    CsrGraph g = webGraph(p);
    std::uint64_t local = 0;
    for (Node v = 0; v < g.numNodes(); ++v) {
        for (Node d : g.neighbors(v)) {
            std::int64_t dist =
                std::abs(static_cast<std::int64_t>(v) -
                         static_cast<std::int64_t>(d));
            std::int64_t wrap =
                static_cast<std::int64_t>(g.numNodes()) - dist;
            if (std::min(dist, wrap) <=
                static_cast<std::int64_t>(p.localWindow))
                ++local;
        }
    }
    double frac = static_cast<double>(local) /
                  static_cast<double>(g.numEdges());
    EXPECT_GT(frac, 0.6);
}
