/**
 * @file
 * Tests for the DNN training executor against the simulated machine:
 * functional completeness, kernel event monotonicity, and the 2LM
 * dirty-writeback pathology the paper pins on the backward pass.
 */

#include <gtest/gtest.h>

#include "dnn/executor.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::dnn;

namespace
{

SystemConfig
config(MemoryMode mode, std::uint64_t scale = 65536)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = scale;  // DRAM 32 GiB -> 512 KiB per channel
    cfg.epochBytes = 32 * kKiB;
    return cfg;
}

ExecutorConfig
execCfg()
{
    ExecutorConfig e;
    e.threads = 8;
    e.chunkBytes = 16 * kKiB;
    return e;
}

} // namespace

TEST(Executor, RunsAllKernelsInOrder)
{
    MemorySystem sys(config(MemoryMode::TwoLm));
    ComputeGraph g = buildTinyCnn(32);
    Executor ex(sys, g, execCfg());
    IterationResult res = ex.runIteration();

    ASSERT_EQ(res.kernels.size(), g.schedule().size());
    for (std::size_t i = 0; i < res.kernels.size(); ++i) {
        EXPECT_EQ(res.kernels[i].op, g.schedule()[i].id);
        EXPECT_LE(res.kernels[i].start, res.kernels[i].end);
        if (i) {
            EXPECT_GE(res.kernels[i].start, res.kernels[i - 1].start);
        }
    }
    EXPECT_GT(res.seconds, 0.0);
    EXPECT_GT(res.counters.demand(), 0u);
    EXPECT_GT(res.totalInstructions, 0.0);
    EXPECT_GT(res.mips(), 0.0);
}

TEST(Executor, ArenaAndWeightsAllocated)
{
    MemorySystem sys(config(MemoryMode::TwoLm));
    ComputeGraph g = buildTinyCnn(32);
    Executor ex(sys, g, execCfg());
    EXPECT_GT(ex.arena().size, 0u);
    EXPECT_GT(ex.weights().size, 0u);
    // Tensor addresses stay inside their regions.
    for (const auto &t : g.tensors()) {
        Addr a = ex.tensorAddr(t.id);
        const Region &r =
            ex.plan().at(t.id).inArena ? ex.arena() : ex.weights();
        EXPECT_TRUE(r.contains(a)) << t.name;
        EXPECT_TRUE(r.contains(a + ex.plan().at(t.id).bytes - 1))
            << t.name;
    }
}

TEST(Executor, ComputeHeavyKernelsAreComputeBound)
{
    // With a huge per-core FLOP cost, kernel time must track flops.
    MemorySystem sys(config(MemoryMode::TwoLm));
    ComputeGraph g = buildTinyCnn(32);
    ExecutorConfig slow = execCfg();
    slow.flopsPerCore = 1e6;  // absurdly slow cores
    Executor ex(sys, g, slow);
    IterationResult res = ex.runIteration();

    double conv_time = 0, concat_time = 0;
    for (const auto &k : res.kernels) {
        if (k.kind == OpKind::Conv)
            conv_time += k.end - k.start;
        if (k.kind == OpKind::Pool)
            concat_time += k.end - k.start;
    }
    EXPECT_GT(conv_time, concat_time);
}

TEST(Executor, SecondIterationRunsOnWarmState)
{
    MemorySystem sys(config(MemoryMode::TwoLm));
    ComputeGraph g = buildTinyCnn(32);
    Executor ex(sys, g, execCfg());
    IterationResult r1 = ex.runIteration();
    IterationResult r2 = ex.runIteration();
    EXPECT_GT(r2.seconds, 0.0);
    // Same schedule, same traffic shape: runtimes within an order of
    // magnitude (the first iteration pays compulsory misses).
    EXPECT_LT(r2.seconds, r1.seconds * 3);
    EXPECT_GT(r2.seconds, r1.seconds / 10);
}

TEST(Executor2Lm, BackwardPassGeneratesDirtyMisses)
{
    // Arena (DenseNet-like reuse) far larger than the DRAM cache: the
    // backward pass overwrites dead-but-dirty regions, so dirty tag
    // misses must dominate clean ones (Figure 5b observation 1+2).
    // The arena/cache ratio is scale-invariant, so the batch size
    // alone sets it: DenseNet's arena reaches ~2x the 192 GiB cache
    // near batch 1280.
    SystemConfig cfg = config(MemoryMode::TwoLm, 1u << 20);
    cfg.epochBytes = 16 * kKiB;
    MemorySystem sys(cfg);
    ComputeGraph g = buildDenseNet264(1536);
    Executor ex(sys, g, execCfg());
    ArenaPlan const &plan = ex.plan();
    ASSERT_GT(plan.arenaBytes, 2 * cfg.dramTotal())
        << "test needs an arena exceeding the cache";

    IterationResult res = ex.runIteration();
    EXPECT_GT(res.counters.tagMissDirty, res.counters.tagMissClean)
        << "dirty misses should dominate (paper observation)";
    // Dirty misses force NVRAM writebacks even though the data is dead.
    EXPECT_GT(res.counters.nvramWrite, 0u);
}

TEST(Executor2Lm, CacheFittingNetworkMostlyHits)
{
    SystemConfig cfg = config(MemoryMode::TwoLm, 4096);
    MemorySystem sys(cfg);
    ComputeGraph g = buildTinyCnn(64);
    Executor ex(sys, g, execCfg());
    ASSERT_LT(ex.plan().arenaBytes, cfg.dramTotal() / 2);

    ex.runIteration();  // warm up
    sys.resetCounters();
    IterationResult res = ex.runIteration();
    // DDO write hits are hits too (they just skip the tag check).
    double hit_rate =
        static_cast<double>(res.counters.tagHit +
                            res.counters.ddoHit) /
        static_cast<double>(std::max<std::uint64_t>(
            res.counters.demand(), 1));
    EXPECT_GT(hit_rate, 0.8);
}

TEST(Executor, StreamRangeTouchesExactLines)
{
    MemorySystem sys(config(MemoryMode::TwoLm));
    Region r = sys.allocate(64 * kKiB, "r");
    Executor::streamRange(sys, r.base, 64 * kKiB, CpuOp::Load, 4,
                          8 * kKiB, 0);
    sys.quiesce();
    EXPECT_EQ(sys.counters().llcReads, 64 * kKiB / kLineSize);
}

TEST(Executor, MipsTraceRecorded)
{
    MemorySystem sys(config(MemoryMode::TwoLm));
    ComputeGraph g = buildTinyCnn(32);
    Executor ex(sys, g, execCfg());
    ex.runIteration();
    EXPECT_FALSE(sys.trace().channel("mips").empty());
}
