/**
 * @file
 * Golden-model cross-check: the DramCache (with all its action
 * accounting and DDO plumbing) is driven with long pseudo-random
 * request streams and compared, access by access, against a trivially
 * simple reference implementation of a direct-mapped / set-associative
 * cache. Catches state-machine divergence no directed test would.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "core/rng.hh"
#include "imc/dram_cache.hh"

using namespace nvsim;

namespace
{

/** Dumb reference cache: map from set to a vector of (tag, dirty). */
class RefCache
{
  public:
    RefCache(std::uint64_t sets, unsigned ways)
        : sets_(sets), ways_(ways)
    {
    }

    struct Line
    {
        std::uint64_t tag;
        bool dirty;
        std::uint64_t lru;
    };

    /** Returns (hit, victim_dirty). */
    std::pair<bool, bool>
    access(Addr addr, bool is_write)
    {
        std::uint64_t set = lineIndex(addr) % sets_;
        std::uint64_t tag = lineIndex(addr) / sets_;
        auto &lines = store_[set];
        for (auto &l : lines) {
            if (l.tag == tag) {
                if (is_write)
                    l.dirty = true;
                l.lru = ++clock_;
                return {true, false};
            }
        }
        bool victim_dirty = false;
        if (lines.size() >= ways_) {
            std::size_t victim = 0;
            for (std::size_t i = 1; i < lines.size(); ++i) {
                if (lines[i].lru < lines[victim].lru)
                    victim = i;
            }
            victim_dirty = lines[victim].dirty;
            lines.erase(lines.begin() + static_cast<long>(victim));
        }
        lines.push_back({tag, is_write, ++clock_});
        return {false, victim_dirty};
    }

    bool
    resident(Addr addr) const
    {
        std::uint64_t set = lineIndex(addr) % sets_;
        std::uint64_t tag = lineIndex(addr) / sets_;
        auto it = store_.find(set);
        if (it == store_.end())
            return false;
        for (const auto &l : it->second) {
            if (l.tag == tag)
                return true;
        }
        return false;
    }

  private:
    std::uint64_t sets_;
    unsigned ways_;
    std::uint64_t clock_ = 0;
    std::map<std::uint64_t, std::vector<Line>> store_;
};

} // namespace

class CacheVsReference
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{
};

TEST_P(CacheVsReference, RandomStreamAgrees)
{
    auto [ways, addr_space_lines] = GetParam();
    DramCacheParams p;
    p.capacity = 256 * kLineSize;
    p.ways = ways;
    p.ddo.mode = DdoMode::None;  // DDO changes actions, not state
    DramCache cache(p);
    RefCache ref(cache.numSets(), ways);

    Rng rng(40 + ways);
    for (int i = 0; i < 50000; ++i) {
        Addr addr = rng.below(addr_space_lines) * kLineSize;
        bool is_write = rng.below(3) == 0;

        auto [ref_hit, ref_victim_dirty] = ref.access(addr, is_write);
        CacheResult r = is_write ? cache.write(addr) : cache.read(addr);

        bool model_hit = r.outcome == CacheOutcome::Hit;
        ASSERT_EQ(model_hit, ref_hit) << "step " << i;
        if (!model_hit) {
            bool model_victim_dirty =
                r.outcome == CacheOutcome::MissDirty;
            ASSERT_EQ(model_victim_dirty, ref_victim_dirty)
                << "step " << i;
        }
        // Post-state: the accessed line is resident in both.
        ASSERT_TRUE(cache.resident(addr));
        ASSERT_TRUE(ref.resident(addr));
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheVsReference,
    ::testing::Combine(::testing::Values(1u, 2u, 4u),
                       ::testing::Values(128u, 512u, 4096u)));

TEST(CacheVsReference, DdoPreservesStateAgreement)
{
    // With the tracker enabled, outcomes may differ (DdoHit instead of
    // Hit) but residency and dirtiness must match the reference.
    DramCacheParams p;
    p.capacity = 128 * kLineSize;
    p.ddo.mode = DdoMode::RecentTracker;
    p.ddo.trackerEntries = 64;
    DramCache cache(p);
    RefCache ref(cache.numSets(), 1);

    Rng rng(7);
    for (int i = 0; i < 50000; ++i) {
        Addr addr = rng.below(400) * kLineSize;
        bool is_write = rng.below(2) == 0;
        auto [ref_hit, ref_dirty] = ref.access(addr, is_write);
        (void)ref_hit;
        (void)ref_dirty;
        CacheResult r = is_write ? cache.write(addr) : cache.read(addr);
        (void)r;
        ASSERT_EQ(cache.resident(addr), ref.resident(addr))
            << "step " << i;
        if (is_write)
            ASSERT_TRUE(cache.residentDirty(addr)) << "step " << i;
    }
}
