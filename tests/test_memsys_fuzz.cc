/**
 * @file
 * Randomized consistency checks over the whole MemorySystem: long
 * pseudo-random operation streams must preserve global invariants in
 * every mode and configuration — the cross-cutting safety net under
 * all the directed tests.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/rng.hh"
#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

struct FuzzParams
{
    MemoryMode mode;
    bool scatter;
    unsigned ways;
    DdoMode ddo;
};

class MemSysFuzz : public ::testing::TestWithParam<FuzzParams>
{
};

} // namespace

TEST_P(MemSysFuzz, InvariantsHoldUnderRandomTraffic)
{
    const FuzzParams &fp = GetParam();
    SystemConfig cfg;
    cfg.mode = fp.mode;
    cfg.scale = 1u << 14;
    cfg.scatterPages = fp.scatter;
    cfg.cacheWays = fp.ways;
    cfg.ddo.mode = fp.ddo;
    cfg.epochBytes = 32 * kKiB;
    MemorySystem sys(cfg);

    Region arr = sys.allocate(cfg.dramTotal() * 3 / 2, "fuzz");
    sys.setActiveThreads(6);

    Rng rng(0xF00D + fp.ways);
    std::uint64_t issued_lines = 0;
    double last_now = 0;

    for (int step = 0; step < 60000; ++step) {
        unsigned thread = static_cast<unsigned>(rng.below(6));
        Addr addr = arr.base + rng.below(arr.size / kLineSize) *
                                   kLineSize;
        Bytes size = (1 + rng.below(4)) * kLineSize;
        if (addr + size > arr.base + arr.size)
            size = kLineSize;
        CpuOp op = static_cast<CpuOp>(rng.below(3));
        sys.access(thread, op, addr, size);
        issued_lines += size / kLineSize;

        if (rng.below(1000) == 0) {
            sys.advanceEpoch();
            // Time must be monotone.
            ASSERT_GE(sys.now(), last_now);
            last_now = sys.now();
        }
    }
    sys.quiesce();

    PerfCounters c = sys.counters();

    // Demand conservation: every line either hit the LLC or became an
    // LLC read/write; NT stores and dirty evictions add LLC writes but
    // never lose requests.
    ASSERT_LE(c.demand(), 2 * issued_lines);

    if (fp.mode == MemoryMode::TwoLm) {
        // Tag statistics partition the demand stream.
        EXPECT_EQ(c.tagHit + c.tagMissClean + c.tagMissDirty + c.ddoHit,
                  c.demand());
        // Table I bounds: amplification within [1, 5].
        EXPECT_GE(c.amplification(), 1.0);
        EXPECT_LE(c.amplification(), 5.0);
        // Every NVRAM read is a miss fill; misses can't exceed demand.
        EXPECT_LE(c.nvramRead, c.demand());
    } else {
        // App direct: exactly one device access per request.
        EXPECT_DOUBLE_EQ(c.amplification(), 1.0);
        EXPECT_EQ(c.tagHit + c.tagMissClean + c.tagMissDirty, 0u);
    }

    // The epoch machinery leaves nothing buffered after quiesce.
    for (unsigned i = 0; i < sys.numChannels(); ++i) {
        EXPECT_EQ(sys.channel(i).nvram().epoch().demandReads, 0u);
        EXPECT_EQ(sys.channel(i).dram().epoch().casReads, 0u);
    }
    EXPECT_GT(sys.now(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MemSysFuzz,
    ::testing::Values(
        FuzzParams{MemoryMode::TwoLm, false, 1, DdoMode::RecentTracker},
        FuzzParams{MemoryMode::TwoLm, true, 1, DdoMode::RecentTracker},
        FuzzParams{MemoryMode::TwoLm, false, 4, DdoMode::None},
        FuzzParams{MemoryMode::TwoLm, true, 2, DdoMode::Oracle},
        FuzzParams{MemoryMode::OneLm, false, 1, DdoMode::None},
        FuzzParams{MemoryMode::OneLm, true, 1, DdoMode::None}));

TEST(MemSysFuzz, ReplayDeterminism)
{
    // The same random stream on two identical machines produces
    // bit-identical counters and time.
    auto run = [] {
        SystemConfig cfg;
        cfg.mode = MemoryMode::TwoLm;
        cfg.scale = 1u << 14;
        cfg.scatterPages = true;
        MemorySystem sys(cfg);
        Region arr = sys.allocate(cfg.dramTotal() * 2, "fuzz");
        sys.setActiveThreads(4);
        Rng rng(77);
        for (int i = 0; i < 20000; ++i) {
            sys.access(static_cast<unsigned>(rng.below(4)),
                       static_cast<CpuOp>(rng.below(3)),
                       arr.base +
                           rng.below(arr.size / kLineSize) * kLineSize,
                       kLineSize);
        }
        sys.quiesce();
        return std::make_tuple(sys.counters().deviceAccesses(),
                               sys.counters().tagMissDirty, sys.now());
    };
    EXPECT_EQ(run(), run());
}
