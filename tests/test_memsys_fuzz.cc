/**
 * @file
 * Randomized consistency checks over the whole MemorySystem: long
 * pseudo-random operation streams must preserve global invariants in
 * every mode and configuration — the cross-cutting safety net under
 * all the directed tests.
 */

#include <gtest/gtest.h>

#include <array>
#include <tuple>

#include "core/rng.hh"
#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

struct FuzzParams
{
    MemoryMode mode;
    bool scatter;
    unsigned ways;
    DdoMode ddo;
};

class MemSysFuzz : public ::testing::TestWithParam<FuzzParams>
{
};

} // namespace

TEST_P(MemSysFuzz, InvariantsHoldUnderRandomTraffic)
{
    const FuzzParams &fp = GetParam();
    SystemConfig cfg;
    cfg.mode = fp.mode;
    cfg.scale = 1u << 14;
    cfg.scatterPages = fp.scatter;
    cfg.cacheWays = fp.ways;
    cfg.ddo.mode = fp.ddo;
    cfg.epochBytes = 32 * kKiB;
    MemorySystem sys(cfg);

    Region arr = sys.allocate(cfg.dramTotal() * 3 / 2, "fuzz");
    sys.setActiveThreads(6);

    Rng rng(0xF00D + fp.ways);
    std::uint64_t issued_lines = 0;
    double last_now = 0;

    for (int step = 0; step < 60000; ++step) {
        unsigned thread = static_cast<unsigned>(rng.below(6));
        Addr addr = arr.base + rng.below(arr.size / kLineSize) *
                                   kLineSize;
        Bytes size = (1 + rng.below(4)) * kLineSize;
        if (addr + size > arr.base + arr.size)
            size = kLineSize;
        CpuOp op = static_cast<CpuOp>(rng.below(3));
        sys.submit({thread, op, addr, size});
        issued_lines += size / kLineSize;

        if (rng.below(1000) == 0) {
            sys.advanceEpoch();
            // Time must be monotone.
            ASSERT_GE(sys.now(), last_now);
            last_now = sys.now();
        }
    }
    sys.quiesce();

    PerfCounters c = sys.counters();

    // Demand conservation: every line either hit the LLC or became an
    // LLC read/write; NT stores and dirty evictions add LLC writes but
    // never lose requests.
    ASSERT_LE(c.demand(), 2 * issued_lines);

    if (fp.mode == MemoryMode::TwoLm) {
        // Tag statistics partition the demand stream.
        EXPECT_EQ(c.tagHit + c.tagMissClean + c.tagMissDirty + c.ddoHit,
                  c.demand());
        // Table I bounds: amplification within [1, 5].
        EXPECT_GE(c.amplification(), 1.0);
        EXPECT_LE(c.amplification(), 5.0);
        // Every NVRAM read is a miss fill; misses can't exceed demand.
        EXPECT_LE(c.nvramRead, c.demand());
    } else {
        // App direct: exactly one device access per request.
        EXPECT_DOUBLE_EQ(c.amplification(), 1.0);
        EXPECT_EQ(c.tagHit + c.tagMissClean + c.tagMissDirty, 0u);
    }

    // The epoch machinery leaves nothing buffered after quiesce.
    for (unsigned i = 0; i < sys.numChannels(); ++i) {
        EXPECT_EQ(sys.channel(i).nvram().epoch().demandReads, 0u);
        EXPECT_EQ(sys.channel(i).dram().epoch().casReads, 0u);
    }
    EXPECT_GT(sys.now(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MemSysFuzz,
    ::testing::Values(
        FuzzParams{MemoryMode::TwoLm, false, 1, DdoMode::RecentTracker},
        FuzzParams{MemoryMode::TwoLm, true, 1, DdoMode::RecentTracker},
        FuzzParams{MemoryMode::TwoLm, false, 4, DdoMode::None},
        FuzzParams{MemoryMode::TwoLm, true, 2, DdoMode::Oracle},
        FuzzParams{MemoryMode::OneLm, false, 1, DdoMode::None},
        FuzzParams{MemoryMode::OneLm, true, 1, DdoMode::None}));

namespace
{

/** Random but valid fault plan derived from a fuzz seed. */
FaultConfig
randomFaultConfig(Rng &rng)
{
    FaultConfig f;
    f.seed = rng.next();
    auto rate = [&rng](double max) {
        return static_cast<double>(rng.below(1000)) / 1000.0 * max;
    };
    f.nvramReadCorrectable = rate(0.05);
    f.nvramReadUncorrectable = rate(0.01);
    f.nvramWriteCorrectable = rate(0.05);
    f.nvramWriteUncorrectable = rate(0.01);
    f.dramCorrectable = rate(0.05);
    f.tagEccUncorrectable = rate(0.01);
    f.maxRetries = 1 + static_cast<unsigned>(rng.below(4));
    f.retryLatency = rate(1e-5);
    if (rng.below(2)) {
        f.throttle.engageBandwidth = 0.5e9 + rate(4e9);
        f.throttle.releaseBandwidth =
            f.throttle.engageBandwidth * 0.5;
        f.throttle.engageEpochs = 1 + static_cast<unsigned>(rng.below(3));
        f.throttle.releaseEpochs =
            1 + static_cast<unsigned>(rng.below(3));
        f.throttle.factor = 0.25 + rate(0.5);
    }
    return f;
}

} // namespace

class MemSysFaultFuzz : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MemSysFaultFuzz, FaultsNeverBreakInvariants)
{
    Rng rng(GetParam());
    SystemConfig cfg;
    cfg.mode = rng.below(2) ? MemoryMode::TwoLm : MemoryMode::OneLm;
    cfg.scale = 1u << 14;
    cfg.scatterPages = rng.below(2) != 0;
    cfg.cacheWays = 1 + static_cast<unsigned>(rng.below(4));
    cfg.epochBytes = 32 * kKiB;
    cfg.fault = randomFaultConfig(rng);
    MemorySystem sys(cfg);

    Region arr = sys.allocate(cfg.dramTotal() * 3 / 2, "fuzz");
    sys.setActiveThreads(6);

    double last_now = 0;
    for (int step = 0; step < 40000; ++step) {
        unsigned thread = static_cast<unsigned>(rng.below(6));
        Addr addr =
            arr.base + rng.below(arr.size / kLineSize) * kLineSize;
        Bytes size = (1 + rng.below(4)) * kLineSize;
        if (addr + size > arr.base + arr.size)
            size = kLineSize;
        sys.submit({thread, static_cast<CpuOp>(rng.below(3)), addr,
                   size});

        if (rng.below(2000) == 0) {
            sys.advanceEpoch();
            ASSERT_GE(sys.now(), last_now);
            last_now = sys.now();
        }
        // Occasionally lose a channel mid-run (keep at least two).
        if (rng.below(20000) == 0 && sys.onlineChannels().size() > 2) {
            sys.offlineChannel(sys.onlineChannels()[static_cast<size_t>(
                rng.below(sys.onlineChannels().size()))]);
        }
    }
    sys.quiesce();

    const PerfCounters c = sys.counters();
    const FaultLog &log = sys.faultLog();

    // Counter/log agreement: per-channel counters aggregate to at
    // least what the machine-level log recorded (the log also counts
    // events on channels later taken offline, whose counters survive,
    // so the totals must match exactly).
    EXPECT_EQ(c.tagEccInvalidates, log.tagEccInvalidates());
    EXPECT_GE(c.correctableErrors, log.correctable());
    // Every correctable error costs at least one retry round.
    EXPECT_GE(c.retries, c.correctableErrors);

    // Poison conservation: created only by uncorrectable events,
    // cleared or still present, never negative anywhere.
    EXPECT_LE(log.poisonCreated(),
              log.uncorrectable() + log.tagEccInvalidates() +
                  log.count(FaultEventKind::DramUncorrectable));
    EXPECT_EQ(log.poisonCreated() + log.poisonPropagated(),
              log.poisonCleared() + sys.poisonedLines());
    // A machine check needs a poisoned or just-poisoned line.
    EXPECT_LE(log.machineChecks(),
              log.poisonCreated() + log.poisonPropagated() +
                  log.uncorrectable() +
                  log.count(FaultEventKind::DramUncorrectable));

    // Media traffic can only grow under faults; demand conservation
    // still holds.
    EXPECT_GE(c.amplification(), 1.0);
    EXPECT_GT(sys.now(), 0.0);

    // Nothing left buffered after quiesce on surviving channels.
    for (unsigned i : sys.onlineChannels()) {
        EXPECT_EQ(sys.channel(i).nvram().epoch().demandReads, 0u);
        EXPECT_EQ(sys.channel(i).dram().epoch().casReads, 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemSysFaultFuzz,
                         ::testing::Values(0xFA111u, 0xFA112u, 0xFA113u,
                                           0xFA114u, 0xFA115u,
                                           0xFA116u));

TEST(MemSysFaultFuzz, FaultReplayDeterminism)
{
    auto run = [] {
        SystemConfig cfg;
        cfg.mode = MemoryMode::TwoLm;
        cfg.scale = 1u << 14;
        cfg.fault.seed = 1234;
        cfg.fault.nvramReadCorrectable = 0.01;
        cfg.fault.nvramReadUncorrectable = 0.002;
        cfg.fault.tagEccUncorrectable = 0.002;
        MemorySystem sys(cfg);
        Region arr = sys.allocate(cfg.dramTotal() * 2, "fuzz");
        sys.setActiveThreads(4);
        Rng rng(77);
        for (int i = 0; i < 20000; ++i) {
            sys.submit({static_cast<unsigned>(rng.below(4)),
                       static_cast<CpuOp>(rng.below(3)),
                       arr.base +
                           rng.below(arr.size / kLineSize) * kLineSize,
                       kLineSize});
        }
        sys.quiesce();
        return std::make_tuple(
            sys.counters().deviceAccesses(),
            sys.counters().correctableErrors,
            sys.counters().uncorrectableErrors,
            sys.faultLog().machineChecks(), sys.poisonedLines(),
            sys.now());
    };
    EXPECT_EQ(run(), run());
}

// --- Maintenance fuzz ----------------------------------------------------

namespace
{

/** Random but valid maintenance plan derived from a fuzz seed. */
MaintenanceConfig
randomMaintenanceConfig(Rng &rng, bool correctableOnly)
{
    MaintenanceConfig m;
    m.seed = rng.next();
    auto rate = [&rng](double max) {
        return static_cast<double>(rng.below(1000)) / 1000.0 * max;
    };
    if (rng.below(4) != 0) {
        m.refresh.trefi = 3.9e-6 + rate(8e-6);
        m.refresh.trfc = 200e-9 + rate(150e-9);
    }
    if (rng.below(4) != 0) {
        m.scrub.interval = 2 + static_cast<double>(rng.below(64));
        m.scrub.correctable = 0.01 + rate(0.2);
        m.scrub.uncorrectable = correctableOnly ? 0.0 : rate(0.02);
        m.scrub.retireThreshold = 1 + static_cast<unsigned>(rng.below(4));
        m.scrub.retireCapacity = 1 + rng.below(64);
    }
    if (rng.below(4) != 0) {
        m.rowhammer.threshold = 64 + rng.below(4096);
        m.rowhammer.trackerEntries =
            4 + static_cast<std::uint32_t>(rng.below(64));
        m.rowhammer.window = 1e-4 + rate(64e-3);
    }
    return m;
}

/** All maintenance counters, for monotonicity snapshots. */
std::array<std::uint64_t, 6>
maintenanceSnapshot(const PerfCounters &c)
{
    return {c.refreshSlots,      c.scrubReads, c.scrubCorrected,
            c.linesRetired,      c.targetedRefreshes,
            c.maintenanceStallNs};
}

} // namespace

class MemSysMaintenanceFuzz
    : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(MemSysMaintenanceFuzz, MaintenanceNeverBreaksInvariants)
{
    Rng rng(GetParam());
    SystemConfig cfg;
    cfg.mode = rng.below(2) ? MemoryMode::TwoLm : MemoryMode::OneLm;
    cfg.scale = 1u << 14;
    cfg.scatterPages = rng.below(2) != 0;
    cfg.cacheWays = 1 + static_cast<unsigned>(rng.below(4));
    cfg.epochBytes = 32 * kKiB;
    // Correctable-only scrub: a CE is logged and scrubbed in place, so
    // no poison and no machine check may ever appear — even while the
    // repeat-CE ladder retires frames.
    cfg.maintenance = randomMaintenanceConfig(rng, true);
    cfg.validate();
    MemorySystem sys(cfg);

    Region arr = sys.allocate(cfg.dramTotal() * 3 / 2, "fuzz");
    sys.setActiveThreads(6);

    double last_now = 0;
    auto last_snap = maintenanceSnapshot(sys.counters());
    for (int step = 0; step < 40000; ++step) {
        unsigned thread = static_cast<unsigned>(rng.below(6));
        Addr addr =
            arr.base + rng.below(arr.size / kLineSize) * kLineSize;
        Bytes size = (1 + rng.below(4)) * kLineSize;
        if (addr + size > arr.base + arr.size)
            size = kLineSize;
        sys.submit({thread, static_cast<CpuOp>(rng.below(3)), addr,
                   size});

        if (rng.below(2000) == 0) {
            sys.advanceEpoch();
            ASSERT_GE(sys.now(), last_now);
            last_now = sys.now();
            // Maintenance counters only ever grow.
            auto snap = maintenanceSnapshot(sys.counters());
            for (std::size_t i = 0; i < snap.size(); ++i)
                ASSERT_GE(snap[i], last_snap[i]) << "counter " << i;
            last_snap = snap;
        }
    }
    sys.quiesce();

    const PerfCounters c = sys.counters();
    const FaultLog &log = sys.faultLog();

    // Correctable-only: nothing may poison a line or machine-check.
    EXPECT_EQ(log.poisonCreated(), 0u);
    EXPECT_EQ(log.machineChecks(), 0u);
    EXPECT_EQ(sys.poisonedLines(), 0u);
    EXPECT_EQ(c.uncorrectableErrors, 0u);

    // Scrub accounting: every corrected (and every retired) frame came
    // from a patrol read; the retirement log mirrors the counter.
    EXPECT_LE(c.scrubCorrected, c.scrubReads);
    EXPECT_LE(c.linesRetired, c.scrubCorrected);
    EXPECT_EQ(c.linesRetired, log.count(FaultEventKind::LineRetired));
    EXPECT_EQ(c.targetedRefreshes,
              log.count(FaultEventKind::TargetedRefresh));

    // The per-channel scrub engines agree with the global counter.
    std::uint64_t retired = 0;
    for (unsigned i = 0; i < sys.numChannels(); ++i)
        retired += sys.channel(i).maintenance().retiredFrames();
    EXPECT_EQ(retired, c.linesRetired);

    if (cfg.mode == MemoryMode::TwoLm) {
        // Demand is still fully classified. NOTE: no upper bound on
        // amplification here — patrol reads are real DRAM traffic on
        // top of demand, so Table I's <= 5 ceiling no longer applies.
        EXPECT_EQ(c.tagHit + c.tagMissClean + c.tagMissDirty + c.ddoHit,
                  c.demand());
        EXPECT_GE(c.amplification(), 1.0);
    }
    if (cfg.maintenance.scrub.enabled()) {
        EXPECT_GT(c.scrubReads, 0u);
    }
    if (cfg.maintenance.refresh.enabled()) {
        EXPECT_GT(c.refreshSlots, 0u);
        EXPECT_GT(c.maintenanceStallNs, 0u);
    }

    // Nothing left buffered after quiesce.
    for (unsigned i = 0; i < sys.numChannels(); ++i) {
        EXPECT_EQ(sys.channel(i).nvram().epoch().demandReads, 0u);
        EXPECT_EQ(sys.channel(i).dram().epoch().casReads, 0u);
    }
    EXPECT_GT(sys.now(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MemSysMaintenanceFuzz,
                         ::testing::Values(0x3A1111u, 0x3A1112u,
                                           0x3A1113u, 0x3A1114u,
                                           0x3A1115u, 0x3A1116u));

TEST(MemSysMaintenanceFuzz, UncorrectableScrubEscalatesButConserves)
{
    // UE-capable scrub drives the full escalation path (poison,
    // invalidate+refetch, retirement); the fault layer's conservation
    // laws must still hold.
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 1u << 14;
    cfg.maintenance.seed = 9;
    cfg.maintenance.scrub.interval = 4;
    cfg.maintenance.scrub.correctable = 0.05;
    cfg.maintenance.scrub.uncorrectable = 0.02;
    cfg.maintenance.scrub.retireCapacity = 32;
    cfg.validate();
    MemorySystem sys(cfg);
    Region arr = sys.allocate(cfg.dramTotal() * 2, "fuzz");
    sys.setActiveThreads(4);
    Rng rng(99);
    for (int i = 0; i < 30000; ++i) {
        sys.submit({static_cast<unsigned>(rng.below(4)),
                   static_cast<CpuOp>(rng.below(3)),
                   arr.base + rng.below(arr.size / kLineSize) * kLineSize,
                   kLineSize});
    }
    sys.quiesce();

    const FaultLog &log = sys.faultLog();
    EXPECT_GT(sys.counters().scrubReads, 0u);
    EXPECT_GT(log.count(FaultEventKind::LineRetired), 0u);
    EXPECT_EQ(log.poisonCreated() + log.poisonPropagated(),
              log.poisonCleared() + sys.poisonedLines());
    EXPECT_LE(log.machineChecks(),
              log.poisonCreated() + log.poisonPropagated() +
                  log.uncorrectable() +
                  log.count(FaultEventKind::DramUncorrectable));
}

TEST(MemSysMaintenanceFuzz, MaintenanceReplayDeterminism)
{
    // Full maintenance stack on: two identical runs produce
    // bit-identical counters, retirement totals and time.
    auto run = [] {
        SystemConfig cfg;
        cfg.mode = MemoryMode::TwoLm;
        cfg.scale = 1u << 14;
        cfg.scatterPages = true;
        cfg.maintenance.seed = 4242;
        cfg.maintenance.refresh.trefi = 7.8e-6;
        cfg.maintenance.scrub.interval = 8;
        cfg.maintenance.scrub.correctable = 0.1;
        cfg.maintenance.scrub.uncorrectable = 0.005;
        cfg.maintenance.rowhammer.threshold = 512;
        MemorySystem sys(cfg);
        Region arr = sys.allocate(cfg.dramTotal() * 2, "fuzz");
        sys.setActiveThreads(4);
        Rng rng(77);
        for (int i = 0; i < 20000; ++i) {
            sys.submit({static_cast<unsigned>(rng.below(4)),
                       static_cast<CpuOp>(rng.below(3)),
                       arr.base +
                           rng.below(arr.size / kLineSize) * kLineSize,
                       kLineSize});
        }
        sys.quiesce();
        const PerfCounters c = sys.counters();
        return std::make_tuple(c.deviceAccesses(), c.scrubReads,
                               c.scrubCorrected, c.linesRetired,
                               c.targetedRefreshes, c.refreshSlots,
                               c.maintenanceStallNs,
                               sys.faultLog().machineChecks(),
                               sys.poisonedLines(), sys.now());
    };
    EXPECT_EQ(run(), run());
}

TEST(MemSysFuzz, ReplayDeterminism)
{
    // The same random stream on two identical machines produces
    // bit-identical counters and time.
    auto run = [] {
        SystemConfig cfg;
        cfg.mode = MemoryMode::TwoLm;
        cfg.scale = 1u << 14;
        cfg.scatterPages = true;
        MemorySystem sys(cfg);
        Region arr = sys.allocate(cfg.dramTotal() * 2, "fuzz");
        sys.setActiveThreads(4);
        Rng rng(77);
        for (int i = 0; i < 20000; ++i) {
            sys.submit({static_cast<unsigned>(rng.below(4)),
                       static_cast<CpuOp>(rng.below(3)),
                       arr.base +
                           rng.below(arr.size / kLineSize) * kLineSize,
                       kLineSize});
        }
        sys.quiesce();
        return std::make_tuple(sys.counters().deviceAccesses(),
                               sys.counters().tagMissDirty, sys.now());
    };
    EXPECT_EQ(run(), run());
}
