/**
 * @file
 * Tests for the maximum-length LFSR used by the pseudo-random access
 * patterns. The paper requires that "each address is touched exactly
 * once (i.e. no repeats)"; these tests verify the full-period property
 * that guarantees it.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/lfsr.hh"

using namespace nvsim;

TEST(Lfsr, RejectsBadWidths)
{
    EXPECT_DEATH(Lfsr(1), "");
    EXPECT_DEATH(Lfsr(49), "");
}

TEST(Lfsr, StateNeverZero)
{
    Lfsr lfsr(8, 0);  // zero seed is remapped
    EXPECT_NE(lfsr.state(), 0u);
    for (int i = 0; i < 1000; ++i)
        EXPECT_NE(lfsr.next(), 0u);
}

TEST(Lfsr, Deterministic)
{
    Lfsr a(16, 42), b(16, 42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Lfsr, WidthFor)
{
    // The period is 2^w - 1, so n indices need (1 << w) - 1 >= n.
    EXPECT_EQ(Lfsr::widthFor(3), 2u);
    EXPECT_EQ(Lfsr::widthFor(4), 3u);
    EXPECT_EQ(Lfsr::widthFor(7), 3u);
    EXPECT_EQ(Lfsr::widthFor(8), 4u);
    EXPECT_EQ(Lfsr::widthFor(1023), 10u);
    EXPECT_EQ(Lfsr::widthFor(1024), 11u);
}

TEST(Lfsr, PeriodValue)
{
    EXPECT_EQ(Lfsr(4).period(), 15u);
    EXPECT_EQ(Lfsr(20).period(), (1u << 20) - 1);
}

/** Full-period property: each width visits all 2^w - 1 nonzero states. */
class LfsrPeriod : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LfsrPeriod, VisitsEveryNonzeroStateOnce)
{
    unsigned width = GetParam();
    Lfsr lfsr(width, 1);
    std::uint64_t period = lfsr.period();
    std::vector<bool> seen(period + 1, false);
    for (std::uint64_t i = 0; i < period; ++i) {
        std::uint64_t v = lfsr.next();
        ASSERT_GE(v, 1u);
        ASSERT_LE(v, period);
        ASSERT_FALSE(seen[v]) << "state " << v << " repeated at step " << i
                              << " for width " << width;
        seen[v] = true;
    }
    // After a full period the sequence returns to the start.
    std::uint64_t first = Lfsr(width, 1).next();
    EXPECT_EQ(lfsr.next(), first);
}

INSTANTIATE_TEST_SUITE_P(AllSmallWidths, LfsrPeriod,
                         ::testing::Values(2u, 3u, 4u, 5u, 6u, 7u, 8u, 9u,
                                           10u, 11u, 12u, 13u, 14u, 15u,
                                           16u, 17u, 18u, 19u, 20u));

/** Spot-check large widths: no repeat within a long prefix. */
class LfsrLargeWidth : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(LfsrLargeWidth, NoEarlyRepeat)
{
    Lfsr lfsr(GetParam(), 0xBEEF);
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 100000; ++i)
        ASSERT_TRUE(seen.insert(lfsr.next()).second);
}

INSTANTIATE_TEST_SUITE_P(Widths, LfsrLargeWidth,
                         ::testing::Values(24u, 28u, 32u, 36u, 40u, 44u,
                                           48u));
