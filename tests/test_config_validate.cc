/**
 * @file
 * SystemConfig::validate() and FaultConfig::validate() negative tests.
 *
 * validate() terminates the process through fatal() (exit code 1 with a
 * message on stderr), so every rejection is exercised as a gtest death
 * test: the assertion checks both the exit code and that the message
 * names the offending field, so a future refactor cannot silently swap
 * two checks.
 */

#include <gtest/gtest.h>

#include "sys/config.hh"

namespace
{

using namespace nvsim;

SystemConfig
okConfig()
{
    SystemConfig cfg;
    cfg.validate();  // sanity: defaults must pass
    return cfg;
}

TEST(ConfigValidate, DefaultsPass)
{
    SystemConfig cfg;
    cfg.validate();  // must not exit
    SUCCEED();
}

TEST(ConfigValidateDeathTest, RejectsZeroSockets)
{
    SystemConfig cfg = okConfig();
    cfg.sockets = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "sockets");
}

TEST(ConfigValidateDeathTest, RejectsZeroChannelsPerSocket)
{
    SystemConfig cfg = okConfig();
    cfg.channelsPerSocket = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "channelsPerSocket");
}

TEST(ConfigValidateDeathTest, RejectsZeroScale)
{
    SystemConfig cfg = okConfig();
    cfg.scale = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "scale divisor");
}

TEST(ConfigValidateDeathTest, RejectsZeroCacheWays)
{
    SystemConfig cfg = okConfig();
    cfg.cacheWays = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "cacheWays");
}

TEST(ConfigValidateDeathTest, RejectsZeroInterleaveGranularity)
{
    SystemConfig cfg = okConfig();
    cfg.interleaveGranularity = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "interleaveGranularity");
}

TEST(ConfigValidateDeathTest, RejectsDramScaledBelowMinimum)
{
    SystemConfig cfg = okConfig();
    // 32 GiB / 2^30 = 32 B per DIMM: far below 64 lines.
    cfg.scale = 1ull << 30;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "scaled DRAM DIMM too small");
}

TEST(ConfigValidateDeathTest, RejectsDramBelowInterleaveGranule)
{
    SystemConfig cfg = okConfig();
    // 64 lines of DRAM pass the floor check but sit below a huge
    // granule.
    cfg.scale = cfg.dram.capacity / (64 * kLineSize);
    cfg.interleaveGranularity = 1 * kMiB;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "interleave");
}

TEST(ConfigValidateDeathTest, RejectsNvramSmallerThanDram)
{
    SystemConfig cfg = okConfig();
    cfg.nvram.capacity = cfg.dram.capacity / 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "NVRAM DIMM smaller than DRAM");
}

TEST(ConfigValidateDeathTest, RejectsZeroMlp)
{
    SystemConfig cfg = okConfig();
    cfg.mlp = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "MLP");
}

TEST(ConfigValidateDeathTest, RejectsZeroEpochBytes)
{
    SystemConfig cfg = okConfig();
    cfg.epochBytes = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "epochBytes must be nonzero");
}

TEST(ConfigValidateDeathTest, RejectsSubLineEpochBytes)
{
    SystemConfig cfg = okConfig();
    cfg.epochBytes = kLineSize / 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "epochBytes must cover at least one line");
}

// --- FaultConfig::validate(), reached through SystemConfig ---

TEST(FaultConfigValidateDeathTest, RejectsNegativeRate)
{
    SystemConfig cfg = okConfig();
    cfg.fault.nvramReadCorrectable = -0.1;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "rate");
}

TEST(FaultConfigValidateDeathTest, RejectsRateAboveOne)
{
    SystemConfig cfg = okConfig();
    cfg.fault.tagEccUncorrectable = 1.5;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "rate");
}

TEST(FaultConfigValidateDeathTest, RejectsZeroMaxRetries)
{
    SystemConfig cfg = okConfig();
    cfg.fault.maxRetries = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "maxRetries");
}

TEST(FaultConfigValidateDeathTest, RejectsNegativeRetryLatency)
{
    SystemConfig cfg = okConfig();
    cfg.fault.retryLatency = -1e-6;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "retryLatency");
}

TEST(FaultConfigValidateDeathTest, RejectsBadThrottleFactor)
{
    SystemConfig cfg = okConfig();
    cfg.fault.throttle.engageBandwidth = 1e9;
    cfg.fault.throttle.factor = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "factor");
}

TEST(FaultConfigValidateDeathTest, RejectsReleaseAboveEngage)
{
    SystemConfig cfg = okConfig();
    cfg.fault.throttle.engageBandwidth = 1e9;
    cfg.fault.throttle.releaseBandwidth = 2e9;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "release");
}

TEST(FaultConfigValidateDeathTest, RejectsZeroThrottleEpochs)
{
    SystemConfig cfg = okConfig();
    cfg.fault.throttle.engageBandwidth = 1e9;
    cfg.fault.throttle.engageEpochs = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "[Ee]poch");
}

// --- MaintenanceConfig::validate(), reached through SystemConfig ---

TEST(MaintenanceConfigValidateDeathTest, RejectsNegativeRefreshCadence)
{
    SystemConfig cfg = okConfig();
    cfg.maintenance.refresh.trefi = -7.8e-6;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "negative cadence");
}

TEST(MaintenanceConfigValidateDeathTest, RejectsRefreshEatingAllBankTime)
{
    SystemConfig cfg = okConfig();
    cfg.maintenance.refresh.trefi = 100e-9;
    cfg.maintenance.refresh.trfc = 350e-9;  // tRFC >= tREFI
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "all bank time refreshing");
}

TEST(MaintenanceConfigValidateDeathTest, RejectsNegativeScrubInterval)
{
    SystemConfig cfg = okConfig();
    cfg.maintenance.scrub.interval = -100;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "negative cadence");
}

TEST(MaintenanceConfigValidateDeathTest, RejectsZeroRetireThreshold)
{
    SystemConfig cfg = okConfig();
    cfg.maintenance.scrub.interval = 100;
    cfg.maintenance.scrub.retireThreshold = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "retire threshold");
}

TEST(MaintenanceConfigValidateDeathTest, RejectsScrubRateAboveOne)
{
    SystemConfig cfg = okConfig();
    cfg.maintenance.scrub.interval = 100;
    cfg.maintenance.scrub.correctable = 1.5;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "\\[0, 1\\]");
}

TEST(MaintenanceConfigValidateDeathTest,
     RejectsRetireCapacityAboveCacheSize)
{
    SystemConfig cfg = okConfig();
    cfg.maintenance.scrub.interval = 100;
    // More spare rows than the scaled DIMM has cache lines.
    cfg.maintenance.scrub.retireCapacity =
        cfg.scaledDramPerDimm() / kLineSize + 1;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "retirement capacity");
}

TEST(MaintenanceConfigValidateDeathTest, RejectsZeroRowHammerTracker)
{
    SystemConfig cfg = okConfig();
    cfg.maintenance.rowhammer.threshold = 1000;
    cfg.maintenance.rowhammer.trackerEntries = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "tracker");
}

TEST(MaintenanceConfigValidate, AllOffDefaultsPassAndStayDisabled)
{
    SystemConfig cfg = okConfig();
    EXPECT_FALSE(cfg.maintenance.enabled());
    cfg.validate();
    SUCCEED();
}

} // namespace
