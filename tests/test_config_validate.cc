/**
 * @file
 * SystemConfig::validate() and FaultConfig::validate() negative tests.
 *
 * validate() terminates the process through fatal() (exit code 1 with a
 * message on stderr), so every rejection is exercised as a gtest death
 * test: the assertion checks both the exit code and that the message
 * names the offending field, so a future refactor cannot silently swap
 * two checks.
 */

#include <gtest/gtest.h>

#include "sys/config.hh"

namespace
{

using namespace nvsim;

SystemConfig
okConfig()
{
    SystemConfig cfg;
    cfg.validate();  // sanity: defaults must pass
    return cfg;
}

TEST(ConfigValidate, DefaultsPass)
{
    SystemConfig cfg;
    cfg.validate();  // must not exit
    SUCCEED();
}

TEST(ConfigValidateDeathTest, RejectsZeroSockets)
{
    SystemConfig cfg = okConfig();
    cfg.sockets = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "sockets");
}

TEST(ConfigValidateDeathTest, RejectsZeroChannelsPerSocket)
{
    SystemConfig cfg = okConfig();
    cfg.channelsPerSocket = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "channelsPerSocket");
}

TEST(ConfigValidateDeathTest, RejectsZeroScale)
{
    SystemConfig cfg = okConfig();
    cfg.scale = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "scale divisor");
}

TEST(ConfigValidateDeathTest, RejectsZeroCacheWays)
{
    SystemConfig cfg = okConfig();
    cfg.cacheWays = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "cacheWays");
}

TEST(ConfigValidateDeathTest, RejectsZeroInterleaveGranularity)
{
    SystemConfig cfg = okConfig();
    cfg.interleaveGranularity = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "interleaveGranularity");
}

TEST(ConfigValidateDeathTest, RejectsDramScaledBelowMinimum)
{
    SystemConfig cfg = okConfig();
    // 32 GiB / 2^30 = 32 B per DIMM: far below 64 lines.
    cfg.scale = 1ull << 30;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "scaled DRAM DIMM too small");
}

TEST(ConfigValidateDeathTest, RejectsDramBelowInterleaveGranule)
{
    SystemConfig cfg = okConfig();
    // 64 lines of DRAM pass the floor check but sit below a huge
    // granule.
    cfg.scale = cfg.dram.capacity / (64 * kLineSize);
    cfg.interleaveGranularity = 1 * kMiB;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "interleave");
}

TEST(ConfigValidateDeathTest, RejectsNvramSmallerThanDram)
{
    SystemConfig cfg = okConfig();
    cfg.nvram.capacity = cfg.dram.capacity / 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "NVRAM DIMM smaller than DRAM");
}

TEST(ConfigValidateDeathTest, RejectsZeroMlp)
{
    SystemConfig cfg = okConfig();
    cfg.mlp = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "MLP");
}

TEST(ConfigValidateDeathTest, RejectsZeroEpochBytes)
{
    SystemConfig cfg = okConfig();
    cfg.epochBytes = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "epochBytes must be nonzero");
}

TEST(ConfigValidateDeathTest, RejectsSubLineEpochBytes)
{
    SystemConfig cfg = okConfig();
    cfg.epochBytes = kLineSize / 2;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "epochBytes must cover at least one line");
}

// --- FaultConfig::validate(), reached through SystemConfig ---

TEST(FaultConfigValidateDeathTest, RejectsNegativeRate)
{
    SystemConfig cfg = okConfig();
    cfg.fault.nvramReadCorrectable = -0.1;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "rate");
}

TEST(FaultConfigValidateDeathTest, RejectsRateAboveOne)
{
    SystemConfig cfg = okConfig();
    cfg.fault.tagEccUncorrectable = 1.5;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "rate");
}

TEST(FaultConfigValidateDeathTest, RejectsZeroMaxRetries)
{
    SystemConfig cfg = okConfig();
    cfg.fault.maxRetries = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "maxRetries");
}

TEST(FaultConfigValidateDeathTest, RejectsNegativeRetryLatency)
{
    SystemConfig cfg = okConfig();
    cfg.fault.retryLatency = -1e-6;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "retryLatency");
}

TEST(FaultConfigValidateDeathTest, RejectsBadThrottleFactor)
{
    SystemConfig cfg = okConfig();
    cfg.fault.throttle.engageBandwidth = 1e9;
    cfg.fault.throttle.factor = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1), "factor");
}

TEST(FaultConfigValidateDeathTest, RejectsReleaseAboveEngage)
{
    SystemConfig cfg = okConfig();
    cfg.fault.throttle.engageBandwidth = 1e9;
    cfg.fault.throttle.releaseBandwidth = 2e9;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "release");
}

TEST(FaultConfigValidateDeathTest, RejectsZeroThrottleEpochs)
{
    SystemConfig cfg = okConfig();
    cfg.fault.throttle.engageBandwidth = 1e9;
    cfg.fault.throttle.engageEpochs = 0;
    EXPECT_EXIT(cfg.validate(), ::testing::ExitedWithCode(1),
                "[Ee]poch");
}

} // namespace
