/**
 * @file
 * Tests for the DMA copy-engine extension (Section VII-B's future
 * direction): traffic accounting, overlap with CPU work, engine
 * bandwidth limits and coherence with the LLC.
 */

#include <gtest/gtest.h>

#include "dnn/autotm.hh"
#include "dnn/networks.hh"
#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

SystemConfig
cfgWith(double engine_bw, unsigned engines = 4)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::OneLm;
    cfg.scale = 4096;
    cfg.epochBytes = 64 * kKiB;
    cfg.dmaEngines = engines;
    cfg.dmaEngineBandwidth = engine_bw;
    return cfg;
}

} // namespace

TEST(DmaCopy, GeneratesReadAndWriteTraffic)
{
    MemorySystem sys(cfgWith(8e9));
    Region src = sys.allocateIn(MemPool::Nvram, kMiB, "src");
    Region dst = sys.allocateIn(MemPool::Dram, kMiB, "dst");
    sys.dmaCopy(dst.base, src.base, kMiB);
    sys.quiesce();
    PerfCounters c = sys.counters();
    EXPECT_EQ(c.nvramRead, kMiB / kLineSize);
    EXPECT_EQ(c.dramWrite, kMiB / kLineSize);
}

TEST(DmaCopy, InvalidatesDestinationInLlc)
{
    MemorySystem sys(cfgWith(8e9));
    Region dst = sys.allocateIn(MemPool::Dram, kMiB, "dst");
    Region src = sys.allocateIn(MemPool::Nvram, kMiB, "src");
    sys.submit({0, CpuOp::Load, dst.base, kLineSize});  // cache dst line
    ASSERT_TRUE(sys.llc().resident(dst.base));
    sys.dmaCopy(dst.base, src.base, kLineSize);
    EXPECT_FALSE(sys.llc().resident(dst.base));
}

TEST(DmaCopy, EngineBandwidthBoundsTime)
{
    // With absurdly slow engines the copy time is engine-bound and
    // linear in size.
    MemorySystem sys(cfgWith(1e6, 1));
    Region src = sys.allocateIn(MemPool::Nvram, kMiB, "src");
    Region dst = sys.allocateIn(MemPool::Dram, kMiB, "dst");
    double t0 = sys.now();
    sys.dmaCopy(dst.base, src.base, kMiB);
    sys.quiesce();
    double expected = 2.0 * kMiB / 1e6;  // read + write bytes
    EXPECT_NEAR(sys.now() - t0, expected, expected * 0.05);
}

TEST(DmaCopy, OverlapsWithComputeUnlikeCpuMoves)
{
    // A copy plus an equal-length compute phase: DMA overlaps (total
    // max(copy, compute)), CPU streaming serializes into the demand
    // model.
    Bytes n = 4 * kMiB;
    double compute = 0.01;

    auto run = [&](bool dma) {
        MemorySystem sys(cfgWith(20e9, 4));
        Region src = sys.allocateIn(MemPool::Nvram, n, "src");
        Region dst = sys.allocateIn(MemPool::Dram, n, "dst");
        sys.setActiveThreads(4);
        if (dma) {
            sys.dmaCopy(dst.base, src.base, n);
            sys.addComputeTime(compute);
        } else {
            for (Addr off = 0; off < n; off += kLineSize) {
                sys.touchLine(0, CpuOp::Load, src.base + off);
                sys.touchLine(0, CpuOp::NtStore, dst.base + off);
            }
            sys.addComputeTime(compute);
        }
        sys.quiesce();
        return sys.now();
    };

    double t_dma = run(true);
    double t_cpu = run(false);
    // DMA run is dominated by the compute floor.
    EXPECT_NEAR(t_dma, compute, compute * 0.2);
    EXPECT_GT(t_cpu, t_dma);
}

TEST(DmaAutoTm, DmaMovesSpeedUpSpillHeavyTraining)
{
    using namespace nvsim::dnn;
    ComputeGraph g = buildDenseNet264(1536);

    auto run = [&](bool use_dma, double engine_bw) {
        SystemConfig cfg;
        cfg.mode = MemoryMode::OneLm;
        cfg.scale = 1u << 20;
        cfg.epochBytes = 16 * kKiB;
        cfg.dmaEngines = 4;
        cfg.dmaEngineBandwidth = engine_bw;
        MemorySystem sys(cfg);
        AutoTmConfig acfg;
        acfg.exec.threads = 8;
        acfg.exec.chunkBytes = 16 * kKiB;
        acfg.useDma = use_dma;
        AutoTmExecutor ex(sys, g, acfg);
        IterationResult r = ex.runIteration();
        EXPECT_GT(ex.stats().movesToNvram, 0u)
            << "test requires a spill-heavy run";
        return r.seconds;
    };

    double cpu_moves = run(false, 8e9);
    double dma_fast = run(true, 20e9);
    // High-bandwidth engines overlap movement with compute: faster.
    EXPECT_LT(dma_fast, cpu_moves);
}
