/**
 * @file
 * Tests for the parallel sweep runner: work actually spreads across the
 * pool, results come back in task-index order regardless of completion
 * order, exceptions propagate, and jobs=1 degenerates to an inline
 * serial loop.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/sweep.hh"

using nvsim::exec::hardwareJobs;
using nvsim::exec::SweepRunner;

TEST(SweepRunner, HardwareJobsIsPositive)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(SweepRunner, MapCollectsResultsInIndexOrder)
{
    SweepRunner pool(4);
    std::vector<int> out = pool.map<int>(
        37, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 37u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(SweepRunner, AdversarialDurationsStillCollectInOrder)
{
    // Early tasks sleep longest, so completion order is roughly the
    // reverse of the task order; collection must still be by index.
    SweepRunner pool(4);
    std::vector<std::size_t> completion;
    std::mutex m;
    const std::size_t n = 12;
    std::vector<int> out = pool.map<int>(n, [&](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2 * (n - i)));
        {
            std::lock_guard<std::mutex> lock(m);
            completion.push_back(i);
        }
        return static_cast<int>(i) + 100;
    });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 100);
    // Sanity: completion order was in fact scrambled (some later task
    // finished before some earlier one).
    ASSERT_EQ(completion.size(), n);
    bool scrambled = false;
    for (std::size_t i = 1; i < completion.size(); ++i)
        scrambled = scrambled || completion[i] < completion[i - 1];
    EXPECT_TRUE(scrambled);
}

TEST(SweepRunner, WorkSpreadsAcrossThreads)
{
    SweepRunner pool(4);
    std::mutex m;
    std::set<std::thread::id> ids;
    std::atomic<int> barrier{0};
    pool.forEach(4, [&](std::size_t) {
        // Hold every task open until all four have started, forcing
        // them onto distinct workers.
        ++barrier;
        while (barrier.load() < 4)
            std::this_thread::yield();
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(ids.size(), 4u);
    // The submitting thread stays out of the task loop when a pool is
    // active.
    EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(SweepRunner, JobsOneRunsInlineInOrder)
{
    SweepRunner pool(1);
    std::vector<std::size_t> order;
    std::thread::id self = std::this_thread::get_id();
    pool.forEach(8, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepRunner, ExceptionPropagatesLowestIndexFirst)
{
    SweepRunner pool(4);
    std::atomic<int> ran{0};
    try {
        pool.forEach(10, [&](std::size_t i) {
            ++ran;
            if (i == 7)
                throw std::runtime_error("task 7");
            if (i == 3)
                throw std::runtime_error("task 3");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 3");
    }
    // A failing task does not cancel the rest of the batch.
    EXPECT_EQ(ran.load(), 10);
}

TEST(SweepRunner, ReusableAcrossBatches)
{
    SweepRunner pool(3);
    for (int round = 0; round < 5; ++round) {
        std::vector<int> out = pool.map<int>(
            7, [&](std::size_t i) { return round * 10 + static_cast<int>(i); });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], round * 10 + static_cast<int>(i));
    }
}

TEST(SweepRunner, ZeroTasksIsANoOp)
{
    SweepRunner pool(4);
    std::vector<int> out = pool.map<int>(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(SweepRunner, DefaultJobsUsesHardwareConcurrency)
{
    SweepRunner pool(0);
    EXPECT_EQ(pool.jobs(), hardwareJobs());
}
