/**
 * @file
 * Tests for the parallel sweep runner: work actually spreads across the
 * pool, results come back in task-index order regardless of completion
 * order, exceptions propagate, and jobs=1 degenerates to an inline
 * serial loop.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "exec/sweep.hh"

using nvsim::exec::hardwareJobs;
using nvsim::exec::SweepRunner;

TEST(SweepRunner, HardwareJobsIsPositive)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(SweepRunner, MapCollectsResultsInIndexOrder)
{
    SweepRunner pool(4);
    std::vector<int> out = pool.map<int>(
        37, [](std::size_t i) { return static_cast<int>(i * i); });
    ASSERT_EQ(out.size(), 37u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], static_cast<int>(i * i));
}

TEST(SweepRunner, AdversarialDurationsStillCollectInOrder)
{
    // Early tasks sleep longest, so completion order is roughly the
    // reverse of the task order; collection must still be by index.
    SweepRunner pool(4);
    std::vector<std::size_t> completion;
    std::mutex m;
    const std::size_t n = 12;
    std::vector<int> out = pool.map<int>(n, [&](std::size_t i) {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(2 * (n - i)));
        {
            std::lock_guard<std::mutex> lock(m);
            completion.push_back(i);
        }
        return static_cast<int>(i) + 100;
    });
    ASSERT_EQ(out.size(), n);
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], static_cast<int>(i) + 100);
    // Sanity: completion order was in fact scrambled (some later task
    // finished before some earlier one).
    ASSERT_EQ(completion.size(), n);
    bool scrambled = false;
    for (std::size_t i = 1; i < completion.size(); ++i)
        scrambled = scrambled || completion[i] < completion[i - 1];
    EXPECT_TRUE(scrambled);
}

TEST(SweepRunner, WorkSpreadsAcrossThreads)
{
    SweepRunner pool(4);
    std::mutex m;
    std::set<std::thread::id> ids;
    std::atomic<int> barrier{0};
    pool.forEach(4, [&](std::size_t) {
        // Hold every task open until all four have started, forcing
        // them onto distinct workers.
        ++barrier;
        while (barrier.load() < 4)
            std::this_thread::yield();
        std::lock_guard<std::mutex> lock(m);
        ids.insert(std::this_thread::get_id());
    });
    EXPECT_EQ(ids.size(), 4u);
    // The submitting thread stays out of the task loop when a pool is
    // active.
    EXPECT_EQ(ids.count(std::this_thread::get_id()), 0u);
}

TEST(SweepRunner, JobsOneRunsInlineInOrder)
{
    SweepRunner pool(1);
    std::vector<std::size_t> order;
    std::thread::id self = std::this_thread::get_id();
    pool.forEach(8, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 8u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(SweepRunner, ExceptionPropagatesLowestIndexFirst)
{
    SweepRunner pool(4);
    std::atomic<int> ran{0};
    try {
        pool.forEach(10, [&](std::size_t i) {
            ++ran;
            if (i == 7)
                throw std::runtime_error("task 7");
            if (i == 3)
                throw std::runtime_error("task 3");
        });
        FAIL() << "expected an exception";
    } catch (const std::runtime_error &e) {
        EXPECT_STREQ(e.what(), "task 3");
    }
    // A failing task does not cancel the rest of the batch.
    EXPECT_EQ(ran.load(), 10);
}

TEST(SweepRunner, ReusableAcrossBatches)
{
    SweepRunner pool(3);
    for (int round = 0; round < 5; ++round) {
        std::vector<int> out = pool.map<int>(
            7, [&](std::size_t i) { return round * 10 + static_cast<int>(i); });
        for (std::size_t i = 0; i < out.size(); ++i)
            EXPECT_EQ(out[i], round * 10 + static_cast<int>(i));
    }
}

TEST(SweepRunner, ZeroTasksIsANoOp)
{
    SweepRunner pool(4);
    std::vector<int> out = pool.map<int>(0, [](std::size_t) { return 1; });
    EXPECT_TRUE(out.empty());
}

TEST(SweepRunner, DefaultJobsUsesHardwareConcurrency)
{
    SweepRunner pool(0);
    EXPECT_EQ(pool.jobs(), hardwareJobs());
}

// --- Intra-run channel sharding (exec/shard.hh) ---------------------------
//
// The contract under test: a MemorySystem run produces byte-identical
// results at any --shard-threads=N — counters, simulated clock (exact
// floating point, not approximate), fault-event log, poison state,
// write amplification and the per-epoch trace.

#include "core/rng.hh"
#include "exec/shard.hh"
#include "sys/memsys.hh"

using namespace nvsim;
using nvsim::exec::ShardPool;

TEST(ShardPool, RunsEveryIndexExactlyOnce)
{
    ShardPool pool(4);
    std::vector<std::atomic<int>> hits(53);
    for (auto &h : hits)
        h = 0;
    pool.run(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (auto &h : hits)
        EXPECT_EQ(h.load(), 1);
}

TEST(ShardPool, SingleThreadRunsInlineInOrder)
{
    ShardPool pool(1);
    EXPECT_EQ(pool.threads(), 1u);
    std::vector<std::size_t> order;
    std::thread::id self = std::this_thread::get_id();
    pool.run(9, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), self);
        order.push_back(i);
    });
    ASSERT_EQ(order.size(), 9u);
    for (std::size_t i = 0; i < order.size(); ++i)
        EXPECT_EQ(order[i], i);
}

TEST(ShardPool, ReusableAcrossEpochBatches)
{
    ShardPool pool(3);
    for (int round = 0; round < 50; ++round) {
        std::atomic<int> sum{0};
        pool.run(7, [&](std::size_t i) { sum += static_cast<int>(i); });
        EXPECT_EQ(sum.load(), 21);
    }
}

namespace
{

/** Everything a run can output, for exact comparison. */
struct RunDigest
{
    std::array<std::uint64_t, PerfCounters::numFields()> counters{};
    double now = 0;
    double amplification = 0;
    std::uint64_t llcHits = 0;
    std::uint64_t llcMisses = 0;
    std::size_t poisoned = 0;
    std::uint64_t poisonCreated = 0;
    std::uint64_t poisonPropagated = 0;
    std::uint64_t poisonCleared = 0;
    std::vector<FaultLog::Event> events;
    std::vector<std::string> traceNames;
    std::vector<Sample> traceSamples;
};

RunDigest
digest(MemorySystem &sys)
{
    RunDigest d;
    d.counters = sys.counters().asArray();
    d.now = sys.now();
    d.amplification = sys.nvramWriteAmplification();
    d.llcHits = sys.llc().hitCount();
    d.llcMisses = sys.llc().missCount();
    d.poisoned = sys.poisonedLines();
    d.poisonCreated = sys.faultLog().poisonCreated();
    d.poisonPropagated = sys.faultLog().poisonPropagated();
    d.poisonCleared = sys.faultLog().poisonCleared();
    d.events = sys.faultLog().events();
    for (const std::string &name : sys.trace().names()) {
        d.traceNames.push_back(name);
        const auto &ring = sys.trace().channel(name);
        for (std::size_t i = 0; i < ring.size(); ++i)
            d.traceSamples.push_back(ring[i]);
    }
    return d;
}

void
expectIdentical(const RunDigest &a, const RunDigest &b)
{
    EXPECT_EQ(a.counters, b.counters);
    EXPECT_EQ(a.now, b.now);  // exact: bitwise-equal FP accumulation
    EXPECT_EQ(a.amplification, b.amplification);
    EXPECT_EQ(a.llcHits, b.llcHits);
    EXPECT_EQ(a.llcMisses, b.llcMisses);
    EXPECT_EQ(a.poisoned, b.poisoned);
    EXPECT_EQ(a.poisonCreated, b.poisonCreated);
    EXPECT_EQ(a.poisonPropagated, b.poisonPropagated);
    EXPECT_EQ(a.poisonCleared, b.poisonCleared);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i) {
        EXPECT_EQ(a.events[i].time, b.events[i].time);
        EXPECT_EQ(a.events[i].channel, b.events[i].channel);
        EXPECT_EQ(a.events[i].kind, b.events[i].kind);
        EXPECT_EQ(a.events[i].addr, b.events[i].addr);
    }
    EXPECT_EQ(a.traceNames, b.traceNames);
    ASSERT_EQ(a.traceSamples.size(), b.traceSamples.size());
    for (std::size_t i = 0; i < a.traceSamples.size(); ++i) {
        EXPECT_EQ(a.traceSamples[i].time, b.traceSamples[i].time);
        EXPECT_EQ(a.traceSamples[i].value, b.traceSamples[i].value);
    }
}

SystemConfig
shardConfig(MemoryMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = 4096;  // 32 GiB DRAM DIMM -> 8 MiB, NVRAM -> 128 MiB
    cfg.epochBytes = 64 * kKiB;
    return cfg;
}

/** Mixed demand kinds, LLC hits among misses, and a DMA copy. */
void
driveMixed(MemorySystem &sys)
{
    Region a = sys.allocate(768 * kKiB, "a");
    Region b = sys.allocate(256 * kKiB, "b");
    sys.setActiveThreads(4);
    sys.submit({0, CpuOp::Load, a.base, a.size});
    sys.submit({1, CpuOp::Store, b.base, b.size});
    // Re-touch a prefix: LLC hits interleave with misses, so the
    // hit-latency markers must replay in order.
    sys.submit({0, CpuOp::Load, a.base, 96 * kKiB});
    sys.submit({2, CpuOp::NtStore, a.base + 128 * kKiB, 128 * kKiB});
    sys.dmaCopy(b.base, a.base, 32 * kKiB);
    sys.submit({3, CpuOp::Load, b.base, b.size});
    sys.quiesce();
}

template <typename Drive>
RunDigest
runAt(const SystemConfig &cfg, unsigned shard_threads, Drive &&drive,
      bool per_line = false)
{
    MemorySystem sys(cfg);
    if (per_line)
        sys.setBatchedAccess(false);
    sys.setShardThreads(shard_threads);
    drive(sys);
    return digest(sys);
}

} // namespace

TEST(ShardDeterminism, TwoLmBatchedByteIdenticalAcrossThreadCounts)
{
    SystemConfig cfg = shardConfig(MemoryMode::TwoLm);
    RunDigest base = runAt(cfg, 1, driveMixed);
    for (unsigned t : {2u, 4u, 7u})
        expectIdentical(base, runAt(cfg, t, driveMixed));
}

TEST(ShardDeterminism, OneLmBatchedByteIdenticalAcrossThreadCounts)
{
    SystemConfig cfg = shardConfig(MemoryMode::OneLm);
    RunDigest base = runAt(cfg, 1, driveMixed);
    for (unsigned t : {2u, 4u, 7u})
        expectIdentical(base, runAt(cfg, t, driveMixed));
}

TEST(ShardDeterminism, PerLineEngineShardsIdentically)
{
    SystemConfig cfg = shardConfig(MemoryMode::TwoLm);
    RunDigest base = runAt(cfg, 1, driveMixed, /*per_line=*/true);
    expectIdentical(base, runAt(cfg, 4, driveMixed, /*per_line=*/true));
    // And the engines agree with each other under sharding.
    expectIdentical(base, runAt(cfg, 4, driveMixed, /*per_line=*/false));
}

TEST(ShardDeterminism, FaultAndMaintenanceReplayIsExact)
{
    for (MemoryMode mode : {MemoryMode::TwoLm, MemoryMode::OneLm}) {
        SystemConfig cfg = shardConfig(mode);
        cfg.fault.seed = 99;
        cfg.fault.nvramReadCorrectable = 0.02;
        cfg.fault.nvramReadUncorrectable = 0.002;
        cfg.fault.tagEccUncorrectable = 0.001;
        cfg.fault.dramCorrectable = 0.005;
        cfg.maintenance.refresh.trefi = 7.8e-6;
        cfg.maintenance.scrub.interval = 1e-4;
        cfg.maintenance.scrub.correctable = 0.01;
        cfg.maintenance.scrub.uncorrectable = 0.001;
        RunDigest base = runAt(cfg, 1, driveMixed);
        for (unsigned t : {4u, 7u})
            expectIdentical(base, runAt(cfg, t, driveMixed));
        // The fault paths must actually have fired for this to mean
        // anything.
        EXPECT_FALSE(base.events.empty());
    }
}

TEST(ShardDeterminism, FuzzReplayAtRandomThreadCounts)
{
    SystemConfig cfg = shardConfig(MemoryMode::TwoLm);
    cfg.fault.seed = 7;
    cfg.fault.nvramReadCorrectable = 0.01;
    cfg.fault.nvramReadUncorrectable = 0.001;

    auto drive = [](MemorySystem &sys) {
        Region a = sys.allocate(512 * kKiB, "a");
        Region b = sys.allocate(512 * kKiB, "b");
        std::uint64_t s = 0x5eed;
        for (int round = 0; round < 120; ++round) {
            std::uint64_t r = splitmix64(s);
            const Region &reg = (r & 1) ? a : b;
            Addr off = (r >> 1) % reg.size;
            Bytes len = 64 + (r >> 24) % (16 * kKiB);
            if (off + len > reg.size)
                len = reg.size - off;
            unsigned tid = (r >> 8) % 4;
            switch ((r >> 4) % 8) {
              case 0:
              case 1:
              case 2:
                sys.submit({tid, CpuOp::Load, reg.base + off, len});
                break;
              case 3:
              case 4:
                sys.submit({tid, CpuOp::Store, reg.base + off, len});
                break;
              case 5:
                sys.submit({tid, CpuOp::NtStore, reg.base + off,
                                len});
                break;
              case 6:
                sys.dmaCopy(b.base + off % (reg.size / 2),
                            a.base + off % (reg.size / 2), len);
                break;
              case 7:
                sys.advanceEpoch();
                break;
            }
            if (round == 60)
                sys.offlineChannel(2);
        }
        sys.quiesce();
    };

    RunDigest base = runAt(cfg, 1, drive);
    std::uint64_t s = 0xf00d;
    for (int i = 0; i < 4; ++i) {
        unsigned t = 2 + splitmix64(s) % 7;
        expectIdentical(base, runAt(cfg, t, drive));
    }
}

TEST(ShardDeterminism, ThreadCountCanChangeMidRun)
{
    SystemConfig cfg = shardConfig(MemoryMode::TwoLm);
    RunDigest base = runAt(cfg, 1, driveMixed);

    MemorySystem sys(cfg);
    Region a = sys.allocate(768 * kKiB, "a");
    Region b = sys.allocate(256 * kKiB, "b");
    sys.setActiveThreads(4);
    sys.setShardThreads(4);
    sys.submit({0, CpuOp::Load, a.base, a.size});
    sys.setShardThreads(2);  // joins the open batch, then re-pools
    sys.submit({1, CpuOp::Store, b.base, b.size});
    sys.submit({0, CpuOp::Load, a.base, 96 * kKiB});
    sys.setShardThreads(1);  // back to the immediate engine
    sys.submit({2, CpuOp::NtStore, a.base + 128 * kKiB, 128 * kKiB});
    sys.setShardThreads(5);
    sys.dmaCopy(b.base, a.base, 32 * kKiB);
    sys.submit({3, CpuOp::Load, b.base, b.size});
    sys.quiesce();
    expectIdentical(base, digest(sys));
}

TEST(ShardDeterminism, MidEpochReadsJoinTheBarrier)
{
    SystemConfig cfg = shardConfig(MemoryMode::TwoLm);

    MemorySystem serial(cfg);
    MemorySystem sharded(cfg);
    sharded.setShardThreads(4);
    for (MemorySystem *sys : {&serial, &sharded}) {
        Region a = sys->allocate(256 * kKiB, "a");
        sys->submit({0, CpuOp::Load, a.base, a.size});
    }
    // No quiesce: both systems sit mid-epoch with work in flight. The
    // accessors must join the shard barrier and agree exactly.
    EXPECT_EQ(serial.counters().asArray(),
              sharded.counters().asArray());
    EXPECT_EQ(serial.nvramWriteAmplification(),
              sharded.nvramWriteAmplification());
    EXPECT_EQ(serial.channel(0).counters().asArray(),
              sharded.channel(0).counters().asArray());
    serial.quiesce();
    sharded.quiesce();
    expectIdentical(digest(serial), digest(sharded));
}
