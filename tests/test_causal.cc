/**
 * @file
 * Causal-tracer tests: the per-request blame trees behind the
 * amplification attribution (obs/causal.hh). Covers the cause
 * taxonomy against Table I, Figure-3 ordering of the spans, seeded
 * sampling determinism (same seed => byte-identical folded stacks),
 * agreement between blame-tree cause counts and the PerfCounters
 * deltas on the paper's dirty-miss workload, warmup-reset semantics,
 * Perfetto flow events, and the no-observer bit-identity guarantee.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "imc/channel.hh"
#include "kernels/kernels.hh"
#include "obs/causal.hh"
#include "obs/observer.hh"
#include "obs/session.hh"

using namespace nvsim;

// --------------------------------------------------------------------
// Cause taxonomy and per-class breakdowns (pure unit level)

TEST(CausalNames, CauseAndClassNames)
{
    EXPECT_STREQ(accessCauseName(AccessCause::TagProbe), "tag_probe");
    EXPECT_STREQ(accessCauseName(AccessCause::CacheFillRead),
                 "cache_fill_read");
    EXPECT_STREQ(accessCauseName(AccessCause::CacheInsertWrite),
                 "cache_insert_write");
    EXPECT_STREQ(accessCauseName(AccessCause::DataWrite), "data_write");
    EXPECT_STREQ(accessCauseName(AccessCause::DirtyWriteback),
                 "dirty_writeback");
    EXPECT_STREQ(accessCauseName(AccessCause::DdoElideWrite),
                 "ddo_elide_write");
    EXPECT_STREQ(accessCauseName(AccessCause::DirectAccess),
                 "direct_access");

    EXPECT_STREQ(obs::requestClassName(MemRequestKind::LlcRead,
                                       CacheOutcome::Hit),
                 "read_hit");
    EXPECT_STREQ(obs::requestClassName(MemRequestKind::LlcWrite,
                                       CacheOutcome::MissDirty),
                 "write_miss_dirty");
    EXPECT_STREQ(obs::requestClassName(MemRequestKind::LlcWrite,
                                       CacheOutcome::DdoHit),
                 "ddo_write");
    EXPECT_STREQ(obs::requestClassName(MemRequestKind::LlcRead,
                                       CacheOutcome::Uncached),
                 "read_direct");
}

namespace
{

CacheResult
directedResult(CacheOutcome outcome, bool filled, bool wrote_back)
{
    CacheResult cr;
    cr.outcome = outcome;
    cr.filled = filled;
    cr.wroteBack = wrote_back;
    return cr;
}

std::uint64_t
causeCount(const CausalBreakdown &b, AccessCause cause)
{
    std::uint64_t n = 0;
    for (unsigned i = 0; i < b.count; ++i)
        if (b.spans[i].cause == cause)
            ++n;
    return n;
}

} // namespace

TEST(CausalBreakdown, DirtyWriteMissPaysAllFiveCausesInFig3Order)
{
    // Table I row 6: a dirty LLC write miss costs 5 device accesses,
    // in the Figure 3 miss-handler order.
    ChannelParams p;
    CausalBreakdown b = causalBreakdown2lm(
        MemRequestKind::LlcWrite,
        directedResult(CacheOutcome::MissDirty, true, true), p);
    ASSERT_EQ(b.count, 5u);
    EXPECT_EQ(b.spans[0].cause, AccessCause::TagProbe);
    EXPECT_EQ(b.spans[0].device, MemPool::Dram);
    EXPECT_EQ(b.spans[1].cause, AccessCause::DirtyWriteback);
    EXPECT_EQ(b.spans[1].device, MemPool::Nvram);
    EXPECT_EQ(b.spans[2].cause, AccessCause::CacheFillRead);
    EXPECT_EQ(b.spans[2].device, MemPool::Nvram);
    EXPECT_EQ(b.spans[3].cause, AccessCause::CacheInsertWrite);
    EXPECT_EQ(b.spans[3].device, MemPool::Dram);
    EXPECT_EQ(b.spans[4].cause, AccessCause::DataWrite);
    EXPECT_EQ(b.spans[4].device, MemPool::Dram);
    EXPECT_DOUBLE_EQ(b.spans[1].latency, p.nvram.writeLatency);
    EXPECT_DOUBLE_EQ(b.spans[2].latency, p.nvram.readLatency);
}

TEST(CausalBreakdown, SpanCountsReproduceTableOne)
{
    ChannelParams p;
    struct Row
    {
        MemRequestKind kind;
        CacheResult cr;
        unsigned accesses;
    };
    const Row rows[] = {
        // Table I: read hit 1, read miss clean 3, read miss dirty 4,
        // write hit 2, write miss clean 4, DDO write 1; plus the
        // write-no-allocate ablation's 2-access write miss.
        {MemRequestKind::LlcRead,
         directedResult(CacheOutcome::Hit, false, false), 1},
        {MemRequestKind::LlcRead,
         directedResult(CacheOutcome::MissClean, true, false), 3},
        {MemRequestKind::LlcRead,
         directedResult(CacheOutcome::MissDirty, true, true), 4},
        {MemRequestKind::LlcWrite,
         directedResult(CacheOutcome::Hit, false, false), 2},
        {MemRequestKind::LlcWrite,
         directedResult(CacheOutcome::MissClean, true, false), 4},
        {MemRequestKind::LlcWrite,
         directedResult(CacheOutcome::DdoHit, false, false), 1},
        {MemRequestKind::LlcWrite,
         directedResult(CacheOutcome::MissClean, false, true), 2},
    };
    for (const Row &r : rows) {
        CausalBreakdown b = causalBreakdown2lm(r.kind, r.cr, p);
        EXPECT_EQ(b.count, r.accesses)
            << obs::requestClassName(r.kind, r.cr.outcome);
        // Every span is one 64 B transaction, so per-cause counts sum
        // to the request's amplification.
        std::uint64_t sum = 0;
        for (unsigned c = 0; c < kNumAccessCauses; ++c)
            sum += causeCount(b, static_cast<AccessCause>(c));
        EXPECT_EQ(sum, r.accesses);
    }

    // The no-allocate write miss goes tag probe + NVRAM data write —
    // no fill, no insert, and crucially no "writeback" label for what
    // is really the demand store's own data transfer.
    CausalBreakdown na = causalBreakdown2lm(
        MemRequestKind::LlcWrite,
        directedResult(CacheOutcome::MissClean, false, true), p);
    EXPECT_EQ(causeCount(na, AccessCause::DataWrite), 1u);
    EXPECT_EQ(causeCount(na, AccessCause::DirtyWriteback), 0u);
    EXPECT_EQ(na.spans[1].device, MemPool::Nvram);
}

// --------------------------------------------------------------------
// Sampling determinism

TEST(CausalTracer, SamplingIsPhaseLockedToTheSeed)
{
    obs::CausalOptions opts;
    opts.samplePeriod = 4;
    opts.seed = 7;  // phase = 7 % 4 = 3
    obs::CausalTracer t(opts, nullptr);
    std::string pattern;
    for (int i = 0; i < 12; ++i)
        pattern += t.shouldSample() ? '1' : '0';
    EXPECT_EQ(pattern, "000100010001");
    EXPECT_EQ(t.demands(), 12u);
}

namespace
{

SystemConfig
smallCfg()
{
    SystemConfig c;
    c.mode = MemoryMode::TwoLm;
    c.scale = 8192;
    c.epochBytes = 64 * kKiB;
    return c;
}

/** The Figure 4b dirty-miss workload: NT stores over 2x capacity. */
KernelResult
dirtyMissRun(MemorySystem &sys, const Region &arr, unsigned threads)
{
    KernelConfig k;
    k.op = KernelOp::WriteOnly;
    k.nontemporal = true;
    k.threads = threads;
    return runKernel(sys, arr, k);
}

std::vector<std::string>
tracedDirtyMissFolded(std::uint64_t seed, std::uint64_t period)
{
    MemorySystem sys(smallCfg());
    Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
    primeDirty(sys, arr, 4);
    sys.resetCounters();

    obs::Observer obs;
    obs::CausalOptions copts;
    copts.samplePeriod = period;
    copts.seed = seed;
    obs.enableCausal(copts);
    sys.attachObserver(&obs);
    dirtyMissRun(sys, arr, 4);
    sys.detachObserver();

    std::vector<std::string> folded;
    obs.causal()->foldedLines(folded, "");
    return folded;
}

} // namespace

TEST(CausalTracer, SameSeedProducesIdenticalFoldedStacks)
{
    std::vector<std::string> a = tracedDirtyMissFolded(42, 16);
    std::vector<std::string> b = tracedDirtyMissFolded(42, 16);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    // The folded stacks blame the right Fig-3 steps: the NT store
    // stream is dominated by dirty write misses.
    bool saw_dirty_wb = false;
    for (const std::string &line : a)
        if (line.find("write_miss_dirty;dirty_writeback ") !=
            std::string::npos)
            saw_dirty_wb = true;
    EXPECT_TRUE(saw_dirty_wb);

    // A different phase still samples ~1-in-N of the same demands.
    std::vector<std::string> c = tracedDirtyMissFolded(43, 16);
    ASSERT_FALSE(c.empty());
}

// --------------------------------------------------------------------
// Blame-tree counts vs PerfCounters on the dirty-miss workload

TEST(CausalTracer, BlameTreeCountsMatchPerfCounters)
{
    MemorySystem sys(smallCfg());
    Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
    primeDirty(sys, arr, 4);
    sys.resetCounters();

    obs::Observer obs;
    obs::CausalOptions copts;
    copts.samplePeriod = 1;  // sample every demand request
    obs.enableCausal(copts);
    sys.attachObserver(&obs);

    PerfCounters before = sys.counters();
    KernelResult r = dirtyMissRun(sys, arr, 4);
    sys.detachObserver();
    PerfCounters d = sys.counters().delta(before);
    ASSERT_GT(d.tagMissDirty, 0u);

    obs::CausalTracer &t = *obs.causal();
    EXPECT_EQ(t.sampled(), t.demands());
    EXPECT_EQ(t.demands(), d.demand());

    // Aggregate the folded stacks per (class, cause).
    std::vector<std::string> folded;
    t.foldedLines(folded, "");
    std::map<std::string, std::uint64_t> byClassCause;
    std::uint64_t total = 0;
    for (const std::string &line : folded) {
        std::size_t space = line.rfind(' ');
        ASSERT_NE(space, std::string::npos) << line;
        std::uint64_t n = std::stoull(line.substr(space + 1));
        std::size_t ctx_end = line.find(';');
        ASSERT_NE(ctx_end, std::string::npos) << line;
        byClassCause[line.substr(ctx_end + 1, space - ctx_end - 1)] +=
            n;
        total += n;
    }

    // With every request sampled, the blame tree is a lossless
    // re-partition of the device traffic: per-cause counts must equal
    // the PerfCounters deltas exactly.
    EXPECT_EQ(total,
              d.dramRead + d.dramWrite + d.nvramRead + d.nvramWrite);
    EXPECT_EQ(byClassCause["write_miss_dirty;dirty_writeback"],
              d.nvramWrite);
    EXPECT_EQ(byClassCause["write_miss_dirty;cache_fill_read"] +
                  byClassCause["write_miss_clean;cache_fill_read"],
              d.nvramRead);
    // Exactly 5 accesses per dirty write miss (Table I row 6): every
    // dirty miss contributes one of each of its five causes.
    EXPECT_EQ(byClassCause["write_miss_dirty;dirty_writeback"],
              d.tagMissDirty);
    EXPECT_EQ(byClassCause["write_miss_dirty;tag_probe"],
              d.tagMissDirty);
    EXPECT_EQ(byClassCause["write_miss_dirty;cache_fill_read"],
              d.tagMissDirty);
    EXPECT_EQ(byClassCause["write_miss_dirty;cache_insert_write"],
              d.tagMissDirty);
    EXPECT_EQ(byClassCause["write_miss_dirty;data_write"],
              d.tagMissDirty);
    EXPECT_GT(r.counters.tagMissDirty, 0u);
}

// --------------------------------------------------------------------
// Warmup reset and determinism of the measured region

TEST(CausalTracer, ResetCountersDropsWarmupAndReseeds)
{
    // A run with a warmup pass + resetCounters must attribute exactly
    // what a fresh run of the measured region attributes.
    std::vector<std::string> fresh = tracedDirtyMissFolded(9, 8);

    MemorySystem sys(smallCfg());
    Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
    primeDirty(sys, arr, 4);
    sys.resetCounters();

    obs::Observer obs;
    obs::CausalOptions copts;
    copts.samplePeriod = 8;
    copts.seed = 9;
    obs.enableCausal(copts);
    sys.attachObserver(&obs);
    dirtyMissRun(sys, arr, 2);  // warmup, to be discarded
    sys.resetCounters();
    dirtyMissRun(sys, arr, 4);  // measured region
    sys.detachObserver();

    std::vector<std::string> warm;
    obs.causal()->foldedLines(warm, "");
    EXPECT_EQ(warm, fresh);
}

// --------------------------------------------------------------------
// No-observer bit-identity

TEST(CausalTracer, ObservedRunLeavesSimulationUnchanged)
{
    auto run = [](bool observed) {
        MemorySystem sys(smallCfg());
        Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
        primeDirty(sys, arr, 4);
        sys.resetCounters();
        obs::Observer obs;
        if (observed) {
            obs::CausalOptions copts;
            copts.samplePeriod = 4;
            obs.enableCausal(copts);
            sys.attachObserver(&obs);
        }
        dirtyMissRun(sys, arr, 4);
        if (observed)
            sys.detachObserver();
        return std::make_pair(sys.counters(), sys.now());
    };
    auto plain = run(false);
    auto traced = run(true);
    EXPECT_DOUBLE_EQ(plain.second, traced.second);
    bool equal = true;
    plain.first.forEachField([&](const char *name, const char *,
                                 std::uint64_t v) {
        std::uint64_t other = 0;
        traced.first.forEachField(
            [&](const char *n2, const char *, std::uint64_t v2) {
                if (std::string(name) == n2)
                    other = v2;
            });
        if (v != other)
            equal = false;
    });
    EXPECT_TRUE(equal);
}

// --------------------------------------------------------------------
// Session plumbing: attribution JSON, folded file, Perfetto flows

TEST(CausalSession, WritesAttributionFoldedAndFlowFiles)
{
    std::string dir = ::testing::TempDir();
    obs::SessionOptions opts;
    opts.perfettoPath = dir + "causal_trace.json";
    opts.causalJsonPath = dir + "causal_attr.json";
    opts.foldedPath = dir + "causal_folded.txt";
    opts.causalSamplePeriod = 4;
    opts.causalSeed = 11;
    {
        obs::Session session(opts);
        MemorySystem sys(smallCfg());
        Region arr = sys.allocate(sys.config().dramTotal() * 2, "arr");
        primeDirty(sys, arr, 2);
        sys.resetCounters();
        if (obs::Observer *o = session.beginRun("4b_nt_dirty"))
            sys.attachObserver(o);
        dirtyMissRun(sys, arr, 2);
        session.endRun();
        session.write();
    }

    auto slurp = [](const std::string &path) {
        std::ifstream in(path);
        EXPECT_TRUE(in.good()) << path;
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };

    std::string attr = slurp(opts.causalJsonPath);
    EXPECT_NE(attr.find("\"schema\":\"nvsim-causal-v1\""),
              std::string::npos);
    EXPECT_NE(attr.find("\"label\":\"4b_nt_dirty\""),
              std::string::npos);
    EXPECT_NE(attr.find("\"write_miss_dirty\""), std::string::npos);
    EXPECT_NE(attr.find("\"dirty_writeback\""), std::string::npos);
    EXPECT_NE(attr.find("\"exemplars\""), std::string::npos);

    std::string folded = slurp(opts.foldedPath);
    EXPECT_EQ(folded.rfind("4b_nt_dirty;", 0), 0u);
    EXPECT_NE(folded.find(";write_miss_dirty;tag_probe "),
              std::string::npos);

    // The timeline carries flow events binding each exemplar demand
    // span to its induced device spans.
    std::string trace = slurp(opts.perfettoPath);
    EXPECT_NE(trace.find("\"cat\":\"causal\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"s\""), std::string::npos);
    EXPECT_NE(trace.find("\"ph\":\"f\""), std::string::npos);
    EXPECT_NE(trace.find("\"bp\":\"e\""), std::string::npos);
    EXPECT_NE(trace.find("tag_probe@dram"), std::string::npos);
}
