/**
 * @file
 * PerfCounters field-list coverage: the struct's fields, operators and
 * named() view are all generated from NVSIM_PERF_COUNTER_FIELDS, and
 * these tests pin down that no path can drift from the list again.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "imc/counters.hh"

using namespace nvsim;

namespace
{

/** A counter block with every field set to a distinct value. */
PerfCounters
distinct()
{
    PerfCounters c;
    std::uint64_t v = 1;
    c.forEachField([&](const char *, const char *, std::uint64_t &f) {
        f = v;
        v += 10;
    });
    return c;
}

} // namespace

TEST(Counters, NamedCoversEveryField)
{
    PerfCounters c = distinct();
    auto named = c.named();
    EXPECT_EQ(named.size(), PerfCounters::numFields());

    // Every visited field appears under its snake name with its exact
    // value — so named() can never silently omit or alias a counter.
    std::set<std::string> seen;
    c.forEachField(
        [&](const char *name, const char *desc, std::uint64_t &v) {
            auto it = named.find(name);
            ASSERT_NE(it, named.end()) << "named() misses " << name;
            EXPECT_EQ(it->second, v) << name;
            EXPECT_TRUE(seen.insert(name).second)
                << "duplicate field name " << name;
            EXPECT_NE(std::string(desc), "") << name;
        });
    EXPECT_EQ(seen.size(), PerfCounters::numFields());
}

TEST(Counters, FieldListMatchesStructLayout)
{
    // Compile-time guarantee re-checked at runtime for the report: the
    // struct holds exactly the listed uint64 counters, nothing else.
    static_assert(sizeof(PerfCounters) ==
                  PerfCounters::numFields() * sizeof(std::uint64_t));
    EXPECT_EQ(PerfCounters::numFields(), 27u);
}

TEST(Counters, QueueCountersAreInTheList)
{
    // The queued-controller counters ride the same X-macro, so traces,
    // CSV dumps and telemetry get them without extra plumbing.
    PerfCounters c = distinct();
    auto named = c.named();
    for (const char *name : {"queue_wait_ns", "bank_conflicts",
                             "row_buffer_hits", "write_drains"}) {
        EXPECT_EQ(named.count(name), 1u) << name;
    }
}

TEST(Counters, MaintenanceCountersAreInTheList)
{
    // The maintenance counters ride the same X-macro as everything
    // else, so trace channels, CSV dumps and JSON stats get them for
    // free — and a field added outside the list cannot compile (the
    // static_assert above) or pass NamedCoversEveryField.
    PerfCounters c = distinct();
    auto named = c.named();
    for (const char *name :
         {"refresh_slots", "scrub_reads", "scrub_corrected",
          "lines_retired", "targeted_refreshes",
          "maintenance_stall_ns"}) {
        EXPECT_EQ(named.count(name), 1u) << name;
    }
}

TEST(Counters, PlusEqualsCoversEveryField)
{
    PerfCounters a = distinct();
    PerfCounters b = distinct();
    a += b;
    a.forEachField([&](const char *name, const char *,
                       std::uint64_t &v) {
        auto named_b = b.named();
        EXPECT_EQ(v, 2 * named_b.at(name)) << name;
    });
}

TEST(Counters, DeltaCoversEveryField)
{
    PerfCounters a = distinct();
    PerfCounters twice = a;
    twice += a;
    PerfCounters d = twice.delta(a);
    auto named_a = a.named();
    d.forEachField(
        [&](const char *name, const char *, std::uint64_t &v) {
            EXPECT_EQ(v, named_a.at(name)) << name;
        });
}

TEST(Counters, AddOutcomeTouchesTagStats)
{
    PerfCounters c;
    c.addOutcome(MemRequestKind::LlcRead, CacheOutcome::Hit);
    c.addOutcome(MemRequestKind::LlcWrite, CacheOutcome::MissDirty);
    c.addOutcome(MemRequestKind::LlcWrite, CacheOutcome::DdoHit);
    EXPECT_EQ(c.llcReads, 1u);
    EXPECT_EQ(c.llcWrites, 2u);
    EXPECT_EQ(c.tagHit, 1u);
    EXPECT_EQ(c.tagMissDirty, 1u);
    EXPECT_EQ(c.ddoHit, 1u);
    EXPECT_EQ(c.demand(), 3u);
}
