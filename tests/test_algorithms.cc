/**
 * @file
 * Functional-correctness tests for the graph kernels, run against a
 * small simulated machine so the instrumentation path is exercised
 * too.
 */

#include <gtest/gtest.h>

#include "graphs/algorithms.hh"
#include "graphs/generators.hh"

using namespace nvsim;
using namespace nvsim::graphs;

namespace
{

SystemConfig
tinySystem()
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 1u << 16;
    cfg.epochBytes = 32 * kKiB;
    return cfg;
}

GraphRunConfig
runCfg()
{
    GraphRunConfig c;
    c.placement = Placement::TwoLm;
    c.threads = 4;
    c.prRounds = 5;
    c.kcoreK = 2;
    return c;
}

} // namespace

TEST(Algorithms, BfsVisitsReachableComponent)
{
    // Path 0-1-2-3 plus isolated 4; max-degree source is node 1 or 2.
    CsrGraph g = CsrGraph::fromEdges(
        5, {{0, 1}, {1, 2}, {2, 3}}, /*symmetrize=*/true);
    MemorySystem sys(tinySystem());
    GraphWorkload w(sys, g, runCfg());
    GraphRunResult r = w.run(GraphKernel::Bfs);
    EXPECT_EQ(r.answer, 4u);  // all but the isolated node
    EXPECT_GT(r.rounds, 1u);
    EXPECT_GT(r.seconds, 0.0);
}

TEST(Algorithms, CcCountsComponents)
{
    // Components: {0,1,2}, {3,4}, {5}.
    CsrGraph g = CsrGraph::fromEdges(
        6, {{0, 1}, {1, 2}, {3, 4}}, true);
    MemorySystem sys(tinySystem());
    GraphWorkload w(sys, g, runCfg());
    GraphRunResult r = w.run(GraphKernel::Cc);
    EXPECT_EQ(r.answer, 3u);
}

TEST(Algorithms, KCorePeelsTail)
{
    // Triangle 0-1-2 (degree 2 each) plus pendant 3 attached to 0.
    CsrGraph g = CsrGraph::fromEdges(
        4, {{0, 1}, {1, 2}, {2, 0}, {0, 3}}, true);
    GraphRunConfig cfg = runCfg();
    cfg.kcoreK = 2;
    MemorySystem sys(tinySystem());
    GraphWorkload w(sys, g, cfg);
    GraphRunResult r = w.run(GraphKernel::KCore);
    // 2-core: the triangle survives, the pendant is peeled.
    EXPECT_EQ(r.answer, 3u);
}

TEST(Algorithms, PageRankFavorsSinkHub)
{
    // Star: every node points at node 0.
    std::vector<Edge> edges;
    for (Node v = 1; v < 8; ++v)
        edges.push_back({v, 0});
    CsrGraph g = CsrGraph::fromEdges(8, edges);
    GraphRunConfig cfg = runCfg();
    cfg.prRounds = 10;
    MemorySystem sys(tinySystem());
    GraphWorkload w(sys, g, cfg);
    GraphRunResult r = w.run(GraphKernel::PageRank);
    EXPECT_EQ(r.answer, 0u);  // hub has the max rank
    EXPECT_EQ(r.rounds, 10u);
}

TEST(Algorithms, PageRankTouchesEveryEdgePerRound)
{
    KroneckerParams kp;
    kp.scale = 8;
    kp.edgeFactor = 4;
    CsrGraph g = kronecker(kp);
    GraphRunConfig cfg = runCfg();
    cfg.prRounds = 2;
    MemorySystem sys(tinySystem());
    GraphWorkload w(sys, g, cfg);
    GraphRunResult r = w.run(GraphKernel::PageRank);
    // Each edge costs >= 1 edge read + 2 property accesses per round.
    EXPECT_GT(r.counters.llcReads, 0u);
    EXPECT_GT(r.seconds, 0.0);
}

TEST(Algorithms, ResultsIdenticalAcrossPlacements)
{
    // The memory system must never change algorithm answers.
    KroneckerParams kp;
    kp.scale = 9;
    kp.edgeFactor = 8;
    CsrGraph g = kronecker(kp);

    auto answers = [&](Placement p, MemoryMode mode) {
        SystemConfig scfg = tinySystem();
        scfg.mode = mode;
        MemorySystem sys(scfg);
        GraphRunConfig cfg = runCfg();
        cfg.placement = p;
        GraphWorkload w(sys, g, cfg);
        std::vector<std::uint64_t> a;
        a.push_back(w.run(GraphKernel::Bfs).answer);
        a.push_back(w.run(GraphKernel::Cc).answer);
        a.push_back(w.run(GraphKernel::KCore).answer);
        a.push_back(w.run(GraphKernel::PageRank).answer);
        return a;
    };

    auto two_lm = answers(Placement::TwoLm, MemoryMode::TwoLm);
    auto numa = answers(Placement::NumaPreferred, MemoryMode::OneLm);
    auto sage = answers(Placement::Sage, MemoryMode::OneLm);
    EXPECT_EQ(two_lm, numa);
    EXPECT_EQ(two_lm, sage);
}

TEST(Algorithms, SyntheticWeightsAreStableAndBounded)
{
    for (std::uint64_t e = 0; e < 1000; ++e) {
        std::uint32_t w = syntheticWeight(e);
        EXPECT_GE(w, 1u);
        EXPECT_LE(w, 255u);
        EXPECT_EQ(w, syntheticWeight(e));
    }
}

TEST(Algorithms, SsspFindsShortestPath)
{
    // Hub 0 with a direct heavy edge 0->3 and a light two-hop path
    // 0->1->3 cannot be constructed with hashed weights, so verify
    // against a host-side Bellman-Ford instead.
    KroneckerParams kp;
    kp.scale = 8;
    kp.edgeFactor = 4;
    CsrGraph g = kronecker(kp);

    MemorySystem sys(tinySystem());
    GraphWorkload w(sys, g, runCfg());
    GraphRunResult r = w.run(GraphKernel::Sssp);

    // Reference distances.
    constexpr std::uint32_t kInf = 0xFFFFFFFFu;
    std::vector<std::uint32_t> ref(g.numNodes(), kInf);
    ref[g.maxDegreeNode()] = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (Node v = 0; v < g.numNodes(); ++v) {
            if (ref[v] == kInf)
                continue;
            for (std::uint64_t e = g.edgeBegin(v); e < g.edgeEnd(v);
                 ++e) {
                std::uint32_t cand = ref[v] + syntheticWeight(e);
                if (cand < ref[g.edgeDest(e)]) {
                    ref[g.edgeDest(e)] = cand;
                    changed = true;
                }
            }
        }
    }
    std::uint64_t reached = 0;
    for (Node v = 0; v < g.numNodes(); ++v)
        reached += ref[v] != kInf;
    EXPECT_EQ(r.answer, reached);
    EXPECT_GT(r.rounds, 1u);
}

TEST(Algorithms, SsspStreamsWeightsToo)
{
    KroneckerParams kp;
    kp.scale = 8;
    kp.edgeFactor = 4;
    CsrGraph g = kronecker(kp);
    MemorySystem sys(tinySystem());
    GraphWorkload w(sys, g, runCfg());
    sys.resetCounters();
    GraphRunResult r = w.run(GraphKernel::Sssp);
    // Weight reads add demand beyond what bfs needs on the same graph.
    MemorySystem sys2(tinySystem());
    GraphWorkload w2(sys2, g, runCfg());
    sys2.resetCounters();
    GraphRunResult b = w2.run(GraphKernel::Bfs);
    EXPECT_GT(r.counters.demand(), b.counters.demand());
}
