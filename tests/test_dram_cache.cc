/**
 * @file
 * Tests for the 2LM DRAM cache. The central suite verifies Table I of
 * the paper: every request type generates exactly the device actions
 * (and thus access amplification) measured on the real hardware —
 * amplification 1 / 3 / 4 / 2 / 4 / 5 / 1 for read hit, clean read
 * miss, dirty read miss, write hit, clean write miss, dirty write miss
 * and DDO write.
 */

#include <gtest/gtest.h>

#include "imc/dram_cache.hh"

using namespace nvsim;

namespace
{

/** A tiny cache: 64 sets x 1 way, DDO disabled unless stated. */
DramCacheParams
tinyParams(DdoMode mode = DdoMode::None)
{
    DramCacheParams p;
    p.capacity = 64 * kLineSize;
    p.ddo.mode = mode;
    p.ddo.trackerEntries = 64;
    p.ways = 1;
    return p;
}

/** Address that maps to the same set as @p addr but a different tag. */
Addr
aliasOf(const DramCache &cache, Addr addr)
{
    return addr + cache.numSets() * kLineSize;
}

} // namespace

// --- Table I: LLC read columns -------------------------------------------

TEST(DramCacheTableI, ReadHit)
{
    DramCache cache(tinyParams());
    cache.read(0);  // fill
    CacheResult r = cache.read(0);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
    EXPECT_EQ(r.actions.dramReads, 1u);
    EXPECT_EQ(r.actions.dramWrites, 0u);
    EXPECT_EQ(r.actions.nvramReads, 0u);
    EXPECT_EQ(r.actions.nvramWrites, 0u);
    EXPECT_EQ(r.actions.total(), 1u);  // amplification 1
}

TEST(DramCacheTableI, ReadMissClean)
{
    DramCache cache(tinyParams());
    CacheResult r = cache.read(0);
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
    EXPECT_EQ(r.actions.dramReads, 1u);   // tag+data fetch
    EXPECT_EQ(r.actions.nvramReads, 1u);  // line fetch
    EXPECT_EQ(r.actions.dramWrites, 1u);  // insert
    EXPECT_EQ(r.actions.nvramWrites, 0u);
    EXPECT_EQ(r.actions.total(), 3u);  // amplification 3
    EXPECT_TRUE(r.filled);
    EXPECT_EQ(r.fill, 0u);
    EXPECT_FALSE(r.wroteBack);
}

TEST(DramCacheTableI, ReadMissDirty)
{
    DramCache cache(tinyParams());
    cache.write(0);  // make line 0 resident and dirty
    Addr alias = aliasOf(cache, 0);
    CacheResult r = cache.read(alias);
    EXPECT_EQ(r.outcome, CacheOutcome::MissDirty);
    EXPECT_EQ(r.actions.dramReads, 1u);
    EXPECT_EQ(r.actions.nvramReads, 1u);
    EXPECT_EQ(r.actions.dramWrites, 1u);
    EXPECT_EQ(r.actions.nvramWrites, 1u);  // dirty victim writeback
    EXPECT_EQ(r.actions.total(), 4u);  // amplification 4
    EXPECT_TRUE(r.wroteBack);
    EXPECT_EQ(r.victim, 0u);  // the aliased line was written back
}

// --- Table I: LLC write columns ------------------------------------------

TEST(DramCacheTableI, WriteHit)
{
    DramCache cache(tinyParams());
    cache.read(0);  // insert clean
    CacheResult r = cache.write(0);
    EXPECT_EQ(r.outcome, CacheOutcome::Hit);
    EXPECT_EQ(r.actions.dramReads, 1u);   // tag check
    EXPECT_EQ(r.actions.dramWrites, 1u);  // data write
    EXPECT_EQ(r.actions.total(), 2u);  // amplification 2
    EXPECT_TRUE(cache.residentDirty(0));
}

TEST(DramCacheTableI, WriteMissClean)
{
    DramCache cache(tinyParams());
    CacheResult r = cache.write(0);
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
    EXPECT_EQ(r.actions.dramReads, 1u);   // tag check
    EXPECT_EQ(r.actions.nvramReads, 1u);  // insert-on-miss fetch
    EXPECT_EQ(r.actions.dramWrites, 2u);  // insert + data write
    EXPECT_EQ(r.actions.nvramWrites, 0u);
    EXPECT_EQ(r.actions.total(), 4u);  // amplification 4
    EXPECT_TRUE(cache.residentDirty(0));
}

TEST(DramCacheTableI, WriteMissDirty)
{
    DramCache cache(tinyParams());
    cache.write(0);  // dirty occupant
    Addr alias = aliasOf(cache, 0);
    CacheResult r = cache.write(alias);
    EXPECT_EQ(r.outcome, CacheOutcome::MissDirty);
    EXPECT_EQ(r.actions.dramReads, 1u);
    EXPECT_EQ(r.actions.nvramReads, 1u);
    EXPECT_EQ(r.actions.dramWrites, 2u);
    EXPECT_EQ(r.actions.nvramWrites, 1u);
    EXPECT_EQ(r.actions.total(), 5u);  // amplification 5
    EXPECT_EQ(r.victim, 0u);
}

TEST(DramCacheTableI, DirtyDataOptimization)
{
    DramCache cache(tinyParams(DdoMode::RecentTracker));
    cache.read(0);  // miss handler inserts and records the line
    CacheResult r = cache.write(0);
    EXPECT_EQ(r.outcome, CacheOutcome::DdoHit);
    EXPECT_EQ(r.actions.dramReads, 0u);   // tag check elided
    EXPECT_EQ(r.actions.dramWrites, 1u);
    EXPECT_EQ(r.actions.total(), 1u);  // amplification 1
    EXPECT_TRUE(cache.residentDirty(0));
}

// --- Behavior beyond the table -------------------------------------------

TEST(DramCache, InsertOnMissEvictsPreviousOccupant)
{
    DramCache cache(tinyParams());
    cache.read(0);
    Addr alias = aliasOf(cache, 0);
    cache.read(alias);
    EXPECT_FALSE(cache.resident(0));
    EXPECT_TRUE(cache.resident(alias));
}

TEST(DramCache, CleanVictimIsNotWrittenBack)
{
    DramCache cache(tinyParams());
    cache.read(0);  // clean occupant
    CacheResult r = cache.read(aliasOf(cache, 0));
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
    EXPECT_FALSE(r.wroteBack);
}

TEST(DramCache, DirtyBitClearedOnRefill)
{
    DramCache cache(tinyParams());
    cache.write(0);
    cache.read(aliasOf(cache, 0));  // evicts dirty line 0
    // Re-reading line 0 must treat the (new) occupant as clean.
    CacheResult r = cache.read(0);
    EXPECT_EQ(r.outcome, CacheOutcome::MissClean);
}

TEST(DramCache, InvalidateAllDropsEverything)
{
    DramCache cache(tinyParams(DdoMode::RecentTracker));
    cache.read(0);
    cache.write(64);
    cache.invalidateAll();
    EXPECT_FALSE(cache.resident(0));
    EXPECT_FALSE(cache.resident(64));
    // DDO knowledge must not survive the invalidation.
    CacheResult r = cache.write(0);
    EXPECT_NE(r.outcome, CacheOutcome::DdoHit);
}

TEST(DramCache, DistinctSetsDoNotConflict)
{
    DramCache cache(tinyParams());
    for (Addr a = 0; a < 64 * kLineSize; a += kLineSize)
        cache.read(a);
    for (Addr a = 0; a < 64 * kLineSize; a += kLineSize)
        EXPECT_TRUE(cache.resident(a));
}

TEST(DramCache, RejectsOversizedTagStore)
{
    DramCacheParams p;
    p.capacity = 1ull << 60;
    EXPECT_DEATH(DramCache cache(p), "scale");
}

// --- Associativity ablation ----------------------------------------------

TEST(DramCacheAssoc, TwoWayAbsorbsSingleAlias)
{
    DramCacheParams p = tinyParams();
    p.ways = 2;
    DramCache cache(p);
    Addr a = 0;
    Addr b = aliasOf(cache, a);
    cache.read(a);
    cache.read(b);
    // Both alive: 2 ways hold 2 aliasing lines.
    EXPECT_TRUE(cache.resident(a));
    EXPECT_TRUE(cache.resident(b));
    // A third alias evicts the LRU line (a).
    Addr c = b + cache.numSets() * kLineSize;
    cache.read(c);
    EXPECT_FALSE(cache.resident(a));
    EXPECT_TRUE(cache.resident(b));
    EXPECT_TRUE(cache.resident(c));
}

TEST(DramCacheAssoc, LruIsUpdatedByHits)
{
    DramCacheParams p = tinyParams();
    p.ways = 2;
    DramCache cache(p);
    Addr a = 0;
    Addr b = aliasOf(cache, a);
    cache.read(a);
    cache.read(b);
    cache.read(a);  // refresh a
    Addr c = b + cache.numSets() * kLineSize;
    cache.read(c);  // should evict b (the LRU), not a
    EXPECT_TRUE(cache.resident(a));
    EXPECT_FALSE(cache.resident(b));
}

/** Table I invariants hold for every associativity. */
class DramCacheWays : public ::testing::TestWithParam<unsigned>
{
};

TEST_P(DramCacheWays, MissAmplificationIndependentOfWays)
{
    DramCacheParams p = tinyParams();
    p.ways = GetParam();
    DramCache cache(p);
    CacheResult r = cache.read(0);
    EXPECT_EQ(r.actions.total(), 3u);
    CacheResult w = cache.write(64 * 1024);
    EXPECT_EQ(w.actions.total(), 4u);
}

INSTANTIATE_TEST_SUITE_P(Ways, DramCacheWays,
                         ::testing::Values(1u, 2u, 4u, 8u));
