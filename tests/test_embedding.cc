/**
 * @file
 * Tests for the DLRM-style embedding workload (the paper's intro
 * motivation, Bandana-style placements).
 */

#include <gtest/gtest.h>

#include "dnn/embedding.hh"

using namespace nvsim;
using namespace nvsim::dnn;

namespace
{

SystemConfig
sysCfg(MemoryMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = 8192;
    cfg.epochBytes = 64 * kKiB;
    return cfg;
}

EmbeddingConfig
embCfg()
{
    EmbeddingConfig e;
    e.numTables = 4;
    e.rowsPerTable = 1u << 13;
    e.lookupsPerSample = 4;
    e.batch = 128;
    e.threads = 8;
    return e;
}

} // namespace

TEST(Embedding, PlacementNames)
{
    EXPECT_STREQ(embeddingPlacementName(EmbeddingPlacement::TwoLm),
                 "2LM");
    EXPECT_STREQ(embeddingPlacementName(EmbeddingPlacement::AppDirect),
                 "app_direct");
    EXPECT_STREQ(
        embeddingPlacementName(EmbeddingPlacement::SoftwareCached),
        "software_cached");
}

TEST(Embedding, PlacementModeMismatchIsFatal)
{
    MemorySystem sys(sysCfg(MemoryMode::TwoLm));
    EXPECT_DEATH(EmbeddingWorkload(sys, embCfg(),
                                   EmbeddingPlacement::AppDirect),
                 "incompatible");
}

TEST(Embedding, LookupCountAndTraffic)
{
    MemorySystem sys(sysCfg(MemoryMode::OneLm));
    EmbeddingConfig e = embCfg();
    EmbeddingWorkload w(sys, e, EmbeddingPlacement::AppDirect);
    EmbeddingResult r = w.runBatch();
    EXPECT_EQ(r.lookups,
              static_cast<std::uint64_t>(e.batch) * e.numTables *
                  e.lookupsPerSample);
    // Every lookup reads a 256 B row = 4 lines; the LLC may absorb
    // popular-row repeats, so the demand is bounded above.
    EXPECT_GT(r.counters.llcReads, 0u);
    EXPECT_LE(r.counters.llcReads, r.lookups * (e.rowBytes / kLineSize));
    EXPECT_GT(r.seconds, 0.0);
}

TEST(Embedding, SkewConcentratesOnTheHead)
{
    MemorySystem sys(sysCfg(MemoryMode::OneLm));
    EmbeddingConfig e = embCfg();
    e.hotFraction = 0.1;
    EmbeddingWorkload w(sys, e, EmbeddingPlacement::SoftwareCached);
    EmbeddingResult r = w.runBatch();
    // With skew 3, P(row < 0.1 N) = 0.1^(1/3) ~ 0.46.
    EXPECT_GT(r.hotHitFraction, 0.3);
    EXPECT_LT(r.hotHitFraction, 0.65);
}

TEST(Embedding, SoftwareCacheSendsHotTrafficToDram)
{
    MemorySystem sys(sysCfg(MemoryMode::OneLm));
    EmbeddingConfig e = embCfg();
    EmbeddingWorkload w(sys, e, EmbeddingPlacement::SoftwareCached);
    EmbeddingResult r = w.runBatch();
    EXPECT_GT(r.counters.dramRead, 0u);
    EXPECT_GT(r.counters.nvramRead, 0u);
    // Inference only: nothing writes NVRAM.
    EXPECT_EQ(r.counters.nvramWrite, 0u);
}

TEST(Embedding, TrainingUpdatesDirtyTheTwoLmCache)
{
    SystemConfig cfg = sysCfg(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    EmbeddingConfig e = embCfg();
    // Tables twice the DRAM cache force misses.
    e.rowsPerTable = cfg.dramTotal() * 2 / e.numTables / e.rowBytes;
    e.updateRows = true;
    EmbeddingWorkload w(sys, e, EmbeddingPlacement::TwoLm);
    w.runBatch();  // warm
    sys.resetCounters();
    EmbeddingResult r = w.runBatch();
    EXPECT_GT(r.counters.tagMissDirty, 0u);
    EXPECT_GT(r.counters.nvramWrite, 0u);
}

TEST(Embedding, SoftwareCacheBeatsHardwareCacheAtEqualDram)
{
    // The paper's thesis applied to embeddings: give software the same
    // DRAM the hardware cache has (tables are 2x DRAM, so pin ~45% of
    // rows) and it wins — no tag checks, no insert-on-miss pollution,
    // and the pinned set matches the popularity distribution exactly.
    EmbeddingConfig e = embCfg();
    e.batch = 256;

    SystemConfig two_cfg = sysCfg(MemoryMode::TwoLm);
    e.rowsPerTable =
        two_cfg.dramTotal() * 2 / e.numTables / e.rowBytes;
    e.hotFraction = 0.45;

    double two_lm, software;
    {
        MemorySystem sys(two_cfg);
        EmbeddingWorkload w(sys, e, EmbeddingPlacement::TwoLm);
        w.runBatch();
        sys.resetCounters();
        two_lm = w.runBatch().seconds;
    }
    {
        MemorySystem sys(sysCfg(MemoryMode::OneLm));
        EmbeddingWorkload w(sys, e,
                            EmbeddingPlacement::SoftwareCached);
        w.runBatch();
        sys.resetCounters();
        software = w.runBatch().seconds;
    }
    EXPECT_LT(software, two_lm);

    // And the hardware cache pays measurable access amplification.
    MemorySystem sys(two_cfg);
    EmbeddingWorkload w(sys, e, EmbeddingPlacement::TwoLm);
    EmbeddingResult r = w.runBatch();
    EXPECT_GT(r.counters.amplification(), 1.5);
}

TEST(Embedding, Deterministic)
{
    auto run = [] {
        MemorySystem sys(sysCfg(MemoryMode::OneLm));
        EmbeddingWorkload w(sys, embCfg(),
                            EmbeddingPlacement::AppDirect);
        return w.runBatch().counters.deviceAccesses();
    };
    EXPECT_EQ(run(), run());
}
