/**
 * @file
 * Tests for the AutoTM-style software-managed executor: placement
 * legality, the dead-data property (no NVRAM writebacks for dead
 * tensors), the forward/backward NVRAM traffic split of Figure 10,
 * and the headline speedup over 2LM.
 */

#include <gtest/gtest.h>

#include "dnn/autotm.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::dnn;

namespace
{

SystemConfig
config(MemoryMode mode, std::uint64_t scale)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = scale;
    cfg.epochBytes = 16 * kKiB;
    return cfg;
}

ExecutorConfig
execCfg()
{
    ExecutorConfig e;
    e.threads = 8;
    e.chunkBytes = 16 * kKiB;
    return e;
}

} // namespace

TEST(AutoTm, RequiresOneLm)
{
    MemorySystem sys(config(MemoryMode::TwoLm, 1u << 20));
    ComputeGraph g = buildTinyCnn(16);
    AutoTmConfig cfg;
    cfg.exec = execCfg();
    EXPECT_DEATH(AutoTmExecutor(sys, g, cfg), "1LM");
}

TEST(AutoTm, RunsWithAmpleBudget)
{
    MemorySystem sys(config(MemoryMode::OneLm, 1u << 16));
    ComputeGraph g = buildTinyCnn(16);
    AutoTmConfig cfg;
    cfg.exec = execCfg();
    AutoTmExecutor ex(sys, g, cfg);
    IterationResult res = ex.runIteration();
    EXPECT_EQ(res.kernels.size(), g.schedule().size());
    EXPECT_GT(res.seconds, 0.0);
    // Everything fits in DRAM: no movement at all.
    EXPECT_EQ(ex.stats().movesToNvram, 0u);
    EXPECT_EQ(ex.stats().movesToDram, 0u);
    EXPECT_EQ(res.counters.nvramWrite, 0u);
}

TEST(AutoTm, TightBudgetForcesSpills)
{
    SystemConfig scfg = config(MemoryMode::OneLm, 1u << 20);
    MemorySystem sys(scfg);
    ComputeGraph g = buildDenseNet264(1536);
    AutoTmConfig cfg;
    cfg.exec = execCfg();
    AutoTmExecutor ex(sys, g, cfg);
    ArenaPlan plan = planArena(g, scfg.scale);
    ASSERT_GT(plan.arenaBytes, 2 * ex.dramBudget())
        << "test needs a footprint well beyond DRAM";

    IterationResult res = ex.runIteration();
    EXPECT_GT(ex.stats().movesToNvram, 0u);
    EXPECT_GT(ex.stats().movesToDram, 0u);
    EXPECT_GT(res.counters.nvramWrite, 0u);
    EXPECT_GT(res.counters.nvramRead, 0u);
}

TEST(AutoTm, NvramWritesOnlyInForwardPass)
{
    // Figure 10: AutoTM only writes NVRAM during the forward pass
    // (saving live activations) and only reads NVRAM during the
    // backward pass.
    SystemConfig scfg = config(MemoryMode::OneLm, 1u << 20);
    MemorySystem sys(scfg);
    ComputeGraph g = buildDenseNet264(1536);
    AutoTmConfig cfg;
    cfg.exec = execCfg();
    AutoTmExecutor ex(sys, g, cfg);
    ex.runIteration();

    // The executor's move log carries timestamps; map them onto the
    // forward/backward boundary via kernel indices instead: moves to
    // NVRAM must happen while forward kernels run.
    double boundary_time = -1;
    {
        // Re-derive the boundary from the move/kernel interleaving:
        // the first backward kernel's start is when spills must stop.
        // Simplest check: every toNvram move happens before every
        // toDram move of a *gradient-era* tensor; approximate with
        // time ordering statistics.
        std::vector<double> spill_times, fetch_times;
        for (const MoveEvent &m : ex.moves()) {
            (m.toDram ? fetch_times : spill_times).push_back(m.time);
        }
        ASSERT_FALSE(spill_times.empty());
        ASSERT_FALSE(fetch_times.empty());
        double last_spill =
            *std::max_element(spill_times.begin(), spill_times.end());
        double first_fetch =
            *std::min_element(fetch_times.begin(), fetch_times.end());
        // Spills (forward) come before fetches (backward), mostly:
        // compare medians to be robust.
        std::sort(spill_times.begin(), spill_times.end());
        std::sort(fetch_times.begin(), fetch_times.end());
        double med_spill = spill_times[spill_times.size() / 2];
        double med_fetch = fetch_times[fetch_times.size() / 2];
        EXPECT_LT(med_spill, med_fetch);
        boundary_time = (last_spill + first_fetch) / 2;
        (void)boundary_time;
    }
}

TEST(AutoTm, DeadTensorsAreDroppedWithoutWriteback)
{
    SystemConfig scfg = config(MemoryMode::OneLm, 1u << 20);
    MemorySystem sys(scfg);
    ComputeGraph g = buildDenseNet264(1536);
    AutoTmConfig cfg;
    cfg.exec = execCfg();
    AutoTmExecutor ex(sys, g, cfg);
    ex.runIteration();
    EXPECT_GT(ex.stats().deadTensorsDropped, 0u);
    EXPECT_GT(ex.stats().deadBytesDropped, 0u);
}

TEST(AutoTm, BeatsTwoLmOnBandwidthBoundTraining)
{
    // The headline comparison (Table II): the same network, same
    // footprint/cache ratio, run under 2LM and under AutoTM. Software
    // management must win.
    std::uint64_t scale = 1u << 20;
    ComputeGraph g = buildDenseNet264(1536);

    SystemConfig cfg2 = config(MemoryMode::TwoLm, scale);
    MemorySystem sys2(cfg2);
    Executor ex2(sys2, g, execCfg());
    ex2.runIteration();  // warmup
    sys2.resetCounters();
    IterationResult two_lm = ex2.runIteration();

    SystemConfig cfg1 = config(MemoryMode::OneLm, scale);
    MemorySystem sys1(cfg1);
    AutoTmConfig acfg;
    acfg.exec = execCfg();
    AutoTmExecutor ex1(sys1, g, acfg);
    ex1.runIteration();  // warmup
    sys1.resetCounters();
    IterationResult autotm = ex1.runIteration();

    EXPECT_LT(autotm.seconds, two_lm.seconds);
    // AutoTM moves less NVRAM data (paper: 50-60% of 2LM's traffic).
    std::uint64_t nv2 = two_lm.counters.nvramRead +
                        two_lm.counters.nvramWrite;
    std::uint64_t nv1 = autotm.counters.nvramRead +
                        autotm.counters.nvramWrite;
    EXPECT_LT(nv1, nv2);
}

TEST(AutoTm, BudgetTooSmallForWeightsIsFatal)
{
    SystemConfig scfg = config(MemoryMode::OneLm, 1u << 16);
    MemorySystem sys(scfg);
    ComputeGraph g = buildTinyCnn(16);
    AutoTmConfig cfg;
    cfg.exec = execCfg();
    cfg.dramBudget = kLineSize;  // nothing fits
    EXPECT_DEATH(AutoTmExecutor(sys, g, cfg), "budget");
}
