/** @file Tests for the static ngraph-style arena planner. */

#include <gtest/gtest.h>

#include "dnn/networks.hh"
#include "dnn/planner.hh"

using namespace nvsim;
using namespace nvsim::dnn;

TEST(ScaledTensorBytes, RoundsToLinesAndScales)
{
    EXPECT_EQ(scaledTensorBytes(4096, 1), 4096u);
    EXPECT_EQ(scaledTensorBytes(4096, 64), 64u);
    EXPECT_EQ(scaledTensorBytes(4097, 64), 128u);
    EXPECT_EQ(scaledTensorBytes(1, 1024), 64u);   // floor: one line
    EXPECT_EQ(scaledTensorBytes(0, 1), 64u);
}

TEST(Planner, ArenaSmallerThanTensorSum)
{
    // Memory reuse must make the arena far smaller than the sum of all
    // activation tensors.
    ComputeGraph g = buildDenseNet264(8);
    ArenaPlan plan = planArena(g, 1);
    EXPECT_LT(plan.arenaBytes, g.activationBytes());
    EXPECT_GT(plan.arenaBytes, 0u);
}

TEST(Planner, ArenaCoversPeakLive)
{
    ComputeGraph g = buildTinyCnn(8);
    ArenaPlan plan = planArena(g, 1);
    Bytes peak = peakLiveBytes(g, plan.liveness);
    EXPECT_GE(plan.arenaBytes, peak / 2);  // fragmentation slack
}

TEST(Planner, WeightsGetPersistentOffsets)
{
    ComputeGraph g = buildTinyCnn(8);
    ArenaPlan plan = planArena(g, 1);
    Bytes persistent = 0;
    for (const auto &t : g.tensors()) {
        if (t.kind == TensorKind::Weight ||
            t.kind == TensorKind::WeightGrad) {
            EXPECT_FALSE(plan.at(t.id).inArena) << t.name;
            persistent += plan.at(t.id).bytes;
        }
    }
    EXPECT_EQ(plan.weightBytes, persistent);
}

/**
 * Core planner invariant: two tensors whose live intervals overlap
 * never share arena bytes.
 */
class PlannerOverlap : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(PlannerOverlap, LiveTensorsNeverOverlap)
{
    ComputeGraph g = buildTinyCnn(GetParam());
    ArenaPlan plan = planArena(g, 16);
    const auto &ts = g.tensors();
    for (std::size_t i = 0; i < ts.size(); ++i) {
        if (!plan.at(ts[i].id).inArena)
            continue;
        for (std::size_t j = i + 1; j < ts.size(); ++j) {
            if (!plan.at(ts[j].id).inArena)
                continue;
            const LiveInterval &li = plan.liveness[i];
            const LiveInterval &lj = plan.liveness[j];
            int lo = std::max(li.def, lj.def);
            int hi = std::min(li.lastUse, lj.lastUse);
            if (lo > hi)
                continue;  // disjoint lifetimes may share space
            const TensorPlacement &pi = plan.at(ts[i].id);
            const TensorPlacement &pj = plan.at(ts[j].id);
            bool disjoint = pi.offset + pi.bytes <= pj.offset ||
                            pj.offset + pj.bytes <= pi.offset;
            EXPECT_TRUE(disjoint)
                << ts[i].name << " overlaps " << ts[j].name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Batches, PlannerOverlap,
                         ::testing::Values(1u, 4u, 16u));

TEST(Planner, BackwardReusesForwardSpace)
{
    // The fold-back of Figure 5d: at least one backward-pass tensor
    // must land at an offset first used by a forward tensor.
    ComputeGraph g = buildTinyCnn(16);
    ArenaPlan plan = planArena(g, 1);
    bool reused = false;
    for (const auto &t : g.tensors()) {
        if (t.kind != TensorKind::Gradient || !plan.at(t.id).inArena)
            continue;
        for (const auto &u : g.tensors()) {
            if (u.kind != TensorKind::Activation ||
                !plan.at(u.id).inArena)
                continue;
            const TensorPlacement &pt = plan.at(t.id);
            const TensorPlacement &pu = plan.at(u.id);
            bool overlap = pt.offset < pu.offset + pu.bytes &&
                           pu.offset < pt.offset + pt.bytes;
            if (overlap)
                reused = true;
        }
    }
    EXPECT_TRUE(reused);
}

TEST(Planner, ScalingShrinksProportionally)
{
    ComputeGraph g = buildTinyCnn(64);
    ArenaPlan p1 = planArena(g, 1);
    ArenaPlan p16 = planArena(g, 16);
    // Line-rounding makes this approximate.
    EXPECT_LT(p16.arenaBytes, p1.arenaBytes / 8);
    EXPECT_GT(p16.arenaBytes * 32, p1.arenaBytes);
}
