/**
 * @file
 * Latency validation via pointer-chase-style runs: a single thread
 * with MLP 1 issues dependent accesses, so elapsed time per access
 * equals the device load-to-use latency. The paper's Section I quotes
 * NVRAM latency as ~3x DRAM; our defaults (305 ns vs 81 ns) follow
 * the measured literature it cites.
 */

#include <gtest/gtest.h>

#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

double
chaseLatency(MemoryMode mode, MemPool pool)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = 8192;
    cfg.mlp = 1;  // fully dependent chain
    cfg.epochBytes = 16 * kKiB;
    MemorySystem sys(cfg);
    Region r = mode == MemoryMode::TwoLm
                   ? sys.allocate(4 * kMiB, "chase")
                   : sys.allocateIn(pool, 4 * kMiB, "chase");
    sys.setActiveThreads(1);

    // Stride by more than the LLC and media-buffer reach so every hop
    // is a fresh device access.
    const unsigned kHops = 4096;
    const Addr stride = 16 * kLineSize;
    double t0 = sys.now();
    Addr a = r.base;
    for (unsigned i = 0; i < kHops; ++i) {
        sys.touchLine(0, CpuOp::Load, a);
        a += stride;
        if (a >= r.base + r.size)
            a = r.base + (a + kLineSize) % stride;
    }
    sys.advanceEpoch();
    return (sys.now() - t0) / kHops;
}

} // namespace

TEST(Latency, DramChaseMatchesConfiguredLatency)
{
    double lat = chaseLatency(MemoryMode::OneLm, MemPool::Dram);
    EXPECT_NEAR(lat, 81e-9, 12e-9);
}

TEST(Latency, NvramChaseMatchesConfiguredLatency)
{
    double lat = chaseLatency(MemoryMode::OneLm, MemPool::Nvram);
    EXPECT_NEAR(lat, 305e-9, 40e-9);
}

TEST(Latency, NvramRoughlyThreeTimesDram)
{
    double dram = chaseLatency(MemoryMode::OneLm, MemPool::Dram);
    double nvram = chaseLatency(MemoryMode::OneLm, MemPool::Nvram);
    EXPECT_GT(nvram / dram, 2.5);
    EXPECT_LT(nvram / dram, 5.0);
}

TEST(Latency, TwoLmMissAddsTagCheckToNvramLatency)
{
    // A 2LM chase over a cache-exceeding footprint misses everywhere:
    // each hop pays the DRAM tag check plus the NVRAM fetch.
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 8192;
    cfg.mlp = 1;
    cfg.epochBytes = 16 * kKiB;
    MemorySystem sys(cfg);
    Region r = sys.allocate(cfg.dramTotal() * 3, "chase");
    sys.setActiveThreads(1);

    const unsigned kHops = 4096;
    const Addr stride = 16 * kLineSize;
    // One pass to defeat any accidental reuse, then measure.
    Addr a = r.base;
    double t0 = sys.now();
    for (unsigned i = 0; i < kHops; ++i) {
        sys.touchLine(0, CpuOp::Load, a);
        a += stride;
    }
    sys.advanceEpoch();
    double lat = (sys.now() - t0) / kHops;
    EXPECT_NEAR(lat, 81e-9 + 305e-9, 50e-9);
}
