/**
 * @file
 * Tests for the MemorySystem facade: allocation, address mapping,
 * timing epochs, counter aggregation and trace recording.
 */

#include <gtest/gtest.h>

#include <set>

#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

SystemConfig
smallConfig(MemoryMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = 4096;  // 32 GiB DRAM DIMM -> 8 MiB, NVRAM -> 128 MiB
    cfg.epochBytes = 64 * kKiB;
    return cfg;
}

} // namespace

TEST(MemorySystemAlloc, TwoLmIsFlatNvramSpace)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    Region r1 = sys.allocate(1 * kMiB, "a");
    Region r2 = sys.allocate(1 * kMiB, "b");
    EXPECT_EQ(r1.base, 0u);
    EXPECT_EQ(r2.base, r1.size);
    EXPECT_EQ(r1.pool, MemPool::Nvram);
    // In 2LM everything is NVRAM-backed.
    EXPECT_EQ(sys.poolOf(r1.base), MemPool::Nvram);
}

TEST(MemorySystemAlloc, OneLmPrefersDramThenSpills)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    MemorySystem sys(cfg);
    Bytes dram_total = cfg.dramTotal();
    Region a = sys.allocate(dram_total / 2, "a");
    EXPECT_EQ(a.pool, MemPool::Dram);
    // Too big for the remaining DRAM: fills it and spills into NVRAM.
    Region b = sys.allocate(dram_total, "b");
    EXPECT_EQ(sys.poolOf(a.base), MemPool::Dram);
    EXPECT_EQ(sys.poolOf(b.base), MemPool::Dram);
    EXPECT_EQ(sys.poolOf(b.base + b.size - kLineSize), MemPool::Nvram);
    // With DRAM exhausted, the next region is pure NVRAM.
    Region c = sys.allocate(kMiB, "c");
    EXPECT_EQ(c.pool, MemPool::Nvram);
    EXPECT_EQ(sys.poolOf(c.base), MemPool::Nvram);
}

TEST(MemorySystemAlloc, ExplicitPoolPlacement)
{
    MemorySystem sys(smallConfig(MemoryMode::OneLm));
    Region d = sys.allocateIn(MemPool::Dram, kMiB, "dram");
    Region n = sys.allocateIn(MemPool::Nvram, kMiB, "nvram");
    EXPECT_EQ(d.pool, MemPool::Dram);
    EXPECT_EQ(n.pool, MemPool::Nvram);
    EXPECT_TRUE(d.contains(d.base));
    EXPECT_FALSE(d.contains(n.base));
}

TEST(MemorySystemAlloc, DramPoolRequiresOneLm)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    EXPECT_DEATH(sys.allocateIn(MemPool::Dram, kMiB, "x"), "1LM");
}

TEST(MemorySystemAlloc, PoolExhaustionIsFatal)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    MemorySystem sys(cfg);
    EXPECT_DEATH(
        sys.allocateIn(MemPool::Dram, cfg.dramTotal() + kMiB, "big"),
        "exhausted");
}

TEST(MemorySystem, ChannelInterleaving)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    // Consecutive interleave granules round-robin the channels.
    for (unsigned i = 0; i < 2 * cfg.totalChannels(); ++i) {
        Addr a = static_cast<Addr>(i) * cfg.interleaveGranularity;
        EXPECT_EQ(sys.channelOf(a), i % cfg.totalChannels());
    }
}

TEST(MemorySystem, AccessAdvancesTime)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    Region r = sys.allocate(4 * kMiB, "arr");
    EXPECT_DOUBLE_EQ(sys.now(), 0.0);
    for (Addr a = 0; a < r.size; a += kLineSize)
        sys.submit({0, CpuOp::Load, r.base + a, kLineSize});
    sys.quiesce();
    EXPECT_GT(sys.now(), 0.0);
}

TEST(MemorySystem, MultiLineAccessTouchesEveryLine)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    Region r = sys.allocate(kMiB, "arr");
    sys.submit({0, CpuOp::Load, r.base, 512});
    sys.quiesce();
    EXPECT_EQ(sys.counters().llcReads, 8u);  // 512 B = 8 lines
}

TEST(MemorySystem, UnalignedAccessCoversStraddledLines)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    Region r = sys.allocate(kMiB, "arr");
    // 8 bytes spanning a line boundary -> two lines.
    sys.submit({0, CpuOp::Load, r.base + 60, 8});
    sys.quiesce();
    EXPECT_EQ(sys.counters().llcReads, 2u);
}

TEST(MemorySystem, LlcFiltersRepeatedAccesses)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    Region r = sys.allocate(kMiB, "arr");
    sys.submit({0, CpuOp::Load, r.base, kLineSize});
    sys.submit({0, CpuOp::Load, r.base, kLineSize});
    sys.submit({0, CpuOp::Load, r.base, kLineSize});
    sys.quiesce();
    // Only the first access reaches the IMC.
    EXPECT_EQ(sys.counters().llcReads, 1u);
}

TEST(MemorySystem, NtStoreBypassesLlc)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    Region r = sys.allocate(kMiB, "arr");
    sys.submit({0, CpuOp::NtStore, r.base, kLineSize});
    sys.submit({0, CpuOp::NtStore, r.base, kLineSize});
    sys.quiesce();
    EXPECT_EQ(sys.counters().llcWrites, 2u);
    EXPECT_FALSE(sys.llc().resident(r.base));
}

TEST(MemorySystem, StandardStoreWritesBackOnEviction)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(8 * kMiB, "arr");
    // Dirty far more lines than the LLC holds; evictions must generate
    // LLC writes downstream.
    Bytes span = sys.llc().capacity() * 4;
    for (Addr a = 0; a < span; a += kLineSize)
        sys.submit({0, CpuOp::Store, r.base + a, kLineSize});
    sys.quiesce();
    EXPECT_GT(sys.counters().llcWrites, 0u);
}

TEST(MemorySystem, CountersAggregateAcrossChannels)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(8 * kMiB, "arr");
    for (Addr a = 0; a < r.size; a += kLineSize)
        sys.submit({0, CpuOp::Load, r.base + a, kLineSize});
    sys.quiesce();
    PerfCounters agg = sys.counters();
    PerfCounters manual;
    for (unsigned c = 0; c < sys.numChannels(); ++c)
        manual += sys.channel(c).counters();
    EXPECT_EQ(agg.demand(), manual.demand());
    EXPECT_EQ(agg.deviceAccesses(), manual.deviceAccesses());
    // Traffic actually spread over multiple channels.
    EXPECT_GT(sys.channel(0).counters().llcReads, 0u);
    EXPECT_GT(sys.channel(1).counters().llcReads, 0u);
}

TEST(MemorySystem, MoreThreadsFinishFaster)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    auto run = [&](unsigned threads) {
        MemorySystem sys(cfg);
        Region r = sys.allocateIn(MemPool::Nvram, 8 * kMiB, "arr");
        sys.setActiveThreads(threads);
        for (Addr a = 0; a < r.size; a += kLineSize) {
            sys.submit({a / kLineSize % threads, CpuOp::Load, r.base + a,
                       kLineSize});
        }
        sys.quiesce();
        return sys.now();
    };
    double t1 = run(1);
    double t4 = run(4);
    EXPECT_LT(t4, t1);
    // But never faster than the NVRAM media allows: speedup saturates.
    double t16 = run(16);
    EXPECT_LT(t16, t4 * 1.01);
    EXPECT_GT(t16 * 8, t1 / 16);
}

TEST(MemorySystem, ComputeTimeSetsEpochFloor)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    sys.addComputeTime(0.5);
    sys.advanceEpoch();
    EXPECT_GE(sys.now(), 0.5);
}

TEST(MemorySystem, ResetCountersKeepsCacheState)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    Region r = sys.allocate(kMiB, "arr");
    sys.submit({0, CpuOp::Load, r.base, kLineSize});
    sys.advanceEpoch();  // (not quiesce: that would flush the LLC)
    sys.resetCounters();
    EXPECT_EQ(sys.counters().demand(), 0u);
    EXPECT_DOUBLE_EQ(sys.now(), 0.0);
    // LLC still warm: the next access is filtered before the IMC.
    sys.submit({0, CpuOp::Load, r.base, kLineSize});
    sys.advanceEpoch();
    EXPECT_EQ(sys.counters().llcReads, 0u);
}

TEST(MemorySystem, TraceRecordsBandwidthChannels)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    Region r = sys.allocate(4 * kMiB, "arr");
    for (Addr a = 0; a < r.size; a += kLineSize)
        sys.submit({0, CpuOp::Load, r.base + a, kLineSize});
    sys.quiesce();
    const TimeSeries &ts = sys.trace();
    EXPECT_FALSE(ts.channel("dram_read_bw").empty());
    EXPECT_FALSE(ts.channel("nvram_read_bw").empty());
    EXPECT_GT(ts.mean("nvram_read_bw"), 0.0);
}

TEST(MemorySystem, ZeroThreadCountRejected)
{
    MemorySystem sys(smallConfig(MemoryMode::TwoLm));
    EXPECT_DEATH(sys.setActiveThreads(0), "positive");
}

TEST(MemorySystemAlloc, OneLmStraddlesDramBoundary)
{
    // NUMA-preferred first-touch: a region larger than the remaining
    // DRAM fills DRAM and spills contiguously into NVRAM.
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    MemorySystem sys(cfg);
    Bytes dram_total = cfg.dramTotal();
    Region head = sys.allocate(dram_total / 2, "head");
    EXPECT_EQ(head.pool, MemPool::Dram);
    Region big = sys.allocate(dram_total, "big");  // cannot fit in DRAM
    EXPECT_EQ(big.base, head.base + head.size);
    // The front of the region is DRAM-backed, the tail NVRAM-backed.
    EXPECT_EQ(sys.poolOf(big.base), MemPool::Dram);
    EXPECT_EQ(sys.poolOf(big.base + big.size - kLineSize),
              MemPool::Nvram);
    // Later allocations continue in NVRAM.
    Region tail = sys.allocate(kMiB, "tail");
    EXPECT_EQ(tail.pool, MemPool::Nvram);
    EXPECT_EQ(sys.poolOf(tail.base), MemPool::Nvram);
}

TEST(MemorySystemAlloc, NoStraddleAfterExplicitNvramUse)
{
    // Once the NVRAM pool brk has moved, contiguous straddling is
    // impossible; oversized regions fall back to pure NVRAM.
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    MemorySystem sys(cfg);
    sys.allocateIn(MemPool::Nvram, kMiB, "early_nvram");
    Region big = sys.allocate(cfg.dramTotal() * 2, "big");
    EXPECT_EQ(sys.poolOf(big.base), MemPool::Nvram);
}

TEST(MemorySystemPaging, IdentityWithoutScatter)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    MemorySystem sys(cfg);
    EXPECT_EQ(sys.translate(0x12345), 0x12345u);
}

TEST(MemorySystemPaging, ScatterIsAPageGranularBijection)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    cfg.scatterPages = true;
    cfg.pageBytes = 16 * kMiB;  // scaled: 4 KiB
    MemorySystem sys(cfg);
    Bytes page = cfg.scaledPageBytes();

    std::set<Addr> frames;
    bool any_moved = false;
    for (Addr vp = 0; vp < 512; ++vp) {
        Addr va = vp * page + 128;
        Addr pa = sys.translate(va);
        // Offset within the page is preserved.
        EXPECT_EQ(pa % page, va % page);
        // Stable on re-translation.
        EXPECT_EQ(sys.translate(va), pa);
        // No two virtual pages share a frame.
        EXPECT_TRUE(frames.insert(pa / page).second);
        any_moved |= pa / page != vp;
    }
    EXPECT_TRUE(any_moved);
}

TEST(MemorySystemPaging, ScatterPreservesPools)
{
    SystemConfig cfg = smallConfig(MemoryMode::OneLm);
    cfg.scatterPages = true;
    MemorySystem sys(cfg);
    Region d = sys.allocateIn(MemPool::Dram, 4 * kMiB, "d");
    Region n = sys.allocateIn(MemPool::Nvram, 4 * kMiB, "n");
    Bytes page = cfg.scaledPageBytes();
    for (Addr off = 0; off < 4 * kMiB; off += page) {
        EXPECT_EQ(sys.poolOf(sys.translate(d.base + off)),
                  MemPool::Dram);
        EXPECT_EQ(sys.poolOf(sys.translate(n.base + off)),
                  MemPool::Nvram);
    }
}

TEST(MemorySystemPaging, ScatterCreatesCacheConflicts)
{
    // A contiguous working set at ~90% of the cache is conflict-free
    // with identity mapping but suffers conflicts once physically
    // scattered — the paper's "inflexible direct-mapped cache".
    auto missRate = [&](bool scatter) {
        SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
        cfg.scatterPages = scatter;
        MemorySystem sys(cfg);
        Region arr =
            sys.allocate(cfg.dramTotal() * 9 / 10, "ws");
        // Two passes: the second measures steady-state conflicts.
        for (int pass = 0; pass < 2; ++pass) {
            if (pass == 1)
                sys.resetCounters();
            for (Addr a = 0; a < arr.size; a += kLineSize)
                sys.touchLine(0, CpuOp::Load, arr.base + a);
        }
        sys.quiesce();
        PerfCounters c = sys.counters();
        return static_cast<double>(c.tagMissClean + c.tagMissDirty) /
               static_cast<double>(c.demand());
    };
    EXPECT_LT(missRate(false), 0.01);
    EXPECT_GT(missRate(true), 0.15);
}

TEST(MemorySystemPaging, DeterministicUnderSeed)
{
    SystemConfig cfg = smallConfig(MemoryMode::TwoLm);
    cfg.scatterPages = true;
    MemorySystem a(cfg), b(cfg);
    for (Addr va = 0; va < 64 * cfg.scaledPageBytes();
         va += cfg.scaledPageBytes())
        EXPECT_EQ(a.translate(va), b.translate(va));
    cfg.pageSeed = 99;
    MemorySystem c(cfg);
    bool differs = false;
    for (Addr va = 0; va < 64 * cfg.scaledPageBytes();
         va += cfg.scaledPageBytes())
        differs |= a.translate(va) != c.translate(va);
    EXPECT_TRUE(differs);
}
