#!/usr/bin/env python3
"""Strict Prometheus text-exposition lint for nvsim --stats-prom output.

Checks the rules the exposition format specifies but most scrapers only
half-enforce, so a regression in the writer fails CI instead of showing
up as silently dropped samples:

  - every sample's metric belongs to a family announced by a # TYPE
    line, and # HELP / # TYPE precede the family's first sample;
  - at most one # HELP and one # TYPE per family, and all of a
    family's lines (comments and samples) are contiguous;
  - counter family names end in _total;
  - histogram families emit _bucket/_sum/_count series only, bucket
    le= values are monotonically increasing with cumulative counts,
    an le="+Inf" bucket exists and equals _count;
  - no duplicate (name, labels) sample, labels are well-formed, and
    every value parses as a float;
  - info-style families (name ending _info, e.g. nvsim_build_info) are
    gauges whose samples all have value 1 and at least one label — the
    payload is the labels, by convention.

Usage: python3 scripts/prom_lint.py FILE [FILE...]; exits nonzero with
one line per violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?\s+(?P<value>\S+)$")
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def base_family(name):
    """Family a series belongs to (histogram suffixes stripped)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_labels(text, errors, lineno):
    labels = {}
    rest = text
    while rest:
        m = LABEL_RE.match(rest)
        if not m:
            errors.append(f"line {lineno}: malformed labels at '{rest}'")
            return labels
        if m.group(1) in labels:
            errors.append(
                f"line {lineno}: duplicate label '{m.group(1)}'")
        labels[m.group(1)] = m.group(2)
        rest = rest[m.end():]
        if rest.startswith(","):
            rest = rest[1:]
    return labels


def lint(path):
    errors = []
    types = {}        # family -> type
    helps = set()
    family_order = []  # families in first-appearance order
    closed = set()     # families whose block has ended
    seen_samples = set()
    samples = []       # (lineno, name, labels-dict, value)
    current = None

    def enter_family(fam, lineno):
        nonlocal current
        if fam != current:
            if fam in closed:
                errors.append(
                    f"line {lineno}: family '{fam}' reappears after "
                    "other families (exposition must be contiguous)")
            if current is not None:
                closed.add(current)
            if fam not in family_order:
                family_order.append(fam)
            current = fam

    with open(path) as f:
        for lineno, raw in enumerate(f, 1):
            line = raw.rstrip("\n")
            if not line.strip():
                continue
            if line.startswith("# HELP "):
                parts = line.split(" ", 3)
                fam = parts[2] if len(parts) > 2 else ""
                if fam in helps:
                    errors.append(
                        f"line {lineno}: duplicate # HELP for '{fam}'")
                helps.add(fam)
                enter_family(fam, lineno)
                continue
            if line.startswith("# TYPE "):
                parts = line.split(" ")
                if len(parts) != 4:
                    errors.append(f"line {lineno}: malformed # TYPE")
                    continue
                fam, kind = parts[2], parts[3]
                if fam in types:
                    errors.append(
                        f"line {lineno}: duplicate # TYPE for '{fam}'")
                if kind not in ("counter", "gauge", "histogram",
                                "summary", "untyped"):
                    errors.append(
                        f"line {lineno}: unknown type '{kind}'")
                types[fam] = kind
                enter_family(fam, lineno)
                if kind == "counter" and not fam.endswith("_total"):
                    errors.append(
                        f"line {lineno}: counter '{fam}' does not end "
                        "in _total")
                continue
            if line.startswith("#"):
                continue  # plain comment
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"line {lineno}: unparsable sample: "
                              f"{line!r}")
                continue
            name = m.group("name")
            fam = base_family(name)
            if fam not in types:
                errors.append(
                    f"line {lineno}: sample '{name}' has no # TYPE")
            elif types[fam] != "histogram" and name != fam:
                # _bucket/_sum/_count on a non-histogram family is a
                # name collision, unless the bare name simply contains
                # the suffix (then base_family mis-stripped: re-check).
                if name in types:
                    fam = name
                else:
                    errors.append(
                        f"line {lineno}: series '{name}' extends "
                        f"non-histogram family '{fam}'")
            enter_family(fam, lineno)
            labels = parse_labels(m.group("labels") or "", errors,
                                  lineno)
            try:
                float(m.group("value"))
            except ValueError:
                errors.append(
                    f"line {lineno}: value '{m.group('value')}' is "
                    "not a float")
            key = (name, tuple(sorted(labels.items())))
            if key in seen_samples:
                errors.append(
                    f"line {lineno}: duplicate sample {name}"
                    f"{dict(labels)}")
            seen_samples.add(key)
            samples.append((lineno, name, labels, m.group("value")))

    errors.extend(check_histograms(types, samples))
    errors.extend(check_info_metrics(types, samples))
    return errors


def check_info_metrics(types, samples):
    """Info-metric convention: gauge, value exactly 1, labeled."""
    errors = []
    for fam, kind in types.items():
        if fam.endswith("_info") and kind != "gauge":
            errors.append(
                f"info family '{fam}' has type '{kind}' (must be "
                "gauge)")
    for lineno, name, labels, value in samples:
        if not name.endswith("_info"):
            continue
        try:
            if float(value) != 1.0:
                errors.append(
                    f"line {lineno}: info sample '{name}' has value "
                    f"{value} (must be exactly 1)")
        except ValueError:
            pass  # already reported as a non-float value
        if not labels:
            errors.append(
                f"line {lineno}: info sample '{name}' carries no "
                "labels (the labels are the payload)")
    return errors


def check_histograms(types, samples):
    """le monotonicity, +Inf presence, +Inf == _count per series."""
    errors = []
    buckets = {}  # (family, non-le labels) -> [(lineno, le, count)]
    counts = {}   # (family, labels) -> value
    for lineno, name, labels, value in samples:
        fam = base_family(name)
        if types.get(fam) != "histogram":
            continue
        if name.endswith("_bucket"):
            le = labels.get("le")
            if le is None:
                errors.append(
                    f"line {lineno}: histogram bucket without le=")
                continue
            key = (fam, tuple(sorted((k, v) for k, v in labels.items()
                                     if k != "le")))
            buckets.setdefault(key, []).append(
                (lineno, le, float(value)))
        elif name.endswith("_count"):
            counts[(fam, tuple(sorted(labels.items())))] = float(value)

    for (fam, labels), series in buckets.items():
        prev_le, prev_count = None, -1.0
        inf_count = None
        for lineno, le, count in series:
            le_val = float("inf") if le == "+Inf" else float(le)
            if prev_le is not None and le_val <= prev_le:
                errors.append(
                    f"line {lineno}: {fam} bucket le={le} not "
                    "increasing")
            if count < prev_count:
                errors.append(
                    f"line {lineno}: {fam} bucket le={le} count "
                    "decreased (not cumulative)")
            prev_le, prev_count = le_val, count
            if le == "+Inf":
                inf_count = count
        if inf_count is None:
            errors.append(f"{fam}{dict(labels)}: no le=\"+Inf\" bucket")
            continue
        total = counts.get((fam, labels))
        if total is not None and total != inf_count:
            errors.append(
                f"{fam}{dict(labels)}: le=\"+Inf\" ({inf_count:g}) != "
                f"_count ({total:g})")
    return errors


def main():
    if len(sys.argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in sys.argv[1:]:
        errors = lint(path)
        if errors:
            failed = True
            for e in errors:
                print(f"{path}: {e}")
        else:
            print(f"{path}: OK")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
