#!/usr/bin/env python3
"""Run the headline benches and distill a machine-readable report.

Runs bench_fig2_nvram_bw, bench_fig4_2lm_microbench and
bench_table1_amplification from an existing build tree inside a
scratch directory, extracts the headline metrics from their CSVs and
console tables, exercises the causal tracer at two seeds, and writes
everything to one JSON file (default BENCH_PR3.json):

  - fig2: peak bandwidth per figure/variant (GB/s);
  - fig4: per-scenario effective bandwidth and device-traffic split;
  - table1: amplification and per-cause blame per request class;
  - causal_seed_comparison: same seed => byte-identical folded
    stacks, a different seed => same demand stream, different phase;
  - flags_off: the fig4 CSV is byte-identical with and without the
    causal flags (tracing is strictly opt-in).

Usage:
    python3 scripts/bench_report.py [build_dir] [out.json]
"""

import csv
import hashlib
import json
import re
import subprocess
import sys
import tempfile
from collections import defaultdict
from pathlib import Path


def run_bench(build, name, scratch, *flags):
    exe = Path(build) / "bench" / name
    proc = subprocess.run([str(exe), *flags], cwd=scratch,
                          capture_output=True, text=True, check=True)
    return proc.stdout


def read_csv(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def fig2_section(build, scratch):
    run_bench(build, "bench_fig2_nvram_bw", scratch)
    _, rows = read_csv(scratch / "fig2_nvram_bw.csv")
    peak = defaultdict(float)
    for figure, variant, _threads, gbs in rows:
        key = f"{figure}/{variant}"
        peak[key] = max(peak[key], float(gbs))
    return {"peak_gbs": dict(sorted(peak.items()))}


def fig4_section(build, scratch):
    run_bench(build, "bench_fig4_2lm_microbench", scratch)
    _, rows = read_csv(scratch / "fig4_2lm_microbench.csv")
    out = defaultdict(dict)
    for scenario, pattern, metric, gbs in rows:
        out[f"{scenario}/{pattern}"][metric] = float(gbs)
    return dict(sorted(out.items()))


def table1_section(build, scratch):
    text = run_bench(build, "bench_table1_amplification", scratch)
    # First table: "<request>  <dram rd> <dram wr> <nv rd> <nv wr> <amp>".
    amp = {}
    blame = {}
    row = re.compile(r"^(LLC [\w,() ]+?)\s\s+(\d)\s+(\d)\s+(\d)\s+(\d)"
                     r"\s+(\d)\s*$")
    blame_row = re.compile(r"^(LLC [\w,() ]+?)\s\s+(\d)\s\s+(\S.*?)\s*$")
    for line in text.splitlines():
        m = row.match(line)
        if m:
            amp[m.group(1)] = int(m.group(6))
            continue
        m = blame_row.match(line)
        if m and "@" in m.group(3):
            blame[m.group(1)] = m.group(3).split(" + ")
    return {"amplification": amp, "per_cause_blame": blame}


def digest(path):
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def causal_run(build, scratch, tag, seed):
    sub = scratch / f"causal_{tag}"
    sub.mkdir()
    run_bench(build, "bench_fig4_2lm_microbench", sub,
              "--causal-trace=causal.json", "--folded-stacks=folded.txt",
              f"--causal-seed={seed}", "--causal-sample=32")
    attr = json.loads((sub / "causal.json").read_text())
    sampled = sum(r["causal"]["sampled_requests"] for r in attr["runs"])
    demands = sum(r["causal"]["demand_requests"] for r in attr["runs"])
    return {
        "seed": seed,
        "demand_requests": demands,
        "sampled_requests": sampled,
        "folded_sha256": digest(sub / "folded.txt"),
        "csv_sha256": digest(sub / "fig4_2lm_microbench.csv"),
    }


def main():
    build = Path(sys.argv[1] if len(sys.argv) > 1 else "build").resolve()
    out = Path(sys.argv[2] if len(sys.argv) > 2 else "BENCH_PR3.json")
    if not (build / "bench" / "bench_fig2_nvram_bw").exists():
        print(f"no benches under {build}/bench — build first", file=sys.stderr)
        return 2

    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp)
        report = {
            "schema": "nvsim-bench-report-v1",
            "fig2": fig2_section(build, scratch),
            "fig4": fig4_section(build, scratch),
            "table1": table1_section(build, scratch),
        }

        # Seeded determinism: two runs at seed 1 must agree byte for
        # byte; seed 2 sees the same demand stream at another phase.
        a = causal_run(build, scratch, "seed1a", 1)
        b = causal_run(build, scratch, "seed1b", 1)
        c = causal_run(build, scratch, "seed2", 2)
        report["causal_seed_comparison"] = {
            "runs": [a, b, c],
            "same_seed_identical": a["folded_sha256"] == b["folded_sha256"],
            "different_seed_same_demands":
                a["demand_requests"] == c["demand_requests"]
                and a["folded_sha256"] != c["folded_sha256"],
        }

        # Opt-in check: the causal flags must not perturb the
        # simulation — the bench CSV is bit-identical without them.
        plain = scratch / "plain"
        plain.mkdir()
        run_bench(build, "bench_fig4_2lm_microbench", plain)
        report["flags_off"] = {
            "csv_bit_identical":
                digest(plain / "fig4_2lm_microbench.csv")
                == a["csv_sha256"],
        }

    out.write_text(json.dumps(report, indent=2) + "\n")
    ok = (report["causal_seed_comparison"]["same_seed_identical"]
          and report["flags_off"]["csv_bit_identical"])
    print(f"wrote {out}"
          + ("" if ok else " (WARNING: determinism checks failed)"))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
