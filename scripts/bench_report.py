#!/usr/bin/env python3
"""Run the headline benches and distill a machine-readable report.

Runs bench_fig2_nvram_bw, bench_fig4_2lm_microbench and
bench_table1_amplification from an existing build tree inside a
scratch directory, extracts the headline metrics from their CSVs and
console tables, exercises the causal tracer at two seeds, times the
sweep/access engines against each other, runs the maintenance
interference sweep and the queued-controller load sweep, and writes
everything to one JSON file (default BENCH_PR10.json):

  - fig2: peak bandwidth per figure/variant (GB/s);
  - fig4: per-scenario effective bandwidth and device-traffic split;
  - table1: amplification and per-cause blame per request class;
  - causal_seed_comparison: same seed => byte-identical folded
    stacks, a different seed => same demand stream, different phase;
  - flags_off: the fig4 CSV is byte-identical with and without the
    causal flags (tracing is strictly opt-in);
  - engine_comparison: wall-clock for --jobs=1 vs --jobs=<ncpu> and
    --per-line vs batched on fig2/fig4, with the CSV digests proving
    all variants produced byte-identical results;
  - shard_scaling: fig4 wall-clock at --shard-threads=1/2/4 with
    --jobs=1, with digests proving the sharded runs are byte-identical
    to serial (speedup needs idle cores; identity does not);
  - maintenance: amplification and relative bandwidth per point of
    the bench_fault_degradation maintenance sweep, plus the headline
    verdicts (2LM inflates faster under maintenance, degrades faster
    under faults);
  - queue_scaling: the bench_queue_load sweep — whole-run p50/p99
    demand latency per offered load under the FR-FCFS queued
    controller next to the queue-off analytic row, with the verdicts
    (the analytic row is queue-quiet, the saturated p99 exceeds its
    p50, and p99 grows super-linearly across the load axis) and the
    proof the queued sweep is --jobs-byte-identical;
  - telemetry: the epoch-telemetry engine's whole-run percentiles and
    counter totals on fig4, plus the proof that --jobs=N telemetry
    exports are byte-identical to serial, plus the telemetry document
    itself (aggregate windows; per-channel blocks stripped for size) so
    two reports can be diffed by tools/nvsim_inspect;
  - host_phases: per-phase host wall-clock from the NVSIM_HOST_PROFILE
    profiler (sweep batches, observability/telemetry writes);
  - host_calibration: seconds for a fixed CPU-bound workload, the
    yardstick the perf gate uses to compare wall-clock across hosts;
  - timings: host wall-clock seconds for every bench invocation made
    by this script.

With --against PREV.json the script additionally compares the fresh
report's performance-bearing metrics to the previous PR's report and
exits 1 when any regresses by more than --threshold (default 10%):
engine_comparison serial seconds (higher is worse), fig2 peak GB/s
and fig4 effective GB/s (lower is worse). Metrics missing from either
side are skipped, so the gate tolerates schema growth. The simulated
GB/s metrics are deterministic; the wall-clock seconds are not
comparable across differently loaded hosts, so each report records a
host_calibration yardstick (fixed CPU-bound workload, best of 5) and
the gate compares seconds-per-calibration-second. A baseline without
the yardstick gets its wall-clock metrics skipped (with a note)
rather than producing noise-driven verdicts. The yardstick is also
exported to every bench invocation as NVSIM_HOST_CALIBRATION, so the
provenance manifests embedded in their artifacts carry it.

When the gate fires and both reports embed a telemetry document, the
gate shells out to tools/nvsim_inspect (--inspect=PATH overrides the
auto-detected build/tools/nvsim_inspect) to diff the two documents, so
the failure names the offending windows and blames a counter family
instead of just printing a percentage.

Usage:
    python3 scripts/bench_report.py [build_dir] [out.json]
        [--against PREV.json] [--threshold 0.10] [--inspect PATH]
"""

import argparse
import csv
import hashlib
import json
import os
import re
import subprocess
import sys
import tempfile
import time
from collections import defaultdict
from pathlib import Path

# Every bench invocation appends {bench, flags, seconds} here.
TIMINGS = []

# host-profile: <phase> <calls> <seconds> lines seen on stderr.
HOST_PHASES = defaultdict(lambda: {"calls": 0, "seconds": 0.0})

# The host-calibration yardstick, measured once in main() and exported
# to every bench as NVSIM_HOST_CALIBRATION so their provenance
# manifests record it. One fixed string per session keeps the
# telemetry byte-identity checks honest.
CALIBRATION = None


def run_bench(build, name, scratch, *flags, env=None):
    exe = Path(build) / "bench" / name
    run_env = dict(os.environ, **(env or {}))
    if CALIBRATION is not None:
        run_env.setdefault("NVSIM_HOST_CALIBRATION",
                           f"{CALIBRATION:.6f}")
    t0 = time.monotonic()
    proc = subprocess.run([str(exe), *flags], cwd=scratch, env=run_env,
                          capture_output=True, text=True, check=True)
    TIMINGS.append({"bench": name, "flags": list(flags),
                    "seconds": round(time.monotonic() - t0, 3)})
    for line in proc.stderr.splitlines():
        m = re.match(r"host-profile: (\S+) (\d+) ([\d.]+)$", line)
        if m:
            HOST_PHASES[m.group(1)]["calls"] += int(m.group(2))
            HOST_PHASES[m.group(1)]["seconds"] += float(m.group(3))
    return proc.stdout


def read_csv(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def fig2_section(build, scratch):
    run_bench(build, "bench_fig2_nvram_bw", scratch)
    _, rows = read_csv(scratch / "fig2_nvram_bw.csv")
    peak = defaultdict(float)
    for figure, variant, _threads, gbs in rows:
        key = f"{figure}/{variant}"
        peak[key] = max(peak[key], float(gbs))
    return {"peak_gbs": dict(sorted(peak.items()))}


def fig4_section(build, scratch):
    run_bench(build, "bench_fig4_2lm_microbench", scratch)
    _, rows = read_csv(scratch / "fig4_2lm_microbench.csv")
    out = defaultdict(dict)
    for scenario, pattern, metric, gbs in rows:
        out[f"{scenario}/{pattern}"][metric] = float(gbs)
    return dict(sorted(out.items()))


def table1_section(build, scratch):
    text = run_bench(build, "bench_table1_amplification", scratch)
    # First table: "<request>  <dram rd> <dram wr> <nv rd> <nv wr> <amp>".
    amp = {}
    blame = {}
    row = re.compile(r"^(LLC [\w,() ]+?)\s\s+(\d)\s+(\d)\s+(\d)\s+(\d)"
                     r"\s+(\d)\s*$")
    blame_row = re.compile(r"^(LLC [\w,() ]+?)\s\s+(\d)\s\s+(\S.*?)\s*$")
    for line in text.splitlines():
        m = row.match(line)
        if m:
            amp[m.group(1)] = int(m.group(6))
            continue
        m = blame_row.match(line)
        if m and "@" in m.group(3):
            blame[m.group(1)] = m.group(3).split(" + ")
    return {"amplification": amp, "per_cause_blame": blame}


def maintenance_section(build, scratch):
    sub = scratch / "maintenance"
    sub.mkdir()
    log = run_bench(build, "bench_fault_degradation", sub)
    _, rows = read_csv(sub / "fault_degradation.csv")
    sweep = {}
    for experiment, series, x, value, extra in rows:
        if experiment != "maintenance":
            continue
        sweep[f"{series}/{x}"] = {"amplification": float(value),
                                  "rel_bandwidth": float(extra)}
    return {
        "sweep": dict(sorted(sweep.items())),
        "two_lm_inflates_faster":
            "2LM inflates faster (as expected)" in log,
        "two_lm_degrades_faster_under_faults":
            "2LM degrades faster (as expected)" in log,
    }


def digest(path):
    return hashlib.sha256(Path(path).read_bytes()).hexdigest()


def causal_run(build, scratch, tag, seed):
    sub = scratch / f"causal_{tag}"
    sub.mkdir()
    run_bench(build, "bench_fig4_2lm_microbench", sub,
              "--causal-trace=causal.json", "--folded-stacks=folded.txt",
              f"--causal-seed={seed}", "--causal-sample=32")
    attr = json.loads((sub / "causal.json").read_text())
    sampled = sum(r["causal"]["sampled_requests"] for r in attr["runs"])
    demands = sum(r["causal"]["demand_requests"] for r in attr["runs"])
    return {
        "seed": seed,
        "demand_requests": demands,
        "sampled_requests": sampled,
        "folded_sha256": digest(sub / "folded.txt"),
        "csv_sha256": digest(sub / "fig4_2lm_microbench.csv"),
    }


def timed_variant(build, bench, csv_name, scratch, tag, *flags,
                  repeats=3):
    """One engine variant: median-of-N wall clock plus the CSV digest.

    The median smooths scheduler noise, which on a small shared host
    is comparable to the effect being measured, without the optimism
    bias best-of-N has on a bursty host. seconds_all keeps every
    sample so a report reader can judge the spread.
    """
    sub = scratch / f"engine_{bench}_{tag}"
    sub.mkdir()
    times = []
    for _ in range(repeats):
        t0 = time.monotonic()
        run_bench(build, bench, sub, *flags)
        times.append(time.monotonic() - t0)
    median = sorted(times)[len(times) // 2]
    return {
        "flags": list(flags),
        "seconds": round(median, 3),
        "seconds_all": [round(t, 3) for t in times],
        "csv_sha256": digest(sub / csv_name),
    }


def engine_comparison(build, scratch):
    """Serial vs parallel sweep and per-line vs batched access.

    The parallel speedup scales with the host's cores (a 1-core
    container shows ~1x); the batched speedup is engine work saved per
    access and holds on any host. Either way every variant must hash
    to the same CSV — the engines are interchangeable by contract.
    """
    ncpu = os.cpu_count() or 1
    section = {"host_cpus": ncpu}
    for bench, csv_name in [
            ("bench_fig4_2lm_microbench", "fig4_2lm_microbench.csv"),
            ("bench_fig2_nvram_bw", "fig2_nvram_bw.csv")]:
        serial = timed_variant(build, bench, csv_name, scratch,
                               "serial", "--jobs=1")
        parallel = timed_variant(build, bench, csv_name, scratch,
                                 "parallel", f"--jobs={ncpu}")
        per_line = timed_variant(build, bench, csv_name, scratch,
                                 "perline", "--jobs=1", "--per-line")
        digests = {serial["csv_sha256"], parallel["csv_sha256"],
                   per_line["csv_sha256"]}
        section[bench] = {
            "serial": serial,
            "parallel": parallel,
            "per_line": per_line,
            "speedup_parallel":
                round(serial["seconds"] / parallel["seconds"], 2),
            "speedup_batched":
                round(per_line["seconds"] / serial["seconds"], 2),
            "csv_identical_across_variants": len(digests) == 1,
        }
    return section


def shard_scaling_section(build, scratch):
    """Intra-run channel sharding on fig4 at widths 1/2/4, --jobs=1.

    Wall clock per width plus the CSV digests proving the sharded runs
    are byte-identical to serial. On a multi-core host the wider rows
    should be faster; on a 1-core host (where the paper-repro CI runs)
    the acceptance bar is no-regression, and the byte-identity
    requirement is host-independent either way.
    """
    section = {"host_cpus": os.cpu_count() or 1}
    variants = {}
    for width in (1, 2, 4):
        variants[f"shard{width}"] = timed_variant(
            build, "bench_fig4_2lm_microbench",
            "fig4_2lm_microbench.csv", scratch, f"shard{width}",
            "--jobs=1", f"--shard-threads={width}")
    base = variants["shard1"]["seconds"]
    section.update(variants)
    for width in (2, 4):
        section[f"speedup_shard{width}"] = round(
            base / variants[f"shard{width}"]["seconds"], 2)
    section["csv_identical_across_widths"] = len(
        {v["csv_sha256"] for v in variants.values()}) == 1
    return section


def telemetry_section(build, scratch):
    """Telemetry engine on fig4: percentiles, totals, --jobs identity."""
    ncpu = os.cpu_count() or 1
    runs = {}
    for tag, jobs in [("serial", 1), ("parallel", ncpu)]:
        sub = scratch / f"telemetry_{tag}"
        sub.mkdir()
        run_bench(build, "bench_fig4_2lm_microbench", sub,
                  f"--jobs={jobs}", "--telemetry=tel.csv",
                  "--telemetry-json=tel.json", "--telemetry-window=1ms")
        runs[tag] = {
            "jobs": jobs,
            "csv_sha256": digest(sub / "tel.csv"),
            "json_sha256": digest(sub / "tel.json"),
        }
    tel = json.loads((scratch / "telemetry_serial" / "tel.json")
                     .read_text())
    first = (tel["runs"][0].get("telemetry", {})
             if tel.get("runs") else {})
    # Embed the document itself so the next PR's perf gate can diff
    # the two telemetry timelines with nvsim_inspect. Per-channel
    # window blocks are dropped for size; the aggregate series carry
    # everything the gate needs to name windows and blame families.
    doc = json.loads(json.dumps(tel))
    for run in doc.get("runs", []):
        for window in run.get("telemetry", {}).get("windows", []):
            window.pop("per_channel", None)
    return {
        "schema": tel.get("schema"),
        "num_runs": len(tel.get("runs", [])),
        "first_run_latency": first.get("latency"),
        "first_run_windows": len(first.get("windows", [])),
        "runs": runs,
        "jobs_byte_identical":
            runs["serial"]["csv_sha256"] == runs["parallel"]["csv_sha256"]
            and runs["serial"]["json_sha256"]
            == runs["parallel"]["json_sha256"],
        "doc": doc,
    }


def queue_scaling_section(build, scratch):
    """Queued-controller load sweep: tail latency vs offered load.

    Parses queue_load.csv into one entry per sweep point and distills
    the acceptance verdicts: the analytic (queue-off) row reports zero
    queue wait, the saturated tail exceeds its median, and the p99
    grows super-linearly along the offered-load axis (the growth
    across the sweep outruns the load ratio). A second run at
    --jobs=N must digest identically — the queued drain is part of
    the determinism contract, not an exception to it.
    """
    ncpu = os.cpu_count() or 1
    runs = {}
    for tag, jobs in [("serial", 1), ("parallel", ncpu)]:
        sub = scratch / f"queue_{tag}"
        sub.mkdir()
        run_bench(build, "bench_queue_load", sub, f"--jobs={jobs}")
        runs[tag] = digest(sub / "queue_load.csv")
    _, rows = read_csv(scratch / "queue_serial" / "queue_load.csv")
    points = {}
    queued = []
    analytic_quiet = False
    for (sched, offered, eff, p50, p99, p999, qwait, conflicts, hits,
         drains) in rows:
        key = f"{sched}@{offered}" if float(offered) > 0 else sched
        point = {
            "offered_gbs": float(offered),
            "effective_gbs": float(eff),
            "p50_ns": float(p50),
            "p99_ns": float(p99),
            "p999_ns": float(p999),
            "queue_wait_ns": int(qwait),
            "bank_conflicts": int(conflicts),
            "row_buffer_hits": int(hits),
            "write_drains": int(drains),
        }
        points[key] = point
        if sched == "analytic":
            analytic_quiet = point["queue_wait_ns"] == 0
        else:
            queued.append(point)
    lo, hi = queued[0], queued[-1]
    load_ratio = hi["offered_gbs"] / lo["offered_gbs"]
    p99_growth = hi["p99_ns"] / lo["p99_ns"] if lo["p99_ns"] else 0.0
    return {
        "points": points,
        "analytic_row_queue_quiet": analytic_quiet,
        "tail_exceeds_median_at_saturation": hi["p99_ns"] > hi["p50_ns"],
        "p99_growth": round(p99_growth, 2),
        "load_ratio": round(load_ratio, 2),
        "p99_superlinear": p99_growth > load_ratio,
        "jobs_byte_identical": runs["serial"] == runs["parallel"],
    }


def host_calibration():
    """Seconds for a fixed CPU-bound workload (best of 5).

    The engine_comparison wall-clock seconds depend on how fast (and
    how loaded) the host is, so two reports recorded in different
    sessions are not directly comparable. This yardstick runs the same
    work in every session; the gate divides it out.
    """
    data = b"\x00" * (1 << 20)
    best = None
    for _ in range(5):
        t0 = time.monotonic()
        h = hashlib.sha256()
        for _ in range(64):
            h.update(data)
        h.hexdigest()
        elapsed = time.monotonic() - t0
        best = elapsed if best is None else min(best, elapsed)
    return round(best, 6)


def gate_metrics(report):
    """Flat {name: (value, higher_is_worse, wall_clock)}."""
    out = {}
    ec = report.get("engine_comparison", {})
    for bench, sec in ec.items():
        if not isinstance(sec, dict) or "serial" not in sec:
            continue
        out[f"engine_comparison/{bench}/serial_s"] = (
            sec["serial"]["seconds"], True, True)
    for key, gbs in report.get("fig2", {}).get("peak_gbs", {}).items():
        out[f"fig2/{key}/peak_gbs"] = (gbs, False, False)
    for key, metrics in report.get("fig4", {}).items():
        if isinstance(metrics, dict) and "effective" in metrics:
            out[f"fig4/{key}/effective_gbs"] = (metrics["effective"],
                                                False, False)
    qs = report.get("queue_scaling", {}).get("points", {})
    for key, point in qs.items():
        if point.get("p99_ns"):
            out[f"queue_scaling/{key}/p99_ns"] = (point["p99_ns"],
                                                  True, False)
    return out


def inspect_diff(inspect, prev, report):
    """Diff the embedded telemetry docs with nvsim_inspect, so a gate
    failure names the regressing windows and blames a counter family.
    Best-effort: silently skipped when either side predates the
    embedded doc or the binary is missing."""
    prev_doc = prev.get("telemetry", {}).get("doc")
    cur_doc = report.get("telemetry", {}).get("doc")
    if not (inspect and Path(inspect).exists() and prev_doc and cur_doc):
        return
    with tempfile.TemporaryDirectory() as tmp:
        a = Path(tmp) / "baseline_tel.json"
        b = Path(tmp) / "current_tel.json"
        a.write_text(json.dumps(prev_doc))
        b.write_text(json.dumps(cur_doc))
        proc = subprocess.run(
            [str(inspect), "diff", str(a), str(b), "--top=5"],
            capture_output=True, text=True)
    print("telemetry diff (baseline -> current), via nvsim_inspect:")
    for line in proc.stdout.splitlines():
        print(f"  {line}")


def perf_gate(report, against_path, threshold, inspect=None):
    """Compare to the previous report; list of regression strings."""
    prev = json.loads(Path(against_path).read_text())
    cur_m, prev_m = gate_metrics(report), gate_metrics(prev)
    cur_cal = report.get("host_calibration")
    prev_cal = prev.get("host_calibration")
    regressions = []
    compared = skipped = 0
    for name, (cur, higher_is_worse, wall_clock) in sorted(cur_m.items()):
        if name not in prev_m:
            continue
        base = prev_m[name][0]
        if base <= 0:
            continue
        if wall_clock:
            if not (cur_cal and prev_cal):
                skipped += 1
                continue
            # Divide out host speed so a slower or busier machine does
            # not read as a code regression (and a faster one does not
            # mask a real slowdown).
            cur, base = cur / cur_cal, base / prev_cal
        compared += 1
        change = (cur - base) / base
        worse = change if higher_is_worse else -change
        if worse > threshold:
            direction = "slower" if higher_is_worse else "lower"
            regressions.append(
                f"{name}: {base:g} -> {cur:g} "
                f"({100 * worse:.1f}% {direction}, "
                f"threshold {100 * threshold:.0f}%)")
    print(f"perf gate: compared {compared} metrics against "
          f"{against_path}, {len(regressions)} regression(s)"
          + (f"; skipped {skipped} wall-clock metric(s): baseline has "
             "no host_calibration" if skipped else ""))
    for r in regressions:
        print(f"  REGRESSION {r}")
    if regressions:
        inspect_diff(inspect, prev, report)
    return regressions


def main():
    parser = argparse.ArgumentParser(
        description="bench report + optional perf-regression gate")
    parser.add_argument("build", nargs="?", default="build")
    parser.add_argument("out", nargs="?", default="BENCH_PR10.json")
    parser.add_argument("--against", metavar="PREV.json",
                        help="previous report to gate against")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="relative regression budget (default 0.10)")
    parser.add_argument("--inspect", metavar="PATH",
                        help="nvsim_inspect binary for gate-failure "
                        "diffs (default: <build>/tools/nvsim_inspect)")
    args = parser.parse_args()
    build = Path(args.build).resolve()
    out = Path(args.out)
    inspect = args.inspect or str(build / "tools" / "nvsim_inspect")
    if not (build / "bench" / "bench_fig2_nvram_bw").exists():
        print(f"no benches under {build}/bench — build first", file=sys.stderr)
        return 2

    global CALIBRATION
    CALIBRATION = host_calibration()

    with tempfile.TemporaryDirectory() as tmp:
        scratch = Path(tmp)
        report = {
            "schema": "nvsim-bench-report-v1",
            "fig2": fig2_section(build, scratch),
            "fig4": fig4_section(build, scratch),
            "table1": table1_section(build, scratch),
        }

        # Seeded determinism: two runs at seed 1 must agree byte for
        # byte; seed 2 sees the same demand stream at another phase.
        a = causal_run(build, scratch, "seed1a", 1)
        b = causal_run(build, scratch, "seed1b", 1)
        c = causal_run(build, scratch, "seed2", 2)
        report["causal_seed_comparison"] = {
            "runs": [a, b, c],
            "same_seed_identical": a["folded_sha256"] == b["folded_sha256"],
            "different_seed_same_demands":
                a["demand_requests"] == c["demand_requests"]
                and a["folded_sha256"] != c["folded_sha256"],
        }

        # Opt-in check: the causal flags must not perturb the
        # simulation — the bench CSV is bit-identical without them.
        plain = scratch / "plain"
        plain.mkdir()
        run_bench(build, "bench_fig4_2lm_microbench", plain)
        report["flags_off"] = {
            "csv_bit_identical":
                digest(plain / "fig4_2lm_microbench.csv")
                == a["csv_sha256"],
        }

        report["engine_comparison"] = engine_comparison(build, scratch)
        report["shard_scaling"] = shard_scaling_section(build, scratch)
        report["maintenance"] = maintenance_section(build, scratch)
        report["telemetry"] = telemetry_section(build, scratch)
        report["queue_scaling"] = queue_scaling_section(build, scratch)

        # One profiled run so host_phases is populated even when the
        # environment doesn't export NVSIM_HOST_PROFILE.
        prof = scratch / "hostprof"
        prof.mkdir()
        run_bench(build, "bench_fig4_2lm_microbench", prof, "--jobs=1",
                  "--telemetry=tel.csv",
                  env={"NVSIM_HOST_PROFILE": "1"})
        report["host_phases"] = {
            k: {"calls": v["calls"], "seconds": round(v["seconds"], 6)}
            for k, v in sorted(HOST_PHASES.items())}
        report["host_calibration"] = CALIBRATION
        report["timings"] = TIMINGS

    out.write_text(json.dumps(report, indent=2) + "\n")
    engines_ok = all(
        report["engine_comparison"][b]["csv_identical_across_variants"]
        for b in ("bench_fig4_2lm_microbench", "bench_fig2_nvram_bw"))
    ok = (report["causal_seed_comparison"]["same_seed_identical"]
          and report["flags_off"]["csv_bit_identical"]
          and engines_ok
          and report["shard_scaling"]["csv_identical_across_widths"]
          and report["maintenance"]["two_lm_inflates_faster"]
          and report["telemetry"]["jobs_byte_identical"]
          and report["queue_scaling"]["jobs_byte_identical"]
          and report["queue_scaling"]["analytic_row_queue_quiet"]
          and report["queue_scaling"]["tail_exceeds_median_at_saturation"]
          and report["queue_scaling"]["p99_superlinear"])
    print(f"wrote {out}"
          + ("" if ok else " (WARNING: determinism checks failed)"))
    if not ok:
        return 1
    if args.against:
        if perf_gate(report, args.against, args.threshold,
                     inspect=inspect):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
