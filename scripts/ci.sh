#!/bin/sh
# Tier-1 CI: configure, build and run the full test suite twice —
# once plain, once under AddressSanitizer + UBSan (-DNVSIM_SANITIZE=ON).
# Any test failure or sanitizer report fails the script.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

run_suite() {
    build_dir=$1
    shift
    echo "=== configuring $build_dir ($*) ==="
    cmake -B "$root/$build_dir" -S "$root" "$@"
    echo "=== building $build_dir ==="
    cmake --build "$root/$build_dir" -j "$jobs"
    echo "=== testing $build_dir ==="
    ctest --test-dir "$root/$build_dir" --output-on-failure -j "$jobs"
}

run_suite build -DNVSIM_SANITIZE=OFF
run_suite build-asan -DNVSIM_SANITIZE=ON

# Observability smoke: one bench run with every obs output enabled;
# both JSON artifacts must parse (json.tool exits nonzero otherwise).
echo "=== obs smoke (stats JSON / Perfetto / heatmap) ==="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
(cd "$obs_dir" && "$root/build/bench/bench_fig4_2lm_microbench" \
    --stats-json=stats.json --stats-prom=stats.prom \
    --perfetto=trace.json --set-heatmap=heatmap.csv \
    --top-sets=4 > bench.log)
python3 -m json.tool "$obs_dir/stats.json" > /dev/null
python3 -m json.tool "$obs_dir/trace.json" > /dev/null
head -1 "$obs_dir/heatmap.csv" | grep -q '^run,set,hits,misses,evictions$'
test -s "$obs_dir/stats.prom"
echo "obs smoke passed: artifacts written and valid."

echo "CI passed: plain and sanitized suites green."
