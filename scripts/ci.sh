#!/bin/sh
# Tier-1 CI: configure, build and run the full test suite twice —
# once plain, once under AddressSanitizer + UBSan (-DNVSIM_SANITIZE=ON).
# Any test failure or sanitizer report fails the script.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

run_suite() {
    build_dir=$1
    shift
    echo "=== configuring $build_dir ($*) ==="
    cmake -B "$root/$build_dir" -S "$root" "$@"
    echo "=== building $build_dir ==="
    cmake --build "$root/$build_dir" -j "$jobs"
    echo "=== testing $build_dir ==="
    ctest --test-dir "$root/$build_dir" --output-on-failure -j "$jobs"
}

run_suite build -DNVSIM_SANITIZE=OFF
run_suite build-asan -DNVSIM_SANITIZE=ON

echo "CI passed: plain and sanitized suites green."
