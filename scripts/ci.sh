#!/bin/sh
# Tier-1 CI: configure, build and run the full test suite twice —
# once plain, once under AddressSanitizer + UBSan (-DNVSIM_SANITIZE=ON)
# — then race-check the sweep pool under ThreadSanitizer and verify the
# parallel/batched engines reproduce the serial output byte-for-byte.
# Any test failure or sanitizer report fails the script.
set -eu

root=$(cd "$(dirname "$0")/.." && pwd)
jobs=$(nproc 2>/dev/null || echo 4)

run_suite() {
    build_dir=$1
    shift
    echo "=== configuring $build_dir ($*) ==="
    cmake -B "$root/$build_dir" -S "$root" "$@"
    echo "=== building $build_dir ==="
    cmake --build "$root/$build_dir" -j "$jobs"
    echo "=== testing $build_dir ==="
    ctest --test-dir "$root/$build_dir" --output-on-failure -j "$jobs"
}

run_suite build -DNVSIM_SANITIZE=OFF
run_suite build-asan -DNVSIM_SANITIZE=ON

# ThreadSanitizer pass over the concurrency engines: the sweep/shard
# pool tests plus real bench runs exercising both the inter-run sweep
# (--jobs) and the intra-run channel shard (--shard-threads), the
# latter on both the plain microbench and the maintenance/fault sweep
# (RNG-bearing per-channel state). Scoped to the concurrency-bearing
# targets — the full suite is single-threaded and already covered.
echo "=== TSan suite (sweep pool + channel shard) ==="
cmake -B "$root/build-tsan" -S "$root" -DNVSIM_SANITIZE=thread
cmake --build "$root/build-tsan" -j "$jobs" \
    --target test_exec test_access_range bench_fig4_2lm_microbench \
    bench_fault_degradation bench_queue_load
# Run the binaries directly: the tree only builds these targets, and
# ctest would trip over every other test's _NOT_BUILT placeholder.
"$root/build-tsan/tests/test_exec"
"$root/build-tsan/tests/test_access_range"
tsan_dir=$(mktemp -d)
(cd "$tsan_dir" && \
    "$root/build-tsan/bench/bench_fig4_2lm_microbench" --jobs=4 \
    > bench.log)
(cd "$tsan_dir" && \
    "$root/build-tsan/bench/bench_fig4_2lm_microbench" --jobs=1 \
    --shard-threads=4 > bench_shard.log)
(cd "$tsan_dir" && \
    "$root/build-tsan/bench/bench_fault_degradation" \
    --shard-threads=4 > fault_shard.log)
(cd "$tsan_dir" && \
    "$root/build-tsan/bench/bench_queue_load" --jobs=2 \
    --shard-threads=4 > queue_shard.log)
rm -rf "$tsan_dir"
echo "TSan suite passed: no data races reported."

# Determinism smoke: the sweep engine and the batched access engine
# must reproduce the serial per-line output byte-for-byte — console
# and CSV alike — for any --jobs=N.
echo "=== determinism smoke (--jobs / --per-line byte-diff) ==="
det_dir=$(mktemp -d)
for variant in "jobs1 --jobs=1" "jobs4 --jobs=4" \
               "perline --jobs=1 --per-line"; do
    name=${variant%% *}
    flags=${variant#* }
    mkdir -p "$det_dir/$name"
    # shellcheck disable=SC2086  # flags is a word list by design
    (cd "$det_dir/$name" && \
        "$root/build/bench/bench_fig4_2lm_microbench" $flags \
        > stdout.txt)
done
diff -r "$det_dir/jobs1" "$det_dir/jobs4"
diff -r "$det_dir/jobs1" "$det_dir/perline"
rm -rf "$det_dir"
echo "determinism smoke passed: outputs byte-identical."

# Shard byte-diff: the intra-run channel shard must reproduce the
# serial run byte-for-byte — console, CSV, and the telemetry exports
# (counter totals, latency percentiles, per-window series) alike.
echo "=== shard determinism (--shard-threads byte-diff) ==="
shard_dir=$(mktemp -d)
for n in 1 4; do
    mkdir -p "$shard_dir/shard$n"
    (cd "$shard_dir/shard$n" && \
        "$root/build/bench/bench_fig4_2lm_microbench" --jobs=1 \
        --shard-threads=$n --telemetry=tel.csv \
        --telemetry-json=tel.json > stdout.txt)
done
diff -r "$shard_dir/shard1" "$shard_dir/shard4"
rm -rf "$shard_dir"
echo "shard determinism passed: outputs byte-identical at any width."

# Observability smoke: one bench run with every obs output enabled;
# both JSON artifacts must parse (json.tool exits nonzero otherwise).
echo "=== obs smoke (stats JSON / Perfetto / heatmap) ==="
obs_dir=$(mktemp -d)
trap 'rm -rf "$obs_dir"' EXIT
(cd "$obs_dir" && "$root/build/bench/bench_fig4_2lm_microbench" \
    --stats-json=stats.json --stats-prom=stats.prom \
    --perfetto=trace.json --set-heatmap=heatmap.csv \
    --top-sets=4 > bench.log)
python3 -m json.tool "$obs_dir/stats.json" > /dev/null
python3 -m json.tool "$obs_dir/trace.json" > /dev/null
head -1 "$obs_dir/heatmap.csv" | grep -q '^run,set,hits,misses,evictions$'
test -s "$obs_dir/stats.prom"
echo "obs smoke passed: artifacts written and valid."

# Causal-tracing smoke: the attribution JSON and the Perfetto flow
# trace must parse, and the folded stacks must blame every Figure-3
# miss-handler step (the five Table I causes) at least once.
echo "=== causal smoke (attribution / folded stacks / flow events) ==="
(cd "$obs_dir" && "$root/build/bench/bench_fig4_2lm_microbench" \
    --causal-trace=causal.json --folded-stacks=folded.txt \
    --perfetto=causal_trace.json --causal-sample=32 > causal.log)
python3 -m json.tool "$obs_dir/causal.json" > /dev/null
python3 -m json.tool "$obs_dir/causal_trace.json" > /dev/null
grep -q '"ph":"s"' "$obs_dir/causal_trace.json"
grep -q '"bp":"e"' "$obs_dir/causal_trace.json"
for cause in tag_probe dirty_writeback cache_fill_read \
             cache_insert_write data_write; do
    grep -q ";$cause " "$obs_dir/folded.txt"
done
echo "causal smoke passed: blame trees cover all five causes."

# Policy smoke: the ablation bench must sweep every registered cache
# policy and emit the documented CSV schema.
echo "=== policy smoke (pluggable cache-policy ablation) ==="
pol_dir=$(mktemp -d)
(cd "$pol_dir" && "$root/build/bench/bench_ablation_policy" \
    --jobs="$jobs" > bench.log)
head -1 "$pol_dir/ablation_policy.csv" | grep -q \
    '^policy,scenario,ratio,miss_rate,effective_gbs,amplification,bypass_frac$'
for kind in direct_mapped_tag_ecc sram_tag_set_assoc \
            bypass_selective_insert; do
    grep -q "^$kind," "$pol_dir/ablation_policy.csv"
done
rm -rf "$pol_dir"
echo "policy smoke passed: every registered policy swept."

# Golden byte-diff: under the default policy the refactored controller
# must reproduce the seed's figure/table outputs byte-for-byte — the
# policy interface is an extraction, not a behavior change.
echo "=== golden byte-diff (default policy vs tests/golden) ==="
gold_dir=$(mktemp -d)
(cd "$gold_dir" && \
    "$root/build/bench/bench_fig2_nvram_bw" --jobs=1 > /dev/null && \
    "$root/build/bench/bench_fig4_2lm_microbench" --jobs=1 > /dev/null && \
    "$root/build/bench/bench_table1_amplification" > table1_stdout.txt)
diff "$root/tests/golden/fig2_nvram_bw.csv" "$gold_dir/fig2_nvram_bw.csv"
diff "$root/tests/golden/fig4_2lm_microbench.csv" \
     "$gold_dir/fig4_2lm_microbench.csv"
diff "$root/tests/golden/table1_stdout.txt" "$gold_dir/table1_stdout.txt"
rm -rf "$gold_dir"
echo "golden byte-diff passed: default-policy outputs match the seed."

# Maintenance-off equivalence: a config that spells the whole
# maintenance block out explicitly, with every engine off, must
# reproduce the golden figure outputs byte-for-byte — the subsystem is
# behavior-neutral until enabled (no RNG draws, no timing change).
echo "=== maintenance-off golden byte-diff ==="
moff_dir=$(mktemp -d)
cat > "$moff_dir/maint_off.json" <<'EOF'
{
  "maintenance": {
    "seed": 1,
    "refresh": {"trefi": 0, "trfc": 350e-9},
    "scrub": {"interval": 0, "correctable": 0, "uncorrectable": 0,
              "retire_threshold": 2, "retire_capacity": 64},
    "rowhammer": {"threshold": 0, "tracker_entries": 64,
                  "row_bytes": 8192, "blast_radius": 2,
                  "refresh_latency": 60e-9, "window": 64e-3}
  }
}
EOF
(cd "$moff_dir" && \
    "$root/build/bench/bench_fig2_nvram_bw" --jobs=1 \
        --config=maint_off.json > /dev/null && \
    "$root/build/bench/bench_fig4_2lm_microbench" --jobs=1 \
        --config=maint_off.json > /dev/null && \
    "$root/build/bench/bench_table1_amplification" > table1_stdout.txt)
diff "$root/tests/golden/fig2_nvram_bw.csv" "$moff_dir/fig2_nvram_bw.csv"
diff "$root/tests/golden/fig4_2lm_microbench.csv" \
     "$moff_dir/fig4_2lm_microbench.csv"
diff "$root/tests/golden/table1_stdout.txt" "$moff_dir/table1_stdout.txt"
rm -rf "$moff_dir"
echo "maintenance-off byte-diff passed: all-off equals absent."

# Maintenance smoke: the interference sweep must emit one row per
# (plan, mode) point and reach both headline verdicts — 2LM degrades
# faster under faults and inflates faster under maintenance.
echo "=== maintenance smoke (interference sweep) ==="
maint_dir=$(mktemp -d)
(cd "$maint_dir" && "$root/build/bench/bench_fault_degradation" \
    > bench.log)
for plan in off refresh scrub_64 scrub_16 rowhammer_2k tight; do
    for mode in 2lm 1lm; do
        grep -q "^maintenance,$mode,$plan," \
            "$maint_dir/fault_degradation.csv"
    done
done
grep -q "2LM inflates faster (as expected)" "$maint_dir/bench.log"
grep -q "2LM degrades faster (as expected)" "$maint_dir/bench.log"
rm -rf "$maint_dir"
echo "maintenance smoke passed: sweep rows and verdicts present."

# Telemetry smoke: one run with every telemetry output enabled. The
# CSV must carry the documented header, the JSON must parse and carry
# the schema marker, and the SLO report must print a verdict per run.
echo "=== telemetry smoke (windowed series / JSON / SLO report) ==="
tel_dir=$(mktemp -d)
(cd "$tel_dir" && "$root/build/bench/bench_fig4_2lm_microbench" \
    --telemetry=tel.csv --telemetry-json=tel.json \
    --telemetry-window=1ms --slo='p99_ns<100000@95%;amplification<8' \
    > bench.log)
head -1 "$tel_dir/tel.csv" | grep -q '^run,window,t0,t1,channel,metric,value$'
python3 -m json.tool "$tel_dir/tel.json" > /dev/null
grep -q '"schema": "nvsim-telemetry-v1"' "$tel_dir/tel.json" || \
    grep -q '"schema":"nvsim-telemetry-v1"' "$tel_dir/tel.json"
grep -q '=== SLO report:' "$tel_dir/bench.log"
grep -Eq 'PASS|FAIL' "$tel_dir/bench.log"
rm -rf "$tel_dir"
echo "telemetry smoke passed: artifacts written and valid."

# Telemetry byte-diff: unlike the Observer outputs, telemetry keeps
# the sweep parallel — and its exports must still be byte-identical
# for any --jobs=N (per-run collectors, order-normalized rendering).
echo "=== telemetry determinism (--jobs byte-diff) ==="
teld_dir=$(mktemp -d)
for n in 1 4; do
    mkdir -p "$teld_dir/jobs$n"
    (cd "$teld_dir/jobs$n" && \
        "$root/build/bench/bench_fig4_2lm_microbench" --jobs=$n \
        --telemetry=tel.csv --telemetry-json=tel.json > /dev/null)
done
diff "$teld_dir/jobs1/tel.csv" "$teld_dir/jobs4/tel.csv"
diff "$teld_dir/jobs1/tel.json" "$teld_dir/jobs4/tel.json"
rm -rf "$teld_dir"
echo "telemetry determinism passed: exports byte-identical."

# Differential-telemetry smoke: two identical invocations must diff
# empty (exit 0); a perturbed maintenance config must diff non-empty
# (exit 1) with the regression blamed on the maintenance counter
# family. Also smokes the anomalies/manifest subcommands and the
# --anomaly-report= bench flag.
echo "=== diff smoke (nvsim_inspect over telemetry artifacts) ==="
inspect="$root/build/tools/nvsim_inspect"
diff_dir=$(mktemp -d)
for tag in a b; do
    mkdir -p "$diff_dir/$tag"
    (cd "$diff_dir/$tag" && \
        "$root/build/bench/bench_fig4_2lm_microbench" --jobs=2 \
        --telemetry-json=tel.json > /dev/null)
done
"$inspect" diff "$diff_dir/a/tel.json" "$diff_dir/b/tel.json"
echo "identical-input diff is empty (exit 0)."
cat > "$diff_dir/maint_on.json" <<'EOF'
{
  "maintenance": {
    "seed": 1,
    "refresh": {"trefi": 7.8e-6, "trfc": 350e-9},
    "scrub": {"interval": 1e-3, "correctable": 0, "uncorrectable": 0,
              "retire_threshold": 2, "retire_capacity": 64},
    "rowhammer": {"threshold": 0, "tracker_entries": 64,
                  "row_bytes": 8192, "blast_radius": 2,
                  "refresh_latency": 60e-9, "window": 64e-3}
  }
}
EOF
mkdir -p "$diff_dir/maint"
(cd "$diff_dir/maint" && \
    "$root/build/bench/bench_fig4_2lm_microbench" --jobs=2 \
    --config="$diff_dir/maint_on.json" --telemetry-json=tel.json \
    > /dev/null)
set +e
"$inspect" diff "$diff_dir/a/tel.json" "$diff_dir/maint/tel.json" \
    --json="$diff_dir/diff.json" > "$diff_dir/diff.txt"
diff_rc=$?
set -e
test "$diff_rc" -eq 1
grep -q 'blame maintenance' "$diff_dir/diff.txt"
grep -q 'maintenance_stall_ns' "$diff_dir/diff.txt"
grep -q 'config hash' "$diff_dir/diff.txt"
python3 -m json.tool "$diff_dir/diff.json" > /dev/null
"$inspect" manifest "$diff_dir/a/tel.json" | \
    grep -q 'bench: bench_fig4_2lm_microbench'
"$inspect" anomalies "$diff_dir/a/tel.json" > /dev/null || true
(cd "$diff_dir/a" && "$root/build/bench/bench_fig4_2lm_microbench" \
    --jobs=2 --anomaly-report=anoms.json > /dev/null)
python3 -m json.tool "$diff_dir/a/anoms.json" > /dev/null
grep -q '"schema":"nvsim-anomaly-v1"' "$diff_dir/a/anoms.json"
(cd "$diff_dir" && "$root/build/bench/bench_micro_gbench" \
    --telemetry-json=micro_tel.json --benchmark_filter=BM_LfsrNext \
    > /dev/null)
"$inspect" manifest "$diff_dir/micro_tel.json" | \
    grep -q 'bench: bench_micro_gbench'
rm -rf "$diff_dir"
echo "diff smoke passed: empty on identical runs, maintenance blamed" \
     "on perturbation."

# Queue-off golden byte-diff: a config that spells out the whole
# controller block explicitly — the analytic scheduler plus non-default
# queue geometry — must reproduce the golden figure outputs byte for
# byte. The queue knobs are dead until a queued scheduler is selected;
# the analytic path is the same code the goldens were recorded on.
echo "=== queue-off golden byte-diff (explicit analytic controller) ==="
qoff_dir=$(mktemp -d)
cat > "$qoff_dir/queue_off.json" <<'EOF'
{
  "controller": {
    "scheduler": "analytic",
    "read_queue_entries": 8,
    "write_queue_entries": 24,
    "banks": 8,
    "row_bytes": 4096,
    "drain_high_watermark": 20,
    "drain_low_watermark": 4,
    "starvation_cap": 4,
    "bank_conflict_penalty": 45e-9,
    "offered_gbs": 100
  }
}
EOF
(cd "$qoff_dir" && \
    "$root/build/bench/bench_fig2_nvram_bw" --jobs=1 \
        --config=queue_off.json > /dev/null && \
    "$root/build/bench/bench_fig4_2lm_microbench" --jobs=1 \
        --config=queue_off.json > /dev/null)
diff "$root/tests/golden/fig2_nvram_bw.csv" "$qoff_dir/fig2_nvram_bw.csv"
diff "$root/tests/golden/fig4_2lm_microbench.csv" \
     "$qoff_dir/fig4_2lm_microbench.csv"
rm -rf "$qoff_dir"
echo "queue-off byte-diff passed: analytic controller equals the seed."

# Saturated-channel smoke: the queued-controller load sweep must show
# the tail pulling away from the median as the offered load crosses
# the channel service knee (the bench's own verdict line), report
# nonzero queue activity, and stay byte-identical across --jobs and
# --shard-threads — the deferred epoch-end drain is part of the
# determinism contract.
echo "=== queue smoke (bench_queue_load saturation + determinism) ==="
ql_dir=$(mktemp -d)
for variant in "jobs1 --jobs=1" "jobs4 --jobs=4" \
               "shard4 --jobs=1 --shard-threads=4"; do
    name=${variant%% *}
    flags=${variant#* }
    mkdir -p "$ql_dir/$name"
    # shellcheck disable=SC2086  # flags is a word list by design
    (cd "$ql_dir/$name" && \
        "$root/build/bench/bench_queue_load" $flags > stdout.txt)
done
diff -r "$ql_dir/jobs1" "$ql_dir/jobs4"
diff -r "$ql_dir/jobs1" "$ql_dir/shard4"
grep -q "tail stretches under load (as expected)" \
    "$ql_dir/jobs1/stdout.txt"
grep -q "^analytic,0,.*,0,0,0,0$" "$ql_dir/jobs1/queue_load.csv"
awk -F, 'NR > 2 && $7 == 0 { exit 1 }' "$ql_dir/jobs1/queue_load.csv"
# The telemetry SLO report must see the same tail: fig4 under a
# saturating FR-FCFS controller, whole-run p99 > p50 in the exported
# sketch (the analytic engine reports p99 == p50 by construction).
cat > "$ql_dir/frfcfs_sat.json" <<'EOF'
{ "controller": { "scheduler": "frfcfs", "offered_gbs": 8 } }
EOF
(cd "$ql_dir" && "$root/build/bench/bench_fig4_2lm_microbench" \
    --jobs=1 --config=frfcfs_sat.json --telemetry-json=tel.json \
    --slo='p99_ns>1000@50%' > slo.log)
grep -q '=== SLO report:' "$ql_dir/slo.log"
grep -q 'PASS' "$ql_dir/slo.log"
python3 - "$ql_dir/tel.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
lats = [r["telemetry"]["latency"] for r in doc["runs"]]
assert lats, "no telemetry runs in tel.json"
assert any(l["p99_ns"] > l["p50_ns"] for l in lats), \
    "saturated queued runs show no tail (p99 == p50 everywhere)"
EOF
rm -rf "$ql_dir"
echo "queue smoke passed: saturated p99 > p50, outputs byte-identical."

# Prometheus strict lint: the exposition-format rules scrapers only
# half-enforce (one TYPE per family, counters end _total, histogram
# le monotonic with +Inf == _count, no duplicate samples, info-style
# families are gauges with value 1 and labeled). The export must also
# carry the nvsim_build_info provenance gauge.
echo "=== prometheus strict lint ==="
prom_dir=$(mktemp -d)
(cd "$prom_dir" && "$root/build/bench/bench_fig4_2lm_microbench" \
    --stats-prom=stats.prom --telemetry-json=tel.json > /dev/null)
grep -q '^nvsim_build_info{' "$prom_dir/stats.prom"
grep -q 'config_hash="0x' "$prom_dir/stats.prom"
python3 "$root/scripts/prom_lint.py" "$prom_dir/stats.prom"
rm -rf "$prom_dir"
echo "prometheus lint passed: exposition is strictly valid."

# Machine-readable bench report for this PR, then the perf gate: the
# fresh report must not regress >10% against the previous PR's
# checked-in report. NVSIM_PERF_GATE=off skips the comparison (for
# hosts whose wall-clock is incomparable to the recorded baseline);
# the report itself is always written.
echo "=== bench report + perf gate (BENCH_PR10.json) ==="
python3 "$root/scripts/bench_report.py" "$root/build" \
    "$root/BENCH_PR10.json"
if [ "${NVSIM_PERF_GATE:-on}" = "off" ]; then
    echo "perf gate skipped (NVSIM_PERF_GATE=off)."
elif [ ! -f "$root/BENCH_PR9.json" ]; then
    echo "perf gate skipped (no BENCH_PR9.json baseline)."
else
    python3 - "$root/BENCH_PR10.json" "$root/BENCH_PR9.json" \
        "$root/build/tools/nvsim_inspect" <<'EOF'
import json, os, sys
sys.path.insert(0, os.path.join(os.path.dirname(sys.argv[1]), "scripts"))
from bench_report import perf_gate
report = json.loads(open(sys.argv[1]).read())
if perf_gate(report, sys.argv[2], 0.10, inspect=sys.argv[3]):
    sys.exit(1)
EOF
    # Gate self-test: a tampered baseline whose serial seconds are 10x
    # faster than reality must trip the gate — proving it can fail.
    # The inspect hook runs on the tampered baseline too, exercising
    # the named-windows diff path end to end.
    python3 - "$root/BENCH_PR10.json" \
        "$root/build/tools/nvsim_inspect" <<'EOF'
import copy, json, os, sys, tempfile
sys.path.insert(0, os.path.join(os.path.dirname(sys.argv[1]), "scripts"))
from bench_report import perf_gate
report = json.loads(open(sys.argv[1]).read())
fast = copy.deepcopy(report)
for bench in fast.get("engine_comparison", {}).values():
    if isinstance(bench, dict) and "serial" in bench:
        bench["serial"]["seconds"] /= 10.0
with tempfile.NamedTemporaryFile("w", suffix=".json") as f:
    json.dump(fast, f)
    f.flush()
    if not perf_gate(report, f.name, 0.10, inspect=sys.argv[2]):
        print("perf-gate self-test FAILED: injected 10x slowdown "
              "not detected")
        sys.exit(1)
print("perf-gate self-test passed: injected slowdown detected.")
EOF
fi

echo "CI passed: plain and sanitized suites green."
