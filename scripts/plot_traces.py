#!/usr/bin/env python3
"""Plot the CSV series the bench binaries emit.

Each figure-reproduction bench writes a tidy CSV (either
time,channel,value traces or per-experiment rows). This script turns
them into PNGs resembling the paper's figures.

Usage:
    python3 scripts/plot_traces.py fig5_traces.csv [out.png]
    python3 scripts/plot_traces.py fig2_nvram_bw.csv

Requires matplotlib (not needed for the simulation itself).
"""

import csv
import sys
from collections import defaultdict


def load(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def plot_trace(header, rows, out):
    """time,channel,value traces (fig5, fig9, fig10)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    series = defaultdict(lambda: ([], []))
    for time, channel, value in rows:
        xs, ys = series[channel]
        xs.append(float(time))
        ys.append(float(value))

    bw = {k: v for k, v in series.items() if k.endswith("_bw")}
    tags = {k: v for k, v in series.items() if k.endswith("_frac")}
    n = 1 + bool(tags)
    fig, axes = plt.subplots(n, 1, figsize=(10, 3.2 * n), sharex=True)
    if n == 1:
        axes = [axes]

    for name, (xs, ys) in sorted(bw.items()):
        axes[0].plot(xs, ys, label=name, linewidth=0.9)
    axes[0].set_ylabel("GB/s")
    axes[0].legend(fontsize=7, ncol=2)
    if tags:
        for name, (xs, ys) in sorted(tags.items()):
            axes[1].plot(xs, ys, label=name, linewidth=0.9)
        axes[1].set_ylabel("fraction of requests")
        axes[1].legend(fontsize=7, ncol=2)
    axes[-1].set_xlabel("simulated seconds")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_heatmap(header, rows, out):
    """run,set,hits,misses,evictions rows (--set-heatmap output)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    runs = defaultdict(lambda: ([], []))
    for run, set_idx, hits, misses, evictions in rows:
        xs, ys = runs[run]
        xs.append(int(set_idx))
        ys.append(int(misses) + int(evictions))

    n = len(runs)
    fig, axes = plt.subplots(n, 1, figsize=(10, 2.2 * n), sharex=True)
    if n == 1:
        axes = [axes]
    for ax, (run, (xs, ys)) in zip(axes, sorted(runs.items())):
        ax.vlines(xs, 0, ys, linewidth=0.7)
        ax.set_ylabel("misses+evictions", fontsize=7)
        ax.set_title(run, fontsize=8)
    axes[-1].set_xlabel("DRAM cache set")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_sweep(header, rows, out):
    """threads-on-x sweeps (fig2)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figures = defaultdict(lambda: defaultdict(lambda: ([], [])))
    for figure, variant, threads, gbs in rows:
        xs, ys = figures[figure][variant]
        xs.append(int(threads))
        ys.append(float(gbs))

    fig, axes = plt.subplots(1, len(figures),
                             figsize=(5.5 * len(figures), 3.6))
    if len(figures) == 1:
        axes = [axes]
    for ax, (figname, variants) in zip(axes, sorted(figures.items())):
        for variant, (xs, ys) in sorted(variants.items()):
            ax.plot(xs, ys, marker="o", markersize=3, label=variant)
        ax.set_title(f"Figure {figname}")
        ax.set_xlabel("threads")
        ax.set_ylabel("GB/s")
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def main():
    if len(sys.argv) < 2:
        print(__doc__)
        return 2
    path = sys.argv[1]
    out = sys.argv[2] if len(sys.argv) > 2 else path.rsplit(".", 1)[0] + ".png"
    header, rows = load(path)
    if header[:2] == ["time", "channel"]:
        plot_trace(header, rows, out)
    elif header[:2] == ["figure", "variant"]:
        plot_sweep(header, rows, out)
    elif header[:2] == ["run", "set"]:
        plot_heatmap(header, rows, out)
    else:
        print(f"don't know how to plot columns {header}; "
              "see EXPERIMENTS.md for the semantics")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
