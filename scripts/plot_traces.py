#!/usr/bin/env python3
"""Plot the CSV series and folded stacks the bench binaries emit.

Each figure-reproduction bench writes a tidy CSV (either
time,channel,value traces or per-experiment rows). This script turns
them into PNGs resembling the paper's figures. Files written by
--folded-stacks= (semicolon-separated frames, trailing count) are
rendered as a self-contained flamegraph SVG instead — no matplotlib
needed for those.

JSON artifacts are dispatched on their "schema" field: an
nvsim-telemetry-diff-v1 report (nvsim_inspect diff --json=...) becomes
a per-window signed relative-delta heatmap, and an nvsim-anomaly-v1
report (--anomaly-report=) can be overlaid on the telemetry plot as
markers at the windows where a detector fired.

Usage:
    python3 scripts/plot_traces.py fig5_traces.csv [out.png]
    python3 scripts/plot_traces.py fig2_nvram_bw.csv
    python3 scripts/plot_traces.py fig4_folded.txt [out.svg]
    python3 scripts/plot_traces.py tel.csv          # --telemetry= series
    python3 scripts/plot_traces.py tel.csv --anomalies=anoms.json
    python3 scripts/plot_traces.py diff.json [out.png]

Requires matplotlib for the CSV plots (not needed for the simulation
itself, nor for the flamegraph).
"""

import csv
import html
import json
import sys
import zlib
from collections import defaultdict


def load(path):
    with open(path) as f:
        rows = list(csv.reader(f))
    return rows[0], rows[1:]


def plot_trace(header, rows, out):
    """time,channel,value traces (fig5, fig9, fig10)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    series = defaultdict(lambda: ([], []))
    for time, channel, value in rows:
        xs, ys = series[channel]
        xs.append(float(time))
        ys.append(float(value))

    bw = {k: v for k, v in series.items() if k.endswith("_bw")}
    tags = {k: v for k, v in series.items() if k.endswith("_frac")}
    n = 1 + bool(tags)
    fig, axes = plt.subplots(n, 1, figsize=(10, 3.2 * n), sharex=True)
    if n == 1:
        axes = [axes]

    for name, (xs, ys) in sorted(bw.items()):
        axes[0].plot(xs, ys, label=name, linewidth=0.9)
    axes[0].set_ylabel("GB/s")
    axes[0].legend(fontsize=7, ncol=2)
    if tags:
        for name, (xs, ys) in sorted(tags.items()):
            axes[1].plot(xs, ys, label=name, linewidth=0.9)
        axes[1].set_ylabel("fraction of requests")
        axes[1].legend(fontsize=7, ncol=2)
    axes[-1].set_xlabel("simulated seconds")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_heatmap(header, rows, out):
    """run,set,hits,misses,evictions rows (--set-heatmap output)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    runs = defaultdict(lambda: ([], []))
    for run, set_idx, hits, misses, evictions in rows:
        xs, ys = runs[run]
        xs.append(int(set_idx))
        ys.append(int(misses) + int(evictions))

    n = len(runs)
    fig, axes = plt.subplots(n, 1, figsize=(10, 2.2 * n), sharex=True)
    if n == 1:
        axes = [axes]
    for ax, (run, (xs, ys)) in zip(axes, sorted(runs.items())):
        ax.vlines(xs, 0, ys, linewidth=0.7)
        ax.set_ylabel("misses+evictions", fontsize=7)
        ax.set_title(run, fontsize=8)
    axes[-1].set_xlabel("DRAM cache set")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_sweep(header, rows, out):
    """threads-on-x sweeps (fig2)."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    figures = defaultdict(lambda: defaultdict(lambda: ([], [])))
    for figure, variant, threads, gbs in rows:
        xs, ys = figures[figure][variant]
        xs.append(int(threads))
        ys.append(float(gbs))

    fig, axes = plt.subplots(1, len(figures),
                             figsize=(5.5 * len(figures), 3.6))
    if len(figures) == 1:
        axes = [axes]
    for ax, (figname, variants) in zip(axes, sorted(figures.items())):
        for variant, (xs, ys) in sorted(variants.items()):
            ax.plot(xs, ys, marker="o", markersize=3, label=variant)
        ax.set_title(f"Figure {figname}")
        ax.set_xlabel("threads")
        ax.set_ylabel("GB/s")
        ax.legend(fontsize=7)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_telemetry(header, rows, out, anomalies=None):
    """--telemetry= windowed series (run,window,t0,t1,channel,metric,
    value): bandwidth rates on top, latency percentiles below, one
    line per run. Only the aggregate ("all") channel is drawn; the
    per-channel rows carry the same metrics at finer grain. With
    anomalies (an nvsim-anomaly-v1 document), detector firings are
    drawn as vertical markers at the windows that fired."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    rates = ("eff_gbs", "dram_gbs", "nvram_gbs")
    pcts = ("p50_ns", "p99_ns")
    series = defaultdict(lambda: ([], []))
    window_t0 = {}  # (run, window index) -> plotted time (ms)
    for run, window, t0, _t1, channel, metric, value in rows:
        if channel != "all":
            continue
        window_t0[(run, int(window))] = float(t0) * 1e3
        if metric not in rates + pcts:
            continue
        xs, ys = series[(run, metric)]
        xs.append(float(t0) * 1e3)
        ys.append(float(value))

    if not series:
        print(f"no plottable telemetry metrics in {header}")
        return

    have_pcts = any(m in pcts for _, m in series)
    n = 1 + have_pcts
    fig, axes = plt.subplots(n, 1, figsize=(10, 3.2 * n), sharex=True)
    if n == 1:
        axes = [axes]
    for (run, metric), (xs, ys) in sorted(series.items()):
        ax = axes[1] if metric in pcts and have_pcts else axes[0]
        ax.plot(xs, ys, label=f"{run}:{metric}", linewidth=0.9)

    shown = missed = 0
    for run_entry in (anomalies or {}).get("runs", []):
        label = run_entry.get("label", "")
        for a in run_entry.get("anomalies", []):
            t = window_t0.get((label, int(a["window"])))
            if t is None:
                missed += 1
                continue
            shown += 1
            for ax in axes:
                ax.axvline(t, color="red", linewidth=0.6, alpha=0.5)
            axes[0].annotate(a["metric"], (t, 0.98),
                             xycoords=("data", "axes fraction"),
                             fontsize=5, rotation=90, color="red",
                             ha="right", va="top")
    if anomalies is not None:
        print(f"anomaly overlay: {shown} firing(s) drawn"
              + (f", {missed} outside the CSV's windows" if missed
                 else ""))

    axes[0].set_ylabel("GB/s")
    axes[0].legend(fontsize=6, ncol=2)
    if have_pcts:
        axes[1].set_ylabel("latency (ns)")
        axes[1].set_yscale("log")
        axes[1].legend(fontsize=6, ncol=2)
    axes[-1].set_xlabel("simulated time (ms)")
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def plot_diff(doc, out):
    """nvsim-telemetry-diff-v1 report -> per-run heatmap of signed
    relative deltas, one row per changed (channel, metric) series and
    one column per window. Red = grew in B, blue = shrank."""
    import matplotlib

    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    runs = [r for r in doc.get("runs", []) if r.get("entries")]
    if not runs:
        print("diff report has no changed series; nothing to plot")
        return

    fig, axes = plt.subplots(len(runs), 1,
                             figsize=(10, 3.0 * len(runs)),
                             squeeze=False)
    for ax, run in zip((a for row in axes for a in row), runs):
        entries = run["entries"]
        keys = sorted({(e["channel"], e["metric"]) for e in entries})
        windows = sorted({int(e["window"]) for e in entries})
        kidx = {k: i for i, k in enumerate(keys)}
        widx = {w: i for i, w in enumerate(windows)}
        grid = [[0.0] * len(windows) for _ in keys]
        for e in entries:
            signed = e["rel"] if e["delta"] >= 0 else -e["rel"]
            grid[kidx[(e["channel"], e["metric"])]][
                widx[int(e["window"])]] = signed
        im = ax.imshow(grid, aspect="auto", cmap="coolwarm",
                       vmin=-1.0, vmax=1.0, interpolation="nearest")
        ax.set_yticks(range(len(keys)))
        ax.set_yticklabels([f"{c}:{m}" for c, m in keys], fontsize=5)
        ax.set_xticks(range(len(windows)))
        ax.set_xticklabels(windows, fontsize=5)
        ax.set_xlabel("window", fontsize=7)
        ax.set_title(f"run '{run['label']}' — signed relative delta "
                     "(B vs A)", fontsize=8)
        fig.colorbar(im, ax=ax, fraction=0.03)
    fig.tight_layout()
    fig.savefig(out, dpi=150)
    print(f"wrote {out}")


def parse_folded(path):
    """`frame;frame;...;leaf count` lines -> list of (frames, count)."""
    stacks = []
    with open(path) as f:
        for line in f:
            line = line.rstrip("\n")
            if not line:
                continue
            stack, count = line.rsplit(" ", 1)
            stacks.append((stack.split(";"), int(count)))
    return stacks


def is_folded(path):
    """Folded stacks are not CSV: ';'-joined frames, ' <int>' suffix."""
    with open(path) as f:
        first = f.readline().rstrip("\n")
    if ";" not in first or " " not in first:
        return False
    return first.rsplit(" ", 1)[1].isdigit()


def plot_folded(path, out):
    """Render --folded-stacks= output as a flamegraph SVG (icicle
    layout, root on top). Dependency-free: writes the SVG directly."""
    stacks = parse_folded(path)
    total = sum(c for _, c in stacks)
    if not total:
        print(f"{path}: no samples")
        return

    # Fold the flat stacks into a trie of (own total, children).
    def node():
        return [0, defaultdict(node)]

    root = node()
    for frames, count in stacks:
        root[0] += count
        cur = root
        for frame in frames:
            cur = cur[1][frame]
            cur[0] += count

    width, row, pad = 1200.0, 18, 1

    def depth_of(n):
        return 1 + max((depth_of(c) for c in n[1].values()), default=0)

    height = depth_of(root) * row + 40

    def color(name):
        # Deterministic warm palette keyed by the frame name.
        h = zlib.crc32(name.encode()) & 0xFFFFFFFF
        return "rgb(%d,%d,%d)" % (205 + h % 50, 80 + (h >> 8) % 110,
                                  (h >> 16) % 60)

    rects = []

    def layout(children, x0, x1, depth):
        span = x1 - x0
        parent_total = sum(c[0] for c in children.values())
        x = x0
        for name in sorted(children):
            n = children[name]
            w = span * n[0] / parent_total if parent_total else 0
            if w >= 0.5:
                y = depth * row + 20
                label = html.escape(name)
                pct = 100.0 * n[0] / total
                rects.append(
                    f'<g><title>{label} — {n[0]} accesses '
                    f"({pct:.2f}%)</title>"
                    f'<rect x="{x:.1f}" y="{y}" width="{w - pad:.1f}" '
                    f'height="{row - pad}" fill="{color(name)}" '
                    'rx="1"/>'
                    + (f'<text x="{x + 3:.1f}" y="{y + 13}" '
                       f'font-size="11">{label[: int(w / 7)]}</text>'
                       if w > 25 else "")
                    + "</g>")
                layout(n[1], x, x + w, depth + 1)
            x += w

    layout(root[1], 0.0, width, 0)
    with open(out, "w") as f:
        f.write(
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width:.0f}" '
            f'height="{height}" font-family="monospace">\n'
            f'<text x="4" y="14" font-size="12">{html.escape(path)} — '
            f"{total} attributed device accesses</text>\n"
            + "\n".join(rects) + "\n</svg>\n")

    # Console summary: the heaviest leaf causes, so the file is useful
    # even without opening the SVG.
    leaves = defaultdict(int)
    for frames, count in stacks:
        leaves[frames[-1]] += count
    print(f"{path}: {total} attributed device accesses")
    for name, count in sorted(leaves.items(), key=lambda kv: -kv[1]):
        print(f"  {100.0 * count / total:6.2f}%  {name}")
    print(f"wrote {out}")


def is_json(path):
    with open(path) as f:
        head = f.read(64).lstrip()
    return head.startswith("{")


def main():
    args = [a for a in sys.argv[1:] if not a.startswith("--")]
    flags = [a for a in sys.argv[1:] if a.startswith("--")]
    anomalies = None
    for flag in flags:
        if flag.startswith("--anomalies="):
            with open(flag.split("=", 1)[1]) as f:
                anomalies = json.load(f)
            if anomalies.get("schema") != "nvsim-anomaly-v1":
                print(f"{flag}: not an nvsim-anomaly-v1 document")
                return 1
        else:
            print(f"unknown flag {flag}")
            return 2
    if not args:
        print(__doc__)
        return 2
    path = args[0]
    if is_json(path):
        out = (args[1] if len(args) > 1
               else path.rsplit(".", 1)[0] + ".png")
        with open(path) as f:
            doc = json.load(f)
        schema = doc.get("schema", "")
        if schema == "nvsim-telemetry-diff-v1":
            plot_diff(doc, out)
            return 0
        print(f"don't know how to plot schema '{schema}'; "
              "diff reports (nvsim-telemetry-diff-v1) are supported")
        return 1
    if is_folded(path):
        out = (args[1] if len(args) > 1
               else path.rsplit(".", 1)[0] + ".svg")
        plot_folded(path, out)
        return 0
    out = args[1] if len(args) > 1 else path.rsplit(".", 1)[0] + ".png"
    header, rows = load(path)
    if header[:2] == ["time", "channel"]:
        plot_trace(header, rows, out)
    elif header[:2] == ["figure", "variant"]:
        plot_sweep(header, rows, out)
    elif header[:2] == ["run", "set"]:
        plot_heatmap(header, rows, out)
    elif header == ["run", "window", "t0", "t1", "channel", "metric",
                    "value"]:
        plot_telemetry(header, rows, out, anomalies)
    else:
        print(f"don't know how to plot columns {header}; "
              "see EXPERIMENTS.md for the semantics")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
