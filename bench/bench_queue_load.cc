/**
 * @file
 * Latency under load: the queued channel controller's answer to the
 * question the analytic engine cannot ask — what happens to the tail
 * when the offered load approaches the channel's service rate?
 *
 * The sweep reruns the Figure-4a read microbenchmark (array 2.2x the
 * DRAM cache, ~100% 2LM miss rate, 24 threads) against the FR-FCFS
 * queued controller at increasing offered loads, plus one queue-off
 * analytic reference row. Per point it reports whole-run p50/p99/p999
 * demand latency (telemetry sketch) next to the queue counters. The
 * expectation: the analytic row and the lightly loaded queued rows
 * agree, and as the arrival gap closes on the service rate the p99
 * pulls away from the p50 — queueing delay is a tail phenomenon, which
 * is exactly the behavior a closed-form bandwidth model flattens away.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "exec/sweep.hh"
#include "kernels/kernels.hh"
#include "obs/telemetry/telemetry.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 4096;

/** One sweep point: a scheduler and the offered load driving it. */
struct LoadPoint
{
    const char *scheduler;
    double offeredGbs;  //!< controller.offeredGBs; 0 = thread-derived
};

const LoadPoint kPoints[] = {
    {"analytic", 0},  // queue-off reference: the golden analytic path
    {"frfcfs", 1},    {"frfcfs", 2},   {"frfcfs", 4},
    {"frfcfs", 8},    {"frfcfs", 16},
};

/** Everything one sweep point reports, buffered for in-order output. */
struct PointResult
{
    std::vector<std::string> tableRow;
    CsvRows csv;
    double p50 = 0;
    double p99 = 0;
    std::uint64_t queueWaitNs = 0;
};

std::string
pointLabel(const LoadPoint &p)
{
    if (p.offeredGbs <= 0)
        return p.scheduler;
    return fmt("%s@%g", p.scheduler, p.offeredGbs);
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    CsvWriter csv("queue_load.csv");
    csv.row(std::vector<std::string>{
        "scheduler", "offered_gbs", "effective_gbs", "p50_ns", "p99_ns",
        "p999_ns", "queue_wait_ns", "bank_conflicts", "row_buffer_hits",
        "write_drains"});

    banner("Latency under load: queued controller vs offered load",
           "queue-off analytic row matches the light-load queued rows; "
           "p99 pulls away from p50 as the arrival gap closes on the "
           "channel service rate (queueing delay is a tail effect)");

    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::size_t n_points = std::size(kPoints);
    std::vector<PointResult> results = runner.map<PointResult>(
        n_points, [&](std::size_t i) {
            const LoadPoint &p = kPoints[i];

            SystemConfig cfg = benchConfig(opts);
            cfg.mode = MemoryMode::TwoLm;
            cfg.scale = kScale;
            cfg.controller.scheduler = p.scheduler;
            cfg.controller.offeredGBs = p.offeredGbs;
            auto sys_sys = makeSystem(cfg);
            MemorySystem &sys = *sys_sys;
            Region arr =
                sys.allocate(cfg.dramTotal() * 22 / 10, "array");
            primeClean(sys, arr, 8);
            sys.resetCounters();

            // The bench owns a per-point TelemetryRun for the
            // percentile columns (one telemetry collector attaches per
            // system, so --telemetry= session runs are not routed
            // here; observer flags still work through the session).
            std::string label = fmt("queue_load/%s", pointLabel(p).c_str());
            if (obs::Observer *o = session.beginRun(label))
                sys.attachObserver(o);
            obs::TelemetryRun tel(label, obs::TelemetryOptions{});
            sys.attachTelemetry(&tel);

            KernelConfig k;
            k.op = KernelOp::ReadOnly;
            // Random iteration: a sequential sweep keeps all 24 thread
            // streams phase-locked on the same interleave slice, so 2
            // of the 12 channels carry everything and the sweep never
            // leaves saturation. Random spreads channels and banks, so
            // the offered-load axis actually crosses the service knee.
            k.pattern = AccessPattern::Random;
            k.threads = 24;
            KernelResult r = runKernel(sys, arr, k);
            tel.finish();
            session.endRun();

            const PerfCounters &c = r.counters;
            PointResult res;
            res.p50 = static_cast<double>(tel.quantileNs(0.50));
            res.p99 = static_cast<double>(tel.quantileNs(0.99));
            double p999 = static_cast<double>(tel.quantileNs(0.999));
            res.queueWaitNs = c.queueWaitNs;
            res.tableRow = {
                p.scheduler,
                p.offeredGbs > 0 ? fmt("%.0f", p.offeredGbs) : "-",
                gbs(r.effectiveBandwidth),
                fmt("%.0f", res.p50),
                fmt("%.0f", res.p99),
                fmt("%.0f", p999),
                fmt("%llu",
                    static_cast<unsigned long long>(c.queueWaitNs)),
                fmt("%llu",
                    static_cast<unsigned long long>(c.bankConflicts)),
                fmt("%llu",
                    static_cast<unsigned long long>(c.rowBufferHits)),
                fmt("%llu",
                    static_cast<unsigned long long>(c.writeDrains))};
            res.csv.row(std::vector<std::string>{
                p.scheduler, fmt("%g", p.offeredGbs),
                fmt("%f", r.effectiveBandwidth / 1e9),
                fmt("%.0f", res.p50), fmt("%.0f", res.p99),
                fmt("%.0f", p999),
                fmt("%llu",
                    static_cast<unsigned long long>(c.queueWaitNs)),
                fmt("%llu",
                    static_cast<unsigned long long>(c.bankConflicts)),
                fmt("%llu",
                    static_cast<unsigned long long>(c.rowBufferHits)),
                fmt("%llu",
                    static_cast<unsigned long long>(c.writeDrains))});
            return res;
        });

    Table t({"scheduler", "offered GB/s", "effective", "p50 ns",
             "p99 ns", "p999 ns", "queue wait ns", "bank conf",
             "row hits", "drains"});
    for (const PointResult &res : results) {
        t.row(res.tableRow);
        res.csv.flushTo(csv);
    }
    t.print();
    std::printf("\n");

    // Verdict over the frfcfs rows: the saturated tail must exceed its
    // median and the p99 must stretch across the sweep while the
    // lightest load stays queue-quiet relative to it.
    const PointResult &lo = results[1];
    const PointResult &hi = results[n_points - 1];
    double p99_growth = lo.p99 > 0 ? hi.p99 / lo.p99 : 0;
    double p50_growth = lo.p50 > 0 ? hi.p50 / lo.p50 : 0;
    bool ok = hi.p99 > hi.p50 && hi.p99 > lo.p99 &&
              hi.queueWaitNs > lo.queueWaitNs;
    std::printf("queue verdict: p99 grows %.2fx (p50 %.2fx) from "
                "%g to %g GB/s offered; saturated p99 %.0f ns vs "
                "p50 %.0f ns — %s\n",
                p99_growth, p50_growth, kPoints[1].offeredGbs,
                kPoints[n_points - 1].offeredGbs, hi.p99, hi.p50,
                ok ? "tail stretches under load (as expected)"
                   : "UNEXPECTED: tail did not stretch");

    csv.close();
    session.write();
    std::printf("series written to queue_load.csv\n");
    return ok ? 0 : 1;
}
