/**
 * @file
 * Ablation: Sage-style semi-asymmetric placement (Section VII-A.2).
 * The read-only graph lives in NVRAM and all mutable auxiliary state
 * lives in DRAM, so the slow/amplified NVRAM write path is never
 * exercised. Compared against the hardware-managed 2LM run and the
 * naive NUMA-preferred 1LM run on the cache-exceeding input.
 */

#include <cstdio>

#include "bench_common.hh"
#include "bench_graphs_common.hh"
#include "core/csv.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

int
main(int argc, char **argv)
{
    obs::Session session(parseObsOptions(argc, argv));
    banner("Ablation: Sage-style software placement vs 2LM vs NUMA",
           "Sage eliminates NVRAM writes entirely and beats 2LM on "
           "mutation-heavy kernels (paper: Sage ~1.9x over Galois in "
           "2LM)");

    CsvWriter csv("ablation_sage.csv");
    csv.row(std::vector<std::string>{"kernel", "config", "seconds",
                                     "nvram_wr_gb", "total_gb"});

    CsrGraph wdc = wdc12Like();

    for (GraphKernel k : {GraphKernel::Bfs, GraphKernel::PageRank}) {
        std::printf("--- %s ---\n", graphKernelName(k));
        Table t({"config", "runtime(s)", "NVRAM wr (GB)",
                 "total moved (GB)", "speedup vs 2LM"});
        double two_lm_seconds = 0;
        struct Cfg
        {
            const char *name;
            MemoryMode mode;
            Placement placement;
        };
        const Cfg cfgs[] = {
            {"2LM", MemoryMode::TwoLm, Placement::TwoLm},
            {"NUMA", MemoryMode::OneLm, Placement::NumaPreferred},
            {"Sage", MemoryMode::OneLm, Placement::Sage},
        };
        for (const Cfg &c : cfgs) {
            SystemConfig scfg = graphSystem(c.mode);
            MemorySystem sys(scfg);
            GraphWorkload w(sys, wdc, graphRun(c.placement));
            sys.resetCounters();
            attachRun(session, sys,
                      fmt("%s/%s", graphKernelName(k), c.name));
            GraphRunResult r = w.run(k);
            session.endRun();
            if (c.placement == Placement::TwoLm)
                two_lm_seconds = r.seconds;
            double nv_wr = static_cast<double>(r.counters.nvramWrite) *
                           kLineSize / 1e9;
            double total =
                static_cast<double>(r.dataMoved()) / 1e9;
            t.row({c.name, fmt("%.4f", r.seconds), fmt("%.4f", nv_wr),
                   fmt("%.3f", total),
                   fmt("%.2fx", two_lm_seconds / r.seconds)});
            csv.row(std::vector<std::string>{
                graphKernelName(k), c.name, fmt("%f", r.seconds),
                fmt("%f", nv_wr), fmt("%f", total)});
        }
        t.print();
        std::printf("\n");
    }
    csv.close();
    session.write();
    std::printf("rows written to ablation_sage.csv\n");
    return 0;
}
