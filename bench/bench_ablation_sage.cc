/**
 * @file
 * Ablation: Sage-style semi-asymmetric placement (Section VII-A.2).
 * The read-only graph lives in NVRAM and all mutable auxiliary state
 * lives in DRAM, so the slow/amplified NVRAM write path is never
 * exercised. Compared against the hardware-managed 2LM run and the
 * naive NUMA-preferred 1LM run on the cache-exceeding input.
 */

#include <cstdio>

#include "bench_common.hh"
#include "bench_graphs_common.hh"
#include "core/csv.hh"
#include "exec/sweep.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

namespace
{

struct Cfg
{
    const char *name;
    MemoryMode mode;
    Placement placement;
};

const Cfg kCfgs[] = {
    {"2LM", MemoryMode::TwoLm, Placement::TwoLm},
    {"NUMA", MemoryMode::OneLm, Placement::NumaPreferred},
    {"Sage", MemoryMode::OneLm, Placement::Sage},
};

const GraphKernel kKernels[] = {GraphKernel::Bfs,
                                GraphKernel::PageRank};

/**
 * One (kernel, config) point. The speedup-vs-2LM column needs the 2LM
 * row of the same kernel group, so it is computed at collection time
 * from the buffered seconds.
 */
struct PointResult
{
    double seconds;
    std::string nvWr;
    std::string total;
    CsvRows csv;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Ablation: Sage-style software placement vs 2LM vs NUMA",
           "Sage eliminates NVRAM writes entirely and beats 2LM on "
           "mutation-heavy kernels (paper: Sage ~1.9x over Galois in "
           "2LM)");

    CsvWriter csv("ablation_sage.csv");
    csv.row(std::vector<std::string>{"kernel", "config", "seconds",
                                     "nvram_wr_gb", "total_gb"});

    // The input is built once and shared read-only across tasks.
    const CsrGraph wdc = wdc12Like();
    constexpr std::size_t kNCfgs = std::size(kCfgs);

    // One task per (kernel, config) point; collection replays them in
    // declaration order so output is byte-identical for any --jobs=N.
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<PointResult> results = runner.map<PointResult>(
        std::size(kKernels) * kNCfgs, [&](std::size_t i) {
            GraphKernel k = kKernels[i / kNCfgs];
            const Cfg &c = kCfgs[i % kNCfgs];
            SystemConfig scfg = graphSystem(c.mode);
            auto sys_sys = makeSystem(scfg);
            MemorySystem &sys = *sys_sys;
            GraphWorkload w(sys, wdc, graphRun(c.placement));
            sys.resetCounters();
            attachRun(session, sys,
                      fmt("%s/%s", graphKernelName(k), c.name));
            GraphRunResult r = w.run(k);
            session.endRun();
            double nv_wr = static_cast<double>(r.counters.nvramWrite) *
                           kLineSize / 1e9;
            double total = static_cast<double>(r.dataMoved()) / 1e9;
            PointResult res;
            res.seconds = r.seconds;
            res.nvWr = fmt("%.4f", nv_wr);
            res.total = fmt("%.3f", total);
            res.csv.row(std::vector<std::string>{
                graphKernelName(k), c.name, fmt("%f", r.seconds),
                fmt("%f", nv_wr), fmt("%f", total)});
            return res;
        });

    for (std::size_t ki = 0; ki < std::size(kKernels); ++ki) {
        std::printf("--- %s ---\n", graphKernelName(kKernels[ki]));
        Table t({"config", "runtime(s)", "NVRAM wr (GB)",
                 "total moved (GB)", "speedup vs 2LM"});
        double two_lm_seconds = results[ki * kNCfgs].seconds;
        for (std::size_t ci = 0; ci < kNCfgs; ++ci) {
            const PointResult &res = results[ki * kNCfgs + ci];
            t.row({kCfgs[ci].name, fmt("%.4f", res.seconds), res.nvWr,
                   res.total,
                   fmt("%.2fx", two_lm_seconds / res.seconds)});
            res.csv.flushTo(csv);
        }
        t.print();
        std::printf("\n");
    }
    csv.close();
    session.write();
    std::printf("rows written to ablation_sage.csv\n");
    return 0;
}
