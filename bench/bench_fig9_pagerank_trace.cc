/**
 * @file
 * Figure 9 reproduction: pagerank-push bandwidth and tag traces.
 *
 *  9a: kron30 (fits in cache): stable DRAM bandwidth, roughly equal
 *      reads and writes, no NVRAM traffic to speak of.
 *  9b: wdc12 (exceeds cache): much lower average bandwidth, excess
 *      DRAM reads, heavy NVRAM traffic.
 *  9c: wdc12 tag trace: clean and dirty misses present, hit rate
 *      correlates with DRAM bandwidth.
 */

#include <cstdio>

#include "bench_common.hh"
#include "bench_graphs_common.hh"
#include "core/csv.hh"
#include "core/units.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

namespace
{

void
tracePagerank(obs::Session &session, const char *name,
              const CsrGraph &g, const std::string &csv_path)
{
    SystemConfig cfg = graphSystem(MemoryMode::TwoLm);
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    GraphWorkload w(sys, g, graphRun(Placement::TwoLm));
    sys.resetCounters();
    attachRun(session, sys, fmt("%s/pagerank", name));
    GraphRunResult r = w.run(GraphKernel::PageRank);
    session.endRun();

    const TimeSeries &ts = sys.trace();
    std::printf("--- %s (%s binary) ---\n", name,
                formatBytes(g.bytes()).c_str());
    std::printf("runtime %.4f s | mean DRAM rd %.2f wr %.2f GB/s | "
                "mean NVRAM rd %.2f wr %.2f GB/s\n",
                r.seconds, ts.mean("dram_read_bw"),
                ts.mean("dram_write_bw"), ts.mean("nvram_read_bw"),
                ts.mean("nvram_write_bw"));
    std::printf("tag mix: hit %.2f | clean miss %.3f | dirty miss %.3f "
                "| ddo %.3f\n\n",
                ts.mean("tag_hit_frac"), ts.mean("tag_miss_clean_frac"),
                ts.mean("tag_miss_dirty_frac"), ts.mean("ddo_hit_frac"));
    writeTimeSeriesCsv(csv_path, ts);
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Figure 9: pagerank-push traces in 2LM",
           "stable ~70 GB/s DRAM-only on the fitting input; lower "
           "bandwidth with excess DRAM reads plus heavy NVRAM traffic "
           "and mixed clean/dirty misses on the exceeding input");

    CsrGraph kron = kron30Like();
    tracePagerank(session, "9a: kron30-like", kron,
                  "fig9a_kron_trace.csv");

    CsrGraph wdc = wdc12Like();
    tracePagerank(session, "9b/9c: wdc12-like", wdc,
                  "fig9b_wdc_trace.csv");

    session.write();
    std::printf("traces written to fig9a_kron_trace.csv / "
                "fig9b_wdc_trace.csv\n");
    return 0;
}
