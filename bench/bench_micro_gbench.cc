/**
 * @file
 * google-benchmark microbenchmarks of the simulator's own hot paths:
 * how many simulated accesses per second each layer sustains. These
 * guard the simulator's throughput (the figure benches stream hundreds
 * of millions of lines) rather than reproducing a paper result.
 *
 * The binary shares the nvsim flag set with the figure benches:
 * parseBenchOptionsPartial() consumes --config=/--jobs=/observability
 * flags and compacts argv before benchmark::Initialize() sees it, so
 * nvsim and --benchmark_* flags coexist. The obs::Session exists for
 * its provenance side: requested artifacts (telemetry JSON, Prometheus
 * text, Perfetto trace) carry the run manifest, and --config= reshapes
 * the platform under BM_MemorySystem*. Per-run telemetry is still not
 * attached inside benchmark bodies — the harness re-runs each body an
 * adaptive number of times, which would fold warmup iterations into
 * the windows; use the figure benches for windowed observability.
 */

#include <benchmark/benchmark.h>

#include "bench_common.hh"
#include "core/lfsr.hh"
#include "imc/dram_cache.hh"
#include "kernels/pattern.hh"
#include "sys/memsys.hh"

using namespace nvsim;

namespace
{

/** Parsed nvsim flags, shared with the benchmark bodies. */
const bench::BenchOptions *g_opts = nullptr;

SystemConfig
platformConfig()
{
    return g_opts ? bench::benchConfig(*g_opts) : SystemConfig{};
}

void
BM_LfsrNext(benchmark::State &state)
{
    Lfsr lfsr(32, 12345);
    for (auto _ : state)
        benchmark::DoNotOptimize(lfsr.next());
}
BENCHMARK(BM_LfsrNext);

void
BM_OffsetSequenceRandom(benchmark::State &state)
{
    OffsetSequence seq(AccessPattern::Random,
                       static_cast<std::uint64_t>(state.range(0)), 3);
    for (auto _ : state) {
        auto v = seq.next();
        if (!v) {
            seq.reset();
            v = seq.next();
        }
        benchmark::DoNotOptimize(*v);
    }
}
BENCHMARK(BM_OffsetSequenceRandom)->Arg(1 << 10)->Arg(1 << 20);

void
BM_DramCacheReadHit(benchmark::State &state)
{
    DramCacheParams p;
    p.capacity = 1 * kMiB;
    DramCache cache(p);
    cache.read(0);
    for (auto _ : state)
        benchmark::DoNotOptimize(cache.read(0));
}
BENCHMARK(BM_DramCacheReadHit);

void
BM_DramCacheMissStream(benchmark::State &state)
{
    DramCacheParams p;
    p.capacity = 1 * kMiB;
    DramCache cache(p);
    Addr a = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.read(a));
        a += kLineSize;
    }
}
BENCHMARK(BM_DramCacheMissStream);

void
BM_MemorySystemLoadLine(benchmark::State &state)
{
    SystemConfig cfg = platformConfig();
    cfg.mode = static_cast<MemoryMode>(state.range(0));
    cfg.scale = 4096;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    Region r = sys.allocate(16 * kMiB, "arr");
    Addr a = r.base;
    for (auto _ : state) {
        sys.touchLine(0, CpuOp::Load, a);
        a += kLineSize;
        if (a >= r.base + r.size)
            a = r.base;
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_MemorySystemLoadLine)
    ->Arg(static_cast<int>(MemoryMode::OneLm))
    ->Arg(static_cast<int>(MemoryMode::TwoLm));

void
BM_MemorySystemNtStoreLine(benchmark::State &state)
{
    SystemConfig cfg = platformConfig();
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 4096;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    Region r = sys.allocate(16 * kMiB, "arr");
    Addr a = r.base;
    for (auto _ : state) {
        sys.touchLine(0, CpuOp::NtStore, a);
        a += kLineSize;
        if (a >= r.base + r.size)
            a = r.base;
    }
    state.SetBytesProcessed(
        static_cast<std::int64_t>(state.iterations()) * kLineSize);
}
BENCHMARK(BM_MemorySystemNtStoreLine);

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts =
        bench::parseBenchOptionsPartial(argc, argv);
    g_opts = &opts;
    obs::Session session(opts.obs);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    session.write();
    return 0;
}
