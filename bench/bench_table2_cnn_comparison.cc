/**
 * @file
 * Table II reproduction: data moved and execution time for the three
 * CNNs in 2LM and under AutoTM-style software management.
 *
 * Paper: AutoTM achieves 1.8x (Inception v4), 2.2x (ResNet 200) and
 * 3.1x (DenseNet 264) speedups over 2LM, with similar DRAM traffic
 * but only 50-60% of the NVRAM traffic.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "dnn/autotm.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

namespace
{

constexpr std::uint64_t kScale = 1u << 14;

struct NetCase
{
    const char *label;
    const char *name;
    std::uint64_t batch;  //!< chosen for a >650 GB unscaled footprint
};

const NetCase kNets[] = {
    {"Inception v4", "inceptionv4", 4096},
    {"Resnet 200", "resnet200", 2560},
    {"DenseNet 264", "densenet264", 2304},
};

struct RunNumbers
{
    double dram_rd, dram_wr, nv_rd, nv_wr, seconds;
};

RunNumbers
numbers(const IterationResult &r)
{
    auto gbv = [](std::uint64_t lines) {
        return static_cast<double>(lines) * kLineSize / 1e9;
    };
    return {gbv(r.counters.dramRead), gbv(r.counters.dramWrite),
            gbv(r.counters.nvramRead), gbv(r.counters.nvramWrite),
            r.seconds};
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Table II: data moved and runtime, 2LM vs AutoTM",
           "AutoTM: similar DRAM traffic, 50-60% of the NVRAM "
           "traffic, speedups 1.8x / 2.2x / 3.1x");

    CsvWriter csv("table2_cnn_comparison.csv");
    csv.row(std::vector<std::string>{"network", "config", "dram_rd_gb",
                                     "dram_wr_gb", "nvram_rd_gb",
                                     "nvram_wr_gb", "seconds"});

    Table t({"network", "config", "DRAM rd", "DRAM wr", "NVRAM rd",
             "NVRAM wr", "runtime(s)", "speedup"});

    for (const NetCase &n : kNets) {
        ComputeGraph g = buildNetwork(n.name, n.batch);

        // 2LM run.
        SystemConfig cfg2;
        cfg2.mode = MemoryMode::TwoLm;
        cfg2.scale = kScale;
        cfg2.scatterPages = true;  // OS demand paging (2 MiB THP)
        auto sys2_sys = makeSystem(cfg2);
        MemorySystem &sys2 = *sys2_sys;
        ExecutorConfig ecfg;
        ecfg.threads = 24;
        Executor ex2(sys2, g, ecfg);
        ex2.runIteration();
        sys2.resetCounters();
        attachRun(session, sys2, fmt("%s/2lm", n.name));
        RunNumbers two = numbers(ex2.runIteration());
        session.endRun();

        // AutoTM run.
        SystemConfig cfg1 = cfg2;
        cfg1.mode = MemoryMode::OneLm;
        auto sys1_sys = makeSystem(cfg1);
        MemorySystem &sys1 = *sys1_sys;
        AutoTmConfig acfg;
        acfg.exec = ecfg;
        AutoTmExecutor ex1(sys1, g, acfg);
        ex1.runIteration();
        sys1.resetCounters();
        attachRun(session, sys1, fmt("%s/autotm", n.name));
        RunNumbers at = numbers(ex1.runIteration());
        session.endRun();

        t.row({n.label, "2LM", gb(two.dram_rd * 1e9),
               gb(two.dram_wr * 1e9), gb(two.nv_rd * 1e9),
               gb(two.nv_wr * 1e9), fmt("%.4f", two.seconds), ""});
        t.row({"", "AutoTM", gb(at.dram_rd * 1e9),
               gb(at.dram_wr * 1e9), gb(at.nv_rd * 1e9),
               gb(at.nv_wr * 1e9), fmt("%.4f", at.seconds),
               fmt("%.2fx", two.seconds / at.seconds)});
        csv.row(std::vector<std::string>{
            n.label, "2LM", fmt("%f", two.dram_rd),
            fmt("%f", two.dram_wr), fmt("%f", two.nv_rd),
            fmt("%f", two.nv_wr), fmt("%f", two.seconds)});
        csv.row(std::vector<std::string>{
            n.label, "AutoTM", fmt("%f", at.dram_rd),
            fmt("%f", at.dram_wr), fmt("%f", at.nv_rd),
            fmt("%f", at.nv_wr), fmt("%f", at.seconds)});

        double nv_ratio = (at.nv_rd + at.nv_wr) /
                          std::max(two.nv_rd + two.nv_wr, 1e-12);
        std::printf("%s: AutoTM NVRAM traffic = %.0f%% of 2LM "
                    "(paper: 50-60%%)\n",
                    n.label, 100.0 * nv_ratio);
    }

    std::printf("\n");
    t.print();
    std::printf("\n(GB at scale 1/%llu; multiply by the scale for "
                "paper-equivalent magnitudes)\n",
                static_cast<unsigned long long>(kScale));
    csv.close();
    session.write();
    std::printf("rows written to table2_cnn_comparison.csv\n");
    return 0;
}
