/**
 * @file
 * Ablation: DRAM-cache policy. The paper's critique (Section IV-VI)
 * targets one specific design — direct mapped, tags in the DRAM ECC
 * bits, insert on every miss — so the natural question is how much of
 * the damage is that policy rather than DRAM caching per se. This
 * bench sweeps every registered CachePolicy over the Figure 4
 * microbenchmark scenarios at three array-to-cache ratios (fitting,
 * slightly exceeding, 2.2x = the paper's miss-rate grid) and reports
 * effective bandwidth and device-access amplification for each.
 *
 * Expectations: at ratio 0.5 (everything fits) the policies converge —
 * hits cost the same one device access everywhere. At 2.2x the stock
 * policy pays Table I amplification on every miss; the SRAM-tag policy
 * drops the tag-probe read (and one write-miss DRAM write); the
 * selective-insert policy stops inserting streaming lines entirely and
 * approaches 1LM NVRAM behavior with a shrunken amplification.
 *
 * Run with --config=FILE to resweep on a custom platform (the config's
 * policy.kind is overridden by the sweep; its other policy knobs, e.g.
 * insert_threshold, are honored).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "exec/sweep.hh"
#include "imc/cache_policy.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 8192;

struct Scenario
{
    const char *name;
    KernelOp op;
    bool nontemporal;
    bool prime_dirty;
    unsigned threads;
};

const Scenario kScenarios[] = {
    {"read-only", KernelOp::ReadOnly, true, false, 24},
    {"write-nt", KernelOp::WriteOnly, true, true, 24},
    {"rmw", KernelOp::ReadModifyWrite, false, true, 4},
};

/** Array size as tenths of the DRAM cache capacity (Fig 4 grid). */
const unsigned kRatioTenths[] = {5, 11, 22};

/** Everything one sweep point reports, buffered for in-order output. */
struct PointResult
{
    std::vector<std::string> tableRow;
    CsvRows csv;
};

PointResult
runPoint(obs::Session &session, const SystemConfig &base,
         const std::string &policy, const Scenario &s,
         unsigned ratio_tenths)
{
    SystemConfig cfg = base;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = kScale;
    cfg.policy.kind = policy;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    Region arr =
        sys.allocate(cfg.dramTotal() * ratio_tenths / 10, "array");
    if (s.prime_dirty)
        primeDirty(sys, arr, 8);
    else
        primeClean(sys, arr, 8);
    sys.resetCounters();

    attachRun(session, sys,
              fmt("%s/%s/%u.%ux", policy.c_str(), s.name,
                  ratio_tenths / 10, ratio_tenths % 10));
    KernelConfig k;
    k.op = s.op;
    k.pattern = AccessPattern::Sequential;
    k.threads = s.threads;
    k.nontemporal = s.nontemporal;
    KernelResult r = runKernel(sys, arr, k);
    session.endRun();

    double demand = static_cast<double>(
        std::max<std::uint64_t>(r.counters.demand(), 1));
    double hits =
        static_cast<double>(r.counters.tagHit + r.counters.ddoHit);
    double miss_rate = 1.0 - hits / demand;
    double bypass_frac =
        static_cast<double>(r.counters.missBypass) / demand;

    PointResult res;
    res.tableRow = {policy, fmt("%u.%ux", ratio_tenths / 10,
                                ratio_tenths % 10),
                    fmt("%.3f", miss_rate), gbs(r.effectiveBandwidth),
                    gbs(r.nvramReadBandwidth()),
                    gbs(r.nvramWriteBandwidth()),
                    fmt("%.2f", r.counters.amplification()),
                    fmt("%.2f", bypass_frac)};
    res.csv.row(std::vector<std::string>{
        policy, s.name,
        fmt("%u.%u", ratio_tenths / 10, ratio_tenths % 10),
        fmt("%f", miss_rate), fmt("%f", r.effectiveBandwidth / 1e9),
        fmt("%f", r.counters.amplification()), fmt("%f", bypass_frac)});
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    const SystemConfig base = benchConfig(opts);

    banner("Ablation: pluggable DRAM-cache policies on the Fig 4 grid",
           "policies converge when the array fits; past capacity the "
           "tags-in-ECC insert-on-miss design pays Table I "
           "amplification while SRAM tags shed the tag-probe reads and "
           "selective insertion sheds the fills themselves");

    const std::vector<std::string> policies =
        CachePolicyRegistry::instance().names();
    for (const std::string &p : policies)
        std::printf("policy %-24s %s\n", p.c_str(),
                    CachePolicyRegistry::instance().description(p).c_str());
    std::printf("\n");

    CsvWriter csv("ablation_policy.csv");
    csv.row(std::vector<std::string>{"policy", "scenario", "ratio",
                                     "miss_rate", "effective_gbs",
                                     "amplification", "bypass_frac"});

    // One task per (scenario, ratio, policy) point; the collection
    // below replays them in declaration order, so the output is
    // byte-identical for any --jobs=N.
    constexpr std::size_t kNRatios = std::size(kRatioTenths);
    const std::size_t per_scenario = kNRatios * policies.size();
    const std::size_t n_points =
        std::size(kScenarios) * per_scenario;
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<PointResult> results = runner.map<PointResult>(
        n_points, [&](std::size_t i) {
            const Scenario &s = kScenarios[i / per_scenario];
            std::size_t j = i % per_scenario;
            return runPoint(session, base, policies[j % policies.size()],
                            s, kRatioTenths[j / policies.size()]);
        });

    for (std::size_t si = 0; si < std::size(kScenarios); ++si) {
        std::printf("--- %s ---\n", kScenarios[si].name);
        Table t({"policy", "array/cache", "miss rate", "effective",
                 "NVRAM rd", "NVRAM wr", "amp", "bypass/req"});
        for (std::size_t j = 0; j < per_scenario; ++j) {
            const PointResult &res = results[si * per_scenario + j];
            t.row(res.tableRow);
            res.csv.flushTo(csv);
        }
        t.print();
        std::printf("\n");
    }

    csv.close();
    session.write();
    std::printf("rows written to ablation_policy.csv\n");
    return 0;
}
