/**
 * @file
 * Extension experiment: the paper's Section VII-B future direction —
 * hardware-assisted (DMA) data movement for software-managed
 * heterogeneous memory. The limitation the paper identifies is that
 * software approaches "use the CPU cores to move data via loads and
 * nontemporal stores" and "it is difficult to transfer data
 * asynchronously". We sweep the DMA engines' aggregate bandwidth and
 * compare against CPU-moved AutoTM and the 2LM baseline on the
 * spill-heavy DenseNet workload.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "dnn/autotm.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

namespace
{

constexpr std::uint64_t kScale = 1u << 14;
constexpr std::uint64_t kBatch = 2304;

double
runAutoTm(const ComputeGraph &g, bool use_dma, unsigned engines,
          double engine_bw, Bytes *moved)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::OneLm;
    cfg.scale = kScale;
    cfg.dmaEngines = engines;
    cfg.dmaEngineBandwidth = engine_bw;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    AutoTmConfig acfg;
    acfg.exec.threads = 24;
    acfg.useDma = use_dma;
    AutoTmExecutor ex(sys, g, acfg);
    ex.runIteration();
    sys.resetCounters();
    IterationResult r = ex.runIteration();
    if (moved)
        *moved = ex.stats().bytesToDram + ex.stats().bytesToNvram;
    return r.seconds;
}

} // namespace

int
main()
{
    banner("Extension: DMA copy engines for tensor movement (Sec "
           "VII-B)",
           "software management plus asynchronous hardware movers "
           "should beat CPU-moved AutoTM; weak I/O-class engines "
           "(today's hardware) should not");

    ComputeGraph g = buildDenseNet264(kBatch);

    CsvWriter csv("ext_dma_mover.csv");
    csv.row(std::vector<std::string>{"mover", "engines",
                                     "engine_gbs", "seconds",
                                     "speedup_vs_cpu"});

    Bytes moved = 0;
    double cpu = runAutoTm(g, false, 4, 8e9, &moved);
    std::printf("AutoTM with CPU moves: %.4f s (%s moved per "
                "iteration)\n\n",
                cpu, fmt("%.1f MiB", moved / 1048576.0).c_str());
    csv.row(std::vector<std::string>{"cpu", "0", "0", fmt("%f", cpu),
                                     "1.00"});

    Table t({"DMA config", "aggregate GB/s", "iteration(s)",
             "speedup vs CPU moves"});
    struct Sweep
    {
        const char *name;
        unsigned engines;
        double bw;
    };
    const Sweep sweeps[] = {
        {"I/O-class engine (today)", 1, 3e9},
        {"4 engines x 8 GB/s", 4, 8e9},
        {"4 engines x 16 GB/s", 4, 16e9},
        {"8 engines x 16 GB/s", 8, 16e9},
    };
    for (const Sweep &s : sweeps) {
        double secs = runAutoTm(g, true, s.engines, s.bw, nullptr);
        t.row({s.name, fmt("%.0f", s.engines * s.bw / 1e9),
               fmt("%.4f", secs), fmt("%.2fx", cpu / secs)});
        csv.row(std::vector<std::string>{
            "dma", fmt("%u", s.engines), fmt("%f", s.bw / 1e9),
            fmt("%f", secs), fmt("%f", cpu / secs)});
    }
    t.print();

    csv.close();
    std::printf("\nrows written to ext_dma_mover.csv\n");
    return 0;
}
