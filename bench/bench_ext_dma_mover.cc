/**
 * @file
 * Extension experiment: the paper's Section VII-B future direction —
 * hardware-assisted (DMA) data movement for software-managed
 * heterogeneous memory. The limitation the paper identifies is that
 * software approaches "use the CPU cores to move data via loads and
 * nontemporal stores" and "it is difficult to transfer data
 * asynchronously". We sweep the DMA engines' aggregate bandwidth and
 * compare against CPU-moved AutoTM and the 2LM baseline on the
 * spill-heavy DenseNet workload.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "dnn/autotm.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

namespace
{

constexpr std::uint64_t kScale = 1u << 14;
constexpr std::uint64_t kBatch = 2304;

struct Sweep
{
    const char *name;
    const char *label;  //!< obs run label
    unsigned engines;
    double bw;
};

const Sweep kSweeps[] = {
    {"I/O-class engine (today)", "dma/1x3", 1, 3e9},
    {"4 engines x 8 GB/s", "dma/4x8", 4, 8e9},
    {"4 engines x 16 GB/s", "dma/4x16", 4, 16e9},
    {"8 engines x 16 GB/s", "dma/8x16", 8, 16e9},
};

double
runAutoTm(obs::Session &session, const SystemConfig &base,
          const ComputeGraph &g, const char *label, bool use_dma,
          unsigned engines, double engine_bw, Bytes *moved)
{
    SystemConfig cfg = base;
    cfg.mode = MemoryMode::OneLm;
    cfg.scale = kScale;
    cfg.dmaEngines = engines;
    cfg.dmaEngineBandwidth = engine_bw;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    AutoTmConfig acfg;
    acfg.exec.threads = 24;
    acfg.useDma = use_dma;
    AutoTmExecutor ex(sys, g, acfg);
    ex.runIteration();
    sys.resetCounters();
    attachRun(session, sys, label);
    IterationResult r = ex.runIteration();
    session.endRun();
    if (moved)
        *moved = ex.stats().bytesToDram + ex.stats().bytesToNvram;
    return r.seconds;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Extension: DMA copy engines for tensor movement (Sec "
           "VII-B)",
           "software management plus asynchronous hardware movers "
           "should beat CPU-moved AutoTM; weak I/O-class engines "
           "(today's hardware) should not");

    ComputeGraph g = buildDenseNet264(kBatch);

    CsvWriter csv("ext_dma_mover.csv");
    csv.row(std::vector<std::string>{"mover", "engines",
                                     "engine_gbs", "seconds",
                                     "speedup_vs_cpu"});

    // The CPU-moved baseline runs first (every sweep point normalizes
    // against it), then the engine sweep runs in parallel.
    SystemConfig base = benchConfig(opts);
    Bytes moved = 0;
    double cpu =
        runAutoTm(session, base, g, "cpu", false, 4, 8e9, &moved);
    std::printf("AutoTM with CPU moves: %.4f s (%s moved per "
                "iteration)\n\n",
                cpu, fmt("%.1f MiB", moved / 1048576.0).c_str());
    csv.row(std::vector<std::string>{"cpu", "0", "0", fmt("%f", cpu),
                                     "1.00"});

    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<double> secs = runner.map<double>(
        std::size(kSweeps), [&](std::size_t i) {
            const Sweep &s = kSweeps[i];
            return runAutoTm(session, base, g, s.label, true,
                             s.engines, s.bw, nullptr);
        });

    Table t({"DMA config", "aggregate GB/s", "iteration(s)",
             "speedup vs CPU moves"});
    for (std::size_t i = 0; i < std::size(kSweeps); ++i) {
        const Sweep &s = kSweeps[i];
        t.row({s.name, fmt("%.0f", s.engines * s.bw / 1e9),
               fmt("%.4f", secs[i]), fmt("%.2fx", cpu / secs[i])});
        csv.row(std::vector<std::string>{
            "dma", fmt("%u", s.engines), fmt("%f", s.bw / 1e9),
            fmt("%f", secs[i]), fmt("%f", cpu / secs[i])});
    }
    t.print();

    csv.close();
    session.write();
    std::printf("\nrows written to ext_dma_mover.csv\n");
    return 0;
}
