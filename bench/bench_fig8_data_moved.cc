/**
 * @file
 * Figure 8 reproduction: total data moved during each graph kernel on
 * the cache-exceeding input (wdc12), with NVRAM as explicit NUMA
 * memory (8a — the true demand traffic, since there is no cache in
 * the path) versus 2LM (8b — with the DRAM cache's access
 * amplification). Paper: 2LM moves significantly more data.
 */

#include <cstdio>

#include "bench_common.hh"
#include "bench_graphs_common.hh"
#include "core/csv.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Figure 8: total data moved, NUMA (1LM) vs 2LM, wdc12-like",
           "2LM shows significant access amplification over the true "
           "demand traffic of the NUMA configuration");

    CsvWriter csv("fig8_data_moved.csv");
    csv.row(std::vector<std::string>{"config", "kernel", "dram_gb",
                                     "nvram_gb", "total_gb",
                                     "seconds"});

    CsrGraph wdc = wdc12Like();
    Table t({"kernel", "NUMA total", "NUMA dram/nvram", "2LM total",
             "2LM dram/nvram", "amplification"});

    for (GraphKernel k : {GraphKernel::Bfs, GraphKernel::Cc,
                          GraphKernel::KCore, GraphKernel::PageRank}) {
        auto run = [&](MemoryMode mode, Placement p) {
            SystemConfig cfg = graphSystem(mode);
            auto sys_sys = makeSystem(cfg);
            MemorySystem &sys = *sys_sys;
            GraphWorkload w(sys, wdc, graphRun(p));
            sys.resetCounters();
            attachRun(session, sys,
                      fmt("%s/%s", memoryModeName(mode),
                          graphKernelName(k)));
            GraphRunResult r = w.run(k);
            session.endRun();
            return r;
        };
        GraphRunResult numa =
            run(MemoryMode::OneLm, Placement::NumaPreferred);
        GraphRunResult two = run(MemoryMode::TwoLm, Placement::TwoLm);

        auto dram_bytes = [](const GraphRunResult &r) {
            return static_cast<double>(
                (r.counters.dramRead + r.counters.dramWrite) *
                kLineSize);
        };
        auto nvram_bytes = [](const GraphRunResult &r) {
            return static_cast<double>(
                (r.counters.nvramRead + r.counters.nvramWrite) *
                kLineSize);
        };
        double numa_total = dram_bytes(numa) + nvram_bytes(numa);
        double two_total = dram_bytes(two) + nvram_bytes(two);
        t.row({graphKernelName(k), gb(numa_total),
               fmt("%s / %s", gb(dram_bytes(numa)).c_str(),
                   gb(nvram_bytes(numa)).c_str()),
               gb(two_total),
               fmt("%s / %s", gb(dram_bytes(two)).c_str(),
                   gb(nvram_bytes(two)).c_str()),
               fmt("%.2fx", two_total / numa_total)});
        csv.row(std::vector<std::string>{
            "numa", graphKernelName(k), fmt("%f", dram_bytes(numa) / 1e9),
            fmt("%f", nvram_bytes(numa) / 1e9),
            fmt("%f", numa_total / 1e9), fmt("%f", numa.seconds)});
        csv.row(std::vector<std::string>{
            "2lm", graphKernelName(k), fmt("%f", dram_bytes(two) / 1e9),
            fmt("%f", nvram_bytes(two) / 1e9),
            fmt("%f", two_total / 1e9), fmt("%f", two.seconds)});
    }
    t.print();
    std::printf("\n(GB values are at simulation scale 1/%llu; multiply "
                "by the scale for paper-equivalent magnitudes)\n",
                static_cast<unsigned long long>(kGraphScale));
    csv.close();
    session.write();
    std::printf("series written to fig8_data_moved.csv\n");
    return 0;
}
