/**
 * @file
 * Figure 6 reproduction: per-kernel view of two consecutive dense
 * blocks during the DenseNet forward pass in 2LM. The paper finds the
 * memory-bound Concat and (first) BatchNorm kernels are the
 * bottleneck, while convolutions are compute bound.
 */

#include <cstdio>
#include <map>

#include "bench_common.hh"
#include "core/csv.hh"
#include "core/units.hh"
#include "dnn/executor.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    constexpr std::uint64_t kScale = 1u << 14;
    constexpr std::uint64_t kBatch = 2304;

    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = kScale;
    cfg.scatterPages = true;  // OS demand paging (2 MiB THP)
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;

    ComputeGraph g = buildDenseNet264(kBatch);
    ExecutorConfig ecfg;
    ecfg.threads = 24;
    Executor ex(sys, g, ecfg);

    ex.runIteration();
    sys.resetCounters();
    attachRun(session, sys, "fig6/densenet264");
    IterationResult res = ex.runIteration();
    session.endRun();

    banner("Figure 6: kernel snapshot of two dense blocks (forward)",
           "Concat and the first (wide) BatchNorm are the memory-bound "
           "bottlenecks; convolutions are compute bound");

    // Pick two dense layers in the middle of the forward pass: find
    // the 3rd-from-middle Concat and print the following ~12 kernels.
    std::size_t fwd = g.forwardOps();
    std::size_t start = 0;
    unsigned concats_seen = 0;
    for (std::size_t i = fwd / 2; i < fwd; ++i) {
        if (res.kernels[i].kind == OpKind::Concat) {
            start = i;
            if (++concats_seen == 1)
                break;
        }
    }

    Table t({"kernel", "type", "duration(ms)", "bytes", "GB/s",
             "GFLOP/s"});
    CsvWriter csv("fig6_kernel_snapshot.csv");
    csv.row(std::vector<std::string>{"index", "kernel", "type", "start",
                                     "end", "bytes", "flops"});
    for (std::size_t i = start; i < start + 14 && i < fwd; ++i) {
        const KernelEvent &k = res.kernels[i];
        double dt = k.end - k.start;
        t.row({k.name, opKindName(k.kind), fmt("%.4f", dt * 1e3),
               formatBytes(k.bytesTouched),
               dt > 0 ? gbs(static_cast<double>(k.bytesTouched) / dt)
                      : "-",
               dt > 0 ? fmt("%.1f", k.flops / dt / 1e9) : "-"});
        csv.row(std::vector<std::string>{
            fmt("%zu", i), k.name, opKindName(k.kind),
            fmt("%f", k.start), fmt("%f", k.end),
            fmt("%llu", static_cast<unsigned long long>(k.bytesTouched)),
            fmt("%f", k.flops)});
    }
    t.print();

    // Aggregate: which kernel families eat the forward pass?
    std::map<std::string, double> time_by_kind;
    double fwd_total = 0;
    for (std::size_t i = 0; i < fwd; ++i) {
        const KernelEvent &k = res.kernels[i];
        time_by_kind[opKindName(k.kind)] += k.end - k.start;
        fwd_total += k.end - k.start;
    }
    std::printf("\nforward-pass time by kernel family:\n");
    for (const auto &[kind, secs] : time_by_kind) {
        std::printf("  %-12s %6.2f%%\n", kind.c_str(),
                    100.0 * secs / fwd_total);
    }

    csv.close();
    session.write();
    std::printf("\nsnapshot written to fig6_kernel_snapshot.csv\n");
    return 0;
}
