/**
 * @file
 * Figure 5 reproduction: memory behavior of one DenseNet 264 training
 * iteration in 2LM (batch scaled to the paper's ~688 GB footprint
 * regime against the 192 GB DRAM cache).
 *
 *  5a: retired-instruction rate (MIPS proxy) through time.
 *  5b: DRAM cache tag statistics through time. Paper: very few clean
 *      misses; many dirty misses in both passes; hit bursts at the
 *      start of the forward and backward passes.
 *  5c: DRAM/NVRAM bandwidth through time; dirty-miss regions have low
 *      bandwidth and MIPS.
 *  5d: the arena liveness map: live memory accumulates in the forward
 *      pass and folds back in the backward pass.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "core/units.hh"
#include "dnn/executor.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    constexpr std::uint64_t kScale = 1u << 14;
    constexpr std::uint64_t kBatch = 2304;  // ~706 GB arena unscaled

    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = kScale;
    cfg.scatterPages = true;  // OS demand paging (2 MiB THP)
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;

    ComputeGraph g = buildDenseNet264(kBatch);
    ExecutorConfig ecfg;
    ecfg.threads = 24;
    Executor ex(sys, g, ecfg);

    banner("Figure 5: DenseNet 264 training iteration in 2LM",
           "few clean misses; dirty misses dominate both passes; tag-"
           "hit bursts at pass starts; low bandwidth during dirty-miss "
           "regions; live memory accumulates forward / folds backward");

    std::printf("arena: %s (unscaled %.0f GB), DRAM cache: %s, "
                "ratio %.2f\n",
                formatBytes(ex.plan().arenaBytes).c_str(),
                static_cast<double>(ex.plan().arenaBytes) *
                    static_cast<double>(kScale) / 1e9,
                formatBytes(cfg.dramTotal()).c_str(),
                static_cast<double>(ex.plan().arenaBytes) /
                    static_cast<double>(cfg.dramTotal()));

    // Warm-up iteration (the paper runs two to settle paging/cache).
    ex.runIteration();
    sys.resetCounters();
    attachRun(session, sys, "fig5/densenet264");
    IterationResult res = ex.runIteration();
    session.endRun();

    // 5a/5b/5c: phase summary over forward vs backward.
    std::size_t fwd_ops = g.forwardOps();
    double fwd_end = res.kernels[fwd_ops - 1].end;
    auto phase_stats = [&](const char *name, double lo, double hi) {
        const TimeSeries &ts = sys.trace();
        auto mean_in = [&](const char *ch) {
            const auto &s = ts.channel(ch);
            double sum = 0;
            std::size_t n = 0;
            for (const auto &p : s) {
                if (p.time >= lo && p.time < hi) {
                    sum += p.value;
                    ++n;
                }
            }
            return n ? sum / static_cast<double>(n) : 0.0;
        };
        std::printf(
            "%-9s mips %8.0f | dram rd %6.2f wr %6.2f GB/s | nvram rd "
            "%5.2f wr %5.2f GB/s | hit %.2f cleanMiss %.3f dirtyMiss "
            "%.2f\n",
            name, mean_in("mips"), mean_in("dram_read_bw"),
            mean_in("dram_write_bw"), mean_in("nvram_read_bw"),
            mean_in("nvram_write_bw"), mean_in("tag_hit_frac"),
            mean_in("tag_miss_clean_frac"),
            mean_in("tag_miss_dirty_frac"));
    };
    double t0 = res.kernels.front().start;
    double t1 = res.kernels.back().end;
    std::printf("\niteration: %.4f s simulated (fwd %.4f, bwd %.4f)\n",
                res.seconds, fwd_end - t0, t1 - fwd_end);
    phase_stats("forward", t0, fwd_end);
    phase_stats("backward", fwd_end, t1);

    PerfCounters c = res.counters;
    double demand = static_cast<double>(c.demand());
    std::printf(
        "\ntag mix over iteration: hit %.2f | clean miss %.3f | dirty "
        "miss %.2f | ddo %.2f\n",
        c.tagHit / demand, c.tagMissClean / demand,
        c.tagMissDirty / demand, c.ddoHit / demand);
    std::printf("dirty misses %s clean misses (paper: dirty >> clean)\n",
                c.tagMissDirty > 4 * c.tagMissClean ? "dominate"
                                                    : "DO NOT dominate");

    // Dump the bandwidth/tag traces (5a-c).
    writeTimeSeriesCsv("fig5_traces.csv", sys.trace());

    // 5d: arena liveness map, one row per kernel with live bytes and
    // the written extent.
    {
        CsvWriter csv("fig5_arena_map.csv");
        csv.row(std::vector<std::string>{"step", "time", "live_bytes",
                                         "write_lo", "write_hi"});
        auto live_steps = liveBytesPerStep(g, ex.plan().liveness);
        for (std::size_t i = 0; i < res.kernels.size(); ++i) {
            Addr lo = ~0ull, hi = 0;
            for (TensorId t : g.schedule()[i].outputs) {
                const TensorPlacement &p = ex.plan().at(t);
                if (!p.inArena)
                    continue;
                lo = std::min(lo, p.offset);
                hi = std::max(hi, p.offset + p.bytes);
            }
            csv.row(std::vector<std::string>{
                fmt("%zu", i), fmt("%f", res.kernels[i].start),
                fmt("%llu",
                    static_cast<unsigned long long>(
                        scaledTensorBytes(live_steps[i], kScale))),
                lo == ~0ull ? "" : fmt("%llu",
                                       static_cast<unsigned long long>(
                                           lo)),
                lo == ~0ull ? "" : fmt("%llu",
                                       static_cast<unsigned long long>(
                                           hi))});
        }
        csv.close();
    }

    session.write();
    std::printf("\ntraces written to fig5_traces.csv, arena map to "
                "fig5_arena_map.csv\n");
    return 0;
}
