/**
 * @file
 * Ablation: insert-on-miss vs write-no-allocate for LLC writes at the
 * 2LM cache. The paper's reverse engineering finds the hardware
 * "always inserts on a miss (regardless of whether that miss was a
 * read or a write)" — which turns every missing store into an NVRAM
 * read, two DRAM writes and (if the victim was dirty) an NVRAM write.
 * This bench quantifies what the alternative policy would buy on the
 * paper's write-miss microbenchmark and on DenseNet training, whose
 * backward pass writes dirty-but-dead data.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "dnn/executor.hh"
#include "dnn/networks.hh"
#include "exec/sweep.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

namespace
{

KernelResult
writeMissStream(obs::Session &session, bool insert_on_miss)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 4096;
    cfg.insertOnWriteMiss = insert_on_miss;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    Region arr = sys.allocate(cfg.dramTotal() * 22 / 10, "arr");
    primeDirty(sys, arr, 8);
    sys.resetCounters();
    attachRun(session, sys,
              fmt("write_stream/%s",
                  insert_on_miss ? "insert_on_miss" : "no_allocate"));
    KernelConfig k;
    k.op = KernelOp::WriteOnly;
    k.nontemporal = true;
    k.threads = 24;
    KernelResult r = runKernel(sys, arr, k);
    session.endRun();
    return r;
}

IterationResult
densenet(obs::Session &session, bool insert_on_miss)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 1u << 14;
    cfg.insertOnWriteMiss = insert_on_miss;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    ComputeGraph g = buildDenseNet264(2304);
    ExecutorConfig ecfg;
    ecfg.threads = 24;
    Executor ex(sys, g, ecfg);
    ex.runIteration();
    sys.resetCounters();
    attachRun(session, sys,
              fmt("densenet/%s",
                  insert_on_miss ? "insert_on_miss" : "no_allocate"));
    IterationResult r = ex.runIteration();
    session.endRun();
    return r;
}

/** One policy point's rows, buffered for in-order output. */
struct PointResult
{
    std::vector<std::string> tableRow;
    CsvRows csv;
};

PointResult
writeStreamPoint(obs::Session &session, bool insert)
{
    KernelResult r = writeMissStream(session, insert);
    const char *name = insert ? "insert_on_miss" : "no_allocate";
    PointResult res;
    res.tableRow = {name, gbs(r.effectiveBandwidth),
                    fmt("%.2f", r.counters.amplification()),
                    gbs(r.nvramReadBandwidth()),
                    gbs(r.nvramWriteBandwidth())};
    res.csv.row(std::vector<std::string>{
        "write_stream", name, fmt("%f", r.effectiveBandwidth / 1e9),
        fmt("%f", r.counters.amplification()), fmt("%f", r.seconds)});
    return res;
}

PointResult
densenetPoint(obs::Session &session, bool insert)
{
    IterationResult r = densenet(session, insert);
    const char *name = insert ? "insert_on_miss" : "no_allocate";
    double demand = static_cast<double>(r.counters.demand());
    PointResult res;
    res.tableRow = {name, fmt("%.4f", r.seconds),
                    fmt("%.2f", r.counters.amplification()),
                    fmt("%.3f", r.counters.tagMissDirty / demand)};
    res.csv.row(std::vector<std::string>{
        "densenet", name, "", fmt("%f", r.counters.amplification()),
        fmt("%f", r.seconds)});
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Ablation: insert-on-miss vs write-no-allocate (2LM writes)",
           "insert-on-miss costs 4-5 accesses per missing store; "
           "write-no-allocate drops that to 2 on pure write streams, "
           "at the cost of losing future read hits");

    CsvWriter csv("ablation_write_policy.csv");
    csv.row(std::vector<std::string>{"workload", "policy", "effective",
                                     "amplification", "seconds"});

    // Points 0-1: write-miss stream {insert, no-allocate}; points
    // 2-3: DenseNet iteration, same order. Collection replays them in
    // declaration order so output is byte-identical for any --jobs=N.
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<PointResult> results = runner.map<PointResult>(
        4, [&](std::size_t i) {
            bool insert = i % 2 == 0;
            return i < 2 ? writeStreamPoint(session, insert)
                         : densenetPoint(session, insert);
        });

    std::printf("--- nontemporal write-miss stream (Figure 4b setup) "
                "---\n");
    Table t({"policy", "effective", "amplification", "NVRAM rd",
             "NVRAM wr"});
    t.row(results[0].tableRow);
    results[0].csv.flushTo(csv);
    t.row(results[1].tableRow);
    results[1].csv.flushTo(csv);
    t.print();

    std::printf("\n--- DenseNet 264 training iteration ---\n");
    Table t2({"policy", "iteration(s)", "amplification",
              "dirty miss frac"});
    t2.row(results[2].tableRow);
    results[2].csv.flushTo(csv);
    t2.row(results[3].tableRow);
    results[3].csv.flushTo(csv);
    t2.print();

    std::printf("\nNote: no-allocate is not a pure win — streams that "
                "are later re-read lose their hits. The paper's point "
                "stands: one fixed hardware policy cannot match "
                "software knowledge of data lifetimes.\n");
    csv.close();
    session.write();
    std::printf("rows written to ablation_write_policy.csv\n");
    return 0;
}
