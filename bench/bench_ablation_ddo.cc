/**
 * @file
 * Ablation: how much does the Dirty Data Optimization matter, and how
 * close is our RecentTracker model to an oracle? The paper observes
 * DDO on real hardware but cannot identify the mechanism (Section
 * IV-C); this bench quantifies the design space the observation
 * brackets.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 4096;

KernelResult
runScenario(obs::Session &session, const char *scenario, DdoMode ddo,
            KernelOp op, bool nontemporal, bool oversized,
            unsigned threads)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = kScale;
    cfg.ddo.mode = ddo;
    MemorySystem sys(cfg);
    Bytes size = oversized ? cfg.dramTotal() * 22 / 10
                           : cfg.dramTotal() / 4;
    Region arr = sys.allocate(size, "array");
    primeDirty(sys, arr, 8);
    sys.resetCounters();
    attachRun(session, sys, fmt("%s/%s", scenario, ddoModeName(ddo)));

    KernelConfig k;
    k.op = op;
    k.threads = threads;
    k.nontemporal = nontemporal;
    KernelResult r = runKernel(sys, arr, k);
    session.endRun();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::Session session(parseObsOptions(argc, argv));
    banner("Ablation: Dirty Data Optimization policies",
           "the tracker should match the paper's observation: DDO on "
           "RMW writebacks, none on pure NT store streams; an oracle "
           "bounds the gain; 'none' shows the cost of tag checks");

    CsvWriter csv("ablation_ddo.csv");
    csv.row(std::vector<std::string>{"scenario", "policy", "effective",
                                     "ddo_frac", "amplification"});

    struct Case
    {
        const char *name;
        KernelOp op;
        bool nontemporal;
        bool oversized;
        unsigned threads;
    };
    const Case cases[] = {
        {"rmw standard, oversized", KernelOp::ReadModifyWrite, false,
         true, 4},
        {"nt write stream, cache-fitting", KernelOp::WriteOnly, true,
         false, 8},
        {"nt write stream, oversized", KernelOp::WriteOnly, true, true,
         24},
    };

    for (const Case &c : cases) {
        std::printf("--- %s ---\n", c.name);
        Table t({"policy", "effective", "DRAM rd", "DRAM wr",
                 "ddo/writes", "amplification"});
        for (DdoMode mode : {DdoMode::None, DdoMode::RecentTracker,
                             DdoMode::Oracle}) {
            KernelResult r =
                runScenario(session, c.name, mode, c.op, c.nontemporal,
                            c.oversized, c.threads);
            double ddo_frac =
                r.counters.llcWrites
                    ? static_cast<double>(r.counters.ddoHit) /
                          static_cast<double>(r.counters.llcWrites)
                    : 0;
            t.row({ddoModeName(mode), gbs(r.effectiveBandwidth),
                   gbs(r.dramReadBandwidth()),
                   gbs(r.dramWriteBandwidth()), fmt("%.2f", ddo_frac),
                   fmt("%.2f", r.counters.amplification())});
            csv.row(std::vector<std::string>{
                c.name, ddoModeName(mode),
                fmt("%f", r.effectiveBandwidth / 1e9),
                fmt("%f", ddo_frac),
                fmt("%f", r.counters.amplification())});
        }
        t.print();
        std::printf("\n");
    }
    csv.close();
    session.write();
    std::printf("rows written to ablation_ddo.csv\n");
    return 0;
}
