/**
 * @file
 * Ablation: how much does the Dirty Data Optimization matter, and how
 * close is our RecentTracker model to an oracle? The paper observes
 * DDO on real hardware but cannot identify the mechanism (Section
 * IV-C); this bench quantifies the design space the observation
 * brackets.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "exec/sweep.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 4096;

KernelResult
runScenario(obs::Session &session, const char *scenario, DdoMode ddo,
            KernelOp op, bool nontemporal, bool oversized,
            unsigned threads)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = kScale;
    cfg.ddo.mode = ddo;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    Bytes size = oversized ? cfg.dramTotal() * 22 / 10
                           : cfg.dramTotal() / 4;
    Region arr = sys.allocate(size, "array");
    primeDirty(sys, arr, 8);
    sys.resetCounters();
    attachRun(session, sys, fmt("%s/%s", scenario, ddoModeName(ddo)));

    KernelConfig k;
    k.op = op;
    k.threads = threads;
    k.nontemporal = nontemporal;
    KernelResult r = runKernel(sys, arr, k);
    session.endRun();
    return r;
}

struct Case
{
    const char *name;
    KernelOp op;
    bool nontemporal;
    bool oversized;
    unsigned threads;
};

const Case kCases[] = {
    {"rmw standard, oversized", KernelOp::ReadModifyWrite, false, true,
     4},
    {"nt write stream, cache-fitting", KernelOp::WriteOnly, true, false,
     8},
    {"nt write stream, oversized", KernelOp::WriteOnly, true, true, 24},
};

const DdoMode kModes[] = {DdoMode::None, DdoMode::RecentTracker,
                          DdoMode::Oracle};
constexpr std::size_t kNModes = std::size(kModes);

/** One (case, policy) point's rows, buffered for in-order output. */
struct PointResult
{
    std::vector<std::string> tableRow;
    CsvRows csv;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Ablation: Dirty Data Optimization policies",
           "the tracker should match the paper's observation: DDO on "
           "RMW writebacks, none on pure NT store streams; an oracle "
           "bounds the gain; 'none' shows the cost of tag checks");

    CsvWriter csv("ablation_ddo.csv");
    csv.row(std::vector<std::string>{"scenario", "policy", "effective",
                                     "ddo_frac", "amplification"});

    // One task per (scenario, policy) point; the collection loop
    // replays them in declaration order so output is byte-identical
    // for any --jobs=N.
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<PointResult> results = runner.map<PointResult>(
        std::size(kCases) * kNModes, [&](std::size_t i) {
            const Case &c = kCases[i / kNModes];
            DdoMode mode = kModes[i % kNModes];
            KernelResult r =
                runScenario(session, c.name, mode, c.op, c.nontemporal,
                            c.oversized, c.threads);
            double ddo_frac =
                r.counters.llcWrites
                    ? static_cast<double>(r.counters.ddoHit) /
                          static_cast<double>(r.counters.llcWrites)
                    : 0;
            PointResult res;
            res.tableRow = {ddoModeName(mode),
                            gbs(r.effectiveBandwidth),
                            gbs(r.dramReadBandwidth()),
                            gbs(r.dramWriteBandwidth()),
                            fmt("%.2f", ddo_frac),
                            fmt("%.2f", r.counters.amplification())};
            res.csv.row(std::vector<std::string>{
                c.name, ddoModeName(mode),
                fmt("%f", r.effectiveBandwidth / 1e9),
                fmt("%f", ddo_frac),
                fmt("%f", r.counters.amplification())});
            return res;
        });

    for (std::size_t ci = 0; ci < std::size(kCases); ++ci) {
        std::printf("--- %s ---\n", kCases[ci].name);
        Table t({"policy", "effective", "DRAM rd", "DRAM wr",
                 "ddo/writes", "amplification"});
        for (std::size_t mi = 0; mi < kNModes; ++mi) {
            const PointResult &res = results[ci * kNModes + mi];
            t.row(res.tableRow);
            res.csv.flushTo(csv);
        }
        t.print();
        std::printf("\n");
    }
    csv.close();
    session.write();
    std::printf("rows written to ablation_ddo.csv\n");
    return 0;
}
