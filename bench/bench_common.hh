/**
 * @file
 * Shared console-table and CSV helpers for the paper-reproduction
 * bench binaries. Every binary prints the rows/series its table or
 * figure reports, plus the paper's qualitative expectation, so the
 * output is self-checking by eye (EXPERIMENTS.md records the
 * comparison).
 */

#ifndef NVSIM_BENCH_COMMON_HH
#define NVSIM_BENCH_COMMON_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/logging.hh"
#include "exec/sweep.hh"
#include "obs/session.hh"
#include "sys/memsys.hh"

namespace nvsim::bench
{

namespace detail
{

/** --flag=value matcher; fatal on an empty value. */
inline bool
matchFlag(const char *arg, const char *flag, std::string *out)
{
    std::size_t n = std::strlen(flag);
    if (std::strncmp(arg, flag, n) != 0)
        return false;
    *out = arg + n;
    if (out->empty())
        fatal("%s needs a value", flag);
    return true;
}

inline std::uint64_t
numberArg(const std::string &value, const char *flag)
{
    char *end = nullptr;
    std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("%s wants a number, got '%s'", flag, value.c_str());
    return v;
}

/**
 * Duration argument: a positive number with an optional s/ms/us/ns
 * suffix (plain numbers are seconds). Returns seconds.
 */
inline double
timeArg(const std::string &value, const char *flag)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str())
        fatal("%s wants a duration, got '%s'", flag, value.c_str());
    std::string unit(end);
    if (unit == "" || unit == "s")
        ;  // seconds
    else if (unit == "ms")
        v *= 1e-3;
    else if (unit == "us")
        v *= 1e-6;
    else if (unit == "ns")
        v *= 1e-9;
    else
        fatal("%s: unknown duration unit '%s' (use s/ms/us/ns)", flag,
              unit.c_str());
    if (v <= 0)
        fatal("%s must be positive, got '%s'", flag, value.c_str());
    return v;
}

/** Real-valued argument (e.g. a z-score threshold). */
inline double
realArg(const std::string &value, const char *flag)
{
    char *end = nullptr;
    double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("%s wants a number, got '%s'", flag, value.c_str());
    return v;
}

/**
 * Flags that cannot change any simulated result — output paths,
 * worker counts, report sizes. They are excluded from the provenance
 * manifest so the same experiment writes byte-identical artifacts at
 * any --jobs=N or output filename.
 */
inline bool
manifestNeutral(const char *arg)
{
    static const char *const kNeutral[] = {
        "--jobs=",          "--stats-json=",  "--stats-prom=",
        "--perfetto=",      "--set-heatmap=", "--causal-trace=",
        "--folded-stacks=", "--telemetry=",   "--telemetry-json=",
        "--anomaly-report=", "--top-sets=",   "--shard-threads=",
    };
    for (const char *prefix : kNeutral) {
        if (std::strncmp(arg, prefix, std::strlen(prefix)) == 0)
            return true;
    }
    return false;
}

/** Consume one observability flag; false if @p arg is not one. */
inline bool
parseObsFlag(const char *arg, obs::SessionOptions &opts)
{
    std::string value;
    if (matchFlag(arg, "--stats-json=", &opts.statsJsonPath) ||
        matchFlag(arg, "--stats-prom=", &opts.statsPromPath) ||
        matchFlag(arg, "--perfetto=", &opts.perfettoPath) ||
        matchFlag(arg, "--set-heatmap=", &opts.heatmapPath) ||
        matchFlag(arg, "--causal-trace=", &opts.causalJsonPath) ||
        matchFlag(arg, "--folded-stacks=", &opts.foldedPath)) {
        return true;
    }
    if (matchFlag(arg, "--top-sets=", &value)) {
        opts.topSets =
            static_cast<std::size_t>(numberArg(value, "--top-sets="));
        return true;
    }
    if (matchFlag(arg, "--causal-sample=", &value)) {
        opts.causalSamplePeriod = numberArg(value, "--causal-sample=");
        if (opts.causalSamplePeriod == 0)
            fatal("--causal-sample= must be >= 1");
        return true;
    }
    if (matchFlag(arg, "--causal-seed=", &value)) {
        opts.causalSeed = numberArg(value, "--causal-seed=");
        return true;
    }
    if (matchFlag(arg, "--telemetry=", &opts.telemetry.csvPath) ||
        matchFlag(arg, "--telemetry-json=", &opts.telemetry.jsonPath) ||
        matchFlag(arg, "--slo=", &opts.telemetry.sloSpec)) {
        return true;
    }
    if (matchFlag(arg, "--telemetry-window=", &value)) {
        opts.telemetry.windowSeconds =
            timeArg(value, "--telemetry-window=");
        return true;
    }
    if (matchFlag(arg, "--telemetry-ring=", &value)) {
        opts.telemetry.ringWindows = static_cast<std::size_t>(
            numberArg(value, "--telemetry-ring="));
        return true;
    }
    if (matchFlag(arg, "--anomaly-report=",
                  &opts.telemetry.anomalyJsonPath)) {
        return true;
    }
    if (matchFlag(arg, "--anomaly-z=", &value)) {
        opts.telemetry.anomalyZ = realArg(value, "--anomaly-z=");
        if (opts.telemetry.anomalyZ <= 0)
            fatal("--anomaly-z= must be positive");
        return true;
    }
    return false;
}

} // namespace detail

/** Options shared by every bench binary. */
struct BenchOptions
{
    obs::SessionOptions obs;
    /** Sweep worker threads; 0 = hardware concurrency, 1 = serial. */
    unsigned jobs = 0;
    /** Intra-run channel shard threads per MemorySystem; 0 = auto
     *  (hardware concurrency minus sweep jobs, floored at 1). Output
     *  is byte-identical at any value. */
    unsigned shardThreads = 0;
    /** Use the reference per-line access engine instead of batching. */
    bool perLine = false;
    /** --config= path; empty = use the bench's built-in defaults. */
    std::string configPath;
};

/** The flag summary printed when an argument is rejected. */
inline const char *
benchUsage()
{
    return "flags:\n"
           "  --config=FILE       declarative SystemConfig JSON; the\n"
           "                      bench's built-in defaults otherwise\n"
           "  --jobs=N            run sweep points on N worker threads\n"
           "                      (default: hardware concurrency;\n"
           "                      output is byte-identical for any N)\n"
           "  --shard-threads=N   shard each run's channels across N\n"
           "                      threads (default: leftover cores\n"
           "                      after --jobs; output byte-identical\n"
           "                      for any N)\n"
           "  --per-line          reference per-line access engine\n"
           "                      (diagnostics; identical, slower)\n"
           "  --stats-json=FILE   hierarchical stats registry as JSON\n"
           "  --stats-prom=FILE   same registry, Prometheus text\n"
           "  --perfetto=FILE     Chrome-trace JSON (ui.perfetto.dev)\n"
           "  --set-heatmap=FILE  per-set DRAM cache conflict CSV\n"
           "  --top-sets=N        hottest-set report size (default 16)\n"
           "  --causal-trace=FILE per-request causal attribution JSON\n"
           "  --folded-stacks=FILE folded flamegraph lines\n"
           "  --causal-sample=N   sample 1-in-N requests (default 64)\n"
           "  --causal-seed=S     sampling/reservoir seed (default 1)\n"
           "  --telemetry=FILE    windowed counter/rate time-series CSV\n"
           "                      (does not force serial execution)\n"
           "  --telemetry-json=FILE nvsim-telemetry-v1 JSON (totals,\n"
           "                      latency percentiles, windows, SLO)\n"
           "  --telemetry-window=T window length; s/ms/us/ns suffix\n"
           "                      (default 1ms)\n"
           "  --telemetry-ring=N  windows kept per run, 0 = unbounded\n"
           "                      (default 4096; oldest evicted first)\n"
           "  --slo=SPEC          objectives, e.g.\n"
           "                      'p99_ns<2000;eff_gbs>10@95%'; the\n"
           "                      report prints PASS/FAIL per run\n"
           "  --anomaly-report=FILE per-window anomaly detector\n"
           "                      firings as nvsim-anomaly-v1 JSON\n"
           "  --anomaly-z=Z       robust z-score firing threshold\n"
           "                      (default 6.0)";
}

/**
 * Parse the flags every bench shares — observability collection
 * (opt-in; with no flags the Session is disabled and output is
 * bit-identical to a flagless build), the sweep-engine flags
 * (--jobs=N, --per-line), and --config=FILE for a declarative
 * SystemConfig (see benchConfig()). Unknown arguments are fatal with
 * the full usage text, so typos never silently run with defaults.
 *
 * Also applies the engine selection process-wide so every
 * MemorySystem the bench builds uses the requested engine.
 */
inline BenchOptions
parseBenchArgs(int &argc, char **argv, bool keep_unknown)
{
    BenchOptions opts;
    obs::RunManifest &man = opts.obs.telemetry.manifest;
    if (argc > 0 && argv[0]) {
        const char *slash = std::strrchr(argv[0], '/');
        man.bench = slash ? slash + 1 : argv[0];
    }
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string value;
        bool known = true;
        if (detail::parseObsFlag(arg, opts.obs)) {
        } else if (detail::matchFlag(arg, "--config=",
                                     &opts.configPath)) {
        } else if (detail::matchFlag(arg, "--jobs=", &value)) {
            opts.jobs = static_cast<unsigned>(
                detail::numberArg(value, "--jobs="));
            if (opts.jobs == 0)
                fatal("--jobs= must be >= 1");
        } else if (detail::matchFlag(arg, "--shard-threads=", &value)) {
            opts.shardThreads = static_cast<unsigned>(
                detail::numberArg(value, "--shard-threads="));
            if (opts.shardThreads == 0)
                fatal("--shard-threads= must be >= 1");
        } else if (std::strcmp(arg, "--per-line") == 0) {
            opts.perLine = true;
        } else {
            known = false;
        }
        if (!known) {
            if (!keep_unknown)
                fatal("unknown argument '%s'\n%s", arg, benchUsage());
            argv[kept++] = argv[i];
            continue;
        }
        // Provenance: record the flags that can change results;
        // result-neutral ones (outputs, --jobs=) would break the
        // byte-identical-at-any-jobs guarantee.
        if (!detail::manifestNeutral(arg))
            man.flags.push_back(arg);
    }
    if (keep_unknown) {
        argc = kept;
        argv[argc] = nullptr;
    }
    man.causalSeed = opts.obs.causalSeed;
    man.readEnvironment();
    MemorySystem::setBatchedAccessDefault(!opts.perLine);
    // An explicit --shard-threads= takes effect even in benches that
    // never build a sweep (and so never call effectiveJobs()).
    if (opts.shardThreads)
        MemorySystem::setShardThreadsDefault(opts.shardThreads);
    return opts;
}

inline BenchOptions
parseBenchOptions(int argc, char **argv)
{
    return parseBenchArgs(argc, argv, false);
}

/**
 * parseBenchOptions for binaries that share argv with another flag
 * parser (the google-benchmark suite): consumes every nvsim flag,
 * compacts argv in place to the remaining arguments, and updates
 * @p argc — pass the compacted argv on to benchmark::Initialize().
 */
inline BenchOptions
parseBenchOptionsPartial(int &argc, char **argv)
{
    return parseBenchArgs(argc, argv, true);
}

/**
 * The SystemConfig a bench should start from: the file named by
 * --config= when given (unknown keys fatal), else @p defaults. The
 * bench applies its workload-defining fields (mode, scale, sizing) on
 * top of the returned config, so a config file customizes the platform
 * while the bench still measures what its name says.
 */
inline SystemConfig
benchConfig(const BenchOptions &opts, const SystemConfig &defaults = {})
{
    if (opts.configPath.empty())
        return defaults;
    return SystemConfig::fromJsonFile(opts.configPath);
}

/**
 * Worker count a sweep should actually use: the requested --jobs
 * (hardware concurrency when unset), forced to 1 when Observer-based
 * collection is on — the obs Session serializes those runs on one
 * timeline. Telemetry-only sessions keep full parallelism (runs are
 * independent and the export is order-normalized).
 *
 * Also resolves the intra-run shard width and installs it as the
 * MemorySystem default: an explicit --shard-threads= wins (with a
 * one-line warning if jobs x shard oversubscribes the host); otherwise
 * the shard width defaults to whatever cores the sweep leaves idle
 * (hardware concurrency minus jobs, floored at 1 — so a saturating
 * sweep gets no sharding and a serial run gets every core). Either
 * way the simulated results are byte-identical.
 */
inline unsigned
effectiveJobs(const BenchOptions &opts, const obs::Session &session)
{
    unsigned jobs = opts.jobs ? opts.jobs : exec::hardwareJobs();
    if (session.serialRequired() && jobs > 1) {
        inform("observability session enabled: running sweep serially "
               "(--jobs=%u ignored)",
               jobs);
        jobs = 1;
    }
    const unsigned hw = exec::hardwareJobs();
    unsigned shard = opts.shardThreads;
    if (shard == 0)
        shard = jobs < hw ? hw - jobs : 1;
    else if (jobs * shard > hw)
        inform("--jobs=%u x --shard-threads=%u oversubscribes %u "
               "hardware threads; results are identical but wall-clock "
               "may regress",
               jobs, shard, hw);
    MemorySystem::setShardThreadsDefault(shard);
    return jobs;
}

/**
 * Begin observing @p label and attach the observer and/or telemetry
 * collector to @p sys — the begin/attach boilerplate every bench run
 * repeats. Either may be null (its flags off); with no flags at all
 * both are and the run is untouched.
 */
inline obs::Observer *
attachRun(obs::Session &session, MemorySystem &sys,
          const std::string &label)
{
    obs::Observer *o = session.beginRun(label);
    if (o)
        sys.attachObserver(o);
    if (obs::TelemetryRun *tel = session.beginTelemetryRun(label))
        sys.attachTelemetry(tel);
    return o;
}

/** Banner with the experiment id and the paper's expectation. */
inline void
banner(const std::string &title, const std::string &expectation)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!expectation.empty())
        std::printf("paper expectation: %s\n", expectation.c_str());
    std::printf("\n");
}

/** Simple aligned console table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    row(std::vector<std::string> fields)
    {
        rows_.push_back(std::move(fields));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_) {
            for (std::size_t c = 0; c < r.size() && c < width.size();
                 ++c)
                width[c] = std::max(width[c], r[c].size());
        }
        auto print_row = [&](const std::vector<std::string> &r) {
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                const std::string &f = c < r.size() ? r[c] : "";
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            f.c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (std::size_t c = 0; c < headers_.size(); ++c)
            total += width[c] + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf into a std::string (bench-local convenience). */
inline std::string
fmt(const char *f, ...)
{
    // Size with a first pass so long fields (graph names, paths) are
    // never silently truncated.
    va_list ap;
    va_start(ap, f);
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, f, ap2);
    va_end(ap2);
    if (n < 0) {
        va_end(ap);
        return "<format error>";
    }
    std::string out(static_cast<std::size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, f, ap);
    va_end(ap);
    return out;
}

/** Format bytes as GB with 1 decimal. */
inline std::string
gb(double bytes)
{
    return fmt("%.2f", bytes / 1e9);
}

/** Format a bandwidth in GB/s with 2 decimals. */
inline std::string
gbs(double bytes_per_sec)
{
    return fmt("%.2f", bytes_per_sec / 1e9);
}

} // namespace nvsim::bench

#endif // NVSIM_BENCH_COMMON_HH
