/**
 * @file
 * Shared console-table and CSV helpers for the paper-reproduction
 * bench binaries. Every binary prints the rows/series its table or
 * figure reports, plus the paper's qualitative expectation, so the
 * output is self-checking by eye (EXPERIMENTS.md records the
 * comparison).
 */

#ifndef NVSIM_BENCH_COMMON_HH
#define NVSIM_BENCH_COMMON_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/logging.hh"
#include "obs/session.hh"
#include "sys/memsys.hh"

namespace nvsim::bench
{

/**
 * Parse the shared observability flags from a bench's argv:
 *
 *   --stats-json=FILE     hierarchical stats registry as JSON
 *   --stats-prom=FILE     same registry, Prometheus text exposition
 *   --perfetto=FILE       Chrome-trace JSON (ui.perfetto.dev)
 *   --set-heatmap=FILE    per-set DRAM cache conflict CSV
 *   --top-sets=N          hottest-set console report size (default 16)
 *   --causal-trace=FILE   per-request causal attribution JSON
 *   --folded-stacks=FILE  folded flamegraph lines (context;class;cause)
 *   --causal-sample=N     sample 1-in-N demand requests (default 64)
 *   --causal-seed=S       sampling/reservoir seed (default 1)
 *
 * All collection is opt-in: with no flags the returned options are
 * empty, the Session built from them is disabled, and the bench's
 * output is bit-identical to a flagless build. Unknown arguments are
 * fatal so typos don't silently run unobserved.
 */
inline obs::SessionOptions
parseObsOptions(int argc, char **argv)
{
    obs::SessionOptions opts;
    auto match = [](const char *arg, const char *flag,
                    std::string *out) {
        std::size_t n = std::strlen(flag);
        if (std::strncmp(arg, flag, n) != 0)
            return false;
        *out = arg + n;
        if (out->empty())
            fatal("%s needs a value", flag);
        return true;
    };
    auto number = [&](const std::string &value, const char *flag) {
        char *end = nullptr;
        std::uint64_t v = std::strtoull(value.c_str(), &end, 10);
        if (end == value.c_str() || *end != '\0')
            fatal("%s wants a number, got '%s'", flag, value.c_str());
        return v;
    };
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        std::string value;
        if (match(arg, "--stats-json=", &opts.statsJsonPath) ||
            match(arg, "--stats-prom=", &opts.statsPromPath) ||
            match(arg, "--perfetto=", &opts.perfettoPath) ||
            match(arg, "--set-heatmap=", &opts.heatmapPath) ||
            match(arg, "--causal-trace=", &opts.causalJsonPath) ||
            match(arg, "--folded-stacks=", &opts.foldedPath)) {
            continue;
        }
        if (match(arg, "--top-sets=", &value)) {
            opts.topSets = static_cast<std::size_t>(
                number(value, "--top-sets="));
            continue;
        }
        if (match(arg, "--causal-sample=", &value)) {
            opts.causalSamplePeriod = number(value, "--causal-sample=");
            if (opts.causalSamplePeriod == 0)
                fatal("--causal-sample= must be >= 1");
            continue;
        }
        if (match(arg, "--causal-seed=", &value)) {
            opts.causalSeed = number(value, "--causal-seed=");
            continue;
        }
        fatal("unknown argument '%s' (observability flags: "
              "--stats-json= --stats-prom= --perfetto= --set-heatmap= "
              "--top-sets= --causal-trace= --folded-stacks= "
              "--causal-sample= --causal-seed=)",
              arg);
    }
    return opts;
}

/**
 * Begin observing @p label and attach the observer to @p sys — the
 * begin/attach boilerplate every bench run repeats. No-op (returns
 * null) when the session is disabled.
 */
inline obs::Observer *
attachRun(obs::Session &session, MemorySystem &sys,
          const std::string &label)
{
    obs::Observer *o = session.beginRun(label);
    if (o)
        sys.attachObserver(o);
    return o;
}

/** Banner with the experiment id and the paper's expectation. */
inline void
banner(const std::string &title, const std::string &expectation)
{
    std::printf("\n=== %s ===\n", title.c_str());
    if (!expectation.empty())
        std::printf("paper expectation: %s\n", expectation.c_str());
    std::printf("\n");
}

/** Simple aligned console table. */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers)
        : headers_(std::move(headers))
    {
    }

    void
    row(std::vector<std::string> fields)
    {
        rows_.push_back(std::move(fields));
    }

    void
    print() const
    {
        std::vector<std::size_t> width(headers_.size());
        for (std::size_t c = 0; c < headers_.size(); ++c)
            width[c] = headers_[c].size();
        for (const auto &r : rows_) {
            for (std::size_t c = 0; c < r.size() && c < width.size();
                 ++c)
                width[c] = std::max(width[c], r[c].size());
        }
        auto print_row = [&](const std::vector<std::string> &r) {
            for (std::size_t c = 0; c < headers_.size(); ++c) {
                const std::string &f = c < r.size() ? r[c] : "";
                std::printf("%-*s  ", static_cast<int>(width[c]),
                            f.c_str());
            }
            std::printf("\n");
        };
        print_row(headers_);
        std::size_t total = 0;
        for (std::size_t c = 0; c < headers_.size(); ++c)
            total += width[c] + 2;
        std::printf("%s\n", std::string(total, '-').c_str());
        for (const auto &r : rows_)
            print_row(r);
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** printf into a std::string (bench-local convenience). */
inline std::string
fmt(const char *f, ...)
{
    char buf[256];
    va_list ap;
    va_start(ap, f);
    std::vsnprintf(buf, sizeof(buf), f, ap);
    va_end(ap);
    return buf;
}

/** Format bytes as GB with 1 decimal. */
inline std::string
gb(double bytes)
{
    return fmt("%.2f", bytes / 1e9);
}

/** Format a bandwidth in GB/s with 2 decimals. */
inline std::string
gbs(double bytes_per_sec)
{
    return fmt("%.2f", bytes_per_sec / 1e9);
}

} // namespace nvsim::bench

#endif // NVSIM_BENCH_COMMON_HH
