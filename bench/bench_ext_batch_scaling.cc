/**
 * @file
 * Extension experiment: the paper scales the training batch until the
 * footprint exceeds 650 GB and reports one operating point per
 * network. Here we sweep the batch size across the footprint/cache
 * boundary and record how the 2LM penalty grows and where software
 * management starts paying — the continuous version of the paper's
 * Section V story.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "core/units.hh"
#include "dnn/autotm.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

namespace
{

constexpr std::uint64_t kScale = 1u << 14;

const std::uint64_t kBatches[] = {256, 512, 768, 1152, 1536, 2304,
                                  3072};

struct Point
{
    double ratio;          //!< arena / DRAM cache
    double two_lm_seconds;
    double autotm_seconds;
    double dirty_miss_frac;
    double per_sample_2lm;  //!< time per training sample, normalized
};

Point
runBatch(obs::Session &session, const SystemConfig &base,
         std::uint64_t batch)
{
    ComputeGraph g = buildDenseNet264(batch);
    ExecutorConfig ecfg;
    ecfg.threads = 24;

    Point pt{};

    {
        SystemConfig cfg = base;
        cfg.mode = MemoryMode::TwoLm;
        cfg.scale = kScale;
        cfg.scatterPages = true;
        auto sys_sys = makeSystem(cfg);
        MemorySystem &sys = *sys_sys;
        Executor ex(sys, g, ecfg);
        pt.ratio = static_cast<double>(ex.plan().arenaBytes) /
                   static_cast<double>(cfg.dramTotal());
        ex.runIteration();
        sys.resetCounters();
        attachRun(session, sys,
                  fmt("2lm/batch%llu",
                      static_cast<unsigned long long>(batch)));
        IterationResult r = ex.runIteration();
        session.endRun();
        pt.two_lm_seconds = r.seconds;
        pt.dirty_miss_frac =
            static_cast<double>(r.counters.tagMissDirty) /
            static_cast<double>(r.counters.demand());
        pt.per_sample_2lm = r.seconds / static_cast<double>(batch);
    }
    {
        SystemConfig cfg = base;
        cfg.mode = MemoryMode::OneLm;
        cfg.scale = kScale;
        cfg.scatterPages = true;
        auto sys_sys = makeSystem(cfg);
        MemorySystem &sys = *sys_sys;
        AutoTmConfig acfg;
        acfg.exec = ecfg;
        AutoTmExecutor ex(sys, g, acfg);
        ex.runIteration();
        sys.resetCounters();
        attachRun(session, sys,
                  fmt("autotm/batch%llu",
                      static_cast<unsigned long long>(batch)));
        pt.autotm_seconds = ex.runIteration().seconds;
        session.endRun();
    }
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Extension: batch-size sweep across the cache boundary "
           "(DenseNet 264)",
           "below the cache boundary hardware and software management "
           "tie; past it the 2LM per-sample cost climbs with the dirty "
           "miss rate while software management degrades gracefully");

    CsvWriter csv("ext_batch_scaling.csv");
    csv.row(std::vector<std::string>{"batch", "arena_cache_ratio",
                                     "two_lm_s", "autotm_s",
                                     "dirty_miss_frac", "speedup"});

    // One task per batch size; the replay loop prints in declaration
    // order so output is byte-identical for any --jobs=N.
    SystemConfig base = benchConfig(opts);
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<Point> points = runner.map<Point>(
        std::size(kBatches), [&](std::size_t i) {
            return runBatch(session, base, kBatches[i]);
        });

    Table t({"batch", "arena/$", "2LM it(s)", "AutoTM it(s)",
             "dirty miss", "speedup"});
    for (std::size_t i = 0; i < std::size(kBatches); ++i) {
        std::uint64_t batch = kBatches[i];
        const Point &p = points[i];
        t.row({fmt("%llu", static_cast<unsigned long long>(batch)),
               fmt("%.2f", p.ratio), fmt("%.4f", p.two_lm_seconds),
               fmt("%.4f", p.autotm_seconds),
               fmt("%.3f", p.dirty_miss_frac),
               fmt("%.2fx", p.two_lm_seconds / p.autotm_seconds)});
        csv.row(std::vector<std::string>{
            fmt("%llu", static_cast<unsigned long long>(batch)),
            fmt("%f", p.ratio), fmt("%f", p.two_lm_seconds),
            fmt("%f", p.autotm_seconds), fmt("%f", p.dirty_miss_frac),
            fmt("%f", p.two_lm_seconds / p.autotm_seconds)});
    }
    t.print();

    csv.close();
    session.write();
    std::printf("\nrows written to ext_batch_scaling.csv\n");
    return 0;
}
