/**
 * @file
 * Ablation: associativity of the DRAM cache. The paper's first
 * conclusion is that the direct-mapped, insert-on-miss design is
 * "inflexible and many conflicts can increase the miss rate" and its
 * discussion asks what future hardware should change. This bench
 * measures how much associativity would help a conflict-prone working
 * set and the paper's graph workload, holding everything else equal.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "exec/sweep.hh"
#include "graphs/generators.hh"
#include "graphs/runner.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

namespace
{

constexpr std::uint64_t kScale = 8192;

/**
 * A working set of ~60% cache capacity split into two fragments that
 * alias each other in a direct-mapped cache: fragment A at [0, 0.3C)
 * and fragment B at [C, 1.3C). Every B line conflicts with an A line
 * even though both fit together easily.
 */
KernelResult
conflictKernel(obs::Session &session, unsigned ways)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = kScale;
    cfg.cacheWays = ways;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    Bytes c = cfg.dramTotal();
    Region a = sys.allocate(c * 3 / 10, "frag_a");
    Region pad = sys.allocate(c * 7 / 10, "pad");
    (void)pad;
    Region b = sys.allocate(c * 3 / 10, "frag_b");

    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.threads = 8;
    k.iterations = 4;

    // Interleave passes over the two aliasing fragments.
    attachRun(session, sys, fmt("alias/%u_ways", ways));
    PerfCounters before = sys.counters();
    double t0 = sys.now();
    for (int pass = 0; pass < 4; ++pass) {
        KernelConfig one = k;
        one.iterations = 1;
        runKernel(sys, a, one);
        runKernel(sys, b, one);
    }
    KernelResult r;
    r.seconds = sys.now() - t0;
    r.counters = sys.counters().delta(before);
    r.demandBytes = (a.size + b.size) * 4;
    r.effectiveBandwidth =
        static_cast<double>(r.demandBytes) / r.seconds;
    session.endRun();
    return r;
}

const unsigned kAliasWays[] = {1, 2, 4, 8};
const unsigned kGraphWays[] = {1, 2, 4};

/** One sweep point's rows, buffered for in-order output. */
struct PointResult
{
    std::vector<std::string> tableRow;
    CsvRows csv;
};

PointResult
aliasPoint(obs::Session &session, unsigned ways)
{
    KernelResult r = conflictKernel(session, ways);
    double demand = static_cast<double>(
        std::max<std::uint64_t>(r.counters.demand(), 1));
    double hits =
        static_cast<double>(r.counters.tagHit + r.counters.ddoHit);
    PointResult res;
    res.tableRow = {fmt("%u", ways), gbs(r.effectiveBandwidth),
                    fmt("%.3f", hits / demand),
                    fmt("%.2f", r.counters.amplification())};
    res.csv.row(std::vector<std::string>{
        "alias", fmt("%u", ways),
        fmt("%f", r.effectiveBandwidth / 1e9),
        fmt("%f", 1.0 - hits / demand),
        fmt("%f", r.counters.amplification())});
    return res;
}

PointResult
pagerankPoint(obs::Session &session, const CsrGraph &g, unsigned ways)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.sockets = 2;
    cfg.scale = kScale * 4;  // graph >> cache
    cfg.cacheWays = ways;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    GraphRunConfig rc;
    rc.placement = Placement::TwoLm;
    rc.threads = 96;
    rc.prRounds = 3;
    GraphWorkload w(sys, g, rc);
    sys.resetCounters();
    attachRun(session, sys, fmt("pagerank/%u_ways", ways));
    GraphRunResult r = w.run(GraphKernel::PageRank);
    session.endRun();
    double demand = static_cast<double>(
        std::max<std::uint64_t>(r.counters.demand(), 1));
    double hits =
        static_cast<double>(r.counters.tagHit + r.counters.ddoHit);
    PointResult res;
    res.tableRow = {fmt("%u", ways), fmt("%.4f", r.seconds),
                    fmt("%.3f", hits / demand),
                    fmt("%.2f", r.counters.amplification())};
    res.csv.row(std::vector<std::string>{
        "pagerank", fmt("%u", ways), fmt("%f", r.seconds),
        fmt("%f", 1.0 - hits / demand),
        fmt("%f", r.counters.amplification())});
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Ablation: DRAM cache associativity (future-hardware "
           "question)",
           "a set-associative cache absorbs the conflict misses the "
           "direct-mapped design suffers on aliasing working sets; "
           "gains should shrink once the working set truly exceeds "
           "capacity");

    CsvWriter csv("ablation_associativity.csv");
    csv.row(std::vector<std::string>{"workload", "ways", "effective",
                                     "miss_rate", "amplification"});

    // The web graph is built once and shared read-only across tasks.
    WebGraphParams wp;
    wp.numNodes = 200 * 1024;
    wp.avgDegree = 24;
    const CsrGraph g = webGraph(wp);

    // Points 0..3 sweep ways over the aliasing kernel, 4..6 over
    // pagerank; collection replays them in declaration order so the
    // output is byte-identical for any --jobs=N.
    constexpr std::size_t kNAlias = std::size(kAliasWays);
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<PointResult> results = runner.map<PointResult>(
        kNAlias + std::size(kGraphWays), [&](std::size_t i) {
            return i < kNAlias
                       ? aliasPoint(session, kAliasWays[i])
                       : pagerankPoint(session, g,
                                       kGraphWays[i - kNAlias]);
        });

    std::printf("--- aliasing fragments (60%% of capacity) ---\n");
    Table t({"ways", "effective", "hit rate", "amplification"});
    for (std::size_t i = 0; i < kNAlias; ++i) {
        t.row(results[i].tableRow);
        results[i].csv.flushTo(csv);
    }
    t.print();

    std::printf("\n--- pagerank on cache-exceeding web graph ---\n");
    Table t2({"ways", "runtime(s)", "hit rate", "amplification"});
    for (std::size_t i = kNAlias; i < results.size(); ++i) {
        t2.row(results[i].tableRow);
        results[i].csv.flushTo(csv);
    }
    t2.print();
    csv.close();
    session.write();
    std::printf("\nrows written to ablation_associativity.csv\n");
    return 0;
}
