/**
 * @file
 * Ablation: associativity of the DRAM cache. The paper's first
 * conclusion is that the direct-mapped, insert-on-miss design is
 * "inflexible and many conflicts can increase the miss rate" and its
 * discussion asks what future hardware should change. This bench
 * measures how much associativity would help a conflict-prone working
 * set and the paper's graph workload, holding everything else equal.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "graphs/generators.hh"
#include "graphs/runner.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

namespace
{

constexpr std::uint64_t kScale = 8192;

/**
 * A working set of ~60% cache capacity split into two fragments that
 * alias each other in a direct-mapped cache: fragment A at [0, 0.3C)
 * and fragment B at [C, 1.3C). Every B line conflicts with an A line
 * even though both fit together easily.
 */
KernelResult
conflictKernel(obs::Session &session, unsigned ways)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = kScale;
    cfg.cacheWays = ways;
    MemorySystem sys(cfg);
    Bytes c = cfg.dramTotal();
    Region a = sys.allocate(c * 3 / 10, "frag_a");
    Region pad = sys.allocate(c * 7 / 10, "pad");
    (void)pad;
    Region b = sys.allocate(c * 3 / 10, "frag_b");

    KernelConfig k;
    k.op = KernelOp::ReadOnly;
    k.threads = 8;
    k.iterations = 4;

    // Interleave passes over the two aliasing fragments.
    attachRun(session, sys, fmt("alias/%u_ways", ways));
    PerfCounters before = sys.counters();
    double t0 = sys.now();
    for (int pass = 0; pass < 4; ++pass) {
        KernelConfig one = k;
        one.iterations = 1;
        runKernel(sys, a, one);
        runKernel(sys, b, one);
    }
    KernelResult r;
    r.seconds = sys.now() - t0;
    r.counters = sys.counters().delta(before);
    r.demandBytes = (a.size + b.size) * 4;
    r.effectiveBandwidth =
        static_cast<double>(r.demandBytes) / r.seconds;
    session.endRun();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    obs::Session session(parseObsOptions(argc, argv));
    banner("Ablation: DRAM cache associativity (future-hardware "
           "question)",
           "a set-associative cache absorbs the conflict misses the "
           "direct-mapped design suffers on aliasing working sets; "
           "gains should shrink once the working set truly exceeds "
           "capacity");

    CsvWriter csv("ablation_associativity.csv");
    csv.row(std::vector<std::string>{"workload", "ways", "effective",
                                     "miss_rate", "amplification"});

    std::printf("--- aliasing fragments (60%% of capacity) ---\n");
    Table t({"ways", "effective", "hit rate", "amplification"});
    for (unsigned ways : {1u, 2u, 4u, 8u}) {
        KernelResult r = conflictKernel(session, ways);
        double demand = static_cast<double>(
            std::max<std::uint64_t>(r.counters.demand(), 1));
        double hits = static_cast<double>(r.counters.tagHit +
                                          r.counters.ddoHit);
        t.row({fmt("%u", ways), gbs(r.effectiveBandwidth),
               fmt("%.3f", hits / demand),
               fmt("%.2f", r.counters.amplification())});
        csv.row(std::vector<std::string>{
            "alias", fmt("%u", ways),
            fmt("%f", r.effectiveBandwidth / 1e9),
            fmt("%f", 1.0 - hits / demand),
            fmt("%f", r.counters.amplification())});
    }
    t.print();

    std::printf("\n--- pagerank on cache-exceeding web graph ---\n");
    WebGraphParams wp;
    wp.numNodes = 200 * 1024;
    wp.avgDegree = 24;
    CsrGraph g = webGraph(wp);
    Table t2({"ways", "runtime(s)", "hit rate", "amplification"});
    for (unsigned ways : {1u, 2u, 4u}) {
        SystemConfig cfg;
        cfg.mode = MemoryMode::TwoLm;
        cfg.sockets = 2;
        cfg.scale = kScale * 4;  // graph >> cache
        cfg.cacheWays = ways;
        MemorySystem sys(cfg);
        GraphRunConfig rc;
        rc.placement = Placement::TwoLm;
        rc.threads = 96;
        rc.prRounds = 3;
        GraphWorkload w(sys, g, rc);
        sys.resetCounters();
        attachRun(session, sys, fmt("pagerank/%u_ways", ways));
        GraphRunResult r = w.run(GraphKernel::PageRank);
        session.endRun();
        double demand = static_cast<double>(
            std::max<std::uint64_t>(r.counters.demand(), 1));
        double hits = static_cast<double>(r.counters.tagHit +
                                          r.counters.ddoHit);
        t2.row({fmt("%u", ways), fmt("%.4f", r.seconds),
                fmt("%.3f", hits / demand),
                fmt("%.2f", r.counters.amplification())});
        csv.row(std::vector<std::string>{
            "pagerank", fmt("%u", ways), fmt("%f", r.seconds),
            fmt("%f", 1.0 - hits / demand),
            fmt("%f", r.counters.amplification())});
    }
    t2.print();
    csv.close();
    session.write();
    std::printf("\nrows written to ablation_associativity.csv\n");
    return 0;
}
