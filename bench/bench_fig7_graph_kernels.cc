/**
 * @file
 * Figure 7 reproduction: graph kernel performance in 2LM on 96
 * threads, on an input that fits the DRAM cache (kron30) and one that
 * exceeds it (wdc12). Paper: when the input does not fit, DRAM
 * bandwidth drops significantly and NVRAM traffic appears.
 */

#include <cstdio>

#include "bench_common.hh"
#include "bench_graphs_common.hh"
#include "core/csv.hh"
#include "core/units.hh"
#include "exec/sweep.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

namespace
{

const GraphKernel kKernels[] = {GraphKernel::Bfs, GraphKernel::Cc,
                                GraphKernel::KCore,
                                GraphKernel::PageRank};

/** Everything one (graph, kernel) point reports, buffered in order. */
struct PointResult
{
    std::vector<std::string> tableRow;
    CsvRows csv;
};

PointResult
runPoint(obs::Session &session, const char *name, const CsrGraph &g,
         GraphKernel k)
{
    SystemConfig cfg = graphSystem(MemoryMode::TwoLm);
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    GraphWorkload w(sys, g, graphRun(Placement::TwoLm));
    sys.resetCounters();
    attachRun(session, sys, fmt("%s/%s", name, graphKernelName(k)));
    GraphRunResult r = w.run(k);
    session.endRun();
    double demand = static_cast<double>(
        std::max<std::uint64_t>(r.counters.demand(), 1));
    double hits =
        static_cast<double>(r.counters.tagHit + r.counters.ddoHit);
    PointResult res;
    res.tableRow = {graphKernelName(k), fmt("%.4f", r.seconds),
                    gbs(r.dramReadBandwidth()),
                    gbs(r.dramWriteBandwidth()),
                    gbs(r.nvramReadBandwidth()),
                    gbs(r.nvramWriteBandwidth()),
                    fmt("%.2f", hits / demand),
                    fmt("%llu",
                        static_cast<unsigned long long>(r.rounds))};
    res.csv.row(std::vector<std::string>{
        name, graphKernelName(k), fmt("%f", r.seconds),
        fmt("%f", r.dramReadBandwidth() / 1e9),
        fmt("%f", r.dramWriteBandwidth() / 1e9),
        fmt("%f", r.nvramReadBandwidth() / 1e9),
        fmt("%f", r.nvramWriteBandwidth() / 1e9),
        fmt("%f", hits / demand)});
    return res;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Figure 7: graph kernels in 2LM, 96 threads",
           "on the cache-fitting input bandwidth stays in DRAM; on the "
           "cache-exceeding input DRAM bandwidth drops and NVRAM "
           "traffic appears");

    CsvWriter csv("fig7_graph_kernels.csv");
    csv.row(std::vector<std::string>{"graph", "kernel", "seconds",
                                     "dram_rd", "dram_wr", "nvram_rd",
                                     "nvram_wr", "hit_rate"});

    // The inputs are built once and shared read-only across tasks;
    // each task owns its MemorySystem and workload state.
    const CsrGraph kron = kron30Like();
    const CsrGraph wdc = wdc12Like();
    struct GraphCase
    {
        const char *name;
        const CsrGraph *graph;
    };
    const GraphCase kGraphs[] = {{"kron30-like (7a)", &kron},
                                 {"wdc12-like (7b)", &wdc}};
    constexpr std::size_t kNKernels = std::size(kKernels);

    // One task per (graph, kernel) point; the collection loop replays
    // them in declaration order, so output is byte-identical for any
    // --jobs=N.
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::vector<PointResult> results = runner.map<PointResult>(
        std::size(kGraphs) * kNKernels, [&](std::size_t i) {
            const GraphCase &gc = kGraphs[i / kNKernels];
            return runPoint(session, gc.name, *gc.graph,
                            kKernels[i % kNKernels]);
        });

    for (std::size_t gi = 0; gi < std::size(kGraphs); ++gi) {
        const GraphCase &gc = kGraphs[gi];
        std::printf(
            "--- %s: %s binary, DRAM cache %s -> %s ---\n", gc.name,
            formatBytes(gc.graph->bytes()).c_str(),
            formatBytes(graphSystem(MemoryMode::TwoLm).dramTotal())
                .c_str(),
            gc.graph->bytes() <
                    graphSystem(MemoryMode::TwoLm).dramTotal()
                ? "fits"
                : "exceeds");
        Table t({"kernel", "runtime(s)", "DRAM rd", "DRAM wr",
                 "NVRAM rd", "NVRAM wr", "hit rate", "rounds"});
        for (std::size_t ki = 0; ki < kNKernels; ++ki) {
            const PointResult &res = results[gi * kNKernels + ki];
            t.row(res.tableRow);
            res.csv.flushTo(csv);
        }
        t.print();
        std::printf("\n");
    }

    csv.close();
    session.write();
    std::printf("series written to fig7_graph_kernels.csv\n");
    return 0;
}
