/**
 * @file
 * Figure 7 reproduction: graph kernel performance in 2LM on 96
 * threads, on an input that fits the DRAM cache (kron30) and one that
 * exceeds it (wdc12). Paper: when the input does not fit, DRAM
 * bandwidth drops significantly and NVRAM traffic appears.
 */

#include <cstdio>

#include "bench_common.hh"
#include "bench_graphs_common.hh"
#include "core/csv.hh"
#include "core/units.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::graphs;

namespace
{

void
runGraph(obs::Session &session, const char *name, const CsrGraph &g,
         CsvWriter &csv)
{
    std::printf("--- %s: %s binary, DRAM cache %s -> %s ---\n", name,
                formatBytes(g.bytes()).c_str(),
                formatBytes(graphSystem(MemoryMode::TwoLm).dramTotal())
                    .c_str(),
                g.bytes() <
                        graphSystem(MemoryMode::TwoLm).dramTotal()
                    ? "fits"
                    : "exceeds");
    Table t({"kernel", "runtime(s)", "DRAM rd", "DRAM wr", "NVRAM rd",
             "NVRAM wr", "hit rate", "rounds"});
    for (GraphKernel k : {GraphKernel::Bfs, GraphKernel::Cc,
                          GraphKernel::KCore, GraphKernel::PageRank}) {
        SystemConfig cfg = graphSystem(MemoryMode::TwoLm);
        MemorySystem sys(cfg);
        GraphWorkload w(sys, g, graphRun(Placement::TwoLm));
        sys.resetCounters();
        attachRun(session, sys, fmt("%s/%s", name, graphKernelName(k)));
        GraphRunResult r = w.run(k);
        session.endRun();
        double demand = static_cast<double>(
            std::max<std::uint64_t>(r.counters.demand(), 1));
        double hits = static_cast<double>(r.counters.tagHit +
                                          r.counters.ddoHit);
        t.row({graphKernelName(k), fmt("%.4f", r.seconds),
               gbs(r.dramReadBandwidth()), gbs(r.dramWriteBandwidth()),
               gbs(r.nvramReadBandwidth()),
               gbs(r.nvramWriteBandwidth()), fmt("%.2f", hits / demand),
               fmt("%llu", static_cast<unsigned long long>(r.rounds))});
        csv.row(std::vector<std::string>{
            name, graphKernelName(k), fmt("%f", r.seconds),
            fmt("%f", r.dramReadBandwidth() / 1e9),
            fmt("%f", r.dramWriteBandwidth() / 1e9),
            fmt("%f", r.nvramReadBandwidth() / 1e9),
            fmt("%f", r.nvramWriteBandwidth() / 1e9),
            fmt("%f", hits / demand)});
    }
    t.print();
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    obs::Session session(parseObsOptions(argc, argv));
    banner("Figure 7: graph kernels in 2LM, 96 threads",
           "on the cache-fitting input bandwidth stays in DRAM; on the "
           "cache-exceeding input DRAM bandwidth drops and NVRAM "
           "traffic appears");

    CsvWriter csv("fig7_graph_kernels.csv");
    csv.row(std::vector<std::string>{"graph", "kernel", "seconds",
                                     "dram_rd", "dram_wr", "nvram_rd",
                                     "nvram_wr", "hit_rate"});

    CsrGraph kron = kron30Like();
    runGraph(session, "kron30-like (7a)", kron, csv);
    CsrGraph wdc = wdc12Like();
    runGraph(session, "wdc12-like (7b)", wdc, csv);

    csv.close();
    session.write();
    std::printf("series written to fig7_graph_kernels.csv\n");
    return 0;
}
