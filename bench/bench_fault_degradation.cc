/**
 * @file
 * Graceful-degradation characterization under injected faults — the
 * robustness counterpart to the paper's performance argument.
 *
 * (a) Error-rate sweep: equal NVRAM media error rates (plus an equal
 *     DRAM/tag ECC fault rate) are injected into a 2LM and a 1LM
 *     machine running the same streaming workload. 2LM degrades
 *     faster: its access amplification multiplies the number of
 *     NVRAM transactions per demand byte — every one a fault
 *     opportunity — and a DRAM ECC fault corrupts the in-ECC tag,
 *     forcing an NVRAM refetch that app-direct mode never pays.
 *
 * (b) Thermal throttle trace: a hot nontemporal write phase pushes
 *     sustained media write bandwidth over the engage threshold; a
 *     read-only phase lets the DIMM recover. The per-epoch
 *     throttle_factor trace shows the hysteresis (consecutive-epoch
 *     counting on both edges).
 *
 * All runs are seeded and single-threaded deterministic; the output
 * CSV (fault_degradation.csv) is bit-stable across runs.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "sys/memsys.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 1u << 14;
constexpr Bytes kChunk = 4 * kLineSize;

const double kRates[] = {0, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2};

SystemConfig
baseConfig(MemoryMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.scale = kScale;
    cfg.epochBytes = 256 * kKiB;
    return cfg;
}

/** Stream @p passes read passes over @p r; returns GB/s of demand. */
double
streamBandwidth(MemorySystem &sys, const Region &r, int passes)
{
    sys.setActiveThreads(8);
    for (int p = 0; p < passes; ++p) {
        for (Addr a = r.base; a + kChunk <= r.base + r.size;
             a += kChunk)
            sys.submit({0, CpuOp::Load, a, kChunk});
    }
    sys.quiesce();
    return static_cast<double>(passes) * r.size / sys.now();
}

void
errorRateSweep(obs::Session &session, CsvWriter &csv)
{
    banner("Fault sweep: effective read bandwidth vs NVRAM error rate",
           "2LM loses bandwidth faster than 1LM at equal rates: "
           "amplification multiplies fault exposure and tag-ECC "
           "faults add NVRAM refetches");

    Table t({"rate", "2lm_gbs", "1lm_gbs", "2lm_rel", "1lm_rel"});
    double base2 = 0, base1 = 0;
    for (double rate : kRates) {
        double bw[2];
        for (MemoryMode mode :
             {MemoryMode::TwoLm, MemoryMode::OneLm}) {
            SystemConfig cfg = baseConfig(mode);
            cfg.fault.seed = 20210321;  // fixed: runs are reproducible
            cfg.fault.nvramReadCorrectable = rate;
            cfg.fault.nvramReadUncorrectable = rate / 10;
            cfg.fault.nvramWriteCorrectable = rate;
            cfg.fault.dramCorrectable = rate;
            cfg.fault.tagEccUncorrectable = rate / 10;
            auto sys_sys = makeSystem(cfg);
            MemorySystem &sys = *sys_sys;
            // Twice the DRAM cache: the 2LM machine misses heavily
            // and pays its amplification on every fault-prone fill.
            Bytes bytes = 2 * cfg.dramTotal();
            Region r =
                cfg.mode == MemoryMode::OneLm
                    ? sys.allocateIn(MemPool::Nvram, bytes, "arr")
                    : sys.allocate(bytes, "arr");
            attachRun(session, sys,
                      fmt("sweep/%s/rate_%g", memoryModeName(mode),
                          rate));
            bw[mode == MemoryMode::OneLm] =
                streamBandwidth(sys, r, 2);
            session.endRun();
        }
        if (rate == 0) {
            base2 = bw[0];
            base1 = bw[1];
        }
        double rel2 = bw[0] / base2, rel1 = bw[1] / base1;
        t.row({fmt("%g", rate), gbs(bw[0]), gbs(bw[1]),
               fmt("%.3f", rel2), fmt("%.3f", rel1)});
        csv.row(std::vector<std::string>{"degradation", "2lm",
                                         fmt("%g", rate),
                                         fmt("%f", bw[0] / 1e9),
                                         fmt("%f", rel2)});
        csv.row(std::vector<std::string>{"degradation", "1lm",
                                         fmt("%g", rate),
                                         fmt("%f", bw[1] / 1e9),
                                         fmt("%f", rel1)});
        if (rate == kRates[5]) {
            std::printf("\nat rate %g: 2LM keeps %.1f%% of clean "
                        "bandwidth, 1LM keeps %.1f%% -> 2LM degrades "
                        "%s\n",
                        rate, 100 * rel2, 100 * rel1,
                        rel2 < rel1 ? "faster (as expected)"
                                    : "SLOWER (unexpected)");
        }
    }
    t.print();
}

/** One point of the maintenance-interference sweep. */
struct MaintPoint
{
    const char *label;
    MaintenanceConfig config;
};

/** Maintenance plans from all-off to aggressive, monotone tightening. */
std::vector<MaintPoint>
maintenancePoints()
{
    std::vector<MaintPoint> points;
    points.push_back({"off", {}});

    MaintenanceConfig m;
    m.seed = 20210321;
    m.refresh.trefi = 7.8e-6;  // JEDEC nominal
    points.push_back({"refresh", m});

    m.scrub.interval = 64;  // one patrol read per 64 demand requests
    m.scrub.correctable = 0.01;
    m.scrub.uncorrectable = 0.001;
    points.push_back({"scrub_64", m});

    m.scrub.interval = 16;
    points.push_back({"scrub_16", m});

    m.rowhammer.threshold = 2048;
    points.push_back({"rowhammer_2k", m});

    m.refresh.trefi = 3.9e-6;  // high-temperature 2x refresh
    m.scrub.interval = 8;
    m.rowhammer.threshold = 512;
    points.push_back({"tight", m});
    return points;
}

void
maintenanceInterferenceSweep(obs::Session &session, CsvWriter &csv)
{
    banner("Maintenance sweep: amplification vs self-management "
           "pressure",
           "refresh, patrol scrub and RowHammer mitigation steal DRAM "
           "slots; 2LM pays them on every tag probe and fill while "
           "1LM's NVRAM traffic dodges the DRAM entirely");

    Table t({"plan", "2lm_amp", "1lm_amp", "2lm_rel_bw", "1lm_rel_bw"});
    double base_bw[2] = {0, 0};
    double off_amp[2] = {0, 0};
    double tight_amp[2] = {0, 0};
    for (const MaintPoint &point : maintenancePoints()) {
        double bw[2], amp[2];
        for (MemoryMode mode :
             {MemoryMode::TwoLm, MemoryMode::OneLm}) {
            SystemConfig cfg = baseConfig(mode);
            cfg.maintenance = point.config;
            auto sys_sys = makeSystem(cfg);
            MemorySystem &sys = *sys_sys;
            Bytes bytes = 2 * cfg.dramTotal();
            Region r =
                cfg.mode == MemoryMode::OneLm
                    ? sys.allocateIn(MemPool::Nvram, bytes, "arr")
                    : sys.allocate(bytes, "arr");
            attachRun(session, sys,
                      fmt("maintenance/%s/%s", memoryModeName(mode),
                          point.label));
            std::size_t slot = mode == MemoryMode::OneLm;
            bw[slot] = streamBandwidth(sys, r, 2);
            amp[slot] = sys.counters().amplification();
            session.endRun();
        }
        if (base_bw[0] == 0) {
            base_bw[0] = bw[0];
            base_bw[1] = bw[1];
            off_amp[0] = amp[0];
            off_amp[1] = amp[1];
        }
        tight_amp[0] = amp[0];
        tight_amp[1] = amp[1];
        double rel2 = bw[0] / base_bw[0], rel1 = bw[1] / base_bw[1];
        t.row({point.label, fmt("%.3f", amp[0]), fmt("%.3f", amp[1]),
               fmt("%.3f", rel2), fmt("%.3f", rel1)});
        csv.row(std::vector<std::string>{"maintenance", "2lm",
                                         point.label,
                                         fmt("%f", amp[0]),
                                         fmt("%f", rel2)});
        csv.row(std::vector<std::string>{"maintenance", "1lm",
                                         point.label,
                                         fmt("%f", amp[1]),
                                         fmt("%f", rel1)});
    }
    t.print();

    // The headline claim: hardware cache management turns maintenance
    // into amplified maintenance. The 2LM machine's amplification must
    // inflate faster than the 1LM machine's as the plans tighten.
    double inflate2 = tight_amp[0] / off_amp[0];
    double inflate1 = tight_amp[1] / off_amp[1];
    std::printf("\nmaintenance off -> tight: 2LM amplification x%.3f, "
                "1LM x%.3f -> 2LM inflates %s\n",
                inflate2, inflate1,
                inflate2 > inflate1 ? "faster (as expected)"
                                    : "SLOWER (unexpected)");
}

void
throttleTrace(obs::Session &session, CsvWriter &csv)
{
    banner("Thermal throttle: engage/recover hysteresis",
           "sustained writes engage the throttle after 2 hot epochs; "
           "a read phase releases it after 2 cool epochs");

    SystemConfig cfg = baseConfig(MemoryMode::OneLm);
    cfg.epochBytes = 128 * kKiB;
    // Six channels share the ~11 GB/s NT-store stream, so each DIMM
    // sustains ~1.8 GB/s. Engage above 1 GB/s; while throttled (x0.6)
    // the rate stays above the 0.4 GB/s release threshold, so only
    // the read phase cools the DIMM down — visible hysteresis.
    cfg.fault.throttle.engageBandwidth = 1e9;
    cfg.fault.throttle.releaseBandwidth = 0.4e9;
    cfg.fault.throttle.engageEpochs = 2;
    cfg.fault.throttle.releaseEpochs = 2;
    cfg.fault.throttle.factor = 0.6;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    attachRun(session, sys, "throttle_trace");
    sys.setActiveThreads(8);
    Region w = sys.allocateIn(MemPool::Nvram, 4 * kMiB, "hot");

    auto write_phase = [&](Bytes bytes) {
        for (Addr a = w.base; a < w.base + bytes; a += kLineSize)
            sys.touchLine(0, CpuOp::NtStore, a);
    };
    auto read_phase = [&](Bytes bytes) {
        for (Addr a = w.base; a < w.base + bytes; a += kLineSize)
            sys.touchLine(0, CpuOp::Load, a);
    };

    write_phase(4 * kMiB);  // hot: engages after the hysteresis delay
    read_phase(2 * kMiB);   // cool: recovers
    write_phase(4 * kMiB);  // hot again: re-engages
    sys.quiesce();
    session.endRun();

    const TimeSeries &ts = sys.trace();
    Table t({"time_us", "throttle_factor", "nvram_wr_gbs"});
    const auto &factor = ts.channel("throttle_factor");
    const auto &wr = ts.channel("nvram_write_bw");
    for (std::size_t i = 0; i < factor.size(); ++i) {
        // Trace bandwidth channels are recorded in GB/s already.
        double wr_gbs = i < wr.size() ? wr[i].value : 0;
        t.row({fmt("%.1f", factor[i].time * 1e6),
               fmt("%.2f", factor[i].value), fmt("%.2f", wr_gbs)});
        csv.row(std::vector<std::string>{
            "throttle", "factor", fmt("%f", factor[i].time),
            fmt("%f", factor[i].value), fmt("%f", wr_gbs)});
    }
    t.print();

    const FaultLog &log = sys.faultLog();
    std::printf("\nthrottle transitions: %llu engaged, %llu released, "
                "%llu epochs spent throttled -> %s\n",
                static_cast<unsigned long long>(
                    log.count(FaultEventKind::ThrottleEngaged)),
                static_cast<unsigned long long>(
                    log.count(FaultEventKind::ThrottleReleased)),
                static_cast<unsigned long long>(
                    sys.counters().throttledEpochs),
                log.count(FaultEventKind::ThrottleEngaged) >= 2 &&
                        log.count(FaultEventKind::ThrottleReleased) >= 1
                    ? "engage/recover cycle visible (as expected)"
                    : "NO full cycle (unexpected)");
    for (const auto &e : log.events()) {
        if (e.kind != FaultEventKind::ThrottleEngaged &&
            e.kind != FaultEventKind::ThrottleReleased)
            continue;
        csv.row(std::vector<std::string>{
            "throttle", faultEventKindName(e.kind), fmt("%f", e.time),
            fmt("%u", e.channel), ""});
    }
}

} // namespace

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    CsvWriter csv("fault_degradation.csv");
    csv.row(std::vector<std::string>{"experiment", "series", "x",
                                     "value", "extra"});
    errorRateSweep(session, csv);
    maintenanceInterferenceSweep(session, csv);
    throttleTrace(session, csv);
    csv.close();
    session.write();  // explicit: I/O failure is fatal, not a warning
    std::printf("\nseries written to fault_degradation.csv\n");
    return 0;
}
