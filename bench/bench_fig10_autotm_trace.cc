/**
 * @file
 * Figure 10 reproduction: memory bandwidth of one DenseNet 264
 * training iteration under AutoTM-style software management (1LM).
 * Paper: NVRAM writes only during the forward pass (saving live
 * activations), NVRAM reads only during the backward pass; samples
 * averaged over a sliding window.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "core/units.hh"
#include "dnn/autotm.hh"
#include "dnn/networks.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

int
main(int argc, char **argv)
{
    bench::BenchOptions opts = bench::parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    constexpr std::uint64_t kScale = 1u << 14;
    constexpr std::uint64_t kBatch = 2304;

    SystemConfig cfg;
    cfg.mode = MemoryMode::OneLm;
    cfg.scale = kScale;
    cfg.scatterPages = true;  // OS demand paging (no cache to conflict)
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;

    ComputeGraph g = buildDenseNet264(kBatch);
    AutoTmConfig acfg;
    acfg.exec.threads = 24;
    AutoTmExecutor ex(sys, g, acfg);

    banner("Figure 10: DenseNet 264 under AutoTM (1LM)",
           "NVRAM writes only in the forward pass, NVRAM reads only "
           "in the backward pass; higher achieved NVRAM bandwidth "
           "than 2LM");

    ex.runIteration();
    sys.resetCounters();
    attachRun(session, sys, "fig10/densenet264_autotm");
    IterationResult res = ex.runIteration();
    session.endRun();

    std::size_t fwd_ops = g.forwardOps();
    double t0 = res.kernels.front().start;
    double boundary = res.kernels[fwd_ops - 1].end;
    double t1 = res.kernels.back().end;

    // NVRAM traffic split across the pass boundary.
    auto sum_in = [&](const char *ch, double lo, double hi) {
        const auto &s = sys.trace().channel(ch);
        double sum = 0;
        // Samples carry GB/s; integrate approximately via neighboring
        // timestamps.
        for (std::size_t i = 0; i < s.size(); ++i) {
            if (s[i].time < lo || s[i].time >= hi)
                continue;
            double dt = i + 1 < s.size() ? s[i + 1].time - s[i].time
                                         : 0.0;
            sum += s[i].value * dt;
        }
        return sum;  // GB
    };
    double wr_fwd = sum_in("nvram_write_bw", t0, boundary);
    double wr_bwd = sum_in("nvram_write_bw", boundary, t1);
    double rd_fwd = sum_in("nvram_read_bw", t0, boundary);
    double rd_bwd = sum_in("nvram_read_bw", boundary, t1);

    Table t({"phase", "NVRAM write (GB)", "NVRAM read (GB)"});
    t.row({"forward", fmt("%.4f", wr_fwd), fmt("%.4f", rd_fwd)});
    t.row({"backward", fmt("%.4f", wr_bwd), fmt("%.4f", rd_bwd)});
    t.print();
    std::printf("\nNVRAM writes in forward: %.0f%% of all NVRAM writes "
                "(paper: ~100%%)\n",
                100.0 * wr_fwd / std::max(wr_fwd + wr_bwd, 1e-12));
    std::printf("NVRAM reads in backward: %.0f%% of all NVRAM reads "
                "(paper: ~100%%)\n",
                100.0 * rd_bwd / std::max(rd_fwd + rd_bwd, 1e-12));

    std::printf("\niteration %.4f s | moves: %llu spills "
                "(%s), %llu fetches (%s), %llu dead tensors dropped "
                "without writeback (%s)\n",
                res.seconds,
                static_cast<unsigned long long>(ex.stats().movesToNvram),
                formatBytes(ex.stats().bytesToNvram).c_str(),
                static_cast<unsigned long long>(ex.stats().movesToDram),
                formatBytes(ex.stats().bytesToDram).c_str(),
                static_cast<unsigned long long>(
                    ex.stats().deadTensorsDropped),
                formatBytes(ex.stats().deadBytesDropped).c_str());

    // Window-averaged bandwidth trace (the paper uses a 2.5 s sliding
    // window on a ~200 s run; scale the window to our runtime).
    double window = res.seconds / 80.0;
    CsvWriter csv("fig10_autotm_trace.csv");
    csv.row(std::vector<std::string>{"time", "channel", "value"});
    for (const char *ch : {"dram_read_bw", "dram_write_bw",
                           "nvram_read_bw", "nvram_write_bw"}) {
        for (const auto &s : sys.trace().windowAverage(ch, window)) {
            csv.row(std::vector<std::string>{fmt("%f", s.time), ch,
                                             fmt("%f", s.value)});
        }
    }
    csv.close();
    session.write();
    std::printf("\nwindow-averaged trace written to "
                "fig10_autotm_trace.csv\n");
    return 0;
}
