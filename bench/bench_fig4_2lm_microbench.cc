/**
 * @file
 * Figure 4 reproduction: microbenchmarks on an array 2.2x the size of
 * the DRAM cache (420 GB vs 192 GB on the paper's machine), so the
 * 2LM miss rate is ~100%.
 *
 *  4a: read-only, clean LLC read misses, 24 threads. Paper: effective
 *      ~23 GB/s max (60-76% of the 1LM 30 GB/s), 3x amplification.
 *  4b: write-only nontemporal, dirty LLC write misses, 24 threads.
 *      Paper: effective ~8 GB/s max (72% of 1LM 11 GB/s), two DRAM
 *      writes per store, 5x amplification.
 *  4c: read-modify-write with standard stores, 4 threads: dirty read
 *      miss then a DDO LLC write. Paper: highest NVRAM write bandwidth
 *      of any 2LM benchmark; second tag check elided.
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "exec/sweep.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 4096;

struct Scenario
{
    const char *name;
    KernelOp op;
    bool nontemporal;
    bool prime_dirty;
    unsigned threads;
};

const Scenario kScenarios[] = {
    {"4a read-only, clean misses, 24T", KernelOp::ReadOnly, true, false,
     24},
    {"4b write-only NT, dirty misses, 24T", KernelOp::WriteOnly, true,
     true, 24},
    {"4c rmw standard, dirty miss + DDO, 4T",
     KernelOp::ReadModifyWrite, false, true, 4},
};

constexpr std::size_t kPatterns = 2;

AccessPattern
patternOf(std::size_t i)
{
    return i % kPatterns == 0 ? AccessPattern::Sequential
                              : AccessPattern::Random;
}

/** Everything one sweep point reports, buffered for in-order output. */
struct PointResult
{
    std::vector<std::string> tableRow;
    CsvRows csv;
};

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    CsvWriter csv("fig4_2lm_microbench.csv");
    csv.row(std::vector<std::string>{"scenario", "pattern", "metric",
                                     "gbs"});

    banner("Figure 4: 2LM microbenchmarks, array = 2.2x DRAM cache",
           "read miss ~23 GB/s effective w/ 3x amplification; NT "
           "write miss ~8 GB/s w/ 2 DRAM writes per store and 5x "
           "amplification; RMW shows DDO (elided tag checks)");

    // One task per (scenario, pattern) point. Each owns its system and
    // buffers its rows; the collection below replays them in
    // declaration order, so the output is byte-identical for any
    // --jobs=N.
    exec::SweepRunner runner(effectiveJobs(opts, session));
    std::size_t n_points = std::size(kScenarios) * kPatterns;
    std::vector<PointResult> results = runner.map<PointResult>(
        n_points, [&](std::size_t i) {
            const Scenario &s = kScenarios[i / kPatterns];
            AccessPattern pattern = patternOf(i);

            SystemConfig cfg = benchConfig(opts);
            cfg.mode = MemoryMode::TwoLm;
            cfg.scale = kScale;
            auto sys_sys = makeSystem(cfg);
            MemorySystem &sys = *sys_sys;
            Region arr =
                sys.allocate(cfg.dramTotal() * 22 / 10, "array");
            if (s.prime_dirty)
                primeDirty(sys, arr, 8);
            else
                primeClean(sys, arr, 8);
            sys.resetCounters();

            // Attach after priming so the histograms and heatmap hold
            // the measured kernel only, not the warmup traffic. (With
            // a session enabled the sweep is forced serial, so the
            // begin/end pairs nest correctly.)
            attachRun(session, sys,
                      fmt("%s/%s", s.name, accessPatternName(pattern)));

            KernelConfig k;
            k.op = s.op;
            k.pattern = pattern;
            k.threads = s.threads;
            k.nontemporal = s.nontemporal;
            KernelResult r = runKernel(sys, arr, k);
            session.endRun();

            double ddo_frac =
                r.counters.llcWrites
                    ? static_cast<double>(r.counters.ddoHit) /
                          static_cast<double>(r.counters.llcWrites)
                    : 0.0;
            PointResult res;
            res.tableRow = {accessPatternName(pattern),
                            gbs(r.effectiveBandwidth),
                            gbs(r.dramReadBandwidth()),
                            gbs(r.dramWriteBandwidth()),
                            gbs(r.nvramReadBandwidth()),
                            gbs(r.nvramWriteBandwidth()),
                            fmt("%.2f", r.counters.amplification()),
                            fmt("%.2f", ddo_frac)};
            for (auto [metric, v] :
                 {std::pair<const char *, double>{
                      "effective", r.effectiveBandwidth},
                  {"dram_read", r.dramReadBandwidth()},
                  {"dram_write", r.dramWriteBandwidth()},
                  {"nvram_read", r.nvramReadBandwidth()},
                  {"nvram_write", r.nvramWriteBandwidth()}}) {
                res.csv.row(std::vector<std::string>{
                    s.name, accessPatternName(pattern), metric,
                    fmt("%f", v / 1e9)});
            }
            return res;
        });

    for (std::size_t si = 0; si < std::size(kScenarios); ++si) {
        std::printf("--- %s ---\n", kScenarios[si].name);
        Table t({"pattern", "effective", "DRAM rd", "DRAM wr",
                 "NVRAM rd", "NVRAM wr", "amp", "ddo/writes"});
        for (std::size_t pi = 0; pi < kPatterns; ++pi) {
            const PointResult &res = results[si * kPatterns + pi];
            t.row(res.tableRow);
            res.csv.flushTo(csv);
        }
        t.print();
        std::printf("\n");
    }

    csv.close();
    session.write();  // explicit: I/O failure is fatal, not a warning
    std::printf("series written to fig4_2lm_microbench.csv\n");
    return 0;
}
