/**
 * @file
 * Extension experiment: intra-run channel-shard scaling. One fixed
 * 2LM microbench workload is replayed at --shard-threads 1/2/4/8 and
 * timed; the run at every width must leave the machine in a
 * bit-identical state (counters, simulated clock, amplification), so
 * the table doubles as an end-to-end determinism check. On hosts with
 * idle cores the multi-threaded rows should show wall-clock speedup;
 * on a saturated or single-core host the requirement is only that the
 * sharded rows do not regress materially (the epoch barrier is the
 * whole overhead).
 */

#include <chrono>
#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "core/units.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

const unsigned kWidths[] = {1, 2, 4, 8};

struct Point
{
    double seconds;       //!< host wall-clock for the workload
    double simNow;        //!< simulated clock after the workload
    double amplification;
    std::uint64_t counterSum;  //!< fold of every uncore counter
};

SystemConfig
workloadConfig(const SystemConfig &base)
{
    SystemConfig cfg = base;
    cfg.mode = MemoryMode::TwoLm;
    cfg.scale = 512;  // big enough that per-epoch work dominates
    return cfg;
}

Point
runAt(const SystemConfig &base, unsigned shard_threads)
{
    MemorySystem sys(workloadConfig(base));
    sys.setShardThreads(shard_threads);

    // Oversubscribe the DRAM cache so the channels do real miss work:
    // a read-modify-write sweep plus a random read pass, twice.
    Region r = sys.allocateIn(MemPool::Nvram,
                              sys.config().dramTotal() +
                                  sys.config().dramTotal() / 2,
                              "working-set");
    KernelConfig rmw;
    rmw.op = KernelOp::ReadModifyWrite;
    rmw.threads = 8;
    KernelConfig rnd;
    rnd.op = KernelOp::ReadOnly;
    rnd.pattern = AccessPattern::Random;
    rnd.threads = 8;

    auto t0 = std::chrono::steady_clock::now();
    for (int pass = 0; pass < 2; ++pass) {
        runKernel(sys, r, rmw);
        runKernel(sys, r, rnd);
    }
    sys.quiesce();
    auto t1 = std::chrono::steady_clock::now();

    Point pt{};
    pt.seconds = std::chrono::duration<double>(t1 - t0).count();
    pt.simNow = sys.now();
    pt.amplification = sys.nvramWriteAmplification();
    sys.counters().forEachField(
        [&](const char *, const char *, std::uint64_t v) {
            pt.counterSum = pt.counterSum * 1099511628211ull + v;
        });
    return pt;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Extension: intra-run channel-shard scaling (2LM microbench)",
           "simulated results are byte-identical at every width; "
           "wall-clock improves when the host has idle cores");

    CsvWriter csv("scaling_threads.csv");
    csv.row(std::vector<std::string>{"shard_threads", "seconds",
                                     "speedup", "identical"});

    SystemConfig base = benchConfig(opts);
    std::vector<Point> points;
    for (unsigned n : kWidths)
        points.push_back(runAt(base, n));

    Table t({"shard threads", "wall-clock (s)", "speedup", "identical"});
    for (std::size_t i = 0; i < std::size(kWidths); ++i) {
        const Point &p = points[i];
        const Point &ref = points[0];
        bool same = p.simNow == ref.simNow &&
                    p.amplification == ref.amplification &&
                    p.counterSum == ref.counterSum;
        if (!same)
            fatal("shard width %u diverged from the serial run "
                  "(now %.17g vs %.17g)",
                  kWidths[i], p.simNow, ref.simNow);
        t.row({fmt("%u", kWidths[i]), fmt("%.3f", p.seconds),
               fmt("%.2fx", ref.seconds / p.seconds),
               same ? "yes" : "NO"});
        csv.row(std::vector<std::string>{
            fmt("%u", kWidths[i]), fmt("%f", p.seconds),
            fmt("%f", ref.seconds / p.seconds), same ? "yes" : "no"});
    }
    t.print();

    csv.close();
    session.write();
    std::printf("\nrows written to scaling_threads.csv\n");
    return 0;
}
