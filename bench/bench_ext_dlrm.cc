/**
 * @file
 * Extension experiment: DLRM-style embedding tables, the recommendation
 * workload the paper's introduction motivates NVRAM with (and Bandana's
 * use case). Tables at 2.2x the DRAM cache, Zipf lookups with optional
 * training updates, three deployments: hardware-managed 2LM, 1LM
 * app-direct (tables read in place), and Bandana-style software caching
 * (hot rows pinned in DRAM).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "core/units.hh"
#include "dnn/embedding.hh"

using namespace nvsim;
using namespace nvsim::bench;
using namespace nvsim::dnn;

namespace
{

constexpr std::uint64_t kScale = 8192;

const double kSkews[] = {1.0, 3.0};
const bool kTraining[] = {false, true};
const EmbeddingPlacement kPlacements[] = {
    EmbeddingPlacement::TwoLm,
    EmbeddingPlacement::AppDirect,
    EmbeddingPlacement::SoftwareCached,
};

constexpr std::size_t kNPlacements = std::size(kPlacements);
constexpr std::size_t kNTraining = std::size(kTraining);

EmbeddingConfig
baseConfig(const SystemConfig &sys_cfg, bool training, double skew)
{
    EmbeddingConfig e;
    e.numTables = 8;
    e.rowsPerTable =
        sys_cfg.dramTotal() * 22 / 10 / e.numTables / e.rowBytes;
    e.lookupsPerSample = 4;
    e.batch = 2048;
    e.threads = 24;
    e.updateRows = training;
    e.skew = skew;
    // Fair fight: the software cache gets the same DRAM the hardware
    // cache has (tables are 2.2x DRAM, so ~40% of rows fit).
    e.hotFraction = 0.4;
    return e;
}

const char *
caseName(double skew, bool training)
{
    if (skew == 1.0)
        return training ? "uniform_training" : "uniform_inference";
    return training ? "zipf_training" : "zipf_inference";
}

EmbeddingResult
run(obs::Session &session, const SystemConfig &base,
    EmbeddingPlacement placement, bool training, double skew)
{
    SystemConfig cfg = base;
    cfg.mode = placement == EmbeddingPlacement::TwoLm
                   ? MemoryMode::TwoLm
                   : MemoryMode::OneLm;
    cfg.scale = kScale;
    cfg.scatterPages = placement == EmbeddingPlacement::TwoLm;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    EmbeddingConfig e = baseConfig(cfg, training, skew);
    EmbeddingWorkload w(sys, e, placement);
    w.runBatch();  // warm the caches / LLC
    sys.resetCounters();
    attachRun(session, sys,
              fmt("%s/%s", caseName(skew, training),
                  embeddingPlacementName(placement)));
    EmbeddingResult r = w.runBatch();
    session.endRun();
    return r;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    banner("Extension: DLRM embedding tables at 2.2x the DRAM cache",
           "hardware caching suffers gather-miss amplification and "
           "(when training) dirty-row writebacks; app-direct reads "
           "rows in place; Bandana-style hot-row pinning wins by "
           "serving the Zipf head from DRAM");

    CsvWriter csv("ext_dlrm.csv");
    csv.row(std::vector<std::string>{"mode", "placement",
                                     "lookups_per_s", "amplification",
                                     "nvram_wr_lines", "hot_frac"});

    // One task per (skew, training, placement); the collection loop
    // below replays results in declaration order, so output is
    // byte-identical for any --jobs=N.
    exec::SweepRunner runner(effectiveJobs(opts, session));
    SystemConfig base = benchConfig(opts);
    std::size_t n_points =
        std::size(kSkews) * kNTraining * kNPlacements;
    std::vector<EmbeddingResult> results =
        runner.map<EmbeddingResult>(n_points, [&](std::size_t i) {
            double skew = kSkews[i / (kNTraining * kNPlacements)];
            bool training = kTraining[i / kNPlacements % kNTraining];
            EmbeddingPlacement p = kPlacements[i % kNPlacements];
            return run(session, base, p, training, skew);
        });

    std::size_t i = 0;
    for (double skew : kSkews) {
      std::printf("===== %s lookups =====\n",
                  skew == 1.0 ? "uniform" : "Zipf-skewed");
      for (bool training : kTraining) {
        std::printf("--- %s ---\n",
                    training ? "training (gather + scatter update)"
                             : "inference (gather only)");
        Table t({"placement", "Mlookups/s", "amplification",
                 "NVRAM wr", "hot hits"});
        double base_rate = 0;
        for (EmbeddingPlacement p : kPlacements) {
            EmbeddingResult r = results[i++];
            if (p == EmbeddingPlacement::TwoLm)
                base_rate = r.lookupsPerSecond();
            t.row({embeddingPlacementName(p),
                   fmt("%.2f (%.2fx)", r.lookupsPerSecond() / 1e6,
                       r.lookupsPerSecond() / base_rate),
                   fmt("%.2f", r.counters.amplification()),
                   formatBytes(r.counters.nvramWrite * kLineSize),
                   fmt("%.2f", r.hotHitFraction)});
            csv.row(std::vector<std::string>{
                caseName(skew, training), embeddingPlacementName(p),
                fmt("%f", r.lookupsPerSecond()),
                fmt("%f", r.counters.amplification()),
                fmt("%llu", static_cast<unsigned long long>(
                                r.counters.nvramWrite)),
                fmt("%f", r.hotHitFraction)});
        }
        t.print();
        std::printf("\n");
      }
    }
    csv.close();
    session.write();
    std::printf("rows written to ext_dlrm.csv\n");
    return 0;
}
