/**
 * @file
 * Shared setup for the graph-analytics benches (Figures 7-9): the two
 * scaled inputs and the two-socket system configuration.
 *
 * Scaling (divisor 8192) preserves the paper's capacity ratios:
 *   - DRAM cache, 2 sockets: 384 GB -> 48 MiB
 *   - wdc12:  3.5 G nodes / 128 G edges, 507 GB binary
 *             -> 427 K nodes / ~15.6 M edges, ~66 MB binary (exceeds
 *                the cache, ratio ~1.3 as in the paper)
 *   - kron30: 2^30 nodes / ~17 G directed edges, 73 GB binary
 *             -> 2^17 nodes / ~2 M edges, ~9.4 MB (fits in the cache)
 */

#ifndef NVSIM_BENCH_GRAPHS_COMMON_HH
#define NVSIM_BENCH_GRAPHS_COMMON_HH

#include "graphs/generators.hh"
#include "graphs/runner.hh"
#include "sys/memsys.hh"

namespace nvsim::bench
{

inline constexpr std::uint64_t kGraphScale = 8192;

/** Two-socket system (the paper's graph runs span both sockets). */
inline SystemConfig
graphSystem(MemoryMode mode)
{
    SystemConfig cfg;
    cfg.mode = mode;
    cfg.sockets = 2;
    cfg.scale = kGraphScale;
    cfg.scatterPages = true;  // 2 MiB hugepages, demand-paged
    return cfg;
}

/** kron30 stand-in: fits in the (scaled) DRAM cache. */
inline graphs::CsrGraph
kron30Like()
{
    graphs::KroneckerParams p;
    p.scale = 17;
    p.edgeFactor = 8;  // x2 after symmetrization
    return graphs::kronecker(p);
}

/** wdc12 stand-in: exceeds the (scaled) DRAM cache. */
inline graphs::CsrGraph
wdc12Like()
{
    graphs::WebGraphParams p;
    p.numNodes = 427 * 1024;
    p.avgDegree = 36;
    return graphs::webGraph(p);
}

/** Paper-style run settings (96 threads over two sockets). */
inline graphs::GraphRunConfig
graphRun(graphs::Placement placement, unsigned pr_rounds = 8)
{
    graphs::GraphRunConfig cfg;
    cfg.placement = placement;
    cfg.threads = 96;
    cfg.prRounds = pr_rounds;  // paper runs 100; scaled down for time
    cfg.kcoreK = 10;           // paper uses k=100 on the full graphs
    return cfg;
}

} // namespace nvsim::bench

#endif // NVSIM_BENCH_GRAPHS_COMMON_HH
