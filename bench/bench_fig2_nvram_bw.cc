/**
 * @file
 * Figure 2 reproduction: 1LM bandwidth to six interleaved NVRAM DIMMs.
 *
 *  2a: read bandwidth with standard loads, sequential and pseudo-random
 *      at 64-512 B granularity, across thread counts. Paper: sequential
 *      scales to ~30 GB/s by 8 threads then saturates; random 64 B is
 *      far lower; random >= 256 B approaches sequential.
 *  2b: write bandwidth with nontemporal stores. Paper: peaks ~11 GB/s
 *      at 4 threads, droops slightly beyond; random < 256 B collapses
 *      (media write amplification).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 4096;
constexpr Bytes kArray = 24 * kMiB;  // 96 GiB equivalent
const unsigned kThreads[] = {1, 2, 4, 8, 16, 24};

struct Variant
{
    const char *name;
    AccessPattern pattern;
    Bytes granularity;
};

const Variant kVariants[] = {
    {"sequential", AccessPattern::Sequential, 64},
    {"random_64B", AccessPattern::Random, 64},
    {"random_128B", AccessPattern::Random, 128},
    {"random_256B", AccessPattern::Random, 256},
    {"random_512B", AccessPattern::Random, 512},
};

double
runOne(obs::Session &session, const char *figure, KernelOp op,
       const Variant &v, unsigned threads)
{
    SystemConfig cfg;
    cfg.mode = MemoryMode::OneLm;
    cfg.scale = kScale;
    MemorySystem sys(cfg);
    Region arr = sys.allocateIn(MemPool::Nvram, kArray, "array");

    attachRun(session, sys, fmt("%s/%s/%uT", figure, v.name, threads));

    KernelConfig k;
    k.op = op;
    k.pattern = v.pattern;
    k.granularity = v.granularity;
    k.threads = threads;
    k.nontemporal = true;
    double bw = runKernel(sys, arr, k).effectiveBandwidth;
    session.endRun();
    return bw;
}

void
sweep(obs::Session &session, const char *figure, KernelOp op,
      CsvWriter &csv)
{
    Table t([&] {
        std::vector<std::string> h{"threads"};
        for (const Variant &v : kVariants)
            h.push_back(v.name);
        return h;
    }());
    for (unsigned threads : kThreads) {
        std::vector<std::string> r{fmt("%u", threads)};
        for (const Variant &v : kVariants) {
            double bw = runOne(session, figure, op, v, threads);
            r.push_back(gbs(bw));
            csv.row(std::vector<std::string>{figure, v.name,
                                             fmt("%u", threads),
                                             fmt("%f", bw / 1e9)});
        }
        t.row(std::move(r));
    }
    t.print();
}

} // namespace

int
main(int argc, char **argv)
{
    obs::Session session(parseObsOptions(argc, argv));
    CsvWriter csv("fig2_nvram_bw.csv");
    csv.row(std::vector<std::string>{"figure", "variant", "threads",
                                     "gbs"});

    banner("Figure 2a: NVRAM read bandwidth (1LM, GB/s)",
           "sequential saturates ~30 GB/s at 8 threads; random 64B "
           "~4x lower; random >=256B matches sequential");
    sweep(session, "2a", KernelOp::ReadOnly, csv);

    banner("Figure 2b: NVRAM write bandwidth (1LM, nontemporal, GB/s)",
           "peaks ~11 GB/s at 4 threads, slight droop beyond; "
           "random <256B collapses from write amplification");
    sweep(session, "2b", KernelOp::WriteOnly, csv);

    csv.close();
    session.write();  // explicit: I/O failure is fatal, not a warning
    std::printf("\nseries written to fig2_nvram_bw.csv\n");
    return 0;
}
