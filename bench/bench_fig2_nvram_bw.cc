/**
 * @file
 * Figure 2 reproduction: 1LM bandwidth to six interleaved NVRAM DIMMs.
 *
 *  2a: read bandwidth with standard loads, sequential and pseudo-random
 *      at 64-512 B granularity, across thread counts. Paper: sequential
 *      scales to ~30 GB/s by 8 threads then saturates; random 64 B is
 *      far lower; random >= 256 B approaches sequential.
 *  2b: write bandwidth with nontemporal stores. Paper: peaks ~11 GB/s
 *      at 4 threads, droops slightly beyond; random < 256 B collapses
 *      (media write amplification).
 */

#include <cstdio>

#include "bench_common.hh"
#include "core/csv.hh"
#include "exec/sweep.hh"
#include "kernels/kernels.hh"

using namespace nvsim;
using namespace nvsim::bench;

namespace
{

constexpr std::uint64_t kScale = 4096;
constexpr Bytes kArray = 24 * kMiB;  // 96 GiB equivalent
const unsigned kThreads[] = {1, 2, 4, 8, 16, 24};

struct Variant
{
    const char *name;
    AccessPattern pattern;
    Bytes granularity;
};

const Variant kVariants[] = {
    {"sequential", AccessPattern::Sequential, 64},
    {"random_64B", AccessPattern::Random, 64},
    {"random_128B", AccessPattern::Random, 128},
    {"random_256B", AccessPattern::Random, 256},
    {"random_512B", AccessPattern::Random, 512},
};

struct Figure
{
    const char *name;
    KernelOp op;
};

const Figure kFigures[] = {
    {"2a", KernelOp::ReadOnly},
    {"2b", KernelOp::WriteOnly},
};

constexpr std::size_t kNVariants = std::size(kVariants);
constexpr std::size_t kNThreads = std::size(kThreads);
constexpr std::size_t kPointsPerFigure = kNThreads * kNVariants;

double
runOne(obs::Session &session, const SystemConfig &base,
       const char *figure, KernelOp op, const Variant &v,
       unsigned threads)
{
    SystemConfig cfg = base;
    cfg.mode = MemoryMode::OneLm;
    cfg.scale = kScale;
    auto sys_sys = makeSystem(cfg);
    MemorySystem &sys = *sys_sys;
    Region arr = sys.allocateIn(MemPool::Nvram, kArray, "array");

    attachRun(session, sys, fmt("%s/%s/%uT", figure, v.name, threads));

    KernelConfig k;
    k.op = op;
    k.pattern = v.pattern;
    k.granularity = v.granularity;
    k.threads = threads;
    k.nontemporal = true;
    double bw = runKernel(sys, arr, k).effectiveBandwidth;
    session.endRun();
    return bw;
}

} // namespace

int
main(int argc, char **argv)
{
    BenchOptions opts = parseBenchOptions(argc, argv);
    obs::Session session(opts.obs);
    CsvWriter csv("fig2_nvram_bw.csv");
    csv.row(std::vector<std::string>{"figure", "variant", "threads",
                                     "gbs"});

    // One task per (figure, threads, variant) point; the collection
    // loop below replays the results in declaration order, so console
    // and CSV output are byte-identical for any --jobs=N.
    exec::SweepRunner runner(effectiveJobs(opts, session));
    SystemConfig base = benchConfig(opts);
    std::size_t n_points = std::size(kFigures) * kPointsPerFigure;
    std::vector<double> bw = runner.map<double>(
        n_points, [&](std::size_t i) {
            const Figure &fig = kFigures[i / kPointsPerFigure];
            unsigned threads =
                kThreads[i % kPointsPerFigure / kNVariants];
            const Variant &v = kVariants[i % kNVariants];
            return runOne(session, base, fig.name, fig.op, v,
                          threads);
        });

    std::size_t i = 0;
    for (const Figure &fig : kFigures) {
        if (fig.op == KernelOp::ReadOnly)
            banner("Figure 2a: NVRAM read bandwidth (1LM, GB/s)",
                   "sequential saturates ~30 GB/s at 8 threads; random "
                   "64B ~4x lower; random >=256B matches sequential");
        else
            banner("Figure 2b: NVRAM write bandwidth (1LM, "
                   "nontemporal, GB/s)",
                   "peaks ~11 GB/s at 4 threads, slight droop beyond; "
                   "random <256B collapses from write amplification");
        Table t([&] {
            std::vector<std::string> h{"threads"};
            for (const Variant &v : kVariants)
                h.push_back(v.name);
            return h;
        }());
        for (unsigned threads : kThreads) {
            std::vector<std::string> r{fmt("%u", threads)};
            for (const Variant &v : kVariants) {
                double b = bw[i++];
                r.push_back(gbs(b));
                csv.row(std::vector<std::string>{fig.name, v.name,
                                                 fmt("%u", threads),
                                                 fmt("%f", b / 1e9)});
            }
            t.row(std::move(r));
        }
        t.print();
    }

    csv.close();
    session.write();  // explicit: I/O failure is fatal, not a warning
    std::printf("\nseries written to fig2_nvram_bw.csv\n");
    return 0;
}
