/**
 * @file
 * The transaction surface of the queued channel controller.
 *
 * The analytic model answers "what does one access cost?" with a
 * single double. A queued controller cannot: latency depends on what
 * else is in flight, so the unit of exchange becomes a Transaction
 * that is enqueued, scheduled against bank/bus occupancy, and
 * completed through a callback carrying the full timing story. These
 * types are that story — shared by the controller (imc/channel.hh),
 * the queue engine (imc/scheduler.hh) and the MemorySystem front end.
 */

#ifndef NVSIM_IMC_TRANSACTION_HH
#define NVSIM_IMC_TRANSACTION_HH

#include <cstdint>
#include <functional>

#include "core/types.hh"

namespace nvsim
{

/** Which controller queue a transaction enters. */
enum class TransactionKind : std::uint8_t {
    Read,   //!< demand read: occupies the read queue until served
    Write,  //!< posted write: parks in the write-pending queue (WPQ)
};

const char *transactionKindName(TransactionKind kind);

/** One queued channel request, as the MemorySystem submits it. */
struct Transaction
{
    Addr addr = 0;           //!< channel-local line address
    double arrival = 0;      //!< seconds since epoch start
    /**
     * Analytic service component: the device round-trip seconds this
     * request needs once it issues, as computed by the cache policy
     * seam (CachePolicy::demandLatency / missServiceTime). The
     * scheduler composes queue wait and bank penalties on top, so the
     * queue-off limit of the model is exactly the analytic cost.
     */
    double service = 0;
    TransactionKind kind = TransactionKind::Read;
    std::uint16_t thread = 0;
    /** Demand traffic (true) vs interference-only (DMA, maintenance). */
    bool chargeDemand = true;
    /** Caller cookie, returned untouched in the completion callback
     *  (the MemorySystem uses it to index deferred causal records). */
    std::int32_t tag = -1;
};

/** Additive decomposition of one transaction's load-to-use time. */
struct LatencyBreakdown
{
    double service = 0;      //!< analytic device round-trip seconds
    double queueWait = 0;    //!< enqueue-to-issue seconds
    double bankPenalty = 0;  //!< row-buffer conflict seconds

    double total() const { return service + queueWait + bankPenalty; }
};

/** Everything the controller knows about a completed transaction. */
struct CompletionInfo
{
    double enqueueTime = 0;   //!< arrival at the controller (epoch s)
    double issueTime = 0;     //!< left the queue for the devices
    double completeTime = 0;  //!< data returned / write accepted
    LatencyBreakdown latency;
    bool rowBufferHit = false;   //!< issued into an open row
    bool bankConflict = false;   //!< paid the row-conflict penalty
    bool drainStalled = false;   //!< waited behind a WPQ drain burst
    std::uint32_t queueDepth = 0; //!< same-queue occupancy at enqueue
};

/** Completion callback: fires once per transaction, in issue order. */
using CompletionHandler =
    std::function<void(const Transaction &, const CompletionInfo &)>;

} // namespace nvsim

#endif // NVSIM_IMC_TRANSACTION_HH
