#include "imc/channel.hh"

#include <algorithm>

#include "core/logging.hh"

namespace nvsim
{

const char *
memoryModeName(MemoryMode mode)
{
    return mode == MemoryMode::OneLm ? "1LM" : "2LM";
}

ChannelController::ChannelController(const ChannelParams &params,
                                     MemoryMode mode)
    : params_(params), mode_(mode), dram_(params.dram),
      nvram_(params.nvram),
      cache_(DramCacheParams{params.dram.capacity, params.ddo,
                             params.cacheWays,
                             params.insertOnWriteMiss})
{
}

AccessResult
ChannelController::handle(const MemRequest &req, MemPool pool)
{
    if (mode_ == MemoryMode::TwoLm)
        return handle2lm(req);
    return handle1lm(req, pool);
}

void
ChannelController::applyActions(const MemRequest &req,
                                const CacheResult &cr)
{
    dram_.read(cr.actions.dramReads);
    dram_.write(cr.actions.dramWrites);
    if (cr.filled)
        nvram_.read(cr.fill, req.thread);
    if (cr.wroteBack)
        nvram_.write(cr.victim, req.thread);
}

AccessResult
ChannelController::handle2lm(const MemRequest &req)
{
    CacheResult cr = req.kind == MemRequestKind::LlcRead
                         ? cache_.read(req.addr)
                         : cache_.write(req.addr);
    applyActions(req, cr);

    counters_.addOutcome(req.kind, cr.outcome);
    counters_.addActions(cr.actions);
    if (cr.filled)
        ++epochMisses_;

    AccessResult result;
    result.outcome = cr.outcome;
    result.actions = cr.actions;
    if (req.kind == MemRequestKind::LlcRead) {
        // Hit: one DRAM round trip. Miss: tag-check read then the NVRAM
        // fetch are serial; the insert write is posted off the critical
        // path.
        result.latency = cr.outcome == CacheOutcome::Hit
                             ? params_.dram.latency
                             : params_.dram.latency +
                                   params_.nvram.readLatency;
    } else {
        // Writes are posted; the tag-check read still occupies the
        // request slot before the write can be accepted.
        result.latency = cr.outcome == CacheOutcome::DdoHit
                             ? params_.nvram.writeLatency
                             : params_.dram.latency;
    }
    return result;
}

AccessResult
ChannelController::handle1lm(const MemRequest &req, MemPool pool)
{
    AccessResult result;
    result.outcome = CacheOutcome::Uncached;
    counters_.addOutcome(req.kind, CacheOutcome::Uncached);

    if (req.kind == MemRequestKind::LlcRead) {
        if (pool == MemPool::Dram) {
            dram_.read(1);
            counters_.dramRead += 1;
            result.actions.dramReads = 1;
            result.latency = params_.dram.latency;
        } else {
            nvram_.read(req.addr, req.thread);
            counters_.nvramRead += 1;
            result.actions.nvramReads = 1;
            result.latency = params_.nvram.readLatency;
        }
    } else {
        if (pool == MemPool::Dram) {
            dram_.write(1);
            counters_.dramWrite += 1;
            result.actions.dramWrites = 1;
            result.latency = params_.dram.latency;
        } else {
            nvram_.write(req.addr, req.thread);
            counters_.nvramWrite += 1;
            result.actions.nvramWrites = 1;
            result.latency = params_.nvram.writeLatency;
        }
    }
    return result;
}

void
ChannelController::drainBuffers()
{
    nvram_.flushWpq();
}

ChannelEpoch
ChannelController::drainEpoch()
{
    ChannelEpoch e;
    e.dram = dram_.drainEpoch();
    e.nvram = nvram_.drainEpoch();
    e.misses = epochMisses_;
    epochMisses_ = 0;
    return e;
}

double
ChannelController::missServiceTime() const
{
    // Tag-check DRAM read followed by the NVRAM line fetch; the DRAM
    // insert overlaps with returning data to the LLC.
    return params_.dram.latency + params_.nvram.readLatency;
}

double
ChannelController::epochTime(const ChannelEpoch &epoch) const
{
    // Shared DDR4/DDR-T bus: every DRAM CAS and every NVRAM bus
    // transaction crosses it.
    double bus_bytes = static_cast<double>(epoch.dram.bytes()) +
                       static_cast<double>(epoch.nvram.demandBytes());
    double t_bus = bus_bytes / params_.busBandwidth;

    // DRAM device throughput.
    double t_dram = static_cast<double>(epoch.dram.bytes()) /
                    params_.dram.bandwidth;

    // NVRAM media: reads and writes share the media controller, so
    // their service times add. Write bandwidth degrades with stream
    // count (XPBuffer contention).
    double write_bw = params_.nvram.writeBandwidth *
                      nvram_.writeEfficiency(epoch.nvram.writerStreams);
    double t_media =
        static_cast<double>(epoch.nvram.mediaReadBytes()) /
            params_.nvram.readBandwidth +
        static_cast<double>(epoch.nvram.mediaWriteBytes()) / write_bw;

    // 2LM miss handler occupancy: a bounded number of outstanding
    // misses, each holding an entry for the serial tag-check + fetch.
    double t_mshr = 0;
    if (params_.missHandlerEntries > 0) {
        t_mshr = static_cast<double>(epoch.misses) * missServiceTime() /
                 static_cast<double>(params_.missHandlerEntries);
    }

    return std::max({t_bus, t_dram, t_media, t_mshr});
}

void
ChannelController::reset()
{
    cache_.invalidateAll();
    counters_ = PerfCounters{};
    epochMisses_ = 0;
    drainEpoch();
    drainBuffers();
    drainEpoch();
}

} // namespace nvsim
