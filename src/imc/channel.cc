#include "imc/channel.hh"

#include <algorithm>
#include <cmath>

#include "core/logging.hh"
#include "obs/stats.hh"

namespace nvsim
{

const char *
memoryModeName(MemoryMode mode)
{
    return mode == MemoryMode::OneLm ? "1LM" : "2LM";
}

ChannelController::ChannelController(const ChannelParams &params,
                                     MemoryMode mode)
    : params_(params), mode_(mode), dram_(params.dram),
      nvram_(params.nvram),
      cache_(makeCachePolicy(
          DramCacheParams{params.dram.capacity, params.ddo,
                          params.cacheWays, params.insertOnWriteMiss},
          params.policy)),
      lat_(deviceLatencies(params)),
      faultPlan_(params.fault, params.index),
      throttle_(params.fault.throttle),
      maint_(params.maintenance, params.dram.capacity, params.index)
{
    if (faultPlan_.enabled())
        nvram_.setFaultPlan(&faultPlan_);
    // A demand access that lands during a REF waits out the residual
    // tRFC; fold the expected stall into the DRAM load-to-use latency
    // once (exactly zero when refresh is off). The queued controller
    // models refresh as per-bank occupancy windows instead, so folding
    // the epoch-mean stall there would bill refresh twice.
    if (maint_.enabled() && !params_.controller.queued())
        lat_.dram += maint_.refreshDemandStall();
    if (params_.controller.queued()) {
        txq_ = std::make_unique<ChannelTxQueue>(
            params_.controller, params_.busBandwidth,
            params_.maintenance.refresh);
    }
}

ChannelController::ChannelController(ChannelController &&o) noexcept
    : params_(std::move(o.params_)), mode_(o.mode_),
      dram_(std::move(o.dram_)), nvram_(std::move(o.nvram_)),
      cache_(std::move(o.cache_)), lat_(o.lat_), counters_(o.counters_),
      epochMisses_(o.epochMisses_), faultPlan_(std::move(o.faultPlan_)),
      throttle_(o.throttle_), maint_(std::move(o.maint_)),
      txq_(std::move(o.txq_))
{
    // The moved NvramDevice still points at o's plan; re-wire it.
    nvram_.setFaultPlan(faultPlan_.enabled() ? &faultPlan_ : nullptr);
}

AccessResult
ChannelController::handle(const MemRequest &req, MemPool pool)
{
    AccessResult result = mode_ == MemoryMode::TwoLm
                              ? handle2lm(req)
                              : handle1lm(req, pool);
    if (maint_.enabled())
        runMaintenance(req, pool, result);
    return result;
}

double
ChannelController::handleFast(MemRequestKind kind, Addr addr,
                              std::uint16_t thread, MemPool pool)
{
    if (mode_ == MemoryMode::TwoLm) {
        CacheResult cr = kind == MemRequestKind::LlcRead
                             ? cache_->read(addr)
                             : cache_->write(addr);
        dram_.read(cr.actions.dramReads);
        dram_.write(cr.actions.dramWrites);
        if (cr.filled) {
            nvram_.read(cr.fill, thread);
            ++epochMisses_;
        }
        if (cr.wroteBack)
            nvram_.write(cr.victim, thread);
        ctr_->addOutcome(kind, cr.outcome);
        ctr_->addActions(cr.actions);
        ctr_->missBypass += cr.bypassed;
        ctr_->sramTagLookups += cr.tagsInSram;
        return cache_->demandLatency(kind, cr, lat_);
    }

    // 1LM: one direct device access.
    ctr_->addOutcome(kind, CacheOutcome::Uncached);
    if (kind == MemRequestKind::LlcRead) {
        if (pool == MemPool::Dram) {
            dram_.read(1);
            ctr_->dramRead += 1;
            return params_.dram.latency;
        }
        nvram_.read(addr, thread);
        ctr_->nvramRead += 1;
        return params_.nvram.readLatency;
    }
    if (pool == MemPool::Dram) {
        dram_.write(1);
        ctr_->dramWrite += 1;
        return params_.dram.latency;
    }
    nvram_.write(addr, thread);
    ctr_->nvramWrite += 1;
    return params_.nvram.writeLatency;
}

double
ChannelController::handleFastRun1lm(MemRequestKind kind, Addr addr,
                                    std::uint64_t lines,
                                    std::uint16_t thread, MemPool pool)
{
    if (kind == MemRequestKind::LlcRead) {
        ctr_->llcReads += lines;
        if (pool == MemPool::Dram) {
            dram_.read(lines);
            ctr_->dramRead += lines;
            return params_.dram.latency;
        }
        nvram_.readRun(addr, lines);
        ctr_->nvramRead += lines;
        return params_.nvram.readLatency;
    }
    ctr_->llcWrites += lines;
    if (pool == MemPool::Dram) {
        dram_.write(lines);
        ctr_->dramWrite += lines;
        return params_.dram.latency;
    }
    nvram_.writeRun(addr, lines, thread);
    ctr_->nvramWrite += lines;
    return params_.nvram.writeLatency;
}

DeviceLatencies
deviceLatencies(const ChannelParams &params)
{
    return DeviceLatencies{params.dram.latency, params.nvram.readLatency,
                           params.nvram.writeLatency};
}

CausalBreakdown
causalBreakdown2lm(MemRequestKind kind, const CacheResult &cr,
                   const ChannelParams &params)
{
    return tagEccBreakdown(kind, cr, deviceLatencies(params));
}

void
ChannelController::noteMediaFault(const MediaFault &f,
                                  AccessResult &result, bool demand_line,
                                  Addr line)
{
    if (!f.any())
        return;
    result.fault.retries += f.retries;
    ctr_->retries += f.retries;
    if (f.correctable) {
        result.fault.correctable += 1;
        ctr_->correctableErrors += 1;
    }
    if (f.uncorrectable) {
        result.fault.uncorrectable += 1;
        ctr_->uncorrectableErrors += 1;
        if (demand_line) {
            result.fault.demandPoisoned = true;
        } else {
            result.fault.victimPoisoned = true;
            result.fault.victimLine = line;
        }
    }
}

void
ChannelController::applyActions(const MemRequest &req,
                                const CacheResult &cr,
                                AccessResult &result)
{
    dram_.read(cr.actions.dramReads);
    dram_.write(cr.actions.dramWrites);
    if (cr.filled) {
        noteMediaFault(nvram_.read(cr.fill, req.thread), result,
                       /*demand_line=*/true, cr.fill);
    }
    if (cr.wroteBack) {
        noteMediaFault(nvram_.write(cr.victim, req.thread), result,
                       /*demand_line=*/false, cr.victim);
    }
}

AccessResult
ChannelController::handle2lm(const MemRequest &req)
{
    AccessResult result;

    if (faultPlan_.enabled()) {
        // DRAM ECC fault on the location this request probes/writes.
        // Uncorrectable faults hit the in-ECC tag bits: the controller
        // cannot trust the tag, drops the line (losing dirty data) and
        // the access below re-runs as a miss — the extra NVRAM fetch
        // that only the tags-in-ECC design pays. Correctable faults
        // cost retry latency only.
        MediaFault df = faultPlan_.dramRead();
        if (df.uncorrectable) {
            TagCorruption tc = cache_->corruptTag(req.addr);
            ctr_->tagEccInvalidates += 1;
            ctr_->uncorrectableErrors += 1;
            ctr_->retries += df.retries;
            result.fault.tagEccInvalidates += 1;
            result.fault.uncorrectable += 1;
            result.fault.retries += df.retries;
            if (tc.dropped && tc.wasDirty) {
                result.fault.victimPoisoned = true;
                result.fault.victimLine = tc.line;
            }
        } else if (df.correctable) {
            ctr_->correctableErrors += 1;
            ctr_->retries += df.retries;
            result.fault.correctable += 1;
            result.fault.retries += df.retries;
        }
    }

    CacheResult cr = req.kind == MemRequestKind::LlcRead
                         ? cache_->read(req.addr)
                         : cache_->write(req.addr);
    applyActions(req, cr, result);

    ctr_->addOutcome(req.kind, cr.outcome);
    ctr_->addActions(cr.actions);
    ctr_->missBypass += cr.bypassed;
    ctr_->sramTagLookups += cr.tagsInSram;
    if (cr.filled)
        ++epochMisses_;

    result.outcome = cr.outcome;
    result.actions = cr.actions;
    if (req.traced)
        result.breakdown = cache_->breakdown(req.kind, cr, lat_);
    result.latency = cache_->demandLatency(req.kind, cr, lat_);
    if (result.fault.retries)
        result.latency += result.fault.retries * params_.fault.retryLatency;
    return result;
}

AccessResult
ChannelController::handle1lm(const MemRequest &req, MemPool pool)
{
    AccessResult result;
    result.outcome = CacheOutcome::Uncached;
    ctr_->addOutcome(req.kind, CacheOutcome::Uncached);

    if (req.kind == MemRequestKind::LlcRead) {
        if (pool == MemPool::Dram) {
            dram_.read(1);
            ctr_->dramRead += 1;
            result.actions.dramReads = 1;
            result.latency = lat_.dram;
            if (faultPlan_.enabled()) {
                // 1LM has no tags in the ECC bits: an uncorrectable
                // ECC fault poisons the data line only.
                MediaFault df = faultPlan_.dramRead();
                if (df.uncorrectable) {
                    ctr_->uncorrectableErrors += 1;
                    ctr_->retries += df.retries;
                    result.fault.uncorrectable += 1;
                    result.fault.retries += df.retries;
                    result.fault.demandPoisoned = true;
                    result.fault.dramUncorrectable += 1;
                } else if (df.correctable) {
                    ctr_->correctableErrors += 1;
                    ctr_->retries += df.retries;
                    result.fault.correctable += 1;
                    result.fault.retries += df.retries;
                }
            }
        } else {
            noteMediaFault(nvram_.read(req.addr, req.thread), result,
                           /*demand_line=*/true, req.addr);
            ctr_->nvramRead += 1;
            result.actions.nvramReads = 1;
            result.latency = params_.nvram.readLatency;
        }
    } else {
        if (pool == MemPool::Dram) {
            dram_.write(1);
            ctr_->dramWrite += 1;
            result.actions.dramWrites = 1;
            result.latency = lat_.dram;
        } else {
            noteMediaFault(nvram_.write(req.addr, req.thread), result,
                           /*demand_line=*/true, req.addr);
            ctr_->nvramWrite += 1;
            result.actions.nvramWrites = 1;
            result.latency = params_.nvram.writeLatency;
        }
    }
    if (req.traced) {
        // 1LM: no cache in the path, one direct device access.
        result.breakdown.add(AccessCause::DirectAccess, pool,
                             result.latency);
    }
    if (result.fault.retries)
        result.latency += result.fault.retries * params_.fault.retryLatency;
    return result;
}

void
ChannelController::runMaintenance(const MemRequest &req, MemPool pool,
                                  AccessResult &result)
{
    (void)pool;
    // Every DRAM transaction of the demand request activates its row:
    // in 2LM the tag probes and fills count too, so hardware cache
    // management generates its own RowHammer pressure. A 1LM NVRAM
    // access never touches a DRAM row.
    unsigned triggers = 0;
    std::uint64_t dram_txns = static_cast<std::uint64_t>(
        result.actions.dramReads + result.actions.dramWrites);
    if (dram_txns > 0)
        triggers += maint_.noteActivation(req.addr, dram_txns);

    // The patrol scrubber steals DRAM demand slots, so its cadence
    // counts requests that contended for the DRAM device: every 2LM
    // request (the tag probe touches DRAM), but only the DRAM-pool
    // fraction of 1LM traffic. An app-direct NVRAM stream shares no
    // device with the scrubber and pays nothing — one reason 1LM
    // amplification stays flat while 2LM's inflates.
    ScrubOutcome sc =
        dram_txns > 0 ? maint_.demandTick() : ScrubOutcome{};
    if (sc.read) {
        // The patrol read steals a demand slot on the DRAM device and
        // activates the scrubbed frame's row like any other read.
        dram_.read(1);
        ctr_->dramRead += 1;
        ctr_->scrubReads += 1;
        maint_.noteScrubTime(lat_.dram);
        result.latency += lat_.dram;
        if (req.traced)
            result.breakdown.add(AccessCause::PatrolScrub, MemPool::Dram,
                                 lat_.dram);
        triggers += maint_.noteActivation(sc.frame, 1);

        if (sc.uncorrectableError) {
            ctr_->uncorrectableErrors += 1;
            result.fault.uncorrectable += 1;
            if (mode_ == MemoryMode::TwoLm) {
                // The UE took the in-ECC tag with it: the frame's line
                // is dropped (dirty data lost -> poison) whether or not
                // spare capacity lets us retire the frame for good.
                TagCorruption tc = sc.retire
                                       ? cache_->retireFrame(sc.frame)
                                       : cache_->corruptTag(sc.frame);
                ctr_->tagEccInvalidates += 1;
                result.fault.tagEccInvalidates += 1;
                if (tc.dropped && tc.wasDirty) {
                    result.fault.victimPoisoned = true;
                    result.fault.victimLine = tc.line;
                }
            } else {
                // 1LM: a plain DRAM data UE at the scrubbed frame.
                result.fault.dramUncorrectable += 1;
                result.fault.victimPoisoned = true;
                result.fault.victimLine = sc.frame;
            }
        } else if (sc.correctableError) {
            ctr_->correctableErrors += 1;
            ctr_->scrubCorrected += 1;
            result.fault.correctable += 1;
            // Scrub in place: write the corrected line back.
            dram_.write(1);
            ctr_->dramWrite += 1;
            if (sc.retire && mode_ == MemoryMode::TwoLm) {
                TagCorruption tc = cache_->retireFrame(sc.frame);
                if (tc.dropped && tc.wasDirty) {
                    // No write lost: the repeat-CE data is still
                    // correctable, so the dirty line goes home to
                    // NVRAM before the frame is mapped out.
                    noteMediaFault(nvram_.write(tc.line, req.thread),
                                   result, /*demand_line=*/false,
                                   tc.line);
                    ctr_->nvramWrite += 1;
                }
            }
        }
        if (sc.retire) {
            ctr_->linesRetired += 1;
            result.fault.linesRetired += 1;
            result.fault.retiredLine = sc.frame;
        }
    }

    if (triggers > 0) {
        ctr_->targetedRefreshes += triggers;
        result.fault.targetedRefreshes += triggers;
        double t = static_cast<double>(triggers) *
                   maint_.config().rowhammer.blastRadius *
                   maint_.config().rowhammer.refreshLatency;
        result.latency += t;
        if (req.traced)
            result.breakdown.add(AccessCause::TargetedRefresh,
                                 MemPool::Dram, t);
    }
}

void
ChannelController::drainBuffers()
{
    nvram_.flushWpq();
}

ChannelEpoch
ChannelController::drainEpoch()
{
    ChannelEpoch e;
    e.dram = dram_.drainEpoch();
    e.nvram = nvram_.drainEpoch();
    e.misses = epochMisses_;
    epochMisses_ = 0;
    if (maint_.enabled())
        e.maintTime = maint_.drainTargetedTime();
    return e;
}

bool
ChannelController::willAccept(TransactionKind kind) const
{
    return !txq_ || txq_->willAccept(kind);
}

void
ChannelController::enqueue(const Transaction &tx)
{
    if (!txq_)
        fatal("ChannelController::enqueue without a queued controller "
              "(scheduler 'analytic'); configure controller.scheduler");
    txq_->enqueue(tx);
}

void
ChannelController::tick(double until)
{
    if (txq_)
        txq_->tick(until);
}

void
ChannelController::setCompletionHandler(CompletionHandler handler)
{
    if (txq_)
        txq_->setCompletionHandler(std::move(handler));
}

void
ChannelController::drainQueues()
{
    if (!txq_)
        return;
    txq_->drainAll();
    TxQueueStats s = txq_->takeStats();
    if (s.readQueueWait > 0) {
        counters_.queueWaitNs += static_cast<std::uint64_t>(
            std::llround(s.readQueueWait * 1e9));
    }
    counters_.bankConflicts += s.bankConflicts;
    counters_.rowBufferHits += s.rowBufferHits;
    counters_.writeDrains += s.writeDrains;
    txq_->resetEpoch();
}

double
ChannelController::epochTime(const ChannelEpoch &epoch) const
{
    // Shared DDR4/DDR-T bus: every DRAM CAS and every NVRAM bus
    // transaction crosses it.
    double bus_bytes = static_cast<double>(epoch.dram.bytes()) +
                       static_cast<double>(epoch.nvram.demandBytes());
    double t_bus = bus_bytes / params_.busBandwidth;

    // DRAM device throughput. Maintenance steals bank time twice over:
    // refresh blocks a duty fraction tRFC/tREFI of every second, and
    // targeted-refresh mitigations block the banks outright, so the
    // demand traffic must fit in what is left.
    double t_dram = static_cast<double>(epoch.dram.bytes()) /
                    params_.dram.bandwidth;
    if (maint_.enabled()) {
        double duty = maint_.refreshDuty();
        t_dram = (t_dram + epoch.maintTime) / (1.0 - duty);
    }

    // NVRAM media: reads and writes share the media controller, so
    // their service times add. Write bandwidth degrades with stream
    // count (XPBuffer contention) and with thermal throttling (factor
    // is exactly 1.0 when the throttle is disabled or released).
    double write_bw = params_.nvram.writeBandwidth *
                      nvram_.writeEfficiency(epoch.nvram.writerStreams) *
                      throttle_.factor();
    double t_media =
        static_cast<double>(epoch.nvram.mediaReadBytes()) /
            params_.nvram.readBandwidth +
        static_cast<double>(epoch.nvram.mediaWriteBytes()) / write_bw;

    // 2LM miss handler occupancy: a bounded number of outstanding
    // misses, each holding an entry for the serial tag-check + fetch.
    double t_mshr = 0;
    if (params_.missHandlerEntries > 0) {
        t_mshr = static_cast<double>(epoch.misses) *
                 cache_->missServiceTime(lat_) /
                 static_cast<double>(params_.missHandlerEntries);
    }

    return std::max({t_bus, t_dram, t_media, t_mshr});
}

void
ChannelController::noteMaintenanceEpoch(const ChannelEpoch &epoch,
                                        double dt)
{
    if (!maint_.enabled())
        return;
    std::uint64_t slots = maint_.closeEpoch(dt);
    // Epoch-barrier bookkeeping: always on the merging thread, so it
    // writes the channel's real block, never a shard delta.
    counters_.refreshSlots += slots;
    double stall = epoch.maintTime + maint_.drainScrubTime() +
                   static_cast<double>(slots) *
                       maint_.config().refresh.trfc;
    if (stall > 0) {
        counters_.maintenanceStallNs +=
            static_cast<std::uint64_t>(std::llround(stall * 1e9));
    }
}

ThrottleState::Transition
ChannelController::noteEpochDuration(const ChannelEpoch &epoch, double dt)
{
    if (!params_.fault.throttle.enabled() || dt <= 0)
        return ThrottleState::Transition::None;
    double rate =
        static_cast<double>(epoch.nvram.mediaWriteBytes()) / dt;
    ThrottleState::Transition tr = throttle_.observe(rate);
    if (throttle_.engaged())
        counters_.throttledEpochs += 1;
    return tr;
}

void
ChannelController::regStats(obs::Group &g)
{
    obs::Group &ctr = g.child("counters");
    counters_.forEachField(
        [&](const char *name, const char *desc, std::uint64_t &v) {
            ctr.formula(name, desc,
                        [&v] { return static_cast<double>(v); });
        });
    g.formula("amplification", "device accesses per demand request",
              [this] { return counters_.amplification(); });

    obs::Group &cache = g.child("cache");
    cache.formula("num_sets", "DRAM cache sets on this channel",
                  [this] {
                      return static_cast<double>(cache_->numSets());
                  });
    cache.formula("ways", "DRAM cache associativity",
                  [this] { return static_cast<double>(cache_->ways()); });

    obs::Group &dram = g.child("dram");
    dram.formula("cas_reads", "total 64 B DRAM read transactions",
                 [this] {
                     return static_cast<double>(dram_.total().casReads);
                 });
    dram.formula("cas_writes", "total 64 B DRAM write transactions",
                 [this] {
                     return static_cast<double>(dram_.total().casWrites);
                 });

    obs::Group &nvram = g.child("nvram");
    nvram.formula("demand_reads", "total 64 B NVRAM bus reads", [this] {
        return static_cast<double>(nvram_.total().demandReads);
    });
    nvram.formula("demand_writes", "total 64 B NVRAM bus writes",
                  [this] {
                      return static_cast<double>(
                          nvram_.total().demandWrites);
                  });
    nvram.formula("media_read_blocks", "total 256 B media reads",
                  [this] {
                      return static_cast<double>(
                          nvram_.total().mediaReadBlocks);
                  });
    nvram.formula("media_write_blocks", "total 256 B media writes",
                  [this] {
                      return static_cast<double>(
                          nvram_.total().mediaWriteBlocks);
                  });
    nvram.formula("read_amplification",
                  "media bytes read per demand byte read",
                  [this] { return nvram_.readAmplification(); });
    nvram.formula("write_amplification",
                  "media bytes written per demand byte written",
                  [this] { return nvram_.writeAmplification(); });

    if (maint_.enabled()) {
        obs::Group &maint = g.child("maintenance");
        maint.formula("refresh_duty",
                      "fraction of bank time lost to tREFI/tRFC refresh",
                      [this] { return maint_.refreshDuty(); });
        maint.formula("retired_frames",
                      "DRAM frames mapped out by the retirement ladder",
                      [this] {
                          return static_cast<double>(
                              maint_.retiredFrames());
                      });
        maint.formula("tracked_rows",
                      "rows currently in the RowHammer tracker",
                      [this] {
                          return static_cast<double>(
                              maint_.trackedRows());
                      });
    }

    if (txq_) {
        obs::Group &queue = g.child("queue");
        queue.formula("read_depth", "read-queue occupancy", [this] {
            return static_cast<double>(txq_->readDepth());
        });
        queue.formula("write_depth", "WPQ occupancy", [this] {
            return static_cast<double>(txq_->writeDepth());
        });
        queue.formula("draining",
                      "1 while a WPQ drain burst is active", [this] {
                          return txq_->draining() ? 1.0 : 0.0;
                      });
    }

    obs::Group &throttle = g.child("throttle");
    throttle.formula("engaged", "1 while the thermal throttle is engaged",
                     [this] { return throttle_.engaged() ? 1.0 : 0.0; });
    throttle.formula("factor",
                     "current NVRAM write-bandwidth multiplier",
                     [this] { return throttle_.factor(); });
}

void
ChannelController::reset()
{
    cache_->invalidateAll();
    counters_ = PerfCounters{};
    epochMisses_ = 0;
    // Re-seed the fault stream and cool the DIMM so reruns reproduce.
    faultPlan_ = FaultPlan(params_.fault, params_.index);
    throttle_.reset();
    maint_.reset();
    if (txq_) {
        txq_->drainAll();
        txq_->takeStats();
        txq_->resetEpoch();
    }
    drainEpoch();
    drainBuffers();
    drainEpoch();
}

} // namespace nvsim
