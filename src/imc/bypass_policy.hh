/**
 * @file
 * Banshee/TicToc-style bypass-and-selective-insert policy
 * ("bypass_selective_insert").
 *
 * Banshee (Yu et al., MICRO 2017) inserts a page into the DRAM cache
 * only when its access frequency beats the would-be victim's; TicToc
 * balances hit bandwidth against miss-handler bandwidth by inserting
 * selectively instead of on every miss. Both attack the same paper
 * observation: insert-on-every-miss turns a streaming miss into three
 * device accesses (fetch + insert + later eviction writeback) when one
 * would do.
 *
 * This policy keeps the tags-in-ECC probe and the DDO machinery of the
 * stock controller (so its hits and DDO elisions cost exactly what
 * Table I says) but gates the miss handler on a per-line miss
 * frequency counter: a line is inserted only once it has missed
 * insertThreshold times. Colder misses bypass — reads are served
 * straight from NVRAM, writes go straight to NVRAM — trading hit rate
 * for a large cut in device-access amplification on low-locality
 * workloads, which is precisely the trade the paper's Figure 4
 * microbenchmarks punish the stock policy for.
 */

#ifndef NVSIM_IMC_BYPASS_POLICY_HH
#define NVSIM_IMC_BYPASS_POLICY_HH

#include <cstdint>
#include <vector>

#include "imc/dram_cache.hh"

namespace nvsim
{

/** Frequency-gated selective insertion on top of the stock machinery. */
class BypassSelectiveInsertPolicy : public DirectMappedTagEccPolicy
{
  public:
    BypassSelectiveInsertPolicy(const DramCacheParams &params,
                                const CachePolicyConfig &config);

    const char *kindName() const override
    {
        return "bypass_selective_insert";
    }

    void invalidateAll() override;

    unsigned insertThreshold() const { return threshold_; }

    /** Current miss count the frequency table holds for @p addr. */
    unsigned missCount(Addr addr) const;

  protected:
    /**
     * Count the miss against the line's frequency entry; insert only
     * once the line has earned threshold_ misses. Entries alias
     * direct-mapped by line index, so cold lines decay naturally under
     * pressure — the same bounded-state trick the DDO tracker uses.
     */
    bool shouldInsert(Addr addr, MemRequestKind kind) override;

  private:
    struct Entry
    {
        Addr line = 0;       //!< line address + 1; 0 = empty
        std::uint32_t count = 0;
    };

    std::uint32_t slot(Addr line) const;

    unsigned threshold_;
    std::uint32_t mask_;          //!< table size - 1 (power of two)
    std::vector<Entry> table_;
};

} // namespace nvsim

#endif // NVSIM_IMC_BYPASS_POLICY_HH
