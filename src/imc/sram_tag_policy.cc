#include "imc/sram_tag_policy.hh"

#include "obs/heatmap.hh"

namespace nvsim
{

SramTagSetAssocPolicy::SramTagSetAssocPolicy(
    const DramCacheParams &params, const CachePolicyConfig &config)
    : DirectMappedTagEccPolicy(params), lru_(config.replacement == "lru")
{
}

DirectMappedTagEccPolicy::WayIdx
SramTagSetAssocPolicy::fill(Addr addr, std::uint64_t set,
                            std::uint64_t tag, CacheResult &result)
{
    const WayIdx victim = victimWay(set);
    if (wayValid(victim)) {
        if (profiler_)
            profiler_->noteEviction(set);
        Addr victim_addr = addrOf(set, wayTag_[victim]);
        if (wayDirty_[victim]) {
            result.actions.nvramWrites += 1;
            result.victim = victim_addr;
            result.wroteBack = true;
            result.outcome = CacheOutcome::MissDirty;
        } else {
            result.outcome = CacheOutcome::MissClean;
        }
        ddo_->noteEvict(victim_addr);
    } else {
        result.outcome = CacheOutcome::MissClean;
    }

    result.actions.nvramReads += 1;
    result.fill = lineBase(addr);
    result.filled = true;

    wayDirty_[victim] = 0;
    wayTag_[victim] = tag;  // a real tag: the way is now valid
    // Both LRU and FIFO stamp at insertion; they differ on hits.
    touchLru(victim);
    ddo_->noteInsert(lineBase(addr));
    return victim;
}

CacheResult
SramTagSetAssocPolicy::read(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    CacheResult result;
    result.tagsInSram = true;

    if (WayIdx way = find(set, tag); way != kNoWay) {
        // The SRAM array answered the tag check; the only device
        // traffic is the data read itself.
        result.outcome = CacheOutcome::Hit;
        result.actions.dramReads = 1;
        if (lru_)
            touchLru(way);
        if (profiler_)
            profiler_->noteHit(set);
        return result;
    }
    if (profiler_)
        profiler_->noteMiss(set);
    if (setRetired(set)) {
        // Every way was mapped out by the scrub retirement ladder:
        // serve straight from NVRAM without filling.
        bypassRead(addr, result);
        return result;
    }
    fill(addr, set, tag, result);
    result.actions.dramWrites += 1;  // install the fetched line
    return result;
}

CacheResult
SramTagSetAssocPolicy::write(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    CacheResult result;
    result.tagsInSram = true;

    if (WayIdx way = find(set, tag); way != kNoWay) {
        result.outcome = CacheOutcome::Hit;
        result.actions.dramWrites = 1;
        wayDirty_[way] = 1;
        if (lru_)
            touchLru(way);
        if (profiler_)
            profiler_->noteHit(set);
        return result;
    }
    if (profiler_)
        profiler_->noteMiss(set);
    if (!params_.insertOnWriteMiss) {
        // Write-no-allocate ablation: straight to NVRAM, no fill.
        bypassWrite(addr, result);
        return result;
    }
    if (setRetired(set)) {
        // Fully-retired set: the store lands in NVRAM, no fill.
        bypassWrite(addr, result);
        result.bypassed = true;
        return result;
    }
    // Insert on miss, but — unlike tags-in-ECC — the demand data is
    // merged into the fill: one NVRAM fetch, one DRAM write total.
    WayIdx way = fill(addr, set, tag, result);
    result.actions.dramWrites += 1;
    wayDirty_[way] = 1;
    return result;
}

TagCorruption
SramTagSetAssocPolicy::corruptTag(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    TagCorruption tc;

    WayIdx way = find(set, tag);
    if (way == kNoWay)
        return tc;  // tags are safe in SRAM; nothing resident was lost

    tc.dropped = true;
    tc.wasDirty = wayDirty_[way] != 0;
    tc.line = addrOf(set, wayTag_[way]);
    ddo_->noteEvict(tc.line);
    clearWay(way);
    return tc;
}

double
SramTagSetAssocPolicy::demandLatency(MemRequestKind kind,
                                     const CacheResult &cr,
                                     const DeviceLatencies &lat) const
{
    if (kind == MemRequestKind::LlcRead) {
        // No tag-probe device read ever serializes the demand: hits
        // are one DRAM round trip, misses one NVRAM fetch.
        return cr.outcome == CacheOutcome::Hit ? lat.dram : lat.nvramRead;
    }
    // Posted writes: the accept path is the device the data lands on.
    return (!cr.filled && cr.wroteBack) ? lat.nvramWrite : lat.dram;
}

double
SramTagSetAssocPolicy::missServiceTime(const DeviceLatencies &lat) const
{
    // The miss-handler entry holds only the NVRAM fetch; the SRAM tag
    // lookup happened before the entry was allocated.
    return lat.nvramRead;
}

CausalBreakdown
SramTagSetAssocPolicy::breakdown(MemRequestKind kind,
                                 const CacheResult &cr,
                                 const DeviceLatencies &lat) const
{
    CausalBreakdown b;
    if (cr.outcome == CacheOutcome::Hit) {
        if (kind == MemRequestKind::LlcRead)
            b.add(AccessCause::DataRead, MemPool::Dram, lat.dram);
        else
            b.add(AccessCause::DataWrite, MemPool::Dram, lat.dram);
        return b;
    }
    if (cr.filled) {
        if (cr.wroteBack)
            b.add(AccessCause::DirtyWriteback, MemPool::Nvram,
                  lat.nvramWrite);
        b.add(AccessCause::CacheFillRead, MemPool::Nvram, lat.nvramRead);
        if (kind == MemRequestKind::LlcRead)
            b.add(AccessCause::CacheInsertWrite, MemPool::Dram, lat.dram);
        else
            // The fill and the demand data land in one merged write.
            b.add(AccessCause::DataWrite, MemPool::Dram, lat.dram);
    } else if (kind == MemRequestKind::LlcWrite) {
        b.add(AccessCause::DataWrite, MemPool::Nvram, lat.nvramWrite);
    }
    return b;
}

} // namespace nvsim
