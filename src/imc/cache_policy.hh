/**
 * @file
 * Pluggable DRAM-cache policy framework.
 *
 * The paper's core claim is not that DRAM caches are bad, but that the
 * *specific* 2LM policy choices — direct mapped, tags in the DRAM ECC
 * bits, insert on every miss, DDO — destroy NVRAM bandwidth. To explore
 * the counterfactual designs the paper argues against (Banshee-style
 * selective insertion, SRAM-tag set-associative organizations), the
 * miss-handler/tag/insertion logic sits behind this interface.
 *
 * A policy decomposes one LLC request exactly as Figure 3 does:
 * lookup -> {hit?, victim dirty?, device accesses}. The CacheResult it
 * returns carries the outcome (tag statistics), the DeviceActions (the
 * Table I row for that request), and the NVRAM lines the miss handler
 * touched, so the ChannelController can apply the traffic to the
 * devices without knowing which policy produced it.
 *
 * Policies are constructed by name through CachePolicyRegistry, so
 * SystemConfig, benches and tests select one declaratively
 * ("direct_mapped_tag_ecc", "sram_tag_set_assoc",
 * "bypass_selective_insert").
 */

#ifndef NVSIM_IMC_CACHE_POLICY_HH
#define NVSIM_IMC_CACHE_POLICY_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "imc/ddo.hh"
#include "mem/request.hh"

namespace nvsim
{

namespace obs
{
class SetProfiler;
} // namespace obs

/** DRAM cache geometry/behavior shared by every policy (one channel). */
struct DramCacheParams
{
    Bytes capacity = 32 * kGiB;  //!< DRAM DIMM capacity on this channel
    DdoConfig ddo;
    /**
     * Associativity. The real hardware is direct mapped (1); higher
     * values exist for the "future hardware" ablations and use LRU
     * replacement within the set (the SRAM-tag policy also supports
     * FIFO, see CachePolicyConfig::replacement).
     */
    unsigned ways = 1;
    /**
     * Insert-on-miss for LLC *writes*. The real hardware always
     * inserts ("our best guess is that the memory controller always
     * inserts on a miss"), which costs an NVRAM read plus two DRAM
     * writes per missing store. Setting this false models the
     * write-no-allocate alternative the paper's critique implies:
     * missing LLC writes go straight to NVRAM (tag check + NVRAM
     * write, amplification 2) and leave the cache untouched.
     */
    bool insertOnWriteMiss = true;
};

/**
 * Policy selection plus the knobs that are meaningful only to specific
 * policies. Carried by SystemConfig/ChannelParams; policies ignore the
 * knobs they do not use.
 */
struct CachePolicyConfig
{
    /** Registry key; see CachePolicyRegistry::names(). */
    std::string kind = "direct_mapped_tag_ecc";
    /** sram_tag_set_assoc: within-set replacement, "lru" or "fifo". */
    std::string replacement = "lru";
    /**
     * bypass_selective_insert: number of misses a line must accumulate
     * before the miss handler inserts it (1 = insert on every miss,
     * i.e. the stock behavior).
     */
    unsigned insertThreshold = 2;
    /** bypass_selective_insert: miss-frequency table entries. */
    std::uint32_t counterEntries = 1u << 16;

    /** Reject unknown kinds/replacements and nonsensical knobs. */
    void validate() const;
};

/**
 * Result of one cache access: the outcome (tag statistics), the device
 * actions (Table I row counts), and the victim address when a dirty
 * line was written back to NVRAM.
 */
struct CacheResult
{
    CacheOutcome outcome = CacheOutcome::Uncached;
    DeviceActions actions;
    Addr victim = 0;          //!< valid iff wroteBack
    bool wroteBack = false;   //!< dirty victim (or bypassed demand
                              //!< store) written to NVRAM
    Addr fill = 0;            //!< NVRAM line fetched on a miss
    bool filled = false;      //!< miss handler ran an NVRAM fetch
    /** The miss was served from NVRAM without inserting the line
     *  (bypass policies); filled is still set for the demand fetch. */
    bool bypassed = false;
    /** The tag lookup was answered by controller SRAM, so no DRAM read
     *  was spent on it (sram_tag_set_assoc). */
    bool tagsInSram = false;
};

/**
 * What a tag/data corruption dropped from the cache. When the lost
 * line was dirty its latest data existed only in DRAM; the home NVRAM
 * line is now stale and must be treated as poisoned.
 */
struct TagCorruption
{
    bool dropped = false;   //!< a valid line was invalidated
    bool wasDirty = false;  //!< the dropped line was dirty
    Addr line = 0;          //!< address of the dropped line
};

/** Device latencies a policy needs to attribute time per access. */
struct DeviceLatencies
{
    double dram = 0;        //!< DRAM load-to-use seconds
    double nvramRead = 0;   //!< NVRAM demand read load-to-use seconds
    double nvramWrite = 0;  //!< NVRAM write accept seconds
};

/**
 * Abstract DRAM-cache policy: everything the ChannelController needs
 * from "the cache" for one 64 B LLC request. Implementations are
 * single-channel and single-threaded, like the controller that owns
 * them.
 */
class CachePolicy
{
  public:
    virtual ~CachePolicy() = default;

    /** Registry key this policy was constructed under. */
    virtual const char *kindName() const = 0;

    /** Handle an LLC read of the line at @p addr. */
    virtual CacheResult read(Addr addr) = 0;

    /** Handle an LLC write (writeback / nontemporal store) to @p addr. */
    virtual CacheResult write(Addr addr) = 0;

    /**
     * An uncorrectable ECC fault corrupted the DRAM location probed
     * for @p addr. What that means depends on where the policy keeps
     * its tags: with tags in the ECC bits the controller cannot trust
     * the tag and invalidates the way; with SRAM tags only the data
     * line is lost. Either way the dropped line is reported so the
     * caller can poison stale NVRAM copies of dirty data.
     */
    virtual TagCorruption corruptTag(Addr addr) = 0;

    /**
     * The patrol-scrub retirement ladder mapped the cache frame that
     * channel-local byte address @p frame falls in out of service: the
     * frame's resident line (if any) is dropped and reported so the
     * caller can write it back or poison it, and the frame never holds
     * a line again until invalidateAll() (a reboot remapping spare
     * rows). Policies without per-frame device state may ignore
     * retirement; the default is a no-op.
     */
    virtual TagCorruption
    retireFrame(Addr frame)
    {
        (void)frame;
        return {};
    }

    /** Ways currently retired (0 for policies without frame state). */
    virtual std::uint64_t retiredWays() const { return 0; }

    /** Is the line currently resident? (introspection, no side effects) */
    virtual bool resident(Addr addr) const = 0;

    /** Is the resident copy of the line dirty? */
    virtual bool residentDirty(Addr addr) const = 0;

    /**
     * Drop every line, writing back nothing (used to reset state
     * between benchmark phases, like a reboot would).
     */
    virtual void invalidateAll() = 0;

    virtual std::uint64_t numSets() const = 0;
    virtual unsigned ways() const = 0;
    virtual const DramCacheParams &params() const = 0;

    /**
     * Attach (or detach, with nullptr) a set-conflict profiler. Not
     * owned; typically the Observer's profiler, shared across channels
     * of identical geometry.
     */
    virtual void setProfiler(obs::SetProfiler *profiler) = 0;
    virtual obs::SetProfiler *profiler() = 0;

    /**
     * Demand latency of one request under this policy: which device
     * round trips are serial on the load-to-use (or write-accept)
     * path. The default models the tags-in-ECC flow: reads pay the
     * DRAM probe, plus the NVRAM fetch on a miss; writes are posted
     * behind the tag-check read (DDO writes behind the NVRAM accept).
     */
    virtual double demandLatency(MemRequestKind kind,
                                 const CacheResult &cr,
                                 const DeviceLatencies &lat) const;

    /**
     * Miss-handler entry occupancy per miss (seconds): the serial
     * device work one outstanding miss holds its entry for. Default:
     * tag-check DRAM read followed by the NVRAM line fetch.
     */
    virtual double missServiceTime(const DeviceLatencies &lat) const;

    /**
     * Decompose @p cr into ordered per-device blame spans — one
     * CauseSpan per device access, so span count always equals
     * cr.actions.total(). The default implements the tags-in-ECC
     * Figure 3 flow; policies with different flows override.
     */
    virtual CausalBreakdown breakdown(MemRequestKind kind,
                                      const CacheResult &cr,
                                      const DeviceLatencies &lat) const;
};

/**
 * Tags-in-ECC Figure 3 blame decomposition (the default policy flow),
 * shared by CachePolicy::breakdown and the directed-request tools that
 * drive caches without a channel (bench_table1_amplification).
 */
CausalBreakdown tagEccBreakdown(MemRequestKind kind, const CacheResult &cr,
                                const DeviceLatencies &lat);

/**
 * String-keyed factory registry. Benches, tests and SystemConfig
 * construct policies by name so a sweep can iterate names() without
 * compiling against every implementation.
 */
class CachePolicyRegistry
{
  public:
    using Factory = std::unique_ptr<CachePolicy> (*)(
        const DramCacheParams &, const CachePolicyConfig &);

    /** The process-wide registry (built-ins pre-registered). */
    static CachePolicyRegistry &instance();

    /** Register @p kind; re-registration of a known kind is fatal. */
    void add(const std::string &kind, const std::string &description,
             Factory factory);

    bool known(const std::string &kind) const;

    /** Registered kinds, in registration order. */
    std::vector<std::string> names() const;

    /** One-line description of @p kind (empty if unknown). */
    std::string description(const std::string &kind) const;

    /**
     * Construct @p config.kind. Unknown kinds are fatal, listing the
     * registered names — a typo'd policy must never silently fall back
     * to the default.
     */
    std::unique_ptr<CachePolicy> create(
        const DramCacheParams &params,
        const CachePolicyConfig &config) const;

  private:
    struct Entry
    {
        std::string kind;
        std::string description;
        Factory factory;
    };
    std::vector<Entry> entries_;

    const Entry *find(const std::string &kind) const;
};

/** Shorthand for CachePolicyRegistry::instance().create(...). */
std::unique_ptr<CachePolicy> makeCachePolicy(
    const DramCacheParams &params, const CachePolicyConfig &config);

} // namespace nvsim

#endif // NVSIM_IMC_CACHE_POLICY_HH
