#include "imc/ddo.hh"

#include <bit>

#include "core/logging.hh"
#include "core/rng.hh"

namespace nvsim
{

const char *
ddoModeName(DdoMode mode)
{
    switch (mode) {
      case DdoMode::None:
        return "none";
      case DdoMode::RecentTracker:
        return "recent_tracker";
      case DdoMode::Oracle:
        return "oracle";
    }
    return "unknown";
}

std::unique_ptr<DdoPolicy>
DdoPolicy::create(const DdoConfig &config)
{
    switch (config.mode) {
      case DdoMode::None:
        return std::make_unique<NoneDdo>();
      case DdoMode::RecentTracker:
        return std::make_unique<RecentTrackerDdo>(config.trackerEntries);
      case DdoMode::Oracle:
        return std::make_unique<OracleDdo>();
    }
    panic("unknown DDO mode");
}

RecentTrackerDdo::RecentTrackerDdo(std::uint32_t entries)
{
    if (entries == 0)
        fatal("RecentTracker DDO needs at least one entry");
    std::uint32_t rounded = std::bit_ceil(entries);
    mask_ = rounded - 1;
    table_.assign(rounded, 0);
}

std::uint32_t
RecentTrackerDdo::slot(Addr line) const
{
    std::uint64_t x = lineIndex(line);
    std::uint64_t h = splitmix64(x);
    return static_cast<std::uint32_t>(h) & mask_;
}

bool
RecentTrackerDdo::check(Addr line, bool resident)
{
    // The tracker is kept consistent by eviction notifications, so a
    // matching entry implies residency; `resident` is asserted as a
    // defensive cross-check of that invariant.
    bool match = table_[slot(line)] == line + 1;
    if (match)
        nvsim_assert(resident);
    return match;
}

void
RecentTrackerDdo::noteInsert(Addr line)
{
    table_[slot(line)] = line + 1;
}

void
RecentTrackerDdo::noteEvict(Addr line)
{
    std::uint32_t s = slot(line);
    if (table_[s] == line + 1)
        table_[s] = 0;
}

} // namespace nvsim
