/**
 * @file
 * The 2LM direct-mapped DRAM cache, as reverse engineered in Section IV
 * of the paper (Table I and Figure 3), expressed as the default
 * CachePolicy ("direct_mapped_tag_ecc").
 *
 * Properties modelled:
 *  - direct mapped, 64 B lines, insert on every miss (read or write);
 *  - tags stored in the DRAM ECC bits, so one DRAM read returns data and
 *    tag together and one DRAM write updates both;
 *  - LLC reads: tag-check read; on miss the miss handler fetches the
 *    line from NVRAM, inserts it with a DRAM write, and writes the dirty
 *    victim back to NVRAM if needed;
 *  - LLC writes: the Dirty Data Optimization may elide the tag check;
 *    otherwise a tag-check read is made, and on a miss the *miss handler
 *    runs first* (insert on miss) before the data itself is written --
 *    which is why a missing LLC write costs two DRAM writes;
 *  - per-request DeviceActions reproduce Table I exactly:
 *    amplifications 1 / 3 / 4 / 2 / 4 / 5 / 1.
 *
 * The insertion decision is a protected hook (shouldInsert) so the
 * bypass policy (imc/bypass_policy.hh) can gate it on miss frequency
 * while inheriting the tags-in-ECC probe/DDO machinery unchanged.
 */

#ifndef NVSIM_IMC_DRAM_CACHE_HH
#define NVSIM_IMC_DRAM_CACHE_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "imc/cache_policy.hh"
#include "imc/ddo.hh"
#include "mem/request.hh"

namespace nvsim
{

/** The reverse-engineered tags-in-ECC 2LM controller policy. */
class DirectMappedTagEccPolicy : public CachePolicy
{
  public:
    explicit DirectMappedTagEccPolicy(const DramCacheParams &params);

    const char *kindName() const override
    {
        return "direct_mapped_tag_ecc";
    }

    /** Handle an LLC read of the line at @p addr. */
    CacheResult read(Addr addr) override;

    /** Handle an LLC write (writeback / nontemporal store) to @p addr. */
    CacheResult write(Addr addr) override;

    /** Backward-compatible alias for the namespace-scope type. */
    using TagCorruption = nvsim::TagCorruption;

    /**
     * An uncorrectable ECC fault corrupted the in-ECC tag bits of the
     * DRAM location probed for @p addr: the controller cannot trust
     * the tag and invalidates the way (the one holding @p addr if
     * resident, else the way the probe would have replaced). The
     * caller re-runs the access, which now misses and refetches from
     * NVRAM — the extra device accesses unique to tags-in-ECC.
     */
    TagCorruption corruptTag(Addr addr) override;

    /**
     * Patrol-scrub retirement: the way backing @p frame is mapped out
     * (valid line dropped and reported, frame marked unusable). A set
     * whose every way is retired serves all traffic as NVRAM bypasses.
     */
    TagCorruption retireFrame(Addr frame) override;

    std::uint64_t retiredWays() const override { return retiredWays_; }

    /** Is the line currently resident? (introspection, no side effects) */
    bool resident(Addr addr) const override;

    /** Is the resident copy of the line dirty? */
    bool residentDirty(Addr addr) const override;

    /**
     * Drop every line, writing back nothing (used to reset state
     * between benchmark phases, like a reboot would).
     */
    void invalidateAll() override;

    std::uint64_t numSets() const override { return numSets_; }
    unsigned ways() const override { return ways_; }
    const DramCacheParams &params() const override { return params_; }
    DdoPolicy &ddo() { return *ddo_; }

    /**
     * Attach (or detach, with nullptr) a set-conflict profiler. Not
     * owned; typically the Observer's profiler, shared across channels
     * of identical geometry.
     */
    void setProfiler(obs::SetProfiler *profiler) override
    {
        profiler_ = profiler;
    }
    obs::SetProfiler *profiler() override { return profiler_; }

  protected:
    /**
     * Handle into the structure-of-arrays line-state store: the flat
     * index set * ways + way, or kNoWay for "not found". Line state
     * is kept as parallel arrays (tag, LRU stamp, dirty, retired)
     * rather than an array of per-way structs: the hot probe loop
     * reads only the tag words (an empty way holds kInvalidTag, so
     * there is no separate valid byte to fetch), packing eight
     * candidate tags per hardware cache line instead of walking
     * 24-byte padded structs — and the dirty/retired sideband stays
     * out of the probe path entirely.
     */
    using WayIdx = std::uint64_t;
    static constexpr WayIdx kNoWay = ~static_cast<WayIdx>(0);

    /**
     * Tag value marking an empty way. Real tags are lineIndex /
     * numSets for in-range physical addresses, orders of magnitude
     * below 2^64, so the all-ones word is never a live tag.
     */
    static constexpr std::uint64_t kInvalidTag =
        ~static_cast<std::uint64_t>(0);

    bool wayValid(WayIdx w) const { return wayTag_[w] != kInvalidTag; }

    /**
     * Insertion gate consulted on every miss. The stock controller
     * always inserts ("our best guess is that the memory controller
     * always inserts on a miss"); selective-insert policies override.
     * Called exactly once per missing request, so overrides may update
     * miss-frequency state.
     */
    virtual bool shouldInsert(Addr addr, MemRequestKind kind);

    /**
     * Serve a missing read from NVRAM without inserting (bypass): one
     * NVRAM demand read, cache untouched.
     */
    void bypassRead(Addr addr, CacheResult &result);

    /**
     * Send a missing write straight to NVRAM without inserting: the
     * demand data rides in the writeback fields (write-no-allocate and
     * the bypass policy share this encoding).
     */
    void bypassWrite(Addr addr, CacheResult &result);

    std::uint64_t setOf(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Addr addrOf(std::uint64_t set, std::uint64_t tag) const;

    /**
     * Decompose a line index into (set, tag) with at most one divide.
     * The common geometries (power-of-two set counts) take the
     * shift/mask path; every access pays this split, so it must not
     * cost two 64-bit divisions as separate setOf()/tagOf() calls do.
     */
    void
    splitAddr(Addr addr, std::uint64_t &set, std::uint64_t &tag) const
    {
        std::uint64_t idx = lineIndex(addr);
        if (setShift_ >= 0) {
            set = idx & setMask_;
            tag = idx >> setShift_;
        } else {
            tag = idx / numSets_;
            set = idx - tag * numSets_;
        }
    }

    /** Find the way holding @p tag in @p set, or kNoWay. */
    WayIdx find(std::uint64_t set, std::uint64_t tag) const;

    /**
     * LRU victim among @p set's serviceable ways. Retired ways are
     * skipped; callers must check setRetired() first (the precondition
     * is that at least one way is serviceable).
     */
    WayIdx victimWay(std::uint64_t set) const;

    /** Every way of @p set is retired (forced-bypass set). */
    bool
    setRetired(std::uint64_t set) const
    {
        if (retiredWays_ == 0)
            return false;  // keep the maintenance-off path branch-cheap
        const std::uint8_t *base = &wayRetired_[set * ways_];
        for (unsigned w = 0; w < ways_; ++w) {
            if (!base[w])
                return false;
        }
        return true;
    }

    /**
     * Stamp @p w most-recently-used. A direct-mapped cache has no
     * replacement choice, so the stamp (and its extra cache-line
     * store on every hit) is skipped entirely for ways == 1.
     */
    void
    touchLru(WayIdx w)
    {
        if (ways_ > 1)
            wayLru_[w] = ++lruClock_;
    }

    /** Reset one way's state to empty (all fields, retirement included). */
    void
    clearWay(WayIdx w)
    {
        wayTag_[w] = kInvalidTag;
        wayLru_[w] = 0;
        wayDirty_[w] = 0;
        wayRetired_[w] = 0;
    }

    /**
     * Run the Figure 3 miss handler: evict (writeback if dirty), fetch
     * the requested line from NVRAM and insert it clean. Updates
     * @p result's actions, outcome, victim and fill fields.
     */
    WayIdx missHandler(Addr addr, std::uint64_t set, std::uint64_t tag,
                       CacheResult &result);

    DramCacheParams params_;
    unsigned ways_;
    std::uint64_t numSets_;
    int setShift_ = -1;          //!< log2(numSets_) when a power of two
    std::uint64_t setMask_ = 0;  //!< numSets_ - 1 when a power of two
    // Structure-of-arrays line state, numSets_ * ways_ entries each;
    // see WayIdx for the layout rationale.
    std::vector<std::uint64_t> wayTag_;
    std::vector<std::uint32_t> wayLru_;
    std::vector<std::uint8_t> wayDirty_;
    std::vector<std::uint8_t> wayRetired_;
    std::uint64_t retiredWays_ = 0;
    std::uint32_t lruClock_ = 0;
    std::unique_ptr<DdoPolicy> ddo_;
    obs::SetProfiler *profiler_ = nullptr;  //!< optional, not owned
};

/**
 * Historical name: the model predates the policy framework, and the
 * directed tests/benches that drive the cache without a channel still
 * use it.
 */
using DramCache = DirectMappedTagEccPolicy;

} // namespace nvsim

#endif // NVSIM_IMC_DRAM_CACHE_HH
