#include "imc/scheduler.hh"

#include <algorithm>
#include <string>

#include "core/logging.hh"

namespace nvsim
{

const char *
transactionKindName(TransactionKind kind)
{
    switch (kind) {
      case TransactionKind::Read:
        return "read";
      case TransactionKind::Write:
        return "write";
    }
    return "?";
}

void
ControllerConfig::validate() const
{
    if (!ChannelSchedulerRegistry::instance().known(scheduler)) {
        std::string known_names;
        for (const std::string &n :
             ChannelSchedulerRegistry::instance().names()) {
            if (!known_names.empty())
                known_names += ", ";
            known_names += n;
        }
        fatal("unknown channel scheduler '%s' (registered: %s)",
              scheduler.c_str(), known_names.c_str());
    }
    if (!queued())
        return;
    if (readQueueEntries == 0 || writeQueueEntries == 0)
        fatal("controller queue entries must be nonzero");
    if (banks == 0)
        fatal("controller banks must be nonzero");
    if (rowBytes < kLineSize)
        fatal("controller rowBytes must be at least one line (%llu B)",
              static_cast<unsigned long long>(kLineSize));
    if (drainLowWatermark >= drainHighWatermark)
        fatal("controller drain watermarks must satisfy low < high "
              "(got low=%u high=%u)",
              drainLowWatermark, drainHighWatermark);
    if (drainHighWatermark > writeQueueEntries)
        fatal("controller drainHighWatermark (%u) exceeds WPQ entries "
              "(%u)",
              drainHighWatermark, writeQueueEntries);
    if (starvationCap == 0)
        fatal("controller starvationCap must be nonzero");
    if (bankConflictPenalty < 0)
        fatal("controller bankConflictPenalty must be nonnegative");
    if (offeredGBs < 0)
        fatal("controller offeredGBs must be nonnegative");
}

namespace
{

/**
 * Strict arrival order across both queues: the oldest transaction in
 * the channel issues next, reads and writes alike. The baseline that
 * makes the cost of not draining writes opportunistically visible.
 */
class FcfsScheduler : public ChannelScheduler
{
  public:
    const char *kindName() const override { return "fcfs"; }

    SchedulerPick
    pick(const std::deque<QueuedTx> &reads,
         const std::deque<QueuedTx> &writes, bool,
         const std::vector<BankState> &, const ControllerConfig &) override
    {
        if (reads.empty())
            return {true, 0};
        if (writes.empty())
            return {false, 0};
        return reads.front().seq < writes.front().seq
                   ? SchedulerPick{false, 0}
                   : SchedulerPick{true, 0};
    }
};

/**
 * Reads first; the WPQ only issues while a drain burst is active
 * (high/low watermark hysteresis, maintained by the queue engine) or
 * when no read is waiting. The Cascade Lake-style posted-write model.
 */
class ReadPriorityScheduler : public ChannelScheduler
{
  public:
    const char *kindName() const override { return "read_priority"; }

    SchedulerPick
    pick(const std::deque<QueuedTx> &reads,
         const std::deque<QueuedTx> &writes, bool draining,
         const std::vector<BankState> &, const ControllerConfig &) override
    {
        if (!writes.empty() && (draining || reads.empty()))
            return {true, 0};
        (void)reads;
        return {false, 0};
    }
};

/**
 * First-ready FCFS: choose the queue like read_priority, then within
 * the queue prefer the oldest transaction targeting an open row. A
 * request bypassed starvationCap times must issue next, so row-hit
 * streams cannot starve an unlucky bank forever.
 */
class FrfcfsScheduler : public ChannelScheduler
{
  public:
    const char *kindName() const override { return "frfcfs"; }

    SchedulerPick
    pick(const std::deque<QueuedTx> &reads,
         const std::deque<QueuedTx> &writes, bool draining,
         const std::vector<BankState> &banks,
         const ControllerConfig &cfg) override
    {
        const bool from_writes =
            !writes.empty() && (draining || reads.empty());
        const std::deque<QueuedTx> &q = from_writes ? writes : reads;
        if (q.front().bypassed >= cfg.starvationCap)
            return {from_writes, 0};
        for (std::size_t i = 0; i < q.size(); ++i) {
            const BankState &b = banks[q[i].bank];
            if (b.rowValid && b.openRow == q[i].row)
                return {from_writes, i};
        }
        return {from_writes, 0};
    }
};

std::unique_ptr<ChannelScheduler>
makeAnalytic(const ControllerConfig &)
{
    return nullptr;
}

std::unique_ptr<ChannelScheduler>
makeFcfs(const ControllerConfig &)
{
    return std::make_unique<FcfsScheduler>();
}

std::unique_ptr<ChannelScheduler>
makeReadPriority(const ControllerConfig &)
{
    return std::make_unique<ReadPriorityScheduler>();
}

std::unique_ptr<ChannelScheduler>
makeFrfcfs(const ControllerConfig &)
{
    return std::make_unique<FrfcfsScheduler>();
}

} // namespace

ChannelSchedulerRegistry &
ChannelSchedulerRegistry::instance()
{
    static ChannelSchedulerRegistry reg = [] {
        ChannelSchedulerRegistry r;
        r.add("analytic",
              "degenerate pass-through: no queues, the fixed-cost "
              "Table I model (byte-identical to pre-queue behavior)",
              makeAnalytic);
        r.add("fcfs",
              "strict arrival order across the read queue and WPQ",
              makeFcfs);
        r.add("read_priority",
              "reads first; WPQ drains in high/low watermark bursts",
              makeReadPriority);
        r.add("frfcfs",
              "first-ready FCFS: open-row hits first, with a "
              "starvation cap, over read-priority write drain",
              makeFrfcfs);
        return r;
    }();
    return reg;
}

void
ChannelSchedulerRegistry::add(const std::string &kind,
                              const std::string &description,
                              Factory factory)
{
    if (find(kind))
        fatal("channel scheduler '%s' registered twice", kind.c_str());
    entries_.push_back(Entry{kind, description, factory});
}

bool
ChannelSchedulerRegistry::known(const std::string &kind) const
{
    return find(kind) != nullptr;
}

std::vector<std::string>
ChannelSchedulerRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.kind);
    return out;
}

std::string
ChannelSchedulerRegistry::description(const std::string &kind) const
{
    const Entry *e = find(kind);
    return e ? e->description : std::string{};
}

std::unique_ptr<ChannelScheduler>
ChannelSchedulerRegistry::create(const ControllerConfig &config) const
{
    const Entry *e = find(config.scheduler);
    if (!e) {
        std::string known_names;
        for (const Entry &entry : entries_) {
            if (!known_names.empty())
                known_names += ", ";
            known_names += entry.kind;
        }
        fatal("unknown channel scheduler '%s' (registered: %s)",
              config.scheduler.c_str(), known_names.c_str());
    }
    return e->factory(config);
}

const ChannelSchedulerRegistry::Entry *
ChannelSchedulerRegistry::find(const std::string &kind) const
{
    for (const Entry &e : entries_)
        if (e.kind == kind)
            return &e;
    return nullptr;
}

ChannelTxQueue::ChannelTxQueue(const ControllerConfig &config,
                               double busBandwidth,
                               const RefreshConfig &refresh)
    : cfg_(config), busBandwidth_(busBandwidth), refresh_(refresh),
      sched_(ChannelSchedulerRegistry::instance().create(config)),
      banks_(config.banks)
{
    if (!sched_)
        panic("ChannelTxQueue built for the analytic scheduler");
    if (refresh_.enabled())
        refreshAt_ = refresh_.trefi / cfg_.banks;
}

bool
ChannelTxQueue::willAccept(TransactionKind kind) const
{
    if (kind == TransactionKind::Read)
        return reads_.size() < cfg_.readQueueEntries;
    return writes_.size() < cfg_.writeQueueEntries;
}

void
ChannelTxQueue::setCompletionHandler(CompletionHandler handler)
{
    onComplete_ = std::move(handler);
}

std::uint32_t
ChannelTxQueue::bankOf(Addr addr) const
{
    return static_cast<std::uint32_t>((addr / cfg_.rowBytes) %
                                      cfg_.banks);
}

std::uint64_t
ChannelTxQueue::rowOf(Addr addr) const
{
    return addr / (cfg_.rowBytes * cfg_.banks);
}

void
ChannelTxQueue::applyRefresh(double t)
{
    if (!refresh_.enabled())
        return;
    // One REF per tREFI, rotated across the banks: each bank gets its
    // window every tREFI, offset by bank index — per-bank refresh
    // instead of the analytic epoch-mean duty stall.
    const double step = refresh_.trefi / cfg_.banks;
    while (refreshAt_ <= t) {
        BankState &b = banks_[refreshBank_];
        b.freeAt = std::max(b.freeAt, refreshAt_) + refresh_.trfc;
        b.rowValid = false;  // refresh closes the row
        refreshBank_ = (refreshBank_ + 1) % cfg_.banks;
        refreshAt_ += step;
    }
}

void
ChannelTxQueue::enqueue(const Transaction &tx)
{
    while (!willAccept(tx.kind))
        serviceOne();  // backpressure: arrival waits as queue latency

    QueuedTx q;
    q.tx = tx;
    q.seq = seq_++;
    q.bank = bankOf(tx.addr);
    q.row = rowOf(tx.addr);
    q.drainStalled = draining_;
    std::deque<QueuedTx> &dest =
        tx.kind == TransactionKind::Read ? reads_ : writes_;
    q.depthAtEnqueue = static_cast<std::uint32_t>(dest.size());
    dest.push_back(q);

    stats_.maxReadDepth = std::max(
        stats_.maxReadDepth, static_cast<std::uint32_t>(reads_.size()));
    stats_.maxWriteDepth = std::max(
        stats_.maxWriteDepth,
        static_cast<std::uint32_t>(writes_.size()));

    // Drain-burst hysteresis: enter at the high watermark; serviceOne()
    // exits at the low one. Reads arriving during the burst will wait
    // behind it, which is what drainStalled records.
    if (!draining_ && writes_.size() >= cfg_.drainHighWatermark) {
        draining_ = true;
        ++stats_.writeDrains;
        for (QueuedTx &r : reads_)
            r.drainStalled = true;
    }
}

void
ChannelTxQueue::serviceOne()
{
    if (reads_.empty() && writes_.empty())
        return;

    SchedulerPick p =
        sched_->pick(reads_, writes_, draining_, banks_, cfg_);
    std::deque<QueuedTx> &q = p.fromWrites ? writes_ : reads_;
    QueuedTx chosen = q[p.index];
    if (p.index != 0) {
        // A younger (or same-age, different-bank) request bypassed
        // everything ahead of it: count that against the starvation
        // cap of each passed-over transaction.
        for (std::size_t i = 0; i < p.index; ++i)
            ++q[i].bypassed;
    }
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(p.index));

    applyRefresh(std::max(clock_, chosen.tx.arrival));
    BankState &bank = banks_[chosen.bank];
    double start = std::max(
        std::max(clock_, chosen.tx.arrival),
        std::max(busFreeAt_, bank.freeAt));

    const bool row_hit = bank.rowValid && bank.openRow == chosen.row;
    const double penalty = row_hit ? 0.0 : cfg_.bankConflictPenalty;
    const bool conflict = bank.rowValid && !row_hit;
    const double complete = start + penalty + chosen.tx.service;

    bank.freeAt = complete;
    bank.openRow = chosen.row;
    bank.rowValid = true;
    busFreeAt_ = start + static_cast<double>(kLineSize) / busBandwidth_;
    clock_ = start;

    if (chosen.tx.kind == TransactionKind::Read) {
        ++stats_.completedReads;
        stats_.readQueueWait += start - chosen.tx.arrival;
    } else {
        ++stats_.completedWrites;
        if (draining_ && writes_.size() <= cfg_.drainLowWatermark)
            draining_ = false;
    }
    if (row_hit)
        ++stats_.rowBufferHits;
    if (conflict)
        ++stats_.bankConflicts;

    if (onComplete_) {
        CompletionInfo info;
        info.enqueueTime = chosen.tx.arrival;
        info.issueTime = start;
        info.completeTime = complete;
        info.latency.service = chosen.tx.service;
        info.latency.queueWait = start - chosen.tx.arrival;
        info.latency.bankPenalty = penalty;
        info.rowBufferHit = row_hit;
        info.bankConflict = conflict;
        info.drainStalled = chosen.drainStalled;
        info.queueDepth = chosen.depthAtEnqueue;
        onComplete_(chosen.tx, info);
    }
}

void
ChannelTxQueue::tick(double until)
{
    while (!reads_.empty() || !writes_.empty()) {
        if (clock_ > until)
            break;
        serviceOne();
    }
}

void
ChannelTxQueue::drainAll()
{
    while (!reads_.empty() || !writes_.empty())
        serviceOne();
}

void
ChannelTxQueue::resetEpoch()
{
    if (!reads_.empty() || !writes_.empty())
        panic("ChannelTxQueue::resetEpoch with queued work pending");
    for (BankState &b : banks_)
        b = BankState{};
    clock_ = 0;
    busFreeAt_ = 0;
    refreshBank_ = 0;
    refreshAt_ = refresh_.enabled() ? refresh_.trefi / cfg_.banks : 0;
    seq_ = 0;
    draining_ = false;
}

TxQueueStats
ChannelTxQueue::takeStats()
{
    TxQueueStats out = stats_;
    stats_ = TxQueueStats{};
    return out;
}

} // namespace nvsim
