#include "imc/dram_cache.hh"

#include "core/logging.hh"
#include "obs/heatmap.hh"

namespace nvsim
{

DirectMappedTagEccPolicy::DirectMappedTagEccPolicy(
    const DramCacheParams &params)
    : params_(params), ways_(params.ways ? params.ways : 1),
      numSets_(params.capacity / kLineSize / ways_),
      ddo_(DdoPolicy::create(params.ddo))
{
    if (numSets_ == 0)
        fatal("DRAM cache capacity %llu too small for %u ways",
              static_cast<unsigned long long>(params.capacity), ways_);
    if (numSets_ * ways_ > (1ull << 28)) {
        fatal("DRAM cache tag store would need %llu entries; "
              "apply a SystemConfig scale factor to shrink capacities",
              static_cast<unsigned long long>(numSets_ * ways_));
    }
    ways_store_.assign(numSets_ * ways_, Way{});
    if ((numSets_ & (numSets_ - 1)) == 0) {
        setMask_ = numSets_ - 1;
        setShift_ = 0;
        while ((1ull << setShift_) < numSets_)
            ++setShift_;
    }
}

std::uint64_t
DirectMappedTagEccPolicy::setOf(Addr addr) const
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    return set;
}

std::uint64_t
DirectMappedTagEccPolicy::tagOf(Addr addr) const
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    return tag;
}

Addr
DirectMappedTagEccPolicy::addrOf(std::uint64_t set, std::uint64_t tag) const
{
    return (tag * numSets_ + set) * kLineSize;
}

DirectMappedTagEccPolicy::Way *
DirectMappedTagEccPolicy::find(std::uint64_t set, std::uint64_t tag)
{
    Way *base = &ways_store_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

const DirectMappedTagEccPolicy::Way *
DirectMappedTagEccPolicy::find(std::uint64_t set, std::uint64_t tag) const
{
    const Way *base = &ways_store_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return &base[w];
    }
    return nullptr;
}

DirectMappedTagEccPolicy::Way &
DirectMappedTagEccPolicy::victimWay(std::uint64_t set)
{
    Way *base = &ways_store_[set * ways_];
    Way *victim = nullptr;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].retired)
            continue;
        if (!base[w].valid)
            return base[w];
        if (!victim || base[w].lru < victim->lru)
            victim = &base[w];
    }
    // Precondition: !setRetired(set), so one serviceable way exists.
    return *victim;
}

void
DirectMappedTagEccPolicy::touchLru(std::uint64_t set, Way &way)
{
    (void)set;
    way.lru = ++lruClock_;
}

bool
DirectMappedTagEccPolicy::shouldInsert(Addr addr, MemRequestKind kind)
{
    (void)addr;
    (void)kind;
    return true;  // the stock controller inserts on every miss
}

void
DirectMappedTagEccPolicy::bypassRead(Addr addr, CacheResult &result)
{
    result.outcome = CacheOutcome::MissClean;
    result.actions.nvramReads += 1;
    result.fill = lineBase(addr);
    result.filled = true;
    result.bypassed = true;
}

void
DirectMappedTagEccPolicy::bypassWrite(Addr addr, CacheResult &result)
{
    result.outcome = CacheOutcome::MissClean;
    result.actions.nvramWrites += 1;
    result.victim = lineBase(addr);
    result.wroteBack = true;
}

DirectMappedTagEccPolicy::Way &
DirectMappedTagEccPolicy::missHandler(Addr addr, std::uint64_t set,
                                      std::uint64_t tag,
                                      CacheResult &result)
{
    Way &victim = victimWay(set);
    if (victim.valid) {
        if (profiler_)
            profiler_->noteEviction(set);
        Addr victim_addr = addrOf(set, victim.tag);
        if (victim.dirty) {
            // Write the dirty victim back to NVRAM.
            result.actions.nvramWrites += 1;
            result.victim = victim_addr;
            result.wroteBack = true;
            result.outcome = CacheOutcome::MissDirty;
        } else {
            result.outcome = CacheOutcome::MissClean;
        }
        ddo_->noteEvict(victim_addr);
    } else {
        result.outcome = CacheOutcome::MissClean;
    }

    // Fetch the requested line from NVRAM and insert it (insert on
    // miss, regardless of whether the demand was a read or a write).
    result.actions.nvramReads += 1;
    result.actions.dramWrites += 1;
    result.fill = lineBase(addr);
    result.filled = true;

    victim.valid = true;
    victim.dirty = false;
    victim.tag = tag;
    touchLru(set, victim);
    ddo_->noteInsert(lineBase(addr));
    return victim;
}

CacheResult
DirectMappedTagEccPolicy::read(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    CacheResult result;

    // The IMC always starts with a DRAM read: data and tag arrive
    // together (tag lives in the ECC bits).
    result.actions.dramReads = 1;

    if (Way *way = find(set, tag)) {
        result.outcome = CacheOutcome::Hit;
        touchLru(set, *way);
        if (profiler_)
            profiler_->noteHit(set);
        return result;
    }
    if (profiler_)
        profiler_->noteMiss(set);
    if (shouldInsert(addr, MemRequestKind::LlcRead) && !setRetired(set))
        missHandler(addr, set, tag, result);
    else
        bypassRead(addr, result);
    return result;
}

CacheResult
DirectMappedTagEccPolicy::write(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    CacheResult result;

    Way *way = find(set, tag);

    // Dirty Data Optimization: forward the write straight to DRAM
    // without a tag check when the policy knows the line is resident.
    if (ddo_->check(lineBase(addr), way != nullptr)) {
        result.outcome = CacheOutcome::DdoHit;
        result.actions.dramWrites = 1;
        way->dirty = true;
        touchLru(set, *way);
        if (profiler_)
            profiler_->noteHit(set);
        return result;
    }

    // Tag check: one DRAM read (tag rides in ECC bits).
    result.actions.dramReads = 1;

    if (!way) {
        if (profiler_)
            profiler_->noteMiss(set);
        if (!params_.insertOnWriteMiss ||
            !shouldInsert(addr, MemRequestKind::LlcWrite) ||
            setRetired(set)) {
            // Write-no-allocate ablation / selective-insert bypass /
            // fully-retired set: the store lands in NVRAM; the current
            // occupant (if the set still has one) stays.
            bypassWrite(addr, result);
            result.bypassed = params_.insertOnWriteMiss;
            return result;
        }
        // Insert on miss: the miss handler runs first (NVRAM fetch +
        // DRAM insert), then the demand data is written. This is the
        // second DRAM write observed in Figure 4b.
        way = &missHandler(addr, set, tag, result);
    } else {
        result.outcome = CacheOutcome::Hit;
        if (profiler_)
            profiler_->noteHit(set);
    }

    result.actions.dramWrites += 1;
    way->dirty = true;
    touchLru(set, *way);
    return result;
}

TagCorruption
DirectMappedTagEccPolicy::corruptTag(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    TagCorruption tc;

    Way *way = find(set, tag);
    if (!way) {
        if (setRetired(set))
            return tc;  // nothing serviceable left to corrupt
        way = &victimWay(set);
    }
    if (!way->valid)
        return tc;

    tc.dropped = true;
    tc.wasDirty = way->dirty;
    tc.line = addrOf(set, way->tag);
    // Keep the DDO tracker consistent: the line is gone, later writes
    // must not elide their tag check.
    ddo_->noteEvict(tc.line);
    *way = Way{};
    return tc;
}

TagCorruption
DirectMappedTagEccPolicy::retireFrame(Addr frame)
{
    // The scrubber walks device frames; fold the frame index onto the
    // way store (for the direct-mapped geometry this is exactly the
    // set the frame backs).
    std::uint64_t idx = lineIndex(frame) % (numSets_ * ways_);
    Way &way = ways_store_[idx];
    TagCorruption tc;
    if (way.retired)
        return tc;
    if (way.valid) {
        tc.dropped = true;
        tc.wasDirty = way.dirty;
        tc.line = addrOf(idx / ways_, way.tag);
        // Keep the DDO tracker consistent: the line is gone, later
        // writes must not elide their tag check.
        ddo_->noteEvict(tc.line);
        if (profiler_)
            profiler_->noteEviction(idx / ways_);
    }
    way = Way{};
    way.retired = true;
    ++retiredWays_;
    return tc;
}

bool
DirectMappedTagEccPolicy::resident(Addr addr) const
{
    return find(setOf(addr), tagOf(addr)) != nullptr;
}

bool
DirectMappedTagEccPolicy::residentDirty(Addr addr) const
{
    const Way *way = find(setOf(addr), tagOf(addr));
    return way && way->dirty;
}

void
DirectMappedTagEccPolicy::invalidateAll()
{
    for (auto &way : ways_store_)
        way = Way{};
    // A reboot remaps retired rows onto spares: retirement clears too.
    retiredWays_ = 0;
    // Recreate the DDO policy so no stale insert knowledge survives.
    ddo_ = DdoPolicy::create(params_.ddo);
}

} // namespace nvsim
