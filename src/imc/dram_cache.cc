#include "imc/dram_cache.hh"

#include <algorithm>

#include "core/logging.hh"
#include "obs/heatmap.hh"

namespace nvsim
{

DirectMappedTagEccPolicy::DirectMappedTagEccPolicy(
    const DramCacheParams &params)
    : params_(params), ways_(params.ways ? params.ways : 1),
      numSets_(params.capacity / kLineSize / ways_),
      ddo_(DdoPolicy::create(params.ddo))
{
    if (numSets_ == 0)
        fatal("DRAM cache capacity %llu too small for %u ways",
              static_cast<unsigned long long>(params.capacity), ways_);
    if (numSets_ * ways_ > (1ull << 28)) {
        fatal("DRAM cache tag store would need %llu entries; "
              "apply a SystemConfig scale factor to shrink capacities",
              static_cast<unsigned long long>(numSets_ * ways_));
    }
    const std::size_t entries = numSets_ * ways_;
    wayTag_.assign(entries, kInvalidTag);
    wayLru_.assign(entries, 0);
    wayDirty_.assign(entries, 0);
    wayRetired_.assign(entries, 0);
    if ((numSets_ & (numSets_ - 1)) == 0) {
        setMask_ = numSets_ - 1;
        setShift_ = 0;
        while ((1ull << setShift_) < numSets_)
            ++setShift_;
    }
}

std::uint64_t
DirectMappedTagEccPolicy::setOf(Addr addr) const
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    return set;
}

std::uint64_t
DirectMappedTagEccPolicy::tagOf(Addr addr) const
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    return tag;
}

Addr
DirectMappedTagEccPolicy::addrOf(std::uint64_t set, std::uint64_t tag) const
{
    return (tag * numSets_ + set) * kLineSize;
}

DirectMappedTagEccPolicy::WayIdx
DirectMappedTagEccPolicy::find(std::uint64_t set, std::uint64_t tag) const
{
    // The probe loop touches only the tag words (empty ways hold
    // kInvalidTag) — the point of the structure-of-arrays layout.
    const WayIdx base = set * ways_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (wayTag_[base + w] == tag)
            return base + w;
    }
    return kNoWay;
}

DirectMappedTagEccPolicy::WayIdx
DirectMappedTagEccPolicy::victimWay(std::uint64_t set) const
{
    const WayIdx base = set * ways_;
    WayIdx victim = kNoWay;
    for (unsigned w = 0; w < ways_; ++w) {
        if (wayRetired_[base + w])
            continue;
        if (!wayValid(base + w))
            return base + w;
        if (victim == kNoWay || wayLru_[base + w] < wayLru_[victim])
            victim = base + w;
    }
    // Precondition: !setRetired(set), so one serviceable way exists.
    return victim;
}

bool
DirectMappedTagEccPolicy::shouldInsert(Addr addr, MemRequestKind kind)
{
    (void)addr;
    (void)kind;
    return true;  // the stock controller inserts on every miss
}

void
DirectMappedTagEccPolicy::bypassRead(Addr addr, CacheResult &result)
{
    result.outcome = CacheOutcome::MissClean;
    result.actions.nvramReads += 1;
    result.fill = lineBase(addr);
    result.filled = true;
    result.bypassed = true;
}

void
DirectMappedTagEccPolicy::bypassWrite(Addr addr, CacheResult &result)
{
    result.outcome = CacheOutcome::MissClean;
    result.actions.nvramWrites += 1;
    result.victim = lineBase(addr);
    result.wroteBack = true;
}

DirectMappedTagEccPolicy::WayIdx
DirectMappedTagEccPolicy::missHandler(Addr addr, std::uint64_t set,
                                      std::uint64_t tag,
                                      CacheResult &result)
{
    const WayIdx victim = victimWay(set);
    if (wayValid(victim)) {
        if (profiler_)
            profiler_->noteEviction(set);
        Addr victim_addr = addrOf(set, wayTag_[victim]);
        if (wayDirty_[victim]) {
            // Write the dirty victim back to NVRAM.
            result.actions.nvramWrites += 1;
            result.victim = victim_addr;
            result.wroteBack = true;
            result.outcome = CacheOutcome::MissDirty;
        } else {
            result.outcome = CacheOutcome::MissClean;
        }
        ddo_->noteEvict(victim_addr);
    } else {
        result.outcome = CacheOutcome::MissClean;
    }

    // Fetch the requested line from NVRAM and insert it (insert on
    // miss, regardless of whether the demand was a read or a write).
    result.actions.nvramReads += 1;
    result.actions.dramWrites += 1;
    result.fill = lineBase(addr);
    result.filled = true;

    wayDirty_[victim] = 0;
    wayTag_[victim] = tag;  // a real tag: the way is now valid
    touchLru(victim);
    ddo_->noteInsert(lineBase(addr));
    return victim;
}

CacheResult
DirectMappedTagEccPolicy::read(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    CacheResult result;

    // The IMC always starts with a DRAM read: data and tag arrive
    // together (tag lives in the ECC bits).
    result.actions.dramReads = 1;

    if (WayIdx way = find(set, tag); way != kNoWay) {
        result.outcome = CacheOutcome::Hit;
        touchLru(way);
        if (profiler_)
            profiler_->noteHit(set);
        return result;
    }
    if (profiler_)
        profiler_->noteMiss(set);
    if (shouldInsert(addr, MemRequestKind::LlcRead) && !setRetired(set))
        missHandler(addr, set, tag, result);
    else
        bypassRead(addr, result);
    return result;
}

CacheResult
DirectMappedTagEccPolicy::write(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    CacheResult result;

    WayIdx way = find(set, tag);

    // Dirty Data Optimization: forward the write straight to DRAM
    // without a tag check when the policy knows the line is resident.
    if (ddo_->check(lineBase(addr), way != kNoWay)) {
        result.outcome = CacheOutcome::DdoHit;
        result.actions.dramWrites = 1;
        wayDirty_[way] = 1;
        touchLru(way);
        if (profiler_)
            profiler_->noteHit(set);
        return result;
    }

    // Tag check: one DRAM read (tag rides in ECC bits).
    result.actions.dramReads = 1;

    if (way == kNoWay) {
        if (profiler_)
            profiler_->noteMiss(set);
        if (!params_.insertOnWriteMiss ||
            !shouldInsert(addr, MemRequestKind::LlcWrite) ||
            setRetired(set)) {
            // Write-no-allocate ablation / selective-insert bypass /
            // fully-retired set: the store lands in NVRAM; the current
            // occupant (if the set still has one) stays.
            bypassWrite(addr, result);
            result.bypassed = params_.insertOnWriteMiss;
            return result;
        }
        // Insert on miss: the miss handler runs first (NVRAM fetch +
        // DRAM insert), then the demand data is written. This is the
        // second DRAM write observed in Figure 4b.
        way = missHandler(addr, set, tag, result);
    } else {
        result.outcome = CacheOutcome::Hit;
        if (profiler_)
            profiler_->noteHit(set);
    }

    result.actions.dramWrites += 1;
    wayDirty_[way] = 1;
    touchLru(way);
    return result;
}

TagCorruption
DirectMappedTagEccPolicy::corruptTag(Addr addr)
{
    std::uint64_t set, tag;
    splitAddr(addr, set, tag);
    TagCorruption tc;

    WayIdx way = find(set, tag);
    if (way == kNoWay) {
        if (setRetired(set))
            return tc;  // nothing serviceable left to corrupt
        way = victimWay(set);
    }
    if (!wayValid(way))
        return tc;

    tc.dropped = true;
    tc.wasDirty = wayDirty_[way] != 0;
    tc.line = addrOf(set, wayTag_[way]);
    // Keep the DDO tracker consistent: the line is gone, later writes
    // must not elide their tag check.
    ddo_->noteEvict(tc.line);
    clearWay(way);
    return tc;
}

TagCorruption
DirectMappedTagEccPolicy::retireFrame(Addr frame)
{
    // The scrubber walks device frames; fold the frame index onto the
    // way store (for the direct-mapped geometry this is exactly the
    // set the frame backs).
    WayIdx idx = lineIndex(frame) % (numSets_ * ways_);
    TagCorruption tc;
    if (wayRetired_[idx])
        return tc;
    if (wayValid(idx)) {
        tc.dropped = true;
        tc.wasDirty = wayDirty_[idx] != 0;
        tc.line = addrOf(idx / ways_, wayTag_[idx]);
        // Keep the DDO tracker consistent: the line is gone, later
        // writes must not elide their tag check.
        ddo_->noteEvict(tc.line);
        if (profiler_)
            profiler_->noteEviction(idx / ways_);
    }
    clearWay(idx);
    wayRetired_[idx] = 1;
    ++retiredWays_;
    return tc;
}

bool
DirectMappedTagEccPolicy::resident(Addr addr) const
{
    return find(setOf(addr), tagOf(addr)) != kNoWay;
}

bool
DirectMappedTagEccPolicy::residentDirty(Addr addr) const
{
    WayIdx way = find(setOf(addr), tagOf(addr));
    return way != kNoWay && wayDirty_[way];
}

void
DirectMappedTagEccPolicy::invalidateAll()
{
    std::fill(wayTag_.begin(), wayTag_.end(), kInvalidTag);
    std::fill(wayLru_.begin(), wayLru_.end(), 0);
    std::fill(wayDirty_.begin(), wayDirty_.end(), 0);
    std::fill(wayRetired_.begin(), wayRetired_.end(), 0);
    // A reboot remaps retired rows onto spares: retirement clears too.
    retiredWays_ = 0;
    // Recreate the DDO policy so no stale insert knowledge survives.
    ddo_ = DdoPolicy::create(params_.ddo);
}

} // namespace nvsim
