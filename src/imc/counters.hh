/**
 * @file
 * IMC uncore performance counters.
 *
 * The Cascade Lake IMC exposes column-access-strobe (CAS) counts for
 * DRAM, PMM read/write request counts for NVRAM, and 2LM tag statistics
 * (tag hit, tag miss clean, tag miss dirty). The paper samples these to
 * produce all of its bandwidth and tag traces; we expose the same event
 * set plus a ddoHit event that the real hardware does not report but
 * whose existence the paper infers.
 *
 * The counter set is defined once, in NVSIM_PERF_COUNTER_FIELDS; the
 * struct fields, element-wise operators, the named() view and the
 * forEachField() visitor are all generated from it, so adding a counter
 * is a one-line change.
 */

#ifndef NVSIM_IMC_COUNTERS_HH
#define NVSIM_IMC_COUNTERS_HH

#include <array>
#include <cstdint>
#include <map>
#include <string>

#include "mem/request.hh"

namespace nvsim
{

/**
 * The full counter set: X(member, snake_name, description). Fault /
 * degradation events (the block from correctableErrors down) are zero
 * on a fault-free machine; the maintenance block (refreshSlots down)
 * is zero while the maintenance subsystem is off; the queue block
 * (queueWaitNs down) is zero unless the queued controller is enabled.
 */
#define NVSIM_PERF_COUNTER_FIELDS(X)                                     \
    X(dramRead, dram_read, "CAS.RD: 64 B DRAM reads")                    \
    X(dramWrite, dram_write, "CAS.WR: 64 B DRAM writes")                 \
    X(nvramRead, nvram_read, "PMM.RD: 64 B NVRAM bus reads")             \
    X(nvramWrite, nvram_write, "PMM.WR: 64 B NVRAM bus writes")          \
    X(tagHit, tag_hit, "2LM tag hits")                                   \
    X(tagMissClean, tag_miss_clean, "2LM tag misses, clean victim")      \
    X(tagMissDirty, tag_miss_dirty, "2LM tag misses, dirty victim")      \
    X(ddoHit, ddo_hit, "writes forwarded without a tag check")           \
    X(llcReads, llc_reads, "demand LLC read requests")                   \
    X(llcWrites, llc_writes, "demand LLC write requests")                \
    X(correctableErrors, correctable_errors,                             \
      "recovered media/ECC errors")                                      \
    X(uncorrectableErrors, uncorrectable_errors, "data-loss events")     \
    X(tagEccInvalidates, tag_ecc_invalidates,                            \
      "2LM tags lost to ECC faults")                                     \
    X(retries, retries, "transient-error retry rounds")                  \
    X(throttledEpochs, throttled_epochs, "epochs spent write-throttled") \
    X(missBypass, miss_bypass,                                           \
      "misses served from NVRAM without inserting the line")             \
    X(sramTagLookups, sram_tag_lookups,                                  \
      "tag checks answered by controller SRAM (no device read)")         \
    X(refreshSlots, refresh_slots,                                       \
      "REF commands issued (each blocks the banks for tRFC)")            \
    X(scrubReads, scrub_reads, "patrol-scrub DRAM reads")                \
    X(scrubCorrected, scrub_corrected,                                   \
      "correctable errors found and scrubbed in place")                  \
    X(linesRetired, lines_retired,                                       \
      "cache frames mapped out by the repeat-CE/UE retirement ladder")   \
    X(targetedRefreshes, targeted_refreshes,                             \
      "RowHammer targeted-refresh mitigations fired")                    \
    X(maintenanceStallNs, maintenance_stall_ns,                          \
      "nanoseconds of DRAM bank time lost to maintenance")               \
    X(queueWaitNs, queue_wait_ns,                                        \
      "nanoseconds demand reads spent waiting in the read queue")        \
    X(bankConflicts, bank_conflicts,                                     \
      "issues that paid a row-buffer conflict penalty")                  \
    X(rowBufferHits, row_buffer_hits, "issues into an open row")         \
    X(writeDrains, write_drains, "WPQ drain bursts entered")

/** Number of counters in NVSIM_PERF_COUNTER_FIELDS. */
inline constexpr std::size_t kNumPerfFields = 0
#define NVSIM_PERF_COUNT(member, name, desc) +1
    NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_COUNT)
#undef NVSIM_PERF_COUNT
    ;

/**
 * Positional index of each counter, in NVSIM_PERF_COUNTER_FIELDS
 * declaration order. Lets array-shaped consumers (the telemetry
 * engine's per-window delta vectors) address fields by name without
 * depending on anything outside this header.
 */
enum class PerfField : std::size_t
{
#define NVSIM_PERF_ENUM(member, name, desc) member,
    NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_ENUM)
#undef NVSIM_PERF_ENUM
};

/** Uncore counter block of one memory channel / IMC. */
struct PerfCounters
{
#define NVSIM_PERF_DECL(member, name, desc) std::uint64_t member = 0;
    NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_DECL)
#undef NVSIM_PERF_DECL

    /**
     * Visit every counter as f(snake_name, description, value).
     * Mutable overload passes a reference.
     */
    template <typename F>
    void
    forEachField(F &&f) const
    {
#define NVSIM_PERF_VISIT(member, name, desc) f(#name, desc, member);
        NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_VISIT)
#undef NVSIM_PERF_VISIT
    }

    template <typename F>
    void
    forEachField(F &&f)
    {
#define NVSIM_PERF_VISIT(member, name, desc) f(#name, desc, member);
        NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_VISIT)
#undef NVSIM_PERF_VISIT
    }

    /** Number of counters in the block. */
    static constexpr std::size_t numFields() { return kNumPerfFields; }

    /** snake_case name of field @p i (declaration order). */
    static const char *
    fieldName(std::size_t i)
    {
        static constexpr std::array<const char *, kNumPerfFields>
            kNames = {
#define NVSIM_PERF_NAME(member, name, desc) #name,
                NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_NAME)
#undef NVSIM_PERF_NAME
            };
        return kNames[i];
    }

    /**
     * The counters as a dense array, in declaration order. Header-only
     * on purpose: obs-layer code (which nvsim_imc links, not the other
     * way round) can consume counter blocks without a link dependency
     * on counters.cc.
     */
    std::array<std::uint64_t, kNumPerfFields>
    asArray() const
    {
        std::array<std::uint64_t, kNumPerfFields> out;
        std::size_t i = 0;
        forEachField([&](const char *, const char *,
                         std::uint64_t v) { out[i++] = v; });
        return out;
    }

    /** Record the device actions of one request. */
    void
    addActions(const DeviceActions &a)
    {
        dramRead += a.dramReads;
        dramWrite += a.dramWrites;
        nvramRead += a.nvramReads;
        nvramWrite += a.nvramWrites;
    }

    /** Record a request outcome in the tag statistics. */
    void addOutcome(MemRequestKind kind, CacheOutcome outcome);

    PerfCounters &operator+=(const PerfCounters &o);

    /** Element-wise difference (this - o); used for interval sampling. */
    PerfCounters delta(const PerfCounters &o) const;

    /** Total demand requests. */
    std::uint64_t demand() const { return llcReads + llcWrites; }

    /** Total device accesses. */
    std::uint64_t
    deviceAccesses() const
    {
        return dramRead + dramWrite + nvramRead + nvramWrite;
    }

    /** Access amplification: device accesses per demand request. */
    double amplification() const;

    /** Named view for CSV / reporting. */
    std::map<std::string, std::uint64_t> named() const;
};

// The field list declares every member, so the struct is exactly its
// counters; a hand-added member would break the visitor's coverage.
static_assert(sizeof(PerfCounters) ==
              PerfCounters::numFields() * sizeof(std::uint64_t));

} // namespace nvsim

#endif // NVSIM_IMC_COUNTERS_HH
