/**
 * @file
 * IMC uncore performance counters.
 *
 * The Cascade Lake IMC exposes column-access-strobe (CAS) counts for
 * DRAM, PMM read/write request counts for NVRAM, and 2LM tag statistics
 * (tag hit, tag miss clean, tag miss dirty). The paper samples these to
 * produce all of its bandwidth and tag traces; we expose the same event
 * set plus a ddoHit event that the real hardware does not report but
 * whose existence the paper infers.
 */

#ifndef NVSIM_IMC_COUNTERS_HH
#define NVSIM_IMC_COUNTERS_HH

#include <cstdint>
#include <map>
#include <string>

#include "mem/request.hh"

namespace nvsim
{

/** Uncore counter block of one memory channel / IMC. */
struct PerfCounters
{
    std::uint64_t dramRead = 0;       //!< CAS.RD: 64 B DRAM reads
    std::uint64_t dramWrite = 0;      //!< CAS.WR: 64 B DRAM writes
    std::uint64_t nvramRead = 0;      //!< PMM.RD: 64 B NVRAM bus reads
    std::uint64_t nvramWrite = 0;     //!< PMM.WR: 64 B NVRAM bus writes
    std::uint64_t tagHit = 0;         //!< 2LM tag hits
    std::uint64_t tagMissClean = 0;   //!< 2LM tag misses, clean victim
    std::uint64_t tagMissDirty = 0;   //!< 2LM tag misses, dirty victim
    std::uint64_t ddoHit = 0;         //!< writes forwarded without a tag check
    std::uint64_t llcReads = 0;       //!< demand LLC read requests
    std::uint64_t llcWrites = 0;      //!< demand LLC write requests

    /** @name Fault / degradation events (zero on a fault-free machine) */
    ///@{
    std::uint64_t correctableErrors = 0;   //!< recovered media/ECC errors
    std::uint64_t uncorrectableErrors = 0; //!< data-loss events
    std::uint64_t tagEccInvalidates = 0;   //!< 2LM tags lost to ECC faults
    std::uint64_t retries = 0;             //!< transient-error retry rounds
    std::uint64_t throttledEpochs = 0;     //!< epochs spent write-throttled
    ///@}

    /** Record the device actions of one request. */
    void
    addActions(const DeviceActions &a)
    {
        dramRead += a.dramReads;
        dramWrite += a.dramWrites;
        nvramRead += a.nvramReads;
        nvramWrite += a.nvramWrites;
    }

    /** Record a request outcome in the tag statistics. */
    void addOutcome(MemRequestKind kind, CacheOutcome outcome);

    PerfCounters &operator+=(const PerfCounters &o);

    /** Element-wise difference (this - o); used for interval sampling. */
    PerfCounters delta(const PerfCounters &o) const;

    /** Total demand requests. */
    std::uint64_t demand() const { return llcReads + llcWrites; }

    /** Total device accesses. */
    std::uint64_t
    deviceAccesses() const
    {
        return dramRead + dramWrite + nvramRead + nvramWrite;
    }

    /** Access amplification: device accesses per demand request. */
    double amplification() const;

    /** Named view for CSV / reporting. */
    std::map<std::string, std::uint64_t> named() const;
};

} // namespace nvsim

#endif // NVSIM_IMC_COUNTERS_HH
