#include "imc/bypass_policy.hh"

namespace nvsim
{

namespace
{

std::uint32_t
roundUpPow2(std::uint32_t v)
{
    std::uint32_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

} // namespace

BypassSelectiveInsertPolicy::BypassSelectiveInsertPolicy(
    const DramCacheParams &params, const CachePolicyConfig &config)
    : DirectMappedTagEccPolicy(params),
      threshold_(config.insertThreshold),
      mask_(roundUpPow2(config.counterEntries) - 1)
{
    table_.assign(std::size_t(mask_) + 1, Entry{});
}

std::uint32_t
BypassSelectiveInsertPolicy::slot(Addr line) const
{
    return static_cast<std::uint32_t>(lineIndex(line)) & mask_;
}

unsigned
BypassSelectiveInsertPolicy::missCount(Addr addr) const
{
    Addr line = lineBase(addr);
    const Entry &e = table_[slot(line)];
    return e.line == line + 1 ? e.count : 0;
}

bool
BypassSelectiveInsertPolicy::shouldInsert(Addr addr, MemRequestKind kind)
{
    (void)kind;
    Addr line = lineBase(addr);
    Entry &e = table_[slot(line)];
    if (e.line != line + 1) {
        // Aliasing line (or empty slot): the newcomer takes the entry
        // over, so cold lines decay under pressure.
        e.line = line + 1;
        e.count = 1;
    } else {
        ++e.count;
    }
    if (e.count < threshold_)
        return false;
    // The line earned its insertion; retire the entry so a future
    // eviction makes it start earning again from scratch.
    e = Entry{};
    return true;
}

void
BypassSelectiveInsertPolicy::invalidateAll()
{
    DirectMappedTagEccPolicy::invalidateAll();
    for (auto &e : table_)
        e = Entry{};
}

} // namespace nvsim
