#include "imc/cache_policy.hh"

#include "core/logging.hh"
#include "imc/bypass_policy.hh"
#include "imc/dram_cache.hh"
#include "imc/sram_tag_policy.hh"

namespace nvsim
{

double
CachePolicy::demandLatency(MemRequestKind kind, const CacheResult &cr,
                           const DeviceLatencies &lat) const
{
    if (kind == MemRequestKind::LlcRead) {
        // Hit: one DRAM round trip. Miss: tag-check read then the NVRAM
        // fetch are serial; the insert write is posted off the critical
        // path.
        return cr.outcome == CacheOutcome::Hit ? lat.dram
                                               : lat.dram + lat.nvramRead;
    }
    // Writes are posted; the tag-check read still occupies the request
    // slot before the write can be accepted.
    return cr.outcome == CacheOutcome::DdoHit ? lat.nvramWrite : lat.dram;
}

double
CachePolicy::missServiceTime(const DeviceLatencies &lat) const
{
    // Tag-check DRAM read followed by the NVRAM line fetch; the DRAM
    // insert overlaps with returning data to the LLC.
    return lat.dram + lat.nvramRead;
}

CausalBreakdown
CachePolicy::breakdown(MemRequestKind kind, const CacheResult &cr,
                       const DeviceLatencies &lat) const
{
    return tagEccBreakdown(kind, cr, lat);
}

CausalBreakdown
tagEccBreakdown(MemRequestKind kind, const CacheResult &cr,
                const DeviceLatencies &lat)
{
    CausalBreakdown b;
    if (cr.outcome == CacheOutcome::DdoHit) {
        // DDO forwards the store straight to the resident DRAM line.
        b.add(AccessCause::DdoElideWrite, MemPool::Dram, lat.dram);
        return b;
    }
    b.add(AccessCause::TagProbe, MemPool::Dram, lat.dram);
    if (cr.filled) {
        // Figure 3 order: the victim is evicted before the fetch.
        if (cr.wroteBack) {
            b.add(AccessCause::DirtyWriteback, MemPool::Nvram,
                  lat.nvramWrite);
        }
        if (cr.bypassed) {
            // Selective-insert bypass: the fetch serves the demand
            // directly and nothing is installed in DRAM.
            b.add(AccessCause::BypassRead, MemPool::Nvram, lat.nvramRead);
        } else {
            b.add(AccessCause::CacheFillRead, MemPool::Nvram,
                  lat.nvramRead);
            b.add(AccessCause::CacheInsertWrite, MemPool::Dram, lat.dram);
        }
    }
    if (kind == MemRequestKind::LlcWrite) {
        if (!cr.filled && cr.wroteBack) {
            // Write-no-allocate / write bypass: the demand data itself
            // is the NVRAM write that rode in the writeback fields.
            b.add(AccessCause::DataWrite, MemPool::Nvram, lat.nvramWrite);
        } else {
            b.add(AccessCause::DataWrite, MemPool::Dram, lat.dram);
        }
    }
    return b;
}

void
CachePolicyConfig::validate() const
{
    if (!CachePolicyRegistry::instance().known(kind)) {
        std::string known;
        for (const std::string &n :
             CachePolicyRegistry::instance().names()) {
            if (!known.empty())
                known += ", ";
            known += n;
        }
        fatal("unknown cache policy '%s' (registered: %s)", kind.c_str(),
              known.c_str());
    }
    if (replacement != "lru" && replacement != "fifo")
        fatal("cache policy replacement must be 'lru' or 'fifo', got '%s'",
              replacement.c_str());
    if (insertThreshold == 0)
        fatal("cache policy insertThreshold must be at least 1");
    if (counterEntries == 0)
        fatal("cache policy counterEntries must be nonzero");
}

CachePolicyRegistry &
CachePolicyRegistry::instance()
{
    static CachePolicyRegistry reg = [] {
        CachePolicyRegistry r;
        r.add("direct_mapped_tag_ecc",
              "the reverse-engineered 2LM controller: direct mapped "
              "(ways knob for ablation), tags in DRAM ECC bits, insert "
              "on every miss, DDO",
              [](const DramCacheParams &p, const CachePolicyConfig &) {
                  return std::unique_ptr<CachePolicy>(
                      new DirectMappedTagEccPolicy(p));
              });
        r.add("sram_tag_set_assoc",
              "set-associative cache with tags held in controller SRAM: "
              "no tag-check device reads, configurable ways and "
              "lru/fifo replacement",
              [](const DramCacheParams &p, const CachePolicyConfig &c) {
                  return std::unique_ptr<CachePolicy>(
                      new SramTagSetAssocPolicy(p, c));
              });
        r.add("bypass_selective_insert",
              "Banshee/TicToc-style frequency-gated insertion: misses "
              "bypass to NVRAM until a line earns insertThreshold "
              "misses; DDO interaction preserved",
              [](const DramCacheParams &p, const CachePolicyConfig &c) {
                  return std::unique_ptr<CachePolicy>(
                      new BypassSelectiveInsertPolicy(p, c));
              });
        return r;
    }();
    return reg;
}

void
CachePolicyRegistry::add(const std::string &kind,
                         const std::string &description, Factory factory)
{
    if (find(kind))
        fatal("cache policy '%s' registered twice", kind.c_str());
    entries_.push_back(Entry{kind, description, factory});
}

const CachePolicyRegistry::Entry *
CachePolicyRegistry::find(const std::string &kind) const
{
    for (const Entry &e : entries_) {
        if (e.kind == kind)
            return &e;
    }
    return nullptr;
}

bool
CachePolicyRegistry::known(const std::string &kind) const
{
    return find(kind) != nullptr;
}

std::vector<std::string>
CachePolicyRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const Entry &e : entries_)
        out.push_back(e.kind);
    return out;
}

std::string
CachePolicyRegistry::description(const std::string &kind) const
{
    const Entry *e = find(kind);
    return e ? e->description : std::string();
}

std::unique_ptr<CachePolicy>
CachePolicyRegistry::create(const DramCacheParams &params,
                            const CachePolicyConfig &config) const
{
    config.validate();
    return find(config.kind)->factory(params, config);
}

std::unique_ptr<CachePolicy>
makeCachePolicy(const DramCacheParams &params,
                const CachePolicyConfig &config)
{
    return CachePolicyRegistry::instance().create(params, config);
}

} // namespace nvsim
