/**
 * @file
 * Channel controller: one memory channel holding a DRAM DIMM and an
 * NVRAM DIMM behind the same bus, as on Cascade Lake (Figure 1 of the
 * paper: 2 sockets x 2 IMCs x 3 channels, each channel populated with a
 * 32 GiB DDR4 DIMM and a 512 GiB Optane DIMM).
 *
 * In 2LM mode the DRAM DIMM is the hardware-managed cache in front of
 * the NVRAM DIMM; in 1LM (app direct) mode both DIMMs are directly
 * addressable and requests carry the pool they target.
 */

#ifndef NVSIM_IMC_CHANNEL_HH
#define NVSIM_IMC_CHANNEL_HH

#include <cstdint>
#include <memory>

#include "fault/fault.hh"
#include "imc/cache_policy.hh"
#include "imc/counters.hh"
#include "imc/scheduler.hh"
#include "imc/transaction.hh"
#include "mem/dram.hh"
#include "mem/maintenance/maintenance.hh"
#include "mem/nvram.hh"
#include "mem/request.hh"

namespace nvsim
{

namespace obs
{
class Group;
} // namespace obs

/** Memory-system operating mode. */
enum class MemoryMode : std::uint8_t {
    OneLm,  //!< app direct: DRAM and NVRAM separately addressable
    TwoLm,  //!< memory mode: DRAM is a transparent cache for NVRAM
};

const char *memoryModeName(MemoryMode mode);

/** Configuration of one channel. */
struct ChannelParams
{
    DramParams dram;
    NvramParams nvram;
    DdoConfig ddo;
    unsigned cacheWays = 1;
    bool insertOnWriteMiss = true;
    /** Cache policy selection + policy-specific knobs (2LM only). */
    CachePolicyConfig policy;
    /** DDR4 bus bandwidth shared by DRAM and DDR-T transactions. */
    double busBandwidth = 21.3e9;
    /** Concurrent 2LM miss handler entries (MSHR-like). */
    unsigned missHandlerEntries = 24;
    /** Fault-injection plan (zero rates: behavior-neutral). */
    FaultConfig fault;
    /** DRAM self-management (refresh/scrub/RowHammer; all-off default). */
    MaintenanceConfig maintenance;
    /** Queued-controller selection and geometry ("analytic" = off). */
    ControllerConfig controller;
    /** Index of this channel in the system (fault-stream derivation). */
    unsigned index = 0;
};

/**
 * Fault side effects of one request, reported upward so the
 * MemorySystem can track poison at physical addresses and feed the
 * FaultLog. All-zero when no fault fired.
 */
struct RequestFaults
{
    std::uint32_t retries = 0;       //!< retry rounds spent (all causes)
    std::uint32_t correctable = 0;   //!< correctable errors observed
    std::uint32_t uncorrectable = 0; //!< uncorrectable errors observed
    /** The requested line's data was lost (UC media or DRAM error). */
    bool demandPoisoned = false;
    /** A different line (writeback victim / dropped dirty line) lost
     *  its data; its channel-local address is victimLine. */
    bool victimPoisoned = false;
    Addr victimLine = 0;
    /** DRAM ECC faults that corrupted in-ECC 2LM tags. A demand tag
     *  fault and a scrub-found UE can land in one request, so these
     *  are counts, not flags. */
    std::uint32_t tagEccInvalidates = 0;
    /** Of the uncorrectable errors, how many were 1LM DRAM data
     *  faults (the rest are NVRAM media). */
    std::uint32_t dramUncorrectable = 0;
    /** Frames the scrub retirement ladder mapped out during this
     *  request; retiredLine is the channel-local frame address of the
     *  last one. */
    std::uint32_t linesRetired = 0;
    Addr retiredLine = 0;
    /** RowHammer targeted-refresh mitigations fired. */
    std::uint32_t targetedRefreshes = 0;

    bool
    any() const
    {
        return retries || correctable || uncorrectable ||
               demandPoisoned || victimPoisoned || tagEccInvalidates ||
               linesRetired || targetedRefreshes;
    }
};

/** One request's timing contribution, returned to the caller. */
struct AccessResult
{
    CacheOutcome outcome = CacheOutcome::Uncached;
    DeviceActions actions;
    double latency = 0;  //!< load-to-use seconds for demand reads
    RequestFaults fault; //!< injected-fault side effects, if any
    /** Per-access blame spans; filled only when MemRequest::traced. */
    CausalBreakdown breakdown;
};

/**
 * Derive the ordered blame spans for one tags-in-ECC 2LM cache access:
 * which Figure 3 steps ran, on which device, at the device's nominal
 * latency. Span count always equals CacheResult::actions.total().
 * Convenience wrapper over tagEccBreakdown for tools that drive
 * DramCache directly (bench_table1_amplification); the channel's
 * traced path asks its CachePolicy instead, so non-default policies
 * blame their own flows.
 */
CausalBreakdown causalBreakdown2lm(MemRequestKind kind,
                                   const CacheResult &cr,
                                   const ChannelParams &params);

/** The DeviceLatencies slice of a channel's parameters. */
DeviceLatencies deviceLatencies(const ChannelParams &params);

/** Per-epoch traffic summary of a channel, for the bandwidth solver. */
struct ChannelEpoch
{
    DramEpoch dram;
    NvramEpoch nvram;
    std::uint64_t misses = 0;  //!< 2LM miss handler activations
    /** Targeted-refresh seconds the banks lost this epoch. */
    double maintTime = 0;
};

/** A memory channel with its controller logic. */
class ChannelController
{
  public:
    ChannelController(const ChannelParams &params, MemoryMode mode);

    /**
     * Movable (the MemorySystem stores channels in a vector); the
     * NvramDevice's fault-plan pointer is re-wired on move.
     */
    ChannelController(ChannelController &&o) noexcept;
    ChannelController &operator=(ChannelController &&) = delete;
    ChannelController(const ChannelController &) = delete;
    ChannelController &operator=(const ChannelController &) = delete;

    /**
     * Handle one 64 B LLC request.
     * @param req   the request (line-aligned address)
     * @param pool  in 1LM mode, the pool backing the address; ignored
     *              in 2LM mode (everything is NVRAM behind the cache)
     */
    AccessResult handle(const MemRequest &req, MemPool pool);

    /** @name Batched fast path
     * Lean demand entry points used by MemorySystem::accessRange when
     * no observer is attached and the fault plan is disabled: the same
     * cache/device state transitions and counter updates as handle(),
     * with none of the AccessResult, causal-breakdown or fault
     * plumbing. Each returns the request's demand latency in seconds.
     */
    ///@{
    /** One 64 B request (channel-local, line-aligned address). */
    double handleFast(MemRequestKind kind, Addr addr,
                      std::uint16_t thread, MemPool pool);

    /**
     * 1LM only: @p lines consecutive 64 B requests of one kind to one
     * pool, batched through the device bulk paths. Returns the demand
     * latency of each (identical) line.
     */
    double handleFastRun1lm(MemRequestKind kind, Addr addr,
                            std::uint64_t lines, std::uint16_t thread,
                            MemPool pool);
    ///@}

    /** @name Queued transaction surface
     * Active when the `controller` config selects a real scheduler
     * (anything but "analytic"). The MemorySystem computes each
     * request's analytic service component through the cache-policy
     * seam as usual, then enqueues it here; latency emerges from
     * queue/bank/bus occupancy and is reported through the completion
     * handler as a CompletionInfo. With the degenerate "analytic"
     * scheduler no queue exists and these are inert: willAccept()
     * always true, tick()/drainQueues() no-ops, enqueue() fatal.
     */
    ///@{
    /** Is a real queue engine in the path? */
    bool queuedMode() const { return txq_ != nullptr; }

    /** Backpressure probe for @p kind's queue. */
    bool willAccept(TransactionKind kind) const;

    /** Hand one transaction to the queue engine (queued mode only). */
    void enqueue(const Transaction &tx);

    /** Service queued transactions issuing no later than @p until. */
    void tick(double until);

    /**
     * Epoch barrier: service everything queued, fold the engine's
     * statistics into the perf counters (queueWaitNs, bankConflicts,
     * rowBufferHits, writeDrains) and reset the epoch-relative clock.
     * Runs on the merging thread, like noteMaintenanceEpoch.
     */
    void drainQueues();

    /** Completion callback; fires once per transaction, issue order. */
    void setCompletionHandler(CompletionHandler handler);

    /** The queue engine, for tests/stats (nullptr when analytic). */
    const ChannelTxQueue *txQueue() const { return txq_.get(); }
    ///@}

    /** Quiesce: flush NVRAM write buffers. */
    void drainBuffers();

    /** Collect and reset this epoch's traffic. */
    ChannelEpoch drainEpoch();

    /**
     * Wall-clock seconds the channel's resources need to move an
     * epoch's traffic: the max of the bus time, the NVRAM media time
     * (with write-stream contention), and the miss handler occupancy.
     */
    double epochTime(const ChannelEpoch &epoch) const;

    /**
     * Feed the thermal-throttle automaton one epoch observation: the
     * epoch's drained traffic and its wall-clock duration. Counts the
     * epoch as throttled if the DIMM is (still) engaged afterwards.
     * No-op unless throttling is configured.
     */
    ThrottleState::Transition noteEpochDuration(const ChannelEpoch &epoch,
                                                double dt);

    /** Current NVRAM write-bandwidth throttle multiplier (1.0 = none). */
    double throttleFactor() const { return throttle_.factor(); }
    bool throttled() const { return throttle_.engaged(); }

    /**
     * Close the maintenance epoch: issue the REF commands @p dt covers
     * (tREFI accounting), advance the RowHammer tREFW window, and book
     * the epoch's refresh/scrub/targeted-refresh time into the
     * maintenanceStallNs counter. No-op when maintenance is off.
     */
    void noteMaintenanceEpoch(const ChannelEpoch &epoch, double dt);

    const MaintenanceEngine &maintenance() const { return maint_; }

    const FaultPlan &faultPlan() const { return faultPlan_; }

    PerfCounters &counters() { return counters_; }
    const PerfCounters &counters() const { return counters_; }

    /**
     * Point the request paths' counter bumps at @p sink instead of the
     * channel's own block (nullptr restores it). The shard engine
     * (exec/shard.hh) redirects each channel into a cache-line-aligned
     * per-channel delta block while workers execute an epoch's queued
     * requests, then merges the deltas in fixed channel order at the
     * epoch barrier — so the hot path needs no atomics and the real
     * counters are only ever written by the merging thread.
     */
    void
    redirectCounters(PerfCounters *sink)
    {
        ctr_ = sink ? sink : &counters_;
    }

    CachePolicy &cache() { return *cache_; }
    const CachePolicy &cache() const { return *cache_; }
    NvramDevice &nvram() { return nvram_; }
    const NvramDevice &nvram() const { return nvram_; }
    DramDevice &dram() { return dram_; }
    const DramDevice &dram() const { return dram_; }

    MemoryMode mode() const { return mode_; }
    const ChannelParams &params() const { return params_; }

    /** Reset cache contents and counters (fresh benchmark). */
    void reset();

    /**
     * Register this channel's live stats under @p g: every uncore
     * counter, derived rates, device totals and throttle state, all as
     * formulas reading the channel (no hot-path cost). The channel
     * must not move afterwards — call only once it sits in its final
     * storage.
     */
    void regStats(obs::Group &g);

  private:
    AccessResult handle2lm(const MemRequest &req);
    AccessResult handle1lm(const MemRequest &req, MemPool pool);

    /**
     * Apply a request's DeviceActions to the devices, collecting any
     * media faults the NVRAM draws into @p result.
     */
    void applyActions(const MemRequest &req, const CacheResult &cr,
                      AccessResult &result);

    /** Account one media-fault outcome against counters and @p result. */
    void noteMediaFault(const MediaFault &f, AccessResult &result,
                        bool demand_line, Addr line);

    /**
     * Per-demand-request maintenance work: feed the RowHammer tracker
     * the request's DRAM activations (tag probes included), run the
     * patrol scrubber's cadence tick, walk the ECC escalation ladder on
     * scrub findings, and charge targeted-refresh time to the request.
     */
    void runMaintenance(const MemRequest &req, MemPool pool,
                        AccessResult &result);

    ChannelParams params_;
    MemoryMode mode_;
    DramDevice dram_;
    NvramDevice nvram_;
    std::unique_ptr<CachePolicy> cache_;
    DeviceLatencies lat_;
    PerfCounters counters_;
    /** Active counter sink: &counters_ unless redirectCounters(). */
    PerfCounters *ctr_ = &counters_;
    std::uint64_t epochMisses_ = 0;
    FaultPlan faultPlan_;
    ThrottleState throttle_;
    MaintenanceEngine maint_;
    /** Queue engine; nullptr under the degenerate analytic scheduler. */
    std::unique_ptr<ChannelTxQueue> txq_;
};

} // namespace nvsim

#endif // NVSIM_IMC_CHANNEL_HH
