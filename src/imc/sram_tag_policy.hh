/**
 * @file
 * Set-associative DRAM cache with tags held in controller SRAM
 * ("sram_tag_set_assoc").
 *
 * The paper's Section IV pins much of the 2LM amplification on where
 * the tags live: with tags in the DRAM ECC bits, every lookup costs a
 * DRAM read even when the answer is "miss", and every store needs a
 * tag-check read unless DDO can vouch for residency. This policy
 * models the classic alternative the paper's critique implies: the
 * controller keeps the full tag array in on-die SRAM, so
 *
 *  - lookups are free in device traffic (no tag-probe DRAM read, no
 *    DDO needed — the SRAM answer is always available);
 *  - a read hit is exactly one DRAM data read, a write hit exactly one
 *    DRAM data write;
 *  - a missing write merges the demand data into the fill, costing one
 *    NVRAM fetch plus a single DRAM write (the stock policy pays a
 *    tag probe plus two DRAM writes);
 *  - associativity (DramCacheParams::ways) and within-set replacement
 *    (CachePolicyConfig::replacement, "lru" or "fifo") are knobs, not
 *    fixed by an ECC-bit layout.
 *
 * The cost the model does not charge for — megabytes of SRAM for a
 * 32 GiB cache's tags — is of course the reason real 2LM does not do
 * this; see DESIGN.md section 9.
 */

#ifndef NVSIM_IMC_SRAM_TAG_POLICY_HH
#define NVSIM_IMC_SRAM_TAG_POLICY_HH

#include "imc/dram_cache.hh"

namespace nvsim
{

/** Set-associative, SRAM-tag policy: no device reads for tag checks. */
class SramTagSetAssocPolicy : public DirectMappedTagEccPolicy
{
  public:
    SramTagSetAssocPolicy(const DramCacheParams &params,
                          const CachePolicyConfig &config);

    const char *kindName() const override { return "sram_tag_set_assoc"; }

    CacheResult read(Addr addr) override;
    CacheResult write(Addr addr) override;

    /**
     * With tags in SRAM an uncorrectable DRAM fault can only take out
     * the *data* of a resident line — the tag array is unaffected, so
     * a non-resident probe corrupts nothing the cache still cares
     * about (no collateral way invalidation, unlike tags-in-ECC).
     */
    TagCorruption corruptTag(Addr addr) override;

    /** Read hit: DRAM data read. Read miss: NVRAM fetch only (the SRAM
     *  lookup is off the device critical path). Writes post behind the
     *  DRAM (or, bypassing, NVRAM) write accept. */
    double demandLatency(MemRequestKind kind, const CacheResult &cr,
                         const DeviceLatencies &lat) const override;

    /** One NVRAM fetch per miss; no serial tag-probe DRAM read. */
    double missServiceTime(const DeviceLatencies &lat) const override;

    CausalBreakdown breakdown(MemRequestKind kind, const CacheResult &cr,
                              const DeviceLatencies &lat) const override;

    bool lruReplacement() const { return lru_; }

  private:
    /** Evict the set's victim (writeback if dirty), fetch the line from
     *  NVRAM and install the tag. Unlike the base missHandler this does
     *  NOT count the insert DRAM write — read and write misses account
     *  for it differently (writes merge it with the demand data). */
    WayIdx fill(Addr addr, std::uint64_t set, std::uint64_t tag,
                CacheResult &result);

    bool lru_;  //!< true: LRU within the set; false: FIFO
};

} // namespace nvsim

#endif // NVSIM_IMC_SRAM_TAG_POLICY_HH
