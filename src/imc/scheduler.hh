/**
 * @file
 * Queued channel controller: per-channel read queue, write-pending
 * queue (WPQ) and bank-level parallelism state, with the scheduling
 * decision behind a string-keyed ChannelScheduler registry.
 *
 * The analytic model (the paper's Table I) prices every access at a
 * fixed sum of device latencies, so it cannot say what happens to p99
 * when a channel saturates. Here latency *emerges* from occupancy:
 * the MemorySystem enqueues Transactions whose `service` field is the
 * analytic device cost computed by the cache-policy seam, and the
 * queue engine composes queue wait, bus serialization, row-buffer
 * conflicts, WPQ drain bursts and per-bank refresh windows on top.
 * The queue-off limit is therefore exactly the analytic model — which
 * is also a registry entry ("analytic", the degenerate pass-through
 * scheduler that builds no queue at all), so queue-off runs stay
 * byte-identical to the checked-in goldens.
 *
 * Interface shape follows dramsim3/ramulator2: willAccept() is the
 * backpressure probe, enqueue() hands over a transaction, tick()
 * advances the clock, and a completion callback reports the
 * CompletionInfo timing story. Schedulers: fcfs, read_priority (with
 * write-drain high/low watermarks), frfcfs (row-hit first with a
 * starvation cap).
 */

#ifndef NVSIM_IMC_SCHEDULER_HH
#define NVSIM_IMC_SCHEDULER_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hh"
#include "imc/transaction.hh"
#include "mem/maintenance/maintenance.hh"

namespace nvsim
{

/**
 * The `controller` JSON config block: queued-mode selection and the
 * queue/bank/drain geometry. The default scheduler "analytic" is the
 * degenerate pass-through — no queues are built and every access path
 * behaves exactly as before, byte-for-byte.
 */
struct ControllerConfig
{
    /** Registry key; see ChannelSchedulerRegistry::names(). */
    std::string scheduler = "analytic";
    /** Read-queue entries per channel. */
    unsigned readQueueEntries = 32;
    /** Write-pending-queue entries per channel. */
    unsigned writeQueueEntries = 64;
    /** Banks per channel (bank-level parallelism width). */
    unsigned banks = 16;
    /** Bytes per DRAM row (row-buffer hit granularity). */
    Bytes rowBytes = 8 * kKiB;
    /** WPQ occupancy that starts a write-drain burst. */
    unsigned drainHighWatermark = 48;
    /** WPQ occupancy at which a drain burst stops. */
    unsigned drainLowWatermark = 16;
    /** frfcfs: row hits may bypass an older request at most this many
     *  times before the older request must issue. */
    unsigned starvationCap = 8;
    /** Extra seconds a row-buffer conflict costs (precharge+activate). */
    double bankConflictPenalty = 30e-9;
    /**
     * Offered load in GB/s used to space transaction arrivals inside
     * an epoch. 0 derives it from the run's active thread count times
     * the per-thread issue bandwidth — i.e. the demand the analytic
     * model already assumes.
     */
    double offeredGBs = 0;

    /** Is a real queue engine in the path? */
    bool queued() const { return scheduler != "analytic"; }

    /** Reject unknown schedulers and nonsensical geometry. */
    void validate() const;
};

/** Open-row state of one bank, visible to schedulers. */
struct BankState
{
    double freeAt = 0;            //!< busy until (epoch seconds)
    std::uint64_t openRow = 0;
    bool rowValid = false;        //!< any row open since last refresh
};

/** A transaction staged in a controller queue. */
struct QueuedTx
{
    Transaction tx;
    std::uint64_t seq = 0;        //!< global arrival sequence number
    std::uint32_t bank = 0;
    std::uint64_t row = 0;
    /** Times a younger request issued ahead of this one (frfcfs). */
    std::uint32_t bypassed = 0;
    /** Same-queue occupancy when this transaction arrived. */
    std::uint32_t depthAtEnqueue = 0;
    /** Spent time queued behind an active WPQ drain burst. */
    bool drainStalled = false;
};

/** A scheduler's decision: which queue, which position. */
struct SchedulerPick
{
    bool fromWrites = false;
    std::size_t index = 0;
};

/**
 * The scheduling policy seam: given both queues, the drain-burst flag
 * and the bank state, choose the next transaction to issue. Called
 * only when at least one queue is non-empty; implementations must be
 * deterministic pure functions of their arguments.
 */
class ChannelScheduler
{
  public:
    virtual ~ChannelScheduler() = default;

    /** Registry key this scheduler was constructed under. */
    virtual const char *kindName() const = 0;

    virtual SchedulerPick pick(const std::deque<QueuedTx> &reads,
                               const std::deque<QueuedTx> &writes,
                               bool draining,
                               const std::vector<BankState> &banks,
                               const ControllerConfig &cfg) = 0;
};

/**
 * String-keyed scheduler factory, mirroring CachePolicyRegistry.
 * "analytic" is registered with a factory that returns nullptr: the
 * controller interprets that as "build no queue engine", which is the
 * degenerate scheduler whose output is the analytic model itself.
 */
class ChannelSchedulerRegistry
{
  public:
    using Factory =
        std::unique_ptr<ChannelScheduler> (*)(const ControllerConfig &);

    /** The process-wide registry (built-ins pre-registered). */
    static ChannelSchedulerRegistry &instance();

    /** Register @p kind; re-registration of a known kind is fatal. */
    void add(const std::string &kind, const std::string &description,
             Factory factory);

    bool known(const std::string &kind) const;

    /** Registered kinds, in registration order. */
    std::vector<std::string> names() const;

    /** One-line description of @p kind (empty if unknown). */
    std::string description(const std::string &kind) const;

    /**
     * Construct @p config.scheduler. Unknown kinds are fatal, listing
     * the registered names. Returns nullptr for the degenerate
     * "analytic" entry.
     */
    std::unique_ptr<ChannelScheduler> create(
        const ControllerConfig &config) const;

  private:
    struct Entry
    {
        std::string kind;
        std::string description;
        Factory factory;
    };
    std::vector<Entry> entries_;

    const Entry *find(const std::string &kind) const;
};

/** Queue-engine statistics, harvested into PerfCounters per epoch. */
struct TxQueueStats
{
    double readQueueWait = 0;  //!< summed read enqueue-to-issue seconds
    std::uint64_t bankConflicts = 0;
    std::uint64_t rowBufferHits = 0;
    std::uint64_t writeDrains = 0;  //!< drain bursts entered
    std::uint64_t completedReads = 0;
    std::uint64_t completedWrites = 0;
    std::uint32_t maxReadDepth = 0;
    std::uint32_t maxWriteDepth = 0;
};

/**
 * One channel's queue engine. Single-threaded, like the controller
 * that owns it: the MemorySystem drives it from the deterministic
 * epoch-end drain, so queued-mode output is byte-identical at any
 * --jobs / --shard-threads by construction.
 *
 * Time model: the engine keeps an epoch-relative clock. enqueue()
 * advances it to the transaction's arrival and, when the target queue
 * is full, services queued work first — backpressure surfaces as
 * queue wait, exactly the WillAcceptTransaction contract. Each issue
 * start is max(clock, bus free, bank free, arrival); a row mismatch
 * adds the conflict penalty; refresh blocks one bank per tREFI/banks
 * in a staggered round-robin (per-bank refresh windows, not the
 * analytic epoch-mean stall).
 */
class ChannelTxQueue
{
  public:
    ChannelTxQueue(const ControllerConfig &config, double busBandwidth,
                   const RefreshConfig &refresh);

    /** Backpressure probe: room in @p kind's queue right now? */
    bool willAccept(TransactionKind kind) const;

    /**
     * Hand over a transaction. Advances the clock to tx.arrival; when
     * the target queue is full, services queued transactions until a
     * slot frees (their completions fire from inside this call).
     */
    void enqueue(const Transaction &tx);

    /** Service queued transactions whose issue time is <= @p until. */
    void tick(double until);

    /** Service everything queued (epoch barrier / quiesce). */
    void drainAll();

    /** Completion callback; fires once per transaction, issue order. */
    void setCompletionHandler(CompletionHandler handler);

    /**
     * Reset the epoch-relative time state (clock, bus, banks, refresh
     * cadence) after a full drain; queued-but-unserved work would be
     * orphaned, so callers drainAll() first. Stats are preserved.
     */
    void resetEpoch();

    /** Harvest and zero the accumulated statistics. */
    TxQueueStats takeStats();

    std::size_t readDepth() const { return reads_.size(); }
    std::size_t writeDepth() const { return writes_.size(); }
    bool draining() const { return draining_; }
    double clock() const { return clock_; }
    const ChannelScheduler &scheduler() const { return *sched_; }

  private:
    /** Issue the scheduler's next pick; fires its completion. */
    void serviceOne();

    /** Apply staggered per-bank refresh events up to time @p t. */
    void applyRefresh(double t);

    std::uint32_t bankOf(Addr addr) const;
    std::uint64_t rowOf(Addr addr) const;

    ControllerConfig cfg_;
    double busBandwidth_;
    RefreshConfig refresh_;
    std::unique_ptr<ChannelScheduler> sched_;
    CompletionHandler onComplete_;

    std::deque<QueuedTx> reads_;
    std::deque<QueuedTx> writes_;
    std::vector<BankState> banks_;
    double clock_ = 0;        //!< last issue start (epoch seconds)
    double busFreeAt_ = 0;
    double refreshAt_ = 0;    //!< next staggered refresh event time
    std::uint32_t refreshBank_ = 0;
    std::uint64_t seq_ = 0;
    bool draining_ = false;

    TxQueueStats stats_;
};

} // namespace nvsim

#endif // NVSIM_IMC_SCHEDULER_HH
