/**
 * @file
 * Dirty Data Optimization (DDO) policies.
 *
 * Section IV-C of the paper observes that the IMC sometimes elides the
 * tag-check DRAM read for LLC writes, forwarding them straight to DRAM
 * (1 access instead of 2). The paper rules out an inclusive cache and
 * concludes "we are not sure the exact mechanism driving this
 * optimization". We therefore model the optimization as a pluggable
 * policy:
 *
 *  - None:          never elide (hypothetical hardware without DDO).
 *  - RecentTracker: the IMC remembers the last N lines its miss handler
 *                   inserted (invalidated on conflicting eviction); a
 *                   write to a remembered line needs no tag check. This
 *                   reproduces both paper observations: read-modify-write
 *                   writebacks get DDO (their read miss inserted the line
 *                   recently), while pure nontemporal write-hit streams
 *                   do not (no recent insert).
 *  - Oracle:        elide whenever the line is resident (an upper bound
 *                   used for ablation).
 */

#ifndef NVSIM_IMC_DDO_HH
#define NVSIM_IMC_DDO_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "core/types.hh"

namespace nvsim
{

/** Which DDO mechanism to model. */
enum class DdoMode : std::uint8_t { None, RecentTracker, Oracle };

const char *ddoModeName(DdoMode mode);

/** DDO configuration. */
struct DdoConfig
{
    DdoMode mode = DdoMode::RecentTracker;
    /** RecentTracker capacity (entries); rounded up to a power of two. */
    std::uint32_t trackerEntries = 1u << 16;
};

/**
 * Interface the DramCache consults on every LLC write, and notifies of
 * inserts/evictions so a tracker can stay consistent.
 */
class DdoPolicy
{
  public:
    virtual ~DdoPolicy() = default;

    /**
     * May the tag check be elided for a write to @p line?
     * @param line     line-aligned address being written
     * @param resident true iff the line is actually present in the cache
     */
    virtual bool check(Addr line, bool resident) = 0;

    /** The miss handler inserted @p line into the DRAM cache. */
    virtual void noteInsert(Addr line) = 0;

    /** @p line was evicted from the DRAM cache. */
    virtual void noteEvict(Addr line) = 0;

    static std::unique_ptr<DdoPolicy> create(const DdoConfig &config);
};

/** DDO disabled. */
class NoneDdo : public DdoPolicy
{
  public:
    bool check(Addr, bool) override { return false; }
    void noteInsert(Addr) override {}
    void noteEvict(Addr) override {}
};

/** Perfect residency knowledge (ablation upper bound). */
class OracleDdo : public DdoPolicy
{
  public:
    bool check(Addr, bool resident) override { return resident; }
    void noteInsert(Addr) override {}
    void noteEvict(Addr) override {}
};

/**
 * Bounded direct-mapped table of recently inserted lines. Entries decay
 * naturally as other inserts alias onto the same slot, giving the
 * "recent" temporal window the paper's measurements imply.
 */
class RecentTrackerDdo : public DdoPolicy
{
  public:
    explicit RecentTrackerDdo(std::uint32_t entries);

    bool check(Addr line, bool resident) override;
    void noteInsert(Addr line) override;
    void noteEvict(Addr line) override;

    std::uint32_t entries() const { return mask_ + 1; }

  private:
    std::uint32_t slot(Addr line) const;

    std::uint32_t mask_;
    std::vector<Addr> table_;  //!< line address + 1, or 0 for empty
};

} // namespace nvsim

#endif // NVSIM_IMC_DDO_HH
