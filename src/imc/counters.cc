#include "imc/counters.hh"

namespace nvsim
{

void
PerfCounters::addOutcome(MemRequestKind kind, CacheOutcome outcome)
{
    if (kind == MemRequestKind::LlcRead)
        ++llcReads;
    else
        ++llcWrites;

    switch (outcome) {
      case CacheOutcome::Hit:
        ++tagHit;
        break;
      case CacheOutcome::MissClean:
        ++tagMissClean;
        break;
      case CacheOutcome::MissDirty:
        ++tagMissDirty;
        break;
      case CacheOutcome::DdoHit:
        ++ddoHit;
        break;
      case CacheOutcome::Uncached:
        break;
    }
}

PerfCounters &
PerfCounters::operator+=(const PerfCounters &o)
{
    dramRead += o.dramRead;
    dramWrite += o.dramWrite;
    nvramRead += o.nvramRead;
    nvramWrite += o.nvramWrite;
    tagHit += o.tagHit;
    tagMissClean += o.tagMissClean;
    tagMissDirty += o.tagMissDirty;
    ddoHit += o.ddoHit;
    llcReads += o.llcReads;
    llcWrites += o.llcWrites;
    correctableErrors += o.correctableErrors;
    uncorrectableErrors += o.uncorrectableErrors;
    tagEccInvalidates += o.tagEccInvalidates;
    retries += o.retries;
    throttledEpochs += o.throttledEpochs;
    return *this;
}

PerfCounters
PerfCounters::delta(const PerfCounters &o) const
{
    PerfCounters d;
    d.dramRead = dramRead - o.dramRead;
    d.dramWrite = dramWrite - o.dramWrite;
    d.nvramRead = nvramRead - o.nvramRead;
    d.nvramWrite = nvramWrite - o.nvramWrite;
    d.tagHit = tagHit - o.tagHit;
    d.tagMissClean = tagMissClean - o.tagMissClean;
    d.tagMissDirty = tagMissDirty - o.tagMissDirty;
    d.ddoHit = ddoHit - o.ddoHit;
    d.llcReads = llcReads - o.llcReads;
    d.llcWrites = llcWrites - o.llcWrites;
    d.correctableErrors = correctableErrors - o.correctableErrors;
    d.uncorrectableErrors = uncorrectableErrors - o.uncorrectableErrors;
    d.tagEccInvalidates = tagEccInvalidates - o.tagEccInvalidates;
    d.retries = retries - o.retries;
    d.throttledEpochs = throttledEpochs - o.throttledEpochs;
    return d;
}

double
PerfCounters::amplification() const
{
    std::uint64_t dem = demand();
    if (dem == 0)
        return 0;
    return static_cast<double>(deviceAccesses()) /
           static_cast<double>(dem);
}

std::map<std::string, std::uint64_t>
PerfCounters::named() const
{
    return {
        {"dram_read", dramRead},
        {"dram_write", dramWrite},
        {"nvram_read", nvramRead},
        {"nvram_write", nvramWrite},
        {"tag_hit", tagHit},
        {"tag_miss_clean", tagMissClean},
        {"tag_miss_dirty", tagMissDirty},
        {"ddo_hit", ddoHit},
        {"llc_reads", llcReads},
        {"llc_writes", llcWrites},
        {"correctable_errors", correctableErrors},
        {"uncorrectable_errors", uncorrectableErrors},
        {"tag_ecc_invalidates", tagEccInvalidates},
        {"retries", retries},
        {"throttled_epochs", throttledEpochs},
    };
}

} // namespace nvsim
