#include "imc/counters.hh"

namespace nvsim
{

void
PerfCounters::addOutcome(MemRequestKind kind, CacheOutcome outcome)
{
    if (kind == MemRequestKind::LlcRead)
        ++llcReads;
    else
        ++llcWrites;

    switch (outcome) {
      case CacheOutcome::Hit:
        ++tagHit;
        break;
      case CacheOutcome::MissClean:
        ++tagMissClean;
        break;
      case CacheOutcome::MissDirty:
        ++tagMissDirty;
        break;
      case CacheOutcome::DdoHit:
        ++ddoHit;
        break;
      case CacheOutcome::Uncached:
        break;
    }
}

PerfCounters &
PerfCounters::operator+=(const PerfCounters &o)
{
#define NVSIM_PERF_ADD(member, name, desc) member += o.member;
    NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_ADD)
#undef NVSIM_PERF_ADD
    return *this;
}

PerfCounters
PerfCounters::delta(const PerfCounters &o) const
{
    PerfCounters d;
#define NVSIM_PERF_SUB(member, name, desc) d.member = member - o.member;
    NVSIM_PERF_COUNTER_FIELDS(NVSIM_PERF_SUB)
#undef NVSIM_PERF_SUB
    return d;
}

double
PerfCounters::amplification() const
{
    std::uint64_t dem = demand();
    if (dem == 0)
        return 0;
    return static_cast<double>(deviceAccesses()) /
           static_cast<double>(dem);
}

std::map<std::string, std::uint64_t>
PerfCounters::named() const
{
    std::map<std::string, std::uint64_t> m;
    forEachField([&](const char *name, const char *, std::uint64_t v) {
        m.emplace(name, v);
    });
    return m;
}

} // namespace nvsim
