#include "exec/shard.hh"

#include "core/hostprof.hh"
#include "core/logging.hh"

namespace nvsim::exec
{

ShardPool::ShardPool(unsigned threads) : threads_(threads ? threads : 1)
{
    if (threads_ < 2)
        return;
    workers_.reserve(threads_);
    for (unsigned i = 0; i < threads_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ShardPool::~ShardPool()
{
    if (workers_.empty())
        return;
    {
        std::lock_guard<std::mutex> lock(m_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ShardPool::run(std::size_t n, const std::function<void(std::size_t)> &task)
{
    if (n == 0)
        return;
    if (workers_.empty()) {
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return;
    }

    std::uint64_t batch;
    {
        std::lock_guard<std::mutex> lock(m_);
        task_ = &task;
        batchSize_ = n;
        completed_ = 0;
        batch = ++batchId_;
        claim_.store(stamp(batch, 0), std::memory_order_relaxed);
    }
    workCv_.notify_all();

    // The caller helps: with more channels than workers the extra
    // claim keeps the pool busy, and with the common one-epoch batch
    // it avoids an idle producer thread.
    while (true) {
        std::size_t i = claimIndex(batch, n);
        if (i == SIZE_MAX)
            break;
        task(i);
        std::lock_guard<std::mutex> lock(m_);
        ++completed_;
    }

    std::unique_lock<std::mutex> lock(m_);
    doneCv_.wait(lock, [this] { return completed_ == batchSize_; });
    task_ = nullptr;
}

void
ShardPool::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        const std::function<void(std::size_t)> *task = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lock(m_);
            workCv_.wait(lock, [&] {
                return stop_ || (task_ != nullptr && batchId_ != seen);
            });
            if (stop_)
                return;
            seen = batchId_;
            task = task_;
            n = batchSize_;
        }
        // claimIndex() refuses stale claims: once a newer run() has
        // restamped claim_, this worker's loop ends without touching
        // the (by then destroyed) task object it copied for `seen`.
        while (true) {
            std::size_t i = claimIndex(seen, n);
            if (i == SIZE_MAX)
                break;
            (*task)(i);
            std::lock_guard<std::mutex> lock(m_);
            if (++completed_ == n)
                doneCv_.notify_all();
        }
    }
}

ShardEngine::ShardEngine(unsigned threads, unsigned channels)
    : pool_(threads), queues_(channels), cursor_(channels, 0),
      deltas_(channels)
{
}

void
ShardEngine::execute(ChannelController *channels)
{
    HostPhase phase("shard.exec");
    pool_.run(queues_.size(), [&](std::size_t c) {
        std::vector<ShardOp> &q = queues_[c];
        if (q.empty())
            return;
        ChannelController &ch = channels[c];
        // Counter bumps go to this channel's aligned delta block: the
        // worker's hot-path stores never touch another channel's cache
        // lines, and the merge below owns the real counters.
        ch.redirectCounters(&deltas_[c].block);
        for (ShardOp &op : q) {
            switch (op.mode) {
              case ShardOpMode::Fast:
                op.latency =
                    ch.handleFast(op.kind, op.local, op.thread, op.pool);
                break;
              case ShardOpMode::Run1lm:
                op.latency = ch.handleFastRun1lm(op.kind, op.local,
                                                 op.lines, op.thread,
                                                 op.pool);
                break;
              case ShardOpMode::Full: {
                MemRequest req{op.kind, op.local, op.thread};
                AccessResult res = ch.handle(req, op.pool);
                op.latency = res.latency;
                op.fault = res.fault;
                break;
              }
            }
        }
        ch.redirectCounters(nullptr);
    });

    // Deterministic merge: fixed channel order, on the calling thread,
    // after the batch barrier — never inside the epoch.
    for (std::size_t c = 0; c < queues_.size(); ++c) {
        channels[c].counters() += deltas_[c].block;
        deltas_[c].block = PerfCounters{};
    }
}

void
ShardEngine::clear()
{
    for (auto &q : queues_)
        q.clear();
    for (auto &c : cursor_)
        c = 0;
    order_.clear();
    dmaPoison_.clear();
}

} // namespace nvsim::exec
