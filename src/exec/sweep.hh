/**
 * @file
 * Parallel sweep engine.
 *
 * Every bench binary sweeps independent simulation configurations:
 * each sweep point builds its own MemorySystem, runs a workload and
 * reports a result. The points share nothing, so the sweep is
 * embarrassingly parallel — but the output (console tables, CSV rows,
 * obs artifacts) must stay in declaration order so a parallel run is
 * byte-identical to a serial one.
 *
 * SweepRunner provides exactly that contract:
 *
 *  - a fixed pool of worker threads created once per runner;
 *  - map(n, fn) evaluates fn(0..n-1) concurrently, storing each result
 *    at its own index, and returns the vector once every task is done
 *    (completion order never leaks into the collection order);
 *  - exceptions are caught per task and the lowest-index one is
 *    rethrown after the whole batch has finished, so a failing point
 *    cannot corrupt another point's slot;
 *  - jobs == 1 degenerates to an inline, in-order loop on the calling
 *    thread with no pool at all — bit-for-bit today's serial behavior.
 *
 * Tasks must be self-contained: own their MemorySystem, buffer their
 * console/CSV output into their result, and never touch shared mutable
 * state. The bench harness (bench/bench_common.hh) parses --jobs=N and
 * forces jobs = 1 when an observability session is enabled, since the
 * obs Session serializes runs on one timeline.
 */

#ifndef NVSIM_EXEC_SWEEP_HH
#define NVSIM_EXEC_SWEEP_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nvsim::exec
{

/** Default worker count: the host's hardware concurrency (min 1). */
unsigned hardwareJobs();

/** Fixed-size thread pool running indexed task batches in order. */
class SweepRunner
{
  public:
    /**
     * @param jobs  worker threads; 0 means hardwareJobs(). With
     *              jobs == 1 no threads are created and every map()
     *              runs inline on the calling thread.
     */
    explicit SweepRunner(unsigned jobs = 0);
    ~SweepRunner();

    SweepRunner(const SweepRunner &) = delete;
    SweepRunner &operator=(const SweepRunner &) = delete;

    unsigned jobs() const { return jobs_; }

    /**
     * Evaluate fn(i) for every i in [0, n), collecting results by
     * index. Blocks until all n tasks completed. Every task runs even
     * if an earlier one throws; afterwards the lowest-index captured
     * exception (if any) is rethrown. R must be default-constructible
     * and movable.
     */
    template <typename R, typename F>
    std::vector<R>
    map(std::size_t n, F &&fn)
    {
        std::vector<R> out(n);
        std::vector<std::exception_ptr> errors(n);
        runIndexed(n, [&](std::size_t i) {
            try {
                out[i] = fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
        rethrowFirst(errors);
        return out;
    }

    /** Side-effect-only variant of map() (same ordering contract). */
    template <typename F>
    void
    forEach(std::size_t n, F &&fn)
    {
        std::vector<std::exception_ptr> errors(n);
        runIndexed(n, [&](std::size_t i) {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
        rethrowFirst(errors);
    }

  private:
    /** Dispatch one batch of n tasks; task() must not throw. */
    void runIndexed(std::size_t n,
                    const std::function<void(std::size_t)> &task);

    static void rethrowFirst(std::vector<std::exception_ptr> &errors);

    void workerLoop();

    unsigned jobs_;
    std::vector<std::thread> workers_;

    // Batch state, guarded by m_ except for the atomic claim index.
    std::mutex m_;
    std::condition_variable workCv_;  //!< workers wait here for a batch
    std::condition_variable doneCv_;  //!< map() waits here for the batch
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t batchSize_ = 0;
    std::uint64_t batchId_ = 0;  //!< bumped per runIndexed()
    std::size_t completed_ = 0;  //!< tasks finished in current batch
    bool stop_ = false;
    std::atomic<std::size_t> nextIndex_{0};
};

} // namespace nvsim::exec

#endif // NVSIM_EXEC_SWEEP_HH
