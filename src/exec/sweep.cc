#include "exec/sweep.hh"

#include "core/hostprof.hh"

namespace nvsim::exec
{

unsigned
hardwareJobs()
{
    unsigned n = std::thread::hardware_concurrency();
    return n ? n : 1;
}

SweepRunner::SweepRunner(unsigned jobs)
    : jobs_(jobs ? jobs : hardwareJobs())
{
    if (jobs_ <= 1)
        return;  // inline mode: no pool
    workers_.reserve(jobs_);
    for (unsigned i = 0; i < jobs_; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

SweepRunner::~SweepRunner()
{
    {
        std::lock_guard<std::mutex> lk(m_);
        stop_ = true;
    }
    workCv_.notify_all();
    for (std::thread &w : workers_)
        w.join();
}

void
SweepRunner::workerLoop()
{
    std::uint64_t seen = 0;
    for (;;) {
        const std::function<void(std::size_t)> *task = nullptr;
        std::size_t n = 0;
        {
            std::unique_lock<std::mutex> lk(m_);
            workCv_.wait(lk,
                         [&] { return stop_ || batchId_ != seen; });
            if (stop_)
                return;
            seen = batchId_;
            task = task_;
            n = batchSize_;
        }
        for (;;) {
            std::size_t i =
                nextIndex_.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                break;
            (*task)(i);
            std::lock_guard<std::mutex> lk(m_);
            if (++completed_ == n)
                doneCv_.notify_all();
        }
    }
}

void
SweepRunner::runIndexed(std::size_t n,
                        const std::function<void(std::size_t)> &task)
{
    if (n == 0)
        return;
    HostPhase phase("sweep.batch");
    if (jobs_ <= 1 || n == 1) {
        // Serial mode: run inline, in index order, on this thread.
        for (std::size_t i = 0; i < n; ++i)
            task(i);
        return;
    }
    std::unique_lock<std::mutex> lk(m_);
    task_ = &task;
    batchSize_ = n;
    completed_ = 0;
    nextIndex_.store(0, std::memory_order_relaxed);
    ++batchId_;
    workCv_.notify_all();
    doneCv_.wait(lk, [&] { return completed_ == n; });
    task_ = nullptr;
    batchSize_ = 0;
}

void
SweepRunner::rethrowFirst(std::vector<std::exception_ptr> &errors)
{
    for (std::exception_ptr &e : errors) {
        if (e)
            std::rethrow_exception(e);
    }
}

} // namespace nvsim::exec
