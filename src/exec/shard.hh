/**
 * @file
 * Intra-run channel shard engine.
 *
 * SweepRunner (exec/sweep.hh) parallelizes *across* sweep points; this
 * engine parallelizes *inside* one run. The epoch-analytic model makes
 * channels independent between epoch boundaries: every piece of
 * channel state — the 2LM cache policy, the DRAM/NVRAM devices, the
 * per-channel fault RNG stream, the scrub and RowHammer engines, the
 * PerfCounters block — belongs to exactly one ChannelController, and
 * `now_` only advances when MemorySystem::finishEpoch() closes the
 * epoch. So a run can record its channel work, execute it on a worker
 * pool with one thread owning each channel, and join at the epoch
 * barrier — as long as the handful of *global* effects (the
 * floating-point accumulation into epochLatencyWork_, the telemetry
 * latency sketch, poison tracking and the FaultLog) are applied in the
 * original arrival order.
 *
 * That is the record-and-replay contract implemented here:
 *
 *  - the calling thread runs the front end (LLC, translation, epoch
 *    byte accounting) as usual, but instead of calling into the
 *    ChannelController it pushes a ShardOp into the target channel's
 *    queue and an entry into a global arrival-order log;
 *  - execute() runs every channel's queued ops in queue order on the
 *    worker pool (one channel never splits across threads, so
 *    per-channel RNG/scrub/RowHammer sequences are untouched), each
 *    worker writing its counter bumps into a cache-line-aligned
 *    per-channel PerfCounterDelta block — no atomics or locks inside
 *    an epoch — and then merges the delta blocks into the channels'
 *    real counters in fixed channel order;
 *  - drain() replays the arrival-order log on the calling thread,
 *    handing each op's recorded latency/fault result (and the LLC-hit
 *    and DMA-poison markers) back to MemorySystem, which applies the
 *    global side effects in exactly the order the serial engine would
 *    have.
 *
 * Floating-point addition is not associative, so the replay — not a
 * per-channel partial sum — is what keeps counters, CSVs, telemetry
 * JSON and traces byte-identical at any --shard-threads=N, the same
 * contract --jobs=N established for sweeps (DESIGN.md section 13).
 */

#ifndef NVSIM_EXEC_SHARD_HH
#define NVSIM_EXEC_SHARD_HH

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "imc/channel.hh"

namespace nvsim::exec
{

/**
 * Persistent worker pool for channel batches. The same dispatch
 * protocol as SweepRunner (mutex + condition variables, an atomic
 * claim index, results synchronized by the batch-completion barrier),
 * but owned by one MemorySystem and reused every epoch, so the only
 * per-epoch cost is one wakeup/join round. Tasks must not throw: a
 * channel batch has nowhere safe to surface an exception mid-epoch.
 */
class ShardPool
{
  public:
    /** @param threads worker threads; values < 2 run batches inline. */
    explicit ShardPool(unsigned threads);
    ~ShardPool();

    ShardPool(const ShardPool &) = delete;
    ShardPool &operator=(const ShardPool &) = delete;

    unsigned threads() const { return threads_; }

    /** Run task(0..n-1) across the pool; returns when all are done. */
    void run(std::size_t n, const std::function<void(std::size_t)> &task);

  private:
    void workerLoop();

    unsigned threads_;
    std::vector<std::thread> workers_;

    std::mutex m_;
    std::condition_variable workCv_;
    std::condition_variable doneCv_;
    const std::function<void(std::size_t)> *task_ = nullptr;
    std::size_t batchSize_ = 0;
    std::uint64_t batchId_ = 0;
    std::size_t completed_ = 0;
    bool stop_ = false;
    /**
     * Work claims, batch-stamped: (batchId mod 2^32) << 32 | next
     * index. A single word makes "claim the next index *of my batch*"
     * one CAS — a worker that woke for an earlier batch can never
     * claim (and run its dangling task pointer on) an index that a
     * newer run() reset, because the stamp no longer matches.
     */
    std::atomic<std::uint64_t> claim_{0};

    static std::uint64_t
    stamp(std::uint64_t batch, std::size_t index)
    {
        return (batch << 32) | static_cast<std::uint32_t>(index);
    }

    /**
     * Claim the next index of @p batch, or SIZE_MAX when the batch is
     * exhausted or no longer current. @p n is the batch's size.
     */
    std::size_t
    claimIndex(std::uint64_t batch, std::size_t n)
    {
        std::uint64_t cur = claim_.load(std::memory_order_relaxed);
        while (true) {
            if ((cur >> 32) != (batch & 0xffffffffu))
                return SIZE_MAX;
            const std::size_t i = cur & 0xffffffffu;
            if (i >= n)
                return SIZE_MAX;
            if (claim_.compare_exchange_weak(cur, cur + 1,
                                             std::memory_order_relaxed))
                return i;
        }
    }
};

/** Which ChannelController entry point executes a recorded op. */
enum class ShardOpMode : std::uint8_t {
    Full,    //!< handle(): reference path, fault/maintenance plumbing
    Fast,    //!< handleFast(): one line, batched 2LM path
    Run1lm,  //!< handleFastRun1lm(): a coalesced 1LM device run
};

/**
 * One recorded channel request. The front end fills the routing
 * fields; the worker executing the owning channel's queue fills
 * `latency` (and `fault` for Full ops) from the controller's result.
 */
struct ShardOp
{
    Addr local = 0;            //!< channel-local line address
    Addr phys = 0;             //!< physical line (poison/fault records)
    std::uint64_t lines = 1;   //!< run length (Run1lm), else 1
    double latency = 0;        //!< result: per-line demand latency
    RequestFaults fault;       //!< result: fault side effects (Full)
    MemRequestKind kind = MemRequestKind::LlcRead;
    MemPool pool = MemPool::Nvram;
    std::uint16_t thread = 0;
    ShardOpMode mode = ShardOpMode::Fast;
    bool chargeDemand = true;
};

/**
 * Per-channel counter delta block. Cache-line aligned so adjacent
 * channels' deltas never false-share while workers bump them; the
 * block itself is the X-macro-generated PerfCounters, so the merge is
 * the generated operator+= in fixed channel order.
 */
struct alignas(64) PerfCounterDelta
{
    PerfCounters block;
};

/** The record side of the engine: queues plus the arrival-order log. */
class ShardEngine
{
  public:
    ShardEngine(unsigned threads, unsigned channels);

    unsigned threads() const { return pool_.threads(); }

    /** Any recorded work not yet executed and drained? */
    bool pending() const { return !order_.empty(); }

    /** Record one channel request in arrival order. */
    void
    pushOp(unsigned ch, const ShardOp &op)
    {
        queues_[ch].push_back(op);
        order_.push_back(static_cast<std::uint32_t>(ch));
    }

    /** Record an LLC hit's latency contribution in arrival order. */
    void pushLlcHit() { order_.push_back(kLlcHit); }

    /** Record a DMA poison-propagation check in arrival order. */
    void
    pushDmaPoison(Addr src, Addr dst)
    {
        dmaPoison_.push_back({src, dst});
        order_.push_back(kDmaPoison);
    }

    /**
     * Parallel phase: execute every queued op against its channel in
     * queue order, one worker per channel, counters redirected into
     * the per-channel delta blocks; then (serially, back on the
     * calling thread) merge the deltas into the channels' real
     * counters in fixed channel order.
     */
    void execute(ChannelController *channels);

    /**
     * Ordered replay: after execute(), walk the arrival-order log and
     * hand every record to its callback in original program order —
     * op_fn(channel_index, op) for channel requests, hit_fn() for LLC
     * hits, dma_fn(src, dst) for DMA poison checks. Clears all queues.
     */
    template <typename OpFn, typename HitFn, typename DmaFn>
    void
    drain(OpFn &&op_fn, HitFn &&hit_fn, DmaFn &&dma_fn)
    {
        std::size_t dma_at = 0;
        for (std::uint32_t rec : order_) {
            if (rec == kLlcHit) {
                hit_fn();
            } else if (rec == kDmaPoison) {
                dma_fn(dmaPoison_[dma_at].src, dmaPoison_[dma_at].dst);
                ++dma_at;
            } else {
                op_fn(rec, queues_[rec][cursor_[rec]++]);
            }
        }
        clear();
    }

  private:
    void clear();

    static constexpr std::uint32_t kLlcHit = 0xffffffffu;
    static constexpr std::uint32_t kDmaPoison = 0xfffffffeu;

    struct DmaPoisonRec
    {
        Addr src;
        Addr dst;
    };

    ShardPool pool_;
    std::vector<std::vector<ShardOp>> queues_;  //!< per channel
    std::vector<std::size_t> cursor_;           //!< drain position
    std::vector<PerfCounterDelta> deltas_;      //!< per channel
    std::vector<std::uint32_t> order_;          //!< arrival-order log
    std::vector<DmaPoisonRec> dmaPoison_;
};

} // namespace nvsim::exec

#endif // NVSIM_EXEC_SHARD_HH
