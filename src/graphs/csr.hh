/**
 * @file
 * Compressed sparse row graph storage, matching the layout Galois'
 * graph-converter produces: a 64-bit offsets array indexed by node and
 * a 32-bit edge-destination array. The binary size reported by
 * bytes() is what determines whether a graph fits in the DRAM cache —
 * the pivot of the paper's Figure 7.
 */

#ifndef NVSIM_GRAPHS_CSR_HH
#define NVSIM_GRAPHS_CSR_HH

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hh"

namespace nvsim::graphs
{

using Node = std::uint32_t;

/** An edge list entry. */
using Edge = std::pair<Node, Node>;

/** Immutable CSR graph. */
class CsrGraph
{
  public:
    CsrGraph() = default;

    /**
     * Build from an edge list. Self-loops are kept; duplicates are
     * kept (multigraphs are fine for bandwidth studies, as with the
     * graph500 kronecker generator).
     * @param num_nodes  node-id space size
     * @param edges      directed edges (src, dst)
     * @param symmetrize also insert every reverse edge
     */
    static CsrGraph fromEdges(Node num_nodes, std::vector<Edge> edges,
                              bool symmetrize = false);

    Node numNodes() const { return numNodes_; }
    std::uint64_t numEdges() const { return edges_.size(); }

    std::uint64_t
    degree(Node v) const
    {
        return offsets_[v + 1] - offsets_[v];
    }

    /** Out-neighbors of @p v. */
    std::span<const Node>
    neighbors(Node v) const
    {
        return {edges_.data() + offsets_[v],
                edges_.data() + offsets_[v + 1]};
    }

    std::uint64_t edgeBegin(Node v) const { return offsets_[v]; }
    std::uint64_t edgeEnd(Node v) const { return offsets_[v + 1]; }
    Node edgeDest(std::uint64_t e) const { return edges_[e]; }

    /** Node with the maximum out-degree (the paper's bfs source). */
    Node maxDegreeNode() const;

    /** On-disk / in-memory binary size: offsets + edges. */
    Bytes
    bytes() const
    {
        return offsets_.size() * sizeof(std::uint64_t) +
               edges_.size() * sizeof(Node);
    }

    Bytes offsetsBytes() const
    {
        return offsets_.size() * sizeof(std::uint64_t);
    }
    Bytes edgesBytes() const { return edges_.size() * sizeof(Node); }

  private:
    Node numNodes_ = 0;
    std::vector<std::uint64_t> offsets_;  //!< numNodes_ + 1
    std::vector<Node> edges_;
};

} // namespace nvsim::graphs

#endif // NVSIM_GRAPHS_CSR_HH
