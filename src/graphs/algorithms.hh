/**
 * @file
 * The four lonestar kernels the paper evaluates (Section VI-B):
 * breadth-first search, connected components, k-core decomposition and
 * pagerank-push. Each runs against a GraphWorkload so every node,
 * offset, edge and property access is mirrored into the simulated
 * memory system. Worklists/queues are host-side (their traffic is
 * negligible next to the edge and property streams).
 */

#ifndef NVSIM_GRAPHS_ALGORITHMS_HH
#define NVSIM_GRAPHS_ALGORITHMS_HH

#include <cstdint>

#include "graphs/runner.hh"

namespace nvsim::graphs
{

/** Per-algorithm outcome, before the runner attaches counters/time. */
struct AlgoOutcome
{
    std::uint64_t rounds = 0;
    std::uint64_t answer = 0;  //!< e.g. nodes visited / components
};

/** BFS from the maximum out-degree node (the paper's source choice). */
AlgoOutcome runBfs(GraphWorkload &w);

/** Connected components by label propagation (Shiloach-Vishkin style). */
AlgoOutcome runCc(GraphWorkload &w);

/** k-core decomposition by iterative peeling. */
AlgoOutcome runKCore(GraphWorkload &w, unsigned k);

/** Round-based pagerank with push-style updates. */
AlgoOutcome runPageRank(GraphWorkload &w, unsigned rounds);

/**
 * Single-source shortest paths (Bellman-Ford style rounds over an
 * active worklist) with synthetic deterministic edge weights — the
 * classic fifth lonestar kernel, here as an extension beyond the
 * paper's four. Weights live in their own array, so sssp adds another
 * sequential stream to the access mix.
 */
AlgoOutcome runSssp(GraphWorkload &w);

/** Deterministic synthetic weight of edge @p e (1..255). */
std::uint32_t syntheticWeight(std::uint64_t e);

} // namespace nvsim::graphs

#endif // NVSIM_GRAPHS_ALGORITHMS_HH
