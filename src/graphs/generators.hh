/**
 * @file
 * Synthetic graph generators standing in for the paper's inputs:
 *
 *  - kron30 (a graph500 Kronecker graph) -> kronecker(): the standard
 *    R-MAT/Kronecker recursive generator with graph500 probabilities
 *    (A=0.57, B=0.19, C=0.19), random node permutation, symmetrized.
 *  - wdc12 (Web Data Commons 2012 hyperlink graph, the largest public
 *    graph) -> webGraph(): a power-law web-like generator with host
 *    locality: Zipf out-degrees, most links landing in a local window
 *    (same-host pages) and the rest on popular global targets.
 *
 * Both are deterministic under a seed; sizes are chosen by the benches
 * to preserve the paper's ratios against the scaled DRAM cache.
 */

#ifndef NVSIM_GRAPHS_GENERATORS_HH
#define NVSIM_GRAPHS_GENERATORS_HH

#include "graphs/csr.hh"

namespace nvsim::graphs
{

/** graph500-style Kronecker generator parameters. */
struct KroneckerParams
{
    unsigned scale = 18;       //!< 2^scale nodes
    unsigned edgeFactor = 16;  //!< edges per node (before symmetrize)
    double a = 0.57, b = 0.19, c = 0.19;
    std::uint64_t seed = 1;
    bool symmetrize = true;
};

CsrGraph kronecker(const KroneckerParams &params);

/** Web-like power-law generator parameters. */
struct WebGraphParams
{
    Node numNodes = 1u << 20;
    double avgDegree = 29;      //!< wdc12 has ~36 edges/page
    double zipfExponent = 2.1;  //!< out-degree tail
    std::uint64_t maxDegree = 10000;
    double localFraction = 0.7; //!< links to nearby pages (same host)
    Node localWindow = 4096;
    std::uint64_t seed = 7;
};

CsrGraph webGraph(const WebGraphParams &params);

} // namespace nvsim::graphs

#endif // NVSIM_GRAPHS_GENERATORS_HH
