#include "graphs/generators.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "core/logging.hh"
#include "core/rng.hh"

namespace nvsim::graphs
{

CsrGraph
kronecker(const KroneckerParams &params)
{
    Node n = Node{1} << params.scale;
    std::uint64_t m =
        static_cast<std::uint64_t>(params.edgeFactor) * n;
    Rng rng(params.seed);

    double ab = params.a + params.b;
    double c_norm = params.c / (1.0 - ab);

    std::vector<Edge> edges;
    edges.reserve(m);
    for (std::uint64_t e = 0; e < m; ++e) {
        Node src = 0, dst = 0;
        for (unsigned bit = 0; bit < params.scale; ++bit) {
            double r = rng.uniform();
            bool src_bit, dst_bit;
            if (r < ab) {
                src_bit = false;
                dst_bit = r >= params.a;
            } else {
                src_bit = true;
                dst_bit = (r - ab) / (1.0 - ab) >= c_norm;
            }
            src |= Node{src_bit} << bit;
            dst |= Node{dst_bit} << bit;
        }
        edges.emplace_back(src, dst);
    }

    // Permute node ids so degree does not correlate with id, as
    // graph500 requires.
    std::vector<Node> perm(n);
    std::iota(perm.begin(), perm.end(), Node{0});
    for (Node i = n; i > 1; --i) {
        Node j = static_cast<Node>(rng.below(i));
        std::swap(perm[i - 1], perm[j]);
    }
    for (Edge &e : edges) {
        e.first = perm[e.first];
        e.second = perm[e.second];
    }

    return CsrGraph::fromEdges(n, std::move(edges), params.symmetrize);
}

CsrGraph
webGraph(const WebGraphParams &params)
{
    Node n = params.numNodes;
    Rng rng(params.seed);

    // Zipf-distributed out-degrees via inverse transform on a bounded
    // power law: P(d) ~ d^-alpha for d in [1, maxDegree].
    double alpha = params.zipfExponent;
    double dmax = static_cast<double>(params.maxDegree);
    auto sample_degree = [&]() {
        double u = rng.uniform();
        // Inverse CDF of the continuous bounded Pareto distribution.
        double one_m = 1.0 - alpha;
        double lo = 1.0, hi = std::pow(dmax, one_m);
        double x = std::pow(lo + u * (hi - lo), 1.0 / one_m);
        return static_cast<std::uint64_t>(x);
    };

    // Rescale degrees so the mean matches avgDegree.
    std::vector<std::uint32_t> degree(n);
    double total = 0;
    for (Node v = 0; v < n; ++v) {
        auto d = sample_degree();
        degree[v] = static_cast<std::uint32_t>(
            std::min<std::uint64_t>(d, params.maxDegree));
        total += degree[v];
    }
    double scale_factor =
        params.avgDegree * static_cast<double>(n) / std::max(total, 1.0);

    std::vector<Edge> edges;
    edges.reserve(static_cast<std::size_t>(
        params.avgDegree * static_cast<double>(n) * 1.05));

    // Popular global targets (the "front page" effect): destinations
    // of non-local links are Zipf over a popularity permutation.
    auto global_target = [&]() {
        // Power-law rank selection: rank ~ u^(-1/(alpha-1)) favors
        // small ranks heavily.
        double u = rng.uniform();
        double r = std::pow(u, 1.5);  // density near 0
        return static_cast<Node>(r * static_cast<double>(n)) % n;
    };

    for (Node v = 0; v < n; ++v) {
        auto d = static_cast<std::uint32_t>(
            std::max(1.0, std::round(degree[v] * scale_factor)));
        for (std::uint32_t i = 0; i < d; ++i) {
            Node dst;
            if (rng.uniform() < params.localFraction) {
                // Local link inside the host window around v.
                std::uint64_t off = rng.below(2 * params.localWindow + 1);
                std::int64_t t = static_cast<std::int64_t>(v) +
                                 static_cast<std::int64_t>(off) -
                                 static_cast<std::int64_t>(
                                     params.localWindow);
                if (t < 0)
                    t += n;
                dst = static_cast<Node>(t % n);
            } else {
                dst = global_target();
            }
            edges.emplace_back(v, dst);
        }
    }

    return CsrGraph::fromEdges(n, std::move(edges), false);
}

} // namespace nvsim::graphs
