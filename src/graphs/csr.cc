#include "graphs/csr.hh"

#include "core/logging.hh"

namespace nvsim::graphs
{

CsrGraph
CsrGraph::fromEdges(Node num_nodes, std::vector<Edge> edges,
                    bool symmetrize)
{
    if (symmetrize) {
        std::size_t n = edges.size();
        edges.reserve(2 * n);
        for (std::size_t i = 0; i < n; ++i)
            edges.emplace_back(edges[i].second, edges[i].first);
    }

    CsrGraph g;
    g.numNodes_ = num_nodes;
    g.offsets_.assign(static_cast<std::size_t>(num_nodes) + 1, 0);

    for (const Edge &e : edges) {
        nvsim_assert(e.first < num_nodes && e.second < num_nodes);
        ++g.offsets_[e.first + 1];
    }
    for (std::size_t v = 0; v < num_nodes; ++v)
        g.offsets_[v + 1] += g.offsets_[v];

    g.edges_.resize(edges.size());
    std::vector<std::uint64_t> cursor(g.offsets_.begin(),
                                      g.offsets_.end() - 1);
    for (const Edge &e : edges)
        g.edges_[cursor[e.first]++] = e.second;
    return g;
}

Node
CsrGraph::maxDegreeNode() const
{
    Node best = 0;
    std::uint64_t best_deg = 0;
    for (Node v = 0; v < numNodes_; ++v) {
        std::uint64_t d = degree(v);
        if (d > best_deg) {
            best_deg = d;
            best = v;
        }
    }
    return best;
}

} // namespace nvsim::graphs
