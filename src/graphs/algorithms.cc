#include "graphs/algorithms.hh"

#include <limits>
#include <vector>

namespace nvsim::graphs
{

namespace
{

constexpr Node kUnvisited = std::numeric_limits<Node>::max();

} // namespace

AlgoOutcome
runBfs(GraphWorkload &w)
{
    const CsrGraph &g = w.graph();
    Node n = g.numNodes();
    auto parent = w.makeArray<Node>("bfs_parent", n);

    for (Node v = 0; v < n; ++v)
        parent.write(v, kUnvisited, w.threadOf(v));

    Node source = g.maxDegreeNode();
    parent.write(source, source, w.threadOf(source));

    std::vector<Node> frontier{source}, next;
    AlgoOutcome out;
    out.answer = 1;  // visited count

    while (!frontier.empty()) {
        ++out.rounds;
        next.clear();
        for (Node v : frontier) {
            unsigned t = w.threadOf(v);
            std::uint64_t ee = w.edgeEnd(v, t);
            for (std::uint64_t e = w.edgeBegin(v, t); e < ee; ++e) {
                Node d = w.edgeDest(e, t);
                if (parent.read(d, t) == kUnvisited) {
                    parent.write(d, v, t);
                    next.push_back(d);
                    ++out.answer;
                }
            }
        }
        frontier.swap(next);
    }
    return out;
}

AlgoOutcome
runCc(GraphWorkload &w)
{
    const CsrGraph &g = w.graph();
    Node n = g.numNodes();
    auto label = w.makeArray<Node>("cc_label", n);

    for (Node v = 0; v < n; ++v)
        label.write(v, v, w.threadOf(v));

    AlgoOutcome out;
    bool changed = true;
    while (changed) {
        changed = false;
        ++out.rounds;
        for (Node v = 0; v < n; ++v) {
            unsigned t = w.threadOf(v);
            Node lv = label.read(v, t);
            std::uint64_t ee = w.edgeEnd(v, t);
            for (std::uint64_t e = w.edgeBegin(v, t); e < ee; ++e) {
                Node d = w.edgeDest(e, t);
                // Push the smaller label across the edge.
                if (lv < label.read(d, t)) {
                    label.write(d, lv, t);
                    changed = true;
                }
            }
        }
    }

    // Count components: labels that kept their own id.
    std::uint64_t components = 0;
    for (Node v = 0; v < n; ++v) {
        if (label.peek(v) == v)
            ++components;
    }
    out.answer = components;
    return out;
}

AlgoOutcome
runKCore(GraphWorkload &w, unsigned k)
{
    const CsrGraph &g = w.graph();
    Node n = g.numNodes();
    auto degree = w.makeArray<std::uint32_t>("kcore_degree", n);

    std::vector<Node> worklist;
    for (Node v = 0; v < n; ++v) {
        unsigned t = w.threadOf(v);
        // Reading the degree touches the offsets array.
        w.edgeBegin(v, t);
        auto d = static_cast<std::uint32_t>(g.degree(v));
        degree.write(v, d, t);
        if (d < k)
            worklist.push_back(v);
    }

    AlgoOutcome out;
    std::vector<Node> next;
    std::vector<bool> removed(n, false);
    while (!worklist.empty()) {
        ++out.rounds;
        next.clear();
        for (Node v : worklist) {
            if (removed[v])
                continue;
            removed[v] = true;
            unsigned t = w.threadOf(v);
            std::uint64_t ee = w.edgeEnd(v, t);
            for (std::uint64_t e = w.edgeBegin(v, t); e < ee; ++e) {
                Node d = w.edgeDest(e, t);
                if (removed[d])
                    continue;
                std::uint32_t dd = degree.read(d, t);
                if (dd >= k) {
                    degree.write(d, dd - 1, t);
                    if (dd - 1 < k)
                        next.push_back(d);
                }
            }
        }
        worklist.swap(next);
    }

    std::uint64_t remaining = 0;
    for (Node v = 0; v < n; ++v) {
        if (!removed[v])
            ++remaining;
    }
    out.answer = remaining;
    return out;
}

AlgoOutcome
runPageRank(GraphWorkload &w, unsigned rounds)
{
    const CsrGraph &g = w.graph();
    Node n = g.numNodes();
    const float damping = 0.85f;
    const float base = (1.0f - damping) / static_cast<float>(n);

    auto rank = w.makeArray<float>("pr_rank", n);
    auto next = w.makeArray<float>("pr_next", n);

    for (Node v = 0; v < n; ++v) {
        unsigned t = w.threadOf(v);
        rank.write(v, 1.0f / static_cast<float>(n), t);
        next.write(v, 0.0f, t);
    }

    AlgoOutcome out;
    for (unsigned r = 0; r < rounds; ++r) {
        ++out.rounds;
        for (Node v = 0; v < n; ++v) {
            unsigned t = w.threadOf(v);
            std::uint64_t eb = w.edgeBegin(v, t);
            std::uint64_t ee = w.edgeEnd(v, t);
            std::uint64_t deg = ee - eb;
            if (deg == 0)
                continue;
            float contrib = damping * rank.read(v, t) /
                            static_cast<float>(deg);
            for (std::uint64_t e = eb; e < ee; ++e) {
                Node d = w.edgeDest(e, t);
                // Push: read-modify-write of the destination residual.
                next.write(d, next.read(d, t) + contrib, t);
            }
        }
        // Swap phase: fold base rank in, reset the residuals.
        for (Node v = 0; v < n; ++v) {
            unsigned t = w.threadOf(v);
            rank.write(v, base + next.read(v, t), t);
            next.write(v, 0.0f, t);
        }
    }

    // Report the max-rank node as the sanity answer.
    Node best = 0;
    for (Node v = 1; v < n; ++v) {
        if (rank.peek(v) > rank.peek(best))
            best = v;
    }
    out.answer = best;
    return out;
}

} // namespace nvsim::graphs

namespace nvsim::graphs
{

std::uint32_t
syntheticWeight(std::uint64_t e)
{
    // splitmix-style hash, folded to 1..255: deterministic, cheap, and
    // free of the zero weights that would trivialize the problem.
    std::uint64_t x = e + 0x9E3779B97F4A7C15ull;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
    return static_cast<std::uint32_t>((x >> 33) % 255) + 1;
}

AlgoOutcome
runSssp(GraphWorkload &w)
{
    const CsrGraph &g = w.graph();
    Node n = g.numNodes();
    constexpr std::uint32_t kInf = 0xFFFFFFFFu;

    auto dist = w.makeArray<std::uint32_t>("sssp_dist", n);
    // The weight array is part of the graph's memory footprint: one
    // 32-bit weight per edge, streamed alongside the destinations.
    auto weights =
        w.makeArray<std::uint32_t>("sssp_weights", g.numEdges());
    for (std::uint64_t e = 0; e < g.numEdges(); ++e) {
        weights.poke(e, syntheticWeight(e));
    }

    for (Node v = 0; v < n; ++v)
        dist.write(v, kInf, w.threadOf(v));
    Node source = g.maxDegreeNode();
    dist.write(source, 0, w.threadOf(source));

    std::vector<Node> frontier{source}, next;
    std::vector<bool> queued(n, false);
    AlgoOutcome out;
    while (!frontier.empty()) {
        ++out.rounds;
        next.clear();
        for (Node v : frontier) {
            queued[v] = false;
            unsigned t = w.threadOf(v);
            std::uint32_t dv = dist.read(v, t);
            std::uint64_t ee = w.edgeEnd(v, t);
            for (std::uint64_t e = w.edgeBegin(v, t); e < ee; ++e) {
                Node d = w.edgeDest(e, t);
                std::uint32_t cand = dv + weights.read(e, t);
                if (cand < dist.read(d, t)) {
                    dist.write(d, cand, t);
                    if (!queued[d]) {
                        queued[d] = true;
                        next.push_back(d);
                    }
                }
            }
        }
        frontier.swap(next);
    }

    // Answer: number of reachable nodes (finite distance).
    std::uint64_t reached = 0;
    for (Node v = 0; v < n; ++v)
        reached += dist.peek(v) != kInf;
    out.answer = reached;
    return out;
}

} // namespace nvsim::graphs
