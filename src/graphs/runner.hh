/**
 * @file
 * Graph workload runner: maps a CsrGraph and its per-algorithm
 * property arrays into the simulated address space and lets the
 * algorithm implementations issue instrumented accesses, exactly as
 * the Galois runs of Section VI drive the machine.
 *
 * Placement policies:
 *  - TwoLm:         everything in the flat (NVRAM-backed, DRAM-cached)
 *                   space — memory mode.
 *  - NumaPreferred: 1LM; allocations fill DRAM first, then spill to
 *                   NVRAM (Galois' NUMA-preferred allocation used for
 *                   the Figure 8a baseline).
 *  - Sage:          1LM; the read-only graph lives in NVRAM and every
 *                   mutable property array lives in DRAM (Dhulipala et
 *                   al.'s semi-asymmetric approach, Section VII-A.2).
 */

#ifndef NVSIM_GRAPHS_RUNNER_HH
#define NVSIM_GRAPHS_RUNNER_HH

#include <string>
#include <vector>

#include "graphs/csr.hh"
#include "imc/counters.hh"
#include "sys/memsys.hh"

namespace nvsim::graphs
{

/** Data placement policy for a run. */
enum class Placement : std::uint8_t { TwoLm, NumaPreferred, Sage };

const char *placementName(Placement placement);

/** The graph kernels of the lonestar subset the paper evaluates. */
enum class GraphKernel : std::uint8_t { Bfs, Cc, KCore, PageRank, Sssp };

const char *graphKernelName(GraphKernel kernel);

/** Run parameters (defaults follow Gill et al. where scale allows). */
struct GraphRunConfig
{
    Placement placement = Placement::TwoLm;
    unsigned threads = 96;        //!< two sockets x 48 hw threads
    unsigned prRounds = 10;       //!< pagerank-push rounds (paper: 100)
    unsigned kcoreK = 10;         //!< k for k-core (paper: 100)
    std::uint64_t bytesPerNodeAccess = 4;
};

/** Result of one kernel execution. */
struct GraphRunResult
{
    GraphKernel kernel = GraphKernel::Bfs;
    double seconds = 0;
    PerfCounters counters;
    Bytes graphBytes = 0;
    std::uint64_t rounds = 0;
    /** Algorithm-specific answer for sanity checks. */
    std::uint64_t answer = 0;

    double dramReadBandwidth() const;
    double dramWriteBandwidth() const;
    double nvramReadBandwidth() const;
    double nvramWriteBandwidth() const;
    /** Total bytes moved at the devices (Figure 8). */
    Bytes dataMoved() const;
};

class GraphWorkload;

/**
 * A property array backed by host memory whose element accesses are
 * mirrored into the simulated machine.
 */
template <typename T>
class SimArray
{
  public:
    SimArray() = default;
    SimArray(MemorySystem *sys, Region region, std::size_t count)
        : sys_(sys), region_(region), data_(count)
    {
    }

    T
    read(std::size_t i, unsigned thread) const
    {
        sys_->submit({thread, CpuOp::Load, addr(i), sizeof(T)});
        return data_[i];
    }

    void
    write(std::size_t i, T v, unsigned thread)
    {
        sys_->submit({thread, CpuOp::Store, addr(i), sizeof(T)});
        data_[i] = v;
    }

    /** Untracked host access (setup/verification only). */
    T peek(std::size_t i) const { return data_[i]; }
    void poke(std::size_t i, T v) { data_[i] = v; }

    std::size_t size() const { return data_.size(); }
    const Region &region() const { return region_; }

  private:
    Addr addr(std::size_t i) const { return region_.base + i * sizeof(T); }

    MemorySystem *sys_ = nullptr;
    Region region_;
    std::vector<T> data_;
};

/** One graph mapped into one simulated machine. */
class GraphWorkload
{
  public:
    GraphWorkload(MemorySystem &sys, const CsrGraph &graph,
                  const GraphRunConfig &config);

    /** Execute a kernel; counters/time are deltas over the run. */
    GraphRunResult run(GraphKernel kernel);

    /** @name Instrumented graph accesses (used by the algorithms). */
    ///@{
    std::uint64_t
    edgeBegin(Node v, unsigned thread)
    {
        sys_.submit({thread, CpuOp::Load, offsetsBase_ + v * 8, 16});
        return graph_.edgeBegin(v);
    }

    std::uint64_t
    edgeEnd(Node v, unsigned /*thread*/)
    {
        // Read together with edgeBegin (offsets[v] and offsets[v+1]
        // share one 16-byte access above).
        return graph_.edgeEnd(v);
    }

    Node
    edgeDest(std::uint64_t e, unsigned thread)
    {
        sys_.submit({thread, CpuOp::Load, edgesBase_ + e * 4, 4});
        return graph_.edgeDest(e);
    }
    ///@}

    /** Allocate an instrumented property array. */
    template <typename T>
    SimArray<T>
    makeArray(const std::string &name, std::size_t count)
    {
        Region r = allocateByPolicy(count * sizeof(T), name,
                                    /*mutable_data=*/true);
        return SimArray<T>(&sys_, r, count);
    }

    /** Partition nodes across threads in contiguous blocks. */
    unsigned
    threadOf(Node v) const
    {
        return static_cast<unsigned>(
            static_cast<std::uint64_t>(v) * config_.threads /
            graph_.numNodes());
    }

    MemorySystem &sys() { return sys_; }
    const CsrGraph &graph() const { return graph_; }
    const GraphRunConfig &config() const { return config_; }

  private:
    Region allocateByPolicy(Bytes bytes, const std::string &name,
                            bool mutable_data);

    MemorySystem &sys_;
    const CsrGraph &graph_;
    GraphRunConfig config_;
    Addr offsetsBase_ = 0;
    Addr edgesBase_ = 0;
};

} // namespace nvsim::graphs

#endif // NVSIM_GRAPHS_RUNNER_HH
