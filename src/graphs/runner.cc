#include "graphs/runner.hh"

#include "core/logging.hh"
#include "graphs/algorithms.hh"
#include "obs/observer.hh"

namespace nvsim::graphs
{

const char *
placementName(Placement placement)
{
    switch (placement) {
      case Placement::TwoLm:
        return "2LM";
      case Placement::NumaPreferred:
        return "numa_preferred";
      case Placement::Sage:
        return "sage";
    }
    return "unknown";
}

const char *
graphKernelName(GraphKernel kernel)
{
    switch (kernel) {
      case GraphKernel::Bfs:
        return "bfs";
      case GraphKernel::Cc:
        return "cc";
      case GraphKernel::KCore:
        return "kcore";
      case GraphKernel::PageRank:
        return "pr";
      case GraphKernel::Sssp:
        return "sssp";
    }
    return "unknown";
}

double
GraphRunResult::dramReadBandwidth() const
{
    return seconds > 0 ? static_cast<double>(counters.dramRead *
                                             kLineSize) /
                             seconds
                       : 0;
}

double
GraphRunResult::dramWriteBandwidth() const
{
    return seconds > 0 ? static_cast<double>(counters.dramWrite *
                                             kLineSize) /
                             seconds
                       : 0;
}

double
GraphRunResult::nvramReadBandwidth() const
{
    return seconds > 0 ? static_cast<double>(counters.nvramRead *
                                             kLineSize) /
                             seconds
                       : 0;
}

double
GraphRunResult::nvramWriteBandwidth() const
{
    return seconds > 0 ? static_cast<double>(counters.nvramWrite *
                                             kLineSize) /
                             seconds
                       : 0;
}

Bytes
GraphRunResult::dataMoved() const
{
    return counters.deviceAccesses() * kLineSize;
}

GraphWorkload::GraphWorkload(MemorySystem &sys, const CsrGraph &graph,
                             const GraphRunConfig &config)
    : sys_(sys), graph_(graph), config_(config)
{
    bool two_lm = sys_.config().mode == MemoryMode::TwoLm;
    if (two_lm != (config_.placement == Placement::TwoLm)) {
        fatal("placement %s incompatible with %s memory mode",
              placementName(config_.placement),
              memoryModeName(sys_.config().mode));
    }

    Region offsets = allocateByPolicy(graph_.offsetsBytes(),
                                      "graph_offsets", false);
    Region edges =
        allocateByPolicy(graph_.edgesBytes(), "graph_edges", false);
    offsetsBase_ = offsets.base;
    edgesBase_ = edges.base;

    // "Load" the graph binary: stream nontemporal stores over the CSR
    // regions, as the OS paging + converter output would. This leaves
    // the DRAM cache primed (and dirty) with the graph's tail in 2LM.
    sys_.setActiveThreads(config_.threads);
    unsigned t = 0;
    for (Addr a = offsets.base; a < offsets.base + offsets.size;
         a += kLineSize) {
        sys_.touchLine(t, CpuOp::NtStore, a);
        t = (t + 1) % config_.threads;
    }
    for (Addr a = edges.base; a < edges.base + edges.size;
         a += kLineSize) {
        sys_.touchLine(t, CpuOp::NtStore, a);
        t = (t + 1) % config_.threads;
    }
    sys_.quiesce();
}

Region
GraphWorkload::allocateByPolicy(Bytes bytes, const std::string &name,
                                bool mutable_data)
{
    switch (config_.placement) {
      case Placement::TwoLm:
        return sys_.allocate(bytes, name);
      case Placement::NumaPreferred:
        // DRAM while it lasts, then NVRAM — Galois' default.
        return sys_.allocate(bytes, name);
      case Placement::Sage:
        // Read-only graph in NVRAM; mutable auxiliaries in DRAM.
        return sys_.allocateIn(mutable_data ? MemPool::Dram
                                            : MemPool::Nvram,
                               bytes, name);
    }
    panic("unreachable placement");
}

GraphRunResult
GraphWorkload::run(GraphKernel kernel)
{
    sys_.setActiveThreads(config_.threads);
    PerfCounters before = sys_.counters();
    double t0 = sys_.now();
    obs::ContextScope ctx(sys_.observer(), graphKernelName(kernel));

    AlgoOutcome outcome;
    switch (kernel) {
      case GraphKernel::Bfs:
        outcome = runBfs(*this);
        break;
      case GraphKernel::Cc:
        outcome = runCc(*this);
        break;
      case GraphKernel::KCore:
        outcome = runKCore(*this, config_.kcoreK);
        break;
      case GraphKernel::PageRank:
        outcome = runPageRank(*this, config_.prRounds);
        break;
      case GraphKernel::Sssp:
        outcome = runSssp(*this);
        break;
    }

    sys_.quiesce();

    GraphRunResult result;
    result.kernel = kernel;
    result.seconds = sys_.now() - t0;
    result.counters = sys_.counters().delta(before);
    result.graphBytes = graph_.bytes();
    result.rounds = outcome.rounds;
    result.answer = outcome.answer;
    return result;
}

} // namespace nvsim::graphs
