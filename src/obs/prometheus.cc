#include "obs/prometheus.hh"

#include <unordered_map>

#include "core/logging.hh"
#include "obs/stats.hh"

namespace nvsim::obs
{

std::string
promSanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

namespace
{

/** Render accumulated label pairs as `k1="v1",k2="v2"`. */
std::string
renderLabels(
    const std::vector<std::pair<std::string, std::string>> &labels,
    const std::string &extra)
{
    std::string out = extra;
    for (const auto &[k, v] : labels) {
        if (!out.empty())
            out += ',';
        out += promSanitizeName(k) + "=\"" + promEscapeLabel(v) + "\"";
    }
    return out;
}

/** Families indexed by name; appends preserve first-seen order. */
class FamilySet
{
  public:
    explicit FamilySet(std::vector<PromFamily> &families)
        : families_(families)
    {
        for (std::size_t i = 0; i < families_.size(); ++i)
            index_.emplace(families_[i].name, i);
    }

    PromFamily &
    family(const std::string &name, const std::string &type,
           const std::string &help)
    {
        auto it = index_.find(name);
        if (it == index_.end()) {
            index_.emplace(name, families_.size());
            families_.push_back(PromFamily{name, type, help, {}});
            return families_.back();
        }
        PromFamily &f = families_[it->second];
        if (f.type != type) {
            panic("prometheus: metric '%s' collected as both %s and "
                  "%s",
                  name.c_str(), f.type.c_str(), type.c_str());
        }
        if (f.help.empty())
            f.help = help;
        return f;
    }

  private:
    std::vector<PromFamily> &families_;
    std::unordered_map<std::string, std::size_t> index_;
};

void
collectGroup(FamilySet &set, const Group &group,
             const std::string &path,
             std::vector<std::pair<std::string, std::string>> labels,
             const std::string &extra)
{
    for (const auto &kv : group.labels())
        labels.push_back(kv);

    std::string rendered = renderLabels(labels, extra);
    for (const Stat &s : group.stats()) {
        std::string name = promSanitizeName(
            path.empty() ? s.name : path + "_" + s.name);
        switch (s.kind) {
          case StatKind::Scalar: {
            // Counters carry the conventional _total suffix.
            std::string total = name + "_total";
            set.family(total, "counter", s.desc)
                .samples.push_back(
                    {total, rendered,
                     static_cast<double>(s.scalar->value())});
            break;
          }
          case StatKind::Formula:
            set.family(name, "gauge", s.desc)
                .samples.push_back({name, rendered, s.formula()});
            break;
          case StatKind::Histogram: {
            const Log2Histogram &h = *s.histogram;
            PromFamily &fam = set.family(name, "histogram", s.desc);
            std::uint64_t cumulative = 0;
            for (unsigned i = 0; i < h.numBuckets(); ++i) {
                cumulative += h.bucketCount(i);
                if (h.bucketHigh(i) == UINT64_MAX)
                    break;  // the +Inf bucket below covers the rest
                // Buckets are [lo, hi): the largest value included is
                // hi - 1, which is the cumulative "le" boundary.
                std::string le = strprintf(
                    "le=\"%llu\"", static_cast<unsigned long long>(
                                       h.bucketHigh(i) - 1));
                fam.samples.push_back(
                    {name + "_bucket",
                     rendered.empty() ? le : rendered + "," + le,
                     static_cast<double>(cumulative)});
            }
            std::string le_inf = "le=\"+Inf\"";
            fam.samples.push_back(
                {name + "_bucket",
                 rendered.empty() ? le_inf : rendered + "," + le_inf,
                 static_cast<double>(h.count())});
            fam.samples.push_back({name + "_sum", rendered,
                                   static_cast<double>(h.sum())});
            fam.samples.push_back({name + "_count", rendered,
                                   static_cast<double>(h.count())});
            break;
          }
        }
    }

    for (const auto &c : group.children()) {
        std::string child_path =
            path.empty() ? c->name() : path + "_" + c->name();
        collectGroup(set, *c, child_path, labels, extra);
    }
}

} // namespace

void
collectPrometheus(const Registry &registry,
                  std::vector<PromFamily> &families,
                  const std::string &prefix,
                  const std::string &extra_labels)
{
    FamilySet set(families);
    collectGroup(set, registry.root(),
                 prefix.empty() ? "" : promSanitizeName(prefix), {},
                 extra_labels);
}

void
mergePrometheus(std::vector<PromFamily> &dst,
                const std::vector<PromFamily> &src)
{
    FamilySet set(dst);
    for (const PromFamily &f : src) {
        PromFamily &d = set.family(f.name, f.type, f.help);
        d.samples.insert(d.samples.end(), f.samples.begin(),
                         f.samples.end());
    }
}

void
renderPrometheus(const std::vector<PromFamily> &families,
                 std::ostream &out)
{
    for (const PromFamily &f : families) {
        if (!f.help.empty())
            out << "# HELP " << f.name << ' ' << f.help << '\n';
        out << "# TYPE " << f.name << ' ' << f.type << '\n';
        for (const PromSample &s : f.samples) {
            out << s.name;
            if (!s.labels.empty())
                out << '{' << s.labels << '}';
            out << ' ' << strprintf("%.9g", s.value) << '\n';
        }
    }
}

void
writePrometheus(const Registry &registry, std::ostream &out,
                const std::string &prefix,
                const std::string &extra_labels)
{
    std::vector<PromFamily> families;
    collectPrometheus(registry, families, prefix, extra_labels);
    renderPrometheus(families, out);
}

} // namespace nvsim::obs
