#include "obs/prometheus.hh"

#include "core/logging.hh"
#include "obs/stats.hh"

namespace nvsim::obs
{

std::string
promSanitizeName(const std::string &name)
{
    std::string out;
    out.reserve(name.size() + 1);
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (!out.empty() && out[0] >= '0' && out[0] <= '9')
        out.insert(out.begin(), '_');
    return out;
}

std::string
promEscapeLabel(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
          case '\\':
            out += "\\\\";
            break;
          case '"':
            out += "\\\"";
            break;
          case '\n':
            out += "\\n";
            break;
          default:
            out += c;
        }
    }
    return out;
}

namespace
{

/** Render accumulated label pairs as `k1="v1",k2="v2"`. */
std::string
renderLabels(
    const std::vector<std::pair<std::string, std::string>> &labels,
    const std::string &extra)
{
    std::string out = extra;
    for (const auto &[k, v] : labels) {
        if (!out.empty())
            out += ',';
        out += promSanitizeName(k) + "=\"" + promEscapeLabel(v) + "\"";
    }
    return out;
}

void
writeSample(std::ostream &out, const std::string &name,
            const std::string &labels, double value)
{
    out << name;
    if (!labels.empty())
        out << '{' << labels << '}';
    out << ' ' << strprintf("%.9g", value) << '\n';
}

void
writeGroup(std::ostream &out, const Group &group,
           const std::string &path,
           std::vector<std::pair<std::string, std::string>> labels,
           const std::string &extra)
{
    for (const auto &kv : group.labels())
        labels.push_back(kv);

    std::string rendered = renderLabels(labels, extra);
    for (const Stat &s : group.stats()) {
        std::string name = promSanitizeName(
            path.empty() ? s.name : path + "_" + s.name);
        if (!s.desc.empty())
            out << "# HELP " << name << ' ' << s.desc << '\n';
        switch (s.kind) {
          case StatKind::Scalar:
            out << "# TYPE " << name << " counter\n";
            writeSample(out, name, rendered,
                        static_cast<double>(s.scalar->value()));
            break;
          case StatKind::Formula:
            out << "# TYPE " << name << " gauge\n";
            writeSample(out, name, rendered, s.formula());
            break;
          case StatKind::Histogram: {
            const Log2Histogram &h = *s.histogram;
            out << "# TYPE " << name << " histogram\n";
            std::uint64_t cumulative = 0;
            for (unsigned i = 0; i < h.numBuckets(); ++i) {
                cumulative += h.bucketCount(i);
                if (h.bucketHigh(i) == UINT64_MAX)
                    break;  // the +Inf bucket below covers the rest
                // Buckets are [lo, hi): the largest value included is
                // hi - 1, which is the cumulative "le" boundary.
                std::string le = strprintf(
                    "le=\"%llu\"", static_cast<unsigned long long>(
                                       h.bucketHigh(i) - 1));
                writeSample(out, name + "_bucket",
                            rendered.empty() ? le : rendered + "," + le,
                            static_cast<double>(cumulative));
            }
            std::string le_inf = "le=\"+Inf\"";
            writeSample(out, name + "_bucket",
                        rendered.empty() ? le_inf
                                         : rendered + "," + le_inf,
                        static_cast<double>(h.count()));
            writeSample(out, name + "_sum", rendered,
                        static_cast<double>(h.sum()));
            writeSample(out, name + "_count", rendered,
                        static_cast<double>(h.count()));
            break;
          }
        }
    }

    for (const auto &c : group.children()) {
        std::string child_path =
            path.empty() ? c->name() : path + "_" + c->name();
        writeGroup(out, *c, child_path, labels, extra);
    }
}

} // namespace

void
writePrometheus(const Registry &registry, std::ostream &out,
                const std::string &prefix,
                const std::string &extra_labels)
{
    writeGroup(out, registry.root(),
               prefix.empty() ? "" : promSanitizeName(prefix), {},
               extra_labels);
}

} // namespace nvsim::obs
