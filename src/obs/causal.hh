/**
 * @file
 * Causal tracer: seeded, sampling-based per-request blame trees.
 *
 * The aggregate histograms (obs/observer.hh) show *that* 2LM amplifies
 * — up to 5 device accesses per demand request — but not *which*
 * requests, kernels or arenas pay for it. The CausalTracer samples
 * 1-in-N demand requests deterministically; a sampled request carries
 * MemRequest::traced through the channel, which fills
 * AccessResult::breakdown with one CauseSpan per induced device
 * access (the Figure 3 steps: tag probe, dirty writeback, cache fill
 * read, insert write, data write, DDO elision). The tracer aggregates
 * those spans into:
 *
 *  - an attribution table keyed by originating context (kernel / DNN
 *    op / graph kernel, pushed via ContextScope) x request class
 *    (read_miss_dirty, ddo_write, ...) x cause — Table I per-cause
 *    rather than per-total;
 *  - folded-stack lines (`context;class;cause count`) renderable as a
 *    flamegraph (scripts/plot_traces.py);
 *  - Perfetto flow events linking each exemplar demand span to its
 *    induced device spans on the session timeline;
 *  - a seeded reservoir of exemplar blame trees kept verbatim in the
 *    JSON dump.
 *
 * Determinism: sampling is a phase-locked 1-in-N counter and the
 * reservoir uses a seeded xoshiro stream, so the same seed produces a
 * byte-identical trace. Overhead: with no tracer attached every hook
 * is a null test; with one attached, non-sampled requests cost one
 * counter increment.
 */

#ifndef NVSIM_OBS_CAUSAL_HH
#define NVSIM_OBS_CAUSAL_HH

#include <array>
#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "core/rng.hh"
#include "mem/request.hh"

namespace nvsim::obs
{

class PerfettoTracer;

/** Causal-tracing knobs, typically parsed from bench argv. */
struct CausalOptions
{
    /** Sample 1 in N demand requests (N >= 1; 1 = every request). */
    std::uint64_t samplePeriod = 64;
    /** Seed for the sampling phase and the exemplar reservoir. */
    std::uint64_t seed = 1;
    /** Exemplar blame trees kept verbatim in the JSON dump. */
    std::size_t reservoirSize = 32;
    /** Sampled requests emitted as Perfetto flow-linked spans. */
    std::size_t maxFlowRequests = 256;
    /** First flow id to use (kept unique across a session's runs). */
    std::uint64_t flowIdBase = 1;
};

/** Request class: kind x outcome, e.g. "read_miss_dirty". */
const char *requestClassName(MemRequestKind kind, CacheOutcome outcome);

/** Per-run causal tracer; owned by the run's Observer. */
class CausalTracer
{
  public:
    /** @p tracer may be null (no Perfetto output requested). */
    CausalTracer(const CausalOptions &opts, PerfettoTracer *tracer);

    /** @name Context stack (ContextScope in observer.hh) */
    ///@{
    void pushContext(const std::string &frame);
    void popContext();
    const std::string &context() const { return joined_; }
    ///@}

    /** @name Hot path */
    ///@{
    /**
     * Deterministic 1-in-N decision for the next demand request;
     * advances the request counter. The caller sets
     * MemRequest::traced from the result.
     */
    bool
    shouldSample()
    {
        return (demands_++ % opts_.samplePeriod) == phase_;
    }

    /** An LLC hit absorbed a demand access before the IMC. */
    void
    noteLlcHit()
    {
        ++llcHitsTotal_;
        ++resolve()->llcHits;
    }

    /**
     * Record one sampled request's blame tree.
     * @param t_now    simulated time the request issued (run-local)
     * @param latency  demand latency charged for the request
     * @param channel  servicing channel index
     */
    void record(MemRequestKind kind, CacheOutcome outcome,
                const CausalBreakdown &breakdown, double t_now,
                double latency, unsigned channel);
    ///@}

    /** Warmup reset: drop aggregates, restart the seeded streams. */
    void onCountersReset();

    /** @name Output */
    ///@{
    /**
     * Append folded-stack lines `context;class;cause count` (with
     * `prefix;` prepended when non-empty), deterministically ordered.
     */
    void foldedLines(std::vector<std::string> &out,
                     const std::string &prefix) const;

    /** One run's attribution object (JSON, no trailing newline). */
    void dumpJson(std::ostream &os) const;
    ///@}

    std::uint64_t demands() const { return demands_; }
    std::uint64_t sampled() const { return sampled_; }
    std::uint64_t llcHits() const { return llcHitsTotal_; }
    /** Flow ids consumed; the session offsets the next run by this. */
    std::uint64_t flowsEmitted() const { return flowsEmitted_; }
    const CausalOptions &options() const { return opts_; }

  private:
    /** Per-class per-cause tallies within one context. */
    struct ClassStats
    {
        std::uint64_t samples = 0;
        std::uint64_t accesses = 0;
        double latency = 0;
        std::array<std::uint64_t, kNumAccessCauses> causeCount{};
        std::array<double, kNumAccessCauses> causeLatency{};
    };

    struct ContextStats
    {
        std::uint64_t llcHits = 0;
        std::map<std::string, ClassStats> classes;
    };

    /** One sampled request kept verbatim. */
    struct Exemplar
    {
        std::string context;
        const char *klass = "";
        double t = 0;
        double latency = 0;
        unsigned channel = 0;
        CausalBreakdown breakdown;
    };

    /** Stats bucket of the current context (cached across calls). */
    ContextStats *
    resolve()
    {
        if (!cur_)
            cur_ = &contexts_[joined_];
        return cur_;
    }

    void offerExemplar(const Exemplar &e);
    void emitFlow(const Exemplar &e);

    CausalOptions opts_;
    PerfettoTracer *tracer_;  //!< not owned; may be null
    std::uint64_t phase_;     //!< seed-derived sampling offset
    Rng rng_;                 //!< reservoir stream

    std::vector<std::string> frames_;
    std::string joined_;
    ContextStats *cur_ = nullptr;

    std::uint64_t demands_ = 0;
    std::uint64_t sampled_ = 0;
    std::uint64_t llcHitsTotal_ = 0;
    std::uint64_t flowsEmitted_ = 0;

    /** std::map: deterministic iteration for folded/JSON output. */
    std::map<std::string, ContextStats> contexts_;
    std::vector<Exemplar> reservoir_;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_CAUSAL_HH
