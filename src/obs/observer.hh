/**
 * @file
 * Observer: the per-run hub of the observability layer.
 *
 * A MemorySystem runs unobserved by default — every hook is a single
 * null-pointer test, so with no observer attached the simulation's
 * outputs are bit-identical to a build without this subsystem. When a
 * bench opts in (bench_common.hh flags), an Observer is attached and
 * collects:
 *
 *  - a hierarchical stats Registry (obs/stats.hh) the system's
 *    components register into (LLC, per-channel IMC counters, DRAM
 *    cache, DRAM/NVRAM devices, fault log);
 *  - per-request latency and device-access-count histograms keyed by
 *    outcome class (tag hit / clean miss / dirty miss / DDO write /
 *    uncached) — Table I as a distribution instead of a mean;
 *  - an optional per-set conflict profile of the DRAM cache
 *    (obs/heatmap.hh);
 *  - optional Chrome-trace/Perfetto events: epoch and kernel spans,
 *    DMA transfers, throttle and channel-offline instants
 *    (obs/perfetto.hh).
 *
 * Lifecycle: one Observer per observed run. The registry's formula
 * stats read live component state, so the owner must seal() (render)
 * the registry before the observed MemorySystem is destroyed; the
 * MemorySystem does this from its destructor as a backstop.
 */

#ifndef NVSIM_OBS_OBSERVER_HH
#define NVSIM_OBS_OBSERVER_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "imc/counters.hh"
#include "mem/request.hh"
#include "obs/heatmap.hh"
#include "obs/manifest.hh"
#include "obs/perfetto.hh"
#include "obs/prometheus.hh"
#include "obs/stats.hh"

namespace nvsim::obs
{

class CausalTracer;
struct CausalOptions;
class TelemetryRun;

/** One epoch's sample, delivered at each epoch boundary. */
struct EpochSample
{
    double t0 = 0;  //!< epoch start (simulated seconds)
    double t1 = 0;  //!< epoch end
    std::uint64_t demandBytes = 0;
    /** Any maintenance activity (refresh/scrub/...) this epoch. */
    bool maintenance = false;
    /** System-wide counter deltas over the epoch. */
    PerfCounters delta;
};

/** Per-run observability hub. */
class Observer
{
  public:
    explicit Observer(std::string run_label = "");

    /** Unwires from a still-attached MemorySystem (detach hook). */
    ~Observer();

    Observer(const Observer &) = delete;
    Observer &operator=(const Observer &) = delete;

    const std::string &runLabel() const { return runLabel_; }

    /** @name Wiring (done by MemorySystem::attachObserver) */
    ///@{
    Registry &registry() { return registry_; }
    const Registry &registry() const { return registry_; }
    Group &root() { return registry_.root(); }

    /** Request heatmap collection before attaching. */
    void enableHeatmap() { wantHeatmap_ = true; }
    bool heatmapWanted() const { return wantHeatmap_; }

    /** Per-run provenance (set by MemorySystem::attachObserver). */
    void setProvenance(ConfigDigest d) { provenance_ = std::move(d); }
    const ConfigDigest &provenance() const { return provenance_; }

    /**
     * Create (once) the shared set profiler for caches of @p num_sets
     * sets; returns null unless heatmap collection was requested.
     */
    SetProfiler *ensureSetProfiler(std::uint64_t num_sets);
    SetProfiler *setProfiler() { return setProfiler_.get(); }
    const SetProfiler *setProfiler() const { return setProfiler_.get(); }

    /** Attach a (session-owned) trace collector; may stay null. */
    void setTracer(PerfettoTracer *tracer) { tracer_ = tracer; }
    PerfettoTracer *tracer() { return tracer_; }

    /**
     * Create the per-request causal tracer (obs/causal.hh). Call
     * after setTracer() so exemplar flow events reach the session
     * timeline; registers the tracer's totals under the registry's
     * "causal" group.
     */
    void enableCausal(const CausalOptions &opts);
    CausalTracer *causal() { return causal_.get(); }
    const CausalTracer *causal() const { return causal_.get(); }

    /**
     * Register the telemetry run's summary quantiles as gauge
     * formulas under the registry's "telemetry" group, so the latency
     * sketch shows up in the stats JSON / Prometheus dump. @p tel must
     * outlive seal().
     */
    void attachTelemetry(TelemetryRun *tel);

    /**
     * Callback run from the destructor while this Observer is still
     * attached, so a system outliving its observer drops its pointers
     * (the attached MemorySystem installs detachObserver() here and
     * clears it again when it detaches first).
     */
    void setDetachHook(std::function<void()> fn)
    {
        detachHook_ = std::move(fn);
    }
    ///@}

    /** @name Hot-path hooks */
    ///@{
    /**
     * One IMC request resolved. @p demand distinguishes CPU demand
     * requests (latency histogram meaningful) from DMA-engine traffic.
     */
    void noteRequest(bool demand, CacheOutcome outcome,
                     unsigned device_accesses, double latency_s);

    void noteEpoch(const EpochSample &sample);
    void noteDma(double t0, double t1, std::uint64_t bytes);
    void noteThrottle(double t, unsigned channel, bool engaged);
    void noteChannelOffline(double t, unsigned channel);
    /** A maintenance event (line retirement, targeted refresh) fired. */
    void noteMaintenance(double t, unsigned channel, const char *event);

    /** A named workload span (microbench kernel, DNN op). */
    void kernelSpan(const std::string &name, double t0, double t1);

    /** @name Causal-context forwarding (no-ops without a tracer) */
    ///@{
    void pushContext(const std::string &frame);
    void popContext();
    /** An LLC hit absorbed a demand access before the IMC. */
    void noteLlcHit();
    ///@}

    /**
     * The observed system reset its counters and clock (post-warmup):
     * drop warmup histogram/heatmap samples and shift the trace time
     * base so post-reset events stay ordered after pre-reset ones.
     */
    void onCountersReset(double prior_now);
    ///@}

    /**
     * Render the registry (formulas read live component state) into
     * cached JSON / Prometheus strings. Idempotent; must run before
     * the observed system is destroyed.
     */
    void seal();
    bool sealed() const { return sealed_; }

    /** Rendered registry; seals on first use. */
    const std::string &statsJson();
    const std::string &statsProm();

    /**
     * Family-shaped Prometheus samples; seals on first use. Sessions
     * merge these across runs (obs/prometheus.hh) so the combined
     * exposition stays strictly valid.
     */
    const std::vector<PromFamily> &promFamilies();

  private:
    Log2Histogram &latencyHist(CacheOutcome outcome);
    Log2Histogram &accessHist(CacheOutcome outcome);

    std::string runLabel_;
    Registry registry_;
    ConfigDigest provenance_;
    bool wantHeatmap_ = false;
    std::unique_ptr<SetProfiler> setProfiler_;
    PerfettoTracer *tracer_ = nullptr;  //!< not owned; may be null
    std::unique_ptr<CausalTracer> causal_;
    std::function<void()> detachHook_;

    /** Indexed by CacheOutcome; owned by the registry. */
    Log2Histogram *latency_[5] = {};
    Log2Histogram *accesses_[5] = {};
    Scalar *dmaRequests_ = nullptr;

    bool sealed_ = false;
    std::string statsJson_;
    std::string statsProm_;
    std::vector<PromFamily> promFamilies_;
};

/** Stats-group name of an outcome class. */
const char *outcomeClassName(CacheOutcome outcome);

/**
 * RAII causal-context frame: names the workload region (kernel, DNN
 * op, graph kernel) that owns the demand requests issued inside it.
 * Null-safe: pass the current observer (or nullptr) and the scope is
 * free when tracing is off.
 */
class ContextScope
{
  public:
    ContextScope(Observer *o, const std::string &frame) : o_(o)
    {
        if (o_)
            o_->pushContext(frame);
    }

    ~ContextScope()
    {
        if (o_)
            o_->popContext();
    }

    ContextScope(const ContextScope &) = delete;
    ContextScope &operator=(const ContextScope &) = delete;

  private:
    Observer *o_;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_OBSERVER_HH
