#include "obs/perfetto.hh"

#include <algorithm>

#include "obs/json.hh"

namespace nvsim::obs
{

namespace
{
constexpr double kUsPerSecond = 1e6;
constexpr int kPid = 1;
} // namespace

bool
PerfettoTracer::admit()
{
    if (events_.size() >= kMaxEvents) {
        ++dropped_;
        return false;
    }
    return true;
}

void
PerfettoTracer::note(double t_s)
{
    horizon_ = std::max(horizon_, t_s);
}

void
PerfettoTracer::span(Track track, const std::string &name, double t0_s,
                     double t1_s,
                     std::vector<std::pair<std::string, double>> args)
{
    double b0 = timeBase_ + t0_s;
    double b1 = timeBase_ + t1_s;
    note(b1);
    if (!admit())
        return;
    events_.push_back({'X', static_cast<std::uint32_t>(track), name,
                       b0 * kUsPerSecond, (b1 - b0) * kUsPerSecond,
                       std::move(args)});
}

void
PerfettoTracer::instant(Track track, const std::string &name, double t_s)
{
    double b = timeBase_ + t_s;
    note(b);
    if (!admit())
        return;
    events_.push_back({'i', static_cast<std::uint32_t>(track), name,
                       b * kUsPerSecond, 0, {}});
}

void
PerfettoTracer::counter(const std::string &name, double t_s, double value)
{
    double b = timeBase_ + t_s;
    note(b);
    if (!admit())
        return;
    events_.push_back({'C', 0, name, b * kUsPerSecond, 0,
                       {{"value", value}}});
}

void
PerfettoTracer::flow(char phase, Track track, const std::string &name,
                     double t_s, std::uint64_t id)
{
    double b = timeBase_ + t_s;
    note(b);
    if (!admit())
        return;
    Event e{phase, static_cast<std::uint32_t>(track), name,
            b * kUsPerSecond, 0, {}};
    e.flowId = id;
    events_.push_back(std::move(e));
}

void
PerfettoTracer::nameTrack(Track track, const std::string &name)
{
    std::uint32_t tid = static_cast<std::uint32_t>(track);
    for (auto &kv : trackNames_) {
        if (kv.first == tid) {
            kv.second = name;
            return;
        }
    }
    trackNames_.emplace_back(tid, name);
}

void
PerfettoTracer::writeJson(std::ostream &out) const
{
    JsonWriter json(out);
    json.beginObject();
    json.field("displayTimeUnit", "ms");
    json.beginArray("traceEvents");

    {
        json.beginObject();
        json.field("ph", "M");
        json.field("pid", kPid);
        json.field("name", "process_name");
        json.beginObject("args");
        json.field("name", "nvsim");
        json.endObject();
        json.endObject();
    }
    for (const auto &[tid, name] : trackNames_) {
        json.beginObject();
        json.field("ph", "M");
        json.field("pid", kPid);
        json.field("tid", static_cast<std::uint64_t>(tid));
        json.field("name", "thread_name");
        json.beginObject("args");
        json.field("name", name);
        json.endObject();
        json.endObject();
        // sort_index puts tracks in our enum order, not name order.
        json.beginObject();
        json.field("ph", "M");
        json.field("pid", kPid);
        json.field("tid", static_cast<std::uint64_t>(tid));
        json.field("name", "thread_sort_index");
        json.beginObject("args");
        json.field("sort_index", static_cast<std::uint64_t>(tid));
        json.endObject();
        json.endObject();
    }

    for (const Event &e : events_) {
        json.beginObject();
        json.field("ph", std::string(1, e.phase));
        json.field("pid", kPid);
        json.field("tid", static_cast<std::uint64_t>(e.tid));
        json.field("name", e.name);
        json.field("ts", e.ts_us);
        if (e.phase == 'X')
            json.field("dur", e.dur_us);
        if (e.phase == 'i')
            json.field("s", "t");
        if (e.phase == 's' || e.phase == 't' || e.phase == 'f') {
            json.field("cat", "causal");
            json.field("id", e.flowId);
            // Bind the flow end to the enclosing slice, not the next.
            if (e.phase == 'f')
                json.field("bp", "e");
        }
        if (!e.args.empty()) {
            json.beginObject("args");
            for (const auto &[k, v] : e.args)
                json.field(k, v);
            json.endObject();
        }
        json.endObject();
    }

    json.endArray();
    if (!metadataJson_.empty())
        json.rawField("metadata", metadataJson_);
    if (dropped_ > 0)
        json.field("droppedEvents",
                   static_cast<std::uint64_t>(dropped_));
    json.endObject();
    out << '\n';
}

} // namespace nvsim::obs
