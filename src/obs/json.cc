#include "obs/json.hh"

#include <cmath>

#include "core/logging.hh"

namespace nvsim::obs
{

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (c < 0x20)
                out += strprintf("\\u%04x", c);
            else
                out += static_cast<char>(c);
        }
    }
    return out;
}

void
JsonWriter::separator()
{
    if (needComma_)
        out_ << ',';
    needComma_ = true;
}

void
JsonWriter::key(const std::string &k)
{
    nvsim_assert(!isObject_.empty() && isObject_.back());
    out_ << '"' << jsonEscape(k) << "\":";
}

void
JsonWriter::beginObject(const std::string &k)
{
    separator();
    if (!k.empty())
        key(k);
    out_ << '{';
    isObject_.push_back(true);
    needComma_ = false;
}

void
JsonWriter::endObject()
{
    nvsim_assert(!isObject_.empty() && isObject_.back());
    isObject_.pop_back();
    out_ << '}';
    needComma_ = true;
}

void
JsonWriter::beginArray(const std::string &k)
{
    separator();
    if (!k.empty())
        key(k);
    out_ << '[';
    isObject_.push_back(false);
    needComma_ = false;
}

void
JsonWriter::endArray()
{
    nvsim_assert(!isObject_.empty() && !isObject_.back());
    isObject_.pop_back();
    out_ << ']';
    needComma_ = true;
}

void
JsonWriter::field(const std::string &k, const std::string &v)
{
    separator();
    key(k);
    out_ << '"' << jsonEscape(v) << '"';
}

void
JsonWriter::field(const std::string &k, const char *v)
{
    field(k, std::string(v));
}

void
JsonWriter::field(const std::string &k, double v)
{
    separator();
    key(k);
    // JSON has no NaN/Inf; clamp to null so the file stays parseable.
    if (std::isfinite(v))
        out_ << strprintf("%.9g", v);
    else
        out_ << "null";
}

void
JsonWriter::field(const std::string &k, std::uint64_t v)
{
    separator();
    key(k);
    out_ << v;
}

void
JsonWriter::field(const std::string &k, int v)
{
    separator();
    key(k);
    out_ << v;
}

void
JsonWriter::field(const std::string &k, bool v)
{
    separator();
    key(k);
    out_ << (v ? "true" : "false");
}

void
JsonWriter::rawField(const std::string &k, const std::string &raw_json)
{
    separator();
    key(k);
    out_ << raw_json;
}

void
JsonWriter::value(double v)
{
    separator();
    if (std::isfinite(v))
        out_ << strprintf("%.9g", v);
    else
        out_ << "null";
}

void
JsonWriter::value(std::uint64_t v)
{
    separator();
    out_ << v;
}

void
JsonWriter::value(const std::string &v)
{
    separator();
    out_ << '"' << jsonEscape(v) << '"';
}

} // namespace nvsim::obs
