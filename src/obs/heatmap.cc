#include "obs/heatmap.hh"

#include <algorithm>

#include "core/logging.hh"

namespace nvsim::obs
{

SetProfiler::SetProfiler(std::uint64_t num_sets)
{
    if (num_sets == 0 || num_sets > kMaxSets) {
        fatal("set profiler: %llu sets outside supported range "
              "(1..%llu); use a SystemConfig scale factor",
              static_cast<unsigned long long>(num_sets),
              static_cast<unsigned long long>(kMaxSets));
    }
    hits_.assign(num_sets, 0);
    misses_.assign(num_sets, 0);
    evictions_.assign(num_sets, 0);
}

void
SetProfiler::merge(const SetProfiler &o)
{
    if (o.numSets() != numSets()) {
        panic("merging set profilers of different geometry (%llu vs "
              "%llu sets)",
              static_cast<unsigned long long>(numSets()),
              static_cast<unsigned long long>(o.numSets()));
    }
    for (std::uint64_t s = 0; s < numSets(); ++s) {
        hits_[s] += o.hits_[s];
        misses_[s] += o.misses_[s];
        evictions_[s] += o.evictions_[s];
    }
}

void
SetProfiler::reset()
{
    std::fill(hits_.begin(), hits_.end(), 0);
    std::fill(misses_.begin(), misses_.end(), 0);
    std::fill(evictions_.begin(), evictions_.end(), 0);
}

std::vector<SetProfiler::HotSet>
SetProfiler::topSets(std::size_t n) const
{
    std::vector<HotSet> touched;
    for (std::uint64_t s = 0; s < numSets(); ++s) {
        if (hits_[s] == 0 && misses_[s] == 0 && evictions_[s] == 0)
            continue;
        touched.push_back({s, hits_[s], misses_[s], evictions_[s]});
    }
    std::size_t keep = std::min(n, touched.size());
    std::partial_sort(touched.begin(), touched.begin() + keep,
                      touched.end(),
                      [](const HotSet &a, const HotSet &b) {
                          if (a.heat() != b.heat())
                              return a.heat() > b.heat();
                          return a.set < b.set;  // deterministic ties
                      });
    touched.resize(keep);
    return touched;
}

std::string
SetProfiler::report(std::size_t n) const
{
    std::string out = strprintf("%12s %12s %12s %12s\n", "set", "hits",
                                "misses", "evictions");
    for (const HotSet &h : topSets(n)) {
        out += strprintf("%12llu %12llu %12llu %12llu\n",
                         static_cast<unsigned long long>(h.set),
                         static_cast<unsigned long long>(h.hits),
                         static_cast<unsigned long long>(h.misses),
                         static_cast<unsigned long long>(h.evictions));
    }
    return out;
}

void
SetProfiler::appendCsvRows(const std::string &run_label,
                           std::vector<std::string> &rows) const
{
    std::string label = run_label;
    if (label.find_first_of(",\"\n") != std::string::npos) {
        std::string quoted = "\"";
        for (char c : label)
            quoted += c == '"' ? std::string("\"\"") : std::string(1, c);
        quoted += '"';
        label = quoted;
    }
    for (std::uint64_t s = 0; s < numSets(); ++s) {
        if (hits_[s] == 0 && misses_[s] == 0 && evictions_[s] == 0)
            continue;
        rows.push_back(strprintf(
            "%s,%llu,%llu,%llu,%llu", label.c_str(),
            static_cast<unsigned long long>(s),
            static_cast<unsigned long long>(hits_[s]),
            static_cast<unsigned long long>(misses_[s]),
            static_cast<unsigned long long>(evictions_[s])));
    }
}

} // namespace nvsim::obs
