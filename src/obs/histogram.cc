#include "obs/histogram.hh"

#include <bit>

#include "core/logging.hh"

namespace nvsim::obs
{

Log2Histogram::Log2Histogram(unsigned num_buckets, unsigned linear)
    : linear_(linear)
{
    if (linear_ == 0 || (linear_ & (linear_ - 1)) != 0)
        fatal("histogram linear region %u must be a power of two",
              linear_);
    if (num_buckets <= linear_)
        fatal("histogram needs more than %u buckets for a linear "
              "region of %u",
              num_buckets, linear_);
    linearLog2_ = static_cast<unsigned>(std::bit_width(linear_) - 1);
    buckets_.assign(num_buckets, 0);
}

unsigned
Log2Histogram::bucketFor(std::uint64_t value) const
{
    unsigned idx;
    if (value < linear_) {
        idx = static_cast<unsigned>(value);
    } else {
        unsigned log2 =
            static_cast<unsigned>(std::bit_width(value) - 1);
        idx = linear_ + (log2 - linearLog2_);
    }
    unsigned last = numBuckets() - 1;
    return idx < last ? idx : last;
}

std::uint64_t
Log2Histogram::bucketLow(unsigned i) const
{
    nvsim_assert(i < numBuckets());
    if (i < linear_)
        return i;
    return std::uint64_t{1} << (linearLog2_ + (i - linear_));
}

std::uint64_t
Log2Histogram::bucketHigh(unsigned i) const
{
    nvsim_assert(i < numBuckets());
    if (i == numBuckets() - 1)
        return UINT64_MAX;
    if (i < linear_)
        return i + 1;
    return std::uint64_t{1} << (linearLog2_ + (i - linear_) + 1);
}

void
Log2Histogram::sample(std::uint64_t value, std::uint64_t count)
{
    if (count == 0)
        return;
    buckets_[bucketFor(value)] += count;
    if (count_ == 0 || value < min_)
        min_ = value;
    if (value > max_)
        max_ = value;
    count_ += count;
    sum_ += value * count;
}

void
Log2Histogram::merge(const Log2Histogram &o)
{
    if (o.numBuckets() != numBuckets() || o.linear_ != linear_) {
        panic("merging histograms with different layouts "
              "(%u/%u buckets, linear %u/%u)",
              numBuckets(), o.numBuckets(), linear_, o.linear_);
    }
    for (unsigned i = 0; i < numBuckets(); ++i)
        buckets_[i] += o.buckets_[i];
    if (o.count_) {
        if (count_ == 0 || o.min_ < min_)
            min_ = o.min_;
        if (o.max_ > max_)
            max_ = o.max_;
    }
    count_ += o.count_;
    sum_ += o.sum_;
}

void
Log2Histogram::reset()
{
    buckets_.assign(buckets_.size(), 0);
    count_ = sum_ = min_ = max_ = 0;
}

double
Log2Histogram::mean() const
{
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

std::string
Log2Histogram::summary() const
{
    return strprintf("n=%llu mean=%.2f min=%llu max=%llu",
                     static_cast<unsigned long long>(count_), mean(),
                     static_cast<unsigned long long>(min()),
                     static_cast<unsigned long long>(max_));
}

} // namespace nvsim::obs
