#include "obs/observer.hh"

#include <cmath>
#include <sstream>

#include "core/logging.hh"
#include "obs/causal.hh"
#include "obs/prometheus.hh"
#include "obs/telemetry/telemetry.hh"

namespace nvsim::obs
{

const char *
outcomeClassName(CacheOutcome outcome)
{
    switch (outcome) {
      case CacheOutcome::Hit:
        return "tag_hit";
      case CacheOutcome::MissClean:
        return "miss_clean";
      case CacheOutcome::MissDirty:
        return "miss_dirty";
      case CacheOutcome::DdoHit:
        return "ddo_write";
      case CacheOutcome::Uncached:
        return "uncached";
    }
    return "unknown";
}

Observer::Observer(std::string run_label)
    : runLabel_(std::move(run_label))
{
    Group &requests = root().child("requests");
    for (CacheOutcome outcome :
         {CacheOutcome::Hit, CacheOutcome::MissClean,
          CacheOutcome::MissDirty, CacheOutcome::DdoHit,
          CacheOutcome::Uncached}) {
        Group &g = requests.child(outcomeClassName(outcome));
        g.label("outcome", outcomeClassName(outcome));
        unsigned i = static_cast<unsigned>(outcome);
        latency_[i] = &g.histogram(
            "latency_ns", "per-request load-to-use latency (ns)", 40);
        // Linear region 16: Table I's 1..5 device accesses land in
        // exact buckets, so "up to 5 accesses" is a visible spike.
        accesses_[i] = &g.histogram(
            "device_accesses",
            "device transactions generated per demand request", 20, 16);
    }
    dmaRequests_ =
        &requests.scalar("dma_requests",
                         "IMC requests issued by the DMA engines");
}

Observer::~Observer()
{
    // Move the hook out first: it ends up calling setDetachHook({})
    // on this object, which must not destroy the closure mid-call.
    if (detachHook_) {
        std::function<void()> hook = std::move(detachHook_);
        hook();
    }
}

void
Observer::enableCausal(const CausalOptions &opts)
{
    if (causal_)
        return;
    causal_ = std::make_unique<CausalTracer>(opts, tracer_);
    CausalTracer *c = causal_.get();
    Group &g = root().child("causal");
    g.formula("demand_requests", "demand requests seen by the sampler",
              [c] { return static_cast<double>(c->demands()); });
    g.formula("sampled_requests", "demand requests carrying a trace id",
              [c] { return static_cast<double>(c->sampled()); });
    g.formula("llc_hits", "demand accesses absorbed by the LLC",
              [c] { return static_cast<double>(c->llcHits()); });
}

void
Observer::pushContext(const std::string &frame)
{
    if (causal_)
        causal_->pushContext(frame);
}

void
Observer::popContext()
{
    if (causal_)
        causal_->popContext();
}

void
Observer::noteLlcHit()
{
    if (causal_)
        causal_->noteLlcHit();
}

SetProfiler *
Observer::ensureSetProfiler(std::uint64_t num_sets)
{
    if (!wantHeatmap_)
        return nullptr;
    if (!setProfiler_)
        setProfiler_ = std::make_unique<SetProfiler>(num_sets);
    else if (setProfiler_->numSets() != num_sets)
        panic("set profiler geometry changed mid-run (%llu -> %llu "
              "sets)",
              static_cast<unsigned long long>(setProfiler_->numSets()),
              static_cast<unsigned long long>(num_sets));
    return setProfiler_.get();
}

void
Observer::noteRequest(bool demand, CacheOutcome outcome,
                      unsigned device_accesses, double latency_s)
{
    unsigned i = static_cast<unsigned>(outcome);
    if (!demand) {
        dmaRequests_->add();
        accesses_[i]->sample(device_accesses);
        return;
    }
    accesses_[i]->sample(device_accesses);
    latency_[i]->sample(
        static_cast<std::uint64_t>(std::llround(latency_s * 1e9)));
}

void
Observer::noteEpoch(const EpochSample &s)
{
    if (!tracer_)
        return;
    double dt = s.t1 - s.t0;
    if (dt <= 0)
        return;
    const PerfCounters &d = s.delta;
    double line_gbs = static_cast<double>(kLineSize) / dt / 1e9;
    tracer_->span(Track::Epochs, "epoch", s.t0, s.t1,
                  {{"demand_GBps",
                    static_cast<double>(s.demandBytes) / dt / 1e9}});
    tracer_->counter("dram_read_GBps", s.t1,
                     static_cast<double>(d.dramRead) * line_gbs);
    tracer_->counter("dram_write_GBps", s.t1,
                     static_cast<double>(d.dramWrite) * line_gbs);
    tracer_->counter("nvram_read_GBps", s.t1,
                     static_cast<double>(d.nvramRead) * line_gbs);
    tracer_->counter("nvram_write_GBps", s.t1,
                     static_cast<double>(d.nvramWrite) * line_gbs);
    if (s.maintenance) {
        // Maintenance tracks are only emitted on epochs that saw
        // maintenance activity, so traces of maintenance-off runs are
        // unchanged and the counter tracks stay sparse.
        tracer_->counter("refresh_slots_per_s", s.t1,
                         static_cast<double>(d.refreshSlots) / dt);
        tracer_->counter("scrub_read_GBps", s.t1,
                         static_cast<double>(d.scrubReads) * line_gbs);
        tracer_->counter("scrub_corrected_per_s", s.t1,
                         static_cast<double>(d.scrubCorrected) / dt);
        tracer_->counter("lines_retired_per_s", s.t1,
                         static_cast<double>(d.linesRetired) / dt);
        tracer_->counter(
            "targeted_refreshes_per_s", s.t1,
            static_cast<double>(d.targetedRefreshes) / dt);
        tracer_->counter(
            "maintenance_duty", s.t1,
            static_cast<double>(d.maintenanceStallNs) * 1e-9 / dt);
    }
}

void
Observer::noteDma(double t0, double t1, std::uint64_t bytes)
{
    if (!tracer_)
        return;
    tracer_->span(Track::Dma, "dma copy", t0, t1,
                  {{"bytes", static_cast<double>(bytes)}});
}

void
Observer::noteThrottle(double t, unsigned channel, bool engaged)
{
    if (!tracer_)
        return;
    tracer_->instant(channelTrack(channel),
                     engaged ? "throttle engaged" : "throttle released",
                     t);
}

void
Observer::noteChannelOffline(double t, unsigned channel)
{
    if (!tracer_)
        return;
    tracer_->instant(channelTrack(channel), "channel offlined", t);
}

void
Observer::noteMaintenance(double t, unsigned channel, const char *event)
{
    if (!tracer_)
        return;
    tracer_->instant(channelTrack(channel), event, t);
}

void
Observer::kernelSpan(const std::string &name, double t0, double t1)
{
    if (!tracer_)
        return;
    tracer_->span(Track::Kernels, name, t0, t1);
}

void
Observer::onCountersReset(double prior_now)
{
    for (Log2Histogram *h : latency_)
        h->reset();
    for (Log2Histogram *h : accesses_)
        h->reset();
    if (setProfiler_)
        setProfiler_->reset();
    if (causal_)
        causal_->onCountersReset();
    if (tracer_)
        tracer_->setTimeBase(tracer_->timeBase() + prior_now);
}

void
Observer::seal()
{
    if (sealed_)
        return;
    sealed_ = true;
    {
        std::ostringstream os;
        registry_.dumpJson(os);
        statsJson_ = os.str();
    }
    {
        std::string extra;
        if (!runLabel_.empty())
            extra = "run=\"" + promEscapeLabel(runLabel_) + "\"";
        collectPrometheus(registry_, promFamilies_, "nvsim", extra);
        std::ostringstream os;
        renderPrometheus(promFamilies_, os);
        statsProm_ = os.str();
    }
}

const std::string &
Observer::statsJson()
{
    seal();
    return statsJson_;
}

const std::string &
Observer::statsProm()
{
    seal();
    return statsProm_;
}

const std::vector<PromFamily> &
Observer::promFamilies()
{
    seal();
    return promFamilies_;
}

void
Observer::attachTelemetry(TelemetryRun *tel)
{
    Group &g = root().child("telemetry");
    g.formula("latency_p50_ns", "median request latency (sketch)",
              [tel] { return double(tel->quantileNs(0.50)); });
    g.formula("latency_p90_ns", "p90 request latency (sketch)",
              [tel] { return double(tel->quantileNs(0.90)); });
    g.formula("latency_p99_ns", "p99 request latency (sketch)",
              [tel] { return double(tel->quantileNs(0.99)); });
    g.formula("latency_p999_ns", "p99.9 request latency (sketch)",
              [tel] { return double(tel->quantileNs(0.999)); });
}

} // namespace nvsim::obs
