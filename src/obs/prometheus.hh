/**
 * @file
 * Prometheus text exposition of a stats Registry.
 *
 * Metric names are the sanitized dot-joined group path plus the stat
 * name; group labels become Prometheus labels (values escaped per the
 * exposition format). Scalars are counters and get the conventional
 * `_total` suffix; formulas are gauges; histograms emit the standard
 * cumulative `_bucket{le="..."}` series plus `_sum` and `_count`.
 *
 * Export is family-shaped so multi-run output is *strictly* valid:
 * collectPrometheus() appends samples into PromFamily records (merging
 * by family name), and renderPrometheus() emits each family as one
 * block — a single `# HELP`/`# TYPE` pair followed by every sample of
 * that metric across all runs. Naively concatenating per-run dumps
 * would repeat TYPE lines and split a metric's samples into multiple
 * groups, both of which the exposition format forbids (and
 * scripts/prom_lint.py rejects).
 */

#ifndef NVSIM_OBS_PROMETHEUS_HH
#define NVSIM_OBS_PROMETHEUS_HH

#include <ostream>
#include <string>
#include <vector>

namespace nvsim::obs
{

class Registry;

/** One exposition sample: `name{labels} value`. */
struct PromSample
{
    std::string name;    //!< sample name (may carry _bucket/_sum/...)
    std::string labels;  //!< rendered label pairs, may be empty
    double value = 0;
};

/** One metric family: HELP/TYPE plus its samples across runs. */
struct PromFamily
{
    std::string name;  //!< family name (histogram base name)
    std::string type;  //!< "counter" | "gauge" | "histogram"
    std::string help;  //!< may be empty (no HELP line)
    std::vector<PromSample> samples;
};

/**
 * Sanitize @p name into a legal Prometheus metric name: characters
 * outside [a-zA-Z0-9_:] become '_', and a leading digit gets a '_'
 * prefix.
 */
std::string promSanitizeName(const std::string &name);

/**
 * Escape @p value for use inside a label value: backslash, double
 * quote and newline are escaped per the text exposition format.
 */
std::string promEscapeLabel(const std::string &value);

/**
 * Append the registry's samples to @p families, merging into existing
 * families by name. Every metric name is prefixed with @p prefix
 * (e.g. "nvsim"); @p extra_labels (already rendered, e.g. `run="4b"`)
 * is merged into every sample's label set and may be empty.
 */
void collectPrometheus(const Registry &registry,
                       std::vector<PromFamily> &families,
                       const std::string &prefix = "nvsim",
                       const std::string &extra_labels = "");

/** Append @p src's families/samples into @p dst (merge by name). */
void mergePrometheus(std::vector<PromFamily> &dst,
                     const std::vector<PromFamily> &src);

/** Render families in order, one HELP/TYPE block per family. */
void renderPrometheus(const std::vector<PromFamily> &families,
                      std::ostream &out);

/**
 * One-registry convenience: collect + render (what a single-run
 * caller wants).
 */
void writePrometheus(const Registry &registry, std::ostream &out,
                     const std::string &prefix = "nvsim",
                     const std::string &extra_labels = "");

} // namespace nvsim::obs

#endif // NVSIM_OBS_PROMETHEUS_HH
