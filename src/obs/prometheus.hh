/**
 * @file
 * Prometheus text exposition of a stats Registry.
 *
 * Metric names are the sanitized dot-joined group path plus the stat
 * name; group labels become Prometheus labels (values escaped per the
 * exposition format). Histograms emit the standard cumulative
 * `_bucket{le="..."}` series plus `_sum` and `_count`.
 */

#ifndef NVSIM_OBS_PROMETHEUS_HH
#define NVSIM_OBS_PROMETHEUS_HH

#include <ostream>
#include <string>

namespace nvsim::obs
{

class Registry;

/**
 * Sanitize @p name into a legal Prometheus metric name: characters
 * outside [a-zA-Z0-9_:] become '_', and a leading digit gets a '_'
 * prefix.
 */
std::string promSanitizeName(const std::string &name);

/**
 * Escape @p value for use inside a label value: backslash, double
 * quote and newline are escaped per the text exposition format.
 */
std::string promEscapeLabel(const std::string &value);

/**
 * Write the registry in text exposition format. Every metric name is
 * prefixed with @p prefix (e.g. "nvsim"); @p extra_labels (already
 * rendered, e.g. `run="4b"`) is merged into every sample's label set
 * and may be empty.
 */
void writePrometheus(const Registry &registry, std::ostream &out,
                     const std::string &prefix = "nvsim",
                     const std::string &extra_labels = "");

} // namespace nvsim::obs

#endif // NVSIM_OBS_PROMETHEUS_HH
