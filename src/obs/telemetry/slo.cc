#include "obs/telemetry/slo.hh"

#include <cctype>
#include <cstdlib>
#include <sstream>

#include "core/logging.hh"
#include "obs/diff/anomaly.hh"
#include "obs/telemetry/telemetry.hh"

namespace nvsim::obs
{

namespace
{

const char *kGrammar =
    "--slo= grammar: metric op value ['@' percent '%'], objectives "
    "joined by ';'\n"
    "  ops: < <= > >=   metrics: p50_ns p90_ns p99_ns p999_ns min_ns "
    "max_ns mean_ns\n"
    "  latency_count eff_gbs dram_gbs nvram_gbs amplification "
    "maint_duty active_s epochs anomalies\n"
    "  example: --slo='p99_ns<1500@95%;amplification<3.2'";

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

double
parseNumber(const std::string &text, const std::string &objective)
{
    const char *c = text.c_str();
    char *end = nullptr;
    double v = std::strtod(c, &end);
    if (end == c || *end != '\0')
        fatal("bad number '%s' in SLO objective '%s'\n%s",
              text.c_str(), objective.c_str(), kGrammar);
    return v;
}

} // namespace

bool
SloObjective::holds(double observed) const
{
    switch (op) {
      case Op::Lt:
        return observed < value;
      case Op::Le:
        return observed <= value;
      case Op::Gt:
        return observed > value;
      case Op::Ge:
        return observed >= value;
    }
    return false;
}

SloSpec
SloSpec::parse(const std::string &text)
{
    SloSpec spec;
    std::stringstream ss(text);
    std::string token;
    while (std::getline(ss, token, ';')) {
        token = trim(token);
        if (token.empty())
            continue;
        SloObjective o;
        o.spec = token;
        std::size_t opPos = token.find_first_of("<>");
        if (opPos == std::string::npos || opPos == 0)
            fatal("no comparison in SLO objective '%s'\n%s",
                  token.c_str(), kGrammar);
        std::size_t opLen = token.size() > opPos + 1 &&
                                    token[opPos + 1] == '='
                                ? 2
                                : 1;
        using Op = SloObjective::Op;
        o.op = token[opPos] == '<' ? (opLen == 2 ? Op::Le : Op::Lt)
                                   : (opLen == 2 ? Op::Ge : Op::Gt);
        o.metric = trim(token.substr(0, opPos));
        if (o.metric != "anomalies" &&
            !TelemetryRun::knownMetric(o.metric))
            fatal("unknown SLO metric '%s' in '%s'\n%s",
                  o.metric.c_str(), token.c_str(), kGrammar);
        std::string rest = trim(token.substr(opPos + opLen));
        std::size_t at = rest.find('@');
        if (at != std::string::npos) {
            std::string pct = trim(rest.substr(at + 1));
            if (!pct.empty() && pct.back() == '%')
                pct.pop_back();
            o.budgetPct = parseNumber(trim(pct), token);
            if (o.budgetPct <= 0 || o.budgetPct > 100)
                fatal("SLO budget must be in (0, 100] in '%s'\n%s",
                      token.c_str(), kGrammar);
            rest = trim(rest.substr(0, at));
        }
        o.value = parseNumber(rest, token);
        spec.objectives.push_back(std::move(o));
    }
    if (spec.objectives.empty())
        fatal("empty --slo= spec\n%s", kGrammar);
    return spec;
}

SloResult
evaluateSlo(const SloSpec &spec, const TelemetryRun &run,
            const AnomalyReport *anomalies)
{
    SloResult result;
    for (const SloObjective &o : spec.objectives) {
        SloObjectiveResult r;
        r.spec = o.spec;
        bool haveWorst = false;
        bool wantAnomalies = o.metric == "anomalies";
        for (const TelemetryWindow &w : run.windows()) {
            double v = 0;
            if (wantAnomalies) {
                v = anomalies ? static_cast<double>(
                                    anomalies->countAt(w.index))
                              : 0.0;
            } else if (!TelemetryRun::windowMetric(w, o.metric, &v)) {
                continue;
            }
            ++r.eligible;
            if (o.holds(v)) {
                ++r.compliant;
                continue;
            }
            // The most violating value: largest for upper-bound
            // objectives, smallest for lower-bound ones.
            bool upper = o.op == SloObjective::Op::Lt ||
                         o.op == SloObjective::Op::Le;
            if (!haveWorst || (upper ? v > r.worstValue
                                     : v < r.worstValue)) {
                r.worstValue = v;
                r.worstWindow = w.index;
                haveWorst = true;
            }
        }
        if (r.eligible > 0) {
            double share = 100.0 * static_cast<double>(r.compliant) /
                           static_cast<double>(r.eligible);
            // An epsilon absorbs FP noise in the 100 * m/n division.
            r.pass = share >= o.budgetPct - 1e-9;
        }
        result.pass = result.pass && r.pass;
        result.objectives.push_back(std::move(r));
    }
    return result;
}

std::string
sloReport(const std::string &label, const SloResult &r)
{
    std::ostringstream os;
    os << "=== SLO report: " << label << " ===\n";
    for (const SloObjectiveResult &o : r.objectives) {
        os << "  " << (o.pass ? "PASS" : "FAIL") << ' ' << o.spec
           << " : ";
        if (o.eligible == 0) {
            os << "no eligible windows (vacuous)\n";
            continue;
        }
        double share = 100.0 * static_cast<double>(o.compliant) /
                       static_cast<double>(o.eligible);
        os << strprintf("%.1f%%", share) << " of " << o.eligible
           << " windows compliant";
        if (o.compliant != o.eligible) {
            os << strprintf(" (worst %.6g @ window %lld)",
                            o.worstValue,
                            static_cast<long long>(o.worstWindow));
        }
        os << '\n';
    }
    os << "  overall: " << (r.pass ? "PASS" : "FAIL") << '\n';
    return os.str();
}

} // namespace nvsim::obs
