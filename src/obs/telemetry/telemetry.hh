/**
 * @file
 * Epoch-windowed telemetry: per-channel counter time series, derived
 * rates, and streaming latency percentiles.
 *
 * A TelemetryRun attaches to one MemorySystem
 * (MemorySystem::attachTelemetry) and samples two hooks:
 *
 *  - onEpoch(): at every epoch boundary, the delta of all
 *    NVSIM_PERF_COUNTER_FIELDS counters, per channel, is split across
 *    fixed simulated-time windows (default 1 ms, --telemetry-window=).
 *    An epoch straddling a window boundary contributes fractionally,
 *    proportional to its time overlap with each window, so windowed
 *    counters conserve the exact totals and window rates are
 *    duty-correct. Windows live in a core Ring (the same ring type
 *    behind TimeSeries) capped at --telemetry-ring= entries.
 *
 *  - noteLatency(): every demand request's latency feeds a log-linear
 *    percentile sketch (sketch.hh). Latencies are integral counts, so
 *    they are credited whole to the window containing the epoch's end
 *    (the epoch is when the latency work is priced). A run-cumulative
 *    sketch yields whole-run p50/p90/p99/p999 without storing samples.
 *
 * Unlike an Observer, telemetry does NOT force the per-line access
 * engine: the batched engine feeds bulk noteLatency(lat, n) calls that
 * land in exactly the buckets n per-line calls would, so telemetry
 * collection keeps batched/parallel performance. Runs are independent
 * (one per sweep point) and the export sorts by run label, which is
 * what keeps --jobs=N output byte-identical to serial.
 *
 * TelemetrySession owns the runs of one bench invocation and renders
 * the sparse CSV (run,window,t0,t1,channel,metric,value), the
 * nvsim-telemetry-v1 JSON and the per-run SLO report (slo.hh).
 */

#ifndef NVSIM_OBS_TELEMETRY_TELEMETRY_HH
#define NVSIM_OBS_TELEMETRY_TELEMETRY_HH

#include <array>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/timeseries.hh"
#include "imc/counters.hh"
#include "obs/manifest.hh"
#include "obs/telemetry/sketch.hh"
#include "obs/telemetry/slo.hh"

namespace nvsim::obs
{

/** Telemetry output selection, parsed from bench argv. */
struct TelemetryOptions
{
    std::string csvPath;   //!< --telemetry= windowed series CSV
    std::string jsonPath;  //!< --telemetry-json= nvsim-telemetry-v1
    std::string sloSpec;   //!< --slo= objective spec (slo.hh grammar)
    double windowSeconds = 1e-3;    //!< --telemetry-window=
    std::size_t ringWindows = 4096; //!< --telemetry-ring= (0 = all)

    /** Session provenance, embedded in every artifact (manifest.hh). */
    RunManifest manifest;

    std::string anomalyJsonPath;  //!< --anomaly-report= JSON file
    double anomalyZ = 6.0;        //!< --anomaly-z= robust z threshold

    bool
    any() const
    {
        return !csvPath.empty() || !jsonPath.empty() ||
               !sloSpec.empty() || !anomalyJsonPath.empty();
    }
};

/** One telemetry window: fractional counter deltas plus latencies. */
struct TelemetryWindow
{
    std::int64_t index = 0;  //!< window number (t0 = index * window_s)
    double activeS = 0;      //!< seconds of epoch overlap
    double epochs = 0;       //!< fractional epochs contributing
    double demandBytes = 0;
    /** Aggregate counter deltas, PerfField order. */
    std::array<double, PerfCounters::numFields()> all{};
    /** Per-channel counter deltas: channel-major, PerfField order. */
    std::vector<double> perChannel;
    LatencySketch sketch;
};

/** Per-run telemetry collector (one per observed MemorySystem). */
class TelemetryRun
{
  public:
    static constexpr std::size_t kFields = PerfCounters::numFields();

    TelemetryRun(std::string label, const TelemetryOptions &opts);

    const std::string &label() const { return label_; }
    double windowSeconds() const { return window_; }
    unsigned numChannels() const { return nch_; }

    /** @name Per-run provenance (set by MemorySystem at attach). */
    ///@{
    void setProvenance(ConfigDigest d) { provenance_ = std::move(d); }
    const ConfigDigest &provenance() const { return provenance_; }
    ///@}

    /** @name Hot-path hooks (wired by MemorySystem) */
    ///@{
    /** @p count demand requests each took @p latency_s. */
    void
    noteLatency(double latency_s, std::uint64_t count = 1)
    {
        pending_.add(static_cast<std::uint64_t>(
                         latency_s * 1e9 + 0.5),
                     count);
    }

    /**
     * An epoch [t0, t1) closed; @p per_channel are the @p nch channels'
     * cumulative counter blocks (this run diffs against its own
     * snapshots).
     */
    void onEpoch(double t0, double t1, std::uint64_t demand_bytes,
                 const PerfCounters *per_channel, unsigned nch);

    /** Baseline the snapshots at attach time (mid-run attach). */
    void prime(const PerfCounters *per_channel, unsigned nch);

    /** Counters and clock were zeroed: discard warmup windows. */
    void onCountersReset();
    ///@}

    /** Fold any latencies pending past the last epoch. Idempotent. */
    void finish();

    /** @name Results */
    ///@{
    const Ring<TelemetryWindow> &windows() const { return windows_; }
    std::uint64_t windowsDropped() const { return windows_.dropped(); }

    /** Exact cumulative counter totals (uint64, PerfField order). */
    const std::array<std::uint64_t, kFields> &totals() const
    {
        return totals_;
    }

    /** Whole-run latency sketch. */
    const LatencySketch &runSketch() const { return runSketch_; }

    /** Whole-run latency quantile in nanoseconds. */
    std::uint64_t
    quantileNs(double q) const
    {
        return runSketch_.quantile(q);
    }

    /**
     * Derived per-window metric by name (the SLO grammar's metric set:
     * eff_gbs, dram_gbs, nvram_gbs, amplification, maint_duty,
     * latency_count, p50_ns, p90_ns, p99_ns, p999_ns, min_ns, max_ns,
     * mean_ns, active_s, epochs). Returns false when the metric does
     * not apply to @p w (e.g. a percentile of an empty sketch).
     */
    static bool windowMetric(const TelemetryWindow &w,
                             const std::string &metric, double *out);

    /** Is @p metric a name windowMetric() understands? */
    static bool knownMetric(const std::string &metric);
    ///@}

  private:
    TelemetryWindow &windowFor(std::int64_t index);

    std::string label_;
    double window_;
    unsigned nch_ = 0;
    bool finished_ = false;
    ConfigDigest provenance_;

    Ring<TelemetryWindow> windows_;
    std::vector<std::uint64_t> snapshots_;  //!< nch * kFields
    std::array<std::uint64_t, kFields> totals_{};
    LatencySketch pending_;   //!< latencies since the last epoch close
    LatencySketch runSketch_;
};

/** Multi-run telemetry collection + file output for one bench. */
class TelemetrySession
{
  public:
    /** Parses the SLO spec eagerly: a typo dies before any run. */
    explicit TelemetrySession(TelemetryOptions opts);

    bool enabled() const { return opts_.any(); }
    const TelemetryOptions &options() const { return opts_; }
    const SloSpec &slo() const { return slo_; }

    /**
     * Create the collector for one run. Thread-safe: sweep workers
     * begin runs concurrently; each returned TelemetryRun is used by
     * its worker only. Returns nullptr when telemetry is off.
     */
    TelemetryRun *beginRun(const std::string &label);

    /** finish() every run (before rendering). */
    void finishAll();

    /**
     * Write the CSV/JSON outputs and print the SLO report. Runs are
     * sorted by label so output is byte-identical for any --jobs=N.
     * I/O failure is fatal unless @p from_destructor.
     */
    void writeFiles(bool from_destructor);

  private:
    TelemetryOptions opts_;
    SloSpec slo_;
    std::mutex mu_;
    std::vector<std::unique_ptr<TelemetryRun>> runs_;
    bool written_ = false;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_TELEMETRY_TELEMETRY_HH
