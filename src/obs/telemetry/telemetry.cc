#include "obs/telemetry/telemetry.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "core/hostprof.hh"
#include "core/logging.hh"
#include "obs/diff/anomaly.hh"
#include "obs/json.hh"

namespace nvsim::obs
{

namespace
{

constexpr std::size_t kF = TelemetryRun::kFields;

std::size_t
fieldIndex(PerfField f)
{
    return static_cast<std::size_t>(f);
}

/** %.9g — compact, deterministic, round-trippable for our ranges. */
std::string
num(double v)
{
    return strprintf("%.9g", v);
}

} // namespace

TelemetryRun::TelemetryRun(std::string label,
                           const TelemetryOptions &opts)
    : label_(std::move(label)),
      window_(opts.windowSeconds),
      windows_(opts.ringWindows)
{
    if (window_ <= 0)
        fatal("telemetry window must be positive (got %g s)", window_);
}

void
TelemetryRun::prime(const PerfCounters *per_channel, unsigned nch)
{
    nch_ = nch;
    snapshots_.assign(static_cast<std::size_t>(nch) * kF, 0);
    for (unsigned c = 0; c < nch; ++c) {
        auto arr = per_channel[c].asArray();
        for (std::size_t f = 0; f < kF; ++f)
            snapshots_[c * kF + f] = arr[f];
    }
}

TelemetryWindow &
TelemetryRun::windowFor(std::int64_t index)
{
    if (!windows_.empty() && windows_.back().index >= index)
        return windows_.back();
    windows_.push(TelemetryWindow{});
    TelemetryWindow &w = windows_.back();
    w.index = index;
    w.perChannel.assign(static_cast<std::size_t>(nch_) * kF, 0.0);
    return w;
}

void
TelemetryRun::onEpoch(double t0, double t1, std::uint64_t demand_bytes,
                      const PerfCounters *per_channel, unsigned nch)
{
    if (nch_ == 0) {
        nch_ = nch;
        snapshots_.assign(static_cast<std::size_t>(nch) * kF, 0);
    } else if (nch != nch_) {
        panic("telemetry: channel count changed mid-run (%u -> %u)",
              nch_, nch);
    }

    // Per-channel counter deltas against this run's own snapshots.
    double chDelta[64 * kF];  // VLA-free scratch; nch is small
    if (nch > 64)
        panic("telemetry: %u channels exceed the scratch bound", nch);
    double allDelta[kF] = {};
    for (unsigned c = 0; c < nch; ++c) {
        auto arr = per_channel[c].asArray();
        for (std::size_t f = 0; f < kF; ++f) {
            std::uint64_t prev = snapshots_[c * kF + f];
            std::uint64_t d = arr[f] - prev;
            snapshots_[c * kF + f] = arr[f];
            totals_[f] += d;
            double dd = static_cast<double>(d);
            chDelta[c * kF + f] = dd;
            allDelta[f] += dd;
        }
    }

    // Split the epoch across the fixed windows it overlaps,
    // proportional to time overlap (fractional-epoch carry).
    double dt = t1 - t0;
    TelemetryWindow *last = nullptr;
    if (dt <= 0) {
        last = &windowFor(
            static_cast<std::int64_t>(std::floor(t1 / window_)));
    } else {
        std::int64_t wi =
            static_cast<std::int64_t>(std::floor(t0 / window_));
        double segStart = t0;
        while (segStart < t1) {
            double wEnd = static_cast<double>(wi + 1) * window_;
            if (wEnd <= segStart) {
                // FP jitter put segStart at/past this window's end.
                ++wi;
                continue;
            }
            double segEnd = std::min(t1, wEnd);
            double frac = (segEnd - segStart) / dt;
            TelemetryWindow &w = windowFor(wi);
            w.activeS += segEnd - segStart;
            w.epochs += frac;
            w.demandBytes += frac * static_cast<double>(demand_bytes);
            for (std::size_t f = 0; f < kF; ++f)
                w.all[f] += frac * allDelta[f];
            for (std::size_t i = 0; i < nch * kF; ++i)
                w.perChannel[i] += frac * chDelta[i];
            last = &w;
            segStart = segEnd;
            ++wi;
        }
        if (!last) {
            last = &windowFor(
                static_cast<std::int64_t>(std::floor(t1 / window_)));
        }
    }

    // Latencies are integral counts: credit them whole to the window
    // containing the epoch's end (where the work was priced).
    if (!pending_.empty()) {
        last->sketch.merge(pending_);
        runSketch_.merge(pending_);
        pending_.clear();
    }
}

void
TelemetryRun::onCountersReset()
{
    // Warmup discard: pre-reset windows, sketches and totals go; the
    // snapshots go back to the zeroed counters.
    windows_.clear();
    std::fill(snapshots_.begin(), snapshots_.end(), 0);
    totals_ = {};
    pending_.clear();
    runSketch_.clear();
    finished_ = false;
}

void
TelemetryRun::finish()
{
    if (finished_)
        return;
    finished_ = true;
    if (pending_.empty())
        return;
    // Latencies recorded after the final epoch close (a workload that
    // never quiesced): fold them into the last window.
    TelemetryWindow &w =
        windows_.empty() ? windowFor(0) : windows_.back();
    w.sketch.merge(pending_);
    runSketch_.merge(pending_);
    pending_.clear();
}

bool
TelemetryRun::windowMetric(const TelemetryWindow &w,
                           const std::string &metric, double *out)
{
    auto field = [&](PerfField f) { return w.all[fieldIndex(f)]; };
    double active = w.activeS;
    double lineBytes = 64.0;

    if (metric == "active_s") {
        *out = active;
        return true;
    }
    if (metric == "epochs") {
        *out = w.epochs;
        return true;
    }
    if (metric == "eff_gbs" || metric == "dram_gbs" ||
        metric == "nvram_gbs" || metric == "maint_duty") {
        if (active <= 0)
            return false;
        if (metric == "eff_gbs")
            *out = w.demandBytes / active / 1e9;
        else if (metric == "dram_gbs")
            *out = (field(PerfField::dramRead) +
                    field(PerfField::dramWrite)) *
                   lineBytes / active / 1e9;
        else if (metric == "nvram_gbs")
            *out = (field(PerfField::nvramRead) +
                    field(PerfField::nvramWrite)) *
                   lineBytes / active / 1e9;
        else
            *out = field(PerfField::maintenanceStallNs) * 1e-9 / active;
        return true;
    }
    if (metric == "amplification") {
        double demand = field(PerfField::llcReads) +
                        field(PerfField::llcWrites);
        if (demand <= 0)
            return false;
        *out = (field(PerfField::dramRead) +
                field(PerfField::dramWrite) +
                field(PerfField::nvramRead) +
                field(PerfField::nvramWrite)) /
               demand;
        return true;
    }
    if (metric == "latency_count") {
        *out = static_cast<double>(w.sketch.count());
        return true;
    }
    // Latency distribution metrics need at least one request.
    if (w.sketch.empty())
        return false;
    if (metric == "p50_ns")
        *out = static_cast<double>(w.sketch.quantile(0.5));
    else if (metric == "p90_ns")
        *out = static_cast<double>(w.sketch.quantile(0.9));
    else if (metric == "p99_ns")
        *out = static_cast<double>(w.sketch.quantile(0.99));
    else if (metric == "p999_ns")
        *out = static_cast<double>(w.sketch.quantile(0.999));
    else if (metric == "min_ns")
        *out = static_cast<double>(w.sketch.min());
    else if (metric == "max_ns")
        *out = static_cast<double>(w.sketch.max());
    else if (metric == "mean_ns")
        *out = w.sketch.mean();
    else
        return false;
    return true;
}

bool
TelemetryRun::knownMetric(const std::string &metric)
{
    static const char *kNames[] = {
        "active_s",  "epochs",  "eff_gbs",       "dram_gbs",
        "nvram_gbs", "maint_duty", "amplification", "latency_count",
        "p50_ns",    "p90_ns",  "p99_ns",        "p999_ns",
        "min_ns",    "max_ns",  "mean_ns",
    };
    for (const char *n : kNames) {
        if (metric == n)
            return true;
    }
    return false;
}

TelemetrySession::TelemetrySession(TelemetryOptions opts)
    : opts_(std::move(opts))
{
    if (!opts_.sloSpec.empty())
        slo_ = SloSpec::parse(opts_.sloSpec);
}

TelemetryRun *
TelemetrySession::beginRun(const std::string &label)
{
    if (!enabled())
        return nullptr;
    std::lock_guard<std::mutex> lock(mu_);
    runs_.push_back(std::make_unique<TelemetryRun>(label, opts_));
    return runs_.back().get();
}

void
TelemetrySession::finishAll()
{
    for (auto &r : runs_)
        r->finish();
}

namespace
{

/** The "all"-channel derived metrics emitted per window, in order. */
const char *const kDerived[] = {
    "active_s", "epochs",   "eff_gbs", "dram_gbs", "nvram_gbs",
    "amplification", "maint_duty", "latency_count", "p50_ns",
    "p90_ns",   "p99_ns",   "p999_ns", "min_ns",   "max_ns",
    "mean_ns",
};

/** RFC-4180 quoting when a label would break the CSV shape. */
std::string
csvField(const std::string &s)
{
    if (s.find(',') == std::string::npos &&
        s.find('"') == std::string::npos &&
        s.find('\n') == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

/** One run's CSV rows (sparse: zero-valued metrics are skipped). */
std::string
csvChunk(const TelemetryRun &run)
{
    std::ostringstream os;
    double win = run.windowSeconds();
    std::string head = csvField(run.label());
    for (const TelemetryWindow &w : run.windows()) {
        std::string prefix =
            head + "," + strprintf("%lld", static_cast<long long>(
                                               w.index)) +
            "," + num(static_cast<double>(w.index) * win) + "," +
            num(static_cast<double>(w.index + 1) * win) + ",";
        for (const char *m : kDerived) {
            double v = 0;
            if (!TelemetryRun::windowMetric(w, m, &v) || v == 0)
                continue;  // sparse
            os << prefix << "all," << m << ',' << num(v) << '\n';
        }
        for (std::size_t f = 0; f < TelemetryRun::kFields; ++f) {
            if (w.all[f] == 0)
                continue;
            os << prefix << "all," << PerfCounters::fieldName(f)
               << ',' << num(w.all[f]) << '\n';
        }
        for (unsigned c = 0; c < run.numChannels(); ++c) {
            for (std::size_t f = 0; f < TelemetryRun::kFields; ++f) {
                double v = w.perChannel[c * TelemetryRun::kFields + f];
                if (v == 0)
                    continue;
                os << prefix << "ch" << c << ','
                   << PerfCounters::fieldName(f) << ',' << num(v)
                   << '\n';
            }
        }
    }
    return os.str();
}

void
jsonLatency(std::ostream &os, const LatencySketch &s)
{
    os << "{\"count\":" << s.count()
       << ",\"min_ns\":" << s.min() << ",\"max_ns\":" << s.max()
       << ",\"sum_ns\":" << s.sum()
       << ",\"mean_ns\":" << num(s.mean())
       << ",\"p50_ns\":" << s.quantile(0.5)
       << ",\"p90_ns\":" << s.quantile(0.9)
       << ",\"p99_ns\":" << s.quantile(0.99)
       << ",\"p999_ns\":" << s.quantile(0.999);
    // The sparse bucket array makes the sketch itself round-trip
    // (LatencySketch::fromSparse), so offline rank diffs are exact.
    os << ",\"sketch\":[";
    bool first = true;
    for (auto [b, c] : s.sparse()) {
        os << (first ? "" : ",") << '[' << b << ',' << c << ']';
        first = false;
    }
    os << "]}";
}

/** One run's JSON object (sans label, which the caller writes). */
std::string
jsonChunk(const TelemetryRun &run, const SloResult *slo,
          const AnomalyReport &anoms)
{
    std::ostringstream os;
    os << "{\"channels\":" << run.numChannels()
       << ",\"window_s\":" << num(run.windowSeconds())
       << ",\"windows_dropped\":" << run.windowsDropped();

    if (!run.provenance().empty())
        os << ",\"config\":" << run.provenance().json();

    os << ",\"totals\":{";
    bool first = true;
    for (std::size_t f = 0; f < TelemetryRun::kFields; ++f) {
        if (run.totals()[f] == 0)
            continue;
        os << (first ? "" : ",") << '"' << PerfCounters::fieldName(f)
           << "\":" << run.totals()[f];
        first = false;
    }
    os << '}';

    os << ",\"latency\":";
    jsonLatency(os, run.runSketch());

    os << ",\"anomalies\":" << anoms.json();

    if (slo) {
        os << ",\"slo\":{\"pass\":" << (slo->pass ? "true" : "false")
           << ",\"objectives\":[";
        for (std::size_t i = 0; i < slo->objectives.size(); ++i) {
            const SloObjectiveResult &r = slo->objectives[i];
            os << (i ? "," : "") << "{\"spec\":\""
               << jsonEscape(r.spec) << "\",\"eligible\":" << r.eligible
               << ",\"compliant\":" << r.compliant
               << ",\"worst_value\":" << num(r.worstValue)
               << ",\"worst_window\":" << r.worstWindow
               << ",\"pass\":" << (r.pass ? "true" : "false") << '}';
        }
        os << "]}";
    }

    os << ",\"windows\":[";
    bool firstW = true;
    for (const TelemetryWindow &w : run.windows()) {
        os << (firstW ? "" : ",") << "\n{\"index\":" << w.index
           << ",\"t0\":"
           << num(static_cast<double>(w.index) * run.windowSeconds())
           << ",\"t1\":"
           << num(static_cast<double>(w.index + 1) *
                  run.windowSeconds())
           << ",\"active_s\":" << num(w.activeS)
           << ",\"epochs\":" << num(w.epochs);
        if (w.demandBytes != 0)
            os << ",\"demand_bytes\":" << num(w.demandBytes);
        for (const char *m :
             {"eff_gbs", "dram_gbs", "nvram_gbs", "amplification",
              "maint_duty"}) {
            double v = 0;
            if (TelemetryRun::windowMetric(w, m, &v) && v != 0)
                os << ",\"" << m << "\":" << num(v);
        }
        os << ",\"counters\":{";
        bool firstC = true;
        for (std::size_t f = 0; f < TelemetryRun::kFields; ++f) {
            if (w.all[f] == 0)
                continue;
            os << (firstC ? "" : ",") << '"'
               << PerfCounters::fieldName(f) << "\":" << num(w.all[f]);
            firstC = false;
        }
        os << '}';
        // Per-channel deltas (sparse objects, channel order), so the
        // cross-run diff can attribute a delta to a channel.
        os << ",\"per_channel\":[";
        for (unsigned c = 0; c < run.numChannels(); ++c) {
            os << (c ? "," : "") << '{';
            bool firstF = true;
            for (std::size_t f = 0; f < TelemetryRun::kFields; ++f) {
                double v = w.perChannel[c * TelemetryRun::kFields + f];
                if (v == 0)
                    continue;
                os << (firstF ? "" : ",") << '"'
                   << PerfCounters::fieldName(f) << "\":" << num(v);
                firstF = false;
            }
            os << '}';
        }
        os << ']';
        if (!w.sketch.empty()) {
            os << ",\"latency\":";
            jsonLatency(os, w.sketch);
        }
        os << '}';
        firstW = false;
    }
    os << "\n]}";
    return os.str();
}

} // namespace

void
TelemetrySession::writeFiles(bool from_destructor)
{
    if (written_ || !enabled())
        return;
    written_ = true;
    HostPhase phase("telemetry.write");
    finishAll();

    // Render every run, then sort by (label, content): the emitted
    // bytes are independent of the order workers finished in, which is
    // what makes --jobs=N output byte-identical to serial.
    struct Rendered
    {
        const TelemetryRun *run;
        std::string csv;
        std::string json;
        SloResult slo;
        AnomalyReport anomalies;
    };
    AnomalyOptions anomalyOpts;
    anomalyOpts.z = opts_.anomalyZ;
    std::vector<Rendered> rendered;
    rendered.reserve(runs_.size());
    for (const auto &r : runs_) {
        Rendered out;
        out.run = r.get();
        out.anomalies = detectAnomalies(*r, anomalyOpts);
        if (!slo_.empty())
            out.slo = evaluateSlo(slo_, *r, &out.anomalies);
        out.csv = csvChunk(*r);
        out.json = jsonChunk(*r, slo_.empty() ? nullptr : &out.slo,
                             out.anomalies);
        rendered.push_back(std::move(out));
    }
    std::sort(rendered.begin(), rendered.end(),
              [](const Rendered &a, const Rendered &b) {
                  if (a.run->label() != b.run->label())
                      return a.run->label() < b.run->label();
                  return a.csv < b.csv;
              });

    auto open = [&](const std::string &path,
                    std::ofstream &ofs) -> bool {
        ofs.open(path, std::ios::out | std::ios::trunc);
        if (ofs)
            return true;
        if (from_destructor) {
            warn("telemetry: could not open '%s' for writing",
                 path.c_str());
            return false;
        }
        fatal("telemetry: could not open '%s' for writing",
              path.c_str());
    };

    for (const Rendered &r : rendered) {
        if (r.run->windowsDropped() > 0) {
            warn("telemetry: run '%s' evicted %llu windows (ring "
                 "capacity %zu; raise --telemetry-ring=)",
                 r.run->label().c_str(),
                 static_cast<unsigned long long>(
                     r.run->windowsDropped()),
                 opts_.ringWindows);
        }
    }

    if (!opts_.csvPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.csvPath, ofs)) {
            ofs << "run,window,t0,t1,channel,metric,value\n";
            for (const Rendered &r : rendered)
                ofs << r.csv;
            inform("telemetry: wrote windowed series to %s",
                   opts_.csvPath.c_str());
        }
    }

    if (!opts_.jsonPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.jsonPath, ofs)) {
            ofs << "{\"schema\":\"nvsim-telemetry-v1\",\"window_s\":"
                << num(opts_.windowSeconds) << ",\"manifest\":"
                << opts_.manifest.json(opts_.windowSeconds,
                                       "nvsim-telemetry-v1")
                << ",\"runs\":[";
            for (std::size_t i = 0; i < rendered.size(); ++i) {
                if (i)
                    ofs << ',';
                ofs << "\n{\"label\":\""
                    << jsonEscape(rendered[i].run->label())
                    << "\",\"telemetry\":" << rendered[i].json << '}';
            }
            ofs << "\n]}\n";
            inform("telemetry: wrote JSON to %s",
                   opts_.jsonPath.c_str());
        }
    }

    if (!opts_.anomalyJsonPath.empty()) {
        std::ofstream ofs;
        if (open(opts_.anomalyJsonPath, ofs)) {
            ofs << "{\"schema\":\"nvsim-anomaly-v1\",\"z\":"
                << num(opts_.anomalyZ) << ",\"manifest\":"
                << opts_.manifest.json(opts_.windowSeconds,
                                       "nvsim-telemetry-v1")
                << ",\"runs\":[";
            for (std::size_t i = 0; i < rendered.size(); ++i) {
                if (i)
                    ofs << ',';
                ofs << "\n{\"label\":\""
                    << jsonEscape(rendered[i].run->label()) << '"';
                if (!rendered[i].run->provenance().empty())
                    ofs << ",\"config\":"
                        << rendered[i].run->provenance().json();
                ofs << ",\"anomalies\":"
                    << rendered[i].anomalies.json() << '}';
            }
            ofs << "\n]}\n";
            inform("telemetry: wrote anomaly report to %s",
                   opts_.anomalyJsonPath.c_str());
        }
    }

    if (!slo_.empty()) {
        for (const Rendered &r : rendered)
            std::fputs(sloReport(r.run->label(), r.slo).c_str(),
                       stdout);
    }
}

} // namespace nvsim::obs
