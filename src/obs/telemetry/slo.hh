/**
 * @file
 * SLO objectives over telemetry windows.
 *
 * Grammar (--slo=SPEC):
 *
 *   spec      := objective (';' objective)*
 *   objective := metric op value ['@' percent '%']
 *   op        := '<' | '<=' | '>' | '>='
 *
 * metric is any per-window telemetry metric
 * (TelemetryRun::windowMetric): p50_ns, p90_ns, p99_ns, p999_ns,
 * max_ns, eff_gbs, dram_gbs, nvram_gbs, amplification, maint_duty, ...
 * value is the target; the optional '@percent%' is the compliance
 * budget — the share of eligible windows that must meet the target
 * (default 100%). Examples:
 *
 *   --slo='p99_ns<1500'            every window's p99 under 1.5 us
 *   --slo='p99_ns<1500@95%;amplification<3.2'
 *                                  95% of windows under 1.5 us AND
 *                                  every window's amplification < 3.2
 *
 * An objective is evaluated per window over the windows where the
 * metric applies (a latency percentile needs at least one request in
 * the window); it passes when compliant/eligible >= budget. A run with
 * no eligible windows passes vacuously (reported as such).
 *
 * The special metric `anomalies` is the per-window count of online
 * anomaly-detector firings (obs/diff/anomaly.hh), so
 * --slo='anomalies<1' demands an anomaly-free run and
 * --slo='anomalies<1@95%' tolerates detector firings in 5% of
 * windows. It needs the AnomalyReport argument of evaluateSlo();
 * without one every window counts as 0 anomalies.
 */

#ifndef NVSIM_OBS_TELEMETRY_SLO_HH
#define NVSIM_OBS_TELEMETRY_SLO_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvsim::obs
{

class TelemetryRun;
struct AnomalyReport;

/** One parsed objective. */
struct SloObjective
{
    enum class Op
    {
        Lt,
        Le,
        Gt,
        Ge,
    };

    std::string metric;
    Op op = Op::Lt;
    double value = 0;
    double budgetPct = 100.0;  //!< share of windows that must comply
    std::string spec;          //!< original text, for reporting

    bool holds(double observed) const;
};

/** A parsed --slo= spec. */
struct SloSpec
{
    std::vector<SloObjective> objectives;

    bool empty() const { return objectives.empty(); }

    /** Parse @p text; fatal() with the grammar on any error. */
    static SloSpec parse(const std::string &text);
};

/** Per-objective evaluation outcome. */
struct SloObjectiveResult
{
    std::string spec;
    std::uint64_t eligible = 0;   //!< windows where the metric applied
    std::uint64_t compliant = 0;  //!< ... that met the target
    double worstValue = 0;        //!< most violating observed value
    std::int64_t worstWindow = -1;  //!< its window index (-1 = none)
    bool pass = true;
};

/** Whole-run evaluation outcome. */
struct SloResult
{
    std::vector<SloObjectiveResult> objectives;
    bool pass = true;
};

/**
 * Evaluate @p spec over every window of @p run. @p anomalies feeds
 * the `anomalies` metric (per-window detector firings); pass nullptr
 * when anomaly detection is off (the metric then reads 0 everywhere).
 */
SloResult evaluateSlo(const SloSpec &spec, const TelemetryRun &run,
                      const AnomalyReport *anomalies = nullptr);

/** Render the console report block for one run. */
std::string sloReport(const std::string &label, const SloResult &r);

} // namespace nvsim::obs

#endif // NVSIM_OBS_TELEMETRY_SLO_HH
