#include "obs/telemetry/sketch.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "core/logging.hh"

namespace nvsim::obs
{

unsigned
LatencySketch::bucketOf(std::uint64_t v)
{
    if (v < kSubBuckets)
        return static_cast<unsigned>(v);
    unsigned msb = static_cast<unsigned>(std::bit_width(v) - 1);
    unsigned octave = msb - kSubBits;
    unsigned sub =
        static_cast<unsigned>((v >> octave) - kSubBuckets);
    return (octave + 1) * kSubBuckets + sub;
}

std::uint64_t
LatencySketch::bucketLow(unsigned b)
{
    if (b < kSubBuckets)
        return b;
    unsigned octave = b / kSubBuckets - 1;
    unsigned sub = b % kSubBuckets;
    return static_cast<std::uint64_t>(kSubBuckets + sub) << octave;
}

std::uint64_t
LatencySketch::bucketHigh(unsigned b)
{
    if (b < kSubBuckets)
        return b + 1;
    unsigned octave = b / kSubBuckets - 1;
    return bucketLow(b) + (static_cast<std::uint64_t>(1) << octave);
}

std::uint64_t
LatencySketch::bucketMid(unsigned b)
{
    std::uint64_t lo = bucketLow(b);
    return lo + (bucketHigh(b) - lo) / 2;
}

void
LatencySketch::grow(unsigned bucket)
{
    if (bucket >= buckets_.size())
        buckets_.resize(bucket + 1, 0);
}

void
LatencySketch::add(std::uint64_t value_ns, std::uint64_t count)
{
    if (count == 0)
        return;
    unsigned b = bucketOf(value_ns);
    grow(b);
    buckets_[b] += count;
    count_ += count;
    sum_ += value_ns * count;
    min_ = std::min(min_, value_ns);
    max_ = std::max(max_, value_ns);
}

void
LatencySketch::merge(const LatencySketch &o)
{
    if (o.count_ == 0)
        return;
    if (o.buckets_.size() > buckets_.size())
        buckets_.resize(o.buckets_.size(), 0);
    for (std::size_t i = 0; i < o.buckets_.size(); ++i)
        buckets_[i] += o.buckets_[i];
    count_ += o.count_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

void
LatencySketch::clear()
{
    buckets_.clear();
    count_ = 0;
    sum_ = 0;
    min_ = UINT64_MAX;
    max_ = 0;
}

double
LatencySketch::mean() const
{
    return count_ ? static_cast<double>(sum_) /
                        static_cast<double>(count_)
                  : 0.0;
}

std::uint64_t
LatencySketch::quantile(double q) const
{
    if (count_ == 0)
        return 0;
    if (q < 0)
        q = 0;
    if (q > 1)
        q = 1;
    // Nearest-rank, 1-based: rank = ceil(q * count), with an epsilon
    // guard so exact products (0.5 * 4) don't round up off a one-ulp
    // FP excess. Rank 1 for q = 0 — the minimum.
    std::uint64_t rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(count_) - 1e-9));
    rank = std::max<std::uint64_t>(1, std::min(rank, count_));
    // The extreme ranks ARE the tracked extremes — exact, not a
    // bucket midpoint.
    if (rank == 1)
        return min_;
    if (rank == count_)
        return max_;
    std::uint64_t cumulative = 0;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        cumulative += buckets_[b];
        if (cumulative >= rank) {
            std::uint64_t mid = bucketMid(static_cast<unsigned>(b));
            return std::clamp(mid, min_, max_);
        }
    }
    panic("LatencySketch: rank %llu beyond bucket mass %llu",
          static_cast<unsigned long long>(rank),
          static_cast<unsigned long long>(cumulative));
}

std::vector<std::pair<std::uint32_t, std::uint64_t>>
LatencySketch::sparse() const
{
    std::vector<std::pair<std::uint32_t, std::uint64_t>> out;
    for (std::size_t b = 0; b < buckets_.size(); ++b) {
        if (buckets_[b])
            out.emplace_back(static_cast<std::uint32_t>(b),
                             buckets_[b]);
    }
    return out;
}

LatencySketch
LatencySketch::fromSparse(
    const std::vector<std::pair<std::uint32_t, std::uint64_t>> &buckets,
    std::uint64_t min_ns, std::uint64_t max_ns, std::uint64_t sum_ns)
{
    LatencySketch s;
    for (auto [b, c] : buckets) {
        if (b >= kMaxBuckets)
            fatal("LatencySketch: bucket %u out of range (max %u)",
                  static_cast<unsigned>(b), kMaxBuckets);
        if (c == 0)
            continue;
        s.grow(b);
        s.buckets_[b] += c;
        s.count_ += c;
    }
    if (s.count_ > 0) {
        s.min_ = min_ns;
        s.max_ = max_ns;
        s.sum_ = sum_ns;
    }
    return s;
}

bool
LatencySketch::operator==(const LatencySketch &o) const
{
    if (count_ != o.count_ || sum_ != o.sum_ || max_ != o.max_ ||
        (count_ && min_ != o.min_))
        return false;
    std::size_t n = std::max(buckets_.size(), o.buckets_.size());
    for (std::size_t i = 0; i < n; ++i) {
        std::uint64_t a = i < buckets_.size() ? buckets_[i] : 0;
        std::uint64_t b = i < o.buckets_.size() ? o.buckets_[i] : 0;
        if (a != b)
            return false;
    }
    return true;
}

} // namespace nvsim::obs
