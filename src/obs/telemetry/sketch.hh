/**
 * @file
 * LatencySketch: a deterministic log-linear percentile sketch
 * (HDR-histogram style) over non-negative integer latencies in
 * nanoseconds.
 *
 * Bucket layout: values 0..63 get one exact bucket each. Above that,
 * every power-of-two octave [2^m, 2^(m+1)) is split into 64 linear
 * sub-buckets, so a bucket spanning [lo, lo + w) always has
 * w <= lo / 64. Quantiles report the bucket midpoint, so the error of
 * a reported quantile against the true sample value is at most w/2,
 * i.e. a relative error of at most 1/128 (~0.79%) — comfortably
 * inside the documented <= 2% per-bucket bound (values below 64 are
 * exact). quantile(0) and quantile(1) are exact: the sketch tracks
 * min/max and clamps every representative into [min, max].
 *
 * Merging is element-wise bucket addition, which is exactly
 * associative and commutative: merging per-worker sketches in any
 * order or grouping equals the single-worker sketch bit for bit. This
 * is what keeps --jobs=N telemetry output byte-identical to serial.
 *
 * Memory: the bucket array is grown lazily to the highest touched
 * bucket; the full range (2^63) needs 3776 buckets (~30 KiB).
 */

#ifndef NVSIM_OBS_TELEMETRY_SKETCH_HH
#define NVSIM_OBS_TELEMETRY_SKETCH_HH

#include <cstdint>
#include <utility>
#include <vector>

namespace nvsim::obs
{

/** Streaming log-linear percentile sketch (see file comment). */
class LatencySketch
{
  public:
    /** log2 of the sub-buckets per octave. */
    static constexpr unsigned kSubBits = 6;
    static constexpr unsigned kSubBuckets = 1u << kSubBits;  // 64

    /**
     * Largest possible bucket index + 1: 64 exact buckets plus one
     * octave of 64 sub-buckets for each msb position 6..63.
     */
    static constexpr unsigned kMaxBuckets =
        kSubBuckets * (65 - kSubBits);

    /**
     * Documented per-bucket relative-error bound of a reported
     * quantile (test_telemetry verifies it against exact percentiles).
     */
    static constexpr double kRelativeErrorBound = 0.02;

    /** Index of the bucket containing @p v. */
    static unsigned bucketOf(std::uint64_t v);

    /** Inclusive lower bound of bucket @p b. */
    static std::uint64_t bucketLow(unsigned b);

    /** Exclusive upper bound of bucket @p b. */
    static std::uint64_t bucketHigh(unsigned b);

    /** Representative (midpoint) of bucket @p b. */
    static std::uint64_t bucketMid(unsigned b);

    /** Record @p count occurrences of @p value_ns. */
    void add(std::uint64_t value_ns, std::uint64_t count = 1);

    /** Element-wise merge; exact, associative, commutative. */
    void merge(const LatencySketch &o);

    void clear();

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    bool empty() const { return count_ == 0; }
    /** Exact extremes of the recorded values (0 when empty). */
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /**
     * Value at quantile @p q in [0, 1]: the representative of the
     * bucket holding the sample of rank ceil(q * count), clamped into
     * [min, max]. 0 when empty.
     */
    std::uint64_t quantile(double q) const;

    /** Sparse (bucket, count) view, ascending bucket index. */
    std::vector<std::pair<std::uint32_t, std::uint64_t>> sparse() const;

    /**
     * Reconstruct a sketch from its exported sparse bucket view plus
     * the exact extremes and sum (the nvsim-telemetry-v1 "latency"
     * object carries all four). The result compares equal
     * (operator==) to the sketch that produced the export, so rank
     * queries on a loaded artifact are exact to bucket resolution —
     * what makes cross-run rank diffs (obs/diff) exact rather than
     * re-quantized.
     */
    static LatencySketch
    fromSparse(const std::vector<std::pair<std::uint32_t,
                                           std::uint64_t>> &buckets,
               std::uint64_t min_ns, std::uint64_t max_ns,
               std::uint64_t sum_ns);

    bool operator==(const LatencySketch &o) const;
    bool operator!=(const LatencySketch &o) const { return !(*this == o); }

  private:
    void grow(unsigned bucket);

    std::vector<std::uint64_t> buckets_;  //!< sized lazily
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t min_ = UINT64_MAX;
    std::uint64_t max_ = 0;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_TELEMETRY_SKETCH_HH
