/**
 * @file
 * Run provenance manifests.
 *
 * The paper's argument is comparative — 1LM vs 2LM vs software
 * placement under identical conditions — so every telemetry artifact
 * must say *what produced it* precisely enough that two artifacts are
 * comparable-or-rejectable by construction. A RunManifest captures the
 * session-level provenance (bench name, canonical flag set, seeds,
 * schema versions, window length, an optional host-calibration
 * yardstick), and each observed run additionally carries a
 * SystemConfig digest (an FNV-1a hash of SystemConfig::toJson(), so
 * any knob change — scale, policy, maintenance plan — changes the
 * hash).
 *
 * The manifest is embedded into the telemetry JSON (top-level
 * "manifest" object plus per-run "manifest"), the Prometheus output
 * (an info-style `nvsim_build_info` gauge, value always 1, provenance
 * in labels) and the Perfetto trace (top-level "metadata" object).
 * src/obs/diff consumes it: schema or window mismatch makes two
 * artifacts incomparable; a config-hash mismatch is a first-class
 * diagnostic on the diff report, not a crash.
 *
 * Determinism: every field is a pure function of the invocation
 * except host_calibration, which is taken from the
 * NVSIM_HOST_CALIBRATION environment variable (0 when unset) so that
 * default artifacts stay byte-identical run to run and at any
 * --jobs=N. scripts/bench_report.py measures the yardstick once and
 * exports it to the benches it invokes.
 */

#ifndef NVSIM_OBS_MANIFEST_HH
#define NVSIM_OBS_MANIFEST_HH

#include <cstdint>
#include <string>
#include <vector>

namespace nvsim::obs
{

/** FNV-1a 64-bit hash (the config digest primitive). */
std::uint64_t fnv1a64(const std::string &text);

/** Canonical rendering of a 64-bit digest: "0x%016llx". */
std::string digestHex(std::uint64_t digest);

/** Session-level provenance, embedded into every telemetry artifact. */
struct RunManifest
{
    /** Manifest schema version (bumped when fields change meaning). */
    static constexpr const char *kSchema = "nvsim-manifest-v1";

    std::string bench;               //!< argv[0] basename
    std::vector<std::string> flags;  //!< verbatim argv[1..], in order
    std::uint64_t causalSeed = 1;    //!< --causal-seed= (sampling RNG)

    /**
     * Host-calibration yardstick: seconds a fixed CPU-bound workload
     * takes on this host (see bench_report.py host_calibration).
     * Read from NVSIM_HOST_CALIBRATION; 0 = not calibrated. Never
     * measured in-process: wall clock would break byte-identity.
     */
    double hostCalibration = 0;

    /** Populate hostCalibration from the environment. */
    void readEnvironment();

    /**
     * The manifest as one JSON object, e.g.
     * {"schema":"nvsim-manifest-v1","bench":...,"flags":[...],...}.
     * @p window_s and @p telemetry_schema describe the artifact the
     * manifest is embedded in.
     */
    std::string json(double window_s,
                     const std::string &telemetry_schema) const;
};

/** Per-run provenance: the SystemConfig digest plus headline knobs. */
struct ConfigDigest
{
    std::string hash;  //!< digestHex(fnv1a64(config.toJson()))
    std::string mode;  //!< memoryModeName()
    std::uint64_t scale = 0;

    bool empty() const { return hash.empty(); }

    /** {"config_hash":"0x...","mode":"2lm","scale":N} */
    std::string json() const;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_MANIFEST_HH
