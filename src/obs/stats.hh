/**
 * @file
 * Hierarchical statistics registry, in the gem5 stats tradition.
 *
 * Components register named stats into a tree of Groups:
 *
 *   obs::Group &imc = registry.root().child("imc0");
 *   imc.label("channel", "0");
 *   obs::Scalar &rd = imc.scalar("dram_read", "64 B DRAM reads");
 *   imc.formula("amplification", "device accesses per demand request",
 *               [&] { return counters.amplification(); });
 *   obs::Log2Histogram &h =
 *       imc.histogram("latency_ns", "per-request latency", 40);
 *
 * Three stat kinds:
 *  - Scalar:        an owned monotonically written uint64;
 *  - Formula:       a callback evaluated at dump time, so components
 *                   expose live state with zero hot-path cost;
 *  - Log2Histogram: bucketed distribution (see obs/histogram.hh).
 *
 * The registry dumps as nested JSON (dumpJson) and as Prometheus text
 * exposition format (obs/prometheus.hh). Labels attached to a group
 * become Prometheus labels on every stat beneath it.
 */

#ifndef NVSIM_OBS_STATS_HH
#define NVSIM_OBS_STATS_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/histogram.hh"

namespace nvsim::obs
{

class JsonWriter;

/** What a registered stat is (drives serialization). */
enum class StatKind : std::uint8_t { Scalar, Formula, Histogram };

/** An owned uint64 counter stat. */
class Scalar
{
  public:
    void add(std::uint64_t n = 1) { value_ += n; }
    void set(std::uint64_t v) { value_ = v; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** One named stat in a group. */
struct Stat
{
    std::string name;
    std::string desc;
    StatKind kind = StatKind::Scalar;
    std::unique_ptr<Scalar> scalar;
    std::function<double()> formula;
    std::unique_ptr<Log2Histogram> histogram;
};

/** A node in the stats hierarchy. */
class Group
{
  public:
    explicit Group(std::string name) : name_(std::move(name)) {}

    Group(const Group &) = delete;
    Group &operator=(const Group &) = delete;

    /** Get-or-create a child group. */
    Group &child(const std::string &name);

    /**
     * Attach a Prometheus label inherited by every stat beneath this
     * group (e.g. channel="3"). Labels do not affect the JSON path.
     */
    void label(const std::string &key, const std::string &value);

    /** Register stats. Re-registering a name panics. */
    Scalar &scalar(const std::string &name, const std::string &desc);
    void formula(const std::string &name, const std::string &desc,
                 std::function<double()> fn);
    Log2Histogram &histogram(const std::string &name,
                             const std::string &desc,
                             unsigned num_buckets = 32,
                             unsigned linear = 2);

    const std::string &name() const { return name_; }
    const std::vector<std::unique_ptr<Group>> &children() const
    {
        return children_;
    }
    const std::vector<Stat> &stats() const { return stats_; }
    const std::vector<std::pair<std::string, std::string>> &
    labels() const
    {
        return labels_;
    }

    /** Find a registered stat by name; nullptr if absent. */
    const Stat *find(const std::string &name) const;

    void dumpJson(JsonWriter &json) const;

  private:
    Stat &add(const std::string &name, const std::string &desc,
              StatKind kind);

    std::string name_;
    std::vector<Stat> stats_;
    std::vector<std::unique_ptr<Group>> children_;
    std::vector<std::pair<std::string, std::string>> labels_;
};

/** Root of one stats hierarchy. */
class Registry
{
  public:
    Registry() : root_("") {}

    Group &root() { return root_; }
    const Group &root() const { return root_; }

    /** Dump the whole tree as one nested JSON object. */
    void dumpJson(std::ostream &out) const;

  private:
    Group root_;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_STATS_HH
