#include "obs/causal.hh"

#include "obs/json.hh"
#include "obs/perfetto.hh"

namespace nvsim::obs
{

namespace
{

const char *
deviceName(MemPool pool)
{
    return pool == MemPool::Dram ? "dram" : "nvram";
}

const char *
displayContext(const std::string &ctx)
{
    return ctx.empty() ? "(root)" : ctx.c_str();
}

} // namespace

const char *
requestClassName(MemRequestKind kind, CacheOutcome outcome)
{
    bool read = kind == MemRequestKind::LlcRead;
    switch (outcome) {
      case CacheOutcome::Hit:
        return read ? "read_hit" : "write_hit";
      case CacheOutcome::MissClean:
        return read ? "read_miss_clean" : "write_miss_clean";
      case CacheOutcome::MissDirty:
        return read ? "read_miss_dirty" : "write_miss_dirty";
      case CacheOutcome::DdoHit:
        return "ddo_write";
      case CacheOutcome::Uncached:
        return read ? "read_direct" : "write_direct";
    }
    return "unknown";
}

CausalTracer::CausalTracer(const CausalOptions &opts,
                           PerfettoTracer *tracer)
    : opts_(opts), tracer_(tracer), rng_(opts.seed)
{
    if (opts_.samplePeriod == 0)
        opts_.samplePeriod = 1;
    phase_ = opts_.seed % opts_.samplePeriod;
    reservoir_.reserve(opts_.reservoirSize);
}

void
CausalTracer::pushContext(const std::string &frame)
{
    frames_.push_back(frame);
    if (joined_.empty())
        joined_ = frame;
    else
        joined_ += ";" + frame;
    cur_ = nullptr;
}

void
CausalTracer::popContext()
{
    if (frames_.empty())
        return;
    frames_.pop_back();
    joined_.clear();
    for (const std::string &f : frames_) {
        if (!joined_.empty())
            joined_ += ';';
        joined_ += f;
    }
    cur_ = nullptr;
}

void
CausalTracer::record(MemRequestKind kind, CacheOutcome outcome,
                     const CausalBreakdown &breakdown, double t_now,
                     double latency, unsigned channel)
{
    ++sampled_;
    ClassStats &cs =
        resolve()->classes[requestClassName(kind, outcome)];
    cs.samples += 1;
    cs.accesses += breakdown.count;
    cs.latency += latency;
    for (std::uint8_t i = 0; i < breakdown.count; ++i) {
        const CauseSpan &s = breakdown.spans[i];
        unsigned c = static_cast<unsigned>(s.cause);
        cs.causeCount[c] += 1;
        cs.causeLatency[c] += s.latency;
    }

    Exemplar e;
    e.context = joined_;
    e.klass = requestClassName(kind, outcome);
    e.t = t_now;
    e.latency = latency;
    e.channel = channel;
    e.breakdown = breakdown;
    if (tracer_ && flowsEmitted_ < opts_.maxFlowRequests)
        emitFlow(e);
    offerExemplar(e);
}

void
CausalTracer::offerExemplar(const Exemplar &e)
{
    if (opts_.reservoirSize == 0)
        return;
    // Vitter's algorithm R on the seeded stream: every sampled
    // request has an equal chance of surviving in the reservoir, and
    // the same seed keeps the exemplar set byte-identical.
    if (reservoir_.size() < opts_.reservoirSize) {
        reservoir_.push_back(e);
        return;
    }
    std::uint64_t j = rng_.below(sampled_);
    if (j < reservoir_.size())
        reservoir_[j] = e;
}

void
CausalTracer::emitFlow(const Exemplar &e)
{
    std::uint64_t id = opts_.flowIdBase + flowsEmitted_;
    ++flowsEmitted_;

    std::string demand_name = std::string(displayContext(e.context)) +
                              ";" + e.klass;
    tracer_->span(Track::CausalDemand, demand_name, e.t,
                  e.t + e.latency,
                  {{"channel", static_cast<double>(e.channel)},
                   {"device_accesses",
                    static_cast<double>(e.breakdown.count)}});
    tracer_->flow('s', Track::CausalDemand, e.klass, e.t, id);

    // The induced device accesses, laid serially after the demand
    // timestamp (the model charges latencies serially too).
    double t = e.t;
    for (std::uint8_t i = 0; i < e.breakdown.count; ++i) {
        const CauseSpan &s = e.breakdown.spans[i];
        std::string name = std::string(accessCauseName(s.cause)) + "@" +
                           deviceName(s.device);
        tracer_->span(Track::CausalDevices, name, t, t + s.latency);
        char phase = i + 1 == e.breakdown.count ? 'f' : 't';
        tracer_->flow(phase, Track::CausalDevices, e.klass, t, id);
        t += s.latency;
    }
}

void
CausalTracer::onCountersReset()
{
    contexts_.clear();
    reservoir_.clear();
    cur_ = nullptr;
    demands_ = 0;
    sampled_ = 0;
    llcHitsTotal_ = 0;
    // Restart the seeded streams so the post-warmup region is
    // reproducible on its own. Flow ids keep advancing: pre-reset
    // exemplar spans stay in the trace.
    rng_ = Rng(opts_.seed);
}

void
CausalTracer::foldedLines(std::vector<std::string> &out,
                          const std::string &prefix) const
{
    for (const auto &[ctx, stats] : contexts_) {
        for (const auto &[klass, cs] : stats.classes) {
            for (unsigned c = 0; c < kNumAccessCauses; ++c) {
                if (cs.causeCount[c] == 0)
                    continue;
                std::string line;
                if (!prefix.empty())
                    line = prefix + ";";
                line += displayContext(ctx);
                line += ";" + klass + ";";
                line += accessCauseName(static_cast<AccessCause>(c));
                line += " " + std::to_string(cs.causeCount[c]);
                out.push_back(std::move(line));
            }
        }
    }
}

void
CausalTracer::dumpJson(std::ostream &os) const
{
    JsonWriter json(os);
    json.beginObject();
    json.field("sample_period", opts_.samplePeriod);
    json.field("seed", opts_.seed);
    json.field("demand_requests", demands_);
    json.field("sampled_requests", sampled_);
    json.field("llc_hits", llcHitsTotal_);

    json.beginArray("contexts");
    for (const auto &[ctx, stats] : contexts_) {
        json.beginObject();
        json.field("context", displayContext(ctx));
        json.field("llc_hits", stats.llcHits);
        json.beginArray("classes");
        for (const auto &[klass, cs] : stats.classes) {
            json.beginObject();
            json.field("class", klass);
            json.field("samples", cs.samples);
            json.field("device_accesses", cs.accesses);
            json.field("accesses_per_request",
                       cs.samples ? static_cast<double>(cs.accesses) /
                                        static_cast<double>(cs.samples)
                                  : 0.0);
            json.field("latency_s", cs.latency);
            json.beginArray("causes");
            for (unsigned c = 0; c < kNumAccessCauses; ++c) {
                if (cs.causeCount[c] == 0)
                    continue;
                json.beginObject();
                json.field("cause", accessCauseName(
                                        static_cast<AccessCause>(c)));
                json.field("count", cs.causeCount[c]);
                json.field("latency_s", cs.causeLatency[c]);
                json.endObject();
            }
            json.endArray();
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();

    json.beginArray("exemplars");
    for (const Exemplar &e : reservoir_) {
        json.beginObject();
        json.field("context", displayContext(e.context));
        json.field("class", e.klass);
        json.field("t_s", e.t);
        json.field("latency_s", e.latency);
        json.field("channel", static_cast<std::uint64_t>(e.channel));
        json.beginArray("spans");
        for (std::uint8_t i = 0; i < e.breakdown.count; ++i) {
            const CauseSpan &s = e.breakdown.spans[i];
            json.beginObject();
            json.field("cause", accessCauseName(s.cause));
            json.field("device", deviceName(s.device));
            json.field("latency_s", s.latency);
            json.endObject();
        }
        json.endArray();
        json.endObject();
    }
    json.endArray();
    json.endObject();
}

} // namespace nvsim::obs
