/**
 * @file
 * Chrome-trace-event (Perfetto-compatible) JSON export.
 *
 * Events accumulate in memory and are serialized as one
 * `{"traceEvents":[...]}` document that loads directly in
 * https://ui.perfetto.dev (or chrome://tracing). Tracks are modelled
 * as threads of one process: fixed tracks for runs, epochs, kernel
 * spans and DMA transfers, plus one track per memory channel for
 * throttle and offline instants. Timestamps are simulated
 * microseconds.
 */

#ifndef NVSIM_OBS_PERFETTO_HH
#define NVSIM_OBS_PERFETTO_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace nvsim::obs
{

/** Well-known tracks (thread ids in the exported trace). */
enum class Track : std::uint32_t {
    Runs = 0,     //!< one span per attached benchmark run
    Epochs = 1,   //!< one span per timing epoch
    Kernels = 2,  //!< workload-level spans (runKernel, DNN nodes)
    Dma = 3,      //!< DMA engine transfers
    CausalDemand = 4,   //!< sampled demand-request spans (obs/causal)
    CausalDevices = 5,  //!< induced device-access spans (obs/causal)
    Anomalies = 6,  //!< anomaly-detector instants (obs/diff/anomaly)
    Channel0 = 16,  //!< per-channel instants: Channel0 + channel index
};

/** In-memory collector for Chrome trace events. */
class PerfettoTracer
{
  public:
    /**
     * Event cap: a span/instant beyond this is counted as dropped
     * instead of stored, bounding memory on pathological runs.
     */
    static constexpr std::size_t kMaxEvents = 1u << 20;

    /** Complete span ("X"): [t0_s, t1_s] simulated seconds. */
    void span(Track track, const std::string &name, double t0_s,
              double t1_s,
              std::vector<std::pair<std::string, double>> args = {});

    /** Thread-scoped instant ("i"). */
    void instant(Track track, const std::string &name, double t_s);

    /** Counter sample ("C"): one series named @p name. */
    void counter(const std::string &name, double t_s, double value);

    /**
     * Flow-event point: @p phase is 's' (start), 't' (step) or 'f'
     * (end). Points sharing an @p id form one flow; each point binds
     * to the slice enclosing its timestamp on @p track, drawing
     * arrows between the bound slices in the Perfetto UI.
     */
    void flow(char phase, Track track, const std::string &name,
              double t_s, std::uint64_t id);

    /** Name the track shown in the UI (emitted as metadata). */
    void nameTrack(Track track, const std::string &name);

    /**
     * Attach a pre-rendered JSON object emitted as the document's
     * top-level "metadata" value (the run provenance manifest;
     * Perfetto surfaces it in the trace-info view). Empty = omitted.
     */
    void setMetadataJson(std::string raw_json)
    {
        metadataJson_ = std::move(raw_json);
    }

    /**
     * Shift all subsequently recorded timestamps by @p seconds —
     * used to lay several runs (each starting at simulated t=0) end
     * to end on one timeline.
     */
    void setTimeBase(double seconds) { timeBase_ = seconds; }
    double timeBase() const { return timeBase_; }

    /** Largest shifted end-timestamp recorded so far (seconds). */
    double horizon() const { return horizon_; }

    std::size_t events() const { return events_.size(); }
    std::size_t dropped() const { return dropped_; }

    /** Serialize the full document. */
    void writeJson(std::ostream &out) const;

  private:
    struct Event
    {
        char phase;  //!< 'X', 'i', 'C', 's', 't', 'f'
        std::uint32_t tid;
        std::string name;
        double ts_us;
        double dur_us;  //!< 'X' only
        std::vector<std::pair<std::string, double>> args;
        std::uint64_t flowId = 0;  //!< 's'/'t'/'f' only
    };

    bool admit();
    void note(double t_s);

    std::vector<Event> events_;
    std::vector<std::pair<std::uint32_t, std::string>> trackNames_;
    std::string metadataJson_;
    std::size_t dropped_ = 0;
    double timeBase_ = 0;
    double horizon_ = 0;
};

/** Track of memory channel @p index. */
inline Track
channelTrack(unsigned index)
{
    return static_cast<Track>(
        static_cast<std::uint32_t>(Track::Channel0) + index);
}

} // namespace nvsim::obs

#endif // NVSIM_OBS_PERFETTO_HH
