/**
 * @file
 * Session: multi-run observability collection and file output for the
 * bench binaries.
 *
 * A bench typically constructs several MemorySystems (one per
 * scenario/pattern/thread-count). A Session hands out one Observer
 * per run, lays the runs end to end on a single Perfetto timeline,
 * and accumulates per-run stats snapshots and heatmap rows. At
 * destruction (or an explicit write()) it emits the files the user
 * asked for:
 *
 *   --stats-json=F    {"runs":[{"label":..,"stats":{..}},..]}
 *   --stats-prom=F    Prometheus text exposition, run="label" labels
 *   --perfetto=F      Chrome-trace JSON; open in ui.perfetto.dev
 *   --set-heatmap=F   CSV run,set,hits,misses,evictions
 *
 * The session also owns the telemetry engine's per-run collectors
 * (--telemetry= / --telemetry-json= / --slo=, see
 * obs/telemetry/telemetry.hh); unlike the Observer outputs these do
 * not force serial execution.
 *
 * With no option set the session is disabled: beginRun() returns
 * nullptr and nothing is collected or written.
 */

#ifndef NVSIM_OBS_SESSION_HH
#define NVSIM_OBS_SESSION_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/observer.hh"
#include "obs/perfetto.hh"
#include "obs/telemetry/telemetry.hh"

namespace nvsim::obs
{

/** Output selection, typically parsed from bench argv. */
struct SessionOptions
{
    std::string statsJsonPath;
    std::string statsPromPath;
    std::string perfettoPath;
    std::string heatmapPath;
    std::size_t topSets = 16;  //!< hottest-set console report size

    /** @name Causal tracing (obs/causal.hh) */
    ///@{
    std::string causalJsonPath;  //!< --causal-trace= attribution JSON
    std::string foldedPath;      //!< --folded-stacks= flamegraph input
    std::uint64_t causalSamplePeriod = 64;  //!< --causal-sample=
    std::uint64_t causalSeed = 1;           //!< --causal-seed=
    ///@}

    /** Telemetry engine outputs (obs/telemetry/telemetry.hh). */
    TelemetryOptions telemetry;

    bool
    causal() const
    {
        return !causalJsonPath.empty() || !foldedPath.empty();
    }

    /**
     * Any Observer-based output requested. These force serial
     * execution (one Observer, one Perfetto timeline); telemetry
     * alone does not (see Session::serialRequired()).
     */
    bool
    any() const
    {
        return !statsJsonPath.empty() || !statsPromPath.empty() ||
               !perfettoPath.empty() || !heatmapPath.empty() ||
               causal();
    }

    /** Any output at all (observer or telemetry). */
    bool anyOutput() const { return any() || telemetry.any(); }
};

/** Multi-run collection session. */
class Session
{
  public:
    explicit Session(SessionOptions opts);

    /** Ends an open run and writes the output files (warn-only). */
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    bool enabled() const { return opts_.anyOutput(); }

    /**
     * Do the requested outputs force serial execution? Observer-based
     * collection does (a shared Perfetto timeline, live formula
     * stats); telemetry-only sessions keep --jobs=N parallelism (runs
     * are independent and the export is order-normalized).
     */
    bool serialRequired() const { return opts_.any(); }

    /**
     * Start observing a run. Returns the Observer to attach to the
     * run's MemorySystem, or nullptr when no observer output was
     * requested (callers need no flag checks). An open run is ended
     * first.
     */
    Observer *beginRun(const std::string &label);

    /**
     * Start the telemetry collector for one run; nullptr when
     * telemetry is off. Thread-safe (parallel sweep workers call this
     * concurrently). When an Observer run with the same label is open,
     * the run's summary quantiles are also registered as stats.
     */
    TelemetryRun *beginTelemetryRun(const std::string &label);

    /**
     * Snapshot the current run's Observer. Must be called while the
     * observed MemorySystem is still alive (the registry's formulas
     * read its state). The sealed Observer stays owned by the session
     * until destruction, so a system that is still attached to it can
     * safely be destroyed afterwards. Prints the hottest-set report
     * when heatmap collection is on.
     */
    void endRun();

    /** Write all requested files; fatal() on I/O failure. Idempotent. */
    void write();

  private:
    void writeFiles(bool from_destructor);

    SessionOptions opts_;
    std::unique_ptr<Observer> current_;
    std::vector<std::unique_ptr<Observer>> done_;  //!< sealed past runs
    TelemetrySession telSession_;
    TelemetryRun *currentTel_ = nullptr;  //!< only set in serial mode
    PerfettoTracer tracer_;
    double runStart_ = 0;  //!< absolute start time of the open run

    std::vector<std::pair<std::string, std::string>> runsJson_;
    std::vector<PromFamily> promFamilies_;
    /** (run label, config digest) per ended run: nvsim_build_info. */
    std::vector<std::pair<std::string, ConfigDigest>> buildInfo_;
    std::vector<std::string> heatRows_;
    std::vector<std::pair<std::string, std::string>> causalRuns_;
    std::vector<std::string> foldedLines_;
    std::uint64_t nextFlowId_ = 1;  //!< flow ids unique across runs
    bool written_ = false;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_SESSION_HH
