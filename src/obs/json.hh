/**
 * @file
 * Minimal streaming JSON writer for the observability dumpers (stats
 * JSON, Perfetto trace export). No external dependency; emits valid
 * UTF-8 JSON with proper string escaping.
 */

#ifndef NVSIM_OBS_JSON_HH
#define NVSIM_OBS_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace nvsim::obs
{

/** Escape @p s for inclusion inside a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Streaming writer producing one JSON document. Containers are opened
 * and closed explicitly; the writer tracks whether a comma separator
 * is needed. Misuse (closing the wrong container) panics.
 */
class JsonWriter
{
  public:
    explicit JsonWriter(std::ostream &out) : out_(out) {}

    /** @name Containers (pass a key inside objects, none in arrays) */
    ///@{
    void beginObject(const std::string &key = "");
    void endObject();
    void beginArray(const std::string &key = "");
    void endArray();
    ///@}

    /** @name Values */
    ///@{
    void field(const std::string &key, const std::string &value);
    void field(const std::string &key, const char *value);
    void field(const std::string &key, double value);
    void field(const std::string &key, std::uint64_t value);
    void field(const std::string &key, int value);
    void field(const std::string &key, bool value);
    /**
     * Pre-rendered JSON emitted verbatim as the value of @p key —
     * for embedding a document another renderer produced (e.g. a
     * RunManifest). The caller guarantees @p raw_json is valid JSON.
     */
    void rawField(const std::string &key, const std::string &raw_json);
    /** Array element. */
    void value(double v);
    void value(std::uint64_t v);
    void value(const std::string &v);
    ///@}

  private:
    void separator();
    void key(const std::string &k);

    std::ostream &out_;
    std::vector<bool> isObject_;  //!< open-container stack
    bool needComma_ = false;
};

} // namespace nvsim::obs

#endif // NVSIM_OBS_JSON_HH
