/**
 * @file
 * Loader for nvsim-telemetry-v1 JSON artifacts.
 *
 * The telemetry engine's JSON export (obs/telemetry/telemetry.cc) is
 * lossless for everything the comparative layer needs: per-window
 * aggregate and per-channel counter deltas, demand bytes, and the
 * latency sketch's sparse buckets. loadTelemetryDoc() parses a file
 * back into real TelemetryWindow structs (sketches reconstructed via
 * LatencySketch::fromSparse), so every in-process computation —
 * derived window metrics, SLO evaluation, anomaly detection — runs
 * identically over a reloaded artifact. That is the foundation of
 * both `nvsim_inspect` subcommands: a diff or anomaly scan of a file
 * gives bit-identical answers to the run that produced it.
 *
 * Malformed input is fatal() (operator input, like config files); a
 * structurally valid document with missing optional sections (no
 * manifest, no sketch buckets) loads with those parts empty so older
 * artifacts degrade to a comparable-with-diagnostics state rather
 * than a crash.
 */

#ifndef NVSIM_OBS_DIFF_TELDOC_HH
#define NVSIM_OBS_DIFF_TELDOC_HH

#include <array>
#include <string>
#include <vector>

#include "imc/counters.hh"
#include "obs/manifest.hh"
#include "obs/telemetry/telemetry.hh"

namespace nvsim::obs
{

/** One run reloaded from a telemetry JSON. */
struct TelRun
{
    std::string label;
    unsigned channels = 0;
    double windowS = 0;
    std::uint64_t windowsDropped = 0;
    ConfigDigest config;  //!< empty when the artifact predates it
    /** Exact cumulative counter totals (PerfField order). */
    std::array<double, kNumPerfFields> totals{};
    LatencySketch latency;  //!< whole-run sketch (empty if no buckets)
    std::vector<TelemetryWindow> windows;  //!< ascending window index

    /** Window with @p index; nullptr when absent. */
    const TelemetryWindow *findWindow(std::int64_t index) const;
};

/** A parsed nvsim-telemetry-v1 document. */
struct TelDoc
{
    std::string path;    //!< where it was loaded from (diagnostics)
    std::string schema;  //!< top-level "schema"
    double windowS = 0;  //!< top-level "window_s"
    bool hasManifest = false;
    RunManifest manifest;         //!< valid when hasManifest
    std::string manifestSchema;   //!< manifest "schema" field
    std::vector<TelRun> runs;     //!< document order (label-sorted)

    /** Run with @p label; nullptr when absent. */
    const TelRun *findRun(const std::string &label) const;
};

/** Parse @p path; fatal() on unreadable/malformed input. */
TelDoc loadTelemetryDoc(const std::string &path);

/** PerfField index of snake_case @p name; kNumPerfFields if unknown. */
std::size_t perfFieldIndex(const std::string &name);

} // namespace nvsim::obs

#endif // NVSIM_OBS_DIFF_TELDOC_HH
