/**
 * @file
 * Online anomaly detection over telemetry windows.
 *
 * One detector per monitored metric streams the per-window series in
 * window order through an EWMA mean plus an EWMA of absolute
 * residuals (a streaming MAD proxy), and flags a window whose robust
 * z-score
 *
 *   z = |x - mu| / max(1.4826 * dev, rel_floor * |mu|, tiny)
 *
 * exceeds the threshold. The mean is seeded with the first observed
 * value and detection only arms after a warmup count, so a flat
 * series can never fire (its residuals are identically zero) while a
 * step — throttle onset collapsing eff_gbs, a RowHammer targeted-
 * refresh storm, scrub interference inflating maint_duty — fires on
 * the first stepped window. The relative floor keeps benign FP-level
 * wiggle on large means from producing unbounded z.
 *
 * Monitored series are the derived window metrics that the paper's
 * failure modes move (eff_gbs, p99_ns, amplification, maint_duty)
 * plus per-active-second rates of the maintenance/fault storm
 * counters (`<counter>_rate`). Detection is a pure fold over the
 * window ring — deterministic, byte-identical at any --jobs=N — and
 * runs identically over live TelemetryRun windows and windows
 * reloaded from a telemetry JSON (diff/teldoc.hh), which is what lets
 * `nvsim_inspect anomalies` reproduce the in-process report exactly.
 */

#ifndef NVSIM_OBS_DIFF_ANOMALY_HH
#define NVSIM_OBS_DIFF_ANOMALY_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace nvsim::obs
{

class TelemetryRun;
struct TelemetryWindow;

/** Detector knobs (defaults fit the 1 ms telemetry window). */
struct AnomalyOptions
{
    double z = 6.0;        //!< robust z-score firing threshold
    double alpha = 0.3;    //!< EWMA gain for mean and deviation
    unsigned warmup = 3;   //!< observations before detection arms
    double relFloor = 0.02;  //!< scale floor as a fraction of |mean|
};

/** One detector firing. */
struct Anomaly
{
    std::int64_t window = 0;  //!< window index that fired
    std::string metric;       //!< monitored series name
    double value = 0;         //!< observed value
    double expected = 0;      //!< EWMA mean before this window
    double z = 0;             //!< robust z-score
};

/** All firings of one run, ordered by (window, metric list order). */
struct AnomalyReport
{
    std::vector<Anomaly> anomalies;

    bool empty() const { return anomalies.empty(); }

    /** Firings in window @p window (the SLO `anomalies` metric). */
    std::size_t countAt(std::int64_t window) const;

    /** JSON array of firing objects (deterministic %.9g numbers). */
    std::string json() const;
};

/**
 * Monitored series names: derived window metrics plus
 * `<counter>_rate` per-active-second counter rates.
 */
const std::vector<std::string> &anomalyMetrics();

/**
 * Value of monitored series @p metric in window @p w; false when it
 * does not apply (empty sketch, zero active time).
 */
bool anomalyMetricValue(const TelemetryWindow &w,
                        const std::string &metric, double *out);

/** Run the detectors over @p windows (must be in window order). */
AnomalyReport
detectAnomalies(const std::vector<const TelemetryWindow *> &windows,
                const AnomalyOptions &opts);

/** Convenience front-end over a live run's window ring. */
AnomalyReport detectAnomalies(const TelemetryRun &run,
                              const AnomalyOptions &opts);

} // namespace nvsim::obs

#endif // NVSIM_OBS_DIFF_ANOMALY_HH
