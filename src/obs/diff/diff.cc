#include "obs/diff/diff.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <set>
#include <sstream>

#include "core/logging.hh"
#include "obs/json.hh"

namespace nvsim::obs
{

namespace
{

constexpr std::size_t kF = kNumPerfFields;

std::string
num(double v)
{
    return strprintf("%.9g", v);
}

/** Derived per-window rates compared under the noise threshold. */
const char *const kDerivedDiff[] = {
    "eff_gbs", "dram_gbs", "nvram_gbs", "amplification",
    "maint_duty", "p50_ns", "p99_ns",
};

/** Run-level latency ranks compared exactly (bucket resolution). */
const char *const kRanks[] = {
    "min_ns", "p50_ns", "p90_ns", "p99_ns", "p999_ns", "max_ns",
};

std::uint64_t
rankValue(const LatencySketch &s, const char *rank)
{
    if (std::strcmp(rank, "min_ns") == 0)
        return s.min();
    if (std::strcmp(rank, "max_ns") == 0)
        return s.max();
    if (std::strcmp(rank, "p50_ns") == 0)
        return s.quantile(0.5);
    if (std::strcmp(rank, "p90_ns") == 0)
        return s.quantile(0.9);
    if (std::strcmp(rank, "p99_ns") == 0)
        return s.quantile(0.99);
    return s.quantile(0.999);
}

double
relDelta(double a, double b)
{
    double m = std::max(std::fabs(a), std::fabs(b));
    return m > 0 ? std::fabs(b - a) / m : 0.0;
}

/** Stable most-changed-first order (byte-identical reports). */
bool
entryBefore(const DiffEntry &x, const DiffEntry &y)
{
    if (x.rel != y.rel)
        return x.rel > y.rel;
    if (x.window != y.window)
        return x.window < y.window;
    if (x.channel != y.channel)
        return x.channel < y.channel;
    return x.metric < y.metric;
}

void
diffSeries(RunDiff &out, std::int64_t window,
           const std::string &channel, const std::string &metric,
           double a, double b, double floor_rel, double abs_floor)
{
    double d = b - a;
    if (std::fabs(d) <=
        std::max(abs_floor,
                 floor_rel * std::max(std::fabs(a), std::fabs(b))))
        return;
    out.entries.push_back(
        DiffEntry{window, channel, metric, a, b, d, relDelta(a, b)});
}

const TelemetryWindow kEmptyWindow{};

void
diffRunPair(RunDiff &out, const TelRun &a, const TelRun &b,
            const DiffOptions &opts)
{
    // Window-aligned: the union of indices, absent windows all-zero
    // (a window one run never produced IS a difference).
    std::set<std::int64_t> indices;
    for (const TelemetryWindow &w : a.windows)
        indices.insert(w.index);
    for (const TelemetryWindow &w : b.windows)
        indices.insert(w.index);

    unsigned channels = std::max(a.channels, b.channels);
    for (std::int64_t i : indices) {
        const TelemetryWindow *wa = a.findWindow(i);
        const TelemetryWindow *wb = b.findWindow(i);
        const TelemetryWindow &va = wa ? *wa : kEmptyWindow;
        const TelemetryWindow &vb = wb ? *wb : kEmptyWindow;

        // Raw counters: any reproducible delta counts (%.9g values
        // round-trip exactly, so equal runs give exact zeros).
        for (std::size_t f = 0; f < kF; ++f) {
            diffSeries(out, i, "all", PerfCounters::fieldName(f),
                       va.all[f], vb.all[f], 1e-12, opts.absFloor);
        }
        for (unsigned c = 0; c < channels; ++c) {
            for (std::size_t f = 0; f < kF; ++f) {
                double xa = c < a.channels && wa
                                ? va.perChannel[c * kF + f]
                                : 0.0;
                double xb = c < b.channels && wb
                                ? vb.perChannel[c * kF + f]
                                : 0.0;
                diffSeries(out, i, "ch" + std::to_string(c),
                           PerfCounters::fieldName(f), xa, xb, 1e-12,
                           opts.absFloor);
            }
        }

        // Derived rates: noise-thresholded, both windows present.
        if (wa && wb) {
            for (const char *m : kDerivedDiff) {
                double xa = 0, xb = 0;
                if (TelemetryRun::windowMetric(va, m, &xa) &&
                    TelemetryRun::windowMetric(vb, m, &xb)) {
                    diffSeries(out, i, "all", m, xa, xb,
                               opts.threshold, opts.absFloor);
                }
            }
        }
    }
    std::sort(out.entries.begin(), out.entries.end(), entryBefore);

    // Run-level rank diffs: exact (reconstructed sketches).
    if (!a.latency.empty() || !b.latency.empty()) {
        for (const char *rank : kRanks) {
            std::uint64_t ra = rankValue(a.latency, rank);
            std::uint64_t rb = rankValue(b.latency, rank);
            if (ra != rb)
                out.rankDiffs.push_back(RankDiff{rank, ra, rb});
        }
    }

    // Family blame from the exact run totals: each family scored by
    // its most-moved counter, explained via the cause taxonomy.
    for (std::size_t f = 0; f < kF; ++f) {
        double ta = a.totals[f], tb = b.totals[f];
        if (std::fabs(tb - ta) <= opts.absFloor)
            continue;
        double rel = relDelta(ta, tb);
        if (rel <= opts.threshold)
            continue;
        const char *family = counterFamily(f);
        FamilyDelta *fd = nullptr;
        for (FamilyDelta &have : out.families) {
            if (have.family == family) {
                fd = &have;
                break;
            }
        }
        if (!fd) {
            out.families.push_back(FamilyDelta{family, 0, "", 0, 0, ""});
            fd = &out.families.back();
        }
        if (rel > fd->score) {
            fd->score = rel;
            fd->dominant = PerfCounters::fieldName(f);
            fd->dominantA = ta;
            fd->dominantB = tb;
            fd->cause = counterCause(f);
        }
    }
    std::sort(out.families.begin(), out.families.end(),
              [](const FamilyDelta &x, const FamilyDelta &y) {
                  if (x.score != y.score)
                      return x.score > y.score;
                  return x.family < y.family;
              });
}

} // namespace

const char *
counterFamily(std::size_t f)
{
    switch (static_cast<PerfField>(f)) {
      case PerfField::llcReads:
      case PerfField::llcWrites:
        return "demand";
      case PerfField::dramRead:
      case PerfField::dramWrite:
        return "dram";
      case PerfField::nvramRead:
      case PerfField::nvramWrite:
        return "nvram";
      case PerfField::tagHit:
      case PerfField::tagMissClean:
      case PerfField::tagMissDirty:
      case PerfField::ddoHit:
      case PerfField::missBypass:
      case PerfField::sramTagLookups:
        return "tag";
      case PerfField::correctableErrors:
      case PerfField::uncorrectableErrors:
      case PerfField::tagEccInvalidates:
      case PerfField::retries:
      case PerfField::throttledEpochs:
        return "fault";
      case PerfField::refreshSlots:
      case PerfField::scrubReads:
      case PerfField::scrubCorrected:
      case PerfField::linesRetired:
      case PerfField::targetedRefreshes:
      case PerfField::maintenanceStallNs:
        return "maintenance";
      case PerfField::queueWaitNs:
      case PerfField::bankConflicts:
      case PerfField::rowBufferHits:
      case PerfField::writeDrains:
        return "queue";
    }
    return "unknown";
}

const char *
counterCause(std::size_t f)
{
    // The AccessCause arrow (mem/request.hh Fig-3 taxonomy) that a
    // delta led by this counter maps back to.
    switch (static_cast<PerfField>(f)) {
      case PerfField::llcReads:
      case PerfField::llcWrites:
        return "demand traffic reaching the IMC changed";
      case PerfField::dramRead:
        return "TagProbe/DataRead: DRAM-side read work moved";
      case PerfField::dramWrite:
        return "CacheInsertWrite/DataWrite: DRAM-side write work "
               "moved";
      case PerfField::nvramRead:
        return "CacheFillRead/BypassRead: NVRAM reads moved";
      case PerfField::nvramWrite:
        return "DirtyWriteback: NVRAM writeback pressure moved";
      case PerfField::tagHit:
        return "tag hit share shifted (working-set residency)";
      case PerfField::tagMissClean:
        return "CacheFillRead: clean-miss fills shifted";
      case PerfField::tagMissDirty:
        return "DirtyWriteback: dirty-miss evictions shifted";
      case PerfField::ddoHit:
        return "DdoElideWrite: DDO write elision shifted";
      case PerfField::missBypass:
        return "BypassRead: non-inserted miss service shifted";
      case PerfField::sramTagLookups:
        return "DataRead: SRAM-answered tag checks shifted";
      case PerfField::correctableErrors:
      case PerfField::uncorrectableErrors:
      case PerfField::tagEccInvalidates:
        return "media/ECC fault rate changed";
      case PerfField::retries:
        return "transient-error retries changed";
      case PerfField::throttledEpochs:
        return "write-throttle engagement changed";
      case PerfField::refreshSlots:
        return "REF cadence changed (tRFC bank blocking)";
      case PerfField::scrubReads:
      case PerfField::scrubCorrected:
        return "PatrolScrub: patrol-scrub interference changed";
      case PerfField::linesRetired:
        return "frame-retirement ladder activity changed";
      case PerfField::targetedRefreshes:
        return "TargetedRefresh: RowHammer mitigation storm";
      case PerfField::maintenanceStallNs:
        return "maintenance bank-time stall changed (see refresh/"
               "scrub/TargetedRefresh counters)";
      case PerfField::queueWaitNs:
        return "QueueWait: controller queue occupancy changed";
      case PerfField::bankConflicts:
        return "BankConflict: row-buffer locality worsened";
      case PerfField::rowBufferHits:
        return "row-buffer locality shifted";
      case PerfField::writeDrains:
        return "WriteDrain: WPQ drain-burst cadence changed";
    }
    return "";
}

bool
DiffReport::empty() const
{
    if (comparability == Comparability::Incomparable)
        return false;
    if (!diagnostics.empty() || !onlyInA.empty() || !onlyInB.empty())
        return false;
    for (const RunDiff &r : runs) {
        if (!r.empty())
            return false;
    }
    return true;
}

DiffReport
diffTelemetry(const TelDoc &a, const TelDoc &b, const DiffOptions &opts)
{
    DiffReport report;

    // Hard comparability: window geometry. Different windows cannot
    // be aligned; refuse (the caller may --force past this).
    if (a.windowS != b.windowS) {
        report.comparability = Comparability::Incomparable;
        report.diagnostics.push_back(
            "window length differs: " + num(a.windowS) + " s vs " +
            num(b.windowS) + " s (artifacts are not window-alignable)");
        if (!opts.force)
            return report;
    }

    // Soft comparability: provenance. Differences are reported, not
    // fatal — comparing across configs is the tool's whole point.
    auto diag = [&](const std::string &msg) {
        report.diagnostics.push_back(msg);
        if (report.comparability == Comparability::Comparable)
            report.comparability = Comparability::Diagnostics;
    };
    if (a.hasManifest != b.hasManifest) {
        diag(std::string("only ") + (a.hasManifest ? "A" : "B") +
             " carries a provenance manifest");
    } else if (a.hasManifest) {
        if (a.manifest.bench != b.manifest.bench)
            diag("bench differs: '" + a.manifest.bench + "' vs '" +
                 b.manifest.bench + "'");
        if (a.manifest.flags != b.manifest.flags) {
            auto join = [](const std::vector<std::string> &v) {
                std::string s;
                for (const std::string &f : v)
                    s += (s.empty() ? "" : " ") + f;
                return s.empty() ? std::string("<none>") : s;
            };
            diag("flags differ: [" + join(a.manifest.flags) +
                 "] vs [" + join(b.manifest.flags) + "]");
        }
        if (a.manifest.causalSeed != b.manifest.causalSeed)
            diag(strprintf("causal seed differs: %llu vs %llu",
                           static_cast<unsigned long long>(
                               a.manifest.causalSeed),
                           static_cast<unsigned long long>(
                               b.manifest.causalSeed)));
    }

    // Label-matched run pairs; unmatched labels are differences.
    std::set<std::string> bMatched;
    for (const TelRun &ra : a.runs) {
        const TelRun *rb = b.findRun(ra.label);
        if (!rb) {
            report.onlyInA.push_back(ra.label);
            continue;
        }
        bMatched.insert(ra.label);
        RunDiff rd;
        rd.label = ra.label;
        if (ra.config.hash != rb->config.hash) {
            rd.configMismatch = true;
            diag("run '" + ra.label + "': config hash " +
                 (ra.config.empty() ? "<none>" : ra.config.hash) +
                 " vs " +
                 (rb->config.empty() ? "<none>" : rb->config.hash));
        }
        if (ra.channels != rb->channels)
            diag(strprintf("run '%s': channel count %u vs %u",
                           ra.label.c_str(), ra.channels,
                           rb->channels));
        diffRunPair(rd, ra, *rb, opts);
        report.runs.push_back(std::move(rd));
    }
    for (const TelRun &rb : b.runs) {
        if (!bMatched.count(rb.label) && !a.findRun(rb.label))
            report.onlyInB.push_back(rb.label);
    }
    return report;
}

std::string
DiffReport::json(const DiffOptions &opts) const
{
    const char *comp =
        comparability == Comparability::Comparable ? "comparable"
        : comparability == Comparability::Diagnostics
            ? "diagnostics"
            : "incomparable";
    std::ostringstream os;
    os << "{\"schema\":\"nvsim-telemetry-diff-v1\",\"threshold\":"
       << num(opts.threshold) << ",\"comparability\":\"" << comp
       << "\",\"empty\":" << (empty() ? "true" : "false")
       << ",\"diagnostics\":[";
    for (std::size_t i = 0; i < diagnostics.size(); ++i)
        os << (i ? "," : "") << '"' << jsonEscape(diagnostics[i])
           << '"';
    os << "],\"only_in_a\":[";
    for (std::size_t i = 0; i < onlyInA.size(); ++i)
        os << (i ? "," : "") << '"' << jsonEscape(onlyInA[i]) << '"';
    os << "],\"only_in_b\":[";
    for (std::size_t i = 0; i < onlyInB.size(); ++i)
        os << (i ? "," : "") << '"' << jsonEscape(onlyInB[i]) << '"';
    os << "],\"runs\":[";
    for (std::size_t r = 0; r < runs.size(); ++r) {
        const RunDiff &rd = runs[r];
        os << (r ? "," : "") << "\n{\"label\":\""
           << jsonEscape(rd.label) << "\",\"config_mismatch\":"
           << (rd.configMismatch ? "true" : "false")
           << ",\"families\":[";
        for (std::size_t i = 0; i < rd.families.size(); ++i) {
            const FamilyDelta &fd = rd.families[i];
            os << (i ? "," : "") << "{\"family\":\""
               << jsonEscape(fd.family) << "\",\"score\":"
               << num(fd.score) << ",\"dominant\":\""
               << jsonEscape(fd.dominant) << "\",\"a\":"
               << num(fd.dominantA) << ",\"b\":" << num(fd.dominantB)
               << ",\"cause\":\"" << jsonEscape(fd.cause) << "\"}";
        }
        os << "],\"ranks\":[";
        for (std::size_t i = 0; i < rd.rankDiffs.size(); ++i) {
            const RankDiff &rk = rd.rankDiffs[i];
            os << (i ? "," : "") << "{\"rank\":\"" << rk.rank
               << "\",\"a\":" << rk.a << ",\"b\":" << rk.b << '}';
        }
        os << "],\"entries\":[";
        for (std::size_t i = 0; i < rd.entries.size(); ++i) {
            const DiffEntry &e = rd.entries[i];
            os << (i ? "," : "") << "\n{\"window\":" << e.window
               << ",\"channel\":\"" << e.channel << "\",\"metric\":\""
               << e.metric << "\",\"a\":" << num(e.a)
               << ",\"b\":" << num(e.b) << ",\"delta\":" << num(e.delta)
               << ",\"rel\":" << num(e.rel) << '}';
        }
        os << "\n]}";
    }
    os << "\n]}\n";
    return os.str();
}

std::string
DiffReport::text(const DiffOptions &opts) const
{
    std::ostringstream os;
    for (const std::string &d : diagnostics)
        os << "diag: " << d << '\n';
    if (comparability == Comparability::Incomparable) {
        os << "incomparable artifacts";
        if (!runs.empty())
            os << " (diffed anyway: --force)";
        os << '\n';
        if (runs.empty())
            return os.str();
    }
    for (const std::string &l : onlyInA)
        os << "run '" << l << "' only in A\n";
    for (const std::string &l : onlyInB)
        os << "run '" << l << "' only in B\n";

    std::size_t changed = 0;
    for (const RunDiff &rd : runs) {
        if (rd.empty())
            continue;
        os << "run '" << rd.label << "':\n";
        for (const FamilyDelta &fd : rd.families) {
            os << "  blame " << fd.family << ": " << fd.dominant << ' '
               << num(fd.dominantA) << " -> " << num(fd.dominantB);
            if (fd.dominantA != 0) {
                os << strprintf(" (%+.1f%%)",
                                100.0 * (fd.dominantB - fd.dominantA) /
                                    std::fabs(fd.dominantA));
            } else {
                os << " (was 0)";
            }
            os << " — " << fd.cause << '\n';
        }
        for (const RankDiff &rk : rd.rankDiffs) {
            os << "  rank " << rk.rank << ": " << rk.a << " -> "
               << rk.b << '\n';
        }
        std::size_t shown =
            std::min(opts.top, rd.entries.size());
        for (std::size_t i = 0; i < shown; ++i) {
            const DiffEntry &e = rd.entries[i];
            os << "  window " << e.window << ' ' << e.channel << ' '
               << e.metric << ": " << num(e.a) << " -> " << num(e.b)
               << " (rel " << num(e.rel) << ")\n";
        }
        if (rd.entries.size() > shown)
            os << "  ... " << rd.entries.size() - shown
               << " more changed series (--top= to widen)\n";
        changed += rd.entries.size();
    }
    if (empty())
        os << "identical: no differences above threshold "
           << num(opts.threshold) << '\n';
    else
        os << "DIFFERENT: " << changed
           << " changed series across " << runs.size() << " run(s)\n";
    return os.str();
}

} // namespace nvsim::obs
