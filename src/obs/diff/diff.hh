/**
 * @file
 * Differential telemetry: window-aligned, per-channel, per-counter
 * comparison of two nvsim-telemetry-v1 artifacts.
 *
 * The paper's argument is an A/B comparison, so the diff is built to
 * answer "what changed between these two runs, and why" rather than
 * "are the files equal":
 *
 *  - Comparability is decided first, from the embedded manifests.
 *    Different schema or window length makes the artifacts
 *    incomparable (Comparability::Incomparable — refuse unless
 *    forced); different bench, flags, seed or per-run config hash is
 *    a first-class diagnostic on the report (the comparison is
 *    apples-to-oranges on purpose — say so, then diff anyway).
 *  - Counters diff per (window, channel, counter), window-aligned by
 *    index, with "all" as a pseudo-channel; derived rates (eff_gbs,
 *    p99_ns, ...) diff per window under a relative noise threshold.
 *  - Latency distributions diff at named ranks from the
 *    reconstructed sketches; merging is exact bucket addition, so a
 *    rank delta of zero means the distributions agree to bucket
 *    resolution (< 1/128 relative), not that two floats were close.
 *  - The ranked "what changed" summary aggregates counter deltas into
 *    the counter families (demand / dram / nvram / tag / fault /
 *    maintenance) and maps the dominant counter back to the
 *    AccessCause taxonomy: a targeted_refreshes storm *explains* a
 *    maintenance_stall_ns delta.
 *
 * Identical inputs produce an empty report; everything is rendered
 * with the deterministic %.9g convention, so diff output is
 * byte-identical at any --jobs=N.
 */

#ifndef NVSIM_OBS_DIFF_DIFF_HH
#define NVSIM_OBS_DIFF_DIFF_HH

#include <cstdint>
#include <string>
#include <vector>

#include "obs/diff/teldoc.hh"

namespace nvsim::obs
{

/** Diff knobs (nvsim_inspect flags). */
struct DiffOptions
{
    /** Relative noise threshold for derived-rate deltas. */
    double threshold = 0.01;
    /** Absolute floor below which a delta is noise regardless. */
    double absFloor = 1e-9;
    /** Entries shown per run in the text report. */
    std::size_t top = 10;
    /** Diff incomparable artifacts anyway (exit-2 override). */
    bool force = false;
};

/** How comparable the two artifacts are. */
enum class Comparability
{
    Comparable,   //!< same schema/window/provenance
    Diagnostics,  //!< provenance differs; diffed with diagnostics
    Incomparable, //!< schema/window mismatch; no metric diff ran
};

/** One changed (window, channel, series) triple. */
struct DiffEntry
{
    std::int64_t window = 0;
    std::string channel;  //!< "all" or "chN"
    std::string metric;   //!< counter or derived-rate name
    double a = 0;         //!< value in artifact A
    double b = 0;         //!< value in artifact B
    double delta = 0;     //!< b - a
    double rel = 0;       //!< |delta| / max(|a|, |b|)
};

/** Latency-rank delta (exact to bucket resolution). */
struct RankDiff
{
    std::string rank;  //!< "p50_ns", ..., "min_ns", "max_ns"
    std::uint64_t a = 0;
    std::uint64_t b = 0;
};

/** Family-level attribution: what changed, and what explains it. */
struct FamilyDelta
{
    std::string family;    //!< demand/dram/nvram/tag/fault/maintenance
    double score = 0;      //!< largest run-total relative delta
    std::string dominant;  //!< counter with that delta
    double dominantA = 0;
    double dominantB = 0;
    std::string cause;     //!< AccessCause-taxonomy explanation
};

/** Diff of one label-matched run pair. */
struct RunDiff
{
    std::string label;
    bool configMismatch = false;  //!< per-run config hashes differ
    std::vector<DiffEntry> entries;    //!< sorted, most-changed first
    std::vector<RankDiff> rankDiffs;   //!< run-level changed ranks
    std::vector<FamilyDelta> families; //!< ranked blame summary

    bool
    empty() const
    {
        return entries.empty() && rankDiffs.empty() && !configMismatch;
    }
};

/** The full comparison. */
struct DiffReport
{
    Comparability comparability = Comparability::Comparable;
    std::vector<std::string> diagnostics;  //!< manifest findings
    std::vector<RunDiff> runs;             //!< label order
    std::vector<std::string> onlyInA;      //!< unmatched run labels
    std::vector<std::string> onlyInB;

    /** No metric changed anywhere and the run sets match. */
    bool empty() const;

    /** nvsim-telemetry-diff-v1 JSON (plot_traces.py heatmap input). */
    std::string json(const DiffOptions &opts) const;

    /** Human report, @p top entries per run. */
    std::string text(const DiffOptions &opts) const;
};

/** Counter family of PerfField index @p f. */
const char *counterFamily(std::size_t f);

/** AccessCause-taxonomy explanation of a delta led by counter @p f. */
const char *counterCause(std::size_t f);

/**
 * Compare two loaded artifacts. With Incomparable comparability (and
 * no force), runs/entries stay empty and only diagnostics are filled.
 */
DiffReport diffTelemetry(const TelDoc &a, const TelDoc &b,
                         const DiffOptions &opts);

} // namespace nvsim::obs

#endif // NVSIM_OBS_DIFF_DIFF_HH
