#include "obs/diff/anomaly.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "core/logging.hh"
#include "imc/counters.hh"
#include "obs/json.hh"
#include "obs/telemetry/telemetry.hh"

namespace nvsim::obs
{

namespace
{

std::string
num(double v)
{
    return strprintf("%.9g", v);
}

/** Counters whose per-second rate is a storm signal worth watching. */
const PerfField kRateFields[] = {
    PerfField::targetedRefreshes, PerfField::scrubReads,
    PerfField::throttledEpochs,   PerfField::retries,
};

} // namespace

const std::vector<std::string> &
anomalyMetrics()
{
    static const std::vector<std::string> kMetrics = [] {
        std::vector<std::string> m = {
            "eff_gbs",
            "p99_ns",
            "amplification",
            "maint_duty",
        };
        for (PerfField f : kRateFields) {
            m.push_back(std::string(PerfCounters::fieldName(
                            static_cast<std::size_t>(f))) +
                        "_rate");
        }
        return m;
    }();
    return kMetrics;
}

bool
anomalyMetricValue(const TelemetryWindow &w, const std::string &metric,
                   double *out)
{
    constexpr const char *kSuffix = "_rate";
    constexpr std::size_t kSuffixLen = 5;
    if (metric.size() > kSuffixLen &&
        metric.compare(metric.size() - kSuffixLen, kSuffixLen,
                       kSuffix) == 0) {
        std::string field = metric.substr(0, metric.size() - kSuffixLen);
        for (std::size_t f = 0; f < PerfCounters::numFields(); ++f) {
            if (field == PerfCounters::fieldName(f)) {
                if (w.activeS <= 0)
                    return false;
                *out = w.all[f] / w.activeS;
                return true;
            }
        }
        return false;
    }
    return TelemetryRun::windowMetric(w, metric, out);
}

std::size_t
AnomalyReport::countAt(std::int64_t window) const
{
    std::size_t n = 0;
    for (const Anomaly &a : anomalies)
        n += a.window == window;
    return n;
}

std::string
AnomalyReport::json() const
{
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < anomalies.size(); ++i) {
        const Anomaly &a = anomalies[i];
        os << (i ? "," : "") << "{\"window\":" << a.window
           << ",\"metric\":\"" << jsonEscape(a.metric)
           << "\",\"value\":" << num(a.value)
           << ",\"expected\":" << num(a.expected)
           << ",\"z\":" << num(a.z) << '}';
    }
    os << ']';
    return os.str();
}

AnomalyReport
detectAnomalies(const std::vector<const TelemetryWindow *> &windows,
                const AnomalyOptions &opts)
{
    const std::vector<std::string> &metrics = anomalyMetrics();

    // One EWMA state per metric; window-major iteration keeps the
    // report naturally ordered by (window, metric list order).
    struct State
    {
        double mu = 0;    //!< EWMA mean
        double dev = 0;   //!< EWMA of |residual| (MAD proxy)
        unsigned n = 0;   //!< observations folded so far
    };
    std::vector<State> states(metrics.size());

    AnomalyReport report;
    for (const TelemetryWindow *w : windows) {
        for (std::size_t m = 0; m < metrics.size(); ++m) {
            double x = 0;
            if (!anomalyMetricValue(*w, metrics[m], &x))
                continue;
            State &s = states[m];
            if (s.n == 0) {
                // Seed from the first observation: a flat series has
                // zero residuals forever and can never fire.
                s.mu = x;
            } else if (s.n >= opts.warmup) {
                double scale =
                    std::max({1.4826 * s.dev,
                              opts.relFloor * std::fabs(s.mu), 1e-12});
                double z = std::fabs(x - s.mu) / scale;
                if (z > opts.z) {
                    report.anomalies.push_back(
                        Anomaly{w->index, metrics[m], x, s.mu, z});
                }
            }
            double r = x - s.mu;
            s.mu += opts.alpha * r;
            s.dev += opts.alpha * (std::fabs(r) - s.dev);
            ++s.n;
        }
    }
    return report;
}

AnomalyReport
detectAnomalies(const TelemetryRun &run, const AnomalyOptions &opts)
{
    std::vector<const TelemetryWindow *> ws;
    for (const TelemetryWindow &w : run.windows())
        ws.push_back(&w);
    return detectAnomalies(ws, opts);
}

} // namespace nvsim::obs
